//===- tests/interp_exec_test.cpp - Interp backend differentials -*-C++-*-===//
//
// Differential-tests the generated-code interpreter against the reference
// executor over the shared query catalog, plus randomized property tests
// over generated pipelines and both settings of the §4.3 specialization.
//
//===----------------------------------------------------------------------===//

#include "QueryTestUtil.h"

#include "gtest/gtest.h"

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using namespace steno::testutil;
using query::Query;

namespace {

class CatalogInterpTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

} // namespace

TEST(InterpCatalog, AllQueriesMatchReference) {
  Catalog C(/*Seed=*/11);
  for (const auto &[Name, Q] : C.Queries) {
    SCOPED_TRACE(Name);
    expectMatchesReference(Q, C.B, Backend::Interp, Name);
  }
}

TEST(InterpCatalog, MatchesWithSpecializationDisabled) {
  Catalog C(/*Seed=*/12);
  for (const auto &[Name, Q] : C.Queries) {
    SCOPED_TRACE(Name);
    QueryResult Ref = runReference(Q, C.B);
    CompileOptions Options;
    Options.Exec = Backend::Interp;
    Options.SpecializeGroupByAggregate = false;
    Options.Name = std::string(Name) + "_nospec";
    QueryResult Got = compileQuery(Q, Options).run(C.B);
    ASSERT_EQ(Ref.rows().size(), Got.rows().size()) << Name;
    for (size_t I = 0; I != Ref.rows().size(); ++I)
      EXPECT_TRUE(valueNear(Ref.rows()[I], Got.rows()[I]))
          << Name << " row " << I;
  }
}

TEST(InterpCatalog, DifferentSeedsDifferentData) {
  // The same compiled query object re-runs against fresh bindings
  // (the §3.3/7.1 caching pattern).
  Catalog C1(21);
  Catalog C2(22);
  auto X = param("x", Type::doubleTy());
  Query Q = Query::doubleArray(0).select(lambda({X}, X * X)).sum();
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  CompiledQuery CQ = compileQuery(Q, Options);
  double R1 = CQ.run(C1.B).scalarValue().asDouble();
  double R2 = CQ.run(C2.B).scalarValue().asDouble();
  EXPECT_NE(R1, R2);
  EXPECT_DOUBLE_EQ(R1,
                   runReference(Q, C1.B).scalarValue().asDouble());
  EXPECT_DOUBLE_EQ(R2,
                   runReference(Q, C2.B).scalarValue().asDouble());
}

//===--------------------------------------------------------------------===//
// Property tests: random element-wise pipelines
//===--------------------------------------------------------------------===//

namespace {

/// Builds a random chain of Where/Select/Take/Skip over slot 0 terminated
/// by a random aggregate, entirely determined by Seed.
Query randomPipeline(std::uint64_t Seed) {
  support::SplitMix64 Rng(Seed);
  auto X = param("x", Type::doubleTy());
  Query Q = Query::doubleArray(0);
  unsigned Len = 1 + static_cast<unsigned>(Rng.nextBelow(5));
  for (unsigned I = 0; I != Len; ++I) {
    switch (Rng.nextBelow(5)) {
    case 0:
      Q = Q.select(lambda({X}, X * Rng.nextDouble(-2, 2) +
                                   Rng.nextDouble(-10, 10)));
      break;
    case 1:
      Q = Q.where(lambda({X}, X > Rng.nextDouble(-50, 50)));
      break;
    case 2:
      Q = Q.take(E(static_cast<std::int64_t>(Rng.nextBelow(300))));
      break;
    case 3:
      Q = Q.skip(E(static_cast<std::int64_t>(Rng.nextBelow(50))));
      break;
    default:
      Q = Q.select(lambda({X}, abs(X) + 1.0));
      break;
    }
  }
  switch (Rng.nextBelow(4)) {
  case 0:
    return Q.sum();
  case 1:
    return Q.count();
  case 2:
    return Q.min();
  default:
    return Q.toArray();
  }
}

class PipelinePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

} // namespace

TEST_P(PipelinePropertyTest, InterpMatchesReference) {
  std::uint64_t Seed = GetParam();
  std::vector<double> Xs = randomDoubles(200, Seed * 31 + 7);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  Query Q = randomPipeline(Seed);
  expectMatchesReference(Q, B, Backend::Interp,
                         "pipeline_" + std::to_string(Seed));
}

INSTANTIATE_TEST_SUITE_P(RandomPipelines, PipelinePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 40));

//===--------------------------------------------------------------------===//
// Property tests: random nested structures (the §5 pushdown machinery)
//===--------------------------------------------------------------------===//

namespace {

/// Builds a random query with nested sub-queries: the outer pipeline may
/// contain SelectMany over a Range whose bound depends on the outer
/// element, a nested scalar Select, or a nested Where — exercising the
/// stack transitions of Figures 9-11 in random combinations.
query::Query randomNestedQuery(std::uint64_t Seed) {
  support::SplitMix64 Rng(Seed);
  auto Xi = param("nx", Type::int64Ty());
  auto D = param("nd", Type::int64Ty());
  auto A = param("na", Type::int64Ty());
  auto Bl = param("nb", Type::boolTy());

  // Start from int64s bounded to keep triangle sizes small.
  Query Q = Query::int64Array(0).select(lambda({Xi}, abs(Xi) % 15));
  unsigned Len = 1 + static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned I = 0; I != Len; ++I) {
    switch (Rng.nextBelow(4)) {
    case 0: { // flatten over an outer-dependent range
      std::int64_t Mul =
          1 + static_cast<std::int64_t>(Rng.nextBelow(3));
      Q = Q.selectMany(Xi, Query::range(E(0), Xi)
                               .select(lambda({D}, D * Mul + Xi)));
      break;
    }
    case 1: { // nested scalar aggregate referencing the outer element
      Q = Q.selectNested(
          Xi, Query::range(E(0), Xi % 7 + 1)
                  .aggregate(E(0), lambda({A, D}, A + D),
                             lambda({A}, A + Xi)));
      break;
    }
    case 2: { // nested bool predicate
      Q = Q.whereNested(
          Xi, Query::range(E(0), E(5))
                  .aggregate(E(false),
                             lambda({Bl, D}, Bl || (D == Xi % 5))));
      break;
    }
    default: // plain element-wise stage between nestings
      Q = Q.where(lambda({Xi}, Xi % 2 == 0));
      break;
    }
  }
  switch (Rng.nextBelow(3)) {
  case 0:
    return Q.sum();
  case 1:
    return Q.count();
  default:
    return Q.toArray();
  }
}

class NestedPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

} // namespace

TEST_P(NestedPropertyTest, InterpMatchesReference) {
  std::uint64_t Seed = GetParam();
  std::vector<std::int64_t> Is = randomInt64s(60, Seed * 97 + 3);
  Bindings B;
  B.bindInt64Array(0, Is.data(), static_cast<std::int64_t>(Is.size()));
  Query Q = randomNestedQuery(Seed);
  expectMatchesReference(Q, B, Backend::Interp,
                         "nested_" + std::to_string(Seed));
}

INSTANTIATE_TEST_SUITE_P(RandomNested, NestedPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

//===--------------------------------------------------------------------===//
// Edge cases
//===--------------------------------------------------------------------===//

TEST(InterpEdge, EmptySource) {
  Bindings B;
  std::vector<double> Empty;
  B.bindDoubleArray(0, Empty.data(), 0);
  auto X = param("x", Type::doubleTy());
  Query Sum = Query::doubleArray(0).sum();
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  EXPECT_DOUBLE_EQ(
      compileQuery(Sum, Options).run(B).scalarValue().asDouble(), 0.0);
  Query Rows = Query::doubleArray(0).select(lambda({X}, X * 2.0));
  EXPECT_TRUE(compileQuery(Rows, Options).run(B).rows().empty());
}

TEST(InterpEdge, SingleElement) {
  std::vector<double> One = {4.0};
  Bindings B;
  B.bindDoubleArray(0, One.data(), 1);
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  EXPECT_DOUBLE_EQ(compileQuery(Query::doubleArray(0).min(), Options)
                       .run(B)
                       .scalarValue()
                       .asDouble(),
                   4.0);
  EXPECT_DOUBLE_EQ(compileQuery(Query::doubleArray(0).average(), Options)
                       .run(B)
                       .scalarValue()
                       .asDouble(),
                   4.0);
}

TEST(InterpEdge, RangeSourceNegativeCountIsEmpty) {
  Bindings B;
  Query Q = Query::range(E(0), E(-5)).count();
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  EXPECT_EQ(compileQuery(Q, Options).run(B).scalarValue().asInt64(), 0);
}

TEST(InterpEdge, TakeZero) {
  std::vector<double> Xs = {1, 2, 3};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 3);
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  Query Q = Query::doubleArray(0).take(E(0)).count();
  EXPECT_EQ(compileQuery(Q, Options).run(B).scalarValue().asInt64(), 0);
}

TEST(InterpEdge, GroupOfSingleKey) {
  std::vector<double> Xs = {1.0, 1.5, 1.9};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 3);
  auto X = param("x", Type::doubleTy());
  auto A = param("a", Type::doubleTy());
  Query Q = Query::doubleArray(0).groupByAggregate(
      lambda({X}, toInt64(X)), E(0.0), lambda({A, X}, A + X));
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  QueryResult R = compileQuery(Q, Options).run(B);
  ASSERT_EQ(R.rows().size(), 1u);
  EXPECT_EQ(R.rows()[0].first().asInt64(), 1);
  EXPECT_DOUBLE_EQ(R.rows()[0].second().asDouble(), 4.4);
}
