//===- tests/rt_test.cpp - Generated-code runtime tests --------*- C++ -*-===//

#include "steno/Rt.h"

#include "gtest/gtest.h"

#include <vector>

using namespace steno::rt;

TEST(RtGroupSink, InsertionOrderPreserved) {
  GroupSink S;
  S.put(5, 1.0);
  S.put(2, 2.0);
  S.put(5, 3.0);
  ASSERT_EQ(S.size(), 2);
  Pair<std::int64_t, VecView> G0 = S.group(0);
  EXPECT_EQ(G0.First, 5);
  ASSERT_EQ(G0.Second.Len, 2);
  EXPECT_DOUBLE_EQ(G0.Second.Data[0], 1.0);
  EXPECT_DOUBLE_EQ(G0.Second.Data[1], 3.0);
  EXPECT_EQ(S.group(1).First, 2);
}

TEST(RtGroupSink, ManyKeys) {
  GroupSink S;
  for (int I = 0; I < 1000; ++I)
    S.put(I % 37, static_cast<double>(I));
  EXPECT_EQ(S.size(), 37);
  std::int64_t Total = 0;
  for (std::int64_t I = 0; I != S.size(); ++I)
    Total += S.group(I).Second.Len;
  EXPECT_EQ(Total, 1000);
}

TEST(RtGroupAggSink, SlotInsertsSeedOnce) {
  GroupAggSink<double> S;
  double &A = S.slot(7, 100.0);
  EXPECT_DOUBLE_EQ(A, 100.0);
  A = 150.0;
  double &B = S.slot(7, 100.0);
  EXPECT_DOUBLE_EQ(B, 150.0) << "existing accumulator, not a fresh seed";
  EXPECT_EQ(S.size(), 1);
}

TEST(RtGroupAggSink, KeyAndAccByIndex) {
  GroupAggSink<std::int64_t> S;
  S.slot(9, 0) += 1;
  S.slot(4, 0) += 2;
  S.slot(9, 0) += 3;
  ASSERT_EQ(S.size(), 2);
  EXPECT_EQ(S.keyAt(0), 9);
  EXPECT_EQ(S.accAt(0), 4);
  EXPECT_EQ(S.keyAt(1), 4);
  EXPECT_EQ(S.accAt(1), 2);
}

TEST(RtGroupAggSink, PairAccumulators) {
  GroupAggSink<Pair<double, std::int64_t>> S;
  auto &A = S.slot(0, Pair<double, std::int64_t>{0.0, 0});
  A = Pair<double, std::int64_t>{A.First + 2.5, A.Second + 1};
  EXPECT_DOUBLE_EQ(S.accAt(0).First, 2.5);
  EXPECT_EQ(S.accAt(0).Second, 1);
}

TEST(RtDenseAggSink, SeededAndIndexed) {
  DenseAggSink<double> S(4, 1.5);
  ASSERT_EQ(S.size(), 4);
  for (std::int64_t I = 0; I != 4; ++I) {
    EXPECT_EQ(S.keyAt(I), I);
    EXPECT_DOUBLE_EQ(S.accAt(I), 1.5);
  }
  S.slot(2) += 10.0;
  EXPECT_DOUBLE_EQ(S.accAt(2), 11.5);
  EXPECT_DOUBLE_EQ(S.accAt(1), 1.5);
}

TEST(RtDenseAggSink, ZeroAndNegativeBounds) {
  DenseAggSink<double> Empty(0, 0.0);
  EXPECT_EQ(Empty.size(), 0);
  DenseAggSink<double> Neg(-3, 0.0);
  EXPECT_EQ(Neg.size(), 0);
}

//===--------------------------------------------------------------------===//
// Emitter / cell flattening
//===--------------------------------------------------------------------===//

namespace {

struct CapturedRows {
  std::vector<std::vector<Cell>> Rows;

  static void callback(void *Ctx, const Cell *Cells, std::int64_t N) {
    auto *Self = static_cast<CapturedRows *>(Ctx);
    Self->Rows.emplace_back(Cells, Cells + N);
  }

  Emitter emitter() { return Emitter{this, &callback}; }
};

} // namespace

TEST(RtEmit, ScalarCellKinds) {
  CapturedRows Out;
  Emitter E = Out.emitter();
  emitRow(&E, 2.5);
  emitRow(&E, std::int64_t{42});
  emitRow(&E, true);
  ASSERT_EQ(Out.Rows.size(), 3u);
  EXPECT_EQ(Out.Rows[0][0].Kind, 2);
  EXPECT_DOUBLE_EQ(Out.Rows[0][0].D, 2.5);
  EXPECT_EQ(Out.Rows[1][0].Kind, 1);
  EXPECT_EQ(Out.Rows[1][0].I, 42);
  EXPECT_EQ(Out.Rows[2][0].Kind, 0);
  EXPECT_EQ(Out.Rows[2][0].I, 1);
}

TEST(RtEmit, VecCellBorrows) {
  double Buf[] = {1, 2, 3};
  CapturedRows Out;
  Emitter E = Out.emitter();
  emitRow(&E, VecView{Buf, 3});
  ASSERT_EQ(Out.Rows.size(), 1u);
  EXPECT_EQ(Out.Rows[0][0].Kind, 3);
  EXPECT_EQ(Out.Rows[0][0].VData, Buf);
  EXPECT_EQ(Out.Rows[0][0].VLen, 3);
}

TEST(RtEmit, PairFlattensPreOrder) {
  CapturedRows Out;
  Emitter E = Out.emitter();
  Pair<std::int64_t, Pair<double, bool>> Row{7, {1.5, true}};
  emitRow(&E, Row);
  ASSERT_EQ(Out.Rows.size(), 1u);
  ASSERT_EQ(Out.Rows[0].size(), 3u);
  EXPECT_EQ(Out.Rows[0][0].I, 7);
  EXPECT_DOUBLE_EQ(Out.Rows[0][1].D, 1.5);
  EXPECT_EQ(Out.Rows[0][2].I, 1);
}

TEST(RtEmit, CellCounts) {
  EXPECT_EQ(CellCount<double>::value, 1);
  EXPECT_EQ((CellCount<Pair<double, std::int64_t>>::value), 2);
  EXPECT_EQ((CellCount<Pair<Pair<bool, double>, VecView>>::value), 3);
}

TEST(RtBindings, CaptureValueDefaults) {
  CaptureValue V;
  EXPECT_EQ(V.I, 0);
  EXPECT_EQ(V.VData, nullptr);
  SourceBinding S;
  EXPECT_EQ(S.Dim, 1);
}
