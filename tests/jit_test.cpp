//===- tests/jit_test.cpp - Native backend differentials -------*- C++ -*-===//
//
// Validates the compile-load-invoke pipeline (paper §3.3): the native
// backend must agree with the reference executor on the full catalog, the
// one-off compilation cost must be observable (§7.1), and compiled query
// objects must be reusable across bindings.
//
//===----------------------------------------------------------------------===//

#include "QueryTestUtil.h"
#include "jit/Jit.h"

#include "gtest/gtest.h"

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using namespace steno::testutil;
using query::Query;

TEST(JitCatalog, AllQueriesMatchReference) {
  Catalog C(/*Seed=*/31);
  for (const auto &[Name, Q] : C.Queries) {
    SCOPED_TRACE(Name);
    expectMatchesReference(Q, C.B, Backend::Native, Name);
  }
}

TEST(JitModule, CompileCostIsMeasured) {
  auto X = param("x", Type::doubleTy());
  Query Q = Query::doubleArray(0).select(lambda({X}, X * X)).sum();
  CompiledQuery CQ = compileQuery(Q, {});
  EXPECT_GT(CQ.compileMillis(), 0.0)
      << "the §7.1 one-off cost must be observable";
}

TEST(JitModule, GeneratedSourceIsAvailable) {
  auto X = param("x", Type::doubleTy());
  Query Q = Query::doubleArray(0).where(lambda({X}, X > 0.0)).count();
  CompiledQuery CQ = compileQuery(Q, {});
  EXPECT_NE(CQ.generatedSource().find("extern \"C\""), std::string::npos);
  EXPECT_NE(CQ.generatedSource().find("for ("), std::string::npos);
}

TEST(JitModule, CompileFailureIsReported) {
  std::string Err;
  auto Module = jit::CompiledModule::compile("this is not C++ at all;",
                                             "broken_entry", &Err);
  EXPECT_EQ(Module, nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(JitModule, MissingSymbolIsReported) {
  std::string Err;
  auto Module = jit::CompiledModule::compile(
      "extern \"C\" void some_other_name(void*, void*) {}\n",
      "expected_name", &Err);
  EXPECT_EQ(Module, nullptr);
  EXPECT_NE(Err.find("dlsym"), std::string::npos) << Err;
}

TEST(JitModule, ReusableAcrossBindings) {
  // The query-cache usage pattern: compile once, run many (paper §7.1).
  auto X = param("x", Type::doubleTy());
  Query Q = Query::doubleArray(0).sum();
  CompiledQuery CQ = compileQuery(Q, {});
  for (std::uint64_t Seed = 0; Seed != 5; ++Seed) {
    std::vector<double> Xs = randomDoubles(100, Seed);
    Bindings B;
    B.bindDoubleArray(0, Xs.data(), 100);
    double Expected = 0;
    for (double V : Xs)
      Expected += V;
    EXPECT_DOUBLE_EQ(CQ.run(B).scalarValue().asDouble(), Expected);
  }
  (void)X;
}

TEST(JitModule, TwoQueriesCoexist) {
  auto X = param("x", Type::doubleTy());
  Query QSum = Query::doubleArray(0).sum();
  Query QCount = Query::doubleArray(0).count();
  CompiledQuery A = compileQuery(QSum, {});
  CompiledQuery B2 = compileQuery(QCount, {});
  std::vector<double> Xs = {1, 2, 3};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 3);
  EXPECT_DOUBLE_EQ(A.run(B).scalarValue().asDouble(), 6.0);
  EXPECT_EQ(B2.run(B).scalarValue().asInt64(), 3);
  (void)X;
}

TEST(JitProperty, RandomPipelinesMatchInterp) {
  // A handful of random pipelines through BOTH backends (kept small:
  // each native compile costs hundreds of ms).
  for (std::uint64_t Seed : {3u, 17u, 29u}) {
    std::vector<double> Xs = randomDoubles(150, Seed + 1000);
    Bindings B;
    B.bindDoubleArray(0, Xs.data(),
                      static_cast<std::int64_t>(Xs.size()));
    auto X = param("x", Type::doubleTy());
    Query Q = Query::doubleArray(0)
                  .where(lambda({X}, X > -20.0))
                  .select(lambda({X}, X * X - 1.0))
                  .skip(E(static_cast<std::int64_t>(Seed % 7)))
                  .sum();
    CompileOptions Native;
    Native.Exec = Backend::Native;
    CompileOptions Interp;
    Interp.Exec = Backend::Interp;
    double VN =
        compileQuery(Q, Native).run(B).scalarValue().asDouble();
    double VI =
        compileQuery(Q, Interp).run(B).scalarValue().asDouble();
    EXPECT_DOUBLE_EQ(VN, VI) << "seed " << Seed;
  }
}
