//===- tests/e2e_test.cpp - Paper workloads, all execution paths -*-C++-*-===//
//
// Runs the paper's evaluation queries (§7.1 Sum/SumSq/Cart/Group and the
// §7.2 k-means step) at test scale through every execution path in the
// repo — the linq baseline, the reference executor, both Steno backends,
// the static fused library and a hand-written loop — and checks they all
// agree. This is the semantic core of the reproduction: Steno must
// "faithfully reproduce the semantics of unoptimized LINQ" (§9).
//
//===----------------------------------------------------------------------===//

#include "QueryTestUtil.h"
#include "fused/Fused.h"
#include "linq/Linq.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using namespace steno::testutil;
using query::Query;

namespace {

constexpr size_t N = 4000;

struct Fixture {
  std::vector<double> Xs = randomDoubles(N, 77, 0, 1000);
  std::vector<double> Ys = randomDoubles(100, 78, 0, 10);
  Bindings B;

  Fixture() {
    B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
    B.bindDoubleArray(1, Ys.data(), static_cast<std::int64_t>(Ys.size()));
  }
};

double runSteno(const Query &Q, const Bindings &B, Backend Exec) {
  CompileOptions Options;
  Options.Exec = Exec;
  return compileQuery(Q, Options).run(B).scalarValue().asDouble();
}

} // namespace

TEST(E2E, SumAllPathsAgree) {
  Fixture F;
  double Hand = 0;
  for (double X : F.Xs)
    Hand += X;
  double Linq = linq::fromSpan(F.Xs.data(), F.Xs.size()).sum();
  double Fused = fused::from(F.Xs) | fused::sum();
  Query Q = Query::doubleArray(0).sum();
  double Ref = runReference(Q, F.B).scalarValue().asDouble();
  double Interp = runSteno(Q, F.B, Backend::Interp);
  double Native = runSteno(Q, F.B, Backend::Native);
  EXPECT_DOUBLE_EQ(Linq, Hand);
  EXPECT_DOUBLE_EQ(Fused, Hand);
  EXPECT_DOUBLE_EQ(Ref, Hand);
  EXPECT_DOUBLE_EQ(Interp, Hand);
  EXPECT_DOUBLE_EQ(Native, Hand);
}

TEST(E2E, SumSqAllPathsAgree) {
  Fixture F;
  double Hand = 0;
  for (double X : F.Xs)
    Hand += X * X;
  double Linq = linq::fromSpan(F.Xs.data(), F.Xs.size())
                    .select([](double X) { return X * X; })
                    .sum();
  double Fused = fused::from(F.Xs) |
                 fused::select([](double X) { return X * X; }) |
                 fused::sum();
  auto X = param("x", Type::doubleTy());
  Query Q = Query::doubleArray(0).select(lambda({X}, X * X)).sum();
  EXPECT_DOUBLE_EQ(Linq, Hand);
  EXPECT_DOUBLE_EQ(Fused, Hand);
  EXPECT_DOUBLE_EQ(runReference(Q, F.B).scalarValue().asDouble(), Hand);
  EXPECT_DOUBLE_EQ(runSteno(Q, F.B, Backend::Interp), Hand);
  EXPECT_DOUBLE_EQ(runSteno(Q, F.B, Backend::Native), Hand);
}

TEST(E2E, CartAllPathsAgree) {
  // Cart (scaled down): pairwise products of Xs x Ys, summed.
  Fixture F;
  double Hand = 0;
  for (double X : F.Xs)
    for (double Y : F.Ys)
      Hand += X * Y;

  double Linq =
      linq::fromSpan(F.Xs.data(), F.Xs.size())
          .selectMany([&F](double X) {
            return linq::fromSpan(F.Ys.data(), F.Ys.size())
                .select([X](double Y) { return X * Y; });
          })
          .sum();

  double Fused = fused::from(F.Xs) | fused::selectMany([&F](double X) {
                   return fused::from(F.Ys) |
                          fused::select([X](double Y) { return X * Y; });
                 }) |
                 fused::sum();

  auto X = param("x", Type::doubleTy());
  auto Y = param("y", Type::doubleTy());
  Query Q = Query::doubleArray(0)
                .selectMany(X, Query::doubleArray(1)
                                   .select(lambda({Y}, X * Y)))
                .sum();

  double Tol = 1e-9 * std::abs(Hand);
  EXPECT_NEAR(Linq, Hand, Tol);
  EXPECT_NEAR(Fused, Hand, Tol);
  EXPECT_NEAR(runReference(Q, F.B).scalarValue().asDouble(), Hand, Tol);
  EXPECT_NEAR(runSteno(Q, F.B, Backend::Interp), Hand, Tol);
  EXPECT_NEAR(runSteno(Q, F.B, Backend::Native), Hand, Tol);
}

TEST(E2E, GroupHistogramAllPathsAgree) {
  // Group (scaled down): bin values, count per bin — the §7.1 histogram
  // via GroupBy with an aggregating selector.
  Fixture F;
  const std::int64_t Bins = 20;
  const double Width = 1000.0 / Bins;

  std::vector<std::int64_t> Hand(Bins, 0);
  for (double X : F.Xs) {
    std::int64_t Bin = static_cast<std::int64_t>(X / Width);
    if (Bin >= 0 && Bin < Bins)
      ++Hand[Bin];
  }

  // linq baseline: GroupBy + result selector.
  std::vector<std::int64_t> LinqCounts(Bins, 0);
  auto Groups =
      linq::fromSpan(F.Xs.data(), F.Xs.size())
          .where([Width, Bins](double X) {
            std::int64_t Bin = static_cast<std::int64_t>(X / Width);
            return Bin >= 0 && Bin < Bins;
          })
          .groupBy(
              [Width](double X) {
                return static_cast<std::int64_t>(X / Width);
              },
              [](std::int64_t Key, const std::vector<double> &Bag) {
                return std::make_pair(Key,
                                      static_cast<std::int64_t>(
                                          Bag.size()));
              });
  for (const auto &[Key, Count] : Groups.toVector())
    LinqCounts[static_cast<size_t>(Key)] = Count;
  EXPECT_EQ(LinqCounts, Hand);

  // Steno dynamic pipeline: groupBy + nested bag count, specialized.
  auto X = param("x", Type::doubleTy());
  auto G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  auto C = param("c", Type::int64Ty());
  auto V = param("v", Type::doubleTy());
  Query BagCount = Query::overVec(G.second())
                       .aggregate(E(0), lambda({C, V}, C + 1),
                                  lambda({C}, pair(G.first(), C)));
  Query Q = Query::doubleArray(0)
                .where(lambda({X}, (X >= 0.0) &&
                                       (X < toDouble(E(1000)))))
                .groupBy(lambda({X}, toInt64(X / Width)))
                .selectNested(G, BagCount);

  for (Backend Exec : {Backend::Interp, Backend::Native}) {
    CompileOptions Options;
    Options.Exec = Exec;
    CompiledQuery CQ = compileQuery(Q, Options);
    EXPECT_TRUE(CQ.groupBySpecialized());
    std::vector<std::int64_t> Got(Bins, 0);
    QueryResult R = CQ.run(F.B);
    for (const Value &Row : R.rows())
      Got[static_cast<size_t>(Row.first().asInt64())] =
          Row.second().asInt64();
    EXPECT_EQ(Got, Hand) << "backend " << static_cast<int>(Exec);
  }

  // fused static path.
  auto Entries =
      fused::from(F.Xs) | fused::groupByAggregate(
                              [Width](double Xv) {
                                return static_cast<std::int64_t>(Xv /
                                                                 Width);
                              },
                              std::int64_t{0},
                              [](std::int64_t A, double) { return A + 1; });
  std::vector<std::int64_t> FusedCounts(Bins, 0);
  for (const auto &[Key, Count] : Entries)
    if (Key >= 0 && Key < Bins)
      FusedCounts[static_cast<size_t>(Key)] = Count;
  EXPECT_EQ(FusedCounts, Hand);
}

TEST(E2E, KmeansAssignmentStepAgrees) {
  // One §7.2 step-1 computation: nearest-centroid distances summed (a
  // scalar proxy that exercises the 3-level nested argmin query).
  const std::int64_t Dim = 8;
  const std::int64_t K = 4;
  const std::int64_t NumPoints = 300;
  std::vector<double> Points =
      randomDoubles(static_cast<size_t>(Dim * NumPoints), 91);
  std::vector<double> Centroids =
      randomDoubles(static_cast<size_t>(Dim * K), 92);

  // Hand loop.
  double Hand = 0;
  for (std::int64_t I = 0; I != NumPoints; ++I) {
    double Best = INFINITY;
    for (std::int64_t J = 0; J != K; ++J) {
      double D2 = 0;
      for (std::int64_t D = 0; D != Dim; ++D) {
        double Delta = Points[I * Dim + D] - Centroids[J * Dim + D];
        D2 += Delta * Delta;
      }
      if (D2 < Best)
        Best = D2;
    }
    Hand += Best;
  }

  Bindings B;
  B.bindPointArray(0, Points.data(), NumPoints, Dim);
  B.bindDoubleArray(1, Centroids.data(),
                    static_cast<std::int64_t>(Centroids.size()));

  auto P = param("p", Type::vecTy());
  auto J = param("j", Type::int64Ty());
  auto D = param("d", Type::int64Ty());
  auto DV = param("dv", Type::doubleTy());
  E DimE = E(Dim);
  Query Dist2 =
      Query::range(E(0), DimE)
          .select(lambda({D}, (P[D] - slice(1, J * DimE, DimE)[D]) *
                                  (P[D] - slice(1, J * DimE, DimE)[D])))
          .sum();
  Query MinDist = Query::range(E(0), E(K))
                      .selectNested(J, Dist2)
                      .select(lambda({DV}, DV))
                      .min();
  Query Q = Query::pointArray(0).selectNested(P, MinDist).sum();

  double Tol = 1e-9 * std::max(1.0, std::abs(Hand));
  EXPECT_NEAR(runReference(Q, B).scalarValue().asDouble(), Hand, Tol);
  EXPECT_NEAR(runSteno(Q, B, Backend::Interp), Hand, Tol);
  EXPECT_NEAR(runSteno(Q, B, Backend::Native), Hand, Tol);
}

TEST(E2E, Figure1QueryShape) {
  // The Figure 1 query is SumSq over 10^7 doubles; at test scale, verify
  // the Steno output is the single-loop program the figure implies and
  // that it produces the right answer through the JIT.
  Fixture F;
  auto X = param("x", Type::doubleTy());
  Query Q = Query::doubleArray(0).select(lambda({X}, X * X)).sum();
  CompiledQuery CQ = compileQuery(Q, {});
  const std::string &Src = CQ.generatedSource();
  EXPECT_NE(Src.find("for ("), std::string::npos);
  EXPECT_EQ(Src.find("virtual"), std::string::npos);
  double Hand = 0;
  for (double V : F.Xs)
    Hand += V * V;
  EXPECT_DOUBLE_EQ(CQ.run(F.B).scalarValue().asDouble(), Hand);
}

//===--------------------------------------------------------------------===//
// Analysis-mode matrix: the same workloads under STENO_ANALYZE=strict and
// =off (set here explicitly via CompileOptions so the test is independent
// of the environment). Strict must accept every well-formed paper query
// with identical results to Off — the analyzer may only reject, never
// change semantics — and must reject a query with an error finding that
// Off happily runs.
//===--------------------------------------------------------------------===//

namespace {

double runWithMode(const Query &Q, const Bindings &B, Backend Exec,
                   analysis::Mode Mode) {
  CompileOptions Options;
  Options.Exec = Exec;
  Options.Analyze = Mode;
  Options.Name = Mode == analysis::Mode::Strict ? "e2e_strict" : "e2e_off";
  return compileQuery(Q, Options).run(B).scalarValue().asDouble();
}

} // namespace

TEST(E2EAnalysisMatrix, StrictAndOffAgreeOnPaperQueries) {
  Fixture F;
  auto X = param("x", Type::doubleTy());
  auto Y = param("y", Type::doubleTy());

  std::vector<Query> Matrix;
  // §7.1 Sum / SumSq / filtered SumSq.
  Matrix.push_back(Query::doubleArray(0).sum());
  Matrix.push_back(
      Query::doubleArray(0).select(lambda({X}, X * X)).sum());
  Matrix.push_back(Query::doubleArray(0)
                       .where(lambda({X}, X > E(500.0)))
                       .select(lambda({X}, X * X))
                       .sum());
  // §7.1 Cart: nested iteration.
  Matrix.push_back(
      Query::doubleArray(0)
          .selectMany(X, Query::doubleArray(1).select(lambda({Y}, X * Y)))
          .sum());
  // Positional pipeline (order-sensitive, certificate-denied shape).
  Matrix.push_back(Query::doubleArray(0)
                       .skip(E(std::int64_t{5}))
                       .take(E(std::int64_t{100}))
                       .sum());

  for (std::size_t I = 0; I != Matrix.size(); ++I) {
    for (Backend Exec : {Backend::Interp, Backend::Native}) {
      double Strict =
          runWithMode(Matrix[I], F.B, Exec, analysis::Mode::Strict);
      double Off = runWithMode(Matrix[I], F.B, Exec, analysis::Mode::Off);
      EXPECT_DOUBLE_EQ(Strict, Off)
          << "query " << I << " backend "
          << (Exec == Backend::Native ? "native" : "interp");
    }
  }
}

TEST(E2EAnalysisMatrix, StrictRejectsWhatOffRuns) {
  // take(-1): a constant-range error (ST4xxx NegativeCount). Off-mode
  // compiles and yields the empty-prefix sum; strict mode must reject at
  // compile time, before codegen.
  Fixture F;
  Query Q = Query::doubleArray(0).take(E(std::int64_t{-1})).sum();
  EXPECT_DOUBLE_EQ(runWithMode(Q, F.B, Backend::Interp, analysis::Mode::Off),
                   0.0);
  CompileOptions Strict;
  Strict.Analyze = analysis::Mode::Strict;
  Strict.Name = "e2e_negative_take";
  EXPECT_DEATH(compileQuery(Q, Strict), "rejected by static analysis");
}
