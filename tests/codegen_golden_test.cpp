//===- tests/codegen_golden_test.cpp - Codegen snapshot tests --*- C++ -*-===//
//
// Golden-file snapshots of the pushdown-automaton code generator: a
// handful of canonical queries are lowered and printed, and the emitted
// translation unit is compared byte-for-byte against a checked-in file
// under tests/golden/. Catches unintended codegen drift — a fusion
// regression, a CSE ordering change, a printer tweak — that behavioral
// tests would miss as long as the answers stay right.
//
// Updating intentionally:   STENO_UPDATE_GOLDEN=1 ctest -R CodegenGolden
// then review and commit the tests/golden/ diff like any other change.
//
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "cpptree/Printer.h"
#include "expr/Dsl.h"
#include "query/Query.h"
#include "quil/Quil.h"
#include "support/TempFile.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <fstream>

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using namespace steno::query;

#ifndef STENO_TESTS_SRC_DIR
#error "tests/CMakeLists.txt must define STENO_TESTS_SRC_DIR"
#endif

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(STENO_TESTS_SRC_DIR) + "/golden/" + Name + ".golden.cpp";
}

std::string readAll(const std::string &Path) {
  std::ifstream In(Path);
  if (!In.good())
    return "";
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

/// Lowers, validates and prints \p Q with a fixed entry symbol. This goes
/// through the same automaton as compileQuery but skips its process-wide
/// symbol counter, so the output is byte-stable across runs and test
/// orderings.
std::string emit(const Query &Q, const std::string &Entry) {
  quil::Chain Chain = quil::lower(Q);
  auto Err = quil::validate(Chain);
  EXPECT_FALSE(Err.has_value()) << *Err;
  return cpptree::printProgram(codegen::generate(Chain, Entry));
}

void checkGolden(const Query &Q, const std::string &Name) {
  std::string Got = emit(Q, Name);
  ASSERT_FALSE(Got.empty());
  std::string Path = goldenPath(Name);
  if (std::getenv("STENO_UPDATE_GOLDEN")) {
    support::writeFile(Path, Got);
    SUCCEED() << "updated " << Path;
    return;
  }
  std::string Want = readAll(Path);
  ASSERT_FALSE(Want.empty())
      << "missing golden file " << Path
      << " — run with STENO_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(Want, Got)
      << "generated code drifted from " << Path
      << "; if intentional, re-run with STENO_UPDATE_GOLDEN=1 and commit";
}

} // namespace

// The paper's running example (§2): sum of squares over a filtered
// stream; Select/Where fuse into one loop.
TEST(CodegenGoldenTest, FusedFilterMapSum) {
  E X = param("x", Type::doubleTy());
  Query Q = Query::doubleArray(0)
                .where(lambda({X}, X > E(0.0)))
                .select(lambda({X}, X * X))
                .sum();
  checkGolden(Q, "golden_filter_map_sum");
}

// Figure 11 "Ret-pop": a nested query consumed in place by a downstream
// operator of the outer query — the pop-two/push-triple transition.
TEST(CodegenGoldenTest, NestedSelectManyRetPop) {
  E X = param("x", Type::doubleTy());
  E Y = param("y", Type::doubleTy());
  Query Nested = Query::doubleArray(1).select(lambda({Y}, X + Y));
  Query Q = Query::doubleArray(0)
                .selectMany(X, Nested)
                .where(lambda({X}, X > E(1.0)))
                .sum();
  checkGolden(Q, "golden_nested_ret_pop");
}

// Hash GroupByAggregate with an associative combiner: the specialized
// group sink, not a generic fold.
TEST(CodegenGoldenTest, GroupByAggregateSum) {
  E K = param("k", Type::int64Ty());
  E A = param("a", Type::int64Ty());
  E B = param("b", Type::int64Ty());
  Query Q = Query::int64Array(0).groupByAggregate(
      lambda({K}, K % E(std::int64_t{10})), E(std::int64_t{0}),
      lambda({A, K}, A + K), Lambda(), lambda({A, B}, A + B));
  checkGolden(Q, "golden_group_by_aggregate");
}

// Positional operators (skip/take) ahead of an ordered sink: exercises
// the counter plumbing and the OrderBy buffer-then-sort emission.
TEST(CodegenGoldenTest, SkipTakeOrderBy) {
  E X = param("x", Type::doubleTy());
  Query Q = Query::doubleArray(0)
                .skip(E(std::int64_t{2}))
                .take(E(std::int64_t{8}))
                .orderBy(lambda({X}, -X))
                .toArray();
  checkGolden(Q, "golden_skip_take_orderby");
}

// CSE on a repeated pure subexpression: (x*x) must be hoisted once.
TEST(CodegenGoldenTest, CseHoistsRepeatedSubexpression) {
  E X = param("x", Type::doubleTy());
  Query Q = Query::doubleArray(0)
                .select(lambda({X}, (X * X) + (X * X) * E(0.5)))
                .sum();
  checkGolden(Q, "golden_cse_hoist");
}
