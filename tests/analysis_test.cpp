//===- tests/analysis_test.cpp - Static-analysis pipeline ------*- C++ -*-===//
///
/// \file
/// Exercises the steno::analysis passes end to end: exact diagnostic codes
/// and locations for malformed/unsafe queries, the parallel-safety
/// certificate, STENO_ANALYZE enforcement modes, the uniform ST2001
/// runtime trap on both backends, and the differential property that an
/// analyzer-certified query computes identical results through the
/// reference executor, the compiled pipeline, and the plinq parallel path.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "dryad/Dist.h"
#include "plinq/QueryPar.h"
#include "steno/RefExec.h"
#include "steno/Steno.h"

#include "QueryTestUtil.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <vector>

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using analysis::AggClass;
using analysis::AnalysisResult;
using analysis::DiagCode;
using analysis::Diagnostic;
using analysis::ExprRole;
using analysis::Severity;
using namespace steno::testutil;
using query::Query;
using quil::Chain;

namespace {

E x() { return param("x", Type::doubleTy()); }
E xi() { return param("xi", Type::int64Ty()); }
E acc() { return param("a", Type::doubleTy()); }
E accB() { return param("b", Type::doubleTy()); }

AnalysisResult analyzed(const Query &Q) {
  return analysis::analyzeChain(quil::lower(Q));
}

/// EXPECTs exactly one diagnostic with \p Code and checks its location.
const Diagnostic *expectDiagAt(const AnalysisResult &R, DiagCode Code,
                               Severity Sev, std::vector<unsigned> OpPath,
                               ExprRole Role = ExprRole::None) {
  const Diagnostic *D = R.Diags.find(Code);
  EXPECT_NE(D, nullptr) << "missing " << analysis::diagCodeName(Code)
                        << "; got:\n"
                        << R.Diags.render(Severity::Note);
  if (!D)
    return nullptr;
  EXPECT_EQ(D->Sev, Sev) << D->render();
  EXPECT_EQ(D->Loc.OpPath, OpPath) << D->render();
  EXPECT_EQ(D->Loc.Role, Role) << D->render();
  return D;
}

/// EXPECTs \p A and \p B hold the same rows (within FP tolerance).
void expectSameResults(const QueryResult &A, const QueryResult &B,
                       const std::string &Name) {
  ASSERT_EQ(A.isScalar(), B.isScalar()) << Name;
  ASSERT_EQ(A.rows().size(), B.rows().size()) << Name;
  for (size_t I = 0; I != A.rows().size(); ++I)
    EXPECT_TRUE(valueNear(A.rows()[I], B.rows()[I]))
        << Name << " row " << I << ": a=" << valueStr(A.rows()[I])
        << " b=" << valueStr(B.rows()[I]);
}

dryad::DistOptions interpDist(const char *Name) {
  dryad::DistOptions O;
  O.Exec = Backend::Interp;
  O.Name = Name;
  return O;
}

} // namespace

//===--------------------------------------------------------------------===//
// ST1xxx: type/arity checker on deliberately broken chains
//===--------------------------------------------------------------------===//

namespace {

/// The sumsq chain (Src Trans Agg Ret) with a mutation hook on op #1.
Chain sumsqChain() {
  return quil::lower(
      Query::doubleArray(0).select(lambda({x()}, x() * x())).sum());
}

} // namespace

TEST(AnalysisTypeCheck, BadArityIsST1001) {
  Chain C = sumsqChain();
  E Y = param("y", Type::doubleTy());
  C.Ops[1].Fn = lambda({x(), Y}, x() + Y);
  AnalysisResult R = analysis::analyzeChain(C);
  expectDiagAt(R, DiagCode::BadArity, Severity::Error, {1}, ExprRole::Fn);
  EXPECT_FALSE(R.ok());
}

TEST(AnalysisTypeCheck, ParamTypeMismatchIsST1002) {
  Chain C = sumsqChain();
  C.Ops[1].Fn = lambda({xi()}, toDouble(xi()));
  AnalysisResult R = analysis::analyzeChain(C);
  expectDiagAt(R, DiagCode::ParamTypeMismatch, Severity::Error, {1},
               ExprRole::Fn);
}

TEST(AnalysisTypeCheck, ResultTypeMismatchIsST1003) {
  Chain C = sumsqChain();
  C.Ops[1].Fn = lambda({x()}, toInt64(x()));
  AnalysisResult R = analysis::analyzeChain(C);
  expectDiagAt(R, DiagCode::ResultTypeMismatch, Severity::Error, {1},
               ExprRole::Fn);
}

TEST(AnalysisTypeCheck, PredicateNotBoolIsST1004) {
  Chain C = quil::lower(
      Query::doubleArray(0).where(lambda({x()}, x() > 0.0)).sum());
  C.Ops[1].Fn = lambda({x()}, x());
  AnalysisResult R = analysis::analyzeChain(C);
  expectDiagAt(R, DiagCode::PredicateNotBool, Severity::Error, {1},
               ExprRole::Fn);
}

TEST(AnalysisTypeCheck, CountNotInt64IsST1005) {
  Chain C = quil::lower(Query::doubleArray(0).take(E(3)).sum());
  C.Ops[1].Seed = E(1.5).node();
  AnalysisResult R = analysis::analyzeChain(C);
  expectDiagAt(R, DiagCode::CountNotInt64, Severity::Error, {1},
               ExprRole::Seed);
}

TEST(AnalysisTypeCheck, SeedTypeMismatchIsST1006) {
  Chain C = quil::lower(Query::doubleArray(0).sum());
  C.Ops[1].Seed = E(std::int64_t{0}).node();
  AnalysisResult R = analysis::analyzeChain(C);
  expectDiagAt(R, DiagCode::SeedTypeMismatch, Severity::Error, {1},
               ExprRole::Seed);
}

TEST(AnalysisTypeCheck, CaptureSlotOutOfBoundsIsST1007) {
  AnalysisResult R = analyzed(
      Query::doubleArray(0)
          .select(lambda({x()}, x() * capture(999, Type::doubleTy())))
          .sum());
  expectDiagAt(R, DiagCode::CaptureSlotOutOfBounds, Severity::Error, {1},
               ExprRole::Fn);
}

TEST(AnalysisTypeCheck, SourceSlotOutOfBoundsIsST1008) {
  AnalysisResult R = analyzed(
      Query::doubleArray(0)
          .select(lambda({x()}, x() + toDouble(sourceLen(77))))
          .sum());
  expectDiagAt(R, DiagCode::SourceSlotOutOfBounds, Severity::Error, {1},
               ExprRole::Fn);
}

TEST(AnalysisTypeCheck, UnboundParamIsST1009) {
  Chain C = sumsqChain();
  C.Ops[1].Fn = lambda({x()}, param("ghost", Type::doubleTy()));
  AnalysisResult R = analysis::analyzeChain(C);
  expectDiagAt(R, DiagCode::UnboundParam, Severity::Error, {1},
               ExprRole::Fn);
}

TEST(AnalysisTypeCheck, BadCombinerIsST1010) {
  Chain C = quil::lower(Query::doubleArray(0).sum());
  C.Ops[1].Combine = lambda({acc()}, acc());
  AnalysisResult R = analysis::analyzeChain(C);
  expectDiagAt(R, DiagCode::BadCombiner, Severity::Error, {1},
               ExprRole::Combine);
}

TEST(AnalysisTypeCheck, ElemTypeMismatchIsST1011) {
  Chain C = sumsqChain();
  C.Ops[1].InElem = Type::int64Ty();
  AnalysisResult R = analysis::analyzeChain(C);
  expectDiagAt(R, DiagCode::ElemTypeMismatch, Severity::Error, {1});
}

TEST(AnalysisTypeCheck, KeyNotInt64IsST1012) {
  Chain C = quil::lower(
      Query::doubleArray(0).groupBy(lambda({x()}, toInt64(x()))));
  C.Ops[1].Fn = lambda({x()}, x());
  AnalysisResult R = analysis::analyzeChain(C);
  expectDiagAt(R, DiagCode::KeyNotInt64, Severity::Error, {1},
               ExprRole::Fn);
}

//===--------------------------------------------------------------------===//
// ST2xxx: effect/purity analysis and the certificate
//===--------------------------------------------------------------------===//

TEST(AnalysisEffects, ConstZeroDivisorIsST2001Error) {
  AnalysisResult R = analyzed(
      Query::int64Array(2).select(lambda({xi()}, xi() % E(0))).sum());
  expectDiagAt(R, DiagCode::DivByZero, Severity::Error, {1}, ExprRole::Fn);
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.Cert.Pure);
  EXPECT_FALSE(R.Cert.parallelSafe());
}

TEST(AnalysisEffects, UnprovenDivisorIsST2001Warning) {
  AnalysisResult R = analyzed(
      Query::int64Array(2)
          .select(lambda({xi()}, xi() / capture(1, Type::int64Ty())))
          .sum());
  expectDiagAt(R, DiagCode::DivByZero, Severity::Warning, {1},
               ExprRole::Fn);
  EXPECT_TRUE(R.ok()) << "a possible trap is a warning, not a rejection";
  EXPECT_FALSE(R.Cert.Pure);
  EXPECT_FALSE(R.Cert.parallelSafe());
}

TEST(AnalysisEffects, ConstNonzeroDivisorIsSafe) {
  AnalysisResult R = analyzed(
      Query::int64Array(2).select(lambda({xi()}, xi() % E(7))).sum());
  EXPECT_FALSE(R.Diags.has(DiagCode::DivByZero));
  EXPECT_TRUE(R.Cert.Pure);
}

TEST(AnalysisEffects, NestedDivByZeroLocatesInnerOp) {
  E Y = param("y", Type::int64Ty());
  Query Inner = Query::range(E(0), E(3)).select(lambda({Y}, Y % E(0)));
  AnalysisResult R =
      analyzed(Query::int64Array(2).selectMany(xi(), Inner).sum());
  // Nested op #1, inner Trans op #1 -> "op #1.1".
  const Diagnostic *D = expectDiagAt(R, DiagCode::DivByZero,
                                     Severity::Error, {1, 1}, ExprRole::Fn);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.str(), "op #1.1 Fn");
  EXPECT_FALSE(R.Cert.Pure) << "purity must propagate out of nests";
}

TEST(AnalysisEffects, TakeIsOrderSensitiveST2002) {
  AnalysisResult R = analyzed(Query::doubleArray(0).take(E(3)).sum());
  expectDiagAt(R, DiagCode::OrderSensitive, Severity::Note, {1});
  EXPECT_TRUE(R.Cert.OrderSensitive);
  EXPECT_FALSE(R.Cert.parallelSafe());
  EXPECT_TRUE(R.ok()) << "order sensitivity is informational";
}

TEST(AnalysisEffects, NestedTakeIsNotOrderSensitive) {
  // A Take inside a nested query runs wholly within one outer element;
  // partitioning the outer source cannot reorder it.
  E Y = param("y", Type::int64Ty());
  Query Inner = Query::range(E(0), E(10)).take(E(3)).select(lambda({Y}, Y));
  AnalysisResult R =
      analyzed(Query::int64Array(2).selectMany(xi(), Inner).sum());
  EXPECT_FALSE(R.Cert.OrderSensitive);
  EXPECT_TRUE(R.Cert.parallelSafe());
}

TEST(AnalysisEffects, AggWithoutCombinerIsST2003) {
  AnalysisResult R = analyzed(Query::doubleArray(0).aggregate(
      E(0.0), lambda({acc(), x()}, acc() + x())));
  expectDiagAt(R, DiagCode::NoCombiner, Severity::Note, {1});
  ASSERT_EQ(R.Cert.AggClasses.size(), 1u);
  EXPECT_EQ(R.Cert.AggClasses[0], AggClass::NoCombiner);
  // NoCombiner does not revoke the certificate: the structural planner
  // already refuses to split such an aggregation.
  EXPECT_TRUE(R.Cert.parallelSafe());
}

TEST(AnalysisEffects, FpReassociationIsST2004) {
  AnalysisResult R = analyzed(Query::doubleArray(0).average());
  EXPECT_TRUE(R.Diags.has(DiagCode::FpFoldReassociation));
  EXPECT_TRUE(R.Cert.FpReassociation);
  // Informational: FP rounding drift does not revoke the certificate.
  EXPECT_TRUE(R.Cert.parallelSafe());
}

TEST(AnalysisEffects, Int64SumHasNoFpReassociation) {
  AnalysisResult R = analyzed(Query::int64Array(2).sum());
  EXPECT_FALSE(R.Cert.FpReassociation);
  ASSERT_EQ(R.Cert.AggClasses.size(), 1u);
  EXPECT_EQ(R.Cert.AggClasses[0], AggClass::AssociativeCommutative);
}

TEST(AnalysisEffects, NonAssociativeCombinerIsST2005) {
  AnalysisResult R = analyzed(Query::doubleArray(0).aggregate(
      E(0.0), lambda({acc(), x()}, acc() + x()), Lambda(),
      lambda({acc(), accB()}, acc() - accB())));
  expectDiagAt(R, DiagCode::NonAssociativeCombiner, Severity::Warning, {1},
               ExprRole::Combine);
  ASSERT_EQ(R.Cert.AggClasses.size(), 1u);
  EXPECT_EQ(R.Cert.AggClasses[0], AggClass::NonAssociative);
  EXPECT_FALSE(R.Cert.parallelSafe())
      << "a provably non-associative combiner must revoke fan-out";
  EXPECT_TRUE(R.ok()) << "still compilable sequentially";
}

TEST(AnalysisEffects, UnrecognizedCombinerIsTrustedST2006) {
  AnalysisResult R = analyzed(Query::doubleArray(0).aggregate(
      E(0.0), lambda({acc(), x()}, acc() + x()), Lambda(),
      lambda({acc(), accB()}, (acc() + accB()) + E(0.0))));
  expectDiagAt(R, DiagCode::UnverifiedCombiner, Severity::Note, {1},
               ExprRole::Combine);
  ASSERT_EQ(R.Cert.AggClasses.size(), 1u);
  EXPECT_EQ(R.Cert.AggClasses[0], AggClass::Trusted);
  EXPECT_TRUE(R.Cert.parallelSafe()) << "trusted combiners keep the cert";
}

TEST(AnalysisEffects, SynthesizedCombinersAreRecognized) {
  // Lower.cpp synthesizes a + b for Sum/Count, the cond-select for
  // Min/Max, and a componentwise pair-add for Average; all must classify
  // as associative-commutative.
  for (const char *Name : {"sum", "min", "max", "average", "count"}) {
    Query Q = std::string(Name) == "sum"     ? Query::doubleArray(0).sum()
              : std::string(Name) == "min"   ? Query::doubleArray(0).min()
              : std::string(Name) == "max"   ? Query::doubleArray(0).max()
              : std::string(Name) == "average"
                  ? Query::doubleArray(0).average()
                  : Query::doubleArray(0).count();
    AnalysisResult R = analyzed(Q);
    ASSERT_EQ(R.Cert.AggClasses.size(), 1u) << Name;
    EXPECT_EQ(R.Cert.AggClasses[0], AggClass::AssociativeCommutative)
        << Name << ": " << analysis::aggClassName(R.Cert.AggClasses[0]);
    EXPECT_TRUE(R.Cert.parallelSafe()) << Name;
  }
}

//===--------------------------------------------------------------------===//
// ST3xxx: constant/range analysis
//===--------------------------------------------------------------------===//

TEST(AnalysisConstRange, NegativeTakeIsST3001Error) {
  AnalysisResult R = analyzed(Query::doubleArray(0).take(E(-1)).count());
  const Diagnostic *D = expectDiagAt(R, DiagCode::NegativeCount,
                                     Severity::Error, {1}, ExprRole::Seed);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.str(), "op #1 Seed");
  EXPECT_FALSE(R.ok());
}

TEST(AnalysisConstRange, NegativeRangeCountIsST3001Warning) {
  // Unlike Take(-1), a negative Range count is DEFINED as an empty
  // source, so it lints instead of rejecting.
  AnalysisResult R = analyzed(Query::range(E(0), E(-5)).sum());
  expectDiagAt(R, DiagCode::NegativeCount, Severity::Warning, {0},
               ExprRole::SrcCount);
  EXPECT_TRUE(R.ok());
}

TEST(AnalysisConstRange, ConstFalseWhereIsST3002AndKillsDownstream) {
  AnalysisResult R = analyzed(Query::doubleArray(0)
                                  .where(lambda({x()}, E(0.0) > E(1.0)))
                                  .select(lambda({x()}, x() * x()))
                                  .sum());
  expectDiagAt(R, DiagCode::AlwaysFalsePred, Severity::Warning, {1},
               ExprRole::Fn);
  // The Trans at op #2 can never see an element.
  expectDiagAt(R, DiagCode::DeadOperator, Severity::Note, {2});
  EXPECT_TRUE(R.ok());
}

TEST(AnalysisConstRange, ConstTrueWhereIsST3003) {
  AnalysisResult R = analyzed(
      Query::doubleArray(0).where(lambda({x()}, E(1.0) > E(0.0))).sum());
  expectDiagAt(R, DiagCode::AlwaysTruePred, Severity::Warning, {1},
               ExprRole::Fn);
  EXPECT_FALSE(R.Diags.has(DiagCode::DeadOperator));
}

TEST(AnalysisConstRange, TakeZeroIsST3004) {
  AnalysisResult R = analyzed(Query::doubleArray(0).take(E(0)).toArray());
  expectDiagAt(R, DiagCode::TakeZero, Severity::Warning, {1},
               ExprRole::Seed);
  expectDiagAt(R, DiagCode::DeadOperator, Severity::Note, {2});
}

//===--------------------------------------------------------------------===//
// Enforcement modes (STENO_ANALYZE) in compileQuery
//===--------------------------------------------------------------------===//

TEST(AnalysisMode, StrictRejectsErrorFindings) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Query Q = Query::int64Array(2).select(lambda({xi()}, xi() % E(0))).sum();
  CompileOptions O;
  O.Exec = Backend::Interp;
  O.Analyze = analysis::Mode::Strict;
  O.Name = "strict_divzero";
  EXPECT_DEATH(compileQuery(Q, O), "rejected by static analysis.*ST2001");
}

TEST(AnalysisMode, StrictRejectsNegativeTake) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Query Q = Query::doubleArray(0).take(E(-1)).count();
  CompileOptions O;
  O.Exec = Backend::Interp;
  O.Analyze = analysis::Mode::Strict;
  O.Name = "strict_negtake";
  EXPECT_DEATH(compileQuery(Q, O), "rejected by static analysis.*ST3001");
}

TEST(AnalysisMode, WarnModeCompilesDespiteErrors) {
  Query Q = Query::doubleArray(0).take(E(-1)).count();
  CompileOptions O;
  O.Exec = Backend::Interp;
  O.Analyze = analysis::Mode::Warn;
  O.Name = "warn_negtake";
  CompiledQuery CQ = compileQuery(Q, O);
  EXPECT_TRUE(CQ.analysisResult().Diags.hasErrors());
  EXPECT_TRUE(CQ.analysisResult().Diags.has(DiagCode::NegativeCount));
}

TEST(AnalysisMode, OffModeSkipsAnalysis) {
  Query Q = Query::doubleArray(0).take(E(-1)).count();
  CompileOptions O;
  O.Exec = Backend::Interp;
  O.Analyze = analysis::Mode::Off;
  O.Name = "off_negtake";
  CompiledQuery CQ = compileQuery(Q, O);
  EXPECT_TRUE(CQ.analysisResult().Diags.empty());
}

TEST(AnalysisMode, EnvParsing) {
  EXPECT_EQ(analysis::modeName(analysis::Mode::Off), std::string("off"));
  EXPECT_EQ(analysis::modeName(analysis::Mode::Warn), std::string("warn"));
  EXPECT_EQ(analysis::modeName(analysis::Mode::Strict),
            std::string("strict"));
}

//===--------------------------------------------------------------------===//
// Runtime trap: the ST2001 contract holds on both backends
//===--------------------------------------------------------------------===//

namespace {

/// A query dividing by a capture the analyzer cannot prove nonzero,
/// bound to zero: compiles with a warning, must trap uniformly at run
/// time.
struct TrapFixture {
  std::vector<std::int64_t> Data{8, 9, 10};
  Bindings B;
  Query Q = Query::int64Array(0)
                .select(lambda({param("v", Type::int64Ty())},
                               param("v", Type::int64Ty()) /
                                   capture(0, Type::int64Ty())))
                .sum();
  TrapFixture() {
    B.bindInt64Array(0, Data.data(),
                     static_cast<std::int64_t>(Data.size()));
    B.setValue(0, Value(std::int64_t{0}));
  }
};

} // namespace

TEST(AnalysisRuntimeTrap, InterpDivByZeroTrapsWithST2001) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TrapFixture F;
  CompileOptions O;
  O.Exec = Backend::Interp;
  O.Name = "interp_trap";
  CompiledQuery CQ = compileQuery(F.Q, O);
  EXPECT_FALSE(CQ.analysisResult().Cert.Pure);
  EXPECT_DEATH(CQ.run(F.B), "ST2001.*integer division by zero");
}

TEST(AnalysisRuntimeTrap, NativeDivByZeroTrapsWithST2001) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TrapFixture F;
  CompileOptions O;
  O.Exec = Backend::Native;
  O.Name = "native_trap";
  CompiledQuery CQ = compileQuery(F.Q, O);
  EXPECT_DEATH(CQ.run(F.B), "ST2001.*integer division by zero");
}

//===--------------------------------------------------------------------===//
// Certificate gating in dryad:: / plinq::
//===--------------------------------------------------------------------===//

TEST(AnalysisGate, CertifiedQueryStaysParallel) {
  Catalog Cat;
  Query Q = Query::doubleArray(0).select(lambda({x()}, x() * x())).sum();
  dryad::DistributedQuery DQ =
      dryad::DistributedQuery::compile(Q, interpDist("gate_sumsq"));
  EXPECT_TRUE(DQ.parallel());
  EXPECT_TRUE(DQ.whyNotParallel().empty());
  EXPECT_TRUE(DQ.certificate().parallelSafe());
  dryad::ThreadPool Pool(4);
  expectSameResults(runReference(Q, Cat.B), DQ.runParallel(Pool, Cat.B),
                    "gate_sumsq");
}

TEST(AnalysisGate, OrderSensitiveQueryFallsBackSequential) {
  Catalog Cat;
  Query Q = Query::doubleArray(0).take(E(7)).sum();
  dryad::DistributedQuery DQ =
      dryad::DistributedQuery::compile(Q, interpDist("gate_take"));
  EXPECT_FALSE(DQ.parallel());
  EXPECT_NE(DQ.whyNotParallel().find("analyzer refused certification"),
            std::string::npos)
      << DQ.whyNotParallel();
  dryad::ThreadPool Pool(4);
  expectSameResults(runReference(Q, Cat.B), DQ.runParallel(Pool, Cat.B),
                    "gate_take");
}

TEST(AnalysisGate, NonAssociativeCombinerFallsBackDespiteStructure) {
  // Structurally this aggregation HAS a combiner, so the §6 planner
  // would happily split it; only the semantic gate knows a - b changes
  // meaning under partial aggregation. The fallback must produce the
  // sequential answer.
  Catalog Cat;
  Query Q = Query::doubleArray(0).aggregate(
      E(0.0), lambda({acc(), x()}, acc() + x()), Lambda(),
      lambda({acc(), accB()}, acc() - accB()));
  dryad::DistributedQuery DQ =
      dryad::DistributedQuery::compile(Q, interpDist("gate_nonassoc"));
  EXPECT_FALSE(DQ.parallel());
  EXPECT_FALSE(DQ.certificate().combinersAssociative());
  dryad::ThreadPool Pool(4);
  expectSameResults(runReference(Q, Cat.B), DQ.runParallel(Pool, Cat.B),
                    "gate_nonassoc");
}

TEST(AnalysisGate, SequentialQueryRejectsHandPartitioning) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Catalog Cat;
  Query Q = Query::doubleArray(0).take(E(7)).sum();
  dryad::DistributedQuery DQ =
      dryad::DistributedQuery::compile(Q, interpDist("gate_handpart"));
  ASSERT_FALSE(DQ.parallel());
  std::vector<Bindings> Parts = dryad::partitionBindings(Cat.B, 4);
  dryad::ThreadPool Pool(4);
  EXPECT_DEATH(DQ.run(Pool, Parts), "sequential-only");
}

TEST(AnalysisGate, PlinqSurfacesTheCertificate) {
  Catalog Cat;
  plinq::ParallelQuery PQ = plinq::ParallelQuery::compile(
      Query::doubleArray(0).take(E(7)).sum(), interpDist("plinq_take"));
  EXPECT_FALSE(PQ.certified());
  EXPECT_FALSE(PQ.whyNot().empty());
  EXPECT_TRUE(PQ.certificate().OrderSensitive);

  plinq::ParallelQuery PQ2 = plinq::ParallelQuery::compile(
      Query::doubleArray(0).min(), interpDist("plinq_min"));
  EXPECT_TRUE(PQ2.certified());
  EXPECT_TRUE(PQ2.whyNot().empty());
}

//===--------------------------------------------------------------------===//
// Differential properties over the shared catalog
//===--------------------------------------------------------------------===//

TEST(AnalysisProperty, CatalogAnalyzesWithoutErrors) {
  // Every catalog query is well-formed: the analyzer must accept all of
  // them (warnings and notes are fine; errors would break compileQuery's
  // strict default for the whole differential suite).
  Catalog Cat;
  for (const auto &[Name, Q] : Cat.Queries) {
    AnalysisResult R = analyzed(Q);
    EXPECT_TRUE(R.ok()) << Name << ":\n"
                        << R.Diags.render(Severity::Note);
  }
}

TEST(AnalysisProperty, CertifiedQueriesMatchReferenceWhenCompiled) {
  // Certified-pure queries must be semantics-preserving through the
  // compiled pipeline (Interp backend keeps this test JIT-free).
  Catalog Cat;
  unsigned Checked = 0;
  for (const auto &[Name, Q] : Cat.Queries) {
    AnalysisResult R = analyzed(Q);
    if (!R.ok() || !R.Cert.parallelSafe())
      continue;
    expectMatchesReference(Q, Cat.B, Backend::Interp, Name);
    ++Checked;
  }
  EXPECT_GE(Checked, 15u) << "catalog should certify most queries";
}

TEST(AnalysisProperty, CertifiedQueriesMatchReferenceUnderPlinq) {
  // The strongest property: for every certified query whose source is
  // the partitionable slot-0 array, the plinq parallel path (fan-out or
  // certified fallback, whichever the planner picks) agrees with the
  // sequential reference executor.
  Catalog Cat;
  dryad::ThreadPool Pool(4);
  unsigned Checked = 0;
  for (const auto &[Name, Q] : Cat.Queries) {
    Chain C = quil::lower(Q);
    AnalysisResult R = analysis::analyzeChain(C);
    if (!R.ok() || !R.Cert.parallelSafe())
      continue;
    const query::SourceDesc &Src = C.Ops[0].Src;
    if (Src.Kind == query::SourceKind::Range ||
        Src.Kind == query::SourceKind::VecExpr || Src.Slot != 0)
      continue; // plinq partitions slot 0
    plinq::ParallelQuery PQ =
        plinq::ParallelQuery::compile(Q, interpDist(Name.c_str()));
    expectSameResults(runReference(Q, Cat.B), PQ.run(Pool, Cat.B), Name);
    ++Checked;
  }
  EXPECT_GE(Checked, 8u) << "expected several partitionable queries";
}

//===--------------------------------------------------------------------===//
// Validator satellite: operator index, depth, and slot bounds
//===--------------------------------------------------------------------===//

TEST(ValidatorLocations, ErrorsCarryOpIndexAndDepth) {
  Chain C = quil::lower(Query::doubleArray(0).sum());
  std::swap(C.Ops[1], C.Ops[2]); // Src Ret Agg: operators after Ret
  auto Err = quil::validate(C);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("op #"), std::string::npos) << *Err;
  EXPECT_NE(Err->find("(depth 0)"), std::string::npos) << *Err;
}

TEST(ValidatorLocations, CaptureSlotBoundsAreChecked) {
  Chain C = quil::lower(
      Query::doubleArray(0)
          .select(lambda({x()}, x() * capture(999, Type::doubleTy())))
          .sum());
  auto Err = quil::validate(C);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("capture slot 999"), std::string::npos) << *Err;
  EXPECT_NE(Err->find("op #1"), std::string::npos) << *Err;
}

TEST(ValidatorLocations, NestedErrorsReportInnerDepth) {
  E Y = param("y", Type::int64Ty());
  Query Inner = Query::range(E(0), E(3)).select(lambda({Y}, Y));
  Chain C = quil::lower(Query::int64Array(2).selectMany(xi(), Inner).sum());
  // Break the inner chain: drop its Ret.
  auto Broken = std::make_shared<Chain>(*C.Ops[1].NestedChain);
  Broken->Ops.pop_back();
  C.Ops[1].NestedChain = Broken;
  auto Err = quil::validate(C);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("in nested query"), std::string::npos) << *Err;
  EXPECT_NE(Err->find("depth 1"), std::string::npos) << *Err;
}
