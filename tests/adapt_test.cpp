//===- tests/adapt_test.cpp - Feedback-driven adaptive planning -*- C++ -*-===//
///
/// \file
/// Exercises steno::adapt with deterministic hand-fed profiles: EWMA
/// decay math, the minimum-sample gate, the AQO-style ignorance list,
/// feedback-driven predicate ranking in the rewriter (including the
/// all-or-nothing commensurability gate and certificate replay), morsel
/// tuning, and the end-to-end contract that a warm adaptive recompile of
/// a skewed predicate chain reorders the plan while staying bit-identical
/// to the static plan on both the interpreter and native backends.
///
//===----------------------------------------------------------------------===//

#include "adapt/Adapt.h"
#include "analysis/Rewrite.h"
#include "expr/Analysis.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "steno/Steno.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <vector>

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;
using quil::Chain;
using quil::PredOp;
using quil::RewriteOptions;
using quil::RewriteResult;
using quil::RewriteRule;
using quil::Sym;

namespace {

E xi() { return param("xi", Type::int64Ty()); }
std::int64_t i64(long long V) { return static_cast<std::int64_t>(V); }

unsigned countRule(const RewriteResult &R, RewriteRule Rule) {
  unsigned N = 0;
  for (const quil::RewriteCertificate &C : R.Certs)
    N += C.Rule == Rule;
  return N;
}

/// A hand-built cumulative snapshot for one Src -> Where -> Ret plan.
/// Counters are cumulative across calls, exactly as the ProfileStore
/// reports them; FeedbackStore::observe folds the deltas.
obs::ProfileSnapshot whereSnap(std::uint64_t PlanHash, std::uint64_t Runs,
                               std::uint64_t In, std::uint64_t Out,
                               std::uint64_t Nanos,
                               std::uint64_t OpId = 0x11) {
  obs::ProfileSnapshot S;
  S.PlanHash = PlanHash;
  S.Name = "fed";
  S.Runs = Runs;
  S.Ops.push_back({"Src", 0, false, 0, 0, In, 0});
  S.Ops.push_back({"Where", 1, true, OpId, In, Out, Nanos});
  S.Ops.push_back({"Ret", 1, false, 0, Out, Out, 0});
  return S;
}

/// OpIds (expr::hashLambda) of the Where predicates in chain order.
std::vector<std::uint64_t> whereOpIds(const Chain &C) {
  std::vector<std::uint64_t> Ids;
  for (const quil::Op &O : C.Ops)
    if (O.S == Sym::Pred && O.P == PredOp::Where)
      Ids.push_back(expr::hashLambda(O.Fn));
  return Ids;
}

} // namespace

//===--------------------------------------------------------------------===//
// Decay math
//===--------------------------------------------------------------------===//

TEST(AdaptDecay, FirstObservationSeedsTheMeansUndecayed) {
  adapt::FeedbackStore FS(/*Alpha=*/0.5, /*MinSamples=*/1);
  auto FB = FS.observe(whereSnap(0xA1, /*Runs=*/1, 100, 50, 1000));
  ASSERT_TRUE(FB.has_value());
  EXPECT_EQ(FB->Runs, 1u);
  EXPECT_DOUBLE_EQ(FB->RowsPerRun, 100.0);
  EXPECT_DOUBLE_EQ(FB->NanosPerRow, 10.0); // 1000ns over 100 rows
  ASSERT_EQ(FB->Preds.count(0x11), 1u);
  EXPECT_DOUBLE_EQ(FB->Preds.at(0x11).Sel, 0.5);
  EXPECT_DOUBLE_EQ(FB->Preds.at(0x11).NanosPerRow, 10.0);
  EXPECT_EQ(FB->Preds.at(0x11).Samples, 1u);
}

TEST(AdaptDecay, SecondObservationFoldsTheDeltaWithAlpha) {
  adapt::FeedbackStore FS(/*Alpha=*/0.5, /*MinSamples=*/1);
  FS.observe(whereSnap(0xA2, 1, 100, 50, 1000));
  // Cumulative counters: the new run saw 100 more rows, 80 of which
  // passed, in 2000 more nanoseconds.
  auto FB = FS.observe(whereSnap(0xA2, 2, 200, 130, 3000));
  ASSERT_TRUE(FB.has_value());
  EXPECT_EQ(FB->Runs, 2u);
  EXPECT_DOUBLE_EQ(FB->RowsPerRun, 100.0);
  // Plan cost: 0.5 * 10 + 0.5 * (2000/100) = 15.
  EXPECT_DOUBLE_EQ(FB->NanosPerRow, 15.0);
  // Pred: sel 0.5*0.5 + 0.5*0.8 = 0.65; cost 0.5*10 + 0.5*20 = 15.
  EXPECT_DOUBLE_EQ(FB->Preds.at(0x11).Sel, 0.65);
  EXPECT_DOUBLE_EQ(FB->Preds.at(0x11).NanosPerRow, 15.0);
  EXPECT_EQ(FB->Preds.at(0x11).Samples, 2u);
}

TEST(AdaptDecay, UnchangedCountersFoldNothing) {
  adapt::FeedbackStore FS(0.5, 1);
  FS.observe(whereSnap(0xA3, 1, 100, 50, 1000));
  auto FB = FS.observe(whereSnap(0xA3, 1, 100, 50, 1000));
  ASSERT_TRUE(FB.has_value());
  EXPECT_EQ(FB->Runs, 1u);
  EXPECT_EQ(FB->Preds.at(0x11).Samples, 1u);
}

TEST(AdaptDecay, BackwardsCountersResetTheBaseline) {
  adapt::FeedbackStore FS(0.5, 1);
  FS.observe(whereSnap(0xA4, 5, 500, 250, 5000));
  // The profile store was cleared: cumulative counters went backwards.
  // The entry restarts rather than folding a negative delta.
  auto FB = FS.observe(whereSnap(0xA4, 1, 100, 90, 1000));
  ASSERT_TRUE(FB.has_value());
  EXPECT_EQ(FB->Runs, 1u);
  EXPECT_DOUBLE_EQ(FB->Preds.at(0x11).Sel, 0.9);
  EXPECT_EQ(FB->Preds.at(0x11).Samples, 1u);
}

//===--------------------------------------------------------------------===//
// Minimum-sample gate
//===--------------------------------------------------------------------===//

TEST(AdaptGate, ObservedStatsStayEmptyBelowMinSamples) {
  adapt::FeedbackStore FS(/*Alpha=*/0.3, /*MinSamples=*/3);
  FS.observe(whereSnap(0xB1, 1, 100, 10, 100));
  EXPECT_TRUE(FS.observedStats(0xB1).empty());
  FS.observe(whereSnap(0xB1, 2, 200, 20, 200));
  EXPECT_TRUE(FS.observedStats(0xB1).empty());
  FS.observe(whereSnap(0xB1, 3, 300, 30, 300));
  auto Stats = FS.observedStats(0xB1);
  ASSERT_EQ(Stats.count(0x11), 1u);
  EXPECT_DOUBLE_EQ(Stats.at(0x11).Sel, 0.1);
  EXPECT_GT(Stats.at(0x11).CostNanos, 0.0);
}

TEST(AdaptGate, UntimedPredicatesFallBackToUnitCost) {
  adapt::FeedbackStore FS(0.3, 1);
  obs::ProfileSnapshot S = whereSnap(0xB2, 1, 100, 25, /*Nanos=*/0);
  S.Ops[1].Timed = false;
  FS.observe(S);
  auto Stats = FS.observedStats(0xB2);
  ASSERT_EQ(Stats.count(0x11), 1u);
  EXPECT_DOUBLE_EQ(Stats.at(0x11).Sel, 0.25);
  EXPECT_DOUBLE_EQ(Stats.at(0x11).CostNanos, 1.0);
}

TEST(AdaptGate, UnknownPlanHasNoStats) {
  adapt::FeedbackStore FS(0.3, 1);
  EXPECT_TRUE(FS.observedStats(0xDEAD).empty());
  EXPECT_FALSE(FS.lookup(0xDEAD).has_value());
  EXPECT_FALSE(FS.ignored(0xDEAD));
}

//===--------------------------------------------------------------------===//
// Ignorance list
//===--------------------------------------------------------------------===//

TEST(AdaptIgnorance, ConsecutiveStrikesTripTheQuarantine) {
  adapt::FeedbackStore FS(0.3, 1, /*MispredictLimit=*/2);
  std::uint64_t Before = obs::counter("adapt.ignored").value();
  EXPECT_FALSE(FS.recordMisprediction(0xC1)); // strike 1
  EXPECT_FALSE(FS.ignored(0xC1));
  EXPECT_TRUE(FS.recordMisprediction(0xC1)); // strike 2: tripped
  EXPECT_TRUE(FS.ignored(0xC1));
  EXPECT_EQ(obs::counter("adapt.ignored").value(), Before + 1);
  // Further strikes on a quarantined hash neither re-trip nor re-count.
  EXPECT_FALSE(FS.recordMisprediction(0xC1));
  EXPECT_EQ(obs::counter("adapt.ignored").value(), Before + 1);
}

TEST(AdaptIgnorance, GoodPredictionResetsTheStrikeCount) {
  adapt::FeedbackStore FS(0.3, 1, 2);
  EXPECT_FALSE(FS.recordMisprediction(0xC2));
  FS.recordGoodPrediction(0xC2); // strikes back to 0
  EXPECT_FALSE(FS.recordMisprediction(0xC2));
  EXPECT_FALSE(FS.ignored(0xC2));
  EXPECT_TRUE(FS.recordMisprediction(0xC2));
  EXPECT_TRUE(FS.ignored(0xC2));
}

TEST(AdaptIgnorance, QuarantineSuppressesRipeStats) {
  adapt::FeedbackStore FS(0.3, 1, 2);
  FS.observe(whereSnap(0xC3, 3, 300, 30, 300));
  EXPECT_FALSE(FS.observedStats(0xC3).empty());
  FS.recordMisprediction(0xC3);
  FS.recordMisprediction(0xC3);
  EXPECT_TRUE(FS.observedStats(0xC3).empty());
}

//===--------------------------------------------------------------------===//
// Feedback-driven predicate ranking in the rewriter
//===--------------------------------------------------------------------===//

namespace {

/// Two structurally identical Where preds (equal static cost, equal
/// static selectivity estimate), written in an order only observation
/// can improve.
Query twoPredQuery() {
  return Query::int64Array(0)
      .where(lambda({xi()}, xi() > E(i64(-100)))) // passes almost all
      .where(lambda({xi()}, xi() > E(i64(100))))  // passes almost none
      .sum();
}

} // namespace

TEST(AdaptRank, ObservedRankReordersWhereStaticCannot) {
  Chain C = quil::lower(twoPredQuery());
  ASSERT_FALSE(quil::validate(C).has_value());
  std::vector<std::uint64_t> Ids = whereOpIds(C);
  ASSERT_EQ(Ids.size(), 2u);

  // Static ranking sees two identical preds: the stable sort keeps the
  // written (pessimal) order.
  RewriteResult Static = quil::rewriteChain(C);
  EXPECT_EQ(countRule(Static, RewriteRule::ReorderPreds), 0u);

  // Observed: the second pred is far more selective at equal cost, so
  // rank = (sel - 1) / cost puts it first.
  RewriteOptions RO;
  RO.Observed[Ids[0]] = {/*Sel=*/0.95, /*CostNanos=*/5.0};
  RO.Observed[Ids[1]] = {/*Sel=*/0.05, /*CostNanos=*/5.0};
  RewriteResult R = quil::rewriteChain(C, RO);
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(countRule(R, RewriteRule::ReorderPreds), 1u);
  std::vector<std::uint64_t> After = whereOpIds(R.Rewritten);
  ASSERT_EQ(After.size(), 2u);
  EXPECT_EQ(After[0], Ids[1]);
  EXPECT_EQ(After[1], Ids[0]);

  // The certificate records that observed feedback justified the swap.
  bool SawFeedbackFact = false;
  for (const quil::RewriteCertificate &Cert : R.Certs)
    if (Cert.Rule == RewriteRule::ReorderPreds)
      SawFeedbackFact = Cert.Fact.find("feedback") != std::string::npos;
  EXPECT_TRUE(SawFeedbackFact);
}

TEST(AdaptRank, CheaperPredWinsAtEqualSelectivity) {
  Chain C = quil::lower(twoPredQuery());
  std::vector<std::uint64_t> Ids = whereOpIds(C);
  ASSERT_EQ(Ids.size(), 2u);
  RewriteOptions RO;
  RO.Observed[Ids[0]] = {0.5, /*CostNanos=*/50.0};
  RO.Observed[Ids[1]] = {0.5, /*CostNanos=*/5.0};
  RewriteResult R = quil::rewriteChain(C, RO);
  EXPECT_EQ(countRule(R, RewriteRule::ReorderPreds), 1u);
  EXPECT_EQ(whereOpIds(R.Rewritten)[0], Ids[1]);
}

TEST(AdaptRank, PartialFeedbackFallsBackToStaticRanking) {
  // Observed nanoseconds and static cost units are not commensurable:
  // feedback ranking requires stats for EVERY pred in the run.
  Chain C = quil::lower(twoPredQuery());
  std::vector<std::uint64_t> Ids = whereOpIds(C);
  RewriteOptions RO;
  RO.Observed[Ids[1]] = {0.05, 5.0}; // only one of the two
  RewriteResult R = quil::rewriteChain(C, RO);
  RewriteResult Static = quil::rewriteChain(C);
  EXPECT_EQ(countRule(R, RewriteRule::ReorderPreds),
            countRule(Static, RewriteRule::ReorderPreds));
  EXPECT_EQ(quil::hashChain(R.Rewritten), quil::hashChain(Static.Rewritten));
}

TEST(AdaptRank, FeedbackReorderCertificatesReplayDeterministically) {
  Chain C = quil::lower(twoPredQuery());
  std::vector<std::uint64_t> Ids = whereOpIds(C);
  RewriteOptions RO;
  RO.Observed[Ids[0]] = {0.95, 5.0};
  RO.Observed[Ids[1]] = {0.05, 5.0};
  RewriteResult R = quil::rewriteChain(C, RO);
  ASSERT_TRUE(R.Changed);

  // Replaying with the same observed stats verifies.
  std::string Err;
  EXPECT_TRUE(quil::verifyCertificates(C, R, RO, &Err)) << Err;

  // Replaying with different observed stats (the swap inverted) must
  // fail: the certificate is bound to the feedback that justified it.
  RewriteOptions Tampered;
  Tampered.Observed[Ids[0]] = {0.05, 5.0};
  Tampered.Observed[Ids[1]] = {0.95, 5.0};
  EXPECT_FALSE(quil::verifyCertificates(C, R, Tampered, &Err));
}

//===--------------------------------------------------------------------===//
// Morsel tuning
//===--------------------------------------------------------------------===//

TEST(AdaptMorsel, RipeFeedbackSizesTheInitialMorsel) {
  adapt::FeedbackStore &FS = adapt::FeedbackStore::global();
  FS.clear();
  // 100ns/row observed over enough runs to be ripe under any min-sample
  // setting the environment could have pinned (>= 3 by default).
  std::uint64_t H = 0xD1D1;
  std::uint64_t Need = FS.minSamples();
  for (std::uint64_t R = 1; R <= Need; ++R)
    FS.observe(whereSnap(H, R, R * 1000, R * 500, R * 100000));

  dryad::MorselOptions M;
  std::uint64_t Before = obs::counter("adapt.morsel_tuned").value();
  dryad::MorselOptions Tuned = adapt::tunedMorselOptions(H, M);
  // Budget-driven: TargetMorselMicros * 1000 / 100ns/row, clamped.
  std::size_t Want = static_cast<std::size_t>(
      M.TargetMorselMicros * 1000.0 / 100.0);
  Want = std::clamp(Want, M.MinMorsel, M.MaxMorsel);
  EXPECT_EQ(Tuned.InitialMorsel, Want);
  if (Tuned.InitialMorsel != M.InitialMorsel) {
    EXPECT_EQ(obs::counter("adapt.morsel_tuned").value(), Before + 1);
  }
  FS.clear();
}

TEST(AdaptMorsel, UnknownPlanLeavesOptionsUntouched) {
  adapt::FeedbackStore::global().clear();
  dryad::MorselOptions M;
  dryad::MorselOptions Tuned = adapt::tunedMorselOptions(0xD00D, M);
  EXPECT_EQ(Tuned.InitialMorsel, M.InitialMorsel);
  EXPECT_EQ(Tuned.MaxMorsel, M.MaxMorsel);
  EXPECT_EQ(Tuned.InlineBelow, M.InlineBelow);
}

TEST(AdaptMorsel, TinyObservedInputsRaiseInlineBelow) {
  adapt::FeedbackStore &FS = adapt::FeedbackStore::global();
  FS.clear();
  std::uint64_t H = 0xD2D2;
  std::uint64_t Need = FS.minSamples();
  dryad::MorselOptions M;
  // Observed inputs smaller than two minimum morsels: fanning out never
  // pays for itself.
  std::uint64_t Rows = static_cast<std::uint64_t>(M.MinMorsel);
  for (std::uint64_t R = 1; R <= Need; ++R)
    FS.observe(whereSnap(H, R, R * Rows, R * Rows / 2, R * Rows * 10));
  dryad::MorselOptions Tuned = adapt::tunedMorselOptions(H, M);
  EXPECT_GE(Tuned.InlineBelow, static_cast<std::size_t>(Rows) + 1);
  FS.clear();
}

//===--------------------------------------------------------------------===//
// End-to-end: skewed preds reorder, results stay bit-identical
//===--------------------------------------------------------------------===//

namespace {

/// Pessimally ordered skew: the first pred passes everything, the
/// second passes a sliver. Only observation can see this.
Query skewedQuery() {
  return Query::int64Array(0)
      .where(lambda({xi()}, xi() >= E(i64(-1)))) // data is >= 0: all pass
      .where(lambda({xi()}, xi() < E(i64(8))))   // sliver passes
      .sum();
}

CompileOptions adaptOpts(Backend Exec, const char *Name) {
  CompileOptions CO;
  CO.Exec = Exec;
  CO.Analyze = analysis::Mode::Off;
  CO.Rewrite = true;
  CO.Profile = true;
  CO.Adaptive = true;
  CO.Name = Name;
  return CO;
}

} // namespace

TEST(AdaptEndToEnd, WarmRecompileReordersAndMatchesStaticBitForBit) {
  obs::ProfileStore::global().clear();
  adapt::FeedbackStore &FS = adapt::FeedbackStore::global();
  FS.clear();

  std::vector<std::int64_t> Data(4096);
  for (std::size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<std::int64_t>(I);
  Bindings B;
  B.bindInt64Array(0, Data.data(), static_cast<std::int64_t>(Data.size()));

  Query Q = skewedQuery();

  // Static reference (adaptivity pinned off).
  CompileOptions StaticCO;
  StaticCO.Exec = Backend::Interp;
  StaticCO.Analyze = analysis::Mode::Off;
  StaticCO.Rewrite = true;
  StaticCO.Adaptive = false;
  StaticCO.Name = "adapt_e2e_static";
  QueryResult Want = compileQuery(Q, StaticCO).run(B);

  // Cold adaptive compile: no feedback yet, so no reorder; running it
  // past the min-sample threshold seeds the FeedbackStore.
  CompiledQuery Cold =
      compileQuery(Q, adaptOpts(Backend::Interp, "adapt_e2e_cold"));
  unsigned Warmups =
      static_cast<unsigned>(adapt::FeedbackStore::global().minSamples()) + 1;
  for (unsigned R = 0; R != Warmups; ++R)
    Cold.run(B);

  // Warm recompile: ripe skew feedback reorders the preds under a
  // verified certificate...
  std::uint64_t CertsBefore = obs::counter("adapt.cert_verified").value();
  CompiledQuery Warm =
      compileQuery(Q, adaptOpts(Backend::Interp, "adapt_e2e_warm"));
  ASSERT_NE(Warm.rewriteResult(), nullptr);
  EXPECT_EQ(countRule(*Warm.rewriteResult(), RewriteRule::ReorderPreds), 1u);
  EXPECT_GT(obs::counter("adapt.cert_verified").value(), CertsBefore);

  // ...and the reordered plan is bit-identical to the static plan.
  QueryResult GotInterp = Warm.run(B);
  ASSERT_EQ(GotInterp.rows().size(), Want.rows().size());
  for (std::size_t I = 0; I != Want.rows().size(); ++I)
    EXPECT_TRUE(GotInterp.rows()[I] == Want.rows()[I]) << "row " << I;

  // Same contract through the native backend.
  CompiledQuery WarmNative =
      compileQuery(Q, adaptOpts(Backend::Native, "adapt_e2e_native"));
  ASSERT_NE(WarmNative.rewriteResult(), nullptr);
  EXPECT_EQ(countRule(*WarmNative.rewriteResult(), RewriteRule::ReorderPreds),
            1u);
  QueryResult GotNative = WarmNative.run(B);
  ASSERT_EQ(GotNative.rows().size(), Want.rows().size());
  for (std::size_t I = 0; I != Want.rows().size(); ++I)
    EXPECT_TRUE(GotNative.rows()[I] == Want.rows()[I]) << "row " << I;

  obs::ProfileStore::global().clear();
  FS.clear();
}

TEST(AdaptEndToEnd, QuarantinedPlanCompilesStaticEvenWithRipeFeedback) {
  obs::ProfileStore::global().clear();
  adapt::FeedbackStore &FS = adapt::FeedbackStore::global();
  FS.clear();

  std::vector<std::int64_t> Data(4096);
  for (std::size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<std::int64_t>(I);
  Bindings B;
  B.bindInt64Array(0, Data.data(), static_cast<std::int64_t>(Data.size()));

  Query Q = skewedQuery();
  CompiledQuery Cold =
      compileQuery(Q, adaptOpts(Backend::Interp, "adapt_quar_cold"));
  unsigned Warmups = static_cast<unsigned>(FS.minSamples()) + 1;
  for (unsigned R = 0; R != Warmups; ++R)
    Cold.run(B);

  // Quarantine the feedback anchor (the pre-rewrite plan hash).
  std::uint64_t Anchor = Cold.rewrittenFromHash() ? Cold.rewrittenFromHash()
                                                  : Cold.planHash();
  FS.refresh(Anchor, obs::ProfileStore::global());
  ASSERT_FALSE(FS.observedStats(Anchor).empty());
  FS.recordMisprediction(Anchor);
  FS.recordMisprediction(Anchor);
  ASSERT_TRUE(FS.ignored(Anchor));

  // A warm adaptive recompile must now pin the static plan: no
  // feedback reorder despite ripe stats.
  CompiledQuery Warm =
      compileQuery(Q, adaptOpts(Backend::Interp, "adapt_quar_warm"));
  if (Warm.rewriteResult()) {
    EXPECT_EQ(countRule(*Warm.rewriteResult(), RewriteRule::ReorderPreds),
              0u);
  }

  obs::ProfileStore::global().clear();
  FS.clear();
}
