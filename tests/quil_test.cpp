//===- tests/quil_test.cpp - QUIL lowering, grammar, §4.3 pass -*- C++ -*-===//

#include "quil/Quil.h"
#include "expr/Eval.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;
using quil::Chain;
using quil::Op;
using quil::PredOp;
using quil::SinkOp;
using quil::Sym;

namespace {

E x() { return param("x", Type::doubleTy()); }

Chain lowerOf(const Query &Q) { return quil::lower(Q); }

/// Folds the synthesized Agg over some doubles to check sugar semantics.
Value foldAgg(const Op &Agg, const std::vector<double> &Xs) {
  EXPECT_EQ(Agg.S, Sym::Agg);
  Env Environment;
  Value Acc = evalExpr(*Agg.Seed, Environment);
  for (double X : Xs) {
    std::vector<Value> Args = {Acc, Value(X)};
    Acc = applyLambda(Agg.Fn2, Args, Environment);
  }
  if (Agg.Fn3.valid()) {
    std::vector<Value> Args = {Acc};
    Acc = applyLambda(Agg.Fn3, Args, Environment);
  }
  return Acc;
}

} // namespace

//===--------------------------------------------------------------------===//
// Table 1: operator classification
//===--------------------------------------------------------------------===//

TEST(QuilLower, SymbolStrings) {
  EXPECT_EQ(lowerOf(Query::doubleArray(0).sum()).symbols(),
            "Src Agg Ret");
  EXPECT_EQ(lowerOf(Query::doubleArray(0)
                        .where(lambda({x()}, x() > 0.0))
                        .select(lambda({x()}, x() * x()))
                        .sum())
                .symbols(),
            "Src Pred Trans Agg Ret");
  EXPECT_EQ(lowerOf(Query::doubleArray(0).toArray()).symbols(),
            "Src Sink Ret");
}

TEST(QuilLower, Table1PredClass) {
  // Where, Take, Skip, TakeWhile, SkipWhile all map to Pred (Table 1).
  Chain C = lowerOf(Query::doubleArray(0)
                        .where(lambda({x()}, x() > 0.0))
                        .take(E(5))
                        .skip(E(1))
                        .takeWhile(lambda({x()}, x() < 9.0))
                        .skipWhile(lambda({x()}, x() < 1.0)));
  EXPECT_EQ(C.symbols(), "Src Pred Pred Pred Pred Pred Ret");
  EXPECT_EQ(C.Ops[1].P, PredOp::Where);
  EXPECT_EQ(C.Ops[2].P, PredOp::Take);
  EXPECT_EQ(C.Ops[3].P, PredOp::Skip);
  EXPECT_EQ(C.Ops[4].P, PredOp::TakeWhile);
  EXPECT_EQ(C.Ops[5].P, PredOp::SkipWhile);
}

TEST(QuilLower, DenseKeysPropagate) {
  auto A = param("a", Type::doubleTy());
  Chain C = lowerOf(Query::doubleArray(0).groupByAggregateDense(
      lambda({x()}, toInt64(x())), E(32), E(0.0),
      lambda({A, x()}, A + x())));
  ASSERT_EQ(C.Ops[1].S, Sym::Sink);
  EXPECT_EQ(C.Ops[1].K, SinkOp::GroupByAggregate);
  ASSERT_TRUE(C.Ops[1].DenseKeys != nullptr);
  Env Environment;
  EXPECT_EQ(evalExpr(*C.Ops[1].DenseKeys, Environment).asInt64(), 32);
}

TEST(QuilLower, Table1SinkClass) {
  Chain C = lowerOf(Query::doubleArray(0)
                        .groupBy(lambda({x()}, toInt64(x()))));
  EXPECT_EQ(C.Ops[1].S, Sym::Sink);
  EXPECT_EQ(C.Ops[1].K, SinkOp::GroupBy);
  Chain C2 = lowerOf(Query::doubleArray(0).orderBy(lambda({x()}, x())));
  EXPECT_EQ(C2.Ops[1].K, SinkOp::OrderBy);
}

TEST(QuilLower, NestedQueriesSubstituteForTrans) {
  E P = param("p", Type::vecTy());
  E D = param("d", Type::doubleTy());
  Query Norm = Query::overVec(P).select(lambda({D}, D * D)).sum();
  Chain C = lowerOf(Query::pointArray(0).selectNested(P, Norm).sum());
  EXPECT_EQ(C.symbols(), "Src (Src Trans Agg Ret) Agg Ret");
  EXPECT_EQ(C.Ops[1].Role, quil::NestedRole::Trans);
  EXPECT_EQ(C.Ops[1].OuterParam, "p");
}

TEST(QuilLower, SelectManyIsFlattenRole) {
  E Y = param("y", Type::int64Ty());
  E Xi = param("x", Type::int64Ty());
  Query Inner = Query::range(E(0), E(3)).select(lambda({Y}, Y));
  Chain C = lowerOf(Query::int64Array(0).selectMany(Xi, Inner).sum());
  EXPECT_EQ(C.symbols(), "Src (Src Trans Ret) Agg Ret");
  EXPECT_EQ(C.Ops[1].Role, quil::NestedRole::Flatten);
}

//===--------------------------------------------------------------------===//
// Aggregate sugar lowering (all are foldl, Table 1)
//===--------------------------------------------------------------------===//

TEST(QuilLower, SumSugar) {
  Chain C = lowerOf(Query::doubleArray(0).sum());
  EXPECT_DOUBLE_EQ(foldAgg(C.Ops[1], {1.5, 2.0, -0.5}).asDouble(), 3.0);
  EXPECT_DOUBLE_EQ(foldAgg(C.Ops[1], {}).asDouble(), 0.0);
  EXPECT_TRUE(C.Ops[1].Combine.valid()) << "sum is combinable";
}

TEST(QuilLower, MinMaxSugar) {
  Chain CMin = lowerOf(Query::doubleArray(0).min());
  EXPECT_DOUBLE_EQ(foldAgg(CMin.Ops[1], {3.0, 1.0, 2.0}).asDouble(), 1.0);
  Chain CMax = lowerOf(Query::doubleArray(0).max());
  EXPECT_DOUBLE_EQ(foldAgg(CMax.Ops[1], {3.0, 1.0, 2.0}).asDouble(), 3.0);
  // Sentinel-identity semantics on empty input (DESIGN.md deviation).
  EXPECT_TRUE(std::isinf(foldAgg(CMin.Ops[1], {}).asDouble()));
}

TEST(QuilLower, CountSugar) {
  Chain C = lowerOf(Query::doubleArray(0).count());
  EXPECT_EQ(foldAgg(C.Ops[1], {5.0, 6.0, 7.0}).asInt64(), 3);
}

TEST(QuilLower, AverageSugar) {
  Chain C = lowerOf(Query::doubleArray(0).average());
  EXPECT_DOUBLE_EQ(foldAgg(C.Ops[1], {1.0, 2.0, 6.0}).asDouble(), 3.0);
  EXPECT_TRUE(C.Ops[1].Combine.valid());
}

TEST(QuilLower, CombinersAreAssociativeMergers) {
  // combine(fold(a), fold(b)) == fold(a ++ b) for the synthesized ones.
  Chain C = lowerOf(Query::doubleArray(0).sum());
  const Op &Agg = C.Ops[1];
  Env Environment;
  Value L = foldAgg(Agg, {1, 2, 3});
  Value R = foldAgg(Agg, {4, 5});
  std::vector<Value> Args = {L, R};
  Value Combined = applyLambda(Agg.Combine, Args, Environment);
  EXPECT_DOUBLE_EQ(Combined.asDouble(), 15.0);
}

//===--------------------------------------------------------------------===//
// Grammar validation (Figure 4 FSM)
//===--------------------------------------------------------------------===//

TEST(QuilValidate, AcceptsValidChains) {
  EXPECT_FALSE(quil::validate(lowerOf(Query::doubleArray(0).sum())));
  EXPECT_FALSE(quil::validate(lowerOf(Query::doubleArray(0).toArray())));
  EXPECT_FALSE(quil::validate(lowerOf(
      Query::doubleArray(0)
          .groupBy(lambda({x()}, toInt64(x())))
          .where(lambda({param("g", Type::pairTy(Type::int64Ty(),
                                                 Type::vecTy()))},
                        len(param("g", Type::pairTy(Type::int64Ty(),
                                                    Type::vecTy()))
                                .second()) > 1)))));
}

TEST(QuilValidate, RejectsEmpty) {
  Chain C;
  auto Err = quil::validate(C);
  ASSERT_TRUE(Err.has_value());
}

TEST(QuilValidate, RejectsMissingSrc) {
  Chain C = lowerOf(Query::doubleArray(0).sum());
  C.Ops.erase(C.Ops.begin());
  auto Err = quil::validate(C);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("begin with Src"), std::string::npos) << *Err;
}

TEST(QuilValidate, RejectsAggBeforeNonRet) {
  Chain C = lowerOf(Query::doubleArray(0).sum());
  // Duplicate the Agg: Src Agg Agg Ret.
  C.Ops.insert(C.Ops.begin() + 1, C.Ops[1]);
  auto Err = quil::validate(C);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("Agg may only be followed by Ret"),
            std::string::npos)
      << *Err;
}

TEST(QuilValidate, RejectsSrcInMiddle) {
  Chain C = lowerOf(Query::doubleArray(0).toArray());
  C.Ops.insert(C.Ops.begin() + 1, C.Ops[0]);
  auto Err = quil::validate(C);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("Src may only appear at the start"),
            std::string::npos)
      << *Err;
}

TEST(QuilValidate, RejectsMissingRet) {
  Chain C = lowerOf(Query::doubleArray(0).sum());
  C.Ops.pop_back();
  auto Err = quil::validate(C);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("end with Ret"), std::string::npos) << *Err;
}

TEST(QuilValidate, RejectsTrailingOps) {
  Chain C = lowerOf(
      Query::doubleArray(0).select(lambda({x()}, x() * 2.0)).toArray());
  // Move Ret before the Sink: Src Trans Ret Sink.
  std::swap(C.Ops[2], C.Ops[3]);
  auto Err = quil::validate(C);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("after Ret"), std::string::npos) << *Err;
}

TEST(QuilValidate, ValidatesNestedChains) {
  E P = param("p", Type::vecTy());
  E D = param("d", Type::doubleTy());
  Query Norm = Query::overVec(P).select(lambda({D}, D * D)).sum();
  Chain C = lowerOf(Query::pointArray(0).selectNested(P, Norm).sum());
  EXPECT_FALSE(quil::validate(C));
  // Corrupt the nested chain.
  Chain Broken = C;
  auto Inner = std::make_shared<Chain>(*Broken.Ops[1].NestedChain);
  Inner->Ops.pop_back();
  Broken.Ops[1].NestedChain = Inner;
  auto Err = quil::validate(Broken);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("in nested query"), std::string::npos) << *Err;
}

//===--------------------------------------------------------------------===//
// GroupBy-Aggregate specialization (§4.3)
//===--------------------------------------------------------------------===//

namespace {

/// groupBy(bin).selectNested(g => fold over g.second) — the fusable shape.
Query groupThenFold(bool UseKeyInResult) {
  E G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  E A = param("a", Type::doubleTy());
  E V = param("v", Type::doubleTy());
  Lambda Result = UseKeyInResult
                      ? lambda({A}, pair(G.first(), A))
                      : Lambda();
  Query BagSum = Query::overVec(G.second())
                     .aggregate(E(0.0), lambda({A, V}, A + V), Result);
  return Query::doubleArray(0)
      .groupBy(lambda({x()}, toInt64(x() / 10.0)))
      .selectNested(G, BagSum);
}

} // namespace

TEST(QuilSpecialize, FiresOnGroupThenFold) {
  Chain C = lowerOf(groupThenFold(true));
  EXPECT_EQ(C.symbols(), "Src Sink (Src Agg Ret) Ret");
  bool Applied = false;
  Chain S = quil::specializeGroupByAggregate(C, &Applied);
  EXPECT_TRUE(Applied);
  EXPECT_EQ(S.symbols(), "Src Sink Ret");
  EXPECT_EQ(S.Ops[1].K, SinkOp::GroupByAggregate);
  EXPECT_FALSE(quil::validate(S));
}

TEST(QuilSpecialize, FiresWithoutResultSelector) {
  bool Applied = false;
  Chain S =
      quil::specializeGroupByAggregate(lowerOf(groupThenFold(false)),
                                       &Applied);
  EXPECT_TRUE(Applied);
  EXPECT_TRUE(S.Ops[1].Fn3.valid())
      << "a (key, acc) selector is synthesized";
}

TEST(QuilSpecialize, FusesInterveningTransAndWhere) {
  E G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  E A = param("a", Type::doubleTy());
  E V = param("v", Type::doubleTy());
  Query BagSum = Query::overVec(G.second())
                     .where(lambda({V}, V > 0.0))
                     .select(lambda({V}, V * V))
                     .aggregate(E(0.0), lambda({A, V}, A + V));
  Query Q = Query::doubleArray(0)
                .groupBy(lambda({x()}, toInt64(x())))
                .selectNested(G, BagSum);
  bool Applied = false;
  Chain S = quil::specializeGroupByAggregate(lowerOf(Q), &Applied);
  EXPECT_TRUE(Applied);
  EXPECT_EQ(S.symbols(), "Src Sink Ret");
}

TEST(QuilSpecialize, DoesNotFireWhenBagEscapes) {
  // The result selector reads g.second — the bag must be materialized.
  E G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  E A = param("a", Type::doubleTy());
  E V = param("v", Type::doubleTy());
  Query BagSum = Query::overVec(G.second())
                     .aggregate(E(0.0), lambda({A, V}, A + V),
                                lambda({A}, A / toDouble(len(G.second()))));
  Query Q = Query::doubleArray(0)
                .groupBy(lambda({x()}, toInt64(x())))
                .selectNested(G, BagSum);
  bool Applied = false;
  quil::specializeGroupByAggregate(lowerOf(Q), &Applied);
  EXPECT_FALSE(Applied);
}

TEST(QuilSpecialize, DoesNotFireOnForeignSource) {
  // The nested query iterates something other than the group's bag.
  E G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  E A = param("a", Type::doubleTy());
  E V = param("v", Type::doubleTy());
  Query OtherSum = Query::doubleArray(1)
                       .aggregate(E(0.0), lambda({A, V}, A + V));
  Query Q = Query::doubleArray(0)
                .groupBy(lambda({x()}, toInt64(x())))
                .selectNested(G, OtherSum);
  bool Applied = false;
  quil::specializeGroupByAggregate(lowerOf(Q), &Applied);
  EXPECT_FALSE(Applied);
}

TEST(QuilSpecialize, DoesNotFireOnStatefulPred) {
  E G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  E A = param("a", Type::doubleTy());
  E V = param("v", Type::doubleTy());
  Query BagSum = Query::overVec(G.second())
                     .take(E(2))
                     .aggregate(E(0.0), lambda({A, V}, A + V));
  Query Q = Query::doubleArray(0)
                .groupBy(lambda({x()}, toInt64(x())))
                .selectNested(G, BagSum);
  bool Applied = false;
  quil::specializeGroupByAggregate(lowerOf(Q), &Applied);
  EXPECT_FALSE(Applied) << "take() is order-dependent; cannot fuse";
}

TEST(QuilSpecialize, RecursesIntoNestedChains) {
  // The fusable pattern sits inside a SelectMany's nested query.
  E Xi = param("xi", Type::int64Ty());
  Query Inner = groupThenFold(true); // Src Sink (Src Agg Ret) Ret
  E D = param("d",
              Type::pairTy(Type::int64Ty(), Type::doubleTy()));
  Query Q = Query::int64Array(1).selectMany(Xi, Inner);
  bool Applied = false;
  Chain S = quil::specializeGroupByAggregate(lowerOf(Q), &Applied);
  EXPECT_TRUE(Applied);
  EXPECT_EQ(S.symbols(), "Src (Src Sink Ret) Ret");
  (void)D;
}

TEST(QuilSpecialize, PreservesResultTypes) {
  Chain C = lowerOf(groupThenFold(true));
  Chain S = quil::specializeGroupByAggregate(C);
  EXPECT_TRUE(sameType(C.Result, S.Result));
  EXPECT_EQ(C.Scalar, S.Scalar);
}
