//===- tests/linq_test.cpp - Baseline iterator library tests ---*- C++ -*-===//
//
// Validates the lazy-iterator LINQ clone: operator semantics, laziness,
// state-machine behaviour and the foreach adapter (paper §2).
//
//===----------------------------------------------------------------------===//

#include "linq/Linq.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

using namespace steno::linq;
using std::int64_t;

namespace {

Seq<int64_t> ints(std::vector<int64_t> V) { return from(std::move(V)); }

} // namespace

//===--------------------------------------------------------------------===//
// Sources
//===--------------------------------------------------------------------===//

TEST(LinqSources, VectorRoundTrip) {
  EXPECT_EQ(ints({1, 2, 3}).toVector(), (std::vector<int64_t>{1, 2, 3}));
}

TEST(LinqSources, EmptyVector) {
  EXPECT_TRUE(ints({}).toVector().empty());
  EXPECT_FALSE(ints({}).any());
}

TEST(LinqSources, Range) {
  EXPECT_EQ(range(5, 4).toVector(), (std::vector<int64_t>{5, 6, 7, 8}));
}

TEST(LinqSources, RangeEmpty) {
  EXPECT_TRUE(range(5, 0).toVector().empty());
  EXPECT_TRUE(range(5, -3).toVector().empty());
}

TEST(LinqSources, Repeat) {
  EXPECT_EQ(repeat<int64_t>(9, 3).toVector(),
            (std::vector<int64_t>{9, 9, 9}));
}

TEST(LinqSources, SpanBorrows) {
  std::vector<double> Buf = {1.5, 2.5};
  Seq<double> S = fromSpan(Buf.data(), Buf.size());
  EXPECT_EQ(S.toVector(), (std::vector<double>{1.5, 2.5}));
}

TEST(LinqSources, EnumeratorPastEndStaysFalse) {
  std::unique_ptr<Enumerator<int64_t>> E = ints({1}).getEnumerator();
  EXPECT_TRUE(E->moveNext());
  EXPECT_FALSE(E->moveNext());
  EXPECT_FALSE(E->moveNext()) << "moveNext after end must stay false";
}

TEST(LinqSources, IndependentEnumerators) {
  Seq<int64_t> S = ints({1, 2});
  auto E1 = S.getEnumerator();
  auto E2 = S.getEnumerator();
  EXPECT_TRUE(E1->moveNext());
  EXPECT_TRUE(E1->moveNext());
  EXPECT_TRUE(E2->moveNext());
  EXPECT_EQ(E2->current(), 1) << "each traversal starts fresh";
}

//===--------------------------------------------------------------------===//
// Select / Where
//===--------------------------------------------------------------------===//

TEST(LinqSelect, Maps) {
  auto Out = ints({1, 2, 3}).select([](int64_t X) { return X * X; });
  EXPECT_EQ(Out.toVector(), (std::vector<int64_t>{1, 4, 9}));
}

TEST(LinqSelect, ChangesType) {
  auto Out = ints({1, 2}).select([](int64_t X) { return X + 0.5; });
  EXPECT_EQ(Out.toVector(), (std::vector<double>{1.5, 2.5}));
}

TEST(LinqSelect, IsLazy) {
  int Calls = 0;
  auto Out = ints({1, 2, 3}).select([&Calls](int64_t X) {
    ++Calls;
    return X;
  });
  EXPECT_EQ(Calls, 0) << "select must not run before enumeration";
  (void)Out.first();
  EXPECT_EQ(Calls, 1) << "first() pulls exactly one element";
}

TEST(LinqWhere, Filters) {
  auto Out = ints({1, 2, 3, 4, 5}).where([](int64_t X) {
    return X % 2 == 0;
  });
  EXPECT_EQ(Out.toVector(), (std::vector<int64_t>{2, 4}));
}

TEST(LinqWhere, EvenSquaresPaperExample) {
  // The paper's §2 running example.
  auto EvenSquares = range(0, 10)
                         .where([](int64_t X) { return X % 2 == 0; })
                         .select([](int64_t X) { return X * X; });
  EXPECT_EQ(EvenSquares.toVector(),
            (std::vector<int64_t>{0, 4, 16, 36, 64}));
}

TEST(LinqWhere, AllFilteredOut) {
  EXPECT_TRUE(
      ints({1, 3}).where([](int64_t X) { return X > 10; }).toVector()
          .empty());
}

//===--------------------------------------------------------------------===//
// Take / Skip / TakeWhile / SkipWhile
//===--------------------------------------------------------------------===//

TEST(LinqTake, Basic) {
  EXPECT_EQ(range(0, 100).take(3).toVector(),
            (std::vector<int64_t>{0, 1, 2}));
}

TEST(LinqTake, MoreThanAvailable) {
  EXPECT_EQ(ints({1, 2}).take(5).toVector(),
            (std::vector<int64_t>{1, 2}));
}

TEST(LinqTake, Zero) { EXPECT_TRUE(range(0, 5).take(0).toVector().empty()); }

TEST(LinqTake, StopsPullingUpstream) {
  int Pulled = 0;
  auto Out = range(0, 100)
                 .select([&Pulled](int64_t X) {
                   ++Pulled;
                   return X;
                 })
                 .take(3);
  (void)Out.toVector();
  EXPECT_EQ(Pulled, 3) << "take must not exhaust the upstream";
}

TEST(LinqSkip, Basic) {
  EXPECT_EQ(range(0, 5).skip(3).toVector(), (std::vector<int64_t>{3, 4}));
}

TEST(LinqSkip, All) { EXPECT_TRUE(range(0, 3).skip(5).toVector().empty()); }

TEST(LinqTakeWhile, Basic) {
  EXPECT_EQ(
      ints({1, 2, 9, 1}).takeWhile([](int64_t X) { return X < 5; })
          .toVector(),
      (std::vector<int64_t>{1, 2}));
}

TEST(LinqSkipWhile, Basic) {
  EXPECT_EQ(
      ints({1, 2, 9, 1}).skipWhile([](int64_t X) { return X < 5; })
          .toVector(),
      (std::vector<int64_t>{9, 1}));
}

TEST(LinqSkipWhile, NeverMatches) {
  EXPECT_EQ(
      ints({9, 1}).skipWhile([](int64_t X) { return X < 5; }).toVector(),
      (std::vector<int64_t>{9, 1}));
}

//===--------------------------------------------------------------------===//
// SelectMany / Concat / Zip / Distinct / Reverse
//===--------------------------------------------------------------------===//

TEST(LinqSelectMany, Flattens) {
  auto Out = ints({1, 2, 3}).selectMany(
      [](int64_t X) { return repeat(X, X); });
  EXPECT_EQ(Out.toVector(), (std::vector<int64_t>{1, 2, 2, 3, 3, 3}));
}

TEST(LinqSelectMany, EmptyInner) {
  auto Out = ints({1, 2}).selectMany(
      [](int64_t) { return Seq<int64_t>(ints({})); });
  EXPECT_TRUE(Out.toVector().empty());
}

TEST(LinqSelectMany, CartesianProduct) {
  // The §5 join-via-SelectMany pattern.
  std::vector<int64_t> Ys = {10, 20};
  auto Out = ints({1, 2}).selectMany([Ys](int64_t X) {
    return from(Ys).select([X](int64_t Y) { return X * 100 + Y; });
  });
  EXPECT_EQ(Out.toVector(),
            (std::vector<int64_t>{110, 120, 210, 220}));
}

TEST(LinqConcat, Basic) {
  EXPECT_EQ(ints({1}).concat(ints({2, 3})).toVector(),
            (std::vector<int64_t>{1, 2, 3}));
}

TEST(LinqConcat, EmptyLeft) {
  EXPECT_EQ(ints({}).concat(ints({2})).toVector(),
            (std::vector<int64_t>{2}));
}

TEST(LinqZip, StopsAtShorter) {
  auto Out = ints({1, 2, 3}).zip(Seq<double>(from<double>({0.5, 1.5})));
  std::vector<std::pair<int64_t, double>> V = Out.toVector();
  ASSERT_EQ(V.size(), 2u);
  std::pair<int64_t, double> First{1, 0.5};
  std::pair<int64_t, double> Second{2, 1.5};
  EXPECT_EQ(V[0], First);
  EXPECT_EQ(V[1], Second);
}

TEST(LinqDistinct, FirstOccurrenceWins) {
  EXPECT_EQ(ints({3, 1, 3, 2, 1}).distinct().toVector(),
            (std::vector<int64_t>{3, 1, 2}));
}

TEST(LinqReverse, Basic) {
  EXPECT_EQ(ints({1, 2, 3}).reverse().toVector(),
            (std::vector<int64_t>{3, 2, 1}));
}

//===--------------------------------------------------------------------===//
// GroupBy / OrderBy / Join
//===--------------------------------------------------------------------===//

TEST(LinqGroupBy, KeysInFirstAppearanceOrder) {
  auto Groups =
      ints({5, 1, 6, 2, 7}).groupBy([](int64_t X) { return X % 2; });
  std::vector<Grouping<int64_t, int64_t>> G = Groups.toVector();
  ASSERT_EQ(G.size(), 2u);
  EXPECT_EQ(G[0].key(), 1); // 5 arrives first
  EXPECT_EQ(G[0].values(), (std::vector<int64_t>{5, 1, 7}));
  EXPECT_EQ(G[1].key(), 0);
  EXPECT_EQ(G[1].values(), (std::vector<int64_t>{6, 2}));
}

TEST(LinqGroupBy, ResultSelector) {
  auto Sums = ints({1, 2, 3, 4}).groupBy(
      [](int64_t X) { return X % 2; },
      [](int64_t Key, const std::vector<int64_t> &Bag) {
        int64_t Sum = 0;
        for (int64_t V : Bag)
          Sum += V;
        return Key * 1000 + Sum;
      });
  EXPECT_EQ(Sums.toVector(), (std::vector<int64_t>{1004, 6}));
}

TEST(LinqGroupBy, GroupsThenWhereIsHavingPattern) {
  // GROUP BY ... HAVING of §4.2.
  auto Big = ints({1, 1, 1, 2, 3, 3})
                 .groupBy([](int64_t X) { return X; })
                 .where([](const Grouping<int64_t, int64_t> &G) {
                   return G.values().size() >= 2;
                 })
                 .select([](const Grouping<int64_t, int64_t> &G) {
                   return G.key();
                 });
  EXPECT_EQ(Big.toVector(), (std::vector<int64_t>{1, 3}));
}

TEST(LinqOrderBy, StableSort) {
  struct Row {
    int64_t Key;
    int64_t Tag;
    bool operator==(const Row &O) const {
      return Key == O.Key && Tag == O.Tag;
    }
  };
  Seq<Row> S = from<Row>({{2, 0}, {1, 0}, {2, 1}, {1, 1}});
  std::vector<Row> Out =
      S.orderBy([](const Row &R) { return R.Key; }).toVector();
  EXPECT_EQ(Out, (std::vector<Row>{{1, 0}, {1, 1}, {2, 0}, {2, 1}}));
}

TEST(LinqOrderBy, Descending) {
  EXPECT_EQ(
      ints({2, 5, 1}).orderByDescending([](int64_t X) { return X; })
          .toVector(),
      (std::vector<int64_t>{5, 2, 1}));
}

TEST(LinqJoin, EquiJoin) {
  auto Out = ints({1, 2, 3}).join(
      ints({2, 3, 3, 4}), [](int64_t X) { return X; },
      [](int64_t Y) { return Y; },
      [](int64_t X, int64_t Y) { return X * 10 + Y; });
  EXPECT_EQ(Out.toVector(), (std::vector<int64_t>{22, 33, 33}));
}

TEST(LinqJoin, NoMatches) {
  auto Out = ints({1}).join(
      ints({2}), [](int64_t X) { return X; }, [](int64_t Y) { return Y; },
      [](int64_t X, int64_t Y) { return X + Y; });
  EXPECT_TRUE(Out.toVector().empty());
}

//===--------------------------------------------------------------------===//
// Aggregates
//===--------------------------------------------------------------------===//

TEST(LinqAgg, Sum) { EXPECT_EQ(range(1, 100).sum(), 5050); }

TEST(LinqAgg, SumOfDoubles) {
  EXPECT_DOUBLE_EQ(from<double>({0.5, 1.5, 2.0}).sum(), 4.0);
}

TEST(LinqAgg, SumEmptyIsZero) { EXPECT_EQ(ints({}).sum(), 0); }

TEST(LinqAgg, MinMax) {
  EXPECT_EQ(ints({3, 1, 2}).min(), 1);
  EXPECT_EQ(ints({3, 1, 2}).max(), 3);
}

TEST(LinqAgg, Average) {
  EXPECT_DOUBLE_EQ(ints({1, 2, 3, 4}).average(), 2.5);
}

TEST(LinqAgg, Count) {
  EXPECT_EQ(range(0, 17).count(), 17);
  EXPECT_EQ(range(0, 17).count([](int64_t X) { return X % 3 == 0; }), 6);
}

TEST(LinqAgg, AggregateFold) {
  int64_t Product = ints({1, 2, 3, 4}).aggregate(
      int64_t{1}, [](int64_t Acc, int64_t X) { return Acc * X; });
  EXPECT_EQ(Product, 24);
}

TEST(LinqAgg, AggregateWithResultSelector) {
  double HalfSum = ints({1, 2, 3}).aggregate(
      int64_t{0}, [](int64_t Acc, int64_t X) { return Acc + X; },
      [](int64_t Acc) { return Acc / 2.0; });
  EXPECT_DOUBLE_EQ(HalfSum, 3.0);
}

TEST(LinqAgg, AnyAll) {
  EXPECT_TRUE(ints({1, 2}).any());
  EXPECT_FALSE(ints({}).any());
  EXPECT_TRUE(ints({1, 2}).any([](int64_t X) { return X == 2; }));
  EXPECT_FALSE(ints({1, 2}).any([](int64_t X) { return X == 3; }));
  EXPECT_TRUE(ints({2, 4}).all([](int64_t X) { return X % 2 == 0; }));
  EXPECT_FALSE(ints({2, 3}).all([](int64_t X) { return X % 2 == 0; }));
  EXPECT_TRUE(ints({}).all([](int64_t) { return false; }));
}

TEST(LinqAgg, FirstLastElementAt) {
  EXPECT_EQ(ints({7, 8, 9}).first(), 7);
  EXPECT_EQ(ints({7, 8, 9}).last(), 9);
  EXPECT_EQ(ints({7, 8, 9}).elementAt(1), 8);
  EXPECT_EQ(ints({}).firstOrDefault(-1), -1);
}

TEST(LinqAgg, Contains) {
  EXPECT_TRUE(ints({1, 2}).contains(2));
  EXPECT_FALSE(ints({1, 2}).contains(3));
}

TEST(LinqAgg, ToLookup) {
  Lookup<int64_t, int64_t> L =
      ints({1, 2, 3, 4}).toLookup([](int64_t X) { return X % 2; });
  EXPECT_EQ(L.size(), 2u);
  EXPECT_EQ(L.at(1), (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(L.at(0), (std::vector<int64_t>{2, 4}));
}

//===--------------------------------------------------------------------===//
// foreach adapter and composition depth
//===--------------------------------------------------------------------===//

TEST(LinqForeach, RangeFor) {
  int64_t Sum = 0;
  for (int64_t X : range(1, 4))
    Sum += X;
  EXPECT_EQ(Sum, 1 + 2 + 3 + 4);
}

TEST(LinqForeach, EmptyRangeFor) {
  for (int64_t X : ints({})) {
    (void)X;
    FAIL() << "empty sequence must not enter the loop";
  }
}

TEST(LinqCompose, DeepChain) {
  // Eight stacked operators: each element crosses eight iterator
  // boundaries (the overhead Figure 2 depicts).
  Seq<int64_t> S = range(0, 1000);
  for (int I = 0; I < 8; ++I)
    S = S.select([](int64_t X) { return X + 1; });
  EXPECT_EQ(S.first(), 8);
  EXPECT_EQ(S.last(), 1007);
}

TEST(LinqCompose, ReuseAfterPartialEnumeration) {
  Seq<int64_t> S = range(0, 5).where([](int64_t X) { return X != 2; });
  auto E = S.getEnumerator();
  EXPECT_TRUE(E->moveNext());
  // A second full traversal is unaffected by the half-consumed first one.
  EXPECT_EQ(S.toVector(), (std::vector<int64_t>{0, 1, 3, 4}));
}

//===--------------------------------------------------------------------===//
// Lookup details
//===--------------------------------------------------------------------===//

TEST(LinqLookup, PutPreservesOrder) {
  Lookup<int64_t, double> L;
  L.put(5, 1.0);
  L.put(2, 2.0);
  L.put(5, 3.0);
  ASSERT_EQ(L.size(), 2u);
  EXPECT_EQ(L.group(0).key(), 5);
  EXPECT_EQ(L.group(0).values(), (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(L.group(1).key(), 2);
}

TEST(LinqLookup, Contains) {
  Lookup<int64_t, double> L;
  L.put(1, 0.0);
  EXPECT_TRUE(L.contains(1));
  EXPECT_FALSE(L.contains(2));
}

TEST(LinqLookup, GroupsSnapshot) {
  Lookup<int64_t, double> L;
  L.put(1, 0.5);
  L.put(2, 1.5);
  std::vector<Grouping<int64_t, double>> G = L.groups();
  ASSERT_EQ(G.size(), 2u);
  EXPECT_EQ(G[0].values(), (std::vector<double>{0.5}));
}
