//===- tests/interp_stmt_test.cpp - cpptree executor unit tests -*-C++-*-===//
//
// Direct statement-level tests of the generated-code interpreter: small
// hand-built cpptree programs exercising each statement and loop kind in
// isolation (the end-to-end differential suites cover composition).
//
//===----------------------------------------------------------------------===//

#include "cpptree/Tree.h"
#include "expr/Dsl.h"
#include "interp/Interp.h"

#include "gtest/gtest.h"

using namespace steno;
using namespace steno::cpptree;
using namespace steno::expr;
using namespace steno::expr::dsl;

namespace {

/// Runs a program over an optional double buffer in slot 0.
interp::RunOutput run(Program &P, const std::vector<double> *Xs = nullptr) {
  static std::vector<expr::SourceBuffer> Sources;
  Sources.clear();
  if (Xs) {
    expr::SourceBuffer Buf;
    Buf.DoubleData = Xs->data();
    Buf.Count = static_cast<std::int64_t>(Xs->size());
    Sources.push_back(Buf);
  }
  interp::RunInput In;
  In.Sources = &Sources;
  return interp::execute(P, In);
}

/// A Source loop over double slot 0 with the given body.
StmtRef doubleLoop(const char *ElemVar, StmtList Body) {
  LoopInfo L;
  L.Kind = LoopKind::Source;
  L.Src.Kind = query::SourceKind::DoubleArray;
  L.Src.Slot = 0;
  L.IndexVar = "i0";
  L.ElemVar = ElemVar;
  L.ElemType = Type::doubleTy();
  StmtRef Loop = Stmt::loop(std::move(L));
  Loop->Body = std::move(Body);
  return Loop;
}

E elemRef(const char *Name) { return param(Name, Type::doubleTy()); }

} // namespace

TEST(InterpStmt, DeclareAssignEmit) {
  Program P;
  P.ScalarResult = true;
  P.ResultType = Type::doubleTy();
  P.Body.push_back(
      Stmt::declareLocal("a", Type::doubleTy(), E(1.5).node()));
  P.Body.push_back(Stmt::assign(
      "a", (param("a", Type::doubleTy()) * 2.0).node()));
  P.Body.push_back(Stmt::emit(param("a", Type::doubleTy()).node()));
  interp::RunOutput Out = run(P);
  ASSERT_EQ(Out.Rows.size(), 1u);
  EXPECT_DOUBLE_EQ(Out.Rows[0].asDouble(), 3.0);
}

TEST(InterpStmt, RegionIsTransparent) {
  Program P;
  StmtRef R = Stmt::region();
  R->Body.push_back(
      Stmt::declareLocal("a", Type::int64Ty(), E(7).node()));
  P.Body.push_back(R);
  P.Body.push_back(Stmt::emit(param("a", Type::int64Ty()).node()));
  interp::RunOutput Out = run(P);
  ASSERT_EQ(Out.Rows.size(), 1u);
  EXPECT_EQ(Out.Rows[0].asInt64(), 7);
}

TEST(InterpStmt, IfBranches) {
  Program P;
  StmtRef Then = Stmt::emit(E(1).node());
  P.Body.push_back(Stmt::ifThen(E(true).node(), {Then}));
  P.Body.push_back(
      Stmt::ifThen(E(false).node(), {Stmt::emit(E(2).node())}));
  interp::RunOutput Out = run(P);
  ASSERT_EQ(Out.Rows.size(), 1u);
  EXPECT_EQ(Out.Rows[0].asInt64(), 1);
}

TEST(InterpStmt, SourceLoopEmitsEachElement) {
  std::vector<double> Xs = {1, 2, 3};
  Program P;
  P.Body.push_back(doubleLoop("e", {Stmt::emit(elemRef("e").node())}));
  interp::RunOutput Out = run(P, &Xs);
  ASSERT_EQ(Out.Rows.size(), 3u);
  EXPECT_DOUBLE_EQ(Out.Rows[2].asDouble(), 3.0);
}

TEST(InterpStmt, ContinueSkipsRestOfBody) {
  std::vector<double> Xs = {1, 2, 3, 4};
  Program P;
  P.Body.push_back(doubleLoop(
      "e", {Stmt::ifThen((elemRef("e") < 2.5).node(),
                         {Stmt::continueStmt()}),
            Stmt::emit(elemRef("e").node())}));
  interp::RunOutput Out = run(P, &Xs);
  ASSERT_EQ(Out.Rows.size(), 2u);
  EXPECT_DOUBLE_EQ(Out.Rows[0].asDouble(), 3.0);
}

TEST(InterpStmt, BreakStopsLoop) {
  std::vector<double> Xs = {1, 2, 3, 4};
  Program P;
  P.Body.push_back(doubleLoop(
      "e", {Stmt::ifThen((elemRef("e") > 2.5).node(),
                         {Stmt::breakStmt()}),
            Stmt::emit(elemRef("e").node())}));
  interp::RunOutput Out = run(P, &Xs);
  EXPECT_EQ(Out.Rows.size(), 2u);
}

TEST(InterpStmt, RangeLoop) {
  Program P;
  LoopInfo L;
  L.Kind = LoopKind::Source;
  L.Src.Kind = query::SourceKind::Range;
  L.Src.Start = E(5).node();
  L.Src.CountE = E(3).node();
  L.IndexVar = "i";
  L.ElemVar = "r";
  L.ElemType = Type::int64Ty();
  StmtRef Loop = Stmt::loop(std::move(L));
  Loop->Body.push_back(Stmt::emit(param("r", Type::int64Ty()).node()));
  P.Body.push_back(Loop);
  interp::RunOutput Out = run(P);
  ASSERT_EQ(Out.Rows.size(), 3u);
  EXPECT_EQ(Out.Rows[0].asInt64(), 5);
  EXPECT_EQ(Out.Rows[2].asInt64(), 7);
}

TEST(InterpStmt, GroupSinkRoundTrip) {
  std::vector<double> Xs = {1.0, 11.0, 2.0, 12.0};
  Program P;
  SinkDecl Decl;
  Decl.Kind = SinkKind::Group;
  P.Body.push_back(Stmt::declareSink("g", Decl));
  P.Body.push_back(doubleLoop(
      "e", {Stmt::sinkGroupPut("g", toInt64(elemRef("e") / 10.0).node(),
                               elemRef("e").node())}));
  // Iterate the sink, emitting pair(key, bagLen).
  LoopInfo L;
  L.Kind = LoopKind::GroupSink;
  L.SinkName = "g";
  L.IndexVar = "gi";
  L.ElemVar = "grp";
  L.ElemType = Type::pairTy(Type::int64Ty(), Type::vecTy());
  StmtRef Loop = Stmt::loop(std::move(L));
  E Grp = param("grp", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  Loop->Body.push_back(
      Stmt::emit(pair(Grp.first(), toDouble(len(Grp.second()))).node()));
  P.Body.push_back(Loop);
  interp::RunOutput Out = run(P, &Xs);
  ASSERT_EQ(Out.Rows.size(), 2u);
  EXPECT_EQ(Out.Rows[0].first().asInt64(), 0);
  EXPECT_DOUBLE_EQ(Out.Rows[0].second().asDouble(), 2.0);
  EXPECT_EQ(Out.Rows[1].first().asInt64(), 1);
}

TEST(InterpStmt, VecSinkPushSortView) {
  std::vector<double> Xs = {3.0, 1.0, 2.0};
  Program P;
  SinkDecl Decl;
  Decl.Kind = SinkKind::Vec;
  Decl.ElemType = Type::doubleTy();
  P.Body.push_back(Stmt::declareSink("s", Decl));
  P.Body.push_back(
      doubleLoop("e", {Stmt::sinkVecPush("s", elemRef("e").node())}));
  auto K = param("k", Type::doubleTy());
  P.Body.push_back(Stmt::sortSinkVec("s", Type::doubleTy(),
                                     lambda({K}, K), false));
  P.Body.push_back(Stmt::declareSinkView("view", "s"));
  E View = param("view", Type::vecTy());
  P.Body.push_back(Stmt::emit(View[E(0)].node()));
  P.Body.push_back(Stmt::emit(View[E(2)].node()));
  interp::RunOutput Out = run(P, &Xs);
  ASSERT_EQ(Out.Rows.size(), 2u);
  EXPECT_DOUBLE_EQ(Out.Rows[0].asDouble(), 1.0);
  EXPECT_DOUBLE_EQ(Out.Rows[1].asDouble(), 3.0);
}

TEST(InterpStmt, SortDescending) {
  std::vector<double> Xs = {3.0, 1.0, 2.0};
  Program P;
  SinkDecl Decl;
  Decl.Kind = SinkKind::Vec;
  Decl.ElemType = Type::doubleTy();
  P.Body.push_back(Stmt::declareSink("s", Decl));
  P.Body.push_back(
      doubleLoop("e", {Stmt::sinkVecPush("s", elemRef("e").node())}));
  auto K = param("k", Type::doubleTy());
  P.Body.push_back(Stmt::sortSinkVec("s", Type::doubleTy(),
                                     lambda({K}, K), true));
  LoopInfo L;
  L.Kind = LoopKind::VecSink;
  L.SinkName = "s";
  L.Sink = Decl;
  L.IndexVar = "i";
  L.ElemVar = "v";
  L.ElemType = Type::doubleTy();
  StmtRef Loop = Stmt::loop(std::move(L));
  Loop->Body.push_back(Stmt::emit(elemRef("v").node()));
  P.Body.push_back(Loop);
  interp::RunOutput Out = run(P, &Xs);
  ASSERT_EQ(Out.Rows.size(), 3u);
  EXPECT_DOUBLE_EQ(Out.Rows[0].asDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Out.Rows[2].asDouble(), 1.0);
}

TEST(InterpStmt, GroupAggSinkHashAndDense) {
  std::vector<double> Xs = {1.0, 2.0, 11.0};
  for (bool Dense : {false, true}) {
    Program P;
    SinkDecl Decl;
    Decl.Kind = SinkKind::GroupAgg;
    Decl.AccType = Type::doubleTy();
    if (Dense) {
      Decl.DenseKeys = E(3).node();
      Decl.DenseSeed = E(0.0).node();
    }
    P.Body.push_back(Stmt::declareSink("a", Decl));
    ExprRef Key = toInt64(elemRef("e") / 10.0).node();
    ExprRef Seed = Dense ? nullptr : E(0.0).node();
    ExprRef Update =
        (param("slot", Type::doubleTy()) + elemRef("e")).node();
    P.Body.push_back(doubleLoop(
        "e",
        {Stmt::sinkGroupAggUpdate("a", Key, Seed, "slot", Update)}));
    LoopInfo L;
    L.Kind = LoopKind::GroupAggSink;
    L.SinkName = "a";
    L.Sink = Decl;
    L.IndexVar = "i";
    L.KeyVar = "k";
    L.AccVar = "acc";
    StmtRef Loop = Stmt::loop(std::move(L));
    Loop->Body.push_back(Stmt::emit(
        pair(param("k", Type::int64Ty()),
             param("acc", Type::doubleTy()))
            .node()));
    P.Body.push_back(Loop);
    interp::RunOutput Out = run(P, &Xs);
    if (Dense) {
      // All three dense keys reported in order, key 2 seeded only.
      ASSERT_EQ(Out.Rows.size(), 3u);
      EXPECT_EQ(Out.Rows[0].first().asInt64(), 0);
      EXPECT_DOUBLE_EQ(Out.Rows[0].second().asDouble(), 3.0);
      EXPECT_DOUBLE_EQ(Out.Rows[1].second().asDouble(), 11.0);
      EXPECT_DOUBLE_EQ(Out.Rows[2].second().asDouble(), 0.0);
    } else {
      ASSERT_EQ(Out.Rows.size(), 2u);
      EXPECT_DOUBLE_EQ(Out.Rows[0].second().asDouble(), 3.0);
      EXPECT_DOUBLE_EQ(Out.Rows[1].second().asDouble(), 11.0);
    }
  }
}

TEST(InterpStmt, EmittedVecRowsAreDeepCopies) {
  std::vector<double> Xs = {1.0, 2.0};
  Program P;
  LoopInfo L;
  L.Kind = LoopKind::Source;
  L.Src.Kind = query::SourceKind::DoubleArray;
  L.Src.Slot = 0;
  L.IndexVar = "i";
  L.ElemVar = "e";
  L.ElemType = Type::doubleTy();
  StmtRef Loop = Stmt::loop(std::move(L));
  // Emit a slice view of the source buffer.
  Loop->Body.push_back(
      Stmt::emit(slice(0, E(0), E(2)).node()));
  P.Body.push_back(Loop);
  interp::RunOutput Out = run(P, &Xs);
  ASSERT_EQ(Out.Rows.size(), 2u);
  EXPECT_NE(Out.Rows[0].asVec().Data, Xs.data())
      << "emitted views must be re-homed into the arena";
  EXPECT_DOUBLE_EQ(Out.Rows[0].asVec()[1], 2.0);
}

TEST(InterpStmt, VecExprLoop) {
  std::vector<double> Xs = {4.0, 5.0, 6.0};
  Program P;
  LoopInfo L;
  L.Kind = LoopKind::Source;
  L.Src.Kind = query::SourceKind::VecExpr;
  L.Src.Vec = slice(0, E(1), E(2)).node();
  L.IndexVar = "i";
  L.VecVar = "v";
  L.ElemVar = "e";
  L.ElemType = Type::doubleTy();
  StmtRef Loop = Stmt::loop(std::move(L));
  Loop->Body.push_back(Stmt::emit(elemRef("e").node()));
  P.Body.push_back(Loop);
  interp::RunOutput Out = run(P, &Xs);
  ASSERT_EQ(Out.Rows.size(), 2u);
  EXPECT_DOUBLE_EQ(Out.Rows[0].asDouble(), 5.0);
  EXPECT_DOUBLE_EQ(Out.Rows[1].asDouble(), 6.0);
}
