//===- tests/serve_test.cpp - Query service & wire protocol ----*- C++ -*-===//
//
// Coverage for the serving layer (serve/Serve.h, serve/Wire.h):
// session lifecycle and prepared-handle memoization, QueryCache sharing
// across sessions, deadline timeouts and load shedding made
// deterministic via ServeOptions::ExecHook, the interpreter-degradation
// path (saturated compile queue), the background native swap, a
// multi-client stress run asserting exactly one response per request
// against the reference oracle, a swap soak that executes through the
// mid-stream plan swap, the fuzz corpus replayed through the service,
// and the line protocol end-to-end over a socketpair. The stress and
// soak tests are in the TSan CI job.
//
//===----------------------------------------------------------------------===//

#include "adapt/Adapt.h"
#include "fuzz/Diff.h"
#include "serve/Serve.h"
#include "serve/Wire.h"
#include "steno/RefExec.h"

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <unordered_set>
#include <vector>

#include "gtest/gtest.h"

using namespace steno;
using namespace steno::serve;

namespace {

//===--------------------------------------------------------------------===//
// Helpers
//===--------------------------------------------------------------------===//

/// A one-way latch the ExecHook tests park workers on.
class Gate {
public:
  void open() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Opened = true;
    }
    Cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Opened; });
  }

private:
  std::mutex M;
  std::condition_variable Cv;
  bool Opened = false;
};

fuzz::QuerySpec sumSqSpec(std::uint32_t Count = 48, std::uint64_t Seed = 7) {
  fuzz::QuerySpec S;
  S.Sources.push_back(
      {0, fuzz::ElemTy::Double, fuzz::DataClass::Uniform, Count, Seed});
  fuzz::OpSpec Sel;
  Sel.K = fuzz::OpK::Select;
  Sel.T = fuzz::TransTmpl::Square;
  fuzz::OpSpec Agg;
  Agg.K = fuzz::OpK::Agg;
  Agg.A = fuzz::AggKind::Sum;
  S.Ops = {Sel, Agg};
  return S;
}

fuzz::QuerySpec whereCountSpec() {
  fuzz::QuerySpec S;
  S.Sources.push_back(
      {0, fuzz::ElemTy::Double, fuzz::DataClass::Skewed, 48, 21});
  fuzz::OpSpec Wh;
  Wh.K = fuzz::OpK::Where;
  Wh.P = fuzz::PredTmpl::GtC;
  Wh.DArg = 5.0;
  fuzz::OpSpec Agg;
  Agg.K = fuzz::OpK::Agg;
  Agg.A = fuzz::AggKind::Count;
  S.Ops = {Wh, Agg};
  return S;
}

fuzz::QuerySpec orderBySpec() {
  fuzz::QuerySpec S;
  S.Sources.push_back(
      {0, fuzz::ElemTy::Double, fuzz::DataClass::Uniform, 32, 23});
  fuzz::OpSpec Ord;
  Ord.K = fuzz::OpK::OrderBy;
  Ord.Key = fuzz::KeyTmpl::Abs;
  fuzz::OpSpec Arr;
  Arr.K = fuzz::OpK::ToArray;
  S.Ops = {Ord, Arr};
  return S;
}

std::string specText(const fuzz::QuerySpec &S) {
  return fuzz::serializeSpec(S);
}

bool resultsMatch(const QueryResult &Got, const QueryResult &Want) {
  if (Got.isScalar() != Want.isScalar() ||
      Got.rows().size() != Want.rows().size())
    return false;
  for (std::size_t I = 0; I != Got.rows().size(); ++I)
    if (!fuzz::fuzzValueNear(Got.rows()[I], Want.rows()[I]))
      return false;
  return true;
}

QueryResult reference(const PreparedHandle &P) {
  return runReference(P->query(), P->bindings());
}

/// Service options for tests that must never invoke the external
/// compiler: interpreter plans only.
ServeOptions interpOnly() {
  ServeOptions O;
  O.BackgroundRecompile = false;
  return O;
}

} // namespace

//===--------------------------------------------------------------------===//
// Session lifecycle & prepared handles
//===--------------------------------------------------------------------===//

TEST(ServeSession, DistinctIdsAndPreparedMemoization) {
  QueryService Svc(interpOnly());
  auto S1 = Svc.openSession();
  auto S2 = Svc.openSession();
  EXPECT_NE(S1->id(), S2->id());

  std::string Err;
  std::string Text = specText(sumSqSpec());
  PreparedHandle A = S1->prepare(Text, &Err);
  ASSERT_TRUE(A) << Err;
  PreparedHandle B = S1->prepare(Text, &Err);
  EXPECT_EQ(A.get(), B.get())
      << "re-preparing the same text in one session returns one handle";
  EXPECT_EQ(A->specText(), Text);
  EXPECT_EQ(Svc.stats().Sessions, 2u);
  EXPECT_EQ(Svc.stats().Prepares, 1u) << "memoized, not re-prepared";
}

TEST(ServeSession, MalformedSpecIsACleanError) {
  QueryService Svc(interpOnly());
  auto Sess = Svc.openSession();
  std::string Err;
  EXPECT_EQ(Sess->prepare("not a spec\n", &Err), nullptr);
  EXPECT_FALSE(Err.empty());
  // Grammar errors too (unknown op), not just a missing header.
  EXPECT_EQ(Sess->prepare("steno-fuzz v1\nsource 0 double 4 uniform 1\n"
                          "op frobnicate\nend\n",
                          &Err),
            nullptr);
  Response R = Sess->executeSpec("garbage\n", std::chrono::milliseconds(100));
  EXPECT_EQ(R.St, Status::Error);
  EXPECT_FALSE(R.Message.empty());
  EXPECT_EQ(Svc.stats().Errors, 0u)
      << "prepare failures are not request errors";
}

TEST(ServeSession, ExecuteNullHandleErrors) {
  QueryService Svc(interpOnly());
  auto Sess = Svc.openSession();
  Response R = Sess->execute(nullptr);
  EXPECT_EQ(R.St, Status::Error);
  EXPECT_EQ(Svc.stats().Errors, 1u);
}

TEST(ServePrepare, StructurallyEqualSpecsShareOneCachedPlan) {
  QueryService Svc(interpOnly());
  auto S1 = Svc.openSession();
  auto S2 = Svc.openSession();
  std::string Err;
  // Same pipeline text prepared from two different sessions.
  PreparedHandle A = S1->prepare(specText(sumSqSpec()), &Err);
  PreparedHandle B = S2->prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(A && B) << Err;
  EXPECT_NE(A.get(), B.get()) << "distinct handles";
  EXPECT_EQ(Svc.cache().misses(), 1u) << "one compile";
  EXPECT_EQ(Svc.cache().hits(), 1u) << "second prepare hit the cache";
  EXPECT_EQ(Svc.cache().size(), 1u);
  // And both run to the same (correct) answer.
  QueryResult Want = reference(A);
  EXPECT_TRUE(resultsMatch(S1->execute(A).Result, Want));
  EXPECT_TRUE(resultsMatch(S2->execute(B).Result, Want));
}

//===--------------------------------------------------------------------===//
// Admission control: deadlines and load shedding
//===--------------------------------------------------------------------===//

TEST(ServeAdmission, QueuedRequestTimesOutPastDeadline) {
  Gate G;
  ServeOptions O = interpOnly();
  O.Workers = 1; // one worker: the gate serializes the queue behind it
  O.ExecHook = [&G] { G.wait(); };
  QueryService Svc(O);
  auto Sess = Svc.openSession();
  std::string Err;
  PreparedHandle P = Sess->prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(P) << Err;

  std::thread Blocked([&] {
    Response R = Sess->execute(P, std::chrono::milliseconds(10000));
    EXPECT_EQ(R.St, Status::Ok);
  });
  // Wait until the first request is admitted, then queue one with a
  // deadline that will expire while it waits behind the parked worker.
  while (Svc.stats().QueueDepth < 1)
    std::this_thread::yield();
  std::thread Doomed([&] {
    Response R = Sess->execute(P, std::chrono::milliseconds(30));
    EXPECT_EQ(R.St, Status::Timeout);
    EXPECT_NE(R.Id, 0u);
  });
  while (Svc.stats().QueueDepth < 2)
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  G.open();
  Blocked.join();
  Doomed.join();
  QueryService::Stats S = Svc.stats();
  EXPECT_EQ(S.Timeouts, 1u);
  EXPECT_EQ(S.Ok, 1u);
  EXPECT_EQ(S.QueueDepth, 0);
}

TEST(ServeAdmission, FullQueueSheds) {
  Gate G;
  ServeOptions O = interpOnly();
  O.Workers = 1;
  O.MaxQueue = 2;
  O.ExecHook = [&G] { G.wait(); };
  QueryService Svc(O);
  auto Sess = Svc.openSession();
  std::string Err;
  PreparedHandle P = Sess->prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(P) << Err;

  std::vector<std::thread> Occupants;
  for (int I = 0; I < 2; ++I)
    Occupants.emplace_back([&] {
      Response R = Sess->execute(P, std::chrono::milliseconds(10000));
      EXPECT_EQ(R.St, Status::Ok);
    });
  while (Svc.stats().QueueDepth < 2)
    std::this_thread::yield();

  // Queue is at capacity: the next request is rejected immediately, on
  // the caller's thread, without waiting for the gate.
  Response Shed = Sess->execute(P, std::chrono::milliseconds(10000));
  EXPECT_EQ(Shed.St, Status::Shed);
  EXPECT_NE(Shed.Id, 0u);

  G.open();
  for (std::thread &T : Occupants)
    T.join();
  QueryService::Stats S = Svc.stats();
  EXPECT_EQ(S.Shed, 1u);
  EXPECT_EQ(S.Ok, 2u);
  EXPECT_EQ(S.Accepted, 2u) << "the shed request was never admitted";
}

//===--------------------------------------------------------------------===//
// Graceful degradation & the background native swap
//===--------------------------------------------------------------------===//

TEST(ServeDegrade, SaturatedCompileQueueStaysInterpretedAndCorrect) {
  ServeOptions O;
  O.BackgroundRecompile = true;
  O.MaxCompileQueue = 0; // a permanently saturated compiler
  QueryService Svc(O);
  auto Sess = Svc.openSession();
  std::string Err;
  PreparedHandle P = Sess->prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_FALSE(P->nativeReady());

  QueryResult Want = reference(P);
  for (int I = 0; I < 3; ++I) {
    Response R = Sess->execute(P);
    ASSERT_EQ(R.St, Status::Ok);
    EXPECT_TRUE(R.Degraded) << "interpreted while a native plan is wanted";
    EXPECT_FALSE(R.NativePlan);
    EXPECT_TRUE(resultsMatch(R.Result, Want));
  }
  QueryService::Stats S = Svc.stats();
  EXPECT_GE(S.RecompilesSaturated, 1u);
  EXPECT_EQ(S.RecompilesDone, 0u);
  EXPECT_EQ(S.DegradedRuns, 3u);
  EXPECT_FALSE(P->nativeReady());
}

TEST(ServeDegrade, BackgroundRecompileSwapsInTheNativePlan) {
  ServeOptions O; // recompile on, real compile queue
  QueryService Svc(O);
  auto Sess = Svc.openSession();
  std::string Err;
  PreparedHandle P = Sess->prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(P) << Err;

  QueryResult Want = reference(P);
  // First runs may be degraded (compile in flight); all must be correct.
  Response Early = Sess->execute(P);
  ASSERT_EQ(Early.St, Status::Ok);
  EXPECT_TRUE(resultsMatch(Early.Result, Want));

  Svc.drainRecompiles();
  ASSERT_TRUE(P->nativeReady()) << "compile completed after drain";
  EXPECT_GT(P->nativeCompileMillis(), 0.0);

  Response Late = Sess->execute(P);
  ASSERT_EQ(Late.St, Status::Ok);
  EXPECT_TRUE(Late.NativePlan) << "post-swap runs take the native plan";
  EXPECT_FALSE(Late.Degraded);
  EXPECT_TRUE(resultsMatch(Late.Result, Want));
  EXPECT_EQ(Svc.stats().RecompilesDone, 1u);
}

TEST(ServeDegrade, EqualQueriesShareOneNativeCompile) {
  ServeOptions O;
  QueryService Svc(O);
  auto S1 = Svc.openSession();
  auto S2 = Svc.openSession();
  std::string Err;
  PreparedHandle A = S1->prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(A) << Err;
  Svc.drainRecompiles();
  ASSERT_TRUE(A->nativeReady());
  // A structurally equal prepare after the first swap: the scheduled
  // recompile resolves from the cache without a second compiler run.
  PreparedHandle B = S2->prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(B) << Err;
  Svc.drainRecompiles();
  EXPECT_TRUE(B->nativeReady());
  QueryService::Stats S = Svc.stats();
  EXPECT_EQ(S.RecompilesDone, 2u) << "both handles upgraded";
  EXPECT_EQ(Svc.cache().duplicateCompilesDropped(), 0u);
  Response R = S2->execute(B);
  EXPECT_TRUE(R.NativePlan);
  EXPECT_TRUE(resultsMatch(R.Result, reference(B)));
}

//===--------------------------------------------------------------------===//
// Stress: N clients, exactly one response per request, oracle-correct
//===--------------------------------------------------------------------===//

TEST(ServeStress, EightClientsThousandRequestsEach) {
  constexpr unsigned Clients = 8;
  constexpr unsigned PerClient = 1000;
  ServeOptions O;
  O.Workers = 4;
  O.MaxQueue = 64; // > Clients: a closed loop can never shed
  QueryService Svc(O);

  struct SpecEntry {
    std::string Text;
    QueryResult Expected;
  };
  std::vector<SpecEntry> Mix;
  {
    auto Setup = Svc.openSession();
    std::string Err;
    for (const fuzz::QuerySpec &S :
         {sumSqSpec(), whereCountSpec(), orderBySpec()}) {
      SpecEntry E;
      E.Text = specText(S);
      PreparedHandle P = Setup->prepare(E.Text, &Err);
      ASSERT_TRUE(P) << Err;
      E.Expected = reference(P);
      Mix.push_back(std::move(E));
    }
  }

  std::atomic<std::uint64_t> Mismatches{0}, NonOk{0};
  std::vector<std::vector<std::uint64_t>> Ids(Clients);
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      auto Sess = Svc.openSession();
      std::string Err;
      std::vector<PreparedHandle> Handles;
      for (const SpecEntry &E : Mix) {
        PreparedHandle P = Sess->prepare(E.Text, &Err);
        if (!P)
          return; // counted below as missing responses
        Handles.push_back(P);
      }
      for (unsigned I = 0; I < PerClient; ++I) {
        std::size_t Which = (C + I) % Mix.size();
        Response R = Sess->execute(Handles[Which]);
        Ids[C].push_back(R.Id);
        if (R.St != Status::Ok) {
          NonOk.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!resultsMatch(R.Result, Mix[Which].Expected))
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  // Exactly one response per request, every id unique, zero mismatches.
  std::unordered_set<std::uint64_t> Unique;
  std::uint64_t Total = 0;
  for (const auto &V : Ids) {
    EXPECT_EQ(V.size(), PerClient) << "one response per request";
    Total += V.size();
    for (std::uint64_t Id : V) {
      EXPECT_NE(Id, 0u);
      EXPECT_TRUE(Unique.insert(Id).second) << "duplicate response id";
    }
  }
  EXPECT_EQ(Total, Clients * PerClient);
  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_EQ(NonOk.load(), 0u);
  QueryService::Stats S = Svc.stats();
  EXPECT_EQ(S.Ok, Clients * PerClient);
  EXPECT_EQ(S.Accepted, Clients * PerClient);
  EXPECT_EQ(S.QueueDepth, 0);
}

//===--------------------------------------------------------------------===//
// Soak: executing through the mid-stream plan swap
//===--------------------------------------------------------------------===//

TEST(ServeSoak, PlanSwapMidStreamKeepsResultsIdentical) {
  constexpr unsigned Threads = 4;
  ServeOptions O;
  O.BackgroundRecompile = false; // we trigger the swap by hand, mid-run
  O.Workers = 4;
  O.MaxQueue = 64;
  QueryService Svc(O);
  auto Sess = Svc.openSession();
  std::string Err;
  PreparedHandle P = Sess->prepare(specText(sumSqSpec(64, 91)), &Err);
  ASSERT_TRUE(P) << Err;
  QueryResult Want = reference(P);

  // Runners hammer the handle until told to stop; the stop lands only
  // after the swap, so the stream provably spans interp -> native.
  std::atomic<bool> Stop{false};
  std::atomic<std::uint64_t> Sent{0}, Mismatches{0}, NonOk{0},
      NativeRuns{0}, InterpRuns{0};
  std::vector<std::thread> Runners;
  for (unsigned T = 0; T < Threads; ++T) {
    Runners.emplace_back([&] {
      auto Mine = Svc.openSession();
      while (!Stop.load(std::memory_order_relaxed)) {
        Sent.fetch_add(1, std::memory_order_relaxed);
        Response R = Mine->execute(P);
        if (R.St != Status::Ok) {
          NonOk.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        (R.NativePlan ? NativeRuns : InterpRuns)
            .fetch_add(1, std::memory_order_relaxed);
        if (!resultsMatch(R.Result, Want))
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Force the native recompile while the runners are mid-stream, so the
  // release/acquire publish is exercised under real contention.
  while (InterpRuns.load(std::memory_order_relaxed) == 0)
    std::this_thread::yield();
  EXPECT_TRUE(Svc.scheduleRecompile(P));
  EXPECT_FALSE(Svc.scheduleRecompile(P)) << "second schedule is a no-op";
  Svc.drainRecompiles();
  // A post-swap grace period so every runner sees the native plan.
  std::uint64_t SwapMark = NativeRuns.load(std::memory_order_relaxed);
  while (NativeRuns.load(std::memory_order_relaxed) <
         SwapMark + Threads * 4)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &T : Runners)
    T.join();

  EXPECT_EQ(NonOk.load(), 0u);
  EXPECT_EQ(Mismatches.load(), 0u)
      << "results identical before, across and after the swap";
  ASSERT_TRUE(P->nativeReady());
  EXPECT_GT(InterpRuns.load(), 0u) << "pre-swap executions exist";
  EXPECT_GT(NativeRuns.load(), 0u) << "post-swap executions exist";
  EXPECT_EQ(NativeRuns.load() + InterpRuns.load(), Sent.load())
      << "exactly one Ok response per request";
  // After the swap every further run is native.
  Response R = Sess->execute(P);
  EXPECT_TRUE(R.NativePlan);
  EXPECT_TRUE(resultsMatch(R.Result, Want));
}

namespace {

/// Two same-shaped preds in pessimal order: the first passes ~all of the
/// uniform [-100, 100] data, the second a sliver. Static ranking sees two
/// identical costs and keeps the written order; only observed feedback
/// can swap them — which makes the adaptive v1 -> v2 re-swap observable.
fuzz::QuerySpec skewedPredsSpec(double LowC, double HighC) {
  fuzz::QuerySpec S;
  S.Sources.push_back(
      {0, fuzz::ElemTy::Double, fuzz::DataClass::Uniform, 256, 33});
  fuzz::OpSpec W1;
  W1.K = fuzz::OpK::Where;
  W1.P = fuzz::PredTmpl::GtC;
  W1.DArg = LowC;
  fuzz::OpSpec W2;
  W2.K = fuzz::OpK::Where;
  W2.P = fuzz::PredTmpl::GtC;
  W2.DArg = HighC;
  fuzz::OpSpec Agg;
  Agg.K = fuzz::OpK::Agg;
  Agg.A = fuzz::AggKind::Sum;
  S.Ops = {W1, W2, Agg};
  return S;
}

} // namespace

TEST(ServeSoak, AdaptiveReplanSwapsMidStreamKeepsResultsIdentical) {
  constexpr unsigned Threads = 4;
  ServeOptions O;
  O.BackgroundRecompile = false; // interp v1 -> interp v2, swapped by hand
  O.Profile = true;              // feedback needs observed runs
  O.AdaptiveReplan = true;
  O.ReplanEvery = 0; // no cadence: the test triggers the re-plan itself
  O.AdaptWindow = 0; // no judgement: the soak only exercises the swap
  O.Workers = 4;
  O.MaxQueue = 64;
  QueryService Svc(O);
  auto Sess = Svc.openSession();
  std::string Err;
  PreparedHandle P = Sess->prepare(specText(skewedPredsSpec(-99.0, 95.0)),
                                   &Err);
  ASSERT_TRUE(P) << Err;
  QueryResult Want = reference(P);

  // Runners hammer the handle across the static -> adaptive swap; the
  // stop lands only after the swap, so the stream provably spans both.
  std::atomic<bool> Stop{false};
  std::atomic<std::uint64_t> Sent{0}, Mismatches{0}, NonOk{0},
      AdaptiveRuns{0}, StaticRuns{0};
  std::vector<std::thread> Runners;
  for (unsigned T = 0; T < Threads; ++T) {
    Runners.emplace_back([&] {
      auto Mine = Svc.openSession();
      while (!Stop.load(std::memory_order_relaxed)) {
        Sent.fetch_add(1, std::memory_order_relaxed);
        Response R = Mine->execute(P);
        if (R.St != Status::Ok) {
          NonOk.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        (R.AdaptivePlan ? AdaptiveRuns : StaticRuns)
            .fetch_add(1, std::memory_order_relaxed);
        if (!resultsMatch(R.Result, Want))
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Enough profiled static runs to ripen the feedback under any
  // min-sample setting, then re-plan mid-stream.
  std::uint64_t Need =
      adapt::FeedbackStore::global().minSamples() + 4;
  while (StaticRuns.load(std::memory_order_relaxed) < Need)
    std::this_thread::yield();
  for (int Attempt = 0; Attempt != 1000 && !P->adaptiveLive(); ++Attempt) {
    Svc.scheduleAdaptiveReplan(P);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(P->adaptiveLive()) << "feedback re-plan never swapped in";
  // A post-swap grace period so every runner sees the v2 plan.
  std::uint64_t SwapMark = AdaptiveRuns.load(std::memory_order_relaxed);
  while (AdaptiveRuns.load(std::memory_order_relaxed) <
         SwapMark + Threads * 4)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &T : Runners)
    T.join();

  EXPECT_EQ(NonOk.load(), 0u);
  EXPECT_EQ(Mismatches.load(), 0u)
      << "results identical before, across and after the re-swap";
  EXPECT_GT(StaticRuns.load(), 0u) << "pre-swap executions exist";
  EXPECT_GT(AdaptiveRuns.load(), 0u) << "post-swap executions exist";
  EXPECT_EQ(StaticRuns.load() + AdaptiveRuns.load(), Sent.load())
      << "exactly one Ok response per request";
  QueryService::Stats S = Svc.stats();
  EXPECT_GE(S.ReplanSwaps, 1u);
  EXPECT_GE(S.AdaptiveRuns, AdaptiveRuns.load());
  // After the swap every further run is the feedback plan.
  Response R = Sess->execute(P);
  EXPECT_TRUE(R.AdaptivePlan);
  EXPECT_TRUE(resultsMatch(R.Result, Want));
}

TEST(ServeAdapt, ConsecutiveMispredictionsPinTheStaticPlan) {
  ServeOptions O;
  O.BackgroundRecompile = false;
  O.Profile = true;
  O.AdaptiveReplan = true;
  O.ReplanEvery = 0;
  O.AdaptWindow = 4;
  // Force every judgement to a misprediction: two consecutive strikes
  // must trip the ignorance list and pin the static plan.
  O.AdaptJudge = [](double, double) { return true; };
  QueryService Svc(O);
  auto Sess = Svc.openSession();
  std::string Err;
  PreparedHandle P = Sess->prepare(specText(skewedPredsSpec(-98.0, 90.0)),
                                   &Err);
  ASSERT_TRUE(P) << Err;
  QueryResult Want = reference(P);

  // Ripen the feedback on the static plan.
  std::uint64_t Seed = adapt::FeedbackStore::global().minSamples() + 2;
  for (std::uint64_t I = 0; I != Seed; ++I) {
    Response R = Sess->execute(P);
    ASSERT_EQ(R.St, Status::Ok);
    EXPECT_FALSE(R.AdaptivePlan);
    EXPECT_TRUE(resultsMatch(R.Result, Want));
  }

  auto waitReverted = [&](std::uint64_t WantReverts) {
    for (int Spin = 0; Spin != 2000; ++Spin) {
      if (!P->adaptiveLive() && Svc.stats().AdaptReverted >= WantReverts)
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  };

  for (std::uint64_t Cycle = 1; Cycle <= 2; ++Cycle) {
    ASSERT_TRUE(Svc.scheduleAdaptiveReplan(P)) << "cycle " << Cycle;
    ASSERT_TRUE(P->adaptiveLive());
    // Run out the judgement window on the v2 plan; results never drift.
    for (unsigned R = 0; R != O.AdaptWindow; ++R) {
      Response Rsp = Sess->execute(P);
      ASSERT_EQ(Rsp.St, Status::Ok);
      EXPECT_TRUE(Rsp.AdaptivePlan) << "cycle " << Cycle << " run " << R;
      EXPECT_TRUE(resultsMatch(Rsp.Result, Want));
    }
    // The judge fired on the last windowed run (after the response was
    // answered): the forced misprediction reverts to the static plan.
    ASSERT_TRUE(waitReverted(Cycle)) << "cycle " << Cycle;
  }

  // Strike two tripped the quarantine: the handle is pinned, further
  // re-plans refuse, and every subsequent run is the static plan.
  EXPECT_TRUE(P->pinnedStatic());
  QueryService::Stats S = Svc.stats();
  EXPECT_EQ(S.AdaptReverted, 2u);
  EXPECT_EQ(S.AdaptPinned, 1u);
  EXPECT_EQ(S.ReplanSwaps, 2u);
  EXPECT_FALSE(Svc.scheduleAdaptiveReplan(P));
  Response R = Sess->execute(P);
  ASSERT_EQ(R.St, Status::Ok);
  EXPECT_FALSE(R.AdaptivePlan);
  EXPECT_TRUE(resultsMatch(R.Result, Want));
}

//===--------------------------------------------------------------------===//
// The fuzz corpus, replayed through the service
//===--------------------------------------------------------------------===//

TEST(ServeCorpus, EveryReproducerMatchesTheOracleThroughServe) {
  namespace fs = std::filesystem;
  std::string Dir = std::string(STENO_TESTS_SRC_DIR) + "/fuzz_corpus";
  ASSERT_TRUE(fs::exists(Dir));
  QueryService Svc(interpOnly());
  auto Sess = Svc.openSession();
  unsigned Replayed = 0;
  for (const auto &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".fuzzspec")
      continue;
    std::ifstream In(Entry.path());
    std::stringstream Ss;
    Ss << In.rdbuf();
    std::string Err;
    PreparedHandle P = Sess->prepare(Ss.str(), &Err);
    ASSERT_TRUE(P) << Entry.path() << ": " << Err;
    Response R = Sess->execute(P);
    ASSERT_EQ(R.St, Status::Ok) << Entry.path();
    EXPECT_TRUE(resultsMatch(R.Result, reference(P))) << Entry.path();
    ++Replayed;
  }
  EXPECT_GE(Replayed, 17u) << "corpus went missing";
}

//===--------------------------------------------------------------------===//
// Wire protocol
//===--------------------------------------------------------------------===//

TEST(ServeWire, RenderStatusFrames) {
  Response T;
  T.St = Status::Timeout;
  T.Id = 7;
  EXPECT_EQ(renderResponse(T), "timeout 7\n");
  Response Sh;
  Sh.St = Status::Shed;
  Sh.Id = 9;
  EXPECT_EQ(renderResponse(Sh), "shed 9\n");
  Response E;
  E.St = Status::Error;
  E.Message = "bad spec:\nline 2";
  EXPECT_EQ(renderResponse(E), "error bad spec:; line 2\n");
  Response Anon;
  Anon.St = Status::Error;
  EXPECT_EQ(renderResponse(Anon), "error internal error\n");
}

TEST(ServeWire, StatusNames) {
  EXPECT_STREQ(statusName(Status::Ok), "ok");
  EXPECT_STREQ(statusName(Status::Timeout), "timeout");
  EXPECT_STREQ(statusName(Status::Shed), "shed");
  EXPECT_STREQ(statusName(Status::Error), "error");
}

TEST(ServeWire, SocketpairEndToEnd) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  QueryService Svc(interpOnly());
  std::thread Server([&] { serveConnection(Svc, Fds[0]); });
  WireClient Client(Fds[1]);

  // Prepare a scalar query and a row-producing one.
  std::uint64_t HSum = 99, HRows = 99;
  std::string Err;
  ASSERT_TRUE(Client.prepare(specText(sumSqSpec()), HSum, Err)) << Err;
  EXPECT_EQ(HSum, 0u);
  ASSERT_TRUE(Client.prepare(specText(orderBySpec()), HRows, Err)) << Err;
  EXPECT_EQ(HRows, 1u);

  // A malformed spec is an error frame, not a dropped connection.
  std::uint64_t HBad = 99;
  EXPECT_FALSE(Client.prepare("steno-fuzz v1\nsource 0 double 4 uniform 1\n"
                              "op frobnicate\nend\n",
                              HBad, Err));
  EXPECT_FALSE(Err.empty());

  // Expected rows, rendered exactly as the server renders them.
  QueryService Ref(interpOnly());
  auto RefSess = Ref.openSession();
  PreparedHandle RefSum = RefSess->prepare(specText(sumSqSpec()), &Err);
  PreparedHandle RefRows = RefSess->prepare(specText(orderBySpec()), &Err);
  ASSERT_TRUE(RefSum && RefRows) << Err;
  QueryResult WantSum = reference(RefSum);
  QueryResult WantRows = reference(RefRows);

  WireClient::ExecResult R;
  ASSERT_TRUE(Client.exec(HSum, 1000, R));
  EXPECT_EQ(R.St, Status::Ok);
  EXPECT_TRUE(R.Scalar);
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_EQ(R.Rows[0], fuzz::fuzzValueStr(WantSum.scalarValue()));

  ASSERT_TRUE(Client.exec(HRows, 1000, R));
  EXPECT_EQ(R.St, Status::Ok);
  EXPECT_FALSE(R.Scalar);
  ASSERT_EQ(R.Rows.size(), WantRows.rows().size());
  for (std::size_t I = 0; I != R.Rows.size(); ++I)
    EXPECT_EQ(R.Rows[I], fuzz::fuzzValueStr(WantRows.rows()[I])) << I;

  // Unknown handle: an error frame on a healthy connection.
  ASSERT_TRUE(Client.exec(42, 1000, R));
  EXPECT_EQ(R.St, Status::Error);

  std::string Json;
  ASSERT_TRUE(Client.stats(Json));
  EXPECT_NE(Json.find("\"ok\":2"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"prepares\":2"), std::string::npos) << Json;

  Client.quit();
  Server.join();
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(ServeWire, EofMidSpecDropsConnectionCleanly) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  QueryService Svc(interpOnly());
  std::thread Server([&] { serveConnection(Svc, Fds[0]); });
  {
    FdStream S(Fds[1]);
    S.writeAll("prepare\nsteno-fuzz v1\nsource 0 double 4 uniform 1\n");
  }
  ::close(Fds[1]); // EOF before the spec's `end`
  Server.join();   // must return, not spin or crash
  ::close(Fds[0]);
  EXPECT_EQ(Svc.stats().Prepares, 0u);
}

//===--------------------------------------------------------------------===//
// Shutdown: destruction races against in-flight background work
//===--------------------------------------------------------------------===//

TEST(ServeShutdown, DestroyDuringInflightBackgroundCompileSwap) {
  // Tear the service down while the background native compile — a real
  // external-compiler run scheduled by prepare() — is still in flight.
  // The destructor must wait for the swap callback (which touches stats,
  // the cache, and the handle's publish flag), not race it. Distinct
  // specs per iteration guarantee a fresh compile is genuinely running
  // when the destructor fires.
  for (std::uint64_t Round = 0; Round != 2; ++Round) {
    ServeOptions O;
    O.BackgroundRecompile = true;
    PreparedHandle P;
    {
      QueryService Svc(O);
      auto Sess = Svc.openSession();
      std::string Err;
      P = Sess->prepare(specText(sumSqSpec(48, 1000 + Round)), &Err);
      ASSERT_TRUE(P) << Err;
      Response R = Sess->execute(P);
      ASSERT_EQ(R.St, Status::Ok);
      // Destroy now, with the compile (almost certainly) unfinished.
    }
    // The handle outlives the service; the swap either completed before
    // teardown finished or never published — both are consistent states,
    // and the publish flag must not be written after this point.
    bool ReadyAtTeardown = P->nativeReady();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(P->nativeReady(), ReadyAtTeardown)
        << "swap published after the service was destroyed";
  }
}

TEST(ServeShutdown, DestroyWhileRequestExecutes) {
  // A worker is parked inside a request when the destructor runs: the
  // pool must drain it (fulfilling the promise) before members die.
  Gate Entered, Release;
  std::atomic<bool> First{true};
  ServeOptions O;
  O.BackgroundRecompile = false;
  O.Workers = 1;
  O.ExecHook = [&] {
    if (First.exchange(false)) {
      Entered.open();
      Release.wait();
    }
  };
  QueryService *Svc = new QueryService(O);
  auto Sess = Svc->openSession();
  std::string Err;
  PreparedHandle P = Sess->prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(P) << Err;

  std::thread Client([&] {
    Response R = Sess->execute(P);
    EXPECT_EQ(R.St, Status::Ok);
  });
  Entered.wait();
  std::thread Destroyer([&] { delete Svc; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Release.open();
  Destroyer.join();
  Client.join();
}
