//===- tests/expr_test.cpp - Expression language tests ---------*- C++ -*-===//

#include "expr/Analysis.h"
#include "expr/CxxPrinter.h"
#include "expr/Dsl.h"
#include "expr/Eval.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace steno::expr;
using namespace steno::expr::dsl;

namespace {

/// Evaluates a closed expression.
Value evalClosed(const E &Handle) {
  Env Environment;
  return evalExpr(*Handle.node(), Environment);
}

/// Evaluates with one bound parameter.
Value evalWith(const E &Handle, const std::string &Name, Value V) {
  Env Environment;
  Environment.bind(Name, std::move(V));
  return evalExpr(*Handle.node(), Environment);
}

} // namespace

//===--------------------------------------------------------------------===//
// Types
//===--------------------------------------------------------------------===//

TEST(ExprType, ScalarSingletons) {
  EXPECT_EQ(Type::int64Ty(), Type::int64Ty());
  EXPECT_EQ(Type::doubleTy(), Type::doubleTy());
  EXPECT_EQ(Type::boolTy(), Type::boolTy());
  EXPECT_EQ(Type::vecTy(), Type::vecTy());
}

TEST(ExprType, StructuralEquality) {
  TypeRef P1 = Type::pairTy(Type::int64Ty(), Type::doubleTy());
  TypeRef P2 = Type::pairTy(Type::int64Ty(), Type::doubleTy());
  EXPECT_NE(P1, P2) << "pairs are not interned";
  EXPECT_TRUE(sameType(P1, P2));
  EXPECT_FALSE(
      sameType(P1, Type::pairTy(Type::doubleTy(), Type::doubleTy())));
}

TEST(ExprType, Str) {
  EXPECT_EQ(Type::pairTy(Type::int64Ty(), Type::vecTy())->str(),
            "pair<int64, vec>");
}

TEST(ExprType, CxxNames) {
  EXPECT_EQ(Type::doubleTy()->cxxName(), "double");
  EXPECT_EQ(Type::int64Ty()->cxxName(), "std::int64_t");
  EXPECT_EQ(Type::vecTy()->cxxName(), "steno::rt::VecView");
  EXPECT_EQ(Type::pairTy(Type::boolTy(), Type::doubleTy())->cxxName(),
            "steno::rt::Pair<bool, double>");
}

TEST(ExprType, Predicates) {
  EXPECT_TRUE(Type::int64Ty()->isNumeric());
  EXPECT_TRUE(Type::doubleTy()->isNumeric());
  EXPECT_FALSE(Type::boolTy()->isNumeric());
  EXPECT_TRUE(Type::boolTy()->isScalar());
  EXPECT_FALSE(Type::vecTy()->isScalar());
}

//===--------------------------------------------------------------------===//
// Construction and typing
//===--------------------------------------------------------------------===//

TEST(ExprBuild, ConstTypes) {
  EXPECT_TRUE(E(1).type()->isInt64());
  EXPECT_TRUE(E(1.5).type()->isDouble());
  EXPECT_TRUE(E(true).type()->isBool());
}

TEST(ExprBuild, ArithmeticPromotion) {
  E Mixed = E(1) + E(2.5);
  EXPECT_TRUE(Mixed.type()->isDouble())
      << "int64 + double promotes to double";
  E Same = E(1) + E(2);
  EXPECT_TRUE(Same.type()->isInt64());
}

TEST(ExprBuild, ComparisonIsBool) {
  EXPECT_TRUE((E(1) < E(2.0)).type()->isBool());
  EXPECT_TRUE((E(true) == E(false)).type()->isBool());
}

TEST(ExprBuild, ConvertIsIdempotent) {
  ExprRef D = Expr::constDouble(1.0);
  EXPECT_EQ(Expr::convert(D, Type::doubleTy()), D)
      << "no-op conversions are not materialized";
  EXPECT_NE(Expr::convert(D, Type::int64Ty()), D);
}

TEST(ExprBuild, PairProjectionTypes) {
  E P = pair(E(1), E(2.0));
  EXPECT_TRUE(P.type()->isPair());
  EXPECT_TRUE(P.first().type()->isInt64());
  EXPECT_TRUE(P.second().type()->isDouble());
}

TEST(ExprBuild, VecOps) {
  E V = param("v", Type::vecTy());
  EXPECT_TRUE(V[E(0)].type()->isDouble());
  EXPECT_TRUE(len(V).type()->isInt64());
}

TEST(ExprBuild, BuiltinResultTypes) {
  EXPECT_TRUE(sqrt(E(4)).type()->isDouble());
  EXPECT_TRUE(abs(E(-2)).type()->isInt64());
  EXPECT_TRUE(abs(E(-2.0)).type()->isDouble());
  EXPECT_TRUE(min(E(1), E(2.0)).type()->isDouble());
  EXPECT_TRUE(pow(E(2), E(3)).type()->isDouble());
}

TEST(ExprBuild, CondPromotesArms) {
  E C = cond(E(true), E(1), E(2.5));
  EXPECT_TRUE(C.type()->isDouble());
}

TEST(ExprBuild, DebugStr) {
  E X = param("x", Type::int64Ty());
  EXPECT_EQ((X % 2 == 0).node()->str(), "((x % 2) == 0)");
}

//===--------------------------------------------------------------------===//
// Evaluation
//===--------------------------------------------------------------------===//

TEST(ExprEval, IntArithmetic) {
  EXPECT_EQ(evalClosed(E(7) + E(3)).asInt64(), 10);
  EXPECT_EQ(evalClosed(E(7) - E(3)).asInt64(), 4);
  EXPECT_EQ(evalClosed(E(7) * E(3)).asInt64(), 21);
  EXPECT_EQ(evalClosed(E(7) / E(3)).asInt64(), 2);
  EXPECT_EQ(evalClosed(E(7) % E(3)).asInt64(), 1);
  EXPECT_EQ(evalClosed(-E(7)).asInt64(), -7);
}

TEST(ExprEval, DoubleArithmetic) {
  EXPECT_DOUBLE_EQ(evalClosed(E(7.0) / E(2.0)).asDouble(), 3.5);
  EXPECT_DOUBLE_EQ(evalClosed(E(7.5) % E(2.0)).asDouble(),
                   std::fmod(7.5, 2.0));
}

TEST(ExprEval, MixedPromotes) {
  Value V = evalClosed(E(1) + E(0.5));
  EXPECT_TRUE(V.isDouble());
  EXPECT_DOUBLE_EQ(V.asDouble(), 1.5);
}

TEST(ExprEval, Comparisons) {
  EXPECT_TRUE(evalClosed(E(1) < E(2)).asBool());
  EXPECT_FALSE(evalClosed(E(2) < E(1)).asBool());
  EXPECT_TRUE(evalClosed(E(2) <= E(2)).asBool());
  EXPECT_TRUE(evalClosed(E(3) > E(2)).asBool());
  EXPECT_TRUE(evalClosed(E(2) >= E(2)).asBool());
  EXPECT_TRUE(evalClosed(E(2) == E(2.0)).asBool());
  EXPECT_TRUE(evalClosed(E(2) != E(3)).asBool());
  EXPECT_TRUE(evalClosed(E(true) == E(true)).asBool());
  EXPECT_TRUE(evalClosed(E(true) != E(false)).asBool());
}

TEST(ExprEval, LogicShortCircuits) {
  // Division by zero in the unevaluated arm must not run.
  E X = param("x", Type::int64Ty());
  E Guarded = (X != 0) && (E(10) / X > 1);
  EXPECT_FALSE(evalWith(Guarded, "x", Value(std::int64_t{0})).asBool());
  EXPECT_TRUE(evalWith(Guarded, "x", Value(std::int64_t{2})).asBool());
  E GuardedOr = (X == 0) || (E(10) / X > 1);
  EXPECT_TRUE(evalWith(GuardedOr, "x", Value(std::int64_t{0})).asBool());
}

TEST(ExprEval, NotNeg) {
  EXPECT_FALSE(evalClosed(!E(true)).asBool());
  EXPECT_DOUBLE_EQ(evalClosed(-E(2.5)).asDouble(), -2.5);
}

TEST(ExprEval, Builtins) {
  EXPECT_DOUBLE_EQ(evalClosed(sqrt(E(9.0))).asDouble(), 3.0);
  EXPECT_DOUBLE_EQ(evalClosed(abs(E(-2.5))).asDouble(), 2.5);
  EXPECT_EQ(evalClosed(abs(E(-3))).asInt64(), 3);
  EXPECT_EQ(evalClosed(min(E(2), E(5))).asInt64(), 2);
  EXPECT_EQ(evalClosed(max(E(2), E(5))).asInt64(), 5);
  EXPECT_DOUBLE_EQ(evalClosed(dsl::floor(E(2.7))).asDouble(), 2.0);
  EXPECT_DOUBLE_EQ(evalClosed(dsl::ceil(E(2.2))).asDouble(), 3.0);
  EXPECT_DOUBLE_EQ(evalClosed(dsl::exp(E(0.0))).asDouble(), 1.0);
  EXPECT_DOUBLE_EQ(evalClosed(dsl::log(E(1.0))).asDouble(), 0.0);
  EXPECT_DOUBLE_EQ(evalClosed(pow(E(2.0), E(10.0))).asDouble(), 1024.0);
}

TEST(ExprEval, Cond) {
  EXPECT_EQ(evalClosed(cond(E(true), E(1), E(2))).asInt64(), 1);
  EXPECT_EQ(evalClosed(cond(E(false), E(1), E(2))).asInt64(), 2);
}

TEST(ExprEval, Pairs) {
  Value V = evalClosed(pair(E(1), pair(E(2.5), E(true))));
  EXPECT_EQ(V.first().asInt64(), 1);
  EXPECT_DOUBLE_EQ(V.second().first().asDouble(), 2.5);
  EXPECT_TRUE(V.second().second().asBool());
  EXPECT_EQ(evalClosed(pair(E(1), E(2)).first()).asInt64(), 1);
  EXPECT_EQ(evalClosed(pair(E(1), E(2)).second()).asInt64(), 2);
}

TEST(ExprEval, VecAccess) {
  double Data[] = {1.0, 2.0, 3.0};
  E V = param("v", Type::vecTy());
  Value Bound = Value(VecView{Data, 3});
  EXPECT_EQ(evalWith(len(V), "v", Bound).asInt64(), 3);
  EXPECT_DOUBLE_EQ(evalWith(V[E(1)], "v", Bound).asDouble(), 2.0);
}

TEST(ExprEval, BufferSliceAndSourceLen) {
  std::vector<double> Buf = {0, 1, 2, 3, 4, 5};
  SourceBuffer Src;
  Src.DoubleData = Buf.data();
  Src.Count = 3;
  Src.Dim = 2;
  std::vector<SourceBuffer> Sources = {Src};
  Env Environment;
  Environment.setSources(&Sources);
  // Slice point 2 (doubles 4..5).
  ExprRef Slice = Expr::bufferSlice(0, Expr::constInt64(4),
                                    Expr::constInt64(2));
  Value V = evalExpr(*Slice, Environment);
  EXPECT_EQ(V.asVec().Len, 2);
  EXPECT_DOUBLE_EQ(V.asVec()[0], 4.0);
  ExprRef Len = Expr::sourceLen(0);
  EXPECT_EQ(evalExpr(*Len, Environment).asInt64(), 3);
}

TEST(ExprEval, Captures) {
  std::vector<Value> Caps = {Value(2.5), Value(std::int64_t{4})};
  Env Environment;
  Environment.setCaptures(&Caps);
  E Sum = capture(0, Type::doubleTy()) +
          toDouble(capture(1, Type::int64Ty()));
  EXPECT_DOUBLE_EQ(evalExpr(*Sum.node(), Environment).asDouble(), 6.5);
}

TEST(ExprEval, LambdaApplication) {
  E X = param("x", Type::int64Ty());
  E Y = param("y", Type::int64Ty());
  Lambda L = lambda({X, Y}, X * 10 + Y);
  Env Environment;
  Value V = applyLambda(L, {Value(std::int64_t{3}), Value(std::int64_t{4})},
                        Environment);
  EXPECT_EQ(V.asInt64(), 34);
}

TEST(ExprEval, NestedShadowing) {
  // Inner binding of the same name shadows the outer one.
  E X = param("x", Type::int64Ty());
  Env Environment;
  Environment.bind("x", Value(std::int64_t{1}));
  Environment.bind("x", Value(std::int64_t{2}));
  EXPECT_EQ(evalExpr(*X.node(), Environment).asInt64(), 2);
  Environment.pop();
  EXPECT_EQ(evalExpr(*X.node(), Environment).asInt64(), 1);
}

//===--------------------------------------------------------------------===//
// Value semantics
//===--------------------------------------------------------------------===//

TEST(ExprValue, Equality) {
  EXPECT_EQ(Value(1.5), Value(1.5));
  EXPECT_FALSE(Value(1.5) == Value(std::int64_t{1}));
  EXPECT_EQ(Value::makePair(Value(1.5), Value(true)),
            Value::makePair(Value(1.5), Value(true)));
  double A[] = {1, 2};
  double B[] = {1, 2};
  EXPECT_EQ(Value(VecView{A, 2}), Value(VecView{B, 2}))
      << "vec equality is element-wise";
}

TEST(ExprValue, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value(std::int64_t{3}).asNumericDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).asNumericDouble(), 2.5);
}

//===--------------------------------------------------------------------===//
// Analysis
//===--------------------------------------------------------------------===//

TEST(ExprAnalysis, FreeParams) {
  E X = param("x", Type::doubleTy());
  E Y = param("y", Type::doubleTy());
  std::set<std::string> Free = freeParams(*(X * Y + X).node());
  EXPECT_EQ(Free, (std::set<std::string>{"x", "y"}));
  EXPECT_TRUE(freeParams(*E(1.0).node()).empty());
}

TEST(ExprAnalysis, UsedCaptureSlots) {
  E Expr2 = capture(3, Type::doubleTy()) + capture(1, Type::doubleTy());
  EXPECT_EQ(usedCaptureSlots(*Expr2.node()),
            (std::set<unsigned>{1, 3}));
}

TEST(ExprAnalysis, UsedSourceSlots) {
  E S = slice(2, E(0), E(4))[E(0)] + toDouble(sourceLen(5));
  EXPECT_EQ(usedSourceSlots(*S.node()), (std::set<unsigned>{2, 5}));
}

TEST(ExprAnalysis, SubstituteReplacesAll) {
  E X = param("x", Type::int64Ty());
  ExprRef Body = (X * X + X).node();
  ExprRef Replaced = substituteParams(Body, {{"x", E(3).node()}});
  Env Environment;
  EXPECT_EQ(evalExpr(*Replaced, Environment).asInt64(), 12);
  EXPECT_TRUE(freeParams(*Replaced).empty());
}

TEST(ExprAnalysis, SubstituteLeavesOthers) {
  E X = param("x", Type::int64Ty());
  E Y = param("y", Type::int64Ty());
  ExprRef Replaced = substituteParams((X + Y).node(), {{"x", E(1).node()}});
  EXPECT_EQ(freeParams(*Replaced), (std::set<std::string>{"y"}));
}

TEST(ExprAnalysis, SubstituteSharesUnchangedSubtrees) {
  E Y = param("y", Type::int64Ty());
  ExprRef Body = (Y + Y).node();
  EXPECT_EQ(substituteParams(Body, {{"x", E(1).node()}}), Body)
      << "no-op substitution returns the same node";
}

TEST(ExprAnalysis, RenameParams) {
  E X = param("x", Type::int64Ty());
  ExprRef Renamed = renameParams((X * 2).node(), {{"x", "z"}});
  EXPECT_EQ(freeParams(*Renamed), (std::set<std::string>{"z"}));
}

//===--------------------------------------------------------------------===//
// C++ printing
//===--------------------------------------------------------------------===//

namespace {

CxxNames identityNames() {
  CxxNames Names;
  Names.Param = [](const std::string &N) { return N; };
  Names.Capture = [](unsigned Slot, const Type &) {
    return "cap" + std::to_string(Slot);
  };
  Names.SourceData = [](unsigned Slot) {
    return "src" + std::to_string(Slot) + "_d";
  };
  Names.SourceCount = [](unsigned Slot) {
    return "src" + std::to_string(Slot) + "_count";
  };
  return Names;
}

std::string printed(const E &Handle) {
  return printExprCxx(*Handle.node(), identityNames());
}

} // namespace

TEST(ExprPrint, Literals) {
  EXPECT_EQ(printed(E(42)), "INT64_C(42)");
  EXPECT_EQ(printed(E(true)), "true");
  EXPECT_EQ(printed(E(2.0)), "2.0");
}

TEST(ExprPrint, Arithmetic) {
  E X = param("x", Type::int64Ty());
  EXPECT_EQ(printed(X + 1), "(x + INT64_C(1))");
  EXPECT_EQ(printed(X % 2 == 0),
            "((x % INT64_C(2)) == INT64_C(0))");
}

TEST(ExprPrint, DoubleModuloIsFmod) {
  E X = param("x", Type::doubleTy());
  EXPECT_EQ(printed(X % 2.0), "std::fmod(x, 2.0)");
}

TEST(ExprPrint, ConvertIsStaticCast) {
  E X = param("x", Type::int64Ty());
  EXPECT_EQ(printed(toDouble(X)), "static_cast<double>(x)");
}

TEST(ExprPrint, BuiltinSpelling) {
  E X = param("x", Type::doubleTy());
  EXPECT_EQ(printed(sqrt(X)), "std::sqrt(x)");
  EXPECT_EQ(printed(min(X, E(1.0))), "std::min(x, 1.0)");
}

TEST(ExprPrint, PairAndVec) {
  E P = param("p", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  EXPECT_EQ(printed(P.first()), "(p).First");
  EXPECT_EQ(printed(P.second()[E(0)]), "((p).Second).Data[INT64_C(0)]");
  EXPECT_EQ(printed(len(P.second())), "((p).Second).Len");
}

TEST(ExprPrint, BufferSlice) {
  std::string S = printed(slice(1, E(0), E(3)));
  EXPECT_NE(S.find("steno::rt::VecView{src1_d"), std::string::npos) << S;
}

TEST(ExprPrint, Captures) {
  EXPECT_EQ(printed(capture(2, Type::doubleTy()) + 1.0),
            "(cap2 + 1.0)");
}

TEST(ExprPrint, CondTernary) {
  EXPECT_EQ(printed(cond(E(true), E(1), E(2))),
            "(true ? INT64_C(1) : INT64_C(2))");
}
