//===- tests/fold_test.cpp - Constant folding ------------------*- C++ -*-===//

#include "expr/Dsl.h"
#include "expr/Eval.h"
#include "expr/Fold.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <cmath>
#include <functional>

using namespace steno::expr;
using namespace steno::expr::dsl;

namespace {

ExprRef fold(const E &Handle) { return foldConstants(Handle.node()); }

} // namespace

TEST(Fold, ArithmeticLiterals) {
  EXPECT_EQ(fold(E(2) + E(3))->str(), "5");
  EXPECT_EQ(fold(E(2.5) * E(4.0))->str(), "10");
  EXPECT_EQ(fold(E(7) % E(3))->str(), "1");
  EXPECT_EQ(fold(-E(4))->str(), "-4");
}

TEST(Fold, NestedLiterals) {
  // (2 + 3) * (10 - 4) -> 30
  EXPECT_EQ(fold((E(2) + E(3)) * (E(10) - E(4)))->str(), "30");
}

TEST(Fold, MixedPromotionFolds) {
  ExprRef F = fold(E(1) + E(0.5));
  ASSERT_EQ(F->kind(), ExprKind::Const);
  EXPECT_DOUBLE_EQ(std::get<double>(F->constValue()), 1.5);
}

TEST(Fold, BuiltinsFold) {
  ExprRef F = fold(sqrt(E(9.0)));
  ASSERT_EQ(F->kind(), ExprKind::Const);
  EXPECT_DOUBLE_EQ(std::get<double>(F->constValue()), 3.0);
  EXPECT_EQ(fold(min(E(2), E(5)))->str(), "2");
}

TEST(Fold, ComparisonsFold) {
  EXPECT_EQ(fold(E(2) < E(3))->str(), "true");
  EXPECT_EQ(fold(E(2) == E(3))->str(), "false");
}

TEST(Fold, NonConstLeftAlone) {
  E X = param("x", Type::doubleTy());
  ExprRef Same = (X + 1.0).node();
  EXPECT_EQ(foldConstants(Same), Same) << "untouched trees are shared";
}

TEST(Fold, PartialFoldInsideTree) {
  E X = param("x", Type::doubleTy());
  // x * (2 + 3) -> x * 5
  EXPECT_EQ(fold(X * (toDouble(E(2) + E(3))))->str(), "(x * 5)");
}

TEST(Fold, CondWithConstantCondition) {
  E X = param("x", Type::doubleTy());
  EXPECT_EQ(fold(cond(E(true), X, X + 1.0))->str(), "x");
  EXPECT_EQ(fold(cond(E(false), X, X + 1.0))->str(), "(x + 1)");
}

TEST(Fold, BooleanIdentities) {
  E B = param("b", Type::boolTy());
  EXPECT_EQ(fold(E(true) && B)->str(), "b");
  EXPECT_EQ(fold(E(false) && B)->str(), "false");
  EXPECT_EQ(fold(E(true) || B)->str(), "true");
  EXPECT_EQ(fold(E(false) || B)->str(), "b");
}

TEST(Fold, ShortCircuitPreserved) {
  // false && (10/x > 1): the rhs must be dropped, never evaluated.
  E X = param("x", Type::int64Ty());
  ExprRef F = fold(E(false) && (E(10) / X > 1));
  EXPECT_EQ(F->str(), "false");
}

TEST(Fold, IntegerDivisionByZeroNotFolded) {
  ExprRef F = fold(E(10) / E(0));
  EXPECT_NE(F->kind(), ExprKind::Const)
      << "the trap must stay at its original program point";
  ExprRef M = fold(E(10) % E(0));
  EXPECT_NE(M->kind(), ExprKind::Const);
}

TEST(Fold, DoubleDivisionByZeroFolds) {
  ExprRef F = fold(E(1.0) / E(0.0));
  ASSERT_EQ(F->kind(), ExprKind::Const);
  EXPECT_TRUE(std::isinf(std::get<double>(F->constValue())));
}

TEST(Fold, PairProjectionOfFreshPair) {
  E X = param("x", Type::doubleTy());
  EXPECT_EQ(fold(pair(X, X + 1.0).first())->str(), "x");
  EXPECT_EQ(fold(pair(X, X + 1.0).second())->str(), "(x + 1)");
}

TEST(Fold, PairsThemselvesNotLiteralized) {
  ExprRef F = fold(pair(E(1), E(2)));
  EXPECT_EQ(F->kind(), ExprKind::PairNew);
  // But the components are constants already.
  EXPECT_EQ(F->operand(0)->str(), "1");
}

TEST(Fold, ConversionsFold) {
  EXPECT_EQ(fold(toInt64(E(3.7)))->str(), "3");
  ExprRef F = fold(toDouble(E(3)));
  ASSERT_EQ(F->kind(), ExprKind::Const);
  EXPECT_DOUBLE_EQ(std::get<double>(F->constValue()), 3.0);
}

TEST(Fold, EquivalenceOnRandomizedTrees) {
  // Folding must never change the value of a closed expression.
  steno::support::SplitMix64 Rng(17);
  for (int Trial = 0; Trial < 200; ++Trial) {
    // Random small arithmetic tree over literals.
    std::function<E(int)> Build = [&](int Depth) -> E {
      if (Depth == 0 || Rng.nextBelow(3) == 0)
        return E(Rng.nextDouble(-5, 5));
      E L = Build(Depth - 1);
      E R = Build(Depth - 1);
      switch (Rng.nextBelow(4)) {
      case 0:
        return L + R;
      case 1:
        return L - R;
      case 2:
        return L * R;
      default:
        return max(L, R);
      }
    };
    E Tree = Build(4);
    Env Environment;
    double Before = evalExpr(*Tree.node(), Environment).asDouble();
    ExprRef Folded = foldConstants(Tree.node());
    double After = evalExpr(*Folded, Environment).asDouble();
    EXPECT_EQ(Before, After) << "trial " << Trial;
    EXPECT_EQ(Folded->kind(), ExprKind::Const);
  }
}
