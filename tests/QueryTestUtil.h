//===- tests/QueryTestUtil.h - Shared helpers for query tests --*- C++ -*-===//
///
/// \file
/// Differential-testing helpers: run a query through the reference
/// executor and a compiled backend and compare results.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_TESTS_QUERYTESTUTIL_H
#define STENO_TESTS_QUERYTESTUTIL_H

#include "expr/Dsl.h"
#include "steno/RefExec.h"
#include "steno/Steno.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

namespace steno {
namespace testutil {

/// Renders a Value for failure messages.
inline std::string valueStr(const expr::Value &V) {
  switch (V.kind()) {
  case expr::TypeKind::Bool:
    return V.asBool() ? "true" : "false";
  case expr::TypeKind::Int64:
    return std::to_string(V.asInt64());
  case expr::TypeKind::Double:
    return std::to_string(V.asDouble());
  case expr::TypeKind::Vec: {
    std::string Out = "[";
    expr::VecView View = V.asVec();
    for (std::int64_t I = 0; I != View.Len; ++I) {
      if (I)
        Out += ", ";
      Out += std::to_string(View.Data[I]);
    }
    return Out + "]";
  }
  case expr::TypeKind::Pair:
    return "(" + valueStr(V.first()) + ", " + valueStr(V.second()) + ")";
  }
  return "?";
}

/// Structural equality with approximate double comparison (fused loops may
/// reassociate nothing, but libm results can differ in the last ulp
/// between interpreted and compiled evaluation of e.g. sqrt chains).
inline bool valueNear(const expr::Value &A, const expr::Value &B,
                      double Rel = 1e-9) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case expr::TypeKind::Bool:
    return A.asBool() == B.asBool();
  case expr::TypeKind::Int64:
    return A.asInt64() == B.asInt64();
  case expr::TypeKind::Double: {
    double X = A.asDouble();
    double Y = B.asDouble();
    if (X == Y)
      return true;
    double Scale = std::max(std::abs(X), std::abs(Y));
    return std::abs(X - Y) <= Rel * std::max(Scale, 1.0);
  }
  case expr::TypeKind::Vec: {
    expr::VecView VA = A.asVec();
    expr::VecView VB = B.asVec();
    if (VA.Len != VB.Len)
      return false;
    for (std::int64_t I = 0; I != VA.Len; ++I)
      if (!valueNear(expr::Value(VA.Data[I]), expr::Value(VB.Data[I]), Rel))
        return false;
    return true;
  }
  case expr::TypeKind::Pair:
    return valueNear(A.first(), B.first(), Rel) &&
           valueNear(A.second(), B.second(), Rel);
  }
  return false;
}

/// Runs \p Q against the reference executor and the given backend and
/// EXPECTs identical results.
inline void expectMatchesReference(const query::Query &Q, const Bindings &B,
                                   Backend Exec, const std::string &Name) {
  QueryResult Ref = runReference(Q, B);
  CompileOptions Options;
  Options.Exec = Exec;
  Options.Name = Name;
  CompiledQuery CQ = compileQuery(Q, Options);
  QueryResult Got = CQ.run(B);
  ASSERT_EQ(Ref.isScalar(), Got.isScalar()) << Name;
  ASSERT_EQ(Ref.rows().size(), Got.rows().size()) << Name;
  for (size_t I = 0; I != Ref.rows().size(); ++I)
    EXPECT_TRUE(valueNear(Ref.rows()[I], Got.rows()[I]))
        << Name << " row " << I << ": ref=" << valueStr(Ref.rows()[I])
        << " got=" << valueStr(Got.rows()[I]);
}

/// Deterministic random doubles in [Lo, Hi).
inline std::vector<double> randomDoubles(size_t N, std::uint64_t Seed,
                                         double Lo = -100.0,
                                         double Hi = 100.0) {
  support::SplitMix64 Rng(Seed);
  std::vector<double> Out;
  Out.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Out.push_back(Rng.nextDouble(Lo, Hi));
  return Out;
}

inline std::vector<std::int64_t> randomInt64s(size_t N, std::uint64_t Seed,
                                              std::uint64_t Bound = 1000) {
  support::SplitMix64 Rng(Seed);
  std::vector<std::int64_t> Out;
  Out.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Out.push_back(static_cast<std::int64_t>(Rng.nextBelow(Bound)) - 500);
  return Out;
}

/// A shared catalog of queries exercising every operator and nesting
/// pattern, with bound data. Both the interpreter and the JIT differential
/// suites iterate it.
struct Catalog {
  std::vector<double> Xs;
  std::vector<double> Ys;
  std::vector<std::int64_t> Is;
  std::vector<double> Points; ///< flat, Dim doubles per point (slot 3)
  std::int64_t Dim = 4;
  std::vector<double> Centroids; ///< flat, K x Dim (slot 4)
  std::int64_t K = 3;
  Bindings B;
  std::vector<std::pair<std::string, query::Query>> Queries;

  explicit Catalog(std::uint64_t Seed = 1, size_t N = 500) {
    using namespace expr;
    using namespace expr::dsl;
    using query::Query;

    Xs = randomDoubles(N, Seed, -50, 50);
    Ys = randomDoubles(17, Seed + 1, -5, 5);
    Is = randomInt64s(N, Seed + 2);
    Points = randomDoubles(static_cast<size_t>(Dim) * 40, Seed + 3);
    Centroids = randomDoubles(static_cast<size_t>(K * Dim), Seed + 4);
    B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
    B.bindDoubleArray(1, Ys.data(), static_cast<std::int64_t>(Ys.size()));
    B.bindInt64Array(2, Is.data(), static_cast<std::int64_t>(Is.size()));
    B.bindPointArray(3, Points.data(),
                     static_cast<std::int64_t>(Points.size()) / Dim, Dim);
    B.bindDoubleArray(4, Centroids.data(),
                      static_cast<std::int64_t>(Centroids.size()));
    B.setValue(0, expr::Value(2.5));           // double capture
    B.setValue(1, expr::Value(std::int64_t{7})); // int64 capture

    auto X = param("x", Type::doubleTy());
    auto Xi = param("xi", Type::int64Ty());
    auto A = param("a", Type::doubleTy());
    auto V = param("v", Type::doubleTy());
    auto P = param("p", Type::vecTy());
    auto D = param("d", Type::int64Ty());
    auto G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));

    auto add = [this](const char *Name, Query Q) {
      Queries.emplace_back(Name, std::move(Q));
    };

    // Element-wise chains.
    add("identity", Query::doubleArray(0).select(lambda({X}, X)));
    add("sumsq", Query::doubleArray(0)
                     .select(lambda({X}, X * X))
                     .sum());
    add("even_squares", Query::doubleArray(0)
                            .where(lambda({X}, toInt64(X) % 2 == 0))
                            .select(lambda({X}, X * X))
                            .sum());
    add("deep_chain", Query::doubleArray(0)
                          .select(lambda({X}, X + 1.0))
                          .select(lambda({X}, X * 2.0))
                          .where(lambda({X}, X > 0.0))
                          .select(lambda({X}, X - 3.0))
                          .where(lambda({X}, X < 40.0))
                          .sum());
    add("capture_scale", Query::doubleArray(0)
                             .select(lambda({X}, X * capture(0,
                                                   Type::doubleTy())))
                             .sum());

    // Stateful predicates.
    add("take", Query::doubleArray(0).take(E(7)).toArray());
    add("take_more_than_n", Query::doubleArray(0)
                                .take(E(static_cast<std::int64_t>(N + 9)))
                                .count());
    add("skip", Query::doubleArray(0).skip(E(5)).sum());
    add("take_skip_mix", Query::doubleArray(0)
                             .skip(E(3))
                             .take(E(11))
                             .select(lambda({X}, X * X))
                             .sum());
    add("take_capture_count",
        Query::doubleArray(0).take(capture(1, Type::int64Ty())).count());
    add("takewhile", Query::doubleArray(0)
                         .takeWhile(lambda({X}, X < 25.0))
                         .count());
    add("skipwhile", Query::doubleArray(0)
                         .skipWhile(lambda({X}, X < 25.0))
                         .count());

    // Aggregates.
    add("min", Query::doubleArray(0).min());
    add("max", Query::doubleArray(0).max());
    add("count_int", Query::int64Array(2).count());
    add("average", Query::doubleArray(0).average());
    add("sum_int", Query::int64Array(2).sum());
    add("agg_custom", Query::doubleArray(0).aggregate(
                          E(1.0),
                          lambda({A, X}, A + abs(X) / 100.0),
                          lambda({A}, A * 2.0)));
    {
      TypeRef AccTy = Type::pairTy(Type::doubleTy(), Type::int64Ty());
      auto Ac = param("ac", AccTy);
      add("agg_pair_acc",
          Query::doubleArray(0).aggregate(
              pair(E(0.0), E(0)),
              lambda({Ac, X}, pair(Ac.first() + X, Ac.second() + 1))));
    }

    // Early-exit aggregates.
    add("any_nonempty", Query::doubleArray(0).any());
    add("any_filtered_hit",
        Query::doubleArray(0).where(lambda({X}, X > 49.0)).any());
    add("any_filtered_miss",
        Query::doubleArray(0).where(lambda({X}, X > 1e9)).any());
    add("all_true", Query::doubleArray(0).all(lambda({X}, X > -1e9)));
    add("all_false", Query::doubleArray(0).all(lambda({X}, X > 0.0)));
    add("first_or_default",
        Query::doubleArray(0).where(lambda({X}, X > 10.0))
            .firstOrDefault(E(-1.0)));
    add("first_or_default_empty",
        Query::doubleArray(0).where(lambda({X}, X > 1e9))
            .firstOrDefault(E(-1.0)));
    add("contains_miss", Query::int64Array(2).contains(E(987654321)));
    add("any_nested",
        Query::doubleArray(0)
            .take(E(25))
            .selectMany(X, Query::doubleArray(1)
                               .select(lambda({V}, X + V)))
            .any());

    // Sinks.
    add("to_array", Query::doubleArray(0).take(E(20)).toArray());
    add("order_by", Query::doubleArray(0)
                        .take(E(50))
                        .orderBy(lambda({X}, X))
                        .toArray());
    add("order_then_take", Query::doubleArray(0)
                               .orderBy(lambda({X}, abs(X)))
                               .take(E(5))
                               .toArray());
    add("order_then_sum", Query::doubleArray(0)
                              .orderBy(lambda({X}, X))
                              .skip(E(10))
                              .sum());
    add("group_bags", Query::doubleArray(0)
                          .groupBy(lambda({X}, toInt64(X / 10.0))));
    add("group_having",
        Query::doubleArray(0)
            .groupBy(lambda({X}, toInt64(X / 10.0)))
            .where(lambda({G}, len(G.second()) > 3))
            .select(lambda({G}, G.first())));
    add("group_agg_direct",
        Query::doubleArray(0).groupByAggregate(
            lambda({X}, toInt64(X / 10.0)), E(0.0),
            lambda({A, X}, A + X)));
    add("group_agg_dense",
        Query::doubleArray(0).groupByAggregateDense(
            lambda({X}, toInt64((X + 50.0) / 10.0)), E(11), E(0.0),
            lambda({A, X}, A + X)));
    {
      TypeRef AccTy = Type::pairTy(Type::doubleTy(), Type::int64Ty());
      auto Pa = param("pa", AccTy);
      auto Key = param("k", Type::int64Ty());
      add("group_agg_dense_result",
          Query::doubleArray(0).groupByAggregateDense(
              lambda({X}, toInt64((X + 50.0) / 10.0)), E(11),
              pair(E(0.0), E(0)),
              lambda({Pa, X}, pair(Pa.first() + X, Pa.second() + 1)),
              lambda({Key, Pa},
                     cond(Pa.second() > 0, Pa.first(), E(0.0)))));
    }
    add("group_agg_result",
        Query::doubleArray(0).groupByAggregate(
            lambda({X}, toInt64(X / 10.0)), E(0),
            lambda({param("c", Type::int64Ty()), X},
                   param("c", Type::int64Ty()) + 1),
            lambda({param("k", Type::int64Ty()),
                    param("c", Type::int64Ty())},
                   param("k", Type::int64Ty()) * 1000 +
                       param("c", Type::int64Ty()))));

    // GroupBy + per-bag fold (the §4.3 shape; specialized when enabled).
    {
      Query BagSum =
          Query::overVec(G.second())
              .aggregate(E(0.0), lambda({A, V}, A + V),
                         lambda({A}, pair(G.first(), A)));
      add("group_then_fold",
          Query::doubleArray(0)
              .groupBy(lambda({X}, toInt64(X / 10.0)))
              .selectNested(G, BagSum));
    }

    // Nested queries.
    add("cartesian_sum",
        Query::doubleArray(0)
            .take(E(40))
            .selectMany(X, Query::doubleArray(1)
                               .select(lambda({V}, X * V)))
            .sum());
    {
      auto Y = param("y", Type::doubleTy());
      auto Z = param("z", Type::int64Ty());
      Query Level3 =
          Query::range(E(0), E(4)).select(lambda({Z}, Y + toDouble(Z)));
      Query Level2 =
          Query::doubleArray(1).take(E(5)).selectMany(Y, Level3);
      add("triple_nested_sum", Query::doubleArray(0)
                                   .take(E(30))
                                   .selectMany(X, Level2)
                                   .sum());
    }
    add("triangle_range_sum",
        Query::int64Array(2)
            .take(E(40))
            .select(lambda({Xi}, abs(Xi) % 20))
            .selectMany(Xi, Query::range(E(0), Xi)
                                .select(lambda({D}, D * D)))
            .sum());
    add("nested_scalar_select",
        Query::pointArray(3)
            .selectNested(
                P, Query::overVec(P)
                       .select(lambda({V}, V * V))
                       .sum())
            .sum());
    {
      // Nested bool query (an Any-like fold referencing the outer x).
      auto Bp = param("b", Type::boolTy());
      Query AnyGreater = Query::doubleArray(1).aggregate(
          E(false), lambda({Bp, V}, Bp || (V > X)));
      add("where_nested", Query::doubleArray(0)
                              .take(E(60))
                              .whereNested(X, AnyGreater)
                              .count());
    }

    // K-means-style argmin over captured centroid table (BufferSlice).
    {
      auto J = param("j", Type::int64Ty());
      auto Best = param("best",
                        Type::pairTy(Type::doubleTy(), Type::int64Ty()));
      auto Cand = param("cand",
                        Type::pairTy(Type::doubleTy(), Type::int64Ty()));
      E Dim_ = E(Dim);
      Query Dist2 =
          Query::range(E(0), Dim_)
              .select(lambda({D}, (P[D] - slice(4, J * Dim_, Dim_)[D]) *
                                      (P[D] - slice(4, J * Dim_, Dim_)[D])))
              .sum();
      auto DV = param("dv", Type::doubleTy());
      Query PerCentroid =
          Query::range(E(0), E(K))
              .selectNested(J, Dist2)
              // pair up with index via aggregate over (dist, idx):
              .select(lambda({DV}, DV)) // keep as distances
              .min();
      add("kmeans_min_dist",
          Query::pointArray(3).selectNested(P, PerCentroid).sum());
    }
  }
};

} // namespace testutil
} // namespace steno

#endif // STENO_TESTS_QUERYTESTUTIL_H
