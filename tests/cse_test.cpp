//===- tests/cse_test.cpp - Common-subexpression elimination ---*- C++ -*-===//

#include "expr/Analysis.h"
#include "expr/Cse.h"
#include "expr/Dsl.h"
#include "expr/Eval.h"

#include "gtest/gtest.h"

using namespace steno::expr;
using namespace steno::expr::dsl;

namespace {

/// Runs CSE with deterministic names cse0, cse1, ...
CseResult runCse(const E &Handle) {
  unsigned Counter = 0;
  return eliminateCommonSubexprs(Handle.node(), [&Counter] {
    return "cse" + std::to_string(Counter++);
  });
}

/// Evaluates a CSE result (lets then body) with a parameter binding.
Value evalResult(const CseResult &R, const std::string &Name, Value V) {
  Env Environment;
  Environment.bind(Name, std::move(V));
  for (const auto &[LetName, LetExpr] : R.Lets)
    Environment.bind(LetName, evalExpr(*LetExpr, Environment));
  return evalExpr(*R.Rewritten, Environment);
}

} // namespace

TEST(Cse, HoistsRepeatedSubtree) {
  E X = param("x", Type::doubleTy());
  // (x*x + 1) / (x*x + 2): x*x occurs twice.
  CseResult R = runCse((X * X + 1.0) / (X * X + 2.0));
  ASSERT_EQ(R.Lets.size(), 1u);
  EXPECT_EQ(R.Lets[0].first, "cse0");
  EXPECT_EQ(R.Lets[0].second->str(), "(x * x)");
  // The rewritten tree references the let, not the product.
  EXPECT_EQ(freeParams(*R.Rewritten),
            (std::set<std::string>{"cse0"}));
  Value V = evalResult(R, "x", Value(3.0));
  EXPECT_DOUBLE_EQ(V.asDouble(), 10.0 / 11.0);
}

TEST(Cse, NoRepeatsNoChange) {
  E X = param("x", Type::doubleTy());
  E Body = X * 2.0 + 1.0;
  CseResult R = runCse(Body);
  EXPECT_TRUE(R.Lets.empty());
  EXPECT_EQ(R.Rewritten, Body.node()) << "untouched tree is shared";
}

TEST(Cse, LeavesAreNeverHoisted) {
  E X = param("x", Type::doubleTy());
  // x appears four times but is trivial.
  CseResult R = runCse(X + X + X + X);
  EXPECT_TRUE(R.Lets.empty());
}

TEST(Cse, MaximalSubtreeWins) {
  E X = param("x", Type::doubleTy());
  // sqrt(x*x+1) twice: hoist the whole sqrt, not x*x separately.
  CseResult R = runCse(sqrt(X * X + 1.0) * sqrt(X * X + 1.0));
  ASSERT_EQ(R.Lets.size(), 1u);
  EXPECT_EQ(R.Lets[0].second->str(), "std::sqrt(((x * x) + 1))");
  Value V = evalResult(R, "x", Value(2.0));
  EXPECT_DOUBLE_EQ(V.asDouble(), 5.0);
}

TEST(Cse, LazyCondArmsNotCounted) {
  E X = param("x", Type::doubleTy());
  // 10/x appears in both arms of a guarded conditional; hoisting it
  // would divide by zero when x == 0.
  E Guarded = cond(X != 0.0, 10.0 / X, -(10.0 / X));
  CseResult R = runCse(Guarded);
  EXPECT_TRUE(R.Lets.empty())
      << "conditional arms are lazy; nothing may be hoisted";
}

TEST(Cse, LazyAndRhsNotCounted) {
  E X = param("x", Type::int64Ty());
  E Guarded = ((X != 0) && (E(10) / X > 1)) &&
              ((X != 0) && (E(10) / X > 1));
  // The whole rhs conjunct is lazy; only the strict lhs occurrence of
  // each subtree counts once — nothing repeats strictly.
  CseResult R = runCse(Guarded);
  EXPECT_TRUE(R.Lets.empty());
  // Semantics check at the dangerous input.
  Env Environment;
  Environment.bind("x", Value(std::int64_t{0}));
  EXPECT_FALSE(evalExpr(*R.Rewritten, Environment).asBool());
}

TEST(Cse, StrictConditionOfCondCounts) {
  E X = param("x", Type::doubleTy());
  // (x*x > 1) is strict in both conds; x*x repeats strictly.
  E Body = cond(X * X > 1.0, E(1.0), E(2.0)) +
           cond(X * X > 2.0, E(3.0), E(4.0));
  CseResult R = runCse(Body);
  ASSERT_EQ(R.Lets.size(), 1u);
  EXPECT_EQ(R.Lets[0].second->str(), "(x * x)");
}

TEST(Cse, StrictOccurrenceAlsoReplacesLazyOnes) {
  E X = param("x", Type::doubleTy());
  // x*x twice strictly, once lazily: all three reference the let (the
  // value is computed regardless).
  E Body = (X * X) + (X * X) + cond(X > 0.0, X * X, E(0.0));
  CseResult R = runCse(Body);
  ASSERT_EQ(R.Lets.size(), 1u);
  Value V = evalResult(R, "x", Value(2.0));
  EXPECT_DOUBLE_EQ(V.asDouble(), 12.0);
}

TEST(Cse, MultipleIndependentLets) {
  E X = param("x", Type::doubleTy());
  E A = sqrt(X + 1.0);
  E B = sqrt(X + 2.0);
  CseResult R = runCse(A * A + B * B);
  EXPECT_EQ(R.Lets.size(), 2u);
  Value V = evalResult(R, "x", Value(3.0));
  EXPECT_DOUBLE_EQ(V.asDouble(), 9.0);
}

TEST(Cse, VecIndexingHoisted) {
  // The k-means inner-loop shape: (p[d] - c[d]) * (p[d] - c[d]).
  E P = param("p", Type::vecTy());
  E C = param("c", Type::vecTy());
  E D = param("d", Type::int64Ty());
  CseResult R = runCse((P[D] - C[D]) * (P[D] - C[D]));
  ASSERT_GE(R.Lets.size(), 1u);
  EXPECT_EQ(R.Lets[0].second->str(), "(p[d] - c[d])");
  double Pd[] = {1, 5};
  double Cd[] = {0, 2};
  Env Environment;
  Environment.bind("p", Value(VecView{Pd, 2}));
  Environment.bind("c", Value(VecView{Cd, 2}));
  Environment.bind("d", Value(std::int64_t{1}));
  for (const auto &[Name, Let] : R.Lets)
    Environment.bind(Name, evalExpr(*Let, Environment));
  EXPECT_DOUBLE_EQ(evalExpr(*R.Rewritten, Environment).asDouble(), 9.0);
}

TEST(Cse, PairProjectionChainsNotHoistedAlone) {
  // .first of a param is trivial (no computation).
  E P = param("p", Type::pairTy(Type::doubleTy(), Type::doubleTy()));
  CseResult R = runCse(P.first() + P.first());
  EXPECT_TRUE(R.Lets.empty());
}
