//===- tests/rewrite_test.cpp - Certificate-gated plan rewriter -*- C++ -*-===//
///
/// \file
/// Exercises quil::rewriteChain rule by rule (structural assertions on
/// the rewritten chain plus the exact certificate list), the mechanical
/// verifyCertificates check and its tamper detection, and the compile-
/// pipeline integration: CompileOptions::Rewrite, rewriteResult(),
/// provenance via rewrittenFromHash(), ST4xxx diagnostics, and
/// result-identity between rewrite-on and rewrite-off plans.
///
//===----------------------------------------------------------------------===//

#include "analysis/Rewrite.h"
#include "steno/Steno.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <vector>

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;
using quil::Chain;
using quil::PredOp;
using quil::RewriteCertificate;
using quil::RewriteResult;
using quil::RewriteRule;
using quil::Sym;

namespace {

E xi() { return param("xi", Type::int64Ty()); }
std::int64_t i64(long long V) { return static_cast<std::int64_t>(V); }

RewriteResult rewritten(const Query &Q) {
  Chain C = quil::lower(Q);
  EXPECT_FALSE(quil::validate(C).has_value());
  return quil::rewriteChain(C);
}

unsigned countRule(const RewriteResult &R, RewriteRule Rule) {
  unsigned N = 0;
  for (const RewriteCertificate &C : R.Certs)
    N += C.Rule == Rule;
  return N;
}

std::int64_t seedConst(const quil::Op &O) {
  EXPECT_TRUE(O.Seed && O.Seed->kind() == ExprKind::Const);
  return std::get<std::int64_t>(O.Seed->constValue());
}

/// Bindings over a small int64 buffer shared by the run-identity tests.
struct Input {
  std::vector<std::int64_t> Data{4, -9, 12, 0, 7, -1, 3, 30};
  Bindings B;
  Input() {
    B.bindInt64Array(0, Data.data(), static_cast<std::int64_t>(Data.size()));
  }
};

/// Compiles \p Q twice (rewrite on / off, interp backend) and expects
/// row-identical results.
void expectRewriteIdentity(const Query &Q, const char *Name) {
  Input In;
  CompileOptions On;
  On.Exec = Backend::Interp;
  On.Rewrite = true;
  On.Analyze = analysis::Mode::Off;
  On.Name = std::string(Name) + "_on";
  CompileOptions Off = On;
  Off.Rewrite = false;
  Off.Name = std::string(Name) + "_off";
  QueryResult A = compileQuery(Q, On).run(In.B);
  QueryResult B = compileQuery(Q, Off).run(In.B);
  ASSERT_EQ(A.rows().size(), B.rows().size()) << Name;
  for (std::size_t I = 0; I != A.rows().size(); ++I)
    EXPECT_TRUE(A.rows()[I] == B.rows()[I]) << Name << " row " << I;
}

} // namespace

//===--------------------------------------------------------------------===//
// Rule-by-rule structural tests
//===--------------------------------------------------------------------===//

TEST(RewriteRules, DropTruePredRemovesConstantTrueWhere) {
  RewriteResult R =
      rewritten(Query::int64Array(0).where(lambda({xi()}, E(true))).sum());
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(countRule(R, RewriteRule::DropTruePred), 1u);
  for (const quil::Op &O : R.Rewritten.Ops)
    EXPECT_NE(O.S, Sym::Pred); // the only Pred was dropped
  EXPECT_NE(R.OriginalHash, R.RewrittenHash);
}

TEST(RewriteRules, CollapseFalsePredBecomesTakeZero) {
  RewriteResult R =
      rewritten(Query::int64Array(0).where(lambda({xi()}, E(false))).sum());
  EXPECT_GE(countRule(R, RewriteRule::CollapseFalsePred), 1u);
  bool SawTakeZero = false;
  for (const quil::Op &O : R.Rewritten.Ops)
    if (O.S == Sym::Pred && O.P == PredOp::Take)
      SawTakeZero = seedConst(O) == 0;
  EXPECT_TRUE(SawTakeZero);
}

TEST(RewriteRules, ContradictoryPredPairCollapses) {
  // Assuming xi > 10 refines the element to [11, +inf), making xi < 10
  // provably false downstream.
  RewriteResult R = rewritten(Query::int64Array(0)
                                  .where(lambda({xi()}, xi() > E(i64(10))))
                                  .where(lambda({xi()}, xi() < E(i64(10))))
                                  .count());
  EXPECT_GE(countRule(R, RewriteRule::CollapseFalsePred), 1u);
}

TEST(RewriteRules, FoldConstCountFoldsComputedTakeCount) {
  RewriteResult R = rewritten(
      Query::int64Array(0).take(E(i64(2)) + E(i64(3))).toArray());
  EXPECT_EQ(countRule(R, RewriteRule::FoldConstCount), 1u);
  bool SawTakeFive = false;
  for (const quil::Op &O : R.Rewritten.Ops)
    if (O.S == Sym::Pred && O.P == PredOp::Take)
      SawTakeFive = seedConst(O) == 5;
  EXPECT_TRUE(SawTakeFive);
}

TEST(RewriteRules, NegativeTakeFoldsToZero) {
  RewriteResult R =
      rewritten(Query::int64Array(0).take(E(i64(-2))).toArray());
  EXPECT_GE(countRule(R, RewriteRule::FoldConstCount), 1u);
  bool SawTakeZero = false;
  for (const quil::Op &O : R.Rewritten.Ops)
    if (O.S == Sym::Pred && O.P == PredOp::Take)
      SawTakeZero = seedConst(O) == 0;
  EXPECT_TRUE(SawTakeZero);
}

TEST(RewriteRules, AdjacentTakesMergeToMin) {
  RewriteResult R = rewritten(
      Query::int64Array(0).take(E(i64(5))).take(E(i64(3))).toArray());
  EXPECT_EQ(countRule(R, RewriteRule::MergeTakeTake), 1u);
  unsigned Takes = 0;
  for (const quil::Op &O : R.Rewritten.Ops)
    if (O.S == Sym::Pred && O.P == PredOp::Take) {
      ++Takes;
      EXPECT_EQ(seedConst(O), 3);
    }
  EXPECT_EQ(Takes, 1u);
}

TEST(RewriteRules, AdjacentSkipsMergeToSum) {
  RewriteResult R = rewritten(
      Query::int64Array(0).skip(E(i64(2))).skip(E(i64(3))).toArray());
  EXPECT_EQ(countRule(R, RewriteRule::MergeSkipSkip), 1u);
  unsigned Skips = 0;
  for (const quil::Op &O : R.Rewritten.Ops)
    if (O.S == Sym::Pred && O.P == PredOp::Skip) {
      ++Skips;
      EXPECT_EQ(seedConst(O), 5);
    }
  EXPECT_EQ(Skips, 1u);
}

TEST(RewriteRules, SkipZeroIsDropped) {
  RewriteResult R =
      rewritten(Query::int64Array(0).skip(E(i64(0))).toArray());
  EXPECT_EQ(countRule(R, RewriteRule::DropSkipZero), 1u);
  for (const quil::Op &O : R.Rewritten.Ops)
    EXPECT_NE(O.S, Sym::Pred);
}

TEST(RewriteRules, TakeAboveCardinalityBoundIsDropped) {
  // take(3) bounds the stream at 3 elements; the later take(5) can never
  // bite (a Select sits between them so the merge rule does not apply).
  RewriteResult R = rewritten(Query::int64Array(0)
                                  .take(E(i64(3)))
                                  .select(lambda({xi()}, xi() + E(i64(1))))
                                  .take(E(i64(5)))
                                  .toArray());
  EXPECT_EQ(countRule(R, RewriteRule::DropRedundantTake), 1u);
  unsigned Takes = 0;
  for (const quil::Op &O : R.Rewritten.Ops)
    if (O.S == Sym::Pred && O.P == PredOp::Take) {
      ++Takes;
      EXPECT_EQ(seedConst(O), 3);
    }
  EXPECT_EQ(Takes, 1u);
}

TEST(RewriteRules, OperatorsBehindTakeZeroAreDead) {
  RewriteResult R = rewritten(Query::int64Array(0)
                                  .take(E(i64(0)))
                                  .select(lambda({xi()}, xi() * xi()))
                                  .where(lambda({xi()}, xi() > E(i64(0))))
                                  .sum());
  EXPECT_GE(countRule(R, RewriteRule::RemoveDeadOp), 2u);
  for (const quil::Op &O : R.Rewritten.Ops) {
    EXPECT_NE(O.S, Sym::Trans);
    if (O.S == Sym::Pred)
      EXPECT_EQ(O.P, PredOp::Take); // only the Take 0 marker survives
  }
}

TEST(RewriteRules, AdjacentPredsReorderByCostAndSelectivity) {
  // evenint (has a Mod: expensive, est. selectivity .25) before gtc
  // (cheap, est. .5): rank = (sel - 1) / cost sorts the cheap filter
  // first.
  RewriteResult R = rewritten(
      Query::int64Array(0)
          .where(lambda({xi()}, (xi() % E(i64(2))) == E(i64(0))))
          .where(lambda({xi()}, xi() > E(i64(0))))
          .sum());
  EXPECT_EQ(countRule(R, RewriteRule::ReorderPreds), 1u);
  std::vector<BinaryOp> PredOps;
  for (const quil::Op &O : R.Rewritten.Ops)
    if (O.S == Sym::Pred && O.P == PredOp::Where)
      PredOps.push_back(O.Fn.body()->binaryOp());
  ASSERT_EQ(PredOps.size(), 2u);
  EXPECT_EQ(PredOps[0], BinaryOp::Gt); // moved up
  EXPECT_EQ(PredOps[1], BinaryOp::Eq);
}

TEST(RewriteRules, AlreadyOptimalOrderIsUntouched) {
  RewriteResult R = rewritten(
      Query::int64Array(0)
          .where(lambda({xi()}, xi() > E(i64(0))))
          .where(lambda({xi()}, (xi() % E(i64(2))) == E(i64(0))))
          .sum());
  EXPECT_EQ(countRule(R, RewriteRule::ReorderPreds), 0u);
}

TEST(RewriteRules, ElideDivTrapMarksProvenSites) {
  RewriteResult R = rewritten(
      Query::int64Array(0)
          .select(lambda({xi()}, xi() / (E(i64(1)) +
                                         abs(xi() % E(i64(4))))))
          .sum());
  // Two sites prove safe: the outer `/` (divisor in [1, 4]) and the
  // inner `%` (constant divisor 4).
  EXPECT_EQ(countRule(R, RewriteRule::ElideDivTrap), 2u);
}

TEST(RewriteRules, NoOpChainIsUnchanged) {
  RewriteResult R = rewritten(
      Query::int64Array(0)
          .select(lambda({xi()}, xi() + E(i64(1))))
          .sum());
  EXPECT_FALSE(R.Changed);
  EXPECT_TRUE(R.Certs.empty());
  EXPECT_EQ(R.OriginalHash, R.RewrittenHash);
}

//===--------------------------------------------------------------------===//
// Certificates: mechanical verification and tamper detection
//===--------------------------------------------------------------------===//

TEST(RewriteCerts, VerifyAcceptsGenuineResult) {
  Chain C = quil::lower(Query::int64Array(0)
                            .where(lambda({xi()}, E(true)))
                            .skip(E(i64(0)))
                            .sum());
  RewriteResult R = quil::rewriteChain(C);
  ASSERT_TRUE(R.Changed);
  std::string Err;
  EXPECT_TRUE(quil::verifyCertificates(C, R, quil::RewriteOptions(), &Err))
      << Err;
}

TEST(RewriteCerts, VerifyRejectsTamperedCertListAndHash) {
  Chain C = quil::lower(Query::int64Array(0)
                            .where(lambda({xi()}, E(true)))
                            .skip(E(i64(0)))
                            .sum());
  RewriteResult R = quil::rewriteChain(C);
  ASSERT_GE(R.Certs.size(), 2u);

  RewriteResult Dropped = R;
  Dropped.Certs.pop_back();
  std::string Err;
  EXPECT_FALSE(
      quil::verifyCertificates(C, Dropped, quil::RewriteOptions(), &Err));
  EXPECT_FALSE(Err.empty());

  RewriteResult BadHash = R;
  BadHash.RewrittenHash ^= 1;
  EXPECT_FALSE(
      quil::verifyCertificates(C, BadHash, quil::RewriteOptions(), &Err));

  // Wrong original chain: the replay starts from different facts.
  Chain Other = quil::lower(Query::int64Array(0).sum());
  EXPECT_FALSE(
      quil::verifyCertificates(Other, R, quil::RewriteOptions(), &Err));
}

TEST(RewriteCerts, CertificateStringsNameRuleLocationAndFact) {
  RewriteResult R =
      rewritten(Query::int64Array(0).where(lambda({xi()}, E(true))).sum());
  ASSERT_EQ(R.Certs.size(), 1u);
  std::string S = R.Certs[0].str();
  EXPECT_NE(S.find("drop-true-pred"), std::string::npos) << S;
  EXPECT_NE(S.find("op #1"), std::string::npos) << S;
}

//===--------------------------------------------------------------------===//
// Pipeline integration: CompileOptions::Rewrite, provenance, diagnostics
//===--------------------------------------------------------------------===//

TEST(RewritePipeline, RewriteResultAndProvenanceExposedWhenChanged) {
  Query Q = Query::int64Array(0).where(lambda({xi()}, E(true))).sum();
  CompileOptions On;
  On.Exec = Backend::Interp;
  On.Rewrite = true;
  On.Analyze = analysis::Mode::Warn;
  On.Name = "rw_pipeline_on";
  CompiledQuery CQ = compileQuery(Q, On);
  const RewriteResult *R = CQ.rewriteResult();
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(R->Changed);
  // Provenance: the rewritten plan records the pre-rewrite plan hash.
  EXPECT_NE(CQ.rewrittenFromHash(), 0u);
  EXPECT_NE(CQ.rewrittenFromHash(), CQ.planHash());
  // The applied rewrite surfaces as an ST4001 note.
  EXPECT_TRUE(
      CQ.analysisResult().Diags.has(analysis::DiagCode::RewritePredDropped));
}

TEST(RewritePipeline, RewriteOffLeavesPlanAlone) {
  Query Q = Query::int64Array(0).where(lambda({xi()}, E(true))).sum();
  CompileOptions Off;
  Off.Exec = Backend::Interp;
  Off.Rewrite = false;
  Off.Analyze = analysis::Mode::Off;
  Off.Name = "rw_pipeline_off";
  CompiledQuery CQ = compileQuery(Q, Off);
  EXPECT_EQ(CQ.rewriteResult(), nullptr);
  EXPECT_EQ(CQ.rewrittenFromHash(), 0u);
}

//===--------------------------------------------------------------------===//
// Result identity: rewrite on == rewrite off, interp backend
//===--------------------------------------------------------------------===//

TEST(RewriteIdentity, RewriteHeavyPipelinesMatchUnrewrittenPlans) {
  expectRewriteIdentity(Query::int64Array(0)
                            .where(lambda({xi()}, E(true)))
                            .skip(E(i64(0)))
                            .select(lambda({xi()}, xi() * E(i64(2))))
                            .take(E(i64(100)))
                            .toArray(),
                        "rw_ident_droppable");
  expectRewriteIdentity(Query::int64Array(0)
                            .take(E(i64(0)))
                            .select(lambda({xi()}, xi() * xi()))
                            .sum(),
                        "rw_ident_dead");
  expectRewriteIdentity(
      Query::int64Array(0)
          .where(lambda({xi()}, (xi() % E(i64(2))) == E(i64(0))))
          .where(lambda({xi()}, xi() > E(i64(0))))
          .sum(),
      "rw_ident_reorder");
  expectRewriteIdentity(
      Query::int64Array(0)
          .select(lambda({xi()}, xi() / (E(i64(1)) +
                                         abs(xi() % E(i64(4))))))
          .sum(),
      "rw_ident_elide");
  expectRewriteIdentity(Query::int64Array(0)
                            .where(lambda({xi()}, xi() > E(i64(10))))
                            .where(lambda({xi()}, xi() < E(i64(10))))
                            .count(),
                        "rw_ident_contra");
}
