//===- tests/vec_test.cpp - Vectorized batch execution (§5i) ---*- C++ -*-===//
//
// Differential suite for the columnar batch path: every vectorizable
// chain must produce exactly the rows the scalar path produces — same
// values, same order, same traps, same profile counts — at every batch
// size and at every awkward source length (empty, one element, one less
// / one more than a batch, boundaries that land mid-batch). The scalar
// interpreter (CompileOptions::Vectorize = false) is the oracle; the
// reference executor double-checks both.
//
// Trap fidelity gets its own section: the ST2001 division trap must
// fire from inside a batch exactly when the scalar loop would have
// fired it, and must NOT fire for lanes the scalar loop never
// evaluates (behind a Where, a short-circuit &&, an unchosen Cond
// branch, or past a Take/TakeWhile boundary).
//
//===----------------------------------------------------------------------===//

#include "QueryTestUtil.h"
#include "obs/Profile.h"
#include "vec/Batch.h"

#include "gtest/gtest.h"

#include <cmath>
#include <cstdlib>
#include <numeric>

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using namespace steno::testutil;
using query::Query;

namespace {

E xd() { return param("x", Type::doubleTy()); }
E xi() { return param("xi", Type::int64Ty()); }

/// Scoped STENO_BATCH_SIZE override. The knob is read at plan time
/// (vec::batchSizeFromEnv), so setting it between compileQuery calls
/// changes the captured batch size of subsequent plans only.
struct BatchSizeGuard {
  explicit BatchSizeGuard(const char *V) {
    ::setenv("STENO_BATCH_SIZE", V, 1);
  }
  ~BatchSizeGuard() { ::unsetenv("STENO_BATCH_SIZE"); }
};

CompileOptions vecOpts(bool Vectorize, const std::string &Name,
                       Backend Exec = Backend::Interp) {
  CompileOptions O;
  O.Exec = Exec;
  O.Vectorize = Vectorize;
  O.Name = Name;
  return O;
}

/// Compiles \p Q twice — scalar and batched — runs both, and EXPECTs
/// row-for-row agreement (plus agreement with the reference executor).
void expectBatchedMatchesScalar(const Query &Q, const Bindings &B,
                                const std::string &Name) {
  QueryResult Scalar =
      compileQuery(Q, vecOpts(false, Name + "_scalar")).run(B);
  QueryResult Batched =
      compileQuery(Q, vecOpts(true, Name + "_vec")).run(B);
  ASSERT_EQ(Scalar.isScalar(), Batched.isScalar()) << Name;
  ASSERT_EQ(Scalar.rows().size(), Batched.rows().size()) << Name;
  for (size_t I = 0; I != Scalar.rows().size(); ++I)
    EXPECT_TRUE(valueNear(Scalar.rows()[I], Batched.rows()[I]))
        << Name << " row " << I
        << ": scalar=" << valueStr(Scalar.rows()[I])
        << " batched=" << valueStr(Batched.rows()[I]);
  QueryResult Ref = runReference(Q, B);
  ASSERT_EQ(Ref.rows().size(), Batched.rows().size()) << Name << " (ref)";
  for (size_t I = 0; I != Ref.rows().size(); ++I)
    EXPECT_TRUE(valueNear(Ref.rows()[I], Batched.rows()[I]))
        << Name << " row " << I << " vs reference";
}

} // namespace

//===--------------------------------------------------------------------===//
// Catalog differential: every shape, batched vs scalar
//===--------------------------------------------------------------------===//

// The shared query catalog (every operator and nesting pattern) through
// both interpreter paths. Non-vectorizable shapes silently take the
// scalar path — still a valid comparison, and it proves the fallback
// never corrupts results.
TEST(VecDifferential, CatalogBatchedMatchesScalar) {
  Catalog C(/*Seed=*/11, /*N=*/500);
  for (const auto &[Name, Q] : C.Queries)
    expectBatchedMatchesScalar(Q, C.B, std::string("vec_cat_") + Name);
}

// Same catalog with a tiny batch size, so a 500-element source spans
// ~32 batches and every stateful predicate crosses batch boundaries.
TEST(VecDifferential, CatalogBatchedMatchesScalarSmallBatches) {
  BatchSizeGuard G("16");
  Catalog C(/*Seed=*/12, /*N=*/500);
  for (const auto &[Name, Q] : C.Queries)
    expectBatchedMatchesScalar(Q, C.B, std::string("vec_cat16_") + Name);
}

//===--------------------------------------------------------------------===//
// Batch-edge boundaries: lengths and counters around the batch size
//===--------------------------------------------------------------------===//

// Source lengths straddling batch multiples (empty, one, 16±1, 32±1)
// crossed with Take/Skip counts that land mid-batch, exactly on an
// edge, past the end, and negative. Batch size pinned to 16.
TEST(VecBoundary, TakeSkipCountersAcrossBatchEdges) {
  BatchSizeGuard G("16");
  for (size_t N : {size_t{0}, size_t{1}, size_t{15}, size_t{16},
                   size_t{17}, size_t{31}, size_t{32}, size_t{33},
                   size_t{100}}) {
    std::vector<double> Xs(N);
    std::iota(Xs.begin(), Xs.end(), 1.0);
    Bindings B;
    B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(N));
    std::string Tag = "n" + std::to_string(N);
    for (std::int64_t K : {std::int64_t{0}, std::int64_t{5},
                           std::int64_t{15},
                           std::int64_t{16}, std::int64_t{17},
                           static_cast<std::int64_t>(N),
                           static_cast<std::int64_t>(N) + 9}) {
      std::string KTag = Tag + "_k" + std::to_string(K);
      expectBatchedMatchesScalar(
          Query::doubleArray(0).take(E(K)).sum(), B, "take_" + KTag);
      expectBatchedMatchesScalar(
          Query::doubleArray(0).skip(E(K)).sum(), B, "skip_" + KTag);
      expectBatchedMatchesScalar(Query::doubleArray(0)
                                     .skip(E(std::int64_t{3}))
                                     .take(E(K))
                                     .select(lambda({xd()}, xd() * xd()))
                                     .sum(),
                                 B, "skiptake_" + KTag);
    }
  }
}

// Negative Take/Skip counts clamp to zero at run time. A negative
// CONSTANT is rejected by static analysis before either path runs, so
// the count arrives through a capture the analyzer cannot evaluate.
TEST(VecBoundary, NegativeCountersClampLikeScalar) {
  BatchSizeGuard G("16");
  std::vector<double> Xs(40);
  std::iota(Xs.begin(), Xs.end(), 1.0);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  B.setValue(0, Value(std::int64_t{-3}));
  E K = capture(0, Type::int64Ty());
  expectBatchedMatchesScalar(Query::doubleArray(0).take(K).count(), B,
                             "neg_take");
  expectBatchedMatchesScalar(Query::doubleArray(0).skip(K).sum(), B,
                             "neg_skip");
}

// TakeWhile/SkipWhile flips that land mid-batch, at a batch edge,
// never, and immediately. The flag must persist across batches.
TEST(VecBoundary, WhilePredicatesFlipMidBatch) {
  BatchSizeGuard G("16");
  std::vector<double> Xs(64);
  std::iota(Xs.begin(), Xs.end(), 0.0); // 0, 1, ..., 63
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  for (double Cut : {-1.0, 0.5, 15.5, 16.5, 20.5, 31.5, 63.5, 99.0}) {
    std::string Tag = std::to_string(static_cast<int>(Cut * 2));
    expectBatchedMatchesScalar(
        Query::doubleArray(0).takeWhile(lambda({xd()}, xd() < E(Cut))).sum(),
        B, "takewhile_" + Tag);
    expectBatchedMatchesScalar(
        Query::doubleArray(0).skipWhile(lambda({xd()}, xd() < E(Cut))).sum(),
        B, "skipwhile_" + Tag);
    expectBatchedMatchesScalar(Query::doubleArray(0)
                                   .skipWhile(lambda({xd()}, xd() < E(Cut)))
                                   .takeWhile(lambda({xd()}, xd() < E(Cut) +
                                                                 E(10.0)))
                                   .where(lambda({xd()},
                                                 toInt64(xd()) % 2 == 0))
                                   .count(),
                               B, "whilemix_" + Tag);
  }
}

// A Where that leaves a sparse selection, then stateful predicates over
// the survivors: selection-vector trimming must agree with the scalar
// element order at every batch size.
TEST(VecBoundary, SparseSelectionThenCounters) {
  for (const char *BS : {"16", "64", "1024"}) {
    BatchSizeGuard G(BS);
    std::vector<double> Xs(200);
    std::iota(Xs.begin(), Xs.end(), 0.0);
    Bindings B;
    B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
    Query Q = Query::doubleArray(0)
                  .where(lambda({xd()}, toInt64(xd()) % 3 == 0))
                  .skip(E(std::int64_t{4}))
                  .take(E(std::int64_t{21}))
                  .select(lambda({xd()}, xd() + 0.5));
    expectBatchedMatchesScalar(Q, B, std::string("sparse_bs") + BS);
  }
}

//===--------------------------------------------------------------------===//
// Sources: Range, Int64Array, VecExpr
//===--------------------------------------------------------------------===//

TEST(VecSources, RangeInt64AndVecExpr) {
  BatchSizeGuard G("16");
  std::vector<double> Xs(100);
  std::iota(Xs.begin(), Xs.end(), 0.25);
  std::vector<std::int64_t> Is{7, -3, 0, 41, 8, 8, -20, 5};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  B.bindInt64Array(1, Is.data(), static_cast<std::int64_t>(Is.size()));

  expectBatchedMatchesScalar(
      Query::range(E(std::int64_t{5}), E(std::int64_t{77}))
          .select(lambda({xi()}, xi() * xi()))
          .sum(),
      B, "range_sumsq");
  // Negative count clamps to an empty range.
  expectBatchedMatchesScalar(
      Query::range(E(std::int64_t{0}), E(std::int64_t{-5})).count(), B,
      "range_negative");
  expectBatchedMatchesScalar(
      Query::int64Array(1).where(lambda({xi()}, xi() > 0)).min(), B,
      "int64_min");
  expectBatchedMatchesScalar(Query::int64Array(1).max(), B, "int64_max");
  // Vec-expression source: a view sliced out of slot 0.
  expectBatchedMatchesScalar(
      Query::overVec(slice(0, E(std::int64_t{3}), E(std::int64_t{50})))
          .select(lambda({xd()}, xd() * 2.0))
          .sum(),
      B, "vecexpr_slice");
}

//===--------------------------------------------------------------------===//
// Plan gating: which shapes vectorize, which fall back
//===--------------------------------------------------------------------===//

TEST(VecPlanGate, VectorizableShapesCarryAPlan) {
  Query Fig01 =
      Query::doubleArray(0).select(lambda({xd()}, xd() * xd())).sum();
  EXPECT_TRUE(compileQuery(Fig01, vecOpts(true, "gate_on")).vectorized());
  // The same chain with vectorization off: no plan.
  EXPECT_FALSE(compileQuery(Fig01, vecOpts(false, "gate_off")).vectorized());
  // Row-emitting chains (no aggregate) vectorize too.
  EXPECT_TRUE(compileQuery(Query::doubleArray(0)
                               .where(lambda({xd()}, xd() > 0.0))
                               .select(lambda({xd()}, xd() + 1.0)),
                           vecOpts(true, "gate_rows"))
                  .vectorized());
}

TEST(VecPlanGate, FallbackShapesStayScalarAndCorrect) {
  Catalog C(/*Seed=*/13, /*N=*/64);
  auto P = param("p", Type::vecTy());
  struct Case {
    const char *Name;
    Query Q;
  } Cases[] = {
      // Sink operator.
      {"toarray", Query::doubleArray(0).take(E(std::int64_t{8})).toArray()},
      // Early-exit aggregate.
      {"any", Query::doubleArray(0).where(lambda({xd()}, xd() > 0.0)).any()},
      // Vec-element (point) source.
      {"points", Query::pointArray(3).select(lambda({P}, len(P))).sum()},
      // Nested query.
      {"nested", Query::doubleArray(1)
                     .selectMany(xd(), Query::doubleArray(1).select(lambda(
                                           {param("v", Type::doubleTy())},
                                           param("v", Type::doubleTy()))))
                     .count()},
  };
  for (const Case &TC : Cases) {
    CompiledQuery CQ =
        compileQuery(TC.Q, vecOpts(true, std::string("gate_") + TC.Name));
    EXPECT_FALSE(CQ.vectorized()) << TC.Name;
    // The fallback still runs and still matches the scalar oracle.
    expectBatchedMatchesScalar(TC.Q, C.B,
                               std::string("gate_run_") + TC.Name);
  }
}

//===--------------------------------------------------------------------===//
// Trap fidelity: ST2001 fires from inside a batch, and ONLY when the
// scalar loop would have fired it
//===--------------------------------------------------------------------===//

namespace {

/// xi / (xi % 3) over {9, 7, 5}: 9 % 3 == 0, so lane 0 of the first
/// batch must trap. The chain is vectorizable, so the trap fires from
/// the batch kernel, not the scalar fallback.
struct VecTrapFixture {
  std::vector<std::int64_t> Data{9, 7, 5};
  Bindings B;
  Query Q = Query::int64Array(0)
                .select(lambda({xi()}, xi() / (xi() % E(std::int64_t{3}))))
                .sum();
  VecTrapFixture() {
    B.bindInt64Array(0, Data.data(), static_cast<std::int64_t>(Data.size()));
  }
};

} // namespace

TEST(VecTrapDeath, InterpBatchedDivByZeroTrapsWithST2001) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  VecTrapFixture F;
  CompiledQuery CQ = compileQuery(F.Q, vecOpts(true, "vec_trap_interp"));
  ASSERT_TRUE(CQ.vectorized());
  EXPECT_DEATH(CQ.run(F.B), "ST2001.*integer division by zero");
}

TEST(VecTrapDeath, NativeBatchedDivByZeroTrapsWithST2001) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  VecTrapFixture F;
  CompiledQuery CQ = compileQuery(
      F.Q, vecOpts(true, "vec_trap_native", Backend::Native));
  ASSERT_TRUE(CQ.vectorized());
  EXPECT_DEATH(CQ.run(F.B), "ST2001.*integer division by zero");
}

// Lanes the scalar loop never evaluates must not trap in the batch
// path either — the batch kernels may not eagerly evaluate a division
// the element-at-a-time semantics would have skipped.
TEST(VecTrapFidelity, GuardedLanesDoNotTrap) {
  BatchSizeGuard G("16");
  std::vector<std::int64_t> Is{4, 0, 6, 0, 12};
  Bindings B;
  B.bindInt64Array(0, Is.data(), static_cast<std::int64_t>(Is.size()));
  const E Hundred = E(std::int64_t{100});
  const E Zero = E(std::int64_t{0});

  // Where guard: zero lanes are filtered before the division runs.
  expectBatchedMatchesScalar(Query::int64Array(0)
                                 .where(lambda({xi()}, xi() != Zero))
                                 .select(lambda({xi()}, Hundred / xi()))
                                 .sum(),
                             B, "guard_where");
  // && short-circuit: the right operand is not evaluated on zero lanes.
  expectBatchedMatchesScalar(
      Query::int64Array(0)
          .where(lambda({xi()}, xi() != Zero && Hundred / xi() > Zero))
          .count(),
      B, "guard_and");
  // Cond: the division branch is not taken on zero lanes.
  expectBatchedMatchesScalar(
      Query::int64Array(0)
          .select(lambda({xi()}, cond(xi() != Zero, Hundred / xi(), Zero)))
          .sum(),
      B, "guard_cond");
}

TEST(VecTrapFidelity, LanesPastTakeBoundaryDoNotTrap) {
  BatchSizeGuard G("16");
  // The trapping element sits INSIDE the first batch but past the Take
  // window / TakeWhile flip, so the scalar loop never divides by it.
  std::vector<std::int64_t> Is{1, 2, 0, 0};
  Bindings B;
  B.bindInt64Array(0, Is.data(), static_cast<std::int64_t>(Is.size()));
  const E Hundred = E(std::int64_t{100});
  expectBatchedMatchesScalar(Query::int64Array(0)
                                 .take(E(std::int64_t{2}))
                                 .select(lambda({xi()}, Hundred / xi()))
                                 .sum(),
                             B, "boundary_take");
  expectBatchedMatchesScalar(
      Query::int64Array(0)
          .takeWhile(lambda({xi()}, xi() < E(std::int64_t{10}) &&
                                        xi() > E(std::int64_t{0})))
          .select(lambda({xi()}, Hundred / xi()))
          .sum(),
      B, "boundary_takewhile");
}

//===--------------------------------------------------------------------===//
// Profile parity: per-operator counts identical to the scalar path
//===--------------------------------------------------------------------===//

TEST(VecProfile, BatchedCountsMatchScalar) {
  Query Q = Query::doubleArray(0)
                .where(lambda({xd()}, xd() > 0.0))
                .select(lambda({xd()}, xd() * xd()))
                .sum();
  std::vector<double> Xs = randomDoubles(333, 21, -50, 50);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));

  auto profiledRun = [&](bool Vectorize) {
    obs::ProfileStore::global().clear();
    CompileOptions O = vecOpts(Vectorize, Vectorize ? "prof_vec"
                                                    : "prof_scalar");
    O.Profile = true;
    CompiledQuery CQ = compileQuery(Q, O);
    EXPECT_EQ(CQ.vectorized(), Vectorize);
    CQ.run(B);
    auto Snap = obs::ProfileStore::global().snapshot(CQ.planHash());
    EXPECT_TRUE(Snap.has_value());
    return *Snap;
  };

  obs::ProfileSnapshot Scalar = profiledRun(false);
  obs::ProfileSnapshot Batched = profiledRun(true);
  ASSERT_EQ(Scalar.Ops.size(), Batched.Ops.size());
  for (size_t I = 0; I != Scalar.Ops.size(); ++I) {
    EXPECT_EQ(Scalar.Ops[I].Label, Batched.Ops[I].Label) << "op " << I;
    EXPECT_EQ(Scalar.Ops[I].RowsIn, Batched.Ops[I].RowsIn)
        << Scalar.Ops[I].Label;
    EXPECT_EQ(Scalar.Ops[I].RowsOut, Batched.Ops[I].RowsOut)
        << Scalar.Ops[I].Label;
  }
}

//===--------------------------------------------------------------------===//
// Native backend: the generated TU really is the batch-loop program
//===--------------------------------------------------------------------===//

TEST(VecNative, BatchedNativeMatchesScalarInterp) {
  std::vector<double> Xs = randomDoubles(512, 31, -10, 10);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  Query Q = Query::doubleArray(0)
                .where(lambda({xd()}, xd() > -5.0))
                .select(lambda({xd()}, xd() * xd() + 1.0))
                .skip(E(std::int64_t{7}))
                .take(E(std::int64_t{400}))
                .sum();
  CompiledQuery Native =
      compileQuery(Q, vecOpts(true, "vec_native", Backend::Native));
  ASSERT_TRUE(Native.vectorized());
  // The printed TU is the batch program (vbase_ is its loop cursor).
  EXPECT_NE(Native.generatedSource().find("vbase_"), std::string::npos);
  double Scalar = compileQuery(Q, vecOpts(false, "vec_native_oracle"))
                      .run(B)
                      .scalarValue()
                      .asDouble();
  EXPECT_NEAR(Native.run(B).scalarValue().asDouble(), Scalar,
              1e-9 * std::max(1.0, std::abs(Scalar)));
}

//===--------------------------------------------------------------------===//
// Aggregate shapes
//===--------------------------------------------------------------------===//

TEST(VecAggregates, AllFoldShapesMatchScalar) {
  BatchSizeGuard G("16");
  std::vector<double> Xs = randomDoubles(100, 41, -100, 100);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));

  expectBatchedMatchesScalar(Query::doubleArray(0).sum(), B, "agg_sum");
  expectBatchedMatchesScalar(Query::doubleArray(0).min(), B, "agg_min");
  expectBatchedMatchesScalar(Query::doubleArray(0).max(), B, "agg_max");
  expectBatchedMatchesScalar(Query::doubleArray(0).count(), B, "agg_count");
  expectBatchedMatchesScalar(Query::doubleArray(0).average(), B, "agg_avg");
  auto A = param("a", Type::doubleTy());
  expectBatchedMatchesScalar(
      Query::doubleArray(0).aggregate(
          E(1.0), lambda({A, xd()}, A + abs(xd()) / 100.0),
          lambda({A}, A * 2.0)),
      B, "agg_fold");
  // Empty source: zero batches run, only the prologue and epilogue.
  Bindings Empty;
  Empty.bindDoubleArray(0, Xs.data(), 0);
  expectBatchedMatchesScalar(Query::doubleArray(0).sum(), Empty,
                             "agg_sum_empty");
  expectBatchedMatchesScalar(Query::doubleArray(0).count(), Empty,
                             "agg_count_empty");
}
