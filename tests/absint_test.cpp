//===- tests/absint_test.cpp - Abstract-interpretation domains -*- C++ -*-===//
///
/// \file
/// Pins the interval domain's transfer functions at the int64 boundaries
/// (hand-computed joins/meets/widenings, INT64_MIN negation, overflow
/// saturation), the AbsVal lattice, expression evaluation and refinement,
/// the division-safety predicate, and — as a death test — that the
/// rewriter does NOT elide the ST2001 division trap when the divisor's
/// interval includes zero.
///
//===----------------------------------------------------------------------===//

#include "analysis/AbsInt.h"
#include "steno/Steno.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <vector>

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using namespace steno::analysis::absint;
using query::Query;

namespace {

E xi() { return param("xi", Type::int64Ty()); }

Interval iv(std::int64_t Lo, std::int64_t Hi) { return Interval::of(Lo, Hi); }

} // namespace

//===--------------------------------------------------------------------===//
// Interval lattice: join / meet / widen, hand-computed at the boundaries
//===--------------------------------------------------------------------===//

TEST(AbsIntInterval, JoinIsConvexHull) {
  EXPECT_EQ(Interval::join(iv(1, 3), iv(5, 9)), iv(1, 9));
  EXPECT_EQ(Interval::join(iv(-4, 2), iv(-1, 1)), iv(-4, 2));
  EXPECT_EQ(Interval::join(Interval::constant(7), Interval::constant(7)),
            Interval::constant(7));
  // Joining with either extreme absorbs it.
  EXPECT_EQ(Interval::join(iv(INT64_MIN, 0), iv(0, INT64_MAX)),
            Interval::full());
}

TEST(AbsIntInterval, MeetIsIntersectionOrInfeasible) {
  ASSERT_TRUE(Interval::meet(iv(1, 10), iv(5, 20)).has_value());
  EXPECT_EQ(*Interval::meet(iv(1, 10), iv(5, 20)), iv(5, 10));
  EXPECT_EQ(*Interval::meet(Interval::full(), iv(-3, 3)), iv(-3, 3));
  // Disjoint: the empty interval is unrepresentable, meet says so.
  EXPECT_FALSE(Interval::meet(iv(1, 2), iv(3, 4)).has_value());
  // Touching endpoints intersect in one point.
  EXPECT_EQ(*Interval::meet(iv(1, 3), iv(3, 9)), Interval::constant(3));
}

TEST(AbsIntInterval, WidenDropsMovedBoundsToInt64Extremes) {
  // Stable bounds survive; a grown bound is widened to the extreme.
  EXPECT_EQ(Interval::widen(iv(0, 10), iv(0, 11)), iv(0, INT64_MAX));
  EXPECT_EQ(Interval::widen(iv(0, 10), iv(-1, 10)), iv(INT64_MIN, 10));
  EXPECT_EQ(Interval::widen(iv(0, 10), iv(-5, 99)), Interval::full());
  EXPECT_EQ(Interval::widen(iv(0, 10), iv(3, 7)), iv(0, 10));
  // Widening is idempotent at the extremes.
  EXPECT_EQ(Interval::widen(Interval::full(), Interval::full()),
            Interval::full());
}

//===--------------------------------------------------------------------===//
// Transfer functions: saturation at the int64 boundaries
//===--------------------------------------------------------------------===//

TEST(AbsIntInterval, NegationOfInt64MinSaturates) {
  // -INT64_MIN does not exist in int64: any interval containing it
  // saturates instead of wrapping.
  EXPECT_EQ(Interval::neg(Interval::constant(INT64_MIN)), Interval::full());
  EXPECT_EQ(Interval::neg(iv(INT64_MIN, 5)), Interval::full());
  // INT64_MAX negates exactly (to INT64_MIN + 1).
  EXPECT_EQ(Interval::neg(Interval::constant(INT64_MAX)),
            Interval::constant(INT64_MIN + 1));
  EXPECT_EQ(Interval::neg(iv(-3, 8)), iv(-8, 3));
}

TEST(AbsIntInterval, AddSubSaturateOnOverflow) {
  EXPECT_EQ(Interval::add(iv(1, 2), iv(10, 20)), iv(11, 22));
  EXPECT_EQ(Interval::add(Interval::constant(INT64_MAX), iv(0, 1)),
            Interval::full());
  EXPECT_EQ(Interval::add(Interval::constant(INT64_MIN), iv(-1, 0)),
            Interval::full());
  EXPECT_EQ(Interval::sub(iv(0, 0), Interval::constant(INT64_MIN)),
            Interval::full()); // 0 - INT64_MIN overflows
  EXPECT_EQ(Interval::sub(iv(5, 9), iv(1, 2)), iv(3, 8));
}

TEST(AbsIntInterval, MulSaturatesOnAnyCornerOverflow) {
  EXPECT_EQ(Interval::mul(iv(-3, 4), iv(2, 5)), iv(-15, 20));
  EXPECT_EQ(Interval::mul(iv(-2, -1), iv(-7, 3)), iv(-6, 14));
  EXPECT_EQ(Interval::mul(Interval::constant(INT64_MAX), iv(1, 2)),
            Interval::full());
  EXPECT_EQ(Interval::mul(Interval::constant(INT64_MIN), iv(-1, -1)),
            Interval::full());
}

TEST(AbsIntInterval, DivIsTopWhenDivisorSpansZeroOrCornerReachable) {
  // Divisor containing 0: the trap analysis owns that case; interval
  // arithmetic stays sound by giving up.
  EXPECT_EQ(Interval::div(iv(1, 100), iv(0, 5)), Interval::full());
  EXPECT_EQ(Interval::div(iv(1, 100), iv(-2, 3)), Interval::full());
  // INT64_MIN / -1 is the ckdiv overflow corner.
  EXPECT_EQ(Interval::div(Interval::constant(INT64_MIN),
                          Interval::constant(-1)),
            Interval::full());
  // Plain cases, hand-computed (C++ truncating division).
  EXPECT_EQ(Interval::div(iv(10, 99), Interval::constant(10)), iv(1, 9));
  EXPECT_EQ(Interval::div(iv(-7, 7), Interval::constant(2)), iv(-3, 3));
  EXPECT_EQ(Interval::div(iv(10, 20), iv(-2, -1)), iv(-20, -5));
}

TEST(AbsIntInterval, RemBoundedByDivisorMagnitude) {
  // |a % b| < |b|, sign follows the dividend.
  EXPECT_EQ(Interval::rem(iv(0, 1000), iv(1, 7)), iv(0, 6));
  EXPECT_EQ(Interval::rem(iv(-1000, -1), iv(1, 7)), iv(-6, 0));
  EXPECT_EQ(Interval::rem(iv(-1000, 1000), Interval::constant(3)),
            iv(-2, 2));
  // A dividend already below every divisor magnitude passes through.
  EXPECT_EQ(Interval::rem(iv(-5, 5), Interval::constant(10)), iv(-5, 5));
  EXPECT_EQ(Interval::rem(iv(0, 100), iv(0, 7)), Interval::full());
}

TEST(AbsIntInterval, AbsSaturatesOnInt64Min) {
  EXPECT_EQ(Interval::absI(iv(-3, 5)), iv(0, 5));
  EXPECT_EQ(Interval::absI(iv(-7, -2)), iv(2, 7));
  EXPECT_EQ(Interval::absI(iv(3, 9)), iv(3, 9));
  EXPECT_EQ(Interval::absI(iv(INT64_MIN, 0)), Interval::full());
}

TEST(AbsIntInterval, MinMaxAreElementwise) {
  EXPECT_EQ(Interval::minI(iv(0, 10), iv(5, 7)), iv(0, 7));
  EXPECT_EQ(Interval::maxI(iv(0, 10), iv(5, 7)), iv(5, 10));
}

//===--------------------------------------------------------------------===//
// AbsVal lattice
//===--------------------------------------------------------------------===//

TEST(AbsIntVal, JoinPreservesKindAndNonZero) {
  AbsVal A = AbsVal::fromInterval(iv(1, 5));
  AbsVal B = AbsVal::fromInterval(iv(3, 9));
  AbsVal J = AbsVal::join(A, B);
  EXPECT_TRUE(J.isInt());
  EXPECT_EQ(J.I, iv(1, 9));
  EXPECT_TRUE(J.knownNonZero()); // both sides exclude zero

  // A refinement-only NonZero flag survives a join with a nonzero range.
  AbsVal C = AbsVal::fromInterval(iv(-4, 4), /*NonZeroFlag=*/true);
  AbsVal J2 = AbsVal::join(C, A);
  EXPECT_TRUE(J2.knownNonZero());
  // ...but not a join with a side that may be zero.
  AbsVal MayZero = AbsVal::fromInterval(iv(-4, 4));
  EXPECT_FALSE(AbsVal::join(A, MayZero).knownNonZero());
}

TEST(AbsIntVal, JoinOfMismatchedKindsIsTop) {
  AbsVal J = AbsVal::join(AbsVal::fromInt(3), AbsVal::fromDouble(3.0));
  EXPECT_EQ(J.K, AbsVal::Kind::Top);
}

TEST(AbsIntVal, BoolAndDoubleJoins) {
  EXPECT_EQ(AbsVal::join(AbsVal::fromBool(true), AbsVal::fromBool(true)).B,
            Tri::True);
  EXPECT_EQ(AbsVal::join(AbsVal::fromBool(true), AbsVal::fromBool(false)).B,
            Tri::Unknown);
  AbsVal D = AbsVal::join(AbsVal::fromDouble(2.5), AbsVal::fromDouble(2.5));
  EXPECT_TRUE(D.HasD);
  EXPECT_EQ(D.D, 2.5);
  EXPECT_FALSE(
      AbsVal::join(AbsVal::fromDouble(2.5), AbsVal::fromDouble(3.5)).HasD);
}

//===--------------------------------------------------------------------===//
// absEval / refine
//===--------------------------------------------------------------------===//

TEST(AbsIntEval, ArithmeticOverEnvironment) {
  Env Environment;
  Environment["xi"] = AbsVal::fromInterval(iv(0, 10));
  AbsVal V = absEval(E(xi() + E(std::int64_t{1})).node(), Environment);
  EXPECT_EQ(V.I, iv(1, 11));
  V = absEval(E(xi() * xi()).node(), Environment);
  EXPECT_EQ(V.I, iv(0, 100));
  // The divnz divisor shape: 1 + abs(xi % 3) is provably in [1, 3].
  V = absEval(E(E(std::int64_t{1}) + abs(xi() % E(std::int64_t{3}))).node(),
              Environment);
  EXPECT_EQ(V.I, iv(1, 3));
  EXPECT_TRUE(V.knownNonZero());
}

TEST(AbsIntEval, RefineNarrowsAndDetectsInfeasible) {
  Env Environment;
  Environment["xi"] = AbsVal::fromInterval(Interval::full());
  ASSERT_TRUE(refine(Environment, E(xi() > E(std::int64_t{5})).node(),
                     /*Assume=*/true));
  EXPECT_EQ(Environment["xi"].I, iv(6, INT64_MAX));
  // Now additionally assume xi < 5: provably infeasible.
  EXPECT_FALSE(refine(Environment, E(xi() < E(std::int64_t{5})).node(),
                      /*Assume=*/true));
}

//===--------------------------------------------------------------------===//
// Division safety
//===--------------------------------------------------------------------===//

TEST(AbsIntDiv, SafetyRequiresNonZeroAndNoOverflowCorner) {
  AbsVal AnyInt = AbsVal::fromInterval(Interval::full());
  EXPECT_TRUE(divisionIsSafe(AnyInt, AbsVal::fromInterval(iv(1, 5))));
  EXPECT_TRUE(divisionIsSafe(AnyInt, AbsVal::fromInterval(iv(-9, -2))));
  // Divisor interval includes zero: not safe.
  EXPECT_FALSE(divisionIsSafe(AnyInt, AbsVal::fromInterval(iv(0, 5))));
  EXPECT_FALSE(divisionIsSafe(AnyInt, AbsVal::fromInterval(iv(-1, 1))));
  // Divisor can be -1 while the dividend can be INT64_MIN: the ckdiv
  // overflow corner is reachable, so the trap must stay.
  EXPECT_FALSE(
      divisionIsSafe(AnyInt, AbsVal::fromInterval(Interval::constant(-1))));
  EXPECT_TRUE(divisionIsSafe(AbsVal::fromInterval(iv(0, 100)),
                             AbsVal::fromInterval(Interval::constant(-1))));
  // NonZero learned by refinement (interval still spans 0) is enough
  // only when the corner is also excluded.
  AbsVal RefinedNz = AbsVal::fromInterval(iv(1, 10), /*NonZeroFlag=*/true);
  EXPECT_TRUE(divisionIsSafe(AnyInt, RefinedNz));
}

//===--------------------------------------------------------------------===//
// Chain facts and divSafe marking
//===--------------------------------------------------------------------===//

TEST(AbsIntChain, DivisionInventoryTracksSafety) {
  // Safe site: divisor 1 + abs(xi % 3) in [1, 3].
  quil::Chain Safe = quil::lower(
      Query::int64Array(0)
          .select(lambda({xi()}, xi() / (E(std::int64_t{1}) +
                                         abs(xi() % E(std::int64_t{3})))))
          .sum());
  ChainFacts F = analyzeChainFacts(Safe);
  bool FoundSafe = false;
  for (const DivSite &S : F.Divs)
    FoundSafe |= S.Safe;
  EXPECT_TRUE(FoundSafe);

  // Unsafe site: the divisor xi % 3 has interval [-2, 2], includes 0.
  quil::Chain Unsafe = quil::lower(
      Query::int64Array(0)
          .select(lambda({xi()}, xi() / (xi() % E(std::int64_t{3}))))
          .sum());
  ChainFacts FU = analyzeChainFacts(Unsafe);
  bool AnyUnsafeSafe = false;
  bool SawDivisorSite = false;
  for (const DivSite &S : FU.Divs)
    if (!S.Divisor.excludesZero()) {
      SawDivisorSite = true;
      AnyUnsafeSafe |= S.Safe;
    }
  EXPECT_TRUE(SawDivisorSite);
  EXPECT_FALSE(AnyUnsafeSafe);
}

TEST(AbsIntChain, MarkSafeDivisionsRewritesOnlyProvenSites) {
  Env Environment;
  Environment["xi"] = AbsVal::fromInterval(Interval::full());
  ExprRef Provable =
      E(xi() / (E(std::int64_t{1}) + abs(xi() % E(std::int64_t{4})))).node();
  std::vector<std::string> Facts;
  ExprRef Marked = markSafeDivisions(Provable, Environment, &Facts);
  ASSERT_EQ(Marked->kind(), ExprKind::Binary);
  EXPECT_TRUE(Marked->divSafe());
  // Both sites prove safe: the outer `/` (divisor in [1, 4]) and the
  // inner `%` (constant divisor 4).
  EXPECT_EQ(Facts.size(), 2u);

  // Mixed case: the `%` by 4 is provable but the outer `/` by xi % 4
  // (interval [-3, 3], includes 0) must keep its trap.
  ExprRef Mixed = E(xi() / (xi() % E(std::int64_t{4}))).node();
  Facts.clear();
  ExprRef Partial = markSafeDivisions(Mixed, Environment, &Facts);
  EXPECT_FALSE(Partial->divSafe());
  EXPECT_EQ(Facts.size(), 1u);
}

//===--------------------------------------------------------------------===//
// Death test: the trap is NOT elided when the divisor may be zero
//===--------------------------------------------------------------------===//

namespace {

/// xi / (xi % 3): divisor interval [-2, 2] includes zero, so even with
/// the rewriter ON the compiled program must keep rt::ckdiv and trap
/// with ST2001 when an element makes the divisor zero.
struct MaybeZeroFixture {
  std::vector<std::int64_t> Data{9, 7, 5}; // 9 % 3 == 0 -> traps
  Bindings B;
  Query Q = Query::int64Array(0)
                .select(lambda({xi()}, xi() / (xi() % E(std::int64_t{3}))))
                .sum();
  MaybeZeroFixture() {
    B.bindInt64Array(0, Data.data(),
                     static_cast<std::int64_t>(Data.size()));
  }
};

} // namespace

TEST(AbsIntTrapDeath, RewriterKeepsTrapWhenDivisorIntervalSpansZero) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MaybeZeroFixture F;
  CompileOptions O;
  O.Exec = Backend::Interp;
  O.Rewrite = true; // explicit: the elision opportunity must be refused
  O.Analyze = analysis::Mode::Off;
  O.Name = "absint_trap_kept";
  CompiledQuery CQ = compileQuery(F.Q, O);
  // The inner `xi % 3` (constant divisor) may be elided, but no
  // certificate may claim the outer division whose divisor spans zero.
  if (const quil::RewriteResult *R = CQ.rewriteResult())
    for (const quil::RewriteCertificate &C : R->Certs)
      if (C.Rule == quil::RewriteRule::ElideDivTrap)
        EXPECT_NE(C.Fact.find("divisor 3"), std::string::npos) << C.str();
  // The kept trap fires: 9 % 3 == 0 makes the outer divisor zero.
  EXPECT_DEATH(CQ.run(F.B), "ST2001.*integer division by zero");
}

TEST(AbsIntTrapDeath, ProvenSafeDivisorRunsWithoutTrapMachinery) {
  // The positive control: divisor in [1, 4] is elided and the query
  // runs to completion with the same result as the unrewritten plan.
  MaybeZeroFixture F; // reuse bindings/data; build a safe query
  Query Q = Query::int64Array(0)
                .select(lambda({xi()}, xi() / (E(std::int64_t{1}) +
                                               abs(xi() % E(std::int64_t{4})))))
                .sum();
  CompileOptions On;
  On.Exec = Backend::Interp;
  On.Rewrite = true;
  On.Analyze = analysis::Mode::Off;
  On.Name = "absint_elide_on";
  CompileOptions Off = On;
  Off.Rewrite = false;
  Off.Name = "absint_elide_off";
  CompiledQuery QOn = compileQuery(Q, On);
  CompiledQuery QOff = compileQuery(Q, Off);
  const quil::RewriteResult *R = QOn.rewriteResult();
  ASSERT_NE(R, nullptr);
  bool Elided = false;
  for (const quil::RewriteCertificate &C : R->Certs)
    Elided |= C.Rule == quil::RewriteRule::ElideDivTrap;
  EXPECT_TRUE(Elided);
  QueryResult A = QOn.run(F.B);
  QueryResult B = QOff.run(F.B);
  EXPECT_EQ(A.scalarValue().asInt64(), B.scalarValue().asInt64());
}
