//===- tests/profile_test.cpp - Operator-level query profiling -*- C++ -*-===//
//
// Coverage for the obs::Profile subsystem end to end: per-operator
// rows-in/out against hand-computed expectations on the interpreter,
// differential agreement between the interp and native backends, plan-
// hash sharing across backends, morsel-parallel worker attribution,
// concurrent ProfileStore merging (in the TSan CI job), the profile-off
// zero-instrumentation path, the EXPLAIN ANALYZE / JSON / Prometheus
// renderers, histogram bucket-bound determinism and merge/percentile,
// and the serve wire `profile`/`metrics`/`stats` commands over a
// socketpair.
//
//===----------------------------------------------------------------------===//

#include "dryad/Dist.h"
#include "expr/Dsl.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "serve/Serve.h"
#include "serve/Wire.h"
#include "steno/Steno.h"

#include <algorithm>
#include <numeric>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

/// Compiles with profiling on, independent of STENO_PROFILE.
CompileOptions profiled(Backend Exec, const std::string &Name) {
  CompileOptions O;
  O.Exec = Exec;
  O.Profile = true;
  O.Name = Name;
  return O;
}

/// The Figure 1 shape: doubleArray.select(x*x).sum().
Query fig01Query() {
  auto X = param("x", Type::doubleTy());
  return Query::doubleArray(0).select(lambda({X}, X * X)).sum();
}

/// A fig13-like filtered fold: where(x > 0).select(x*2).sum().
Query whereSelectSumQuery() {
  auto X = param("x", Type::doubleTy());
  return Query::doubleArray(0)
      .where(lambda({X}, X > 0.0))
      .select(lambda({X}, X * 2.0))
      .sum();
}

std::vector<double> ramp(std::size_t N) {
  std::vector<double> Out(N);
  // Alternate sign so Where(x > 0) keeps exactly the even indices' values
  // (index 0 maps to +1).
  for (std::size_t I = 0; I != N; ++I)
    Out[I] = (I % 2 == 0 ? 1.0 : -1.0) * static_cast<double>(I + 1);
  return Out;
}

const obs::OpProfile *findOp(const obs::ProfileSnapshot &S,
                             const std::string &Label) {
  for (const obs::OpProfile &O : S.Ops)
    if (O.Label == Label)
      return &O;
  return nullptr;
}

} // namespace

//===--------------------------------------------------------------------===//
// Interpreter backend: hand-computed per-operator expectations
//===--------------------------------------------------------------------===//

TEST(ProfileInterp, Fig01PerOperatorCounts) {
  obs::ProfileStore::global().clear();
  const std::size_t N = 100;
  std::vector<double> Xs = ramp(N);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));

  CompiledQuery CQ =
      compileQuery(fig01Query(), profiled(Backend::Interp, "fig01"));
  ASSERT_TRUE(CQ.profiled());
  ASSERT_NE(CQ.planHash(), 0u);
  double Want = 0;
  for (double X : Xs)
    Want += X * X;
  EXPECT_DOUBLE_EQ(CQ.run(B).scalarValue().asDouble(), Want);

  auto Snap = obs::ProfileStore::global().snapshot(CQ.planHash());
  ASSERT_TRUE(Snap.has_value());
  EXPECT_EQ(Snap->Runs, 1u);
  EXPECT_EQ(Snap->Name, "fig01");
  EXPECT_EQ(Snap->Symbols, CQ.chain().symbols());

  const obs::OpProfile *Src = findOp(*Snap, "Src");
  const obs::OpProfile *Trans = findOp(*Snap, "Trans");
  const obs::OpProfile *Agg = findOp(*Snap, "Agg");
  const obs::OpProfile *Ret = findOp(*Snap, "Ret");
  ASSERT_TRUE(Src && Trans && Agg && Ret);

  // Src emits N rows (out-count only; a source consumes nothing).
  EXPECT_EQ(Src->RowsIn, 0u);
  EXPECT_EQ(Src->RowsOut, N);
  EXPECT_DOUBLE_EQ(Src->selectivity(), -1.0);
  // Select passes every row through: selectivity exactly 1.
  EXPECT_EQ(Trans->RowsIn, N);
  EXPECT_EQ(Trans->RowsOut, N);
  EXPECT_DOUBLE_EQ(Trans->selectivity(), 1.0);
  // The fold consumes (and survives) every row.
  EXPECT_EQ(Agg->RowsIn, N);
  EXPECT_EQ(Agg->RowsOut, N);
  // One scalar result row.
  EXPECT_EQ(Ret->RowsIn, 0u);
  EXPECT_EQ(Ret->RowsOut, 1u);
}

TEST(ProfileInterp, WhereObservedSelectivity) {
  obs::ProfileStore::global().clear();
  const std::size_t N = 100;
  std::vector<double> Xs = ramp(N); // exactly N/2 positive
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));

  CompiledQuery CQ = compileQuery(whereSelectSumQuery(),
                                  profiled(Backend::Interp, "fig13"));
  CQ.run(B);

  auto Snap = obs::ProfileStore::global().snapshot(CQ.planHash());
  ASSERT_TRUE(Snap.has_value());
  const obs::OpProfile *Where = findOp(*Snap, "Where");
  const obs::OpProfile *Trans = findOp(*Snap, "Trans");
  ASSERT_TRUE(Where && Trans);
  // The predicate sees all N rows and passes exactly half.
  EXPECT_EQ(Where->RowsIn, N);
  EXPECT_EQ(Where->RowsOut, N / 2);
  EXPECT_DOUBLE_EQ(Where->selectivity(), 0.5);
  // Downstream Trans only sees the survivors.
  EXPECT_EQ(Trans->RowsIn, N / 2);
  EXPECT_EQ(Trans->RowsOut, N / 2);
}

TEST(ProfileInterp, EarlyExitAggregateStopsCounting) {
  obs::ProfileStore::global().clear();
  const std::size_t N = 100;
  std::vector<double> Xs = ramp(N);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));

  // any() short-circuits on the first element: downstream rows stop.
  CompiledQuery CQ = compileQuery(
      Query::doubleArray(0).any(), profiled(Backend::Interp, "any_q"));
  EXPECT_TRUE(CQ.run(B).scalarValue().asBool());

  auto Snap = obs::ProfileStore::global().snapshot(CQ.planHash());
  ASSERT_TRUE(Snap.has_value());
  const obs::OpProfile *Agg = findOp(*Snap, "Agg");
  ASSERT_TRUE(Agg);
  // The fold consumed far fewer than N rows before breaking out.
  EXPECT_GE(Agg->RowsIn, 1u);
  EXPECT_LT(Agg->RowsIn, N);
}

//===--------------------------------------------------------------------===//
// Differential: the interp, native and morsel paths agree on rows
//===--------------------------------------------------------------------===//

TEST(ProfileDifferential, BackendsAgreeOnRowCounts) {
  const std::size_t N = 1000;
  std::vector<double> Xs = ramp(N);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));

  // The interp and native plans of one query share a plan hash by
  // design, so profile each backend against a cleared store.
  obs::ProfileStore::global().clear();
  CompiledQuery Interp = compileQuery(whereSelectSumQuery(),
                                      profiled(Backend::Interp, "diff"));
  double GotInterp = Interp.run(B).scalarValue().asDouble();
  auto SnapInterp = obs::ProfileStore::global().snapshot(Interp.planHash());
  ASSERT_TRUE(SnapInterp.has_value());

  obs::ProfileStore::global().clear();
  CompiledQuery Native = compileQuery(whereSelectSumQuery(),
                                      profiled(Backend::Native, "diff"));
  EXPECT_EQ(Interp.planHash(), Native.planHash());
  double GotNative = Native.run(B).scalarValue().asDouble();
  auto SnapNative = obs::ProfileStore::global().snapshot(Native.planHash());
  ASSERT_TRUE(SnapNative.has_value());

  EXPECT_DOUBLE_EQ(GotInterp, GotNative);
  ASSERT_EQ(SnapInterp->Ops.size(), SnapNative->Ops.size());
  for (std::size_t I = 0; I != SnapInterp->Ops.size(); ++I) {
    const obs::OpProfile &A = SnapInterp->Ops[I];
    const obs::OpProfile &C = SnapNative->Ops[I];
    EXPECT_EQ(A.Label, C.Label) << "op " << I;
    EXPECT_EQ(A.RowsIn, C.RowsIn) << A.Label;
    EXPECT_EQ(A.RowsOut, C.RowsOut) << A.Label;
  }
  // With N=1000 timed operators accumulate measurable time somewhere.
  EXPECT_GT(SnapInterp->totalNanos(), 0u);
}

TEST(ProfileDifferential, InterpAndNativeMergeIntoOneEntry) {
  obs::ProfileStore::global().clear();
  const std::size_t N = 64;
  std::vector<double> Xs = ramp(N);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));

  CompiledQuery Interp =
      compileQuery(fig01Query(), profiled(Backend::Interp, "shared"));
  CompiledQuery Native =
      compileQuery(fig01Query(), profiled(Backend::Native, "shared"));
  ASSERT_EQ(Interp.planHash(), Native.planHash());

  Interp.run(B);
  Native.run(B);
  auto Snap = obs::ProfileStore::global().snapshot(Interp.planHash());
  ASSERT_TRUE(Snap.has_value());
  EXPECT_EQ(Snap->Runs, 2u);
  const obs::OpProfile *Src = findOp(*Snap, "Src");
  ASSERT_TRUE(Src);
  EXPECT_EQ(Src->RowsOut, 2 * N); // both runs merged
}

//===--------------------------------------------------------------------===//
// Morsel-parallel: per-worker attribution
//===--------------------------------------------------------------------===//

TEST(ProfileMorsel, ParallelRunAttributesWorkersAndCountsAllRows) {
  obs::ProfileStore::global().clear();
  const std::size_t N = 100000; // far above MorselOptions::InlineBelow
  std::vector<double> Xs = ramp(N);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));

  dryad::DistOptions Opts;
  Opts.Exec = Backend::Interp; // profile plumbing is backend-agnostic
  Opts.Profile = true;
  Opts.Name = "morsel_profiled";
  Opts.Morsels.MaxMorsel = 4096; // force several morsels
  dryad::DistributedQuery DQ =
      dryad::DistributedQuery::compile(fig01Query(), Opts);
  ASSERT_TRUE(DQ.parallel()) << DQ.whyNotParallel();
  ASSERT_NE(DQ.vertexPlanHash(), 0u);

  dryad::ThreadPool Pool(4);
  double Want = 0;
  for (double X : Xs)
    Want += X * X;
  double Got = DQ.runParallel(Pool, B).scalarValue().asDouble();
  EXPECT_NEAR(Got, Want, std::abs(Want) * 1e-9);

  auto Snap = obs::ProfileStore::global().snapshot(DQ.vertexPlanHash());
  ASSERT_TRUE(Snap.has_value());
  // One merge per PARTICIPATING WORKER (each worker's QueryRunner
  // accumulates its morsel deltas locally and flushes once at the
  // join), so Runs is between 1 (a single worker won every morsel —
  // normal on a loaded single-core machine) and the pool size.
  EXPECT_GE(Snap->Runs, 1u);
  EXPECT_LE(Snap->Runs, Pool.workerCount());
  // Every source row was seen exactly once across all morsels.
  const obs::OpProfile *Src = findOp(*Snap, "Src");
  ASSERT_TRUE(Src);
  EXPECT_EQ(Src->RowsOut, N);
  // Worker attribution is complete: per-worker merges sum to Runs, and
  // ids stay inside the pool.
  ASSERT_FALSE(Snap->WorkerMerges.empty());
  std::uint64_t Attributed = 0;
  for (const auto &[W, Merges] : Snap->WorkerMerges) {
    EXPECT_LT(W, Pool.workerCount());
    Attributed += Merges;
  }
  EXPECT_EQ(Attributed, Snap->Runs);
}

//===--------------------------------------------------------------------===//
// Store: concurrent merges (TSan job) and snapshots
//===--------------------------------------------------------------------===//

TEST(ProfileStore, ConcurrentMergesLoseNothing) {
  obs::ProfileStore Store; // private store: no cross-test interference
  obs::PlanDesc D;
  D.Name = "concurrent";
  D.Ops = {{"Src", 0, false}, {"Trans", 1, true}};
  const std::uint64_t Hash = 0xfeedu;
  Store.ensure(Hash, D);

  constexpr unsigned Threads = 4;
  constexpr std::uint64_t Merges = 2000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([&Store, T] {
      obs::ProfileWorkerScope Scope(T);
      obs::ProfileSink S(2);
      S.Counts = {0, 10, 10, 10};
      S.Nanos = {0, 5};
      for (std::uint64_t I = 0; I != Merges; ++I)
        Store.merge(Hash, S);
    });
  for (std::thread &T : Ts)
    T.join();

  auto Snap = Store.snapshot(Hash);
  ASSERT_TRUE(Snap.has_value());
  EXPECT_EQ(Snap->Runs, Threads * Merges);
  ASSERT_EQ(Snap->Ops.size(), 2u);
  EXPECT_EQ(Snap->Ops[0].RowsOut, Threads * Merges * 10);
  EXPECT_EQ(Snap->Ops[1].RowsIn, Threads * Merges * 10);
  EXPECT_EQ(Snap->Ops[1].Nanos, Threads * Merges * 5);
  ASSERT_EQ(Snap->WorkerMerges.size(), Threads);
  for (const auto &[W, M] : Snap->WorkerMerges)
    EXPECT_EQ(M, Merges) << "worker " << W;
}

TEST(ProfileStore, UnknownHashMergeIsANoOp) {
  obs::ProfileStore Store;
  obs::ProfileSink S(1);
  S.Counts = {1, 1};
  Store.merge(0xdeadbeefu, S); // must not crash or register anything
  EXPECT_EQ(Store.size(), 0u);
  EXPECT_FALSE(Store.snapshot(0xdeadbeefu).has_value());
}

//===--------------------------------------------------------------------===//
// Provenance resolution: multi-hop chains, siblings, permuted preds
//===--------------------------------------------------------------------===//

namespace {

/// Registers a Src -> Where -> Ret plan with the given provenance link
/// and merges \p Runs runs of 10-rows-in / 4-rows-out through it.
void registerAndRun(obs::ProfileStore &Store, std::uint64_t Hash,
                    std::uint64_t RewrittenFrom, std::uint64_t Runs,
                    std::uint64_t OpId = 0x77) {
  obs::PlanDesc D;
  D.Name = "prov";
  D.Ops = {{"Src", 0, false}, {"Where", 1, true, OpId}, {"Ret", 1, false}};
  D.RewrittenFrom = RewrittenFrom;
  Store.ensure(Hash, D);
  obs::ProfileSink S(3);
  S.Counts = {0, 10, 10, 4, 4, 4};
  S.Nanos = {0, 100, 0};
  for (std::uint64_t I = 0; I != Runs; ++I)
    Store.merge(Hash, S);
}

} // namespace

TEST(ProfileResolve, MultiHopProvenanceChainFoldsEveryVersion) {
  // v1 <- v2 <- v3: each version was rewritten from the previous one,
  // and every version accumulated runs. Regression: resolution used to
  // follow only ONE RewrittenFrom hop, so v3 lost v1's history.
  obs::ProfileStore Store;
  registerAndRun(Store, /*Hash=*/0x10, /*RewrittenFrom=*/0, /*Runs=*/2);
  registerAndRun(Store, 0x20, 0x10, 1);
  registerAndRun(Store, 0x30, 0x20, 1);

  auto Snap = Store.snapshotResolved(0x30);
  ASSERT_TRUE(Snap.has_value());
  EXPECT_EQ(Snap->PlanHash, 0x30u);
  EXPECT_EQ(Snap->Runs, 4u) << "v3's own run plus v1+v2 history";
  EXPECT_EQ(Snap->PriorRuns, 3u);
  EXPECT_NE(Snap->ResolvedFrom, 0u);
  // Same operator shape across versions: per-op counters folded too.
  ASSERT_EQ(Snap->Ops.size(), 3u);
  EXPECT_EQ(Snap->Ops[1].RowsIn, 40u);
  EXPECT_EQ(Snap->Ops[1].RowsOut, 16u);
  EXPECT_EQ(Snap->Ops[1].Nanos, 400u);

  // The component is symmetric: resolving the chain ROOT sees the
  // descendants' runs as well.
  auto Root = Store.snapshotResolved(0x10);
  ASSERT_TRUE(Root.has_value());
  EXPECT_EQ(Root->Runs, 4u);
  EXPECT_EQ(Root->PriorRuns, 2u);
}

TEST(ProfileResolve, ProvenanceSiblingsFoldThroughTheSharedAnchor) {
  // Two rewrite products of the same (never-registered) original: the
  // static v1 and a feedback v2 both carry RewrittenFrom = anchor. A
  // consumer holding only the anchor hash — the adaptive planner — must
  // see the union of both versions' history.
  obs::ProfileStore Store;
  const std::uint64_t Anchor = 0xA0;
  registerAndRun(Store, 0x21, Anchor, 3);
  registerAndRun(Store, 0x22, Anchor, 2);

  auto Snap = Store.snapshotResolved(Anchor);
  ASSERT_TRUE(Snap.has_value());
  EXPECT_EQ(Snap->PlanHash, Anchor) << "re-keyed under the requested hash";
  EXPECT_EQ(Snap->Runs, 5u);
  EXPECT_EQ(Snap->PriorRuns, 5u) << "every run came from a relative";
  EXPECT_EQ(Snap->Ops[1].RowsIn, 50u);

  // And one sibling resolves through the shared anchor to the other.
  auto Sib = Store.snapshotResolved(0x21);
  ASSERT_TRUE(Sib.has_value());
  EXPECT_EQ(Sib->Runs, 5u);
  EXPECT_EQ(Sib->PriorRuns, 2u);
  EXPECT_EQ(Sib->ResolvedFrom, 0x22u);
}

TEST(ProfileResolve, PermutedPredicatesFoldByOpIdNotIndex) {
  // v2 = v1 with the two Where preds swapped (what a feedback reorder
  // produces). Index-wise folding would attribute pred A's rows to pred
  // B; the fold must match on (Label, OpId) instead.
  obs::ProfileStore Store;
  const std::uint64_t IdA = 0xAA, IdB = 0xBB;
  obs::PlanDesc V1;
  V1.Name = "v1";
  V1.Ops = {{"Src", 0, false},
            {"Where", 1, true, IdA},
            {"Where", 1, true, IdB},
            {"Ret", 1, false}};
  Store.ensure(0x51, V1);
  obs::PlanDesc V2;
  V2.Name = "v2";
  V2.Ops = {{"Src", 0, false},
            {"Where", 1, true, IdB},
            {"Where", 1, true, IdA},
            {"Ret", 1, false}};
  V2.RewrittenFrom = 0x51;
  Store.ensure(0x52, V2);

  // v1: A sees 100 -> 90, B sees 90 -> 30.
  obs::ProfileSink S1(4);
  S1.Counts = {0, 100, 100, 90, 90, 30, 30, 30};
  S1.Nanos = {0, 10, 20, 0};
  Store.merge(0x51, S1);
  // v2 (swapped): B sees 100 -> 33, A sees 33 -> 30.
  obs::ProfileSink S2(4);
  S2.Counts = {0, 100, 100, 33, 33, 30, 30, 30};
  S2.Nanos = {0, 40, 5, 0};
  Store.merge(0x52, S2);

  auto Snap = Store.snapshotResolved(0x51);
  ASSERT_TRUE(Snap.has_value());
  EXPECT_EQ(Snap->Runs, 2u);
  // Pred A folded A-with-A: 100+33 in, 90+30 out, 10+5 nanos.
  EXPECT_EQ(Snap->Ops[1].OpId, IdA);
  EXPECT_EQ(Snap->Ops[1].RowsIn, 133u);
  EXPECT_EQ(Snap->Ops[1].RowsOut, 120u);
  EXPECT_EQ(Snap->Ops[1].Nanos, 15u);
  // Pred B folded B-with-B: 90+100 in, 30+33 out, 20+40 nanos.
  EXPECT_EQ(Snap->Ops[2].OpId, IdB);
  EXPECT_EQ(Snap->Ops[2].RowsIn, 190u);
  EXPECT_EQ(Snap->Ops[2].RowsOut, 63u);
  EXPECT_EQ(Snap->Ops[2].Nanos, 60u);
}

//===--------------------------------------------------------------------===//
// Profile off: zero instrumentation in the generated plan
//===--------------------------------------------------------------------===//

TEST(ProfileOff, UnprofiledPlansCarryNoHooks) {
  CompileOptions O;
  O.Exec = Backend::Interp;
  O.Profile = false;
  O.Name = "unprofiled";
  CompiledQuery CQ = compileQuery(fig01Query(), O);
  EXPECT_FALSE(CQ.profiled());
  EXPECT_TRUE(CQ.program().ProfOps.empty());
  // The generated source has no trace of the counter arrays: the off
  // path costs nothing, not even dead stores.
  EXPECT_EQ(CQ.generatedSource().find("prof_c_"), std::string::npos);
  EXPECT_EQ(CQ.generatedSource().find("prof_ns_"), std::string::npos);
  EXPECT_NE(CQ.explainAnalyze().find("without profiling"),
            std::string::npos);
}

TEST(ProfileOff, ProfiledAndUnprofiledAreDistinctCacheEntries) {
  QueryCache Cache;
  CompileOptions Off;
  Off.Exec = Backend::Interp;
  Off.Profile = false;
  CompileOptions On = Off;
  On.Profile = true;
  CompiledQuery A = Cache.getOrCompile(fig01Query(), Off);
  CompiledQuery C = Cache.getOrCompile(fig01Query(), On);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_FALSE(A.profiled());
  EXPECT_TRUE(C.profiled());
  // And each options shape hits its own entry on re-request.
  Cache.getOrCompile(fig01Query(), Off);
  Cache.getOrCompile(fig01Query(), On);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.hits(), 2u);
}

//===--------------------------------------------------------------------===//
// Reports: EXPLAIN ANALYZE, JSON, Prometheus
//===--------------------------------------------------------------------===//

TEST(ProfileReport, ExplainAnalyzeRendersTheOperatorTree) {
  obs::ProfileStore::global().clear();
  const std::size_t N = 200;
  std::vector<double> Xs = ramp(N);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  CompiledQuery CQ = compileQuery(whereSelectSumQuery(),
                                  profiled(Backend::Interp, "report_q"));

  // Before any run: a header with 0 runs, no invented numbers.
  EXPECT_NE(CQ.explainAnalyze().find("0 runs"), std::string::npos);

  CQ.run(B);
  std::string Report = CQ.explainAnalyze();
  EXPECT_NE(Report.find("EXPLAIN ANALYZE report_q"), std::string::npos);
  EXPECT_NE(Report.find("-> Where"), std::string::npos);
  EXPECT_NE(Report.find("rows_in=200 rows_out=100"), std::string::npos);
  EXPECT_NE(Report.find("sel=0.5000"), std::string::npos);
  EXPECT_NE(Report.find("1 run]"), std::string::npos);
  EXPECT_NE(Report.find("quil: "), std::string::npos);
}

TEST(ProfileReport, JsonAndPrometheusCarryTheCounts) {
  obs::ProfileStore::global().clear();
  const std::size_t N = 50;
  std::vector<double> Xs = ramp(N);
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  CompiledQuery CQ =
      compileQuery(fig01Query(), profiled(Backend::Interp, "json_q"));
  CQ.run(B);

  auto Snap = obs::ProfileStore::global().snapshot(CQ.planHash());
  ASSERT_TRUE(Snap.has_value());
  std::string Json = obs::profileJson(*Snap);
  EXPECT_NE(Json.find("\"name\":\"json_q\""), std::string::npos);
  EXPECT_NE(Json.find("\"runs\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"op\":\"Trans\""), std::string::npos);
  EXPECT_NE(Json.find("\"rows_in\":50"), std::string::npos);
  EXPECT_EQ(Json.find('\n'), std::string::npos) << "must be one line";

  std::string Prom = obs::profilesPrometheus();
  EXPECT_NE(Prom.find("# TYPE steno_profile_runs_total counter"),
            std::string::npos);
  EXPECT_NE(Prom.find("name=\"json_q\""), std::string::npos);
  EXPECT_NE(Prom.find("dir=\"out\""), std::string::npos);
  // The full export includes the metrics registry too.
  std::string All = obs::exportPrometheus();
  EXPECT_NE(All.find("steno_run_count"), std::string::npos);
  EXPECT_NE(All.find("steno_profile_op_rows_total"), std::string::npos);
}

//===--------------------------------------------------------------------===//
// Histogram: bound determinism, merge, percentiles
//===--------------------------------------------------------------------===//

TEST(HistogramBounds, ValuesOnABoundLandDeterministically) {
  obs::Histogram H({10.0, 20.0});
  // (prev, bound] convention: exactly-10 lands in the le=10 bucket.
  H.observe(10.0);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 0u);
  // Just above the bound lands in the next bucket.
  H.observe(10.0000001);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  // Above the last bound: the implicit +inf bucket.
  H.observe(25.0);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.count(), 3u);
}

TEST(HistogramBounds, MergeFoldsPerWorkerHistograms) {
  obs::Histogram A({1.0, 10.0, 100.0});
  obs::Histogram B({1.0, 10.0, 100.0});
  A.observe(0.5);
  A.observe(5.0);
  B.observe(5.0);
  B.observe(50.0);
  B.observe(500.0);
  A.merge(B);
  EXPECT_EQ(A.count(), 5u);
  EXPECT_EQ(A.bucketCount(0), 1u);
  EXPECT_EQ(A.bucketCount(1), 2u);
  EXPECT_EQ(A.bucketCount(2), 1u);
  EXPECT_EQ(A.bucketCount(3), 1u);
  EXPECT_DOUBLE_EQ(A.sum(), 560.5);
}

TEST(HistogramBounds, PercentileInterpolatesInsideTheBucket) {
  obs::Histogram H({10.0, 20.0});
  for (int I = 0; I != 100; ++I)
    H.observe(5.0); // all in (0, 10]
  // Linear interpolation inside the crossing bucket from its lower edge.
  EXPECT_DOUBLE_EQ(H.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(H.percentile(1.0), 10.0);
  // Empty histogram: defined answer, no division by zero.
  obs::Histogram E({10.0});
  EXPECT_DOUBLE_EQ(E.percentile(0.5), 0.0);
  // +inf observations clamp to the last finite bound.
  obs::Histogram F({10.0, 20.0});
  F.observe(1e9);
  EXPECT_DOUBLE_EQ(F.percentile(0.99), 20.0);
}

//===--------------------------------------------------------------------===//
// Serve: profile/metrics/stats over the wire
//===--------------------------------------------------------------------===//

TEST(ProfileServe, WireProfileMetricsAndStatsRoundTrip) {
  obs::ProfileStore::global().clear();
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  serve::ServeOptions Opts;
  Opts.BackgroundRecompile = false; // deterministic: interp plan only
  Opts.Profile = true;
  serve::QueryService Svc(Opts);
  std::thread Server([&] { serve::serveConnection(Svc, Fds[0]); });
  serve::WireClient Client(Fds[1]);

  const std::string Spec = "steno-fuzz v1\n"
                           "source 0 double 32 uniform 3\n"
                           "op select square 0\n"
                           "op agg sum 0\n"
                           "end\n";
  std::uint64_t Handle = 99;
  std::string Err;
  ASSERT_TRUE(Client.prepare(Spec, Handle, Err)) << Err;

  // The plan registers at prepare (compile) time: profile is answerable
  // before the first exec, with zero runs.
  std::string Json;
  ASSERT_TRUE(Client.profile(Handle, Json, &Err)) << Err;
  EXPECT_NE(Json.find("\"runs\":0"), std::string::npos);

  serve::WireClient::ExecResult R;
  ASSERT_TRUE(Client.exec(Handle, 5000, R));
  ASSERT_EQ(R.St, serve::Status::Ok);

  ASSERT_TRUE(Client.profile(Handle, Json, &Err)) << Err;
  EXPECT_NE(Json.find("\"runs\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"op\":\"Trans\""), std::string::npos);
  EXPECT_NE(Json.find("\"rows_in\":32"), std::string::npos);

  // Unknown handle: an error frame, not a dropped connection.
  EXPECT_FALSE(Client.profile(77, Json, &Err));
  EXPECT_NE(Err.find("unknown handle"), std::string::npos);

  // stats carries the latency percentile block.
  std::string Stats;
  ASSERT_TRUE(Client.stats(Stats));
  EXPECT_NE(Stats.find("\"latency_us\":{\"p50\":"), std::string::npos);
  EXPECT_NE(Stats.find("\"p99\":"), std::string::npos);

  // metrics dumps Prometheus text including the profile series.
  std::string Prom;
  ASSERT_TRUE(Client.metrics(Prom));
  EXPECT_NE(Prom.find("# TYPE serve_requests counter"), std::string::npos);
  EXPECT_NE(Prom.find("steno_profile_runs_total"), std::string::npos);

  Client.quit();
  Server.join();
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(ProfileServe, UnprofiledServiceAnswersProfileWithAnError) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  serve::ServeOptions Opts;
  Opts.BackgroundRecompile = false;
  Opts.Profile = false;
  serve::QueryService Svc(Opts);
  std::thread Server([&] { serve::serveConnection(Svc, Fds[0]); });
  serve::WireClient Client(Fds[1]);

  const std::string Spec = "steno-fuzz v1\n"
                           "source 0 double 8 uniform 5\n"
                           "op agg sum 0\n"
                           "end\n";
  std::uint64_t Handle = 99;
  std::string Err;
  ASSERT_TRUE(Client.prepare(Spec, Handle, Err)) << Err;
  std::string Json;
  EXPECT_FALSE(Client.profile(Handle, Json, &Err));
  EXPECT_NE(Err.find("without profiling"), std::string::npos);

  Client.quit();
  Server.join();
  ::close(Fds[0]);
  ::close(Fds[1]);
}
