//===- tests/query_test.cpp - Query AST builder tests ----------*- C++ -*-===//

#include "query/Query.h"

#include "gtest/gtest.h"

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::OpKind;
using query::Query;
using query::SourceKind;

namespace {

E x() { return param("x", Type::doubleTy()); }
E xi() { return param("x", Type::int64Ty()); }

} // namespace

TEST(QueryBuild, SourceElementTypes) {
  EXPECT_TRUE(Query::doubleArray(0).resultType()->isDouble());
  EXPECT_TRUE(Query::int64Array(0).resultType()->isInt64());
  EXPECT_TRUE(Query::pointArray(0).resultType()->isVec());
  EXPECT_TRUE(Query::range(E(0), E(10)).resultType()->isInt64());
  E V = param("v", Type::vecTy());
  EXPECT_TRUE(Query::overVec(V).resultType()->isDouble());
}

TEST(QueryBuild, SelectChangesElementType) {
  Query Q = Query::doubleArray(0).select(lambda({x()}, toInt64(x())));
  EXPECT_TRUE(Q.resultType()->isInt64());
  EXPECT_FALSE(Q.scalarResult());
}

TEST(QueryBuild, WherePreservesElementType) {
  Query Q = Query::doubleArray(0).where(lambda({x()}, x() > 0.0));
  EXPECT_TRUE(Q.resultType()->isDouble());
}

TEST(QueryBuild, AggregatesAreScalar) {
  EXPECT_TRUE(Query::doubleArray(0).sum().scalarResult());
  EXPECT_TRUE(Query::doubleArray(0).sum().resultType()->isDouble());
  EXPECT_TRUE(Query::int64Array(0).sum().resultType()->isInt64());
  EXPECT_TRUE(Query::doubleArray(0).count().resultType()->isInt64());
  EXPECT_TRUE(Query::int64Array(0).average().resultType()->isDouble());
  EXPECT_TRUE(Query::doubleArray(0).min().resultType()->isDouble());
}

TEST(QueryBuild, AggregateExplicitTypes) {
  E A = param("a", Type::int64Ty());
  Query Q = Query::doubleArray(0).aggregate(
      E(0), lambda({A, x()}, A + 1));
  EXPECT_TRUE(Q.resultType()->isInt64());
  Query QR = Query::doubleArray(0).aggregate(
      E(0), lambda({A, x()}, A + 1), lambda({A}, toDouble(A)));
  EXPECT_TRUE(QR.resultType()->isDouble());
}

TEST(QueryBuild, GroupByProducesKeyBagPairs) {
  Query Q =
      Query::doubleArray(0).groupBy(lambda({x()}, toInt64(x())));
  ASSERT_TRUE(Q.resultType()->isPair());
  EXPECT_TRUE(Q.resultType()->first()->isInt64());
  EXPECT_TRUE(Q.resultType()->second()->isVec());
}

TEST(QueryBuild, GroupByAggregateDefaultResult) {
  E A = param("a", Type::doubleTy());
  Query Q = Query::doubleArray(0).groupByAggregate(
      lambda({x()}, toInt64(x())), E(0.0), lambda({A, x()}, A + x()));
  ASSERT_TRUE(Q.resultType()->isPair());
  EXPECT_TRUE(Q.resultType()->second()->isDouble());
}

TEST(QueryBuild, GroupByAggregateCustomResult) {
  E A = param("a", Type::doubleTy());
  E K = param("k", Type::int64Ty());
  Query Q = Query::doubleArray(0).groupByAggregate(
      lambda({x()}, toInt64(x())), E(0.0), lambda({A, x()}, A + x()),
      lambda({K, A}, A * 2.0));
  EXPECT_TRUE(Q.resultType()->isDouble());
}

TEST(QueryBuild, ChainIsSourceFirst) {
  Query Q = Query::doubleArray(3)
                .where(lambda({x()}, x() > 0.0))
                .select(lambda({x()}, x() * x()))
                .sum();
  std::vector<query::QueryNodeRef> Chain = Q.chain();
  ASSERT_EQ(Chain.size(), 4u);
  EXPECT_EQ(Chain[0]->kind(), OpKind::Source);
  EXPECT_EQ(Chain[0]->source().Slot, 3u);
  EXPECT_EQ(Chain[1]->kind(), OpKind::Where);
  EXPECT_EQ(Chain[2]->kind(), OpKind::Select);
  EXPECT_EQ(Chain[3]->kind(), OpKind::Sum);
}

TEST(QueryBuild, ChainsShareTails) {
  Query Base = Query::doubleArray(0).where(lambda({x()}, x() > 0.0));
  Query A = Base.sum();
  Query B = Base.count();
  EXPECT_EQ(A.chain()[1], B.chain()[1])
      << "immutable nodes are shared between derived queries";
}

TEST(QueryBuild, NestedScalarSelect) {
  E P = param("p", Type::vecTy());
  E D = param("d", Type::doubleTy());
  Query Norm2 = Query::overVec(P).select(lambda({D}, D * D)).sum();
  Query Q = Query::pointArray(0).selectNested(P, Norm2);
  EXPECT_TRUE(Q.resultType()->isDouble());
  ASSERT_TRUE(Q.node()->nested());
  EXPECT_EQ(Q.node()->outerParam(), "p");
}

TEST(QueryBuild, SelectMany) {
  E Y = param("y", Type::int64Ty());
  Query Inner = Query::range(E(0), E(3)).select(lambda({Y}, Y * 2));
  Query Q = Query::int64Array(0).selectMany(xi(), Inner);
  EXPECT_TRUE(Q.resultType()->isInt64());
  EXPECT_FALSE(Q.scalarResult());
}

TEST(QueryBuild, TakeSkipPreserveType) {
  Query Q = Query::doubleArray(0).take(E(10)).skip(E(2));
  EXPECT_TRUE(Q.resultType()->isDouble());
}

TEST(QueryBuild, OrderByToArrayPreserveType) {
  Query Q = Query::doubleArray(0)
                .orderBy(lambda({x()}, x()))
                .toArray();
  EXPECT_TRUE(Q.resultType()->isDouble());
}

TEST(QueryBuild, StrRendering) {
  Query Q = Query::doubleArray(0).where(lambda({x()}, x() > 0.0)).sum();
  std::string S = Q.str();
  EXPECT_NE(S.find("source(0)"), std::string::npos) << S;
  EXPECT_NE(S.find("where"), std::string::npos) << S;
  EXPECT_NE(S.find("sum"), std::string::npos) << S;
}

TEST(QueryBuild, CombinerStored) {
  E A = param("a", Type::doubleTy());
  E B = param("b", Type::doubleTy());
  Query Q = Query::doubleArray(0).aggregate(
      E(0.0), lambda({A, x()}, A + x()), Lambda(),
      lambda({A, B}, A + B));
  EXPECT_TRUE(Q.node()->combiner().valid());
  EXPECT_EQ(Q.node()->combiner().arity(), 2u);
}

TEST(QueryBuild, InvalidQueryIsDetectable) {
  Query Q;
  EXPECT_FALSE(Q.valid());
  EXPECT_EQ(Q.str(), "<invalid>");
}
