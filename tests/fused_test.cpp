//===- tests/fused_test.cpp - Static fusion library tests ------*- C++ -*-===//

#include "fused/Fused.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <vector>

using namespace steno::fused;
using std::int64_t;

TEST(FusedSource, Span) {
  std::vector<double> Xs = {1, 2, 3};
  EXPECT_DOUBLE_EQ(from(Xs) | sum(), 6.0);
}

TEST(FusedSource, Range) {
  EXPECT_EQ(range(1, 100) | sum<int64_t>(), 5050);
  EXPECT_EQ(range(5, 0) | count(), 0);
}

TEST(FusedSelect, Maps) {
  std::vector<double> Xs = {1, 2, 3};
  double S = from(Xs) | select([](double X) { return X * X; }) | sum();
  EXPECT_DOUBLE_EQ(S, 14.0);
}

TEST(FusedWhere, Filters) {
  int64_t N = range(0, 10) |
              where([](int64_t X) { return X % 2 == 0; }) | count();
  EXPECT_EQ(N, 5);
}

TEST(FusedPipeline, EvenSquaresPaperExample) {
  auto Out = range(0, 10) |
             where([](int64_t X) { return X % 2 == 0; }) |
             select([](int64_t X) { return X * X; }) |
             toVector<int64_t>();
  EXPECT_EQ(Out, (std::vector<int64_t>{0, 4, 16, 36, 64}));
}

TEST(FusedTake, StopsEarly) {
  int Produced = 0;
  int64_t N = range(0, 1000000) | select([&Produced](int64_t X) {
                ++Produced;
                return X;
              }) |
              take(5) | count();
  EXPECT_EQ(N, 5);
  EXPECT_EQ(Produced, 5) << "early termination propagates to the source";
}

TEST(FusedTake, Zero) { EXPECT_EQ(range(0, 9) | take(0) | count(), 0); }

TEST(FusedSkip, Basic) {
  EXPECT_EQ(range(0, 5) | skip(3) | toVector<int64_t>(),
            (std::vector<int64_t>{3, 4}));
  EXPECT_EQ(range(0, 3) | skip(10) | count(), 0);
}

TEST(FusedTakeWhile, Basic) {
  std::vector<double> Xs = {1, 2, 9, 1};
  EXPECT_EQ(from(Xs) | takeWhile([](double X) { return X < 5; }) | count(),
            2);
}

TEST(FusedSkipWhile, Basic) {
  std::vector<double> Xs = {1, 2, 9, 1};
  EXPECT_EQ(from(Xs) | skipWhile([](double X) { return X < 5; }) | count(),
            2);
}

TEST(FusedSelectMany, CartesianSum) {
  std::vector<double> Ys = {1, 2, 3};
  double Total = range(1, 3) | selectMany([&Ys](int64_t X) {
                   return from(Ys) | select([X](double Y) {
                            return static_cast<double>(X) * Y;
                          });
                 }) |
                 sum();
  // (1+2+3)*(1+2+3) = 36
  EXPECT_DOUBLE_EQ(Total, 36.0);
}

TEST(FusedSelectMany, EarlyExitCrossesNesting) {
  int Produced = 0;
  int64_t N = range(0, 100) | selectMany([&Produced](int64_t) {
                return range(0, 100) | select([&Produced](int64_t Y) {
                         ++Produced;
                         return Y;
                       });
              }) |
              take(7) | count();
  EXPECT_EQ(N, 7);
  EXPECT_LE(Produced, 100 + 7) << "inner loops stop on request";
}

TEST(FusedFold, CustomAggregate) {
  int64_t Product = range(1, 5) | fold(int64_t{1}, [](int64_t A, int64_t X) {
                      return A * X;
                    });
  EXPECT_EQ(Product, 120);
}

TEST(FusedMinMax, WithIdentity) {
  std::vector<double> Xs = {3.5, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(from(Xs) | minWith(1e300), -1.0);
  EXPECT_DOUBLE_EQ(from(Xs) | maxWith(-1e300), 3.5);
}

TEST(FusedForEach, SideEffects) {
  std::vector<int64_t> Seen;
  range(0, 3) | forEach([&Seen](int64_t X) { Seen.push_back(X); });
  EXPECT_EQ(Seen, (std::vector<int64_t>{0, 1, 2}));
}

TEST(FusedGroupByAggregate, HashSink) {
  auto Entries =
      range(0, 10) | groupByAggregate(
                         [](int64_t X) { return X % 3; }, int64_t{0},
                         [](int64_t A, int64_t X) { return A + X; });
  ASSERT_EQ(Entries.size(), 3u);
  EXPECT_EQ(Entries[0].first, 0); // 0 appears first
  EXPECT_EQ(Entries[0].second, 0 + 3 + 6 + 9);
  EXPECT_EQ(Entries[1].second, 1 + 4 + 7);
  EXPECT_EQ(Entries[2].second, 2 + 5 + 8);
}

TEST(FusedGroupByAggregate, DenseSink) {
  auto Slots = range(0, 10) |
               denseGroupByAggregate(
                   3, [](int64_t X) { return X % 3; }, int64_t{0},
                   [](int64_t A, int64_t X) { return A + X; });
  ASSERT_EQ(Slots.size(), 3u);
  EXPECT_EQ(Slots[0], 18);
  EXPECT_EQ(Slots[1], 12);
  EXPECT_EQ(Slots[2], 15);
}

TEST(FusedEarlyExit, Any) {
  int Produced = 0;
  bool Found = range(0, 1000000) | select([&Produced](int64_t X) {
                 ++Produced;
                 return X;
               }) |
               where([](int64_t X) { return X > 10; }) | any();
  EXPECT_TRUE(Found);
  EXPECT_EQ(Produced, 12) << "any() stops at the first match";
  EXPECT_FALSE(range(0, 5) | where([](int64_t X) { return X > 10; }) |
               any());
}

TEST(FusedEarlyExit, All) {
  int Checked = 0;
  bool Ok = range(0, 1000) | all([&Checked](int64_t X) {
              ++Checked;
              return X < 10;
            });
  EXPECT_FALSE(Ok);
  EXPECT_EQ(Checked, 11) << "all() stops at the first counterexample";
  EXPECT_TRUE(range(0, 5) | all([](int64_t X) { return X >= 0; }));
}

TEST(FusedEarlyExit, FirstOr) {
  EXPECT_EQ(range(7, 100) | firstOr(int64_t{-1}), 7);
  EXPECT_EQ(range(0, 0) | firstOr(int64_t{-1}), -1);
  EXPECT_EQ(range(0, 100) | where([](int64_t X) { return X > 41; }) |
                firstOr(int64_t{-1}),
            42);
}

TEST(FusedEquivalence, MatchesHandLoop) {
  std::vector<double> Xs;
  for (int I = 0; I < 10000; ++I)
    Xs.push_back(I * 0.25 - 100);
  double Hand = 0;
  for (double X : Xs)
    if (X > 0)
      Hand += X * X;
  double Fused = from(Xs) | where([](double X) { return X > 0; }) |
                 select([](double X) { return X * X; }) | sum();
  EXPECT_DOUBLE_EQ(Fused, Hand)
      << "fused pipeline is the exact hand-written loop";
}

TEST(FusedEquivalence, DeepChainMatches) {
  std::vector<double> Xs;
  for (int I = 0; I < 1000; ++I)
    Xs.push_back(I * 0.5);
  auto P = from(Xs);
  double Fused = P | select([](double X) { return X + 1; }) |
                 select([](double X) { return X * 2; }) |
                 where([](double X) { return X > 100; }) |
                 select([](double X) { return X - 3; }) | sum();
  double Hand = 0;
  for (double X : Xs) {
    double A = (X + 1) * 2;
    if (A > 100)
      Hand += A - 3;
  }
  EXPECT_DOUBLE_EQ(Fused, Hand);
}
