//===- tests/printer_test.cpp - cpptree source printer tests ---*- C++ -*-===//
//
// Statement-level tests of the C++ source renderer: each statement kind
// must print the exact construct the JIT compiles. (End-to-end
// compilability is covered by the jit differential suite; these pin the
// source shapes.)
//
//===----------------------------------------------------------------------===//

#include "cpptree/Printer.h"
#include "expr/Dsl.h"

#include "gtest/gtest.h"

using namespace steno;
using namespace steno::cpptree;
using namespace steno::expr;
using namespace steno::expr::dsl;

namespace {

std::string printOf(StmtList Body) {
  Program P;
  P.Name = "t";
  P.Body = std::move(Body);
  return printProgram(P);
}

} // namespace

TEST(Printer, ProgramSkeleton) {
  std::string Src = printOf({});
  EXPECT_NE(Src.find("#include \"steno/Rt.h\""), std::string::npos);
  EXPECT_NE(Src.find("extern \"C\" void t(const steno::rt::Captures "
                     "*Caps_,"),
            std::string::npos);
  EXPECT_NE(Src.find("steno::rt::Emitter *Out_"), std::string::npos);
}

TEST(Printer, DeclareAndAssign) {
  std::string Src = printOf(
      {Stmt::declareLocal("a", Type::doubleTy(), E(1.5).node()),
       Stmt::assign("a", (param("a", Type::doubleTy()) + 1.0).node())});
  EXPECT_NE(Src.find("double a = 1.5;"), std::string::npos) << Src;
  EXPECT_NE(Src.find("a = (a + 1.0);"), std::string::npos) << Src;
}

TEST(Printer, PairTypesSpelled) {
  TypeRef PairTy = Type::pairTy(Type::int64Ty(), Type::doubleTy());
  std::string Src = printOf({Stmt::declareLocal(
      "p", PairTy,
      pair(E(1), E(2.0)).node())});
  EXPECT_NE(
      Src.find("steno::rt::Pair<std::int64_t, double> p = "
               "steno::rt::Pair<std::int64_t, double>{INT64_C(1), 2.0};"),
      std::string::npos)
      << Src;
}

TEST(Printer, IfContinueBreak) {
  std::string Src = printOf({Stmt::ifThen(
      E(true).node(), {Stmt::continueStmt(), Stmt::breakStmt()})});
  EXPECT_NE(Src.find("if (true) {"), std::string::npos);
  EXPECT_NE(Src.find("continue;"), std::string::npos);
  EXPECT_NE(Src.find("break;"), std::string::npos);
}

TEST(Printer, SourceLoopHoistsPreamble) {
  LoopInfo L;
  L.Kind = LoopKind::Source;
  L.Src.Kind = query::SourceKind::DoubleArray;
  L.Src.Slot = 2;
  L.IndexVar = "i0";
  L.ElemVar = "e0";
  L.ElemType = Type::doubleTy();
  std::string Src = printOf({Stmt::loop(L)});
  EXPECT_NE(Src.find("const double *src2_d = Caps_->Sources[2].D;"),
            std::string::npos)
      << Src;
  EXPECT_NE(Src.find("for (std::int64_t i0 = 0; i0 < src2_count; ++i0)"),
            std::string::npos)
      << Src;
  EXPECT_NE(Src.find("double e0 = src2_d[i0];"), std::string::npos);
}

TEST(Printer, PointArrayLoopIsStrided) {
  LoopInfo L;
  L.Kind = LoopKind::Source;
  L.Src.Kind = query::SourceKind::PointArray;
  L.Src.Slot = 0;
  L.IndexVar = "i0";
  L.ElemVar = "p0";
  L.ElemType = Type::vecTy();
  std::string Src = printOf({Stmt::loop(L)});
  EXPECT_NE(
      Src.find("steno::rt::VecView p0{src0_d + i0 * src0_dim, src0_dim};"),
      std::string::npos)
      << Src;
}

TEST(Printer, SinkDeclarations) {
  SinkDecl Group;
  Group.Kind = SinkKind::Group;
  SinkDecl Agg;
  Agg.Kind = SinkKind::GroupAgg;
  Agg.AccType = Type::doubleTy();
  SinkDecl Dense = Agg;
  Dense.DenseKeys = E(16).node();
  Dense.DenseSeed = E(0.0).node();
  SinkDecl Vec;
  Vec.Kind = SinkKind::Vec;
  Vec.ElemType = Type::int64Ty();
  std::string Src = printOf(
      {Stmt::declareSink("g", Group), Stmt::declareSink("a", Agg),
       Stmt::declareSink("d", Dense), Stmt::declareSink("v", Vec)});
  EXPECT_NE(Src.find("steno::rt::GroupSink g;"), std::string::npos);
  EXPECT_NE(Src.find("steno::rt::GroupAggSink<double> a;"),
            std::string::npos);
  EXPECT_NE(
      Src.find("steno::rt::DenseAggSink<double> d(INT64_C(16), 0.0);"),
      std::string::npos);
  EXPECT_NE(Src.find("std::vector<std::int64_t> v;"), std::string::npos);
}

TEST(Printer, SortUsesStableSortWithInlinedKey) {
  auto K = param("k", Type::doubleTy());
  std::string Src = printOf({Stmt::sortSinkVec(
      "s", Type::doubleTy(), lambda({K}, -K), false)});
  EXPECT_NE(Src.find("std::stable_sort(s.begin(), s.end(),"),
            std::string::npos)
      << Src;
  EXPECT_NE(Src.find("return (-(A_)) < (-(B_));"), std::string::npos)
      << Src;
}

TEST(Printer, EmitUsesRuntimeHelper) {
  std::string Src = printOf({Stmt::emit(E(1.0).node())});
  EXPECT_NE(Src.find("steno::rt::emitRow(Out_, 1.0);"),
            std::string::npos);
}

TEST(Printer, CaptureAccessByType) {
  StmtList Body;
  Body.push_back(Stmt::declareLocal("a", Type::doubleTy(),
                                    capture(3, Type::doubleTy()).node()));
  Body.push_back(Stmt::declareLocal("b", Type::int64Ty(),
                                    capture(1, Type::int64Ty()).node()));
  Body.push_back(Stmt::declareLocal("c", Type::vecTy(),
                                    capture(0, Type::vecTy()).node()));
  std::string Src = printOf(std::move(Body));
  EXPECT_NE(Src.find("Caps_->Values[3].D"), std::string::npos);
  EXPECT_NE(Src.find("Caps_->Values[1].I"), std::string::npos);
  EXPECT_NE(Src.find("steno::rt::VecView{Caps_->Values[0].VData, "
                     "Caps_->Values[0].VLen}"),
            std::string::npos);
}

TEST(Printer, SlotScanIncludesSinkExprs) {
  SinkDecl Dense;
  Dense.Kind = SinkKind::GroupAgg;
  Dense.AccType = Type::doubleTy();
  Dense.DenseKeys = capture(5, Type::int64Ty()).node();
  Dense.DenseSeed = E(0.0).node();
  Program P;
  P.Body.push_back(Stmt::declareSink("d", Dense));
  SlotUsage Slots = scanSlots(P);
  EXPECT_EQ(Slots.ValueSlots, (std::set<unsigned>{5}));
}
