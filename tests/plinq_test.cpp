//===- tests/plinq_test.cpp - Parallel LINQ tests --------------*- C++ -*-===//

#include "plinq/Plinq.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <cstdint>

using namespace steno;
using namespace steno::plinq;
using std::int64_t;

namespace {

std::vector<double> testData(size_t N, std::uint64_t Seed) {
  support::SplitMix64 Rng(Seed);
  std::vector<double> Out(N);
  for (double &V : Out)
    V = Rng.nextDouble(-10, 10);
  return Out;
}

} // namespace

TEST(PlinqPartitioner, ChunksCoverEverything) {
  std::vector<double> Xs = {0, 1, 2, 3, 4, 5, 6};
  std::vector<linq::Seq<double>> Parts = partitionSpan(Xs.data(), 7, 3);
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0].count(), 3);
  EXPECT_EQ(Parts[1].count(), 2);
  EXPECT_EQ(Parts[2].count(), 2);
  EXPECT_DOUBLE_EQ(Parts[1].first(), 3.0);
}

TEST(PlinqPartitioner, MorePartsThanElementsClampsToCount) {
  // Regression: requesting 4 partitions of a 1-element span used to
  // produce 3 degenerate empty partitions that each paid fan-out cost.
  std::vector<double> Xs = {1.0};
  std::vector<linq::Seq<double>> Parts = partitionSpan(Xs.data(), 1, 4);
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0].count(), 1);
  EXPECT_DOUBLE_EQ(Parts[0].first(), 1.0);
}

TEST(PlinqPartitioner, EmptySpanYieldsOneEmptyPartition) {
  // Count == 0: exactly one empty partition (aggregates still get a
  // seed), never zero and never Parts empties.
  std::vector<linq::Seq<double>> Parts = partitionSpan<double>(nullptr, 0, 8);
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0].count(), 0);
}

TEST(PlinqPartitioner, ZeroPartsClampsToOne) {
  std::vector<double> Xs = {1.0, 2.0, 3.0};
  std::vector<linq::Seq<double>> Parts = partitionSpan(Xs.data(), 3, 0);
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0].count(), 3);
}

TEST(PlinqAgg, SumMatchesSequential) {
  std::vector<double> Xs = testData(1003, 1);
  dryad::ThreadPool Pool(4);
  double Par = asParallel(Pool, Xs).sum();
  double Seq = linq::fromSpan(Xs.data(), Xs.size()).sum();
  EXPECT_NEAR(Par, Seq, 1e-9 * std::abs(Seq))
      << "partial sums reassociate";
}

TEST(PlinqAgg, CountThroughOperators) {
  std::vector<double> Xs = testData(500, 2);
  dryad::ThreadPool Pool(3);
  int64_t Par = asParallel(Pool, Xs)
                    .where([](double X) { return X > 0; })
                    .count();
  int64_t Seq = linq::fromSpan(Xs.data(), Xs.size())
                    .where([](double X) { return X > 0; })
                    .count();
  EXPECT_EQ(Par, Seq);
}

TEST(PlinqAgg, SelectSumPipeline) {
  std::vector<double> Xs = testData(800, 3);
  dryad::ThreadPool Pool(4);
  double Par = asParallel(Pool, Xs)
                   .select([](double X) { return X * X; })
                   .sum();
  double Seq = 0;
  for (double X : Xs)
    Seq += X * X;
  EXPECT_NEAR(Par, Seq, 1e-9 * std::abs(Seq));
}

TEST(PlinqAgg, AggregateWithCombiner) {
  std::vector<double> Xs = testData(600, 4);
  dryad::ThreadPool Pool(4);
  // Count of positives via explicit fold + combine.
  int64_t Par = asParallel(Pool, Xs).aggregate(
      int64_t{0},
      [](int64_t Acc, double X) { return Acc + (X > 0 ? 1 : 0); },
      [](int64_t A, int64_t B) { return A + B; });
  int64_t Seq = linq::fromSpan(Xs.data(), Xs.size())
                    .count([](double X) { return X > 0; });
  EXPECT_EQ(Par, Seq);
}

TEST(PlinqOrder, ToVectorPreservesPartitionOrder) {
  std::vector<double> Xs;
  for (int I = 0; I < 97; ++I)
    Xs.push_back(I);
  dryad::ThreadPool Pool(5);
  std::vector<double> Out =
      asParallel(Pool, Xs).select([](double X) { return X * 2; })
          .toVector();
  ASSERT_EQ(Out.size(), Xs.size());
  for (size_t I = 0; I != Out.size(); ++I)
    EXPECT_DOUBLE_EQ(Out[I], 2.0 * static_cast<double>(I));
}

TEST(PlinqNested, SelectManyAcrossMorsels) {
  std::vector<int64_t> Xs = {1, 2, 3, 4, 5};
  dryad::ThreadPool Pool(2);
  ParSeq<int64_t> P = ParSeq<int64_t>::fromSpan(Pool, Xs.data(), Xs.size());
  int64_t Total =
      P.selectMany([](int64_t X) { return linq::repeat(X, X); }).sum();
  // sum of x*x for x in 1..5 = 55.
  EXPECT_EQ(Total, 55);
}

TEST(PlinqEmpty, EmptyInput) {
  std::vector<double> Xs;
  dryad::ThreadPool Pool(4);
  EXPECT_DOUBLE_EQ(ParSeq<double>::fromSpan(Pool, Xs.data(), 0).sum(),
                   0.0);
  EXPECT_EQ(ParSeq<double>::fromSpan(Pool, Xs.data(), 0).count(), 0);
}
