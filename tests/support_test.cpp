//===- tests/support_test.cpp - support/ unit tests ------------*- C++ -*-===//

#include "support/Random.h"
#include "support/StringUtil.h"
#include "support/TempFile.h"
#include "support/Timing.h"

#include "gtest/gtest.h"

#include <cmath>
#include <set>

using namespace steno::support;

TEST(StrFormat, Basic) {
  EXPECT_EQ(strFormat("x=%d", 42), "x=42");
  EXPECT_EQ(strFormat("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(strFormat("plain"), "plain");
}

TEST(StrFormat, LongOutput) {
  std::string Long(5000, 'y');
  EXPECT_EQ(strFormat("%s", Long.c_str()).size(), 5000u);
}

TEST(Join, Empty) { EXPECT_EQ(join({}, ", "), ""); }

TEST(Join, Single) { EXPECT_EQ(join({"a"}, ", "), "a"); }

TEST(Join, Many) { EXPECT_EQ(join({"a", "b", "c"}, "+"), "a+b+c"); }

TEST(SanitizeIdentifier, PassThrough) {
  EXPECT_EQ(sanitizeIdentifier("good_name42"), "good_name42");
}

TEST(SanitizeIdentifier, ReplacesBadChars) {
  EXPECT_EQ(sanitizeIdentifier("a-b.c d"), "a_b_c_d");
}

TEST(SanitizeIdentifier, LeadingDigit) {
  EXPECT_EQ(sanitizeIdentifier("1abc"), "_1abc");
}

TEST(SanitizeIdentifier, Empty) {
  EXPECT_EQ(sanitizeIdentifier(""), "anon");
}

TEST(DoubleLiteral, Integral) {
  // Must not parse as an int literal in generated code.
  EXPECT_EQ(doubleLiteral(2.0), "2.0");
  EXPECT_EQ(doubleLiteral(0.0), "0.0");
  EXPECT_EQ(doubleLiteral(-3.0), "-3.0");
}

TEST(DoubleLiteral, RoundTrips) {
  for (double V : {0.1, 1.0 / 3.0, 1e300, -2.5e-7, 123456.789}) {
    std::string Lit = doubleLiteral(V);
    EXPECT_EQ(std::stod(Lit), V) << Lit;
  }
}

TEST(DoubleLiteral, NonFinite) {
  EXPECT_NE(doubleLiteral(std::nan("")).find("quiet_NaN"),
            std::string::npos);
  EXPECT_NE(doubleLiteral(INFINITY).find("infinity"), std::string::npos);
  EXPECT_NE(doubleLiteral(-INFINITY).find("-"), std::string::npos);
}

TEST(SplitMix64, Deterministic) {
  SplitMix64 A(7);
  SplitMix64 B(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64, SeedsDiffer) {
  SplitMix64 A(1);
  SplitMix64 B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(SplitMix64, DoubleRange) {
  SplitMix64 Rng(99);
  for (int I = 0; I < 1000; ++I) {
    double V = Rng.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(SplitMix64, DoubleRangeBounds) {
  SplitMix64 Rng(99);
  for (int I = 0; I < 1000; ++I) {
    double V = Rng.nextDouble(-5, 10);
    EXPECT_GE(V, -5.0);
    EXPECT_LT(V, 10.0);
  }
}

TEST(SplitMix64, NextBelow) {
  SplitMix64 Rng(3);
  std::set<std::uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    std::uint64_t V = Rng.nextBelow(10);
    EXPECT_LT(V, 10u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 10u) << "all residues should appear";
}

TEST(SplitMix64, GaussianMoments) {
  SplitMix64 Rng(42);
  double Sum = 0;
  double SumSq = 0;
  const int N = 200000;
  for (int I = 0; I < N; ++I) {
    double G = Rng.nextGaussian();
    Sum += G;
    SumSq += G * G;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.02);
  EXPECT_NEAR(Var, 1.0, 0.03);
}

TEST(WallTimer, MeasuresSomething) {
  WallTimer T;
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + I;
  EXPECT_GE(T.seconds(), 0.0);
  EXPECT_GE(T.millis(), T.seconds()); // ms >= s for any elapsed < 1000s
}

TEST(WallTimer, ResetRestarts) {
  WallTimer T;
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + I;
  double Before = T.seconds();
  T.reset();
  EXPECT_LE(T.seconds(), Before + 1.0);
}

TEST(TempFile, WriteAndRead) {
  std::string Path = processTempDir() + "/support_test.txt";
  writeFile(Path, "hello\nworld");
  EXPECT_EQ(readFileOrEmpty(Path), "hello\nworld");
}

TEST(TempFile, ReadMissingIsEmpty) {
  EXPECT_EQ(readFileOrEmpty("/no/such/file/at/all"), "");
}

TEST(TempFile, OverwriteReplaces) {
  std::string Path = processTempDir() + "/support_test2.txt";
  writeFile(Path, "first");
  writeFile(Path, "2nd");
  EXPECT_EQ(readFileOrEmpty(Path), "2nd");
}
