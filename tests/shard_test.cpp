//===- tests/shard_test.cpp - Sharded serving & distributed Agg* -*- C++ -*-===//
//
// Coverage for the shard layer (shard/Shard.h, serve partial execution,
// the shard wire framing): the §6 decomposition unit-tested against the
// single-process reference for every combine kind (Fold/Count sums,
// MergeByKey groups, MergeSorted orders, Concat arrays), the
// non-associative fallback, empty- and single-element-shard edge cases,
// the exact-value wire codec, pexec over a socketpair, the router end to
// end over in-process shards (via the RouterOptions::Connect seam),
// retry-after-connection-death, and the full fuzz corpus replayed
// through a 3-shard router differentially against direct execution.
//
//===----------------------------------------------------------------------===//

#include "dryad/Dist.h"
#include "dryad/ThreadPool.h"
#include "fuzz/Diff.h"
#include "serve/Serve.h"
#include "serve/Wire.h"
#include "shard/Shard.h"
#include "steno/RefExec.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "gtest/gtest.h"

using namespace steno;
using namespace steno::serve;

namespace {

//===--------------------------------------------------------------------===//
// Helpers
//===--------------------------------------------------------------------===//

fuzz::QuerySpec sumSqSpec(std::uint32_t Count = 96, std::uint64_t Seed = 7) {
  fuzz::QuerySpec S;
  S.Sources.push_back(
      {0, fuzz::ElemTy::Double, fuzz::DataClass::Uniform, Count, Seed});
  fuzz::OpSpec Sel;
  Sel.K = fuzz::OpK::Select;
  Sel.T = fuzz::TransTmpl::Square;
  fuzz::OpSpec Agg;
  Agg.K = fuzz::OpK::Agg;
  Agg.A = fuzz::AggKind::Sum;
  S.Ops = {Sel, Agg};
  return S;
}

fuzz::QuerySpec whereCountSpec() {
  fuzz::QuerySpec S;
  S.Sources.push_back(
      {0, fuzz::ElemTy::Double, fuzz::DataClass::Skewed, 96, 21});
  fuzz::OpSpec Wh;
  Wh.K = fuzz::OpK::Where;
  Wh.P = fuzz::PredTmpl::GtC;
  Wh.DArg = 5.0;
  fuzz::OpSpec Agg;
  Agg.K = fuzz::OpK::Agg;
  Agg.A = fuzz::AggKind::Count;
  S.Ops = {Wh, Agg};
  return S;
}

fuzz::QuerySpec groupSpec() {
  fuzz::QuerySpec S;
  S.Sources.push_back(
      {0, fuzz::ElemTy::Double, fuzz::DataClass::Skewed, 96, 25});
  fuzz::OpSpec GA;
  GA.K = fuzz::OpK::GroupAgg;
  GA.Key = fuzz::KeyTmpl::Bucket;
  GA.DArg = 25.0;
  GA.G = fuzz::GroupStep::Sum;
  S.Ops = {GA};
  return S;
}

fuzz::QuerySpec orderSpec() {
  // A *terminal* OrderBy: the §6 planner turns exactly this shape into
  // the distributed sort (per-shard local sorts + MergeSorted Agg*); an
  // OrderBy followed by ToArray is a mid-chain sink it refuses.
  fuzz::QuerySpec S;
  S.Sources.push_back(
      {0, fuzz::ElemTy::Double, fuzz::DataClass::Uniform, 64, 23});
  fuzz::OpSpec Ord;
  Ord.K = fuzz::OpK::OrderBy;
  Ord.Key = fuzz::KeyTmpl::Abs;
  S.Ops = {Ord};
  return S;
}

fuzz::QuerySpec selectArraySpec(std::uint32_t Count = 64) {
  fuzz::QuerySpec S;
  S.Sources.push_back(
      {0, fuzz::ElemTy::Double, fuzz::DataClass::Uniform, Count, 29});
  fuzz::OpSpec Sel;
  Sel.K = fuzz::OpK::Select;
  Sel.T = fuzz::TransTmpl::Square;
  fuzz::OpSpec Arr;
  Arr.K = fuzz::OpK::ToArray;
  S.Ops = {Sel, Arr};
  return S;
}

fuzz::QuerySpec nonAssocSpec() {
  fuzz::QuerySpec S;
  S.Sources.push_back(
      {0, fuzz::ElemTy::Int64, fuzz::DataClass::Uniform, 64, 31});
  fuzz::OpSpec Agg;
  Agg.K = fuzz::OpK::Agg;
  Agg.A = fuzz::AggKind::FoldNonAssoc;
  S.Ops = {Agg};
  return S;
}

std::string specText(const fuzz::QuerySpec &S) {
  return fuzz::serializeSpec(S);
}

bool resultsMatch(const QueryResult &Got, const QueryResult &Want) {
  if (Got.isScalar() != Want.isScalar() ||
      Got.rows().size() != Want.rows().size())
    return false;
  for (std::size_t I = 0; I != Got.rows().size(); ++I)
    if (!fuzz::fuzzValueNear(Got.rows()[I], Want.rows()[I]))
      return false;
  return true;
}

QueryResult reference(const PreparedHandle &P) {
  return runReference(P->query(), P->bindings());
}

ServeOptions interpOnly() {
  ServeOptions O;
  O.BackgroundRecompile = false;
  return O;
}

constexpr std::chrono::milliseconds kDeadline{5000};

/// Range-partitions [0, Count) into Parts contiguous ranges with the
/// same Base/Extra arithmetic as the router (first Count%Parts shards
/// get one extra element).
std::vector<std::pair<std::size_t, std::size_t>>
partitionRanges(std::size_t Count, unsigned Parts) {
  std::vector<std::pair<std::size_t, std::size_t>> R;
  std::size_t Base = Count / Parts, Extra = Count % Parts, Begin = 0;
  for (unsigned I = 0; I != Parts; ++I) {
    std::size_t Len = Base + (I < Extra ? 1 : 0);
    R.emplace_back(Begin, Len);
    Begin += Len;
  }
  return R;
}

/// The decomposition oracle: runs the per-shard vertex over each range
/// via executePartial, combines with the router's Agg* stage, and
/// compares against the single-process reference.
void expectDecomposes(const fuzz::QuerySpec &Spec, unsigned Parts) {
  QueryService Svc(interpOnly());
  std::string Err;
  PreparedHandle P = Svc.prepare(specText(Spec), &Err);
  ASSERT_TRUE(P) << Err;
  const PreparedQuery::PartialState *PS = Svc.preparePartial(P);
  ASSERT_TRUE(PS);
  ASSERT_TRUE(PS->Splittable) << PS->WhyNot;

  std::size_t Count = static_cast<std::size_t>(
      P->bindings().sources()[0].Count);
  std::vector<QueryResult> Partials;
  for (auto [Begin, Len] : partitionRanges(Count, Parts)) {
    Response R = Svc.executePartial(P, Begin, Len, kDeadline);
    ASSERT_EQ(R.St, Status::Ok) << R.Message;
    Partials.push_back(std::move(R.Result));
  }

  dryad::ThreadPool Pool(2);
  QueryResult Combined = dryad::combineParallelPartials(
      Pool, PS->Plan, PS->Cert, std::move(Partials));
  EXPECT_TRUE(resultsMatch(Combined, reference(P)));

  Response Whole = Svc.execute(P, kDeadline);
  ASSERT_EQ(Whole.St, Status::Ok);
  EXPECT_TRUE(resultsMatch(Combined, Whole.Result));
}

//===--------------------------------------------------------------------===//
// §6 decomposition: per-shard partials + Agg* combine vs the reference
//===--------------------------------------------------------------------===//

TEST(ShardDecomp, SumPartialsAddUp) {
  // Hand-check the Agg* stage for the simplest combiner: the combined
  // scalar must equal the arithmetic sum of the per-shard partials.
  QueryService Svc(interpOnly());
  std::string Err;
  PreparedHandle P = Svc.prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(P) << Err;
  const PreparedQuery::PartialState *PS = Svc.preparePartial(P);
  ASSERT_TRUE(PS && PS->Splittable) << (PS ? PS->WhyNot : "null state");

  std::vector<QueryResult> Partials;
  double HandSum = 0;
  for (auto [Begin, Len] : partitionRanges(96, 3)) {
    Response R = Svc.executePartial(P, Begin, Len, kDeadline);
    ASSERT_EQ(R.St, Status::Ok) << R.Message;
    ASSERT_TRUE(R.Result.isScalar());
    HandSum += R.Result.scalarValue().asNumericDouble();
    Partials.push_back(std::move(R.Result));
  }
  dryad::ThreadPool Pool(2);
  QueryResult Combined = dryad::combineParallelPartials(
      Pool, PS->Plan, PS->Cert, std::move(Partials));
  ASSERT_TRUE(Combined.isScalar());
  double C = Combined.scalarValue().asNumericDouble();
  EXPECT_NEAR(C, HandSum, 1e-9 * (std::abs(HandSum) + 1));
  EXPECT_TRUE(resultsMatch(Combined, reference(P)));
}

TEST(ShardDecomp, FoldSumAcrossThreeShards) {
  expectDecomposes(sumSqSpec(), 3);
}

TEST(ShardDecomp, FilteredCountAcrossFourShards) {
  expectDecomposes(whereCountSpec(), 4);
}

TEST(ShardDecomp, GroupMergeByKeyAcrossThreeShards) {
  expectDecomposes(groupSpec(), 3);
}

TEST(ShardDecomp, OrderByMergeSortedAcrossThreeShards) {
  expectDecomposes(orderSpec(), 3);
}

TEST(ShardDecomp, ToArrayConcatAcrossThreeShards) {
  expectDecomposes(selectArraySpec(), 3);
}

TEST(ShardDecomp, EmptyShardsProduceIdentityPartials) {
  // Two elements across four shards: two shards run Len == 0 and must
  // contribute the identity partial.
  expectDecomposes(sumSqSpec(2, 41), 4);
  expectDecomposes(selectArraySpec(2), 4);
}

TEST(ShardDecomp, SingleElementShards) {
  expectDecomposes(sumSqSpec(3, 43), 3);
}

TEST(ShardDecomp, NonAssociativeFoldRefusesTheSplit) {
  QueryService Svc(interpOnly());
  std::string Err;
  PreparedHandle P = Svc.prepare(specText(nonAssocSpec()), &Err);
  ASSERT_TRUE(P) << Err;
  const PreparedQuery::PartialState *PS = Svc.preparePartial(P);
  ASSERT_TRUE(PS);
  EXPECT_FALSE(PS->Splittable);
  EXPECT_FALSE(PS->WhyNot.empty());

  Response R = Svc.executePartial(P, 0, 8, kDeadline);
  EXPECT_EQ(R.St, Status::Error);
  EXPECT_NE(R.Message.find("not splittable"), std::string::npos)
      << R.Message;
}

TEST(ShardDecomp, OutOfBoundsRangeErrors) {
  QueryService Svc(interpOnly());
  std::string Err;
  PreparedHandle P = Svc.prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(P) << Err;
  Response R = Svc.executePartial(P, 90, 100, kDeadline);
  EXPECT_EQ(R.St, Status::Error);
  EXPECT_NE(R.Message.find("out of bounds"), std::string::npos)
      << R.Message;
}

//===--------------------------------------------------------------------===//
// Exact-value wire codec
//===--------------------------------------------------------------------===//

void expectRoundTrip(const expr::Value &V) {
  std::string Enc = wireValue(V);
  expr::Value Out;
  std::deque<std::vector<double>> Arena;
  std::string Err;
  ASSERT_TRUE(parseWireValue(Enc, Out, Arena, &Err)) << Enc << ": " << Err;
  EXPECT_TRUE(Out == V) << Enc;
}

TEST(ShardWire, ValueCodecRoundTripsExactly) {
  expectRoundTrip(expr::Value(true));
  expectRoundTrip(expr::Value(false));
  expectRoundTrip(expr::Value(std::int64_t(0)));
  expectRoundTrip(expr::Value(std::numeric_limits<std::int64_t>::min()));
  expectRoundTrip(expr::Value(std::numeric_limits<std::int64_t>::max()));
  expectRoundTrip(expr::Value(0.1));
  expectRoundTrip(expr::Value(-0.0));
  expectRoundTrip(expr::Value(5e-324));  // min subnormal
  expectRoundTrip(expr::Value(1e308));
  expectRoundTrip(expr::Value(std::numeric_limits<double>::infinity()));
  expectRoundTrip(expr::Value(-std::numeric_limits<double>::infinity()));
  expectRoundTrip(expr::Value::makePair(
      expr::Value(1.5), expr::Value::makePair(expr::Value(std::int64_t(-7)),
                                              expr::Value(true))));
}

TEST(ShardWire, ValueCodecPreservesNegativeZeroSign) {
  expr::Value Out;
  std::deque<std::vector<double>> Arena;
  ASSERT_TRUE(parseWireValue(wireValue(expr::Value(-0.0)), Out, Arena));
  ASSERT_TRUE(Out.isDouble());
  EXPECT_TRUE(std::signbit(Out.asDouble()));
}

TEST(ShardWire, ValueCodecRoundTripsNan) {
  expr::Value Out;
  std::deque<std::vector<double>> Arena;
  ASSERT_TRUE(parseWireValue(
      wireValue(expr::Value(std::numeric_limits<double>::quiet_NaN())), Out,
      Arena));
  ASSERT_TRUE(Out.isDouble());
  EXPECT_TRUE(std::isnan(Out.asDouble()));
}

TEST(ShardWire, ValueCodecRoundTripsVecs) {
  const double Data[] = {0.1, -0.0, 1e308, 5e-324};
  expectRoundTrip(expr::Value(expr::VecView{Data, 4}));
  expectRoundTrip(expr::Value(expr::VecView{nullptr, 0}));
}

TEST(ShardWire, ValueCodecRejectsGarbage) {
  expr::Value Out;
  std::deque<std::vector<double>> Arena;
  EXPECT_FALSE(parseWireValue("q 1", Out, Arena));
  EXPECT_FALSE(parseWireValue("i ", Out, Arena));
  EXPECT_FALSE(parseWireValue("d 1.0 trailing", Out, Arena));
  EXPECT_FALSE(parseWireValue("v 3 0x1p+0", Out, Arena));
}

//===--------------------------------------------------------------------===//
// pexec over a socketpair
//===--------------------------------------------------------------------===//

TEST(ShardWire, PexecPartialsCombineToTheReference) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  QueryService Svc(interpOnly());
  std::thread Server([&] { serveConnection(Svc, Fds[0]); });
  WireClient Client(Fds[1]);

  std::uint64_t H = 99;
  std::string Err;
  ASSERT_TRUE(Client.prepare(specText(groupSpec()), H, Err)) << Err;

  // The same spec prepared in-process shares the cached handle, so its
  // PartialState carries the Plan/Cert the router would use.
  PreparedHandle P = Svc.prepare(specText(groupSpec()), &Err);
  ASSERT_TRUE(P) << Err;
  const PreparedQuery::PartialState *PS = Svc.preparePartial(P);
  ASSERT_TRUE(PS && PS->Splittable);

  std::vector<QueryResult> Partials;
  std::uint64_t Rid = 100;
  for (auto [Begin, Len] : partitionRanges(96, 3)) {
    WireClient::PartialResult R;
    ASSERT_TRUE(Client.pexec(H, Begin, Len, 5000, Rid++, R));
    ASSERT_EQ(R.St, Status::Ok) << R.Error;
    Partials.push_back(std::move(R.Result));
  }
  dryad::ThreadPool Pool(2);
  QueryResult Combined = dryad::combineParallelPartials(
      Pool, PS->Plan, PS->Cert, std::move(Partials));
  EXPECT_TRUE(resultsMatch(Combined, reference(P)));

  // Out-of-range and unsplittable sub-requests answer error frames on a
  // healthy connection.
  WireClient::PartialResult Bad;
  ASSERT_TRUE(Client.pexec(H, 90, 100, 5000, 777, Bad));
  EXPECT_EQ(Bad.St, Status::Error);

  std::uint64_t HNa = 99;
  ASSERT_TRUE(Client.prepare(specText(nonAssocSpec()), HNa, Err)) << Err;
  ASSERT_TRUE(Client.pexec(HNa, 0, 8, 5000, 778, Bad));
  EXPECT_EQ(Bad.St, Status::Error);
  EXPECT_NE(Bad.Error.find("not splittable"), std::string::npos)
      << Bad.Error;

  // xexec: the whole query with exact values, for fallback routing.
  WireClient::PartialResult Whole;
  ASSERT_TRUE(Client.xexec(HNa, 5000, 779, Whole));
  ASSERT_EQ(Whole.St, Status::Ok) << Whole.Error;
  PreparedHandle PNa = Svc.prepare(specText(nonAssocSpec()), &Err);
  ASSERT_TRUE(PNa) << Err;
  EXPECT_TRUE(resultsMatch(Whole.Result, reference(PNa)));

  Client.quit();
  Server.join();
  ::close(Fds[0]);
  ::close(Fds[1]);
}

//===--------------------------------------------------------------------===//
// Router end to end over in-process shards
//===--------------------------------------------------------------------===//

/// An in-process shard fleet: one interpreter-only QueryService per
/// shard, served over socketpairs minted by the RouterOptions::Connect
/// seam. shutdown() joins the server threads — call it after the router
/// is destroyed (its connection pool owns the client fds; closing them
/// EOFs the servers).
struct InProcessFleet {
  explicit InProcessFleet(unsigned N) {
    for (unsigned I = 0; I != N; ++I)
      Services.push_back(std::make_unique<QueryService>(interpOnly()));
  }

  shard::RouterOptions options() {
    shard::RouterOptions O;
    for (std::size_t I = 0; I != Services.size(); ++I)
      O.ShardSockets.push_back("inproc-" + std::to_string(I));
    O.Connect = [this](unsigned Shard) { return connect(Shard); };
    O.RetryBudget = std::chrono::milliseconds(3000);
    O.RetryBackoff = std::chrono::milliseconds(5);
    return O;
  }

  int connect(unsigned Shard) {
    int Fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0)
      return -1;
    QueryService &Svc = *Services[Shard];
    std::lock_guard<std::mutex> Lock(M);
    ServerFds.push_back(Fds[0]);
    Threads.emplace_back([&Svc, Fd = Fds[0]] {
      serveConnection(Svc, Fd);
      ::close(Fd);
    });
    return Fds[1];
  }

  /// Half-closes every server-side fd, killing all live connections the
  /// way a SIGKILLed worker would.
  void killConnections() {
    std::lock_guard<std::mutex> Lock(M);
    for (int Fd : ServerFds)
      ::shutdown(Fd, SHUT_RDWR);
    ServerFds.clear();
  }

  void shutdown() {
    killConnections();
    std::lock_guard<std::mutex> Lock(M);
    for (std::thread &T : Threads)
      T.join();
    Threads.clear();
  }

  std::vector<std::unique_ptr<QueryService>> Services;
  std::mutex M;
  std::vector<int> ServerFds;
  std::vector<std::thread> Threads;
};

/// The direct-execution oracle for a spec text.
QueryResult directResult(const std::string &Text) {
  fuzz::QuerySpec Spec;
  std::string Err;
  EXPECT_TRUE(fuzz::parseSpec(Text, Spec, &Err)) << Err;
  fuzz::BuiltQuery B;
  EXPECT_TRUE(fuzz::buildSpec(Spec, B, &Err)) << Err;
  return runReference(B.Q, B.B);
}

TEST(ShardRouter, SplitAndFallbackEndToEnd) {
  InProcessFleet Fleet(3);
  auto Router = std::make_unique<shard::ShardRouter>(Fleet.options());

  std::string Err;
  shard::RoutedHandle HSum = Router->prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(HSum) << Err;
  EXPECT_TRUE(HSum->Split) << HSum->WhyNot;

  shard::RoutedHandle HNa = Router->prepare(specText(nonAssocSpec()), &Err);
  ASSERT_TRUE(HNa) << Err;
  EXPECT_FALSE(HNa->Split);
  EXPECT_LT(HNa->HomeShard, 3u);

  // Re-preparing the same text returns the memoized handle.
  EXPECT_EQ(Router->prepare(specText(sumSqSpec()), &Err).get(), HSum.get());

  serve::Response RSum = Router->execute(HSum);
  ASSERT_EQ(RSum.St, Status::Ok) << RSum.Message;
  EXPECT_NE(RSum.Id, 0u);
  EXPECT_TRUE(resultsMatch(RSum.Result, directResult(HSum->SpecText)));

  serve::Response RNa = Router->execute(HNa);
  ASSERT_EQ(RNa.St, Status::Ok) << RNa.Message;
  EXPECT_TRUE(resultsMatch(RNa.Result, directResult(HNa->SpecText)));

  shard::ShardRouter::Stats S = Router->stats();
  EXPECT_EQ(S.SplitExecs, 1u);
  EXPECT_EQ(S.FallbackExecs, 1u);
  EXPECT_GE(S.NonAssocFallbacks, 1u);
  EXPECT_EQ(S.Ok, 2u);
  EXPECT_EQ(S.SubSent, 4u); // 3 pexec + 1 xexec

  std::string Json = Router->statsJson();
  EXPECT_NE(Json.find("\"split_execs\":1"), std::string::npos) << Json;

  Router.reset();
  Fleet.shutdown();
}

TEST(ShardRouter, SingleShardFleetRoutesWhole) {
  InProcessFleet Fleet(1);
  auto Router = std::make_unique<shard::ShardRouter>(Fleet.options());
  std::string Err;
  shard::RoutedHandle H = Router->prepare(specText(sumSqSpec()), &Err);
  ASSERT_TRUE(H) << Err;
  EXPECT_FALSE(H->Split);
  EXPECT_EQ(H->HomeShard, 0u);
  serve::Response R = Router->execute(H);
  ASSERT_EQ(R.St, Status::Ok) << R.Message;
  EXPECT_TRUE(resultsMatch(R.Result, directResult(H->SpecText)));
  Router.reset();
  Fleet.shutdown();
}

TEST(ShardRouter, RetriesAcrossConnectionDeathExactlyOnce) {
  InProcessFleet Fleet(2);
  auto Router = std::make_unique<shard::ShardRouter>(Fleet.options());
  std::string Err;
  shard::RoutedHandle H = Router->prepare(specText(groupSpec()), &Err);
  ASSERT_TRUE(H) << Err;
  ASSERT_TRUE(H->Split) << H->WhyNot;

  serve::Response R1 = Router->execute(H);
  ASSERT_EQ(R1.St, Status::Ok) << R1.Message;

  // Kill every live connection: the next execute must transparently
  // reconnect, re-prepare (handles are connection-local), retry, and
  // still answer exactly once.
  Fleet.killConnections();
  serve::Response R2 = Router->execute(H);
  ASSERT_EQ(R2.St, Status::Ok) << R2.Message;
  EXPECT_NE(R2.Id, R1.Id);
  EXPECT_TRUE(resultsMatch(R2.Result, directResult(H->SpecText)));

  shard::ShardRouter::Stats S = Router->stats();
  EXPECT_GE(S.Deaths, 1u);
  EXPECT_GE(S.Retries, 1u);
  EXPECT_GE(S.Reprepares, 1u);
  EXPECT_EQ(S.Ok, 2u);
  EXPECT_EQ(S.Errors, 0u);
  EXPECT_EQ(S.Timeouts, 0u);

  Router.reset();
  Fleet.shutdown();
}

//===--------------------------------------------------------------------===//
// Corpus replay: sharded vs direct, differentially
//===--------------------------------------------------------------------===//

TEST(ShardCorpus, EveryReproducerMatchesDirectExecution) {
  namespace fs = std::filesystem;
  std::string Dir = std::string(STENO_TESTS_SRC_DIR) + "/fuzz_corpus";
  ASSERT_TRUE(fs::exists(Dir));
  InProcessFleet Fleet(3);
  auto Router = std::make_unique<shard::ShardRouter>(Fleet.options());
  unsigned Replayed = 0, Split = 0;
  for (const auto &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".fuzzspec")
      continue;
    std::ifstream In(Entry.path());
    std::stringstream Ss;
    Ss << In.rdbuf();
    std::string Text = Ss.str(), Err;
    shard::RoutedHandle H = Router->prepare(Text, &Err);
    ASSERT_TRUE(H) << Entry.path() << ": " << Err;
    Split += H->Split;
    serve::Response R = Router->execute(H);
    ASSERT_EQ(R.St, Status::Ok) << Entry.path() << ": " << R.Message;
    EXPECT_TRUE(resultsMatch(R.Result, directResult(Text))) << Entry.path();
    ++Replayed;
  }
  EXPECT_GE(Replayed, 17u) << "corpus went missing";
  EXPECT_GE(Split, 1u) << "no corpus spec exercised the split path";
  shard::ShardRouter::Stats S = Router->stats();
  EXPECT_EQ(S.Errors, 0u);
  EXPECT_EQ(S.Timeouts, 0u);
  Router.reset();
  Fleet.shutdown();
}

} // namespace
