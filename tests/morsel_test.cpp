//===- tests/morsel_test.cpp - Work-stealing scheduler tests ---*- C++ -*-===//
//
// Covers the morsel scheduler at three layers: the WorkStealDeque
// primitive, morselFor's exactly-once/ordering contracts (including the
// forced-stealing stress that the TSan CI job runs), and the morselized
// DistributedQuery::runParallel path against the sequential reference
// for every combine kind.
//
//===----------------------------------------------------------------------===//

#include "QueryTestUtil.h"
#include "dryad/Dist.h"
#include "dryad/Morsel.h"
#include "dryad/ThreadPool.h"
#include "plinq/Plinq.h"
#include "steno/RefExec.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

using namespace steno;
using namespace steno::dryad;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {
E x() { return param("x", Type::doubleTy()); }
} // namespace

//===--------------------------------------------------------------------===//
// WorkStealDeque
//===--------------------------------------------------------------------===//

TEST(MorselDeque, OwnerPopIsLifo) {
  WorkStealDeque D(8);
  EXPECT_TRUE(D.push(1));
  EXPECT_TRUE(D.push(2));
  EXPECT_TRUE(D.push(3));
  std::uint64_t V = 0;
  ASSERT_TRUE(D.pop(V));
  EXPECT_EQ(V, 3u);
  ASSERT_TRUE(D.pop(V));
  EXPECT_EQ(V, 2u);
  ASSERT_TRUE(D.pop(V));
  EXPECT_EQ(V, 1u);
  EXPECT_FALSE(D.pop(V));
}

TEST(MorselDeque, ThiefStealIsFifo) {
  WorkStealDeque D(8);
  D.push(1);
  D.push(2);
  D.push(3);
  std::uint64_t V = 0;
  ASSERT_TRUE(D.steal(V));
  EXPECT_EQ(V, 1u) << "thieves take the oldest (largest) range";
  ASSERT_TRUE(D.steal(V));
  EXPECT_EQ(V, 2u);
  // Owner gets the remaining newest.
  ASSERT_TRUE(D.pop(V));
  EXPECT_EQ(V, 3u);
  EXPECT_FALSE(D.steal(V));
}

TEST(MorselDeque, PushReportsOverflow) {
  WorkStealDeque D(4);
  for (std::uint64_t I = 0; I != 4; ++I)
    EXPECT_TRUE(D.push(I));
  EXPECT_FALSE(D.push(99)) << "full deque must refuse, not grow";
  // Draining one slot makes room again.
  std::uint64_t V = 0;
  ASSERT_TRUE(D.steal(V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(D.push(99));
}

TEST(MorselDeque, ConcurrentDrainIsExactlyOnce) {
  // One owner popping, three thieves stealing; every pushed value must
  // surface exactly once. (This test is in the TSan CI target.)
  const std::uint64_t N = 20000;
  WorkStealDeque D(1 << 15);
  std::vector<std::atomic<int>> Seen(N);
  std::atomic<std::uint64_t> Drained{0};
  std::atomic<bool> Done{false};

  std::vector<std::thread> Thieves;
  for (int T = 0; T != 3; ++T)
    Thieves.emplace_back([&] {
      std::uint64_t V;
      while (!Done.load(std::memory_order_acquire)) {
        if (D.steal(V)) {
          Seen[V].fetch_add(1);
          Drained.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });

  std::uint64_t V;
  for (std::uint64_t I = 0; I != N; ++I) {
    while (!D.push(I)) { // owner chews its own backlog when full
      if (D.pop(V)) {
        Seen[V].fetch_add(1);
        Drained.fetch_add(1);
      }
    }
    if ((I & 7) == 0 && D.pop(V)) {
      Seen[V].fetch_add(1);
      Drained.fetch_add(1);
    }
  }
  while (D.pop(V)) {
    Seen[V].fetch_add(1);
    Drained.fetch_add(1);
  }
  while (Drained.load() != N)
    std::this_thread::yield();
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();

  for (std::uint64_t I = 0; I != N; ++I)
    ASSERT_EQ(Seen[I].load(), 1) << "value " << I;
}

//===--------------------------------------------------------------------===//
// morselFor
//===--------------------------------------------------------------------===//

namespace {

/// Tiny-morsel options: maximum scheduling churn, guaranteed multi-morsel
/// dispatch even for small test inputs.
MorselOptions tinyMorsels() {
  MorselOptions O;
  O.MinMorsel = 8;
  O.InitialMorsel = 8;
  O.MaxMorsel = 32;
  O.InlineBelow = 0; // never short-circuit; we want the full scheduler
  return O;
}

} // namespace

TEST(MorselFor, CoversEveryElementExactlyOnce) {
  const std::size_t N = 50000;
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(N);
  MorselStats S = morselFor(Pool, N, tinyMorsels(),
                            [&Hits](std::size_t B, std::size_t E, unsigned) {
                              for (std::size_t I = B; I != E; ++I)
                                Hits[I].fetch_add(1,
                                                  std::memory_order_relaxed);
                            });
  for (std::size_t I = 0; I != N; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "element " << I;
  EXPECT_GT(S.Morsels, Pool.workerCount())
      << "tiny morsels must dispatch more than one range per worker";
}

TEST(MorselFor, RangesAreContiguousAndWorkerIdsDense) {
  const std::size_t N = 10000;
  ThreadPool Pool(3);
  std::atomic<std::size_t> Total{0};
  std::atomic<bool> BadWorker{false};
  unsigned Workers = Pool.workerCount();
  morselFor(Pool, N, tinyMorsels(),
            [&](std::size_t B, std::size_t E, unsigned W) {
              if (W >= Workers)
                BadWorker.store(true);
              if (E > B)
                Total.fetch_add(E - B);
            });
  EXPECT_EQ(Total.load(), N);
  EXPECT_FALSE(BadWorker.load());
}

TEST(MorselFor, EmptyInputNeverInvokesBody) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  MorselStats S = morselFor(Pool, 0, MorselOptions(),
                            [&Calls](std::size_t, std::size_t, unsigned) {
                              ++Calls;
                            });
  EXPECT_EQ(Calls.load(), 0) << "Count==0 pays no fan-out at all";
  EXPECT_EQ(S.Morsels, 0u);
}

TEST(MorselFor, SmallInputRunsInline) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  MorselOptions O; // default InlineBelow = 2048
  MorselStats S = morselFor(Pool, 100, O,
                            [&Calls](std::size_t B, std::size_t E,
                                     unsigned W) {
                              ++Calls;
                              EXPECT_EQ(B, 0u);
                              EXPECT_EQ(E, 100u);
                              EXPECT_EQ(W, 0u);
                            });
  EXPECT_EQ(Calls.load(), 1);
  EXPECT_TRUE(S.RanInline);
  EXPECT_EQ(S.Steals, 0u);
}

TEST(MorselFor, StealingRebalancesSkewedWork) {
  // Forced stealing: the first shard's elements are pathologically slow,
  // so the other workers drain their own shards and then MUST steal from
  // worker 0's deque to finish. (TSan CI target: this is the
  // owner-pop-vs-steal race, exercised on purpose.)
  const std::size_t N = 4096;
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(N);
  MorselOptions O = tinyMorsels();
  MorselStats S = morselFor(
      Pool, N, O, [&Hits, N](std::size_t B, std::size_t E, unsigned) {
        for (std::size_t I = B; I != E; ++I) {
          if (I < N / 8) // heavy head: ~50us per element
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          Hits[I].fetch_add(1, std::memory_order_relaxed);
        }
      });
  for (std::size_t I = 0; I != N; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "element " << I;
  if (Pool.workerCount() > 1) {
    EXPECT_GT(S.Steals, 0u)
        << "skewed shard 0 must shed work to idle workers";
  }
}

TEST(MorselFor, HugeCountWindows) {
  // Counts beyond the 2^31 packing window run as multiple windows; use a
  // body cheap enough to make 3 * 2^31 elements feasible (the body sees
  // ranges, not elements).
  const std::size_t Window = std::size_t(1) << 31;
  const std::size_t N = 3 * Window + 12345;
  ThreadPool Pool(2);
  MorselOptions O;
  O.MaxMorsel = std::size_t(1) << 17;
  std::atomic<std::uint64_t> Total{0};
  std::atomic<std::uint64_t> MaxEnd{0};
  morselFor(Pool, N, O,
            [&](std::size_t B, std::size_t E, unsigned) {
              Total.fetch_add(E - B, std::memory_order_relaxed);
              std::uint64_t Prev = MaxEnd.load(std::memory_order_relaxed);
              while (
                  Prev < E &&
                  !MaxEnd.compare_exchange_weak(Prev, E,
                                                std::memory_order_relaxed))
                ;
            });
  EXPECT_EQ(Total.load(), N);
  EXPECT_EQ(MaxEnd.load(), N) << "offsets must span the full index space";
}

//===--------------------------------------------------------------------===//
// Determinism: AsOrdered reassembly under stealing
//===--------------------------------------------------------------------===//

TEST(MorselOrder, ToVectorMatchesSequentialUnderTinyMorsels) {
  std::vector<double> Xs(9973);
  support::SplitMix64 Rng(21);
  for (double &V : Xs)
    V = Rng.nextDouble(-100, 100);

  std::vector<double> Seq = linq::fromSpan(Xs.data(), Xs.size())
                                .where([](double X) { return X > 0; })
                                .select([](double X) { return X * 3.0; })
                                .toVector();

  for (int Round = 0; Round != 5; ++Round) {
    ThreadPool Pool(4);
    std::vector<double> Par =
        plinq::asParallel(Pool, Xs)
            .withMorselOptions(tinyMorsels())
            .where([](double X) { return X > 0; })
            .select([](double X) { return X * 3.0; })
            .toVector();
    ASSERT_EQ(Par.size(), Seq.size()) << "round " << Round;
    for (std::size_t I = 0; I != Seq.size(); ++I)
      ASSERT_DOUBLE_EQ(Par[I], Seq[I])
          << "round " << Round << " index " << I;
  }
}

//===--------------------------------------------------------------------===//
// Morselized DistributedQuery::runParallel vs sequential reference
//===--------------------------------------------------------------------===//

namespace {

DistOptions tinyMorselDist(const char *Name) {
  DistOptions O;
  O.Exec = Backend::Interp; // JIT-free unit tests; e2e covers Native
  O.Name = Name;
  O.Morsels.MinMorsel = 16;
  O.Morsels.InitialMorsel = 16;
  O.Morsels.MaxMorsel = 64;
  O.Morsels.InlineBelow = 0;
  return O;
}

} // namespace

TEST(MorselDist, FoldMatchesReference) {
  std::vector<double> Flat = testutil::randomDoubles(2111, 31);
  Query Q = Query::doubleArray(0).select(lambda({x()}, x() * x())).sum();
  Bindings B;
  B.bindDoubleArray(0, Flat.data(),
                    static_cast<std::int64_t>(Flat.size()));
  double Expected = runReference(Q, B).scalarValue().asDouble();
  ThreadPool Pool(4);
  DistributedQuery DQ =
      DistributedQuery::compile(Q, tinyMorselDist("m_fold"));
  ASSERT_TRUE(DQ.parallel()) << DQ.whyNotParallel();
  double Got = DQ.runParallel(Pool, B).scalarValue().asDouble();
  EXPECT_NEAR(Got, Expected, 1e-6 * std::abs(Expected));
}

TEST(MorselDist, ConcatPreservesSourceOrder) {
  // Concat is the order-sensitive combine: morsel partials must
  // reassemble by source offset, not completion order.
  std::vector<double> Flat(1537);
  for (std::size_t I = 0; I != Flat.size(); ++I)
    Flat[I] = static_cast<double>(I);
  Query Q = Query::doubleArray(0).select(lambda({x()}, x() * 10.0));
  Bindings B;
  B.bindDoubleArray(0, Flat.data(),
                    static_cast<std::int64_t>(Flat.size()));
  ThreadPool Pool(4);
  DistributedQuery DQ =
      DistributedQuery::compile(Q, tinyMorselDist("m_concat"));
  ASSERT_TRUE(DQ.parallel()) << DQ.whyNotParallel();
  QueryResult R = DQ.runParallel(Pool, B);
  ASSERT_EQ(R.rows().size(), Flat.size());
  for (std::size_t I = 0; I != Flat.size(); ++I)
    ASSERT_DOUBLE_EQ(R.rows()[I].asDouble(),
                     static_cast<double>(I) * 10.0)
        << "row " << I;
}

TEST(MorselDist, MergeByKeyMatchesReference) {
  std::vector<double> Flat = testutil::randomDoubles(1800, 32, 0, 50);
  auto A = param("a", Type::doubleTy());
  auto U = param("u", Type::doubleTy());
  auto W = param("w", Type::doubleTy());
  Query Q = Query::doubleArray(0).groupByAggregate(
      lambda({x()}, toInt64(x() / 10.0)), E(0.0),
      lambda({A, x()}, A + x()), Lambda(), lambda({U, W}, U + W));
  Bindings B;
  B.bindDoubleArray(0, Flat.data(),
                    static_cast<std::int64_t>(Flat.size()));
  QueryResult Ref = runReference(Q, B);
  ThreadPool Pool(4);
  DistributedQuery DQ =
      DistributedQuery::compile(Q, tinyMorselDist("m_gba"));
  ASSERT_TRUE(DQ.parallel()) << DQ.whyNotParallel();
  QueryResult Got = DQ.runParallel(Pool, B);
  std::map<std::int64_t, double> RefMap, GotMap;
  for (const Value &V : Ref.rows())
    RefMap[V.first().asInt64()] = V.second().asDouble();
  for (const Value &V : Got.rows())
    GotMap[V.first().asInt64()] = V.second().asDouble();
  ASSERT_EQ(RefMap.size(), GotMap.size());
  for (const auto &[K, S] : RefMap)
    EXPECT_NEAR(GotMap.at(K), S, 1e-6 * std::max(1.0, std::abs(S)))
        << "key " << K;
}

TEST(MorselDist, MergeSortedMatchesReference) {
  std::vector<double> Flat = testutil::randomDoubles(700, 33);
  Query Q = Query::doubleArray(0)
                .select(lambda({x()}, x() + 1.0))
                .orderBy(lambda({x()}, abs(x())));
  Bindings B;
  B.bindDoubleArray(0, Flat.data(),
                    static_cast<std::int64_t>(Flat.size()));
  QueryResult Ref = runReference(Q, B);
  ThreadPool Pool(4);
  DistributedQuery DQ =
      DistributedQuery::compile(Q, tinyMorselDist("m_sort"));
  ASSERT_TRUE(DQ.parallel()) << DQ.whyNotParallel();
  QueryResult Got = DQ.runParallel(Pool, B);
  ASSERT_EQ(Ref.rows().size(), Got.rows().size());
  for (std::size_t I = 0; I != Ref.rows().size(); ++I)
    EXPECT_DOUBLE_EQ(Ref.rows()[I].asDouble(), Got.rows()[I].asDouble())
        << "row " << I;
}

TEST(MorselDist, EmptySourceMatchesReference) {
  Query Q = Query::doubleArray(0).sum();
  Bindings B;
  B.bindDoubleArray(0, nullptr, 0);
  QueryResult Ref = runReference(Q, B);
  ThreadPool Pool(4);
  DistributedQuery DQ =
      DistributedQuery::compile(Q, tinyMorselDist("m_empty"));
  QueryResult Got = DQ.runParallel(Pool, B);
  EXPECT_DOUBLE_EQ(Got.scalarValue().asDouble(),
                   Ref.scalarValue().asDouble());
}

//===--------------------------------------------------------------------===//
// ThreadPool shutdown (deterministic submit rejection)
//===--------------------------------------------------------------------===//

TEST(MorselPool, SubmitAfterShutdownIsRejected) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  EXPECT_TRUE(Pool.submit([&Ran] { ++Ran; }));
  Pool.wait();
  EXPECT_EQ(Ran.load(), 1);
  Pool.shutdown();
  EXPECT_FALSE(Pool.submit([&Ran] { ++Ran; }))
      << "submits during/after shutdown must be refused, not enqueued";
  EXPECT_EQ(Ran.load(), 1);
  Pool.shutdown(); // idempotent
  EXPECT_FALSE(Pool.submit([&Ran] { ++Ran; }));
}

TEST(MorselPool, AcceptedTasksDrainBeforeShutdown) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 50; ++I)
      EXPECT_TRUE(Pool.submit([&Ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++Ran;
      }));
    // Destructor shutdown: accepted work still completes.
  }
  EXPECT_EQ(Ran.load(), 50);
}
