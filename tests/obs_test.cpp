//===- tests/obs_test.cpp - steno::obs metrics + tracing -------*- C++ -*-===//
//
// Covers the observability layer: counter atomicity under concurrent
// writers, histogram bucket boundaries, span nesting and Chrome-trace
// JSON well-formedness, the disabled-tracing zero-event guarantee, and
// the end-to-end metric flow through compileQuery/run/QueryCache.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include "expr/Dsl.h"
#include "steno/QueryCache.h"
#include "steno/Steno.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace steno;

namespace {

TEST(Metrics, CounterAtomicUnderThreads) {
  obs::Counter &C = obs::counter("test.counter.atomic");
  C.reset();
  constexpr int Threads = 8;
  constexpr int PerThread = 100000;
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T)
    Workers.emplace_back([&C] {
      for (int I = 0; I != PerThread; ++I)
        C.inc();
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(C.value(),
            static_cast<std::uint64_t>(Threads) * PerThread);
}

TEST(Metrics, CounterSameNameSameInstance) {
  obs::Counter &A = obs::counter("test.counter.alias");
  obs::Counter &B = obs::counter("test.counter.alias");
  EXPECT_EQ(&A, &B);
}

TEST(Metrics, GaugeTracksHighWater) {
  obs::Gauge &G = obs::gauge("test.gauge.hw");
  G.reset();
  G.add(3);
  G.add(4); // peak 7
  G.sub(6);
  EXPECT_EQ(G.value(), 1);
  EXPECT_EQ(G.maxValue(), 7);
}

TEST(Metrics, HistogramBucketBoundaries) {
  obs::Histogram &H =
      obs::histogram("test.histo.bounds", {1.0, 2.0, 4.0});
  H.reset();
  // "le" semantics: a value on a boundary lands in that boundary's bucket.
  H.observe(0.5); // le 1
  H.observe(1.0); // le 1 (boundary)
  H.observe(1.5); // le 2
  H.observe(2.0); // le 2 (boundary)
  H.observe(3.0); // le 4
  H.observe(4.0); // le 4 (boundary)
  H.observe(9.0); // +inf
  EXPECT_EQ(H.count(), 7u);
  EXPECT_DOUBLE_EQ(H.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 9.0);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 2u);
  EXPECT_EQ(H.bucketCount(2), 2u);
  EXPECT_EQ(H.bucketCount(3), 1u); // implicit +inf
}

TEST(Metrics, HistogramConcurrentObserve) {
  obs::Histogram &H = obs::histogram("test.histo.mt", {10.0});
  H.reset();
  constexpr int Threads = 4;
  constexpr int PerThread = 50000;
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T)
    Workers.emplace_back([&H] {
      for (int I = 0; I != PerThread; ++I)
        H.observe(1.0);
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(H.count(), static_cast<std::uint64_t>(Threads) * PerThread);
  EXPECT_DOUBLE_EQ(H.sum(), 1.0 * Threads * PerThread);
  EXPECT_EQ(H.bucketCount(0),
            static_cast<std::uint64_t>(Threads) * PerThread);
}

TEST(Metrics, DumpContainsRegisteredInstruments) {
  obs::counter("test.dump.counter").inc(5);
  obs::gauge("test.dump.gauge").set(2);
  obs::histogram("test.dump.histo", {1.0}).observe(0.5);
  std::string Text = obs::dumpMetrics();
  EXPECT_NE(Text.find("counter test.dump.counter"), std::string::npos);
  EXPECT_NE(Text.find("gauge test.dump.gauge"), std::string::npos);
  EXPECT_NE(Text.find("histogram test.dump.histo"), std::string::npos);
  std::string Json = obs::dumpMetricsJson();
  EXPECT_NE(Json.find("\"test.dump.counter\""), std::string::npos);
  EXPECT_NE(Json.find("\"test.dump.gauge\""), std::string::npos);
  EXPECT_NE(Json.find("\"test.dump.histo\""), std::string::npos);
}

TEST(Trace, DisabledRecordsNothing) {
  obs::setTracingEnabled(false);
  obs::resetTrace();
  {
    obs::Span S("never.recorded");
    S.arg("k", 1);
    obs::Span Nested("never.recorded.child");
  }
  EXPECT_EQ(obs::traceEventCount(), 0u);
  EXPECT_EQ(obs::traceDroppedCount(), 0u);
}

TEST(Trace, SpanNestingDepths) {
  obs::setTracingEnabled(true);
  obs::resetTrace();
  EXPECT_EQ(obs::Span::depth(), 0);
  {
    obs::Span Outer("outer");
    EXPECT_EQ(obs::Span::depth(), 1);
    {
      obs::Span Inner("inner");
      EXPECT_EQ(obs::Span::depth(), 2);
    }
    EXPECT_EQ(obs::Span::depth(), 1);
  }
  EXPECT_EQ(obs::Span::depth(), 0);
  obs::setTracingEnabled(false);
  EXPECT_EQ(obs::traceEventCount(), 2u);
  std::string Json = obs::traceJson();
  // Inner closes first, so it is recorded first with depth 1.
  EXPECT_NE(Json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"depth\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"depth\":0"), std::string::npos);
}

TEST(Trace, JsonWellFormed) {
  obs::setTracingEnabled(true);
  obs::resetTrace();
  {
    obs::Span S("json \"quoted\" name\\path");
    S.arg("rows", 42);
  }
  obs::setTracingEnabled(false);
  std::string Json = obs::traceJson();
  EXPECT_EQ(Json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"rows\":42"), std::string::npos);
  // Quotes and backslashes in names must come out escaped.
  EXPECT_NE(Json.find("json \\\"quoted\\\" name\\\\path"),
            std::string::npos);
  // Balanced braces/brackets (no parser in the test deps; structural
  // sanity plus the escaping checks above approximate validity).
  int Braces = 0;
  int Brackets = 0;
  bool InString = false;
  for (std::size_t I = 0; I != Json.size(); ++I) {
    char C = Json[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{')
      ++Braces;
    else if (C == '}')
      --Braces;
    else if (C == '[')
      ++Brackets;
    else if (C == ']')
      --Brackets;
  }
  EXPECT_EQ(Braces, 0);
  EXPECT_EQ(Brackets, 0);
  EXPECT_FALSE(InString);
}

TEST(Trace, SpanDurationsNest) {
  obs::setTracingEnabled(true);
  obs::resetTrace();
  {
    obs::Span Outer("dur.outer");
    obs::Span Inner("dur.inner");
  }
  obs::setTracingEnabled(false);
  // Events land innermost-first; both were recorded.
  ASSERT_EQ(obs::traceEventCount(), 2u);
  std::string Json = obs::traceJson();
  std::size_t InnerAt = Json.find("dur.inner");
  std::size_t OuterAt = Json.find("dur.outer");
  ASSERT_NE(InnerAt, std::string::npos);
  ASSERT_NE(OuterAt, std::string::npos);
  EXPECT_LT(InnerAt, OuterAt);
}

/// The ISSUE acceptance flow: an end-to-end compile+run shows nonzero
/// compile / cache-miss / rows counters, and a second structurally equal
/// query is a cache hit. Interp backend keeps the test JIT-free.
TEST(ObsE2E, CompileRunAndCacheCountersFlow) {
  using namespace steno::expr;
  using namespace steno::expr::dsl;

  std::uint64_t Compiles0 = obs::counter("steno.compile.count").value();
  std::uint64_t Hits0 = obs::counter("steno.cache.hits").value();
  std::uint64_t Misses0 = obs::counter("steno.cache.misses").value();
  std::uint64_t Rows0 = obs::counter("steno.rows.consumed").value();

  auto MakeQuery = [] {
    auto X = param("x", Type::int64Ty());
    return query::Query::int64Array(0)
        .where(lambda({X}, X % 2 == 0))
        .select(lambda({X}, X * X));
  };

  CompileOptions Options;
  Options.Exec = Backend::Interp;
  QueryCache Cache;
  CompiledQuery CQ = Cache.getOrCompile(MakeQuery(), Options);

  std::vector<std::int64_t> Xs{1, 2, 3, 4, 5, 6};
  Bindings B;
  B.bindInt64Array(0, Xs.data(), static_cast<std::int64_t>(Xs.size()));
  QueryResult R = CQ.run(B);
  EXPECT_EQ(R.rows().size(), 3u);

  EXPECT_GT(obs::counter("steno.compile.count").value(), Compiles0);
  EXPECT_EQ(obs::counter("steno.cache.misses").value(), Misses0 + 1);
  EXPECT_EQ(obs::counter("steno.rows.consumed").value(),
            Rows0 + Xs.size());
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 0u);

  // A structurally identical query built independently: cache hit, no
  // recompile.
  std::uint64_t Compiles1 = obs::counter("steno.compile.count").value();
  Cache.getOrCompile(MakeQuery(), Options);
  EXPECT_EQ(obs::counter("steno.cache.hits").value(), Hits0 + 1);
  EXPECT_EQ(obs::counter("steno.compile.count").value(), Compiles1);
  EXPECT_EQ(Cache.hits(), 1u);

  std::string Dump = obs::dumpMetrics();
  EXPECT_NE(Dump.find("counter steno.compile.count"), std::string::npos);
  EXPECT_NE(Dump.find("counter steno.rows.consumed"), std::string::npos);
  EXPECT_NE(Dump.find("histogram steno.run.micros"), std::string::npos);
}

/// QueryCache::hits()/misses() may be polled concurrently with
/// getOrCompile (the race the atomics fix): hammer both sides under TSan.
TEST(ObsE2E, CacheCountersReadableWhileCompiling) {
  using namespace steno::expr;
  using namespace steno::expr::dsl;

  QueryCache Cache;
  CompileOptions Options;
  Options.Exec = Backend::Interp;

  std::atomic<bool> Stop{false};
  std::thread Poller([&] {
    std::uint64_t Sink = 0;
    while (!Stop.load(std::memory_order_relaxed))
      Sink += Cache.hits() + Cache.misses();
    (void)Sink;
  });

  for (int I = 0; I != 20; ++I) {
    auto X = param("x", Type::int64Ty());
    query::Query Q = query::Query::int64Array(0).select(
        lambda({X}, X + (I % 4))); // 4 distinct shapes
    Cache.getOrCompile(Q, Options);
  }
  Stop.store(true);
  Poller.join();
  EXPECT_EQ(Cache.hits() + Cache.misses(), 20u);
}

} // namespace
