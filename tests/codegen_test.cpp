//===- tests/codegen_test.cpp - Automaton & generated-code shape -*-C++-*-===//
//
// Checks the *structure* of the code the pushdown automaton emits against
// the paper's figures: one loop per Src, element-wise code spliced at μ
// (Figure 6), aggregation declarations at α and updates at μ (Figure 7),
// nested SelectMany producing plain nested for-loops with the outer
// query's aggregation innermost (Figures 9, 11, 12), and the new-loop-
// over-sink behaviour of the SINKING state.
//
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "cpptree/Printer.h"
#include "quil/Quil.h"

#include "gtest/gtest.h"

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

E x() { return param("x", Type::doubleTy()); }

std::string sourceFor(const Query &Q, bool Specialize = true) {
  quil::Chain C = quil::lower(Q);
  EXPECT_FALSE(quil::validate(C).has_value());
  if (Specialize)
    C = quil::specializeGroupByAggregate(C);
  cpptree::Program P = codegen::generate(C, "test_query");
  return cpptree::printProgram(P);
}

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

} // namespace

TEST(Codegen, SumSqIsASingleLoop) {
  std::string Src = sourceFor(
      Query::doubleArray(0).select(lambda({x()}, x() * x())).sum());
  EXPECT_EQ(countOccurrences(Src, "for ("), 1u)
      << "iterator fusion yields exactly one loop:\n"
      << Src;
  EXPECT_EQ(Src.find("while ("), std::string::npos)
      << "no iterator state machines remain";
  // Figure 7(a): declaration before the loop, update inside it.
  size_t Decl = Src.find("agg");
  size_t Loop = Src.find("for (");
  ASSERT_NE(Decl, std::string::npos);
  EXPECT_LT(Decl, Loop) << "aggregation variable declared at alpha";
}

TEST(Codegen, WhereBecomesContinue) {
  std::string Src = sourceFor(
      Query::doubleArray(0).where(lambda({x()}, x() > 0.0)).count());
  EXPECT_NE(Src.find("continue;"), std::string::npos)
      << "Figure 6(b): if (!pred) continue;\n"
      << Src;
}

TEST(Codegen, LambdaIsInlinedNotCalled) {
  std::string Src = sourceFor(
      Query::doubleArray(0).select(lambda({x()}, x() * 3.0 + 1.0)).sum());
  EXPECT_NE(Src.find("* 3.0"), std::string::npos)
      << "transformation body inlined into the loop:\n"
      << Src;
  EXPECT_EQ(Src.find("std::function"), std::string::npos)
      << "no function objects in generated code";
}

TEST(Codegen, CartesianBecomesNestedForLoops) {
  // The §5 example: three plain nested loops, accumulation innermost,
  // accumulator declaration outermost.
  auto Y = param("y", Type::doubleTy());
  auto Z = param("z", Type::doubleTy());
  Query Level3 = Query::doubleArray(2).select(
      lambda({Z}, x() * Y * Z));
  Query Level2 = Query::doubleArray(1).selectMany(Y, Level3);
  Query Q = Query::doubleArray(0).selectMany(x(), Level2).sum();
  std::string Src = sourceFor(Q);
  EXPECT_EQ(countOccurrences(Src, "for ("), 3u) << Src;

  size_t AggDecl = Src.find(" agg");
  size_t FirstFor = Src.find("for (");
  ASSERT_NE(AggDecl, std::string::npos);
  EXPECT_LT(AggDecl, FirstFor)
      << "Figure 12: total declared before the outermost loop";

  // The update is inside the innermost loop: it appears after the third
  // "for (" and before the first closing sequence.
  size_t ThirdFor = Src.find(
      "for (", Src.find("for (", Src.find("for (") + 1) + 1);
  size_t Update = Src.find("agg", ThirdFor);
  EXPECT_NE(Update, std::string::npos)
      << "accumulation innermost (Figure 11)";
}

TEST(Codegen, NestedScalarAggregateRedeclaredPerOuterElement) {
  // select(p => inner.sum()): the inner accumulator must be initialized
  // inside the outer loop (once per outer element), i.e. after the first
  // "for (".
  auto P = param("p", Type::vecTy());
  auto V = param("v", Type::doubleTy());
  Query Q = Query::pointArray(0)
                .selectNested(P, Query::overVec(P)
                                     .select(lambda({V}, V * V))
                                     .sum())
                .sum();
  std::string Src = sourceFor(Q);
  EXPECT_EQ(countOccurrences(Src, "for ("), 2u) << Src;
  // Two accumulators: the outer one before the first loop, the inner one
  // between the loops.
  size_t FirstFor = Src.find("for (");
  size_t SecondFor = Src.find("for (", FirstFor + 1);
  size_t InnerDecl = Src.find("double agg", FirstFor);
  ASSERT_NE(InnerDecl, std::string::npos);
  EXPECT_GT(InnerDecl, FirstFor);
  EXPECT_LT(InnerDecl, SecondFor)
      << "inner accumulator lives in the outer loop body:\n"
      << Src;
}

TEST(Codegen, TakeGeneratesCounterAtAlpha) {
  std::string Src = sourceFor(Query::doubleArray(0).take(E(5)).count());
  size_t Counter = Src.find("take");
  size_t Loop = Src.find("for (");
  ASSERT_NE(Counter, std::string::npos);
  EXPECT_LT(Counter, Loop) << "take counter declared in the prelude:\n"
                           << Src;
}

TEST(Codegen, GroupBySinkThenNewLoop) {
  // Ret in SINKING: the generator inserts a loop over the sink (§4.2).
  auto G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  Query Q = Query::doubleArray(0)
                .groupBy(lambda({x()}, toInt64(x())))
                .select(lambda({G}, G.first()));
  std::string Src = sourceFor(Q);
  EXPECT_NE(Src.find("steno::rt::GroupSink"), std::string::npos) << Src;
  EXPECT_EQ(countOccurrences(Src, "for ("), 2u)
      << "fill loop plus sink-iteration loop:\n"
      << Src;
  EXPECT_NE(Src.find(".group("), std::string::npos);
}

TEST(Codegen, SpecializedGroupByUsesAggSink) {
  auto G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  auto A = param("a", Type::doubleTy());
  auto V = param("v", Type::doubleTy());
  Query BagSum = Query::overVec(G.second())
                     .aggregate(E(0.0), lambda({A, V}, A + V),
                                lambda({A}, pair(G.first(), A)));
  Query Q = Query::doubleArray(0)
                .groupBy(lambda({x()}, toInt64(x())))
                .selectNested(G, BagSum);
  std::string Fused = sourceFor(Q, /*Specialize=*/true);
  EXPECT_NE(Fused.find("GroupAggSink"), std::string::npos) << Fused;
  EXPECT_EQ(Fused.find("GroupSink "), std::string::npos)
      << "§4.3: no materialized bags after specialization";
  std::string Unfused = sourceFor(Q, /*Specialize=*/false);
  EXPECT_NE(Unfused.find("GroupSink"), std::string::npos)
      << "without the pass the bags are materialized";
}

TEST(Codegen, OrderBySortsAtOmega) {
  Query Q = Query::doubleArray(0).orderBy(lambda({x()}, x())).toArray();
  std::string Src = sourceFor(Q);
  size_t FillLoop = Src.find("for (");
  size_t Sort = Src.find("std::stable_sort");
  ASSERT_NE(Sort, std::string::npos) << Src;
  EXPECT_GT(Sort, FillLoop) << "sort in the postlude, after the fill loop";
}

TEST(Codegen, ScalarEmitsOneRowAtOmega) {
  std::string Src = sourceFor(Query::doubleArray(0).sum());
  EXPECT_EQ(countOccurrences(Src, "emitRow"), 1u);
  EXPECT_GT(Src.find("emitRow"), Src.rfind("}") == std::string::npos
                ? 0
                : Src.find("for ("))
      << "scalar emitted after the loop";
}

TEST(Codegen, CollectionEmitsFromLoopBody) {
  std::string Src = sourceFor(
      Query::doubleArray(0).select(lambda({x()}, x() + 1.0)));
  size_t Loop = Src.find("for (");
  size_t Emit = Src.find("emitRow");
  ASSERT_NE(Emit, std::string::npos);
  EXPECT_GT(Emit, Loop) << "Figure 8(c): yield from the loop body";
}

TEST(Codegen, TypeSpecializedSourceIteration) {
  std::string DblSrc = sourceFor(Query::doubleArray(0).sum());
  EXPECT_NE(DblSrc.find("double elem"), std::string::npos);
  std::string IntSrc = sourceFor(Query::int64Array(0).sum());
  EXPECT_NE(IntSrc.find("std::int64_t elem"), std::string::npos);
  auto P = param("p", Type::vecTy());
  auto V = param("v", Type::doubleTy());
  std::string PtSrc = sourceFor(
      Query::pointArray(0)
          .selectNested(P, Query::overVec(P).sum())
          .sum());
  EXPECT_NE(PtSrc.find("steno::rt::VecView elem"), std::string::npos)
      << PtSrc;
  (void)V;
}

TEST(Codegen, RangeSourceHoistsBound) {
  auto D = param("d", Type::int64Ty());
  std::string Src =
      sourceFor(Query::range(E(3), E(10)).select(lambda({D}, D * D)).sum());
  EXPECT_NE(Src.find("const std::int64_t n"), std::string::npos) << Src;
}

TEST(Codegen, SlotUsageScan) {
  auto V = param("v", Type::doubleTy());
  Query Q = Query::doubleArray(2)
                .select(lambda({V}, V * capture(4, Type::doubleTy())))
                .sum();
  quil::Chain C = quil::lower(Q);
  cpptree::Program P = codegen::generate(C, "scan_test");
  cpptree::SlotUsage Slots = cpptree::scanSlots(P);
  EXPECT_EQ(Slots.SourceSlots, (std::set<unsigned>{2}));
  EXPECT_EQ(Slots.ValueSlots, (std::set<unsigned>{4}));
}

TEST(Codegen, DenseSinkUsesArrayAndNoSeedArgument) {
  auto A = param("a", Type::doubleTy());
  Query Q = Query::doubleArray(0).groupByAggregateDense(
      lambda({x()}, toInt64(x())), E(64), E(0.0),
      lambda({A, x()}, A + x()));
  std::string Src = sourceFor(Q);
  EXPECT_NE(Src.find("steno::rt::DenseAggSink<double>"),
            std::string::npos)
      << Src;
  EXPECT_EQ(Src.find("GroupAggSink<"), std::string::npos)
      << "dense query must not declare the hash sink";
  // The per-element update takes only the key (slots pre-seeded at α).
  EXPECT_NE(Src.find(".slot(static_cast"), std::string::npos) << Src;
}

TEST(Codegen, EarlyExitAggregateBreaksInSingleLoop) {
  std::string Src = sourceFor(
      Query::doubleArray(0).where(lambda({x()}, x() > 0.5)).any());
  EXPECT_NE(Src.find("break;"), std::string::npos)
      << "Any over one loop must break out:\n"
      << Src;
}

TEST(Codegen, EarlyExitAggregateUsesFlagAcrossNestedLoops) {
  auto Y = param("y", Type::doubleTy());
  Query Q = Query::doubleArray(0)
                .selectMany(x(), Query::doubleArray(1)
                                     .select(lambda({Y}, x() + Y)))
                .any();
  std::string Src = sourceFor(Q);
  EXPECT_NE(Src.find("stop"), std::string::npos)
      << "flattened early exit is flag-guarded:\n"
      << Src;
  EXPECT_EQ(Src.find("break;"), std::string::npos)
      << "a break would only exit the innermost loop";
}

TEST(Codegen, GeneratedNamesAreUnique) {
  // Two Selects and a Where must not reuse element variable names.
  std::string Src = sourceFor(Query::doubleArray(0)
                                  .select(lambda({x()}, x() + 1.0))
                                  .where(lambda({x()}, x() > 0.0))
                                  .select(lambda({x()}, x() * 2.0))
                                  .sum());
  // elem0 (source), elem appearing at least three times with distinct ids:
  EXPECT_GE(countOccurrences(Src, "double elem"), 3u) << Src;
}
