//===- tests/fuzz_test.cpp - Differential fuzzer unit tests ----*- C++ -*-===//
//
// Covers the fuzz pipeline end to end: spec serialization round-trips,
// builder validation of malformed specs, generator determinism, small
// differential runs against every backend, certificate-aware
// expectations, the injected-fault mismatch path (shrink -> corpus file
// -> replay), and deterministic replay of the checked-in corpus under
// tests/fuzz_corpus/.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Diff.h"
#include "fuzz/Fuzz.h"
#include "fuzz/Gen.h"
#include "fuzz/Shrink.h"
#include "obs/Metrics.h"
#include "support/Random.h"
#include "support/TempFile.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <set>

using namespace steno;
using namespace steno::fuzz;

#ifndef STENO_TESTS_SRC_DIR
#error "tests/CMakeLists.txt must define STENO_TESTS_SRC_DIR"
#endif

namespace {

/// One harness for the whole binary: the three thread pools are cheap to
/// keep but not to churn per test.
DiffHarness &harness() {
  static DiffHarness H;
  return H;
}

QuerySpec simpleSumSpec() {
  QuerySpec S;
  S.Sources.push_back({0, ElemTy::Double, DataClass::Uniform, 16, 5});
  OpSpec Sel;
  Sel.K = OpK::Select;
  Sel.T = TransTmpl::MulC;
  Sel.DArg = 2.0;
  S.Ops.push_back(Sel);
  OpSpec Agg;
  Agg.K = OpK::Agg;
  Agg.A = AggKind::Sum;
  S.Ops.push_back(Agg);
  return S;
}

std::string corpusDir() {
  return std::string(STENO_TESTS_SRC_DIR) + "/fuzz_corpus";
}

} // namespace

//===--------------------------------------------------------------------===//
// Spec serialization
//===--------------------------------------------------------------------===//

TEST(FuzzSpecTest, SerializeParseRoundTrip) {
  QuerySpec S;
  S.Sources.push_back({0, ElemTy::Double, DataClass::Skewed, 33, 77});
  S.Sources.push_back({2, ElemTy::Int64, DataClass::Ascending, 7, 9});
  S.HasCaptureD = true;
  S.CaptureD = -2.25;
  S.HasCaptureI = true;
  S.CaptureI = -3;
  OpSpec Sel;
  Sel.K = OpK::Select;
  Sel.T = TransTmpl::AddC;
  Sel.DArg = 1.5;
  S.Ops.push_back(Sel);
  OpSpec Sm;
  Sm.K = OpK::SelectMany;
  Sm.Slot = 2;
  Sm.N = NestedTmpl::MulXY;
  Sm.IArg = 4;
  S.Ops.push_back(Sm);
  OpSpec Ga;
  Ga.K = OpK::GroupAggDense;
  Ga.IArg = 16;
  Ga.G = GroupStep::Max;
  Ga.Combine = false;
  S.Ops.push_back(Ga);

  std::string Text = serializeSpec(S);
  QuerySpec Parsed;
  std::string Err;
  ASSERT_TRUE(parseSpec(Text, Parsed, &Err)) << Err;
  // Round-trip fixpoint: re-serializing the parse reproduces the text.
  EXPECT_EQ(Text, serializeSpec(Parsed));
  EXPECT_EQ(Parsed.Sources.size(), 2u);
  EXPECT_EQ(Parsed.Sources[1].Slot, 2u);
  EXPECT_EQ(Parsed.Sources[1].Ty, ElemTy::Int64);
  EXPECT_TRUE(Parsed.HasCaptureD);
  EXPECT_DOUBLE_EQ(Parsed.CaptureD, -2.25);
  EXPECT_EQ(Parsed.CaptureI, -3);
  ASSERT_EQ(Parsed.Ops.size(), 3u);
  EXPECT_EQ(Parsed.Ops[1].K, OpK::SelectMany);
  EXPECT_EQ(Parsed.Ops[1].IArg, 4);
  EXPECT_FALSE(Parsed.Ops[2].Combine);
}

TEST(FuzzSpecTest, ParseRejectsMalformedInput) {
  QuerySpec S;
  std::string Err;
  EXPECT_FALSE(parseSpec("", S, &Err));
  EXPECT_FALSE(parseSpec("source 0 double 4 uniform 1\nend\n", S, &Err))
      << "missing header must be rejected";
  EXPECT_FALSE(parseSpec("steno-fuzz v1\nsource 0 double 4 uniform 1\n", S,
                         &Err))
      << "missing end sentinel (truncated file) must be rejected";
  EXPECT_FALSE(parseSpec(
      "steno-fuzz v1\nop frobnicate 1\nend\n", S, &Err));
  EXPECT_FALSE(parseSpec(
      "steno-fuzz v1\nend\nsource 0 double 4 uniform 1\n", S, &Err))
      << "content after end must be rejected";
  EXPECT_FALSE(parseSpec(
      "steno-fuzz v1\nsource 0 double nonsense uniform 1\nend\n", S, &Err));
}

TEST(FuzzSpecTest, CommentsAndBlankLinesIgnored) {
  std::string Text = "# leading comment\n\nsteno-fuzz v1\n"
                     "source 0 double 4 uniform 1  # trailing comment\n"
                     "\nop agg sum 0\nend\n";
  QuerySpec S;
  std::string Err;
  ASSERT_TRUE(parseSpec(Text, S, &Err)) << Err;
  EXPECT_EQ(S.Sources.size(), 1u);
  EXPECT_EQ(S.Ops.size(), 1u);
}

//===--------------------------------------------------------------------===//
// Builder validation
//===--------------------------------------------------------------------===//

TEST(FuzzSpecTest, BuilderRejectsIllFormedSpecs) {
  auto rejects = [](const QuerySpec &S, const char *Why) {
    BuiltQuery B;
    std::string Err;
    EXPECT_FALSE(buildSpec(S, B, &Err)) << Why;
    EXPECT_FALSE(Err.empty()) << Why;
  };

  {
    QuerySpec S; // no sources at all
    rejects(S, "empty spec");
  }
  {
    QuerySpec S = simpleSumSpec();
    S.Sources[0].Slot = 3; // primary must be slot 0
    rejects(S, "primary source off slot 0");
  }
  {
    QuerySpec S = simpleSumSpec();
    S.Sources.push_back(S.Sources[0]); // duplicate slot 0
    rejects(S, "duplicate slot");
  }
  {
    QuerySpec S = simpleSumSpec();
    S.Sources[0].Ty = ElemTy::Int64;
    S.Ops[0].T = TransTmpl::SqrtAbs; // double-only template
    rejects(S, "sqrtabs over int64");
  }
  {
    QuerySpec S = simpleSumSpec();
    OpSpec Extra;
    Extra.K = OpK::Where;
    Extra.P = PredTmpl::GtC;
    S.Ops.push_back(Extra); // after the terminal aggregate
    rejects(S, "operator after terminal");
  }
  {
    QuerySpec S = simpleSumSpec();
    OpSpec Sm;
    Sm.K = OpK::SelectMany;
    Sm.Slot = 0; // the partitioned slot may not be a nested source
    S.Ops.insert(S.Ops.begin(), Sm);
    rejects(S, "nested op over slot 0");
  }
  {
    QuerySpec S = simpleSumSpec();
    OpSpec Ga;
    Ga.K = OpK::GroupAgg;
    Ga.Key = KeyTmpl::Id; // double elements need a bucket key
    S.Ops[1] = Ga;
    rejects(S, "hash group key over double");
  }
  {
    QuerySpec S = simpleSumSpec();
    S.Ops[0].T = TransTmpl::CapScale; // no capture declared
    rejects(S, "capscale without capture");
  }
}

TEST(FuzzSpecTest, BuildsAndSummarizesSimpleSpec) {
  QuerySpec S = simpleSumSpec();
  BuiltQuery B;
  std::string Err;
  ASSERT_TRUE(buildSpec(S, B, &Err)) << Err;
  std::string Summary = specSummary(S);
  EXPECT_NE(Summary.find("double[16,uniform]"), std::string::npos) << Summary;
  EXPECT_NE(Summary.find("agg(sum)"), std::string::npos) << Summary;
}

//===--------------------------------------------------------------------===//
// Generator
//===--------------------------------------------------------------------===//

TEST(FuzzGenTest, DeterministicForFixedSeed) {
  GenOptions GO;
  support::SplitMix64 A(42), B(42), C(43);
  bool Diverged = false;
  for (int I = 0; I != 200; ++I) {
    std::string SA = serializeSpec(generateSpec(A, GO));
    std::string SB = serializeSpec(generateSpec(B, GO));
    EXPECT_EQ(SA, SB) << "same seed must generate identical spec streams";
    if (SA != serializeSpec(generateSpec(C, GO)))
      Diverged = true;
  }
  EXPECT_TRUE(Diverged) << "different seeds should generate different specs";
}

TEST(FuzzGenTest, GeneratedSpecsBuildAndRoundTrip) {
  GenOptions GO;
  support::SplitMix64 Rng(7);
  unsigned Built = 0;
  for (int I = 0; I != 300; ++I) {
    QuerySpec S = generateSpec(Rng, GO);
    std::string Text = serializeSpec(S);
    QuerySpec Parsed;
    std::string Err;
    ASSERT_TRUE(parseSpec(Text, Parsed, &Err)) << Err << "\n" << Text;
    EXPECT_EQ(Text, serializeSpec(Parsed));
    BuiltQuery B;
    if (buildSpec(S, B, &Err))
      ++Built;
  }
  // The generator re-rolls inadmissible draws; the overwhelming majority
  // of emitted specs must build.
  EXPECT_GT(Built, 280u);
}

//===--------------------------------------------------------------------===//
// Differential checking
//===--------------------------------------------------------------------===//

TEST(FuzzDiffTest, EachBackendAgreesWithOracle) {
  // One small run per backend (JIT excluded here: jit_test owns the
  // native path's latency budget; the corpus replay below still covers
  // it). Restricting to one backend exercises the --backend CLI path.
  for (BackendId Id : allBackends(false)) {
    FuzzOptions FO;
    FO.Seed = 11;
    FO.Iters = 25;
    FO.JitEvery = 0;
    FO.HasOnly = true;
    FO.Only = Id;
    FuzzOutcome Out = runFuzz(harness(), FO);
    EXPECT_TRUE(Out.clean()) << backendName(Id);
    EXPECT_EQ(Out.Queries, 25u) << backendName(Id);
  }
}

TEST(FuzzDiffTest, FullMatrixSmokeIsCleanAndCountersMove) {
  obs::Counter &Queries = obs::counter("fuzz.queries");
  obs::Counter &Mismatches = obs::counter("fuzz.mismatches");
  std::uint64_t Q0 = Queries.value(), M0 = Mismatches.value();

  FuzzOptions FO;
  FO.Seed = 2026;
  FO.Iters = 60;
  FO.JitEvery = 0;
  FuzzOutcome Out = runFuzz(harness(), FO);
  EXPECT_TRUE(Out.clean());
  EXPECT_EQ(Out.Queries, 60u);
  // A healthy generator must produce both certified-parallel queries and
  // sequential-fallback queries in a small run.
  EXPECT_GT(Out.Certified, 0u);
  EXPECT_LT(Out.Certified, 60u);
  EXPECT_EQ(Queries.value() - Q0, 60u);
  EXPECT_EQ(Mismatches.value(), M0);
}

TEST(FuzzDiffTest, CertificateExpectations) {
  // An associative sum over one source must fan out on dryad...
  DiffResult R = harness().check(simpleSumSpec(), DiffOptions());
  EXPECT_FALSE(R.Mismatch) << R.Report;
  EXPECT_TRUE(R.Certified);

  // ...while a provably non-associative fold must not: every backend is
  // required to take the sequential fallback and still match the oracle.
  QuerySpec NonAssoc = simpleSumSpec();
  NonAssoc.Ops[1].A = AggKind::FoldNonAssoc;
  R = harness().check(NonAssoc, DiffOptions());
  EXPECT_FALSE(R.Mismatch) << R.Report;
  EXPECT_FALSE(R.Certified)
      << "non-associative fold must not certify as parallel-safe";
}

//===--------------------------------------------------------------------===//
// Injected-fault mismatch pipeline: detect -> shrink -> serialize ->
// replay. This is the proof that a real miscompile would produce a
// replayable corpus file.
//===--------------------------------------------------------------------===//

TEST(FuzzDiffTest, InjectedFaultYieldsReplayableShrunkReproducer) {
  std::string Dir = support::processTempDir() + "/fuzz_inject_corpus";
  std::filesystem::remove_all(Dir);

  FuzzOptions FO;
  FO.Seed = 5;
  FO.Iters = 6;
  FO.JitEvery = 0;
  FO.CorpusDir = Dir;
  FO.Inject = [](BackendId Id) { return Id == BackendId::DryadMorsel; };
  FuzzOutcome Out = runFuzz(harness(), FO);

  ASSERT_GT(Out.Mismatches, 0u);
  EXPECT_GT(Out.ShrinkSteps, 0u);
  ASSERT_FALSE(Out.Failures.empty());

  const QuerySpec &Shrunk = Out.Failures.front().first;
  const std::string &Path = Out.Failures.front().second;
  ASSERT_FALSE(Path.empty());

  // The reproducer file parses back to the shrunk spec.
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << Path;
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  QuerySpec FromDisk;
  std::string Err;
  ASSERT_TRUE(parseSpec(Text, FromDisk, &Err)) << Err;
  EXPECT_EQ(serializeSpec(FromDisk), serializeSpec(Shrunk));

  // Still failing under the injected fault (the shrinker's invariant)...
  DiffOptions WithFault;
  WithFault.Inject = FO.Inject;
  DiffResult R = harness().check(FromDisk, WithFault);
  EXPECT_TRUE(R.Mismatch);
  EXPECT_FALSE(R.BuildError) << R.Report;

  // ...and clean once the fault is removed: the file is a true backend
  // reproducer, not a corrupted spec.
  R = harness().check(FromDisk, DiffOptions());
  EXPECT_FALSE(R.Mismatch) << R.Report;

  // loadCorpus finds what the fuzz loop wrote.
  std::vector<std::pair<std::string, QuerySpec>> Corpus;
  ASSERT_TRUE(loadCorpus(Dir, Corpus, &Err)) << Err;
  EXPECT_EQ(Corpus.size(), Out.Failures.size());
}

TEST(FuzzShrinkTest, ShrinksInjectedFailureToSmallerSpec) {
  // Build a deliberately bulky spec; under an always-inject fault on
  // plinq8 every candidate still "fails", so the shrinker must drive it
  // to something near-minimal.
  QuerySpec S = simpleSumSpec();
  S.Sources[0].Count = 64;
  OpSpec W;
  W.K = OpK::Where;
  W.P = PredTmpl::AbsGtC;
  W.DArg = 1.0;
  S.Ops.insert(S.Ops.begin(), W);
  S.Ops.insert(S.Ops.begin(), S.Ops[0]);

  DiffOptions DO;
  DO.Inject = [](BackendId Id) { return Id == BackendId::Plinq8; };
  ASSERT_TRUE(harness().check(S, DO).Mismatch);

  ShrinkStats Stats;
  QuerySpec Shrunk = shrinkSpec(harness(), S, DO, ShrinkOptions(), Stats);
  EXPECT_GT(Stats.Steps, 0u);
  EXPECT_GT(Stats.Reductions, 0u);
  EXPECT_LT(Shrunk.Ops.size(), S.Ops.size());
  EXPECT_LE(Shrunk.Sources[0].Count, 1u);
  // The shrunk spec still reproduces and still builds.
  DiffResult R = harness().check(Shrunk, DO);
  EXPECT_TRUE(R.Mismatch);
  EXPECT_FALSE(R.BuildError);
}

//===--------------------------------------------------------------------===//
// Checked-in corpus replay
//===--------------------------------------------------------------------===//

TEST(FuzzCorpusTest, ReplayCheckedInCorpusAcrossAllBackends) {
  std::vector<std::pair<std::string, QuerySpec>> Corpus;
  std::string Err;
  ASSERT_TRUE(loadCorpus(corpusDir(), Corpus, &Err)) << Err;
  ASSERT_GE(Corpus.size(), 10u)
      << "tests/fuzz_corpus must keep at least ten reproducers";

  // Stable replay order (loadCorpus sorts by name).
  for (std::size_t I = 1; I < Corpus.size(); ++I)
    EXPECT_LT(Corpus[I - 1].first, Corpus[I].first);

  DiffOptions DO;
  DO.Backends = allBackends(true); // JIT included: the corpus is small
  for (const auto &[Path, Spec] : Corpus) {
    DiffResult R = harness().check(Spec, DO);
    EXPECT_FALSE(R.BuildError) << Path << ": " << R.Report;
    EXPECT_FALSE(R.Mismatch) << Path << ": " << R.Report;
  }
}

TEST(FuzzCorpusTest, CorpusCoversCertifiedAndFallbackShapes) {
  std::vector<std::pair<std::string, QuerySpec>> Corpus;
  std::string Err;
  ASSERT_TRUE(loadCorpus(corpusDir(), Corpus, &Err)) << Err;
  std::set<std::string> Certified, Fallback;
  for (const auto &[Path, Spec] : Corpus) {
    DiffResult R = harness().check(Spec, DiffOptions());
    (R.Certified ? Certified : Fallback)
        .insert(std::filesystem::path(Path).filename().string());
  }
  // The hand-picked set must exercise both sides of the certificate.
  EXPECT_GE(Certified.size(), 3u);
  EXPECT_GE(Fallback.size(), 2u);
  EXPECT_TRUE(Fallback.count("nonassoc_agg.fuzzspec"));
  EXPECT_TRUE(Fallback.count("nocomb_agg.fuzzspec"));
}

TEST(FuzzCorpusTest, LoadCorpusFailsOnMissingOrCorrupt) {
  std::vector<std::pair<std::string, QuerySpec>> Corpus;
  std::string Err;
  EXPECT_FALSE(loadCorpus("/nonexistent/fuzz_corpus", Corpus, &Err));

  std::string Dir = support::processTempDir() + "/fuzz_corrupt_corpus";
  std::filesystem::create_directories(Dir);
  std::ofstream(Dir + "/bad.fuzzspec") << "steno-fuzz v1\nop agg sum 0\n";
  Corpus.clear();
  EXPECT_FALSE(loadCorpus(Dir, Corpus, &Err))
      << "a truncated corpus file must fail replay, not be skipped";
}
