//===- tests/workloads_test.cpp - K-means workload tests -------*- C++ -*-===//
//
// Validates the §7.2 k-means workload: the three vertex implementations
// (hand loops, linq iterators, the Steno distributed query) must produce
// identical partial sums, and the driver must converge identically
// through them.
//
//===----------------------------------------------------------------------===//

#include "workloads/Kmeans.h"
#include "dryad/Dist.h"
#include "dryad/HomomorphicApply.h"
#include "quil/Quil.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace steno;
using namespace steno::workloads;

namespace {

struct KmFixture {
  std::int64_t Dim = 6;
  std::int64_t K = 4;
  std::int64_t NumPoints = 500;
  unsigned Parts = 3;
  KmeansData Data;
  std::vector<dryad::DoublePartition> Partitions;

  KmFixture() {
    Data = KmeansData::make(NumPoints, Dim, K, 7);
    Partitions = dryad::partitionPoints(Data.Points, Dim, Parts);
  }
};

void expectSlotsNear(const std::vector<double> &A,
                     const std::vector<double> &B, double Tol = 1e-7) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_NEAR(A[I], B[I], Tol * std::max(1.0, std::fabs(A[I])))
        << "slot " << I;
}

} // namespace

TEST(KmeansData, ShapeAndDeterminism) {
  KmeansData A = KmeansData::make(100, 5, 3, 11);
  EXPECT_EQ(A.Points.size(), 500u);
  EXPECT_EQ(A.Centroids.size(), 15u);
  KmeansData B = KmeansData::make(100, 5, 3, 11);
  EXPECT_EQ(A.Points, B.Points);
  KmeansData C = KmeansData::make(100, 5, 3, 12);
  EXPECT_NE(A.Points, C.Points);
}

TEST(KmeansVertices, HandAndLinqAgree) {
  KmFixture S;
  for (const dryad::DoublePartition &P : S.Partitions) {
    std::vector<double> Hand =
        handVertexPartials(P, S.Data.Centroids, S.K, S.Dim);
    std::vector<double> Linq =
        linqVertexPartials(P, S.Data.Centroids, S.K, S.Dim);
    expectSlotsNear(Hand, Linq, 1e-12);
  }
}

TEST(KmeansVertices, PartialsCoverAllPoints) {
  KmFixture S;
  std::vector<std::vector<double>> All;
  for (const dryad::DoublePartition &P : S.Partitions)
    All.push_back(handVertexPartials(P, S.Data.Centroids, S.K, S.Dim));
  std::vector<double> Merged = mergePartials(All);
  double TotalCount = 0;
  for (std::int64_t C = 0; C != S.K; ++C)
    TotalCount += Merged[static_cast<size_t>(C * (S.Dim + 1) + S.Dim)];
  EXPECT_DOUBLE_EQ(TotalCount, static_cast<double>(S.NumPoints));
}

TEST(KmeansQuery, PlansAsMergeByKey) {
  query::Query Q = buildStepQuery(4, 6);
  quil::Chain C = quil::lower(Q);
  EXPECT_FALSE(quil::validate(C).has_value());
  std::string Why;
  auto Plan = dryad::planParallel(C, &Why);
  ASSERT_TRUE(Plan.has_value()) << Why;
  EXPECT_EQ(Plan->Kind, dryad::CombineKind::MergeByKey);
  EXPECT_TRUE(Plan->Combiner.valid());
}

TEST(KmeansQuery, StenoMatchesHand) {
  KmFixture S;
  dryad::ThreadPool Pool(S.Parts);
  dryad::DistOptions Options;
  Options.Exec = Backend::Interp; // JIT-free for unit-test speed
  Options.Name = "kmeans_test";
  dryad::DistributedQuery Step =
      dryad::DistributedQuery::compile(buildStepQuery(S.K, S.Dim),
                                       Options);

  std::vector<Bindings> PartBindings;
  for (const dryad::DoublePartition &P : S.Partitions) {
    Bindings B;
    B.bindPointArray(0, P.Data.data(), P.count(), S.Dim);
    B.bindDoubleArray(
        1, S.Data.Centroids.data(),
        static_cast<std::int64_t>(S.Data.Centroids.size()));
    PartBindings.push_back(std::move(B));
  }
  QueryResult R = Step.run(Pool, PartBindings);

  std::vector<double> StenoSlots(
      static_cast<size_t>(numSlots(S.K, S.Dim)), 0.0);
  for (const expr::Value &Row : R.rows())
    StenoSlots[static_cast<size_t>(Row.first().asInt64())] =
        Row.second().asDouble();

  std::vector<std::vector<double>> All;
  for (const dryad::DoublePartition &P : S.Partitions)
    All.push_back(handVertexPartials(P, S.Data.Centroids, S.K, S.Dim));
  expectSlotsNear(StenoSlots, mergePartials(All));
}

TEST(KmeansDriver, ConvergesIdenticallyAcrossImplementations) {
  KmFixture S;
  dryad::ThreadPool Pool(S.Parts);
  std::vector<double> CHand = S.Data.Centroids;
  std::vector<double> CLinq = S.Data.Centroids;
  for (int It = 0; It != 3; ++It) {
    std::vector<std::vector<double>> HandParts;
    std::vector<std::vector<double>> LinqParts;
    for (const dryad::DoublePartition &P : S.Partitions) {
      HandParts.push_back(handVertexPartials(P, CHand, S.K, S.Dim));
      LinqParts.push_back(linqVertexPartials(P, CLinq, S.K, S.Dim));
    }
    CHand = centroidsFromSlots(mergePartials(HandParts), CHand, S.K,
                               S.Dim);
    CLinq = centroidsFromSlots(mergePartials(LinqParts), CLinq, S.K,
                               S.Dim);
  }
  expectSlotsNear(CHand, CLinq, 1e-9);
}

TEST(KmeansDriver, EmptyClusterKeepsPreviousCentroid) {
  // A slot vector with zero count for cluster 1 must leave its centroid
  // untouched.
  std::int64_t K = 2, Dim = 2;
  std::vector<double> Slots(static_cast<size_t>(numSlots(K, Dim)), 0.0);
  Slots[0] = 10.0; // cluster 0 sums
  Slots[1] = 20.0;
  Slots[2] = 2.0; // cluster 0 count
  // cluster 1: all zero (empty)
  std::vector<double> Prev = {1, 2, 3, 4};
  std::vector<double> Next = centroidsFromSlots(Slots, Prev, K, Dim);
  EXPECT_DOUBLE_EQ(Next[0], 5.0);
  EXPECT_DOUBLE_EQ(Next[1], 10.0);
  EXPECT_DOUBLE_EQ(Next[2], 3.0);
  EXPECT_DOUBLE_EQ(Next[3], 4.0);
}
