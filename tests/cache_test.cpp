//===- tests/cache_test.cpp - Query cache & structural hashing -*- C++ -*-===//

#include "expr/Analysis.h"
#include "steno/PersistentCache.h"
#include "steno/QueryCache.h"
#include "support/TempFile.h"
#include "support/Timing.h"

#include <cstdlib>
#include <filesystem>
#include <utility>

#include "gtest/gtest.h"

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

E x() { return param("x", Type::doubleTy()); }

Query sumSq() {
  return Query::doubleArray(0).select(lambda({x()}, x() * x())).sum();
}

} // namespace

//===--------------------------------------------------------------------===//
// Structural hashing / equality of expressions
//===--------------------------------------------------------------------===//

TEST(ExprHash, EqualStructureEqualHash) {
  E A = x() * x() + 1.0;
  E B = x() * x() + 1.0;
  EXPECT_NE(A.node(), B.node());
  EXPECT_EQ(hashExpr(*A.node()), hashExpr(*B.node()));
  EXPECT_TRUE(equalExprs(*A.node(), *B.node()));
}

TEST(ExprHash, LiteralsDistinguish) {
  E A = x() + 1.0;
  E B = x() + 2.0;
  EXPECT_FALSE(equalExprs(*A.node(), *B.node()));
  EXPECT_NE(hashExpr(*A.node()), hashExpr(*B.node()));
}

TEST(ExprHash, OperatorsDistinguish) {
  EXPECT_FALSE(equalExprs(*(x() + 1.0).node(), *(x() - 1.0).node()));
}

TEST(ExprHash, ParamNamesDistinguish) {
  E A = param("a", Type::doubleTy());
  E B = param("b", Type::doubleTy());
  EXPECT_FALSE(equalExprs(*A.node(), *B.node()));
}

TEST(ExprHash, SlotsDistinguish) {
  EXPECT_FALSE(equalExprs(*capture(0, Type::doubleTy()).node(),
                          *capture(1, Type::doubleTy()).node()));
  EXPECT_FALSE(equalExprs(*sourceLen(0).node(), *sourceLen(1).node()));
}

TEST(ExprHash, IntAndDoubleLiteralsDiffer) {
  EXPECT_FALSE(
      equalExprs(*E(1).node(), *E(1.0).node()));
}

TEST(ExprHash, Lambdas) {
  Lambda A = lambda({x()}, x() * 2.0);
  Lambda B = lambda({x()}, x() * 2.0);
  Lambda C = lambda({x()}, x() * 3.0);
  EXPECT_TRUE(equalLambdas(A, B));
  EXPECT_EQ(hashLambda(A), hashLambda(B));
  EXPECT_FALSE(equalLambdas(A, C));
  EXPECT_TRUE(equalLambdas(Lambda(), Lambda()));
  EXPECT_FALSE(equalLambdas(A, Lambda()));
}

//===--------------------------------------------------------------------===//
// Query fingerprints
//===--------------------------------------------------------------------===//

TEST(QueryHash, IndependentlyBuiltQueriesAreEqual) {
  Query A = sumSq();
  Query B = sumSq();
  EXPECT_NE(A.node(), B.node());
  EXPECT_EQ(hashQuery(A), hashQuery(B));
  EXPECT_TRUE(equalQueries(A, B));
}

TEST(QueryHash, DifferentSlotsDiffer) {
  Query A = Query::doubleArray(0).sum();
  Query B = Query::doubleArray(1).sum();
  EXPECT_FALSE(equalQueries(A, B));
}

TEST(QueryHash, DifferentOperatorsDiffer) {
  EXPECT_FALSE(equalQueries(Query::doubleArray(0).sum(),
                            Query::doubleArray(0).count()));
}

TEST(QueryHash, NestedQueriesCompared) {
  auto Y = param("y", Type::doubleTy());
  auto Build = [&](double K) {
    return Query::doubleArray(0).selectMany(
        x(), Query::doubleArray(1).select(lambda({Y}, x() * Y + K)));
  };
  EXPECT_TRUE(equalQueries(Build(1.0), Build(1.0)));
  EXPECT_FALSE(equalQueries(Build(1.0), Build(2.0)));
}

TEST(QueryHash, ChainPrefixIsNotEqual) {
  Query Short = Query::doubleArray(0).where(lambda({x()}, x() > 0.0));
  Query Long = Short.select(lambda({x()}, x() * 2.0));
  EXPECT_FALSE(equalQueries(Short, Long));
}

//===--------------------------------------------------------------------===//
// The cache
//===--------------------------------------------------------------------===//

TEST(QueryCacheTest, HitOnStructurallyEqualQuery) {
  QueryCache Cache;
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  CompiledQuery A = Cache.getOrCompile(sumSq(), Options);
  CompiledQuery B = Cache.getOrCompile(sumSq(), Options);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(&A.generatedSource(), &B.generatedSource())
      << "both handles share one compiled module";
}

TEST(QueryCacheTest, MissOnDifferentStructure) {
  QueryCache Cache;
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  Cache.getOrCompile(sumSq(), Options);
  Cache.getOrCompile(Query::doubleArray(0).sum(), Options);
  EXPECT_EQ(Cache.misses(), 2u);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(QueryCacheTest, BackendIsPartOfTheKey) {
  QueryCache Cache;
  CompileOptions Interp;
  Interp.Exec = Backend::Interp;
  CompileOptions Native;
  Native.Exec = Backend::Native;
  Cache.getOrCompile(sumSq(), Interp);
  Cache.getOrCompile(sumSq(), Native);
  EXPECT_EQ(Cache.misses(), 2u);
}

TEST(QueryCacheTest, SpecializationFlagIsPartOfTheKey) {
  auto G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  auto A = param("a", Type::doubleTy());
  auto V = param("v", Type::doubleTy());
  Query BagSum = Query::overVec(G.second())
                     .aggregate(E(0.0), lambda({A, V}, A + V),
                                lambda({A}, pair(G.first(), A)));
  Query Q = Query::doubleArray(0)
                .groupBy(lambda({x()}, toInt64(x())))
                .selectNested(G, BagSum);
  QueryCache Cache;
  CompileOptions On;
  On.Exec = Backend::Interp;
  CompileOptions Off = On;
  Off.SpecializeGroupByAggregate = false;
  EXPECT_TRUE(Cache.getOrCompile(Q, On).groupBySpecialized());
  EXPECT_FALSE(Cache.getOrCompile(Q, Off).groupBySpecialized());
  EXPECT_EQ(Cache.misses(), 2u);
}

TEST(QueryCacheTest, CachedNativeQuerySkipsRecompilation) {
  QueryCache Cache;
  CompiledQuery First = Cache.getOrCompile(sumSq(), {});
  EXPECT_GT(First.compileMillis(), 0.0);
  support::WallTimer T;
  CompiledQuery Second = Cache.getOrCompile(sumSq(), {});
  EXPECT_LT(T.millis(), First.compileMillis() / 2.0)
      << "cache hit must not re-invoke the compiler";
  // And the cached query runs.
  std::vector<double> Xs = {1.0, 2.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 2);
  EXPECT_DOUBLE_EQ(Second.run(B).scalarValue().asDouble(), 5.0);
}

TEST(QueryCacheTest, ClearEmptiesButHandlesSurvive) {
  QueryCache Cache;
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  CompiledQuery Kept = Cache.getOrCompile(sumSq(), Options);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  std::vector<double> Xs = {3.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 1);
  EXPECT_DOUBLE_EQ(Kept.run(B).scalarValue().asDouble(), 9.0);
}

TEST(QueryCacheTest, GlobalInstanceIsShared) {
  QueryCache &A = QueryCache::global();
  QueryCache &B = QueryCache::global();
  EXPECT_EQ(&A, &B);
}

//===--------------------------------------------------------------------===//
// The persistent (Nectar-style) cache
//===--------------------------------------------------------------------===//

namespace {

std::string freshCacheDir(const char *Tag) {
  static int Counter = 0;
  return support::processTempDir() + "/pcache_" + Tag + "_" +
         std::to_string(Counter++);
}

} // namespace

TEST(PersistentCacheTest, MissCompilesAndPersists) {
  PersistentQueryCache Cache(freshCacheDir("miss"));
  CompiledQuery CQ = Cache.getOrCompile(sumSq());
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 0u);
  std::vector<double> Xs = {1.0, 2.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 2);
  EXPECT_DOUBLE_EQ(CQ.run(B).scalarValue().asDouble(), 5.0);
}

TEST(PersistentCacheTest, SecondInstanceHitsFromDisk) {
  std::string Dir = freshCacheDir("hit");
  {
    PersistentQueryCache First(Dir);
    First.getOrCompile(sumSq());
  }
  // A fresh cache object (standing in for a new process) must rehydrate
  // the stored artifact without invoking the compiler.
  PersistentQueryCache Second(Dir);
  support::WallTimer T;
  CompiledQuery CQ = Second.getOrCompile(sumSq());
  double LoadMs = T.millis();
  EXPECT_EQ(Second.hits(), 1u);
  EXPECT_EQ(Second.misses(), 0u);
  EXPECT_LT(LoadMs, 100.0) << "dlopen, not a compile";
  std::vector<double> Xs = {3.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 1);
  EXPECT_DOUBLE_EQ(CQ.run(B).scalarValue().asDouble(), 9.0);
}

TEST(PersistentCacheTest, OptionsKeyEntriesSeparately) {
  std::string Dir = freshCacheDir("opts");
  PersistentQueryCache Cache(Dir);
  CompileOptions WithCse;
  CompileOptions NoCse;
  NoCse.EnableCse = false;
  Cache.getOrCompile(sumSq(), WithCse);
  Cache.getOrCompile(sumSq(), NoCse);
  EXPECT_EQ(Cache.misses(), 2u);
  Cache.getOrCompile(sumSq(), WithCse);
  EXPECT_EQ(Cache.hits(), 1u);
}

TEST(PersistentCacheTest, CorruptEntryRecompiles) {
  std::string Dir = freshCacheDir("corrupt");
  {
    PersistentQueryCache Cache(Dir);
    Cache.getOrCompile(sumSq());
  }
  // Truncate the stored object.
  std::string Entry;
  {
    PersistentQueryCache Probe(Dir);
    // Overwrite the .so of the only entry with garbage.
  }
  // Find and corrupt the entry's object file (redirection targets are
  // not globbed, so loop).
  std::string Cmd = "sh -c 'for f in " + Dir +
                    "/*/query.so; do echo garbage > \"$f\"; done'";
  ASSERT_EQ(std::system(Cmd.c_str()), 0);
  PersistentQueryCache Cache(Dir);
  CompiledQuery CQ = Cache.getOrCompile(sumSq());
  EXPECT_EQ(Cache.misses(), 1u) << "corrupt entry must recompile";
  std::vector<double> Xs = {2.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 1);
  EXPECT_DOUBLE_EQ(CQ.run(B).scalarValue().asDouble(), 4.0);
}

namespace {

/// The meta.txt of the single entry under \p Dir.
std::string onlyMetaPath(const std::string &Dir) {
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    std::string Meta = Entry.path().string() + "/meta.txt";
    if (std::filesystem::exists(Meta))
      return Meta;
  }
  return "";
}

} // namespace

TEST(PersistentCacheTest, CrashDamagedMetaMissesCleanly) {
  // Crash-consistency: any torn or tampered metadata must read as a
  // clean miss (recompile, correct results) — never an abort and never
  // a rehydrated query with partial slot-usage records, which would
  // silently skip binding validation.
  std::string Dir = freshCacheDir("crash");
  {
    PersistentQueryCache Cache(Dir);
    Cache.getOrCompile(sumSq());
  }
  std::string MetaPath = onlyMetaPath(Dir);
  ASSERT_FALSE(MetaPath.empty());
  std::string Good = support::readFileOrEmpty(MetaPath);
  ASSERT_NE(Good.find("steno-pcache v1"), std::string::npos);
  ASSERT_NE(Good.find("\nend\n"), std::string::npos);

  const std::pair<const char *, std::string> Corruptions[] = {
      // Torn write: truncated mid-file (drops the slot lines and the
      // sentinel). The pre-fix decoder accepted this.
      {"truncated", Good.substr(0, Good.find("srcslots"))},
      // Torn write: truncated mid-line.
      {"mid-line", Good.substr(0, Good.size() / 2)},
      // Pre-versioning format (no header, no sentinel).
      {"old-format", Good.substr(Good.find('\n') + 1)},
      // Arbitrary garbage and empty file.
      {"garbage", "entry \x01\xff not a meta file"},
      {"empty", ""},
  };
  std::vector<double> Xs = {1.0, 2.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 2);
  for (const auto &[Tag, Bad] : Corruptions) {
    support::writeFile(MetaPath, Bad);
    PersistentQueryCache Cache(Dir);
    CompiledQuery CQ = Cache.getOrCompile(sumSq());
    EXPECT_EQ(Cache.misses(), 1u) << Tag << ": damaged meta must miss";
    EXPECT_EQ(Cache.hits(), 0u) << Tag;
    EXPECT_DOUBLE_EQ(CQ.run(B).scalarValue().asDouble(), 5.0) << Tag;
    // The recompile healed the entry: a fresh instance hits again.
    PersistentQueryCache Healed(Dir);
    Healed.getOrCompile(sumSq());
    EXPECT_EQ(Healed.hits(), 1u) << Tag << ": entry did not heal";
  }
}

TEST(PersistentCacheTest, NoTemporaryFilesLeftBehind) {
  // All entry files are written via write-to-temp + rename; nothing
  // with a .tmp suffix may survive a successful fill.
  std::string Dir = freshCacheDir("tmpfiles");
  PersistentQueryCache Cache(Dir);
  Cache.getOrCompile(sumSq());
  for (const auto &Entry :
       std::filesystem::recursive_directory_iterator(Dir))
    EXPECT_EQ(Entry.path().string().find(".tmp"), std::string::npos)
        << Entry.path();
}

TEST(PersistentCacheTest, ComplexResultTypesRoundTrip) {
  // Rows of Pair(int64, double) through a rehydrated query.
  std::string Dir = freshCacheDir("pairs");
  auto A = param("a", Type::doubleTy());
  Query Q = Query::doubleArray(0).groupByAggregate(
      lambda({x()}, toInt64(x())), E(0.0), lambda({A, x()}, A + x()));
  {
    PersistentQueryCache First(Dir);
    First.getOrCompile(Q);
  }
  PersistentQueryCache Second(Dir);
  CompiledQuery CQ = Second.getOrCompile(Q);
  EXPECT_EQ(Second.hits(), 1u);
  std::vector<double> Xs = {1.25, 1.5, 2.25};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 3);
  QueryResult R = CQ.run(B);
  ASSERT_EQ(R.rows().size(), 2u);
  EXPECT_EQ(R.rows()[0].first().asInt64(), 1);
  EXPECT_DOUBLE_EQ(R.rows()[0].second().asDouble(), 2.75);
}

//===--------------------------------------------------------------------===//
// Type serialization (the persistence codec)
//===--------------------------------------------------------------------===//

TEST(TypeSerialize, RoundTrips) {
  for (TypeRef T :
       {Type::boolTy(), Type::int64Ty(), Type::doubleTy(), Type::vecTy(),
        Type::pairTy(Type::int64Ty(), Type::vecTy()),
        Type::pairTy(Type::pairTy(Type::boolTy(), Type::doubleTy()),
                     Type::int64Ty())}) {
    TypeRef Back = Type::deserialize(T->serialize());
    ASSERT_TRUE(Back != nullptr) << T->serialize();
    EXPECT_TRUE(sameType(T, Back)) << T->serialize();
  }
}

TEST(TypeSerialize, RejectsMalformed) {
  EXPECT_EQ(Type::deserialize(""), nullptr);
  EXPECT_EQ(Type::deserialize("x"), nullptr);
  EXPECT_EQ(Type::deserialize("p(d"), nullptr);
  EXPECT_EQ(Type::deserialize("p(d,i"), nullptr);
  EXPECT_EQ(Type::deserialize("dd"), nullptr);
  EXPECT_EQ(Type::deserialize("p(d,i))"), nullptr);
}
