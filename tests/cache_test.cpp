//===- tests/cache_test.cpp - Query cache & structural hashing -*- C++ -*-===//

#include "expr/Analysis.h"
#include "steno/PersistentCache.h"
#include "steno/QueryCache.h"
#include "support/TempFile.h"
#include "support/Timing.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

using namespace steno;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

namespace {

E x() { return param("x", Type::doubleTy()); }

Query sumSq() {
  return Query::doubleArray(0).select(lambda({x()}, x() * x())).sum();
}

} // namespace

//===--------------------------------------------------------------------===//
// Structural hashing / equality of expressions
//===--------------------------------------------------------------------===//

TEST(ExprHash, EqualStructureEqualHash) {
  E A = x() * x() + 1.0;
  E B = x() * x() + 1.0;
  EXPECT_NE(A.node(), B.node());
  EXPECT_EQ(hashExpr(*A.node()), hashExpr(*B.node()));
  EXPECT_TRUE(equalExprs(*A.node(), *B.node()));
}

TEST(ExprHash, LiteralsDistinguish) {
  E A = x() + 1.0;
  E B = x() + 2.0;
  EXPECT_FALSE(equalExprs(*A.node(), *B.node()));
  EXPECT_NE(hashExpr(*A.node()), hashExpr(*B.node()));
}

TEST(ExprHash, OperatorsDistinguish) {
  EXPECT_FALSE(equalExprs(*(x() + 1.0).node(), *(x() - 1.0).node()));
}

TEST(ExprHash, ParamNamesDistinguish) {
  E A = param("a", Type::doubleTy());
  E B = param("b", Type::doubleTy());
  EXPECT_FALSE(equalExprs(*A.node(), *B.node()));
}

TEST(ExprHash, SlotsDistinguish) {
  EXPECT_FALSE(equalExprs(*capture(0, Type::doubleTy()).node(),
                          *capture(1, Type::doubleTy()).node()));
  EXPECT_FALSE(equalExprs(*sourceLen(0).node(), *sourceLen(1).node()));
}

TEST(ExprHash, IntAndDoubleLiteralsDiffer) {
  EXPECT_FALSE(
      equalExprs(*E(1).node(), *E(1.0).node()));
}

TEST(ExprHash, Lambdas) {
  Lambda A = lambda({x()}, x() * 2.0);
  Lambda B = lambda({x()}, x() * 2.0);
  Lambda C = lambda({x()}, x() * 3.0);
  EXPECT_TRUE(equalLambdas(A, B));
  EXPECT_EQ(hashLambda(A), hashLambda(B));
  EXPECT_FALSE(equalLambdas(A, C));
  EXPECT_TRUE(equalLambdas(Lambda(), Lambda()));
  EXPECT_FALSE(equalLambdas(A, Lambda()));
}

//===--------------------------------------------------------------------===//
// Query fingerprints
//===--------------------------------------------------------------------===//

TEST(QueryHash, IndependentlyBuiltQueriesAreEqual) {
  Query A = sumSq();
  Query B = sumSq();
  EXPECT_NE(A.node(), B.node());
  EXPECT_EQ(hashQuery(A), hashQuery(B));
  EXPECT_TRUE(equalQueries(A, B));
}

TEST(QueryHash, DifferentSlotsDiffer) {
  Query A = Query::doubleArray(0).sum();
  Query B = Query::doubleArray(1).sum();
  EXPECT_FALSE(equalQueries(A, B));
}

TEST(QueryHash, DifferentOperatorsDiffer) {
  EXPECT_FALSE(equalQueries(Query::doubleArray(0).sum(),
                            Query::doubleArray(0).count()));
}

TEST(QueryHash, NestedQueriesCompared) {
  auto Y = param("y", Type::doubleTy());
  auto Build = [&](double K) {
    return Query::doubleArray(0).selectMany(
        x(), Query::doubleArray(1).select(lambda({Y}, x() * Y + K)));
  };
  EXPECT_TRUE(equalQueries(Build(1.0), Build(1.0)));
  EXPECT_FALSE(equalQueries(Build(1.0), Build(2.0)));
}

TEST(QueryHash, ChainPrefixIsNotEqual) {
  Query Short = Query::doubleArray(0).where(lambda({x()}, x() > 0.0));
  Query Long = Short.select(lambda({x()}, x() * 2.0));
  EXPECT_FALSE(equalQueries(Short, Long));
}

//===--------------------------------------------------------------------===//
// The cache
//===--------------------------------------------------------------------===//

TEST(QueryCacheTest, HitOnStructurallyEqualQuery) {
  QueryCache Cache;
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  CompiledQuery A = Cache.getOrCompile(sumSq(), Options);
  CompiledQuery B = Cache.getOrCompile(sumSq(), Options);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(&A.generatedSource(), &B.generatedSource())
      << "both handles share one compiled module";
}

TEST(QueryCacheTest, MissOnDifferentStructure) {
  QueryCache Cache;
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  Cache.getOrCompile(sumSq(), Options);
  Cache.getOrCompile(Query::doubleArray(0).sum(), Options);
  EXPECT_EQ(Cache.misses(), 2u);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(QueryCacheTest, BackendIsPartOfTheKey) {
  QueryCache Cache;
  CompileOptions Interp;
  Interp.Exec = Backend::Interp;
  CompileOptions Native;
  Native.Exec = Backend::Native;
  Cache.getOrCompile(sumSq(), Interp);
  Cache.getOrCompile(sumSq(), Native);
  EXPECT_EQ(Cache.misses(), 2u);
}

TEST(QueryCacheTest, SpecializationFlagIsPartOfTheKey) {
  auto G = param("g", Type::pairTy(Type::int64Ty(), Type::vecTy()));
  auto A = param("a", Type::doubleTy());
  auto V = param("v", Type::doubleTy());
  Query BagSum = Query::overVec(G.second())
                     .aggregate(E(0.0), lambda({A, V}, A + V),
                                lambda({A}, pair(G.first(), A)));
  Query Q = Query::doubleArray(0)
                .groupBy(lambda({x()}, toInt64(x())))
                .selectNested(G, BagSum);
  QueryCache Cache;
  CompileOptions On;
  On.Exec = Backend::Interp;
  CompileOptions Off = On;
  Off.SpecializeGroupByAggregate = false;
  EXPECT_TRUE(Cache.getOrCompile(Q, On).groupBySpecialized());
  EXPECT_FALSE(Cache.getOrCompile(Q, Off).groupBySpecialized());
  EXPECT_EQ(Cache.misses(), 2u);
}

TEST(QueryCacheTest, CachedNativeQuerySkipsRecompilation) {
  QueryCache Cache;
  CompiledQuery First = Cache.getOrCompile(sumSq(), {});
  EXPECT_GT(First.compileMillis(), 0.0);
  support::WallTimer T;
  CompiledQuery Second = Cache.getOrCompile(sumSq(), {});
  EXPECT_LT(T.millis(), First.compileMillis() / 2.0)
      << "cache hit must not re-invoke the compiler";
  // And the cached query runs.
  std::vector<double> Xs = {1.0, 2.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 2);
  EXPECT_DOUBLE_EQ(Second.run(B).scalarValue().asDouble(), 5.0);
}

TEST(QueryCacheTest, ClearEmptiesButHandlesSurvive) {
  QueryCache Cache;
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  CompiledQuery Kept = Cache.getOrCompile(sumSq(), Options);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  std::vector<double> Xs = {3.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 1);
  EXPECT_DOUBLE_EQ(Kept.run(B).scalarValue().asDouble(), 9.0);
}

TEST(QueryCacheTest, GlobalInstanceIsShared) {
  QueryCache &A = QueryCache::global();
  QueryCache &B = QueryCache::global();
  EXPECT_EQ(&A, &B);
}

TEST(QueryCacheTest, LookupPeeksWithoutCompiling) {
  QueryCache Cache;
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  EXPECT_FALSE(Cache.lookup(sumSq(), Options).valid());
  EXPECT_EQ(Cache.misses(), 0u) << "lookup must not count as a miss";
  CompiledQuery Compiled = Cache.getOrCompile(sumSq(), Options);
  CompiledQuery Peeked = Cache.lookup(sumSq(), Options);
  ASSERT_TRUE(Peeked.valid());
  EXPECT_EQ(&Peeked.generatedSource(), &Compiled.generatedSource());
  EXPECT_EQ(Cache.hits(), 0u) << "lookup must not count as a hit";
}

TEST(QueryCacheTest, InsertIsFirstWins) {
  QueryCache Cache;
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  // Two independently compiled modules for one key: the second insert
  // must drop its argument and return the canonical first entry.
  CompiledQuery A = compileQuery(sumSq(), Options);
  CompiledQuery B = compileQuery(sumSq(), Options);
  CompiledQuery InA = Cache.insert(sumSq(), Options, A);
  CompiledQuery InB = Cache.insert(sumSq(), Options, B);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(&InA.generatedSource(), &InB.generatedSource());
  EXPECT_EQ(&InB.generatedSource(), &A.generatedSource());
  EXPECT_EQ(Cache.duplicateCompilesDropped(), 1u);
}

TEST(QueryCacheTest, EvictRemovesExactlyTheKeyedEntry) {
  QueryCache Cache;
  CompileOptions Interp;
  Interp.Exec = Backend::Interp;
  CompileOptions NoSpec = Interp;
  NoSpec.SpecializeGroupByAggregate = false;
  CompiledQuery Kept = Cache.getOrCompile(sumSq(), Interp);
  Cache.getOrCompile(sumSq(), NoSpec);
  ASSERT_EQ(Cache.size(), 2u);
  EXPECT_TRUE(Cache.evict(sumSq(), NoSpec));
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_FALSE(Cache.evict(sumSq(), NoSpec)) << "already gone";
  EXPECT_TRUE(Cache.lookup(sumSq(), Interp).valid())
      << "the other options-key survives";
  // Evicted handles keep working (shared module state).
  std::vector<double> Xs = {2.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 1);
  EXPECT_TRUE(Cache.evict(sumSq(), Interp));
  EXPECT_DOUBLE_EQ(Kept.run(B).scalarValue().asDouble(), 4.0);
}

TEST(QueryCacheTest, ConcurrentMissesConvergeOnOneEntry) {
  // The duplicate-insert race: N threads miss the same key at once, all
  // compile (compilation is outside the lock), but first-wins insertion
  // must leave exactly one entry, and every caller must receive it.
  constexpr unsigned Threads = 8;
  QueryCache Cache;
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  std::vector<const std::string *> Sources(Threads);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      CompiledQuery CQ = Cache.getOrCompile(sumSq(), Options);
      Sources[T] = &CQ.generatedSource();
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Cache.size(), 1u) << "duplicate entries for one key";
  for (unsigned T = 1; T < Threads; ++T)
    EXPECT_EQ(Sources[T], Sources[0])
        << "caller " << T << " got a non-canonical module";
  EXPECT_EQ(Cache.hits() + Cache.misses(), Threads);
  EXPECT_GE(Cache.misses(), 1u);
}

TEST(QueryCacheTest, ConcurrentInsertLookupEvictSameKey) {
  // Hammer one key from three kinds of threads; the cache must stay
  // coherent: size is always 0 or 1 for the key, lookups only ever see
  // the canonical entry, and nothing crashes or deadlocks.
  constexpr unsigned Iters = 200;
  QueryCache Cache;
  CompileOptions Options;
  Options.Exec = Backend::Interp;
  CompiledQuery Seed = compileQuery(sumSq(), Options);
  std::atomic<bool> Stop{false};
  std::atomic<std::uint64_t> Inserted{0}, Evicted{0};

  std::vector<std::thread> Pool;
  for (int T = 0; T < 2; ++T)
    Pool.emplace_back([&] {
      for (unsigned I = 0; I < Iters; ++I) {
        CompiledQuery Canon = Cache.insert(sumSq(), Options, Seed);
        EXPECT_TRUE(Canon.valid());
        Inserted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  Pool.emplace_back([&] {
    for (unsigned I = 0; I < Iters; ++I)
      if (Cache.evict(sumSq(), Options))
        Evicted.fetch_add(1, std::memory_order_relaxed);
  });
  Pool.emplace_back([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      CompiledQuery Peek = Cache.lookup(sumSq(), Options);
      if (Peek.valid()) {
        EXPECT_EQ(&Peek.generatedSource(), &Seed.generatedSource());
      }
      EXPECT_LE(Cache.size(), 1u);
    }
  });
  for (std::size_t I = 0; I + 1 < Pool.size(); ++I)
    Pool[I].join();
  Stop.store(true, std::memory_order_relaxed);
  Pool.back().join();

  EXPECT_EQ(Inserted.load(), 2u * Iters) << "every insert returned";
  EXPECT_LE(Cache.size(), 1u);
  // The entry (if present) is still runnable.
  CompiledQuery Final = Cache.getOrCompile(sumSq(), Options);
  std::vector<double> Xs = {1.0, 2.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 2);
  EXPECT_DOUBLE_EQ(Final.run(B).scalarValue().asDouble(), 5.0);
}

//===--------------------------------------------------------------------===//
// The persistent (Nectar-style) cache
//===--------------------------------------------------------------------===//

namespace {

std::string freshCacheDir(const char *Tag) {
  static int Counter = 0;
  return support::processTempDir() + "/pcache_" + Tag + "_" +
         std::to_string(Counter++);
}

} // namespace

TEST(PersistentCacheTest, MissCompilesAndPersists) {
  PersistentQueryCache Cache(freshCacheDir("miss"));
  CompiledQuery CQ = Cache.getOrCompile(sumSq());
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 0u);
  std::vector<double> Xs = {1.0, 2.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 2);
  EXPECT_DOUBLE_EQ(CQ.run(B).scalarValue().asDouble(), 5.0);
}

TEST(PersistentCacheTest, SecondInstanceHitsFromDisk) {
  std::string Dir = freshCacheDir("hit");
  {
    PersistentQueryCache First(Dir);
    First.getOrCompile(sumSq());
  }
  // A fresh cache object (standing in for a new process) must rehydrate
  // the stored artifact without invoking the compiler.
  PersistentQueryCache Second(Dir);
  support::WallTimer T;
  CompiledQuery CQ = Second.getOrCompile(sumSq());
  double LoadMs = T.millis();
  EXPECT_EQ(Second.hits(), 1u);
  EXPECT_EQ(Second.misses(), 0u);
  EXPECT_LT(LoadMs, 100.0) << "dlopen, not a compile";
  std::vector<double> Xs = {3.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 1);
  EXPECT_DOUBLE_EQ(CQ.run(B).scalarValue().asDouble(), 9.0);
}

TEST(PersistentCacheTest, OptionsKeyEntriesSeparately) {
  std::string Dir = freshCacheDir("opts");
  PersistentQueryCache Cache(Dir);
  CompileOptions WithCse;
  CompileOptions NoCse;
  NoCse.EnableCse = false;
  Cache.getOrCompile(sumSq(), WithCse);
  Cache.getOrCompile(sumSq(), NoCse);
  EXPECT_EQ(Cache.misses(), 2u);
  Cache.getOrCompile(sumSq(), WithCse);
  EXPECT_EQ(Cache.hits(), 1u);
}

TEST(PersistentCacheTest, CorruptEntryRecompiles) {
  std::string Dir = freshCacheDir("corrupt");
  {
    PersistentQueryCache Cache(Dir);
    Cache.getOrCompile(sumSq());
  }
  // Truncate the stored object.
  std::string Entry;
  {
    PersistentQueryCache Probe(Dir);
    // Overwrite the .so of the only entry with garbage.
  }
  // Find and corrupt the entry's object file (redirection targets are
  // not globbed, so loop).
  std::string Cmd = "sh -c 'for f in " + Dir +
                    "/*/query.so; do echo garbage > \"$f\"; done'";
  ASSERT_EQ(std::system(Cmd.c_str()), 0);
  PersistentQueryCache Cache(Dir);
  CompiledQuery CQ = Cache.getOrCompile(sumSq());
  EXPECT_EQ(Cache.misses(), 1u) << "corrupt entry must recompile";
  std::vector<double> Xs = {2.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 1);
  EXPECT_DOUBLE_EQ(CQ.run(B).scalarValue().asDouble(), 4.0);
}

namespace {

/// The meta.txt of the single entry under \p Dir.
std::string onlyMetaPath(const std::string &Dir) {
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    std::string Meta = Entry.path().string() + "/meta.txt";
    if (std::filesystem::exists(Meta))
      return Meta;
  }
  return "";
}

} // namespace

TEST(PersistentCacheTest, CrashDamagedMetaMissesCleanly) {
  // Crash-consistency: any torn or tampered metadata must read as a
  // clean miss (recompile, correct results) — never an abort and never
  // a rehydrated query with partial slot-usage records, which would
  // silently skip binding validation.
  std::string Dir = freshCacheDir("crash");
  {
    PersistentQueryCache Cache(Dir);
    Cache.getOrCompile(sumSq());
  }
  std::string MetaPath = onlyMetaPath(Dir);
  ASSERT_FALSE(MetaPath.empty());
  std::string Good = support::readFileOrEmpty(MetaPath);
  ASSERT_NE(Good.find("steno-pcache v1"), std::string::npos);
  ASSERT_NE(Good.find("\nend\n"), std::string::npos);

  const std::pair<const char *, std::string> Corruptions[] = {
      // Torn write: truncated mid-file (drops the slot lines and the
      // sentinel). The pre-fix decoder accepted this.
      {"truncated", Good.substr(0, Good.find("srcslots"))},
      // Torn write: truncated mid-line.
      {"mid-line", Good.substr(0, Good.size() / 2)},
      // Pre-versioning format (no header, no sentinel).
      {"old-format", Good.substr(Good.find('\n') + 1)},
      // Arbitrary garbage and empty file.
      {"garbage", "entry \x01\xff not a meta file"},
      {"empty", ""},
  };
  std::vector<double> Xs = {1.0, 2.0};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 2);
  for (const auto &[Tag, Bad] : Corruptions) {
    support::writeFile(MetaPath, Bad);
    PersistentQueryCache Cache(Dir);
    CompiledQuery CQ = Cache.getOrCompile(sumSq());
    EXPECT_EQ(Cache.misses(), 1u) << Tag << ": damaged meta must miss";
    EXPECT_EQ(Cache.hits(), 0u) << Tag;
    EXPECT_DOUBLE_EQ(CQ.run(B).scalarValue().asDouble(), 5.0) << Tag;
    // The recompile healed the entry: a fresh instance hits again.
    PersistentQueryCache Healed(Dir);
    Healed.getOrCompile(sumSq());
    EXPECT_EQ(Healed.hits(), 1u) << Tag << ": entry did not heal";
  }
}

TEST(PersistentCacheTest, NoTemporaryFilesLeftBehind) {
  // All entry files are written via write-to-temp + rename; nothing
  // with a .tmp suffix may survive a successful fill.
  std::string Dir = freshCacheDir("tmpfiles");
  PersistentQueryCache Cache(Dir);
  Cache.getOrCompile(sumSq());
  for (const auto &Entry :
       std::filesystem::recursive_directory_iterator(Dir))
    EXPECT_EQ(Entry.path().string().find(".tmp"), std::string::npos)
        << Entry.path();
}

TEST(PersistentCacheTest, ComplexResultTypesRoundTrip) {
  // Rows of Pair(int64, double) through a rehydrated query.
  std::string Dir = freshCacheDir("pairs");
  auto A = param("a", Type::doubleTy());
  Query Q = Query::doubleArray(0).groupByAggregate(
      lambda({x()}, toInt64(x())), E(0.0), lambda({A, x()}, A + x()));
  {
    PersistentQueryCache First(Dir);
    First.getOrCompile(Q);
  }
  PersistentQueryCache Second(Dir);
  CompiledQuery CQ = Second.getOrCompile(Q);
  EXPECT_EQ(Second.hits(), 1u);
  std::vector<double> Xs = {1.25, 1.5, 2.25};
  Bindings B;
  B.bindDoubleArray(0, Xs.data(), 3);
  QueryResult R = CQ.run(B);
  ASSERT_EQ(R.rows().size(), 2u);
  EXPECT_EQ(R.rows()[0].first().asInt64(), 1);
  EXPECT_DOUBLE_EQ(R.rows()[0].second().asDouble(), 2.75);
}

//===--------------------------------------------------------------------===//
// Type serialization (the persistence codec)
//===--------------------------------------------------------------------===//

TEST(TypeSerialize, RoundTrips) {
  for (TypeRef T :
       {Type::boolTy(), Type::int64Ty(), Type::doubleTy(), Type::vecTy(),
        Type::pairTy(Type::int64Ty(), Type::vecTy()),
        Type::pairTy(Type::pairTy(Type::boolTy(), Type::doubleTy()),
                     Type::int64Ty())}) {
    TypeRef Back = Type::deserialize(T->serialize());
    ASSERT_TRUE(Back != nullptr) << T->serialize();
    EXPECT_TRUE(sameType(T, Back)) << T->serialize();
  }
}

TEST(TypeSerialize, RejectsMalformed) {
  EXPECT_EQ(Type::deserialize(""), nullptr);
  EXPECT_EQ(Type::deserialize("x"), nullptr);
  EXPECT_EQ(Type::deserialize("p(d"), nullptr);
  EXPECT_EQ(Type::deserialize("p(d,i"), nullptr);
  EXPECT_EQ(Type::deserialize("dd"), nullptr);
  EXPECT_EQ(Type::deserialize("p(d,i))"), nullptr);
}
