//===- tests/dryad_test.cpp - Distributed substrate tests ------*- C++ -*-===//

#include "QueryTestUtil.h"
#include "dryad/Dist.h"
#include "dryad/HomomorphicApply.h"
#include "dryad/JobGraph.h"
#include "dryad/Partition.h"
#include "dryad/Plan.h"
#include "dryad/ThreadPool.h"
#include "steno/RefExec.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <atomic>
#include <map>
#include <numeric>

using namespace steno;
using namespace steno::dryad;
using namespace steno::expr;
using namespace steno::expr::dsl;
using query::Query;

//===--------------------------------------------------------------------===//
// ThreadPool
//===--------------------------------------------------------------------===//

TEST(DryadPool, RunsAllTasks) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(DryadPool, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 2);
}

TEST(DryadPool, ZeroWorkersClampedToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.workerCount(), 1u);
  std::atomic<bool> Ran{false};
  Pool.submit([&Ran] { Ran = true; });
  Pool.wait();
  EXPECT_TRUE(Ran.load());
}

//===--------------------------------------------------------------------===//
// JobGraph
//===--------------------------------------------------------------------===//

TEST(DryadGraph, RespectsDependencies) {
  ThreadPool Pool(4);
  JobGraph G;
  std::atomic<int> Order{0};
  int APos = -1, BPos = -1, CPos = -1;
  auto A = G.addVertex("a", [&] { APos = Order++; });
  auto B = G.addVertex("b", [&] { BPos = Order++; }, {A});
  G.addVertex("c", [&] { CPos = Order++; }, {A, B});
  G.run(Pool);
  EXPECT_LT(APos, BPos);
  EXPECT_LT(BPos, CPos);
}

TEST(DryadGraph, FanOutFanIn) {
  // The Figure 12 shape: P parallel vertices then one combiner.
  ThreadPool Pool(4);
  JobGraph G;
  const int P = 16;
  std::vector<int> Results(P, 0);
  std::vector<JobGraph::VertexId> Stage1;
  for (int I = 0; I < P; ++I)
    Stage1.push_back(
        G.addVertex("p" + std::to_string(I), [&Results, I] {
          Results[I] = I * I;
        }));
  int Total = -1;
  G.addVertex("combine",
              [&] { Total = std::accumulate(Results.begin(),
                                            Results.end(), 0); },
              Stage1);
  G.run(Pool);
  int Expected = 0;
  for (int I = 0; I < P; ++I)
    Expected += I * I;
  EXPECT_EQ(Total, Expected);
}

TEST(DryadGraph, EmptyGraphRuns) {
  ThreadPool Pool(1);
  JobGraph G;
  G.run(Pool); // must not hang
  SUCCEED();
}

//===--------------------------------------------------------------------===//
// Partitioning
//===--------------------------------------------------------------------===//

TEST(DryadPartition, EvenSplit) {
  std::vector<double> Flat(100);
  std::iota(Flat.begin(), Flat.end(), 0.0);
  std::vector<DoublePartition> Parts = partitionDoubles(Flat, 4);
  ASSERT_EQ(Parts.size(), 4u);
  for (const DoublePartition &P : Parts)
    EXPECT_EQ(P.Data.size(), 25u);
  EXPECT_DOUBLE_EQ(Parts[1].Data.front(), 25.0);
}

TEST(DryadPartition, UnevenSplitCoversAll) {
  std::vector<double> Flat(103);
  std::iota(Flat.begin(), Flat.end(), 0.0);
  std::vector<DoublePartition> Parts = partitionDoubles(Flat, 4);
  size_t Total = 0;
  double Sum = 0;
  for (const DoublePartition &P : Parts) {
    Total += P.Data.size();
    for (double V : P.Data)
      Sum += V;
  }
  EXPECT_EQ(Total, 103u);
  EXPECT_DOUBLE_EQ(Sum, 103.0 * 102.0 / 2.0);
}

TEST(DryadPartition, PointsNeverSplit) {
  std::vector<double> Flat(7 * 3); // 7 points of dim 3
  std::iota(Flat.begin(), Flat.end(), 0.0);
  std::vector<DoublePartition> Parts = partitionPoints(Flat, 3, 2);
  ASSERT_EQ(Parts.size(), 2u);
  EXPECT_EQ(Parts[0].count(), 4);
  EXPECT_EQ(Parts[1].count(), 3);
  EXPECT_EQ(Parts[0].Data.size() % 3, 0u);
  EXPECT_DOUBLE_EQ(Parts[1].Data.front(), 12.0);
}

TEST(DryadPartition, MorePartsThanElements) {
  std::vector<double> Flat = {1.0, 2.0};
  std::vector<DoublePartition> Parts = partitionDoubles(Flat, 5);
  ASSERT_EQ(Parts.size(), 5u);
  EXPECT_EQ(Parts[0].Data.size(), 1u);
  EXPECT_EQ(Parts[2].Data.size(), 0u);
}

//===--------------------------------------------------------------------===//
// HomomorphicApply
//===--------------------------------------------------------------------===//

TEST(DryadHomApply, MapsAcrossPartitions) {
  ThreadPool Pool(4);
  std::vector<DoublePartition> Parts =
      partitionDoubles({1, 2, 3, 4, 5, 6}, 3);
  std::vector<double> Sums = homomorphicApply(
      Pool, Parts, [](const DoublePartition &P) {
        double S = 0;
        for (double V : P.Data)
          S += V;
        return S;
      });
  ASSERT_EQ(Sums.size(), 3u);
  EXPECT_DOUBLE_EQ(Sums[0] + Sums[1] + Sums[2], 21.0);
  EXPECT_DOUBLE_EQ(Sums[0], 3.0) << "partition order preserved";
}

//===--------------------------------------------------------------------===//
// Parallel planning (§6)
//===--------------------------------------------------------------------===//

namespace {

E x() { return param("x", Type::doubleTy()); }

} // namespace

TEST(DryadPlan, SelectAggregateSplits) {
  // Figure 12's example: Select-Aggregate.
  Query Q = Query::doubleArray(0).select(lambda({x()}, x() * x())).sum();
  quil::Chain C = quil::lower(Q);
  std::string Why;
  auto Plan = planParallel(C, &Why);
  ASSERT_TRUE(Plan.has_value()) << Why;
  EXPECT_EQ(Plan->Kind, CombineKind::Fold);
  EXPECT_TRUE(Plan->Combiner.valid());
  EXPECT_TRUE(Plan->VertexChain.Scalar);
  EXPECT_EQ(Plan->VertexChain.symbols(), "Src Trans Agg Ret");
}

TEST(DryadPlan, HomomorphicPrefixKeepsNested) {
  auto P = param("p", Type::vecTy());
  auto V = param("v", Type::doubleTy());
  Query Q = Query::pointArray(0)
                .selectNested(P, Query::overVec(P)
                                     .select(lambda({V}, V * V))
                                     .sum())
                .sum();
  auto Plan = planParallel(quil::lower(Q));
  ASSERT_TRUE(Plan.has_value());
  EXPECT_EQ(Plan->VertexChain.symbols(),
            "Src (Src Trans Agg Ret) Agg Ret");
}

TEST(DryadPlan, PureHomomorphicIsConcat) {
  Query Q = Query::doubleArray(0).where(lambda({x()}, x() > 0.0));
  auto Plan = planParallel(quil::lower(Q));
  ASSERT_TRUE(Plan.has_value());
  EXPECT_EQ(Plan->Kind, CombineKind::Concat);
}

TEST(DryadPlan, GroupByAggregateMerges) {
  auto A = param("a", Type::doubleTy());
  Query Q = Query::doubleArray(0).groupByAggregate(
      lambda({x()}, toInt64(x())), E(0.0), lambda({A, x()}, A + x()),
      Lambda(),
      lambda({param("u", Type::doubleTy()), param("w", Type::doubleTy())},
             param("u", Type::doubleTy()) + param("w", Type::doubleTy())));
  auto Plan = planParallel(quil::lower(Q));
  ASSERT_TRUE(Plan.has_value());
  EXPECT_EQ(Plan->Kind, CombineKind::MergeByKey);
}

TEST(DryadPlan, RejectsStatefulPred) {
  Query Q = Query::doubleArray(0).take(E(5)).sum();
  std::string Why;
  auto Plan = planParallel(quil::lower(Q), &Why);
  EXPECT_FALSE(Plan.has_value());
  EXPECT_NE(Why.find("order-dependent"), std::string::npos) << Why;
}

TEST(DryadPlan, RejectsAggWithoutCombiner) {
  auto A = param("a", Type::doubleTy());
  // A non-combinable fold: "last element wins".
  Query Q = Query::doubleArray(0).aggregate(E(0.0),
                                            lambda({A, x()}, x()));
  std::string Why;
  auto Plan = planParallel(quil::lower(Q), &Why);
  EXPECT_FALSE(Plan.has_value());
  EXPECT_NE(Why.find("combiner"), std::string::npos) << Why;
}

TEST(DryadPlan, TrailingToArrayIsConcat) {
  Query Q = Query::doubleArray(0)
                .select(lambda({x()}, x() * 2.0))
                .toArray();
  auto Plan = planParallel(quil::lower(Q));
  ASSERT_TRUE(Plan.has_value());
  EXPECT_EQ(Plan->Kind, CombineKind::Concat);
}

TEST(DryadPlan, TrailingOrderByIsMergeSorted) {
  Query Q = Query::doubleArray(0).orderBy(lambda({x()}, x()));
  auto Plan = planParallel(quil::lower(Q));
  ASSERT_TRUE(Plan.has_value());
  EXPECT_EQ(Plan->Kind, CombineKind::MergeSorted);
  EXPECT_TRUE(Plan->SortKey.valid());
}

TEST(DryadDist, DistributedSortMatchesSequential) {
  std::vector<double> Flat = testutil::randomDoubles(333, 14);
  Query Q = Query::doubleArray(0)
                .select(lambda({x()}, x() + 1.0))
                .orderBy(lambda({x()}, abs(x())));
  Bindings Whole;
  Whole.bindDoubleArray(0, Flat.data(),
                        static_cast<std::int64_t>(Flat.size()));
  QueryResult Ref = runReference(Q, Whole);
  ThreadPool Pool(4);
  DistOptions Options;
  Options.Exec = Backend::Interp;
  Options.Name = "sort";
  DistributedQuery DQ = DistributedQuery::compile(Q, Options);
  QueryResult Got = DQ.runParallel(Pool, Whole);
  ASSERT_EQ(Ref.rows().size(), Got.rows().size());
  for (size_t I = 0; I != Ref.rows().size(); ++I)
    EXPECT_DOUBLE_EQ(Ref.rows()[I].asDouble(), Got.rows()[I].asDouble())
        << "row " << I;
}

TEST(DryadPlan, RejectsOperatorsAfterSort) {
  // OrderBy is only parallelizable as the final operator (the merge is
  // the last stage); anything downstream of it needs repartitioning.
  Query Q = Query::doubleArray(0).orderBy(lambda({x()}, x())).toArray();
  std::string Why;
  auto Plan = planParallel(quil::lower(Q), &Why);
  EXPECT_FALSE(Plan.has_value());
  EXPECT_NE(Why.find("repartition"), std::string::npos) << Why;
}

//===--------------------------------------------------------------------===//
// End-to-end distributed execution
//===--------------------------------------------------------------------===//

namespace {

/// Builds per-partition bindings for slot 0 over a partitioned buffer.
std::vector<Bindings> bindingsFor(const std::vector<DoublePartition> &Parts) {
  std::vector<Bindings> Out;
  Out.reserve(Parts.size());
  for (const DoublePartition &P : Parts) {
    Bindings B;
    if (P.Dim == 1)
      B.bindDoubleArray(0, P.Data.data(),
                        static_cast<std::int64_t>(P.Data.size()));
    else
      B.bindPointArray(0, P.Data.data(), P.count(), P.Dim);
    Out.push_back(std::move(B));
  }
  return Out;
}

DistOptions interpDist(const char *Name) {
  DistOptions O;
  O.Exec = Backend::Interp; // keep unit tests JIT-free; e2e covers Native
  O.Name = Name;
  return O;
}

} // namespace

TEST(DryadDist, SumSqMatchesSequential) {
  std::vector<double> Flat = testutil::randomDoubles(997, 5);
  Query Q = Query::doubleArray(0).select(lambda({x()}, x() * x())).sum();

  Bindings Whole;
  Whole.bindDoubleArray(0, Flat.data(),
                        static_cast<std::int64_t>(Flat.size()));
  double Expected = runReference(Q, Whole).scalarValue().asDouble();

  ThreadPool Pool(4);
  DistributedQuery DQ = DistributedQuery::compile(Q, interpDist("sumsq"));
  std::vector<DoublePartition> Partitions = partitionDoubles(Flat, 7);
  double Got =
      DQ.run(Pool, bindingsFor(Partitions)).scalarValue().asDouble();
  EXPECT_NEAR(Got, Expected, 1e-6 * std::abs(Expected))
      << "partial sums reassociate, so allow rounding slack";
}

TEST(DryadDist, ConcatPreservesPartitionOrder) {
  std::vector<double> Flat = {1, 2, 3, 4, 5, 6, 7};
  Query Q = Query::doubleArray(0).select(lambda({x()}, x() * 10.0));
  ThreadPool Pool(3);
  DistributedQuery DQ =
      DistributedQuery::compile(Q, interpDist("concat"));
  std::vector<DoublePartition> Partitions = partitionDoubles(Flat, 3);
  QueryResult R = DQ.run(Pool, bindingsFor(Partitions));
  ASSERT_EQ(R.rows().size(), 7u);
  for (size_t I = 0; I != 7; ++I)
    EXPECT_DOUBLE_EQ(R.rows()[I].asDouble(), (I + 1) * 10.0);
}

TEST(DryadDist, GroupByAggregateMergesAcrossPartitions) {
  std::vector<double> Flat = testutil::randomDoubles(500, 6, 0, 50);
  auto A = param("a", Type::doubleTy());
  auto U = param("u", Type::doubleTy());
  auto W = param("w", Type::doubleTy());
  Query Q = Query::doubleArray(0).groupByAggregate(
      lambda({x()}, toInt64(x() / 10.0)), E(0.0),
      lambda({A, x()}, A + x()), Lambda(), lambda({U, W}, U + W));

  Bindings Whole;
  Whole.bindDoubleArray(0, Flat.data(),
                        static_cast<std::int64_t>(Flat.size()));
  QueryResult Ref = runReference(Q, Whole);

  ThreadPool Pool(4);
  DistributedQuery DQ = DistributedQuery::compile(Q, interpDist("gba"));
  std::vector<DoublePartition> Partitions = partitionDoubles(Flat, 5);
  QueryResult Got = DQ.run(Pool, bindingsFor(Partitions));

  // Key sets must match; per-key sums must match (order may differ from
  // the sequential first-appearance order only if partition boundaries
  // reorder first appearances; compare as maps).
  ASSERT_EQ(Ref.rows().size(), Got.rows().size());
  std::map<std::int64_t, double> RefMap, GotMap;
  for (const Value &V : Ref.rows())
    RefMap[V.first().asInt64()] = V.second().asDouble();
  for (const Value &V : Got.rows())
    GotMap[V.first().asInt64()] = V.second().asDouble();
  ASSERT_EQ(RefMap.size(), GotMap.size());
  for (const auto &[K, S] : RefMap)
    EXPECT_NEAR(GotMap.at(K), S, 1e-6 * std::max(1.0, std::abs(S)))
        << "key " << K;
}

TEST(DryadDist, AverageMovesResultSelectorToCombine) {
  std::vector<double> Flat = testutil::randomDoubles(321, 7);
  Query Q = Query::doubleArray(0).average();
  Bindings Whole;
  Whole.bindDoubleArray(0, Flat.data(),
                        static_cast<std::int64_t>(Flat.size()));
  double Expected = runReference(Q, Whole).scalarValue().asDouble();
  ThreadPool Pool(2);
  DistributedQuery DQ = DistributedQuery::compile(Q, interpDist("avg"));
  std::vector<DoublePartition> Partitions = partitionDoubles(Flat, 4);
  double Got = DQ.run(Pool, bindingsFor(Partitions))
                   .scalarValue()
                   .asDouble();
  EXPECT_NEAR(Got, Expected, 1e-9 * std::max(1.0, std::abs(Expected)))
      << "average must not average the partition averages";
}

TEST(DryadDist, MergeByKeyMisalignedPartitions) {
  // Partitions whose key sets differ (hash sinks emit only the keys they
  // saw), forcing the index-based merge fallback.
  std::vector<double> Flat;
  for (int I = 0; I < 30; ++I)
    Flat.push_back(static_cast<double>(I)); // keys 0..9 by /3
  auto A = param("a", Type::doubleTy());
  auto U = param("u", Type::doubleTy());
  auto W = param("w", Type::doubleTy());
  Query Q = Query::doubleArray(0).groupByAggregate(
      lambda({x()}, toInt64(x() / 3.0)), E(0.0),
      lambda({A, x()}, A + x()), Lambda(), lambda({U, W}, U + W));
  Bindings Whole;
  Whole.bindDoubleArray(0, Flat.data(),
                        static_cast<std::int64_t>(Flat.size()));
  QueryResult Ref = runReference(Q, Whole);
  ThreadPool Pool(2);
  DistributedQuery DQ =
      DistributedQuery::compile(Q, interpDist("misaligned"));
  // Three uneven partitions: each sees a different key range.
  std::vector<DoublePartition> Partitions = partitionDoubles(Flat, 3);
  QueryResult Got = DQ.run(Pool, bindingsFor(Partitions));
  std::map<std::int64_t, double> RefMap, GotMap;
  for (const Value &V : Ref.rows())
    RefMap[V.first().asInt64()] = V.second().asDouble();
  for (const Value &V : Got.rows())
    GotMap[V.first().asInt64()] = V.second().asDouble();
  EXPECT_EQ(RefMap, GotMap);
}

TEST(DryadDist, DenseSinkMergesPositionally) {
  // Dense sinks emit identical ordered key sequences per partition; the
  // combined result must equal the sequential dense query.
  std::vector<double> Flat = testutil::randomDoubles(400, 8, 0, 50);
  auto A = param("a", Type::doubleTy());
  auto U = param("u", Type::doubleTy());
  auto W = param("w", Type::doubleTy());
  Query Q = Query::doubleArray(0).groupByAggregateDense(
      lambda({x()}, toInt64(x() / 10.0)), E(5), E(0.0),
      lambda({A, x()}, A + x()), Lambda(), lambda({U, W}, U + W));
  Bindings Whole;
  Whole.bindDoubleArray(0, Flat.data(),
                        static_cast<std::int64_t>(Flat.size()));
  QueryResult Ref = runReference(Q, Whole);
  ThreadPool Pool(4);
  DistributedQuery DQ = DistributedQuery::compile(Q, interpDist("dense"));
  std::vector<DoublePartition> Partitions = partitionDoubles(Flat, 4);
  QueryResult Got = DQ.run(Pool, bindingsFor(Partitions));
  ASSERT_EQ(Got.rows().size(), 5u) << "all dense keys reported";
  ASSERT_EQ(Ref.rows().size(), Got.rows().size());
  for (size_t I = 0; I != Ref.rows().size(); ++I) {
    EXPECT_EQ(Ref.rows()[I].first().asInt64(),
              Got.rows()[I].first().asInt64());
    EXPECT_NEAR(Ref.rows()[I].second().asDouble(),
                Got.rows()[I].second().asDouble(), 1e-7);
  }
}

TEST(DryadPlinq, PartitionBindingsViewsAreZeroCopy) {
  std::vector<double> Flat = {0, 1, 2, 3, 4, 5, 6};
  std::vector<double> Other = {9, 9};
  Bindings B;
  B.bindDoubleArray(0, Flat.data(), 7);
  B.bindDoubleArray(1, Other.data(), 2);
  std::vector<Bindings> Parts = partitionBindings(B, 3);
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0].sources()[0].DoubleData, Flat.data());
  EXPECT_EQ(Parts[0].sources()[0].Count, 3);
  EXPECT_EQ(Parts[1].sources()[0].DoubleData, Flat.data() + 3);
  EXPECT_EQ(Parts[1].sources()[0].Count, 2);
  EXPECT_EQ(Parts[2].sources()[0].Count, 2);
  // The other slot is shared, not partitioned.
  EXPECT_EQ(Parts[2].sources()[1].DoubleData, Other.data());
  EXPECT_EQ(Parts[2].sources()[1].Count, 2);
}

TEST(DryadPlinq, PartitionBindingsRespectsStride) {
  std::vector<double> Points(5 * 3); // 5 points, dim 3
  std::iota(Points.begin(), Points.end(), 0.0);
  Bindings B;
  B.bindPointArray(0, Points.data(), 5, 3);
  std::vector<Bindings> Parts = partitionBindings(B, 2);
  EXPECT_EQ(Parts[0].sources()[0].Count, 3);
  EXPECT_EQ(Parts[1].sources()[0].DoubleData, Points.data() + 9);
  EXPECT_EQ(Parts[1].sources()[0].Count, 2);
  EXPECT_EQ(Parts[1].sources()[0].Dim, 3);
}

TEST(DryadPlinq, RunParallelMatchesSequential) {
  std::vector<double> Flat = testutil::randomDoubles(1234, 9);
  Query Q = Query::doubleArray(0).select(lambda({x()}, x() * x())).sum();
  Bindings B;
  B.bindDoubleArray(0, Flat.data(),
                    static_cast<std::int64_t>(Flat.size()));
  double Expected = runReference(Q, B).scalarValue().asDouble();
  ThreadPool Pool(4);
  DistributedQuery DQ =
      DistributedQuery::compile(Q, interpDist("plinq"));
  double Got = DQ.runParallel(Pool, B).scalarValue().asDouble();
  EXPECT_NEAR(Got, Expected, 1e-6 * std::abs(Expected));
}

TEST(DryadPlinq, RunParallelInt64Source) {
  std::vector<std::int64_t> Is = testutil::randomInt64s(500, 10);
  auto Xi = param("xi", Type::int64Ty());
  Query Q = Query::int64Array(0).select(lambda({Xi}, Xi * 2)).sum();
  Bindings B;
  B.bindInt64Array(0, Is.data(), static_cast<std::int64_t>(Is.size()));
  std::int64_t Expected = runReference(Q, B).scalarValue().asInt64();
  ThreadPool Pool(3);
  DistributedQuery DQ =
      DistributedQuery::compile(Q, interpDist("plinq_i"));
  EXPECT_EQ(DQ.runParallel(Pool, B).scalarValue().asInt64(), Expected);
}

TEST(DryadDist, SinglePartitionDegeneratesToSequential) {
  std::vector<double> Flat = {2.0, 3.0};
  Query Q = Query::doubleArray(0).sum();
  ThreadPool Pool(1);
  DistributedQuery DQ = DistributedQuery::compile(Q, interpDist("one"));
  std::vector<DoublePartition> Partitions = partitionDoubles(Flat, 1);
  double Got = DQ.run(Pool, bindingsFor(Partitions))
                   .scalarValue()
                   .asDouble();
  EXPECT_DOUBLE_EQ(Got, 5.0);
}
