file(REMOVE_RECURSE
  "CMakeFiles/steno_support.dir/Error.cpp.o"
  "CMakeFiles/steno_support.dir/Error.cpp.o.d"
  "CMakeFiles/steno_support.dir/StringUtil.cpp.o"
  "CMakeFiles/steno_support.dir/StringUtil.cpp.o.d"
  "CMakeFiles/steno_support.dir/TempFile.cpp.o"
  "CMakeFiles/steno_support.dir/TempFile.cpp.o.d"
  "libsteno_support.a"
  "libsteno_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
