file(REMOVE_RECURSE
  "libsteno_support.a"
)
