# Empty compiler generated dependencies file for steno_support.
# This may be replaced when dependencies are built.
