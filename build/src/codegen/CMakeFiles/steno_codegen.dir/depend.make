# Empty dependencies file for steno_codegen.
# This may be replaced when dependencies are built.
