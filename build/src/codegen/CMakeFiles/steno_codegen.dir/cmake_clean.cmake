file(REMOVE_RECURSE
  "CMakeFiles/steno_codegen.dir/Generator.cpp.o"
  "CMakeFiles/steno_codegen.dir/Generator.cpp.o.d"
  "libsteno_codegen.a"
  "libsteno_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
