file(REMOVE_RECURSE
  "libsteno_codegen.a"
)
