file(REMOVE_RECURSE
  "CMakeFiles/steno_interp.dir/Interp.cpp.o"
  "CMakeFiles/steno_interp.dir/Interp.cpp.o.d"
  "libsteno_interp.a"
  "libsteno_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
