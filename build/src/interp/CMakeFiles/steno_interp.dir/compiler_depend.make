# Empty compiler generated dependencies file for steno_interp.
# This may be replaced when dependencies are built.
