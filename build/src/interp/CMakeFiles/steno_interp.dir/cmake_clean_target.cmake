file(REMOVE_RECURSE
  "libsteno_interp.a"
)
