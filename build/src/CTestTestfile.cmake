# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("linq")
subdirs("expr")
subdirs("query")
subdirs("quil")
subdirs("cpptree")
subdirs("codegen")
subdirs("interp")
subdirs("jit")
subdirs("steno")
subdirs("fused")
subdirs("dryad")
subdirs("plinq")
