file(REMOVE_RECURSE
  "libsteno_quil.a"
)
