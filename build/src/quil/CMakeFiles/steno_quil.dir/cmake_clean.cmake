file(REMOVE_RECURSE
  "CMakeFiles/steno_quil.dir/Lower.cpp.o"
  "CMakeFiles/steno_quil.dir/Lower.cpp.o.d"
  "CMakeFiles/steno_quil.dir/Specialize.cpp.o"
  "CMakeFiles/steno_quil.dir/Specialize.cpp.o.d"
  "CMakeFiles/steno_quil.dir/Validate.cpp.o"
  "CMakeFiles/steno_quil.dir/Validate.cpp.o.d"
  "libsteno_quil.a"
  "libsteno_quil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_quil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
