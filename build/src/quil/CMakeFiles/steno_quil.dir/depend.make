# Empty dependencies file for steno_quil.
# This may be replaced when dependencies are built.
