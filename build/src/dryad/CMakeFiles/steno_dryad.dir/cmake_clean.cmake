file(REMOVE_RECURSE
  "CMakeFiles/steno_dryad.dir/Dist.cpp.o"
  "CMakeFiles/steno_dryad.dir/Dist.cpp.o.d"
  "CMakeFiles/steno_dryad.dir/JobGraph.cpp.o"
  "CMakeFiles/steno_dryad.dir/JobGraph.cpp.o.d"
  "CMakeFiles/steno_dryad.dir/Plan.cpp.o"
  "CMakeFiles/steno_dryad.dir/Plan.cpp.o.d"
  "CMakeFiles/steno_dryad.dir/ThreadPool.cpp.o"
  "CMakeFiles/steno_dryad.dir/ThreadPool.cpp.o.d"
  "libsteno_dryad.a"
  "libsteno_dryad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_dryad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
