file(REMOVE_RECURSE
  "libsteno_dryad.a"
)
