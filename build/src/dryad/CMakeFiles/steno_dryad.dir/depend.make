# Empty dependencies file for steno_dryad.
# This may be replaced when dependencies are built.
