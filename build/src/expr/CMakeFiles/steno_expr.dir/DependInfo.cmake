
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/Analysis.cpp" "src/expr/CMakeFiles/steno_expr.dir/Analysis.cpp.o" "gcc" "src/expr/CMakeFiles/steno_expr.dir/Analysis.cpp.o.d"
  "/root/repo/src/expr/Cse.cpp" "src/expr/CMakeFiles/steno_expr.dir/Cse.cpp.o" "gcc" "src/expr/CMakeFiles/steno_expr.dir/Cse.cpp.o.d"
  "/root/repo/src/expr/CxxPrinter.cpp" "src/expr/CMakeFiles/steno_expr.dir/CxxPrinter.cpp.o" "gcc" "src/expr/CMakeFiles/steno_expr.dir/CxxPrinter.cpp.o.d"
  "/root/repo/src/expr/Eval.cpp" "src/expr/CMakeFiles/steno_expr.dir/Eval.cpp.o" "gcc" "src/expr/CMakeFiles/steno_expr.dir/Eval.cpp.o.d"
  "/root/repo/src/expr/Expr.cpp" "src/expr/CMakeFiles/steno_expr.dir/Expr.cpp.o" "gcc" "src/expr/CMakeFiles/steno_expr.dir/Expr.cpp.o.d"
  "/root/repo/src/expr/Fold.cpp" "src/expr/CMakeFiles/steno_expr.dir/Fold.cpp.o" "gcc" "src/expr/CMakeFiles/steno_expr.dir/Fold.cpp.o.d"
  "/root/repo/src/expr/Type.cpp" "src/expr/CMakeFiles/steno_expr.dir/Type.cpp.o" "gcc" "src/expr/CMakeFiles/steno_expr.dir/Type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/steno_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
