# Empty compiler generated dependencies file for steno_expr.
# This may be replaced when dependencies are built.
