file(REMOVE_RECURSE
  "libsteno_expr.a"
)
