file(REMOVE_RECURSE
  "CMakeFiles/steno_expr.dir/Analysis.cpp.o"
  "CMakeFiles/steno_expr.dir/Analysis.cpp.o.d"
  "CMakeFiles/steno_expr.dir/Cse.cpp.o"
  "CMakeFiles/steno_expr.dir/Cse.cpp.o.d"
  "CMakeFiles/steno_expr.dir/CxxPrinter.cpp.o"
  "CMakeFiles/steno_expr.dir/CxxPrinter.cpp.o.d"
  "CMakeFiles/steno_expr.dir/Eval.cpp.o"
  "CMakeFiles/steno_expr.dir/Eval.cpp.o.d"
  "CMakeFiles/steno_expr.dir/Expr.cpp.o"
  "CMakeFiles/steno_expr.dir/Expr.cpp.o.d"
  "CMakeFiles/steno_expr.dir/Fold.cpp.o"
  "CMakeFiles/steno_expr.dir/Fold.cpp.o.d"
  "CMakeFiles/steno_expr.dir/Type.cpp.o"
  "CMakeFiles/steno_expr.dir/Type.cpp.o.d"
  "libsteno_expr.a"
  "libsteno_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
