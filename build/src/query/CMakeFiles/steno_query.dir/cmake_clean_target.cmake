file(REMOVE_RECURSE
  "libsteno_query.a"
)
