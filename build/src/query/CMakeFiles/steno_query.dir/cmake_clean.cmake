file(REMOVE_RECURSE
  "CMakeFiles/steno_query.dir/Query.cpp.o"
  "CMakeFiles/steno_query.dir/Query.cpp.o.d"
  "libsteno_query.a"
  "libsteno_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
