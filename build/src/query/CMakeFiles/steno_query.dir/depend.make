# Empty dependencies file for steno_query.
# This may be replaced when dependencies are built.
