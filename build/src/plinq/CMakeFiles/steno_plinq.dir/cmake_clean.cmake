file(REMOVE_RECURSE
  "CMakeFiles/steno_plinq.dir/Anchor.cpp.o"
  "CMakeFiles/steno_plinq.dir/Anchor.cpp.o.d"
  "libsteno_plinq.a"
  "libsteno_plinq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_plinq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
