file(REMOVE_RECURSE
  "libsteno_plinq.a"
)
