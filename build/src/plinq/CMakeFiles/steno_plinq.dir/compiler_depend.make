# Empty compiler generated dependencies file for steno_plinq.
# This may be replaced when dependencies are built.
