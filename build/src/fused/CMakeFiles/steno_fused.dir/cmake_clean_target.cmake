file(REMOVE_RECURSE
  "libsteno_fused.a"
)
