file(REMOVE_RECURSE
  "CMakeFiles/steno_fused.dir/Anchor.cpp.o"
  "CMakeFiles/steno_fused.dir/Anchor.cpp.o.d"
  "libsteno_fused.a"
  "libsteno_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
