# Empty compiler generated dependencies file for steno_fused.
# This may be replaced when dependencies are built.
