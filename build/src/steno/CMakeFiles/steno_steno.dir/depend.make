# Empty dependencies file for steno_steno.
# This may be replaced when dependencies are built.
