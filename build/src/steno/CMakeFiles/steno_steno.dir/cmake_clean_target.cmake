file(REMOVE_RECURSE
  "libsteno_steno.a"
)
