
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/steno/PersistentCache.cpp" "src/steno/CMakeFiles/steno_steno.dir/PersistentCache.cpp.o" "gcc" "src/steno/CMakeFiles/steno_steno.dir/PersistentCache.cpp.o.d"
  "/root/repo/src/steno/QueryCache.cpp" "src/steno/CMakeFiles/steno_steno.dir/QueryCache.cpp.o" "gcc" "src/steno/CMakeFiles/steno_steno.dir/QueryCache.cpp.o.d"
  "/root/repo/src/steno/RefExec.cpp" "src/steno/CMakeFiles/steno_steno.dir/RefExec.cpp.o" "gcc" "src/steno/CMakeFiles/steno_steno.dir/RefExec.cpp.o.d"
  "/root/repo/src/steno/Steno.cpp" "src/steno/CMakeFiles/steno_steno.dir/Steno.cpp.o" "gcc" "src/steno/CMakeFiles/steno_steno.dir/Steno.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/steno_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/steno_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/steno_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/quil/CMakeFiles/steno_quil.dir/DependInfo.cmake"
  "/root/repo/build/src/cpptree/CMakeFiles/steno_cpptree.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/steno_query.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/steno_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/steno_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
