file(REMOVE_RECURSE
  "CMakeFiles/steno_steno.dir/PersistentCache.cpp.o"
  "CMakeFiles/steno_steno.dir/PersistentCache.cpp.o.d"
  "CMakeFiles/steno_steno.dir/QueryCache.cpp.o"
  "CMakeFiles/steno_steno.dir/QueryCache.cpp.o.d"
  "CMakeFiles/steno_steno.dir/RefExec.cpp.o"
  "CMakeFiles/steno_steno.dir/RefExec.cpp.o.d"
  "CMakeFiles/steno_steno.dir/Steno.cpp.o"
  "CMakeFiles/steno_steno.dir/Steno.cpp.o.d"
  "libsteno_steno.a"
  "libsteno_steno.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_steno.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
