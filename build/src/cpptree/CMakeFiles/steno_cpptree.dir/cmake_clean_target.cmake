file(REMOVE_RECURSE
  "libsteno_cpptree.a"
)
