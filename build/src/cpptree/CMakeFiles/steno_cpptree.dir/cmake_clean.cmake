file(REMOVE_RECURSE
  "CMakeFiles/steno_cpptree.dir/Printer.cpp.o"
  "CMakeFiles/steno_cpptree.dir/Printer.cpp.o.d"
  "CMakeFiles/steno_cpptree.dir/Tree.cpp.o"
  "CMakeFiles/steno_cpptree.dir/Tree.cpp.o.d"
  "libsteno_cpptree.a"
  "libsteno_cpptree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_cpptree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
