# Empty compiler generated dependencies file for steno_cpptree.
# This may be replaced when dependencies are built.
