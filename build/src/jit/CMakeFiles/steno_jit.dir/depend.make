# Empty dependencies file for steno_jit.
# This may be replaced when dependencies are built.
