file(REMOVE_RECURSE
  "libsteno_jit.a"
)
