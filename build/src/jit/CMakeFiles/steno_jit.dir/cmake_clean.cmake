file(REMOVE_RECURSE
  "CMakeFiles/steno_jit.dir/Jit.cpp.o"
  "CMakeFiles/steno_jit.dir/Jit.cpp.o.d"
  "libsteno_jit.a"
  "libsteno_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
