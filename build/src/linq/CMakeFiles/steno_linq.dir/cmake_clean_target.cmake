file(REMOVE_RECURSE
  "libsteno_linq.a"
)
