# Empty compiler generated dependencies file for steno_linq.
# This may be replaced when dependencies are built.
