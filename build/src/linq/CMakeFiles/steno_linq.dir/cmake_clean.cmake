file(REMOVE_RECURSE
  "CMakeFiles/steno_linq.dir/Anchor.cpp.o"
  "CMakeFiles/steno_linq.dir/Anchor.cpp.o.d"
  "libsteno_linq.a"
  "libsteno_linq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steno_linq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
