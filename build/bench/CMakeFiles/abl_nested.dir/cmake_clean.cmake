file(REMOVE_RECURSE
  "CMakeFiles/abl_nested.dir/abl_nested.cpp.o"
  "CMakeFiles/abl_nested.dir/abl_nested.cpp.o.d"
  "abl_nested"
  "abl_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
