# Empty dependencies file for abl_nested.
# This may be replaced when dependencies are built.
