file(REMOVE_RECURSE
  "CMakeFiles/abl_cse.dir/abl_cse.cpp.o"
  "CMakeFiles/abl_cse.dir/abl_cse.cpp.o.d"
  "abl_cse"
  "abl_cse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
