# Empty compiler generated dependencies file for abl_cse.
# This may be replaced when dependencies are built.
