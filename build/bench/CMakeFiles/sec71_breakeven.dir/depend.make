# Empty dependencies file for sec71_breakeven.
# This may be replaced when dependencies are built.
