file(REMOVE_RECURSE
  "CMakeFiles/sec71_breakeven.dir/sec71_breakeven.cpp.o"
  "CMakeFiles/sec71_breakeven.dir/sec71_breakeven.cpp.o.d"
  "sec71_breakeven"
  "sec71_breakeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec71_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
