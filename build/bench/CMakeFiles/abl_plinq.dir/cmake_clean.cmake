file(REMOVE_RECURSE
  "CMakeFiles/abl_plinq.dir/abl_plinq.cpp.o"
  "CMakeFiles/abl_plinq.dir/abl_plinq.cpp.o.d"
  "abl_plinq"
  "abl_plinq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_plinq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
