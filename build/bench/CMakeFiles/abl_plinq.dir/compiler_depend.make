# Empty compiler generated dependencies file for abl_plinq.
# This may be replaced when dependencies are built.
