# Empty dependencies file for abl_groupby.
# This may be replaced when dependencies are built.
