file(REMOVE_RECURSE
  "CMakeFiles/abl_groupby.dir/abl_groupby.cpp.o"
  "CMakeFiles/abl_groupby.dir/abl_groupby.cpp.o.d"
  "abl_groupby"
  "abl_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
