file(REMOVE_RECURSE
  "CMakeFiles/abl_overhead.dir/abl_overhead.cpp.o"
  "CMakeFiles/abl_overhead.dir/abl_overhead.cpp.o.d"
  "abl_overhead"
  "abl_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
