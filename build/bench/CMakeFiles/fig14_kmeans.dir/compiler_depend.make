# Empty compiler generated dependencies file for fig14_kmeans.
# This may be replaced when dependencies are built.
