file(REMOVE_RECURSE
  "CMakeFiles/fig14_kmeans.dir/fig14_kmeans.cpp.o"
  "CMakeFiles/fig14_kmeans.dir/fig14_kmeans.cpp.o.d"
  "fig14_kmeans"
  "fig14_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
