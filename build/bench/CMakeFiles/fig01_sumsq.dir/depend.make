# Empty dependencies file for fig01_sumsq.
# This may be replaced when dependencies are built.
