file(REMOVE_RECURSE
  "CMakeFiles/fig01_sumsq.dir/fig01_sumsq.cpp.o"
  "CMakeFiles/fig01_sumsq.dir/fig01_sumsq.cpp.o.d"
  "fig01_sumsq"
  "fig01_sumsq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_sumsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
