# Empty dependencies file for abl_partial_agg.
# This may be replaced when dependencies are built.
