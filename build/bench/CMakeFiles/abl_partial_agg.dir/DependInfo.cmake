
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_partial_agg.cpp" "bench/CMakeFiles/abl_partial_agg.dir/abl_partial_agg.cpp.o" "gcc" "bench/CMakeFiles/abl_partial_agg.dir/abl_partial_agg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dryad/CMakeFiles/steno_dryad.dir/DependInfo.cmake"
  "/root/repo/build/src/fused/CMakeFiles/steno_fused.dir/DependInfo.cmake"
  "/root/repo/build/src/steno/CMakeFiles/steno_steno.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/steno_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/steno_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/cpptree/CMakeFiles/steno_cpptree.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/steno_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/quil/CMakeFiles/steno_quil.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/steno_query.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/steno_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/steno_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
