file(REMOVE_RECURSE
  "CMakeFiles/abl_partial_agg.dir/abl_partial_agg.cpp.o"
  "CMakeFiles/abl_partial_agg.dir/abl_partial_agg.cpp.o.d"
  "abl_partial_agg"
  "abl_partial_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partial_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
