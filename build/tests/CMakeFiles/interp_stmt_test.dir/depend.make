# Empty dependencies file for interp_stmt_test.
# This may be replaced when dependencies are built.
