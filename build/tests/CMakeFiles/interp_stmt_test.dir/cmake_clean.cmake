file(REMOVE_RECURSE
  "CMakeFiles/interp_stmt_test.dir/interp_stmt_test.cpp.o"
  "CMakeFiles/interp_stmt_test.dir/interp_stmt_test.cpp.o.d"
  "interp_stmt_test"
  "interp_stmt_test.pdb"
  "interp_stmt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_stmt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
