# Empty dependencies file for plinq_test.
# This may be replaced when dependencies are built.
