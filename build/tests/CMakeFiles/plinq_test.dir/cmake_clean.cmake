file(REMOVE_RECURSE
  "CMakeFiles/plinq_test.dir/plinq_test.cpp.o"
  "CMakeFiles/plinq_test.dir/plinq_test.cpp.o.d"
  "plinq_test"
  "plinq_test.pdb"
  "plinq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plinq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
