file(REMOVE_RECURSE
  "CMakeFiles/fused_test.dir/fused_test.cpp.o"
  "CMakeFiles/fused_test.dir/fused_test.cpp.o.d"
  "fused_test"
  "fused_test.pdb"
  "fused_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fused_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
