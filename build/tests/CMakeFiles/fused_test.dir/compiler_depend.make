# Empty compiler generated dependencies file for fused_test.
# This may be replaced when dependencies are built.
