# Empty dependencies file for linq_test.
# This may be replaced when dependencies are built.
