file(REMOVE_RECURSE
  "CMakeFiles/linq_test.dir/linq_test.cpp.o"
  "CMakeFiles/linq_test.dir/linq_test.cpp.o.d"
  "linq_test"
  "linq_test.pdb"
  "linq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
