# Empty dependencies file for dryad_test.
# This may be replaced when dependencies are built.
