file(REMOVE_RECURSE
  "CMakeFiles/dryad_test.dir/dryad_test.cpp.o"
  "CMakeFiles/dryad_test.dir/dryad_test.cpp.o.d"
  "dryad_test"
  "dryad_test.pdb"
  "dryad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dryad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
