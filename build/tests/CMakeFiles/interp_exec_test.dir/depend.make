# Empty dependencies file for interp_exec_test.
# This may be replaced when dependencies are built.
