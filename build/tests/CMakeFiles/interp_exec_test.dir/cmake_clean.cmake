file(REMOVE_RECURSE
  "CMakeFiles/interp_exec_test.dir/interp_exec_test.cpp.o"
  "CMakeFiles/interp_exec_test.dir/interp_exec_test.cpp.o.d"
  "interp_exec_test"
  "interp_exec_test.pdb"
  "interp_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
