# Empty dependencies file for quil_test.
# This may be replaced when dependencies are built.
