file(REMOVE_RECURSE
  "CMakeFiles/quil_test.dir/quil_test.cpp.o"
  "CMakeFiles/quil_test.dir/quil_test.cpp.o.d"
  "quil_test"
  "quil_test.pdb"
  "quil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
