# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/linq_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/quil_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/interp_exec_test[1]_include.cmake")
include("/root/repo/build/tests/jit_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/fused_test[1]_include.cmake")
include("/root/repo/build/tests/dryad_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/cse_test[1]_include.cmake")
include("/root/repo/build/tests/fold_test[1]_include.cmake")
include("/root/repo/build/tests/plinq_test[1]_include.cmake")
include("/root/repo/build/tests/interp_stmt_test[1]_include.cmake")
include("/root/repo/build/tests/printer_test[1]_include.cmake")
