# Empty dependencies file for sensors.
# This may be replaced when dependencies are built.
