file(REMOVE_RECURSE
  "CMakeFiles/sensors.dir/sensors.cpp.o"
  "CMakeFiles/sensors.dir/sensors.cpp.o.d"
  "sensors"
  "sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
