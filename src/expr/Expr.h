//===- expr/Expr.h - Typed expression trees --------------------*- C++ -*-===//
///
/// \file
/// The expression language in which query lambdas (predicates,
/// transformations, key selectors, aggregation steps) are written. This is
/// the C++ stand-in for .NET's System.Linq.Expressions: C++ lambdas are
/// opaque at run time, so user functions are built as explicit trees that
/// Steno can traverse, rewrite (nested-query parameter substitution, §5.2)
/// and inline into generated code (eliminating the per-element indirect
/// call that a function object costs, §4.2).
///
/// Nodes are immutable and shared; every node carries its result Type.
/// Construction goes through the static factories, which type-check their
/// operands (the paper assumes the C# compiler has already type-checked the
/// query; our factories assert the same invariants) and insert implicit
/// numeric promotions.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_EXPR_EXPR_H
#define STENO_EXPR_EXPR_H

#include "expr/Type.h"

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace steno {
namespace expr {

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// Node discriminator.
enum class ExprKind {
  Const,      ///< Literal bool/int64/double.
  Param,      ///< Reference to a lambda parameter, by name.
  Capture,    ///< Reference to a captured variable slot (paper §3.3).
  Convert,    ///< Numeric conversion (int64 <-> double).
  Unary,      ///< Neg / Not.
  Binary,     ///< Arithmetic, comparison, logic.
  Call,       ///< Builtin math function.
  Cond,       ///< Ternary conditional.
  PairNew,    ///< Construct a pair.
  PairFirst,  ///< Project .first.
  PairSecond, ///< Project .second.
  VecLen,     ///< Length of a Vec view.
  VecIndex,   ///< Element of a Vec view (double).
  BufferSlice, ///< Vec view over [start, start+len) of a bound source
               ///< buffer — how lambdas address rows of a flat captured
               ///< array (e.g. centroid j of a k-means centroid table).
  SourceLen   ///< Element count of a bound source buffer.
};

enum class UnaryOp { Neg, Not };

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or
};

/// Builtin math functions the language can call. These map 1:1 onto
/// <cmath> in generated code.
enum class Builtin { Sqrt, Abs, Min, Max, Floor, Ceil, Exp, Log, Pow };

/// Literal payload for Const nodes.
using ConstValue = std::variant<bool, std::int64_t, double>;

/// An immutable, typed expression node.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  const TypeRef &type() const { return Ty; }

  /// Literal payload; only valid for Const nodes.
  const ConstValue &constValue() const;
  /// Parameter name; only valid for Param nodes.
  const std::string &paramName() const;
  /// Capture slot index; only valid for Capture nodes.
  unsigned captureSlot() const;
  /// Source-buffer slot; only valid for BufferSlice/SourceLen nodes.
  unsigned sourceSlot() const;
  UnaryOp unaryOp() const;
  BinaryOp binaryOp() const;
  Builtin builtin() const;

  /// Operand list (empty for leaves).
  const std::vector<ExprRef> &operands() const { return Operands; }
  const ExprRef &operand(unsigned I) const;

  /// True when static analysis proved this int64 Div/Mod node cannot
  /// trap (divisor excludes 0 and the INT64_MIN / -1 overflow corner is
  /// unreachable): codegen emits plain `/` `%` instead of rt::ckdiv /
  /// rt::ckmod. Always false on other node kinds.
  bool divSafe() const { return DivSafeFlag; }
  /// Copy of \p E (an int64 Div/Mod Binary node) with divSafe() set.
  static ExprRef withDivSafe(const ExprRef &E);

  /// Debug rendering, e.g. "(x % 2) == 0".
  std::string str() const;

  //===--------------------------------------------------------------===//
  // Factories (each asserts well-typedness of its operands)
  //===--------------------------------------------------------------===//

  static ExprRef constBool(bool V);
  static ExprRef constInt64(std::int64_t V);
  static ExprRef constDouble(double V);
  static ExprRef param(std::string Name, TypeRef Ty);
  static ExprRef capture(unsigned Slot, TypeRef Ty);
  /// Converts \p E to numeric type \p To (no-op nodes are not created when
  /// the types already match).
  static ExprRef convert(ExprRef E, TypeRef To);
  static ExprRef unary(UnaryOp Op, ExprRef E);
  /// Builds a binary node, inserting int64->double promotions for mixed
  /// arithmetic and comparisons.
  static ExprRef binary(BinaryOp Op, ExprRef L, ExprRef R);
  static ExprRef call(Builtin Fn, std::vector<ExprRef> Args);
  static ExprRef cond(ExprRef C, ExprRef T, ExprRef F);
  static ExprRef pairNew(ExprRef First, ExprRef Second);
  static ExprRef pairFirst(ExprRef P);
  static ExprRef pairSecond(ExprRef P);
  static ExprRef vecLen(ExprRef V);
  static ExprRef vecIndex(ExprRef V, ExprRef I);
  /// Vec view of \p Len doubles starting at \p Start within source buffer
  /// \p Slot (which must be bound to a double buffer at run time).
  static ExprRef bufferSlice(unsigned Slot, ExprRef Start, ExprRef Len);
  /// Element count of source buffer \p Slot.
  static ExprRef sourceLen(unsigned Slot);

private:
  Expr(ExprKind Kind, TypeRef Ty) : Kind(Kind), Ty(std::move(Ty)) {}

  ExprKind Kind;
  TypeRef Ty;
  ConstValue Literal{false};
  std::string Name;
  unsigned Slot = 0;
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  Builtin Fn = Builtin::Sqrt;
  bool DivSafeFlag = false;
  std::vector<ExprRef> Operands;
};

/// True for Eq/Ne/Lt/Le/Gt/Ge.
bool isComparison(BinaryOp Op);
/// True for Add/Sub/Mul/Div/Mod.
bool isArithmetic(BinaryOp Op);
/// Spelling of a binary operator as it appears in C++ source ("+", "==", ...).
const char *binaryOpSpelling(BinaryOp Op);
/// Spelling of a builtin's C++ callee ("std::sqrt", ...).
const char *builtinSpelling(Builtin Fn);

} // namespace expr
} // namespace steno

#endif // STENO_EXPR_EXPR_H
