//===- expr/Dsl.h - Fluent builders for expression trees -------*- C++ -*-===//
///
/// \file
/// Operator-overloading sugar for constructing Expr trees, standing in for
/// C#'s query-comprehension/lambda syntax. Example (the paper's running
/// even-squares query):
/// \code
///   using namespace steno::expr::dsl;
///   auto X = param("x", Type::int64Ty());
///   Lambda Pred = lambda({X}, X % 2 == 0);
///   Lambda Square = lambda({X}, X * X);
/// \endcode
/// Note that `&&`/`||` here *build nodes*; short-circuiting happens when the
/// tree is evaluated or in the generated C++, not while building.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_EXPR_DSL_H
#define STENO_EXPR_DSL_H

#include "expr/Expr.h"
#include "expr/Lambda.h"

#include <cassert>
#include <utility>
#include <vector>

namespace steno {
namespace expr {
namespace dsl {

/// Value-semantics handle around an ExprRef with operator sugar.
class E {
public:
  E(ExprRef Node) : Node(std::move(Node)) {
    assert(this->Node && "null expression handle");
  }
  E(bool V) : Node(Expr::constBool(V)) {}
  E(int V) : Node(Expr::constInt64(V)) {}
  E(std::int64_t V) : Node(Expr::constInt64(V)) {}
  E(double V) : Node(Expr::constDouble(V)) {}

  const ExprRef &node() const { return Node; }
  const TypeRef &type() const { return Node->type(); }

  /// Vec indexing: V[I].
  E operator[](const E &Index) const {
    return E(Expr::vecIndex(Node, Index.node()));
  }

  /// Pair projections.
  E first() const { return E(Expr::pairFirst(Node)); }
  E second() const { return E(Expr::pairSecond(Node)); }

private:
  ExprRef Node;
};

inline E operator+(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Add, L.node(), R.node()));
}
inline E operator-(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Sub, L.node(), R.node()));
}
inline E operator*(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Mul, L.node(), R.node()));
}
inline E operator/(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Div, L.node(), R.node()));
}
inline E operator%(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Mod, L.node(), R.node()));
}
inline E operator==(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Eq, L.node(), R.node()));
}
inline E operator!=(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Ne, L.node(), R.node()));
}
inline E operator<(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Lt, L.node(), R.node()));
}
inline E operator<=(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Le, L.node(), R.node()));
}
inline E operator>(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Gt, L.node(), R.node()));
}
inline E operator>=(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Ge, L.node(), R.node()));
}
inline E operator&&(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::And, L.node(), R.node()));
}
inline E operator||(const E &L, const E &R) {
  return E(Expr::binary(BinaryOp::Or, L.node(), R.node()));
}
inline E operator-(const E &X) {
  return E(Expr::unary(UnaryOp::Neg, X.node()));
}
inline E operator!(const E &X) {
  return E(Expr::unary(UnaryOp::Not, X.node()));
}

/// Named, typed lambda parameter.
inline E param(const std::string &Name, TypeRef Ty) {
  return E(Expr::param(Name, std::move(Ty)));
}

/// Captured-variable slot reference (bound at invocation, paper §3.3).
inline E capture(unsigned Slot, TypeRef Ty) {
  return E(Expr::capture(Slot, std::move(Ty)));
}

inline E sqrt(const E &X) { return E(Expr::call(Builtin::Sqrt, {X.node()})); }
inline E abs(const E &X) { return E(Expr::call(Builtin::Abs, {X.node()})); }
inline E floor(const E &X) {
  return E(Expr::call(Builtin::Floor, {X.node()}));
}
inline E ceil(const E &X) { return E(Expr::call(Builtin::Ceil, {X.node()})); }
inline E exp(const E &X) { return E(Expr::call(Builtin::Exp, {X.node()})); }
inline E log(const E &X) { return E(Expr::call(Builtin::Log, {X.node()})); }
inline E min(const E &L, const E &R) {
  return E(Expr::call(Builtin::Min, {L.node(), R.node()}));
}
inline E max(const E &L, const E &R) {
  return E(Expr::call(Builtin::Max, {L.node(), R.node()}));
}
inline E pow(const E &L, const E &R) {
  return E(Expr::call(Builtin::Pow, {L.node(), R.node()}));
}
inline E cond(const E &C, const E &T, const E &F) {
  return E(Expr::cond(C.node(), T.node(), F.node()));
}
inline E pair(const E &A, const E &B) {
  return E(Expr::pairNew(A.node(), B.node()));
}
inline E len(const E &V) { return E(Expr::vecLen(V.node())); }
inline E slice(unsigned SourceSlot, const E &Start, const E &Len) {
  return E(Expr::bufferSlice(SourceSlot, Start.node(), Len.node()));
}
inline E sourceLen(unsigned SourceSlot) {
  return E(Expr::sourceLen(SourceSlot));
}
inline E toDouble(const E &X) {
  return E(Expr::convert(X.node(), Type::doubleTy()));
}
inline E toInt64(const E &X) {
  return E(Expr::convert(X.node(), Type::int64Ty()));
}

/// Builds a Lambda whose parameters are the Param nodes listed in
/// \p Params (each must be an ExprKind::Param handle).
inline Lambda lambda(std::vector<E> Params, const E &Body) {
  std::vector<LambdaParam> Formals;
  Formals.reserve(Params.size());
  for (const E &P : Params) {
    assert(P.node()->kind() == ExprKind::Param &&
           "lambda formals must be param() handles");
    Formals.push_back({P.node()->paramName(), P.node()->type()});
  }
  return Lambda(std::move(Formals), Body.node());
}

} // namespace dsl
} // namespace expr
} // namespace steno

#endif // STENO_EXPR_DSL_H
