//===- expr/Analysis.cpp --------------------------------------*- C++ -*-===//

#include "expr/Analysis.h"
#include "support/Error.h"

#include <cassert>
#include <cstdint>

using namespace steno;
using namespace steno::expr;

namespace {

void collectParams(const Expr &E, std::set<std::string> &Out) {
  if (E.kind() == ExprKind::Param) {
    Out.insert(E.paramName());
    return;
  }
  for (const ExprRef &Op : E.operands())
    collectParams(*Op, Out);
}

void collectCaptures(const Expr &E, std::set<unsigned> &Out) {
  if (E.kind() == ExprKind::Capture) {
    Out.insert(E.captureSlot());
    return;
  }
  for (const ExprRef &Op : E.operands())
    collectCaptures(*Op, Out);
}

void collectSources(const Expr &E, std::set<unsigned> &Out) {
  if (E.kind() == ExprKind::BufferSlice || E.kind() == ExprKind::SourceLen)
    Out.insert(E.sourceSlot());
  for (const ExprRef &Op : E.operands())
    collectSources(*Op, Out);
}

/// Rebuilds \p E with operands replaced by \p Ops. Leaves are returned
/// unchanged (they have no operands).
ExprRef rebuild(const ExprRef &E, std::vector<ExprRef> Ops) {
  switch (E->kind()) {
  case ExprKind::Const:
  case ExprKind::Param:
  case ExprKind::Capture:
    return E;
  case ExprKind::Convert:
    return Expr::convert(Ops[0], E->type());
  case ExprKind::Unary:
    return Expr::unary(E->unaryOp(), Ops[0]);
  case ExprKind::Binary: {
    ExprRef R = Expr::binary(E->binaryOp(), Ops[0], Ops[1]);
    // Substitution preserves types/values, so a proven-safe division
    // stays safe; dropping the marker here would silently reintroduce
    // the ckdiv trap after lambda inlining.
    if (E->divSafe())
      R = Expr::withDivSafe(R);
    return R;
  }
  case ExprKind::Call:
    return Expr::call(E->builtin(), std::move(Ops));
  case ExprKind::Cond:
    return Expr::cond(Ops[0], Ops[1], Ops[2]);
  case ExprKind::PairNew:
    return Expr::pairNew(Ops[0], Ops[1]);
  case ExprKind::PairFirst:
    return Expr::pairFirst(Ops[0]);
  case ExprKind::PairSecond:
    return Expr::pairSecond(Ops[0]);
  case ExprKind::VecLen:
    return Expr::vecLen(Ops[0]);
  case ExprKind::VecIndex:
    return Expr::vecIndex(Ops[0], Ops[1]);
  case ExprKind::BufferSlice:
    return Expr::bufferSlice(E->sourceSlot(), Ops[0], Ops[1]);
  case ExprKind::SourceLen:
    return E;
  }
  stenoUnreachable("bad ExprKind");
}

} // namespace

std::set<std::string> expr::freeParams(const Expr &E) {
  std::set<std::string> Out;
  collectParams(E, Out);
  return Out;
}

std::set<unsigned> expr::usedCaptureSlots(const Expr &E) {
  std::set<unsigned> Out;
  collectCaptures(E, Out);
  return Out;
}

std::set<unsigned> expr::usedSourceSlots(const Expr &E) {
  std::set<unsigned> Out;
  collectSources(E, Out);
  return Out;
}

ExprRef
expr::substituteParams(const ExprRef &E,
                       const std::map<std::string, ExprRef> &Replacements) {
  if (E->kind() == ExprKind::Param) {
    auto It = Replacements.find(E->paramName());
    if (It == Replacements.end())
      return E;
    assert(sameType(It->second->type(), E->type()) &&
           "substitution changes the parameter's type");
    return It->second;
  }
  if (E->operands().empty())
    return E;
  std::vector<ExprRef> NewOps;
  NewOps.reserve(E->operands().size());
  bool Changed = false;
  for (const ExprRef &Op : E->operands()) {
    ExprRef NewOp = substituteParams(Op, Replacements);
    Changed |= NewOp != Op;
    NewOps.push_back(std::move(NewOp));
  }
  if (!Changed)
    return E;
  return rebuild(E, std::move(NewOps));
}

//===----------------------------------------------------------------===//
// Structural hashing and equality
//===----------------------------------------------------------------===//

namespace {

/// FNV-1a style combine.
std::uint64_t combine(std::uint64_t H, std::uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

std::uint64_t hashString(const std::string &S) {
  std::uint64_t H = 1469598103934665603ULL;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace

std::uint64_t expr::hashType(const Type &Ty) {
  std::uint64_t H = static_cast<std::uint64_t>(Ty.kind()) * 0x100000001b3ULL;
  if (Ty.isPair()) {
    H = combine(H, hashType(*Ty.first()));
    H = combine(H, hashType(*Ty.second()));
  }
  return H;
}

std::uint64_t expr::hashExpr(const Expr &E) {
  std::uint64_t H = combine(static_cast<std::uint64_t>(E.kind()) + 1,
                            hashType(*E.type()));
  switch (E.kind()) {
  case ExprKind::Const: {
    const ConstValue &C = E.constValue();
    if (std::holds_alternative<bool>(C))
      H = combine(H, std::get<bool>(C) ? 2 : 1);
    else if (std::holds_alternative<std::int64_t>(C))
      H = combine(H,
                  static_cast<std::uint64_t>(std::get<std::int64_t>(C)));
    else {
      double D = std::get<double>(C);
      std::uint64_t Bits;
      static_assert(sizeof(Bits) == sizeof(D));
      __builtin_memcpy(&Bits, &D, sizeof(Bits));
      H = combine(H, Bits);
    }
    break;
  }
  case ExprKind::Param:
    H = combine(H, hashString(E.paramName()));
    break;
  case ExprKind::Capture:
    H = combine(H, E.captureSlot());
    break;
  case ExprKind::Unary:
    H = combine(H, static_cast<std::uint64_t>(E.unaryOp()));
    break;
  case ExprKind::Binary:
    H = combine(H, static_cast<std::uint64_t>(E.binaryOp()));
    H = combine(H, E.divSafe() ? 0xd1f5afeULL : 0);
    break;
  case ExprKind::Call:
    H = combine(H, static_cast<std::uint64_t>(E.builtin()));
    break;
  case ExprKind::BufferSlice:
  case ExprKind::SourceLen:
    H = combine(H, E.sourceSlot());
    break;
  default:
    break;
  }
  for (const ExprRef &Op : E.operands())
    H = combine(H, hashExpr(*Op));
  return H;
}

bool expr::equalExprs(const Expr &A, const Expr &B) {
  if (&A == &B)
    return true;
  if (A.kind() != B.kind() || !sameType(A.type(), B.type()) ||
      A.operands().size() != B.operands().size())
    return false;
  switch (A.kind()) {
  case ExprKind::Const:
    if (A.constValue() != B.constValue())
      return false;
    break;
  case ExprKind::Param:
    if (A.paramName() != B.paramName())
      return false;
    break;
  case ExprKind::Capture:
    if (A.captureSlot() != B.captureSlot())
      return false;
    break;
  case ExprKind::Unary:
    if (A.unaryOp() != B.unaryOp())
      return false;
    break;
  case ExprKind::Binary:
    if (A.binaryOp() != B.binaryOp() || A.divSafe() != B.divSafe())
      return false;
    break;
  case ExprKind::Call:
    if (A.builtin() != B.builtin())
      return false;
    break;
  case ExprKind::BufferSlice:
  case ExprKind::SourceLen:
    if (A.sourceSlot() != B.sourceSlot())
      return false;
    break;
  default:
    break;
  }
  for (size_t I = 0; I != A.operands().size(); ++I)
    if (!equalExprs(*A.operand(I), *B.operand(I)))
      return false;
  return true;
}

std::uint64_t expr::hashLambda(const Lambda &L) {
  if (!L.valid())
    return 0;
  std::uint64_t H = L.arity() + 0x51ed270b;
  for (const LambdaParam &P : L.params()) {
    H = combine(H, hashString(P.Name));
    H = combine(H, hashType(*P.Ty));
  }
  return combine(H, hashExpr(*L.body()));
}

bool expr::equalLambdas(const Lambda &A, const Lambda &B) {
  if (A.valid() != B.valid())
    return false;
  if (!A.valid())
    return true;
  if (A.arity() != B.arity())
    return false;
  for (size_t I = 0; I != A.arity(); ++I)
    if (A.param(I).Name != B.param(I).Name ||
        !sameType(A.param(I).Ty, B.param(I).Ty))
      return false;
  return equalExprs(*A.body(), *B.body());
}

ExprRef
expr::renameParams(const ExprRef &E,
                   const std::map<std::string, std::string> &Renames) {
  if (Renames.empty())
    return E;
  std::map<std::string, ExprRef> Repl;
  std::set<std::string> Free = freeParams(*E);
  for (const auto &[From, To] : Renames) {
    if (!Free.count(From))
      continue;
    // Find the type by locating one occurrence: all occurrences of a name
    // share a type by construction of lambdas.
    // A small walk to discover the param type:
    struct Finder {
      static const Expr *find(const Expr &Node, const std::string &Name) {
        if (Node.kind() == ExprKind::Param && Node.paramName() == Name)
          return &Node;
        for (const ExprRef &Op : Node.operands())
          if (const Expr *Hit = find(*Op, Name))
            return Hit;
        return nullptr;
      }
    };
    const Expr *Occurrence = Finder::find(*E, From);
    assert(Occurrence && "free param vanished");
    Repl.emplace(From, Expr::param(To, Occurrence->type()));
  }
  return substituteParams(E, Repl);
}
