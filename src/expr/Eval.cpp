//===- expr/Eval.cpp ------------------------------------------*- C++ -*-===//

#include "expr/Eval.h"
#include "support/Error.h"

#include <cmath>
#include <cstdint>

using namespace steno;
using namespace steno::expr;

const Value &Env::lookup(const std::string &Name) const {
  for (auto It = Bindings.rbegin(); It != Bindings.rend(); ++It)
    if (It->first == Name)
      return It->second;
  if (Fallback)
    if (const Value *V = Fallback(Name))
      return *V;
  support::fatalError("unbound parameter '" + Name + "' during evaluation");
}

const Value &Env::captureAt(unsigned I) const {
  if (!Captures || I >= Captures->size())
    support::fatalError("capture slot " + std::to_string(I) +
                        " is not bound");
  return (*Captures)[I];
}

const SourceBuffer &Env::sourceAt(unsigned I) const {
  if (!Sources || I >= Sources->size())
    support::fatalError("source slot " + std::to_string(I) +
                        " is not bound");
  return (*Sources)[I];
}

namespace {

Value evalConvert(const Expr &E, const Value &In) {
  if (E.type()->isDouble())
    return Value(In.asNumericDouble());
  assert(E.type()->isInt64() && "convert target must be numeric");
  if (In.isInt64())
    return In;
  return Value(static_cast<std::int64_t>(In.asDouble()));
}

Value evalArith(BinaryOp Op, const Value &L, const Value &R) {
  if (L.isInt64() && R.isInt64()) {
    std::int64_t A = L.asInt64();
    std::int64_t B = R.asInt64();
    switch (Op) {
    case BinaryOp::Add:
      return Value(A + B);
    case BinaryOp::Sub:
      return Value(A - B);
    case BinaryOp::Mul:
      return Value(A * B);
    // Trap uniformly with the JIT backend (rt::ckdiv/ckmod): same stable
    // code, same fate on every backend, instead of debug-only asserts
    // that become undefined behavior in release builds.
    case BinaryOp::Div:
      if (B == 0 || (B == -1 && A == INT64_MIN))
        support::fatalError(
            "steno runtime error [ST2001]: integer division by zero");
      return Value(A / B);
    case BinaryOp::Mod:
      if (B == 0 || (B == -1 && A == INT64_MIN))
        support::fatalError(
            "steno runtime error [ST2001]: integer division by zero");
      return Value(A % B);
    default:
      break;
    }
    stenoUnreachable("non-arithmetic op in evalArith");
  }
  double A = L.asNumericDouble();
  double B = R.asNumericDouble();
  switch (Op) {
  case BinaryOp::Add:
    return Value(A + B);
  case BinaryOp::Sub:
    return Value(A - B);
  case BinaryOp::Mul:
    return Value(A * B);
  case BinaryOp::Div:
    return Value(A / B);
  case BinaryOp::Mod:
    return Value(std::fmod(A, B));
  default:
    break;
  }
  stenoUnreachable("non-arithmetic op in evalArith");
}

Value evalCompare(BinaryOp Op, const Value &L, const Value &R) {
  if (L.isBool()) {
    bool A = L.asBool();
    bool B = R.asBool();
    return Value(Op == BinaryOp::Eq ? A == B : A != B);
  }
  double A = L.asNumericDouble();
  double B = R.asNumericDouble();
  switch (Op) {
  case BinaryOp::Eq:
    return Value(A == B);
  case BinaryOp::Ne:
    return Value(A != B);
  case BinaryOp::Lt:
    return Value(A < B);
  case BinaryOp::Le:
    return Value(A <= B);
  case BinaryOp::Gt:
    return Value(A > B);
  case BinaryOp::Ge:
    return Value(A >= B);
  default:
    break;
  }
  stenoUnreachable("non-comparison op in evalCompare");
}

Value evalCall(const Expr &E, const Env &Environment) {
  Builtin Fn = E.builtin();
  Value A0 = evalExpr(*E.operand(0), Environment);
  switch (Fn) {
  case Builtin::Sqrt:
    return Value(std::sqrt(A0.asNumericDouble()));
  case Builtin::Floor:
    return Value(std::floor(A0.asNumericDouble()));
  case Builtin::Ceil:
    return Value(std::ceil(A0.asNumericDouble()));
  case Builtin::Exp:
    return Value(std::exp(A0.asNumericDouble()));
  case Builtin::Log:
    return Value(std::log(A0.asNumericDouble()));
  case Builtin::Abs:
    if (A0.isInt64())
      return Value(A0.asInt64() < 0 ? -A0.asInt64() : A0.asInt64());
    return Value(std::fabs(A0.asDouble()));
  case Builtin::Min:
  case Builtin::Max: {
    Value A1 = evalExpr(*E.operand(1), Environment);
    if (A0.isInt64() && A1.isInt64()) {
      std::int64_t A = A0.asInt64();
      std::int64_t B = A1.asInt64();
      bool TakeA = Fn == Builtin::Min ? A < B : A > B;
      return Value(TakeA ? A : B);
    }
    double A = A0.asNumericDouble();
    double B = A1.asNumericDouble();
    bool TakeA = Fn == Builtin::Min ? A < B : A > B;
    return Value(TakeA ? A : B);
  }
  case Builtin::Pow: {
    Value A1 = evalExpr(*E.operand(1), Environment);
    return Value(std::pow(A0.asNumericDouble(), A1.asNumericDouble()));
  }
  }
  stenoUnreachable("bad Builtin");
}

} // namespace

Value expr::evalExpr(const Expr &E, const Env &Environment) {
  switch (E.kind()) {
  case ExprKind::Const: {
    const ConstValue &C = E.constValue();
    if (std::holds_alternative<bool>(C))
      return Value(std::get<bool>(C));
    if (std::holds_alternative<std::int64_t>(C))
      return Value(std::get<std::int64_t>(C));
    return Value(std::get<double>(C));
  }
  case ExprKind::Param:
    return Environment.lookup(E.paramName());
  case ExprKind::Capture:
    return Environment.captureAt(E.captureSlot());
  case ExprKind::Convert:
    return evalConvert(E, evalExpr(*E.operand(0), Environment));
  case ExprKind::Unary: {
    Value V = evalExpr(*E.operand(0), Environment);
    if (E.unaryOp() == UnaryOp::Not)
      return Value(!V.asBool());
    if (V.isInt64())
      return Value(-V.asInt64());
    return Value(-V.asDouble());
  }
  case ExprKind::Binary: {
    BinaryOp Op = E.binaryOp();
    if (Op == BinaryOp::And) {
      Value L = evalExpr(*E.operand(0), Environment);
      if (!L.asBool())
        return Value(false);
      return Value(evalExpr(*E.operand(1), Environment).asBool());
    }
    if (Op == BinaryOp::Or) {
      Value L = evalExpr(*E.operand(0), Environment);
      if (L.asBool())
        return Value(true);
      return Value(evalExpr(*E.operand(1), Environment).asBool());
    }
    Value L = evalExpr(*E.operand(0), Environment);
    Value R = evalExpr(*E.operand(1), Environment);
    if (isArithmetic(Op))
      return evalArith(Op, L, R);
    return evalCompare(Op, L, R);
  }
  case ExprKind::Call:
    return evalCall(E, Environment);
  case ExprKind::Cond: {
    Value C = evalExpr(*E.operand(0), Environment);
    return evalExpr(*E.operand(C.asBool() ? 1 : 2), Environment);
  }
  case ExprKind::PairNew: {
    Value A = evalExpr(*E.operand(0), Environment);
    Value B = evalExpr(*E.operand(1), Environment);
    return Value::makePair(std::move(A), std::move(B));
  }
  case ExprKind::PairFirst:
    return evalExpr(*E.operand(0), Environment).first();
  case ExprKind::PairSecond:
    return evalExpr(*E.operand(0), Environment).second();
  case ExprKind::VecLen:
    return Value(evalExpr(*E.operand(0), Environment).asVec().Len);
  case ExprKind::VecIndex: {
    VecView V = evalExpr(*E.operand(0), Environment).asVec();
    std::int64_t I = evalExpr(*E.operand(1), Environment).asInt64();
    return Value(V[I]);
  }
  case ExprKind::BufferSlice: {
    const SourceBuffer &Buf = Environment.sourceAt(E.sourceSlot());
    assert(Buf.DoubleData && "slicing a non-double source buffer");
    std::int64_t Start = evalExpr(*E.operand(0), Environment).asInt64();
    std::int64_t Len = evalExpr(*E.operand(1), Environment).asInt64();
    assert(Start >= 0 && Len >= 0 &&
           Start + Len <= Buf.Count * Buf.Dim && "slice out of range");
    return Value(VecView{Buf.DoubleData + Start, Len});
  }
  case ExprKind::SourceLen:
    return Value(Environment.sourceAt(E.sourceSlot()).Count);
  }
  stenoUnreachable("bad ExprKind");
}

Value expr::applyLambda(const Lambda &L, const std::vector<Value> &Args,
                        Env &Environment) {
  assert(L.arity() == Args.size() && "lambda arity mismatch");
  for (size_t I = 0; I != Args.size(); ++I)
    Environment.bind(L.param(I).Name, Args[I]);
  Value Result = evalExpr(*L.body(), Environment);
  for (size_t I = 0; I != Args.size(); ++I)
    Environment.pop();
  return Result;
}
