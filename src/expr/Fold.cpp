//===- expr/Fold.cpp ------------------------------------------*- C++ -*-===//

#include "expr/Fold.h"
#include "expr/Eval.h"
#include "support/Error.h"

#include <cassert>

using namespace steno;
using namespace steno::expr;

namespace {

bool isConst(const ExprRef &E) { return E->kind() == ExprKind::Const; }

bool isZeroInt(const ExprRef &E) {
  return isConst(E) &&
         std::holds_alternative<std::int64_t>(E->constValue()) &&
         std::get<std::int64_t>(E->constValue()) == 0;
}

bool boolConst(const ExprRef &E) {
  return std::get<bool>(E->constValue());
}

/// Turns an evaluated Value back into a literal of the node's type.
ExprRef literalize(const Value &V) {
  switch (V.kind()) {
  case TypeKind::Bool:
    return Expr::constBool(V.asBool());
  case TypeKind::Int64:
    return Expr::constInt64(V.asInt64());
  case TypeKind::Double:
    return Expr::constDouble(V.asDouble());
  default:
    return nullptr; // pairs/vecs are not literal-izable
  }
}

/// Evaluates a closed scalar expression (every operand already a Const).
ExprRef evalToLiteral(const ExprRef &E) {
  if (!E->type()->isScalar())
    return nullptr;
  Env Environment;
  return literalize(evalExpr(*E, Environment));
}

ExprRef rebuildWith(const ExprRef &E, std::vector<ExprRef> Ops) {
  switch (E->kind()) {
  case ExprKind::Convert:
    return Expr::convert(Ops[0], E->type());
  case ExprKind::Unary:
    return Expr::unary(E->unaryOp(), Ops[0]);
  case ExprKind::Binary: {
    ExprRef R = Expr::binary(E->binaryOp(), Ops[0], Ops[1]);
    if (E->divSafe())
      R = Expr::withDivSafe(R);
    return R;
  }
  case ExprKind::Call:
    return Expr::call(E->builtin(), std::move(Ops));
  case ExprKind::Cond:
    return Expr::cond(Ops[0], Ops[1], Ops[2]);
  case ExprKind::PairNew:
    return Expr::pairNew(Ops[0], Ops[1]);
  case ExprKind::PairFirst:
    return Expr::pairFirst(Ops[0]);
  case ExprKind::PairSecond:
    return Expr::pairSecond(Ops[0]);
  case ExprKind::VecLen:
    return Expr::vecLen(Ops[0]);
  case ExprKind::VecIndex:
    return Expr::vecIndex(Ops[0], Ops[1]);
  case ExprKind::BufferSlice:
    return Expr::bufferSlice(E->sourceSlot(), Ops[0], Ops[1]);
  default:
    stenoUnreachable("leaf with operands");
  }
}

} // namespace

ExprRef expr::foldConstants(const ExprRef &E) {
  assert(E && "folding a null expression");
  if (E->operands().empty())
    return E;

  std::vector<ExprRef> Ops;
  Ops.reserve(E->operands().size());
  bool Changed = false;
  bool AllConst = true;
  for (const ExprRef &Op : E->operands()) {
    ExprRef Folded = foldConstants(Op);
    Changed |= Folded != Op;
    AllConst &= isConst(Folded);
    Ops.push_back(std::move(Folded));
  }

  // Identities with a constant condition / operand.
  if (E->kind() == ExprKind::Cond && isConst(Ops[0]))
    return boolConst(Ops[0]) ? Ops[1] : Ops[2];
  if (E->kind() == ExprKind::Binary) {
    BinaryOp Op = E->binaryOp();
    if (Op == BinaryOp::And && isConst(Ops[0]))
      return boolConst(Ops[0]) ? Ops[1] : Expr::constBool(false);
    if (Op == BinaryOp::Or && isConst(Ops[0]))
      return boolConst(Ops[0]) ? Expr::constBool(true) : Ops[1];
    // Projection of a freshly built pair.
  }
  if ((E->kind() == ExprKind::PairFirst ||
       E->kind() == ExprKind::PairSecond) &&
      Ops[0]->kind() == ExprKind::PairNew)
    return E->kind() == ExprKind::PairFirst ? Ops[0]->operand(0)
                                            : Ops[0]->operand(1);

  if (AllConst) {
    bool Foldable = true;
    switch (E->kind()) {
    case ExprKind::Binary: {
      BinaryOp Op = E->binaryOp();
      // Keep the trap behavior of integer division by a literal zero.
      if ((Op == BinaryOp::Div || Op == BinaryOp::Mod) &&
          E->type()->isInt64() && isZeroInt(Ops[1]))
        Foldable = false;
      break;
    }
    case ExprKind::PairNew:
    case ExprKind::VecLen:
    case ExprKind::VecIndex:
    case ExprKind::BufferSlice:
      Foldable = false; // non-scalar or environment-dependent
      break;
    default:
      break;
    }
    if (Foldable) {
      ExprRef Candidate = Changed ? rebuildWith(E, Ops) : E;
      if (ExprRef Lit = evalToLiteral(Candidate))
        return Lit;
      return Candidate;
    }
  }

  return Changed ? rebuildWith(E, std::move(Ops)) : E;
}
