//===- expr/Expr.cpp ------------------------------------------*- C++ -*-===//

#include "expr/Expr.h"
#include "support/Error.h"
#include "support/StringUtil.h"

#include <cassert>

using namespace steno;
using namespace steno::expr;

const ConstValue &Expr::constValue() const {
  assert(Kind == ExprKind::Const && "not a Const node");
  return Literal;
}

const std::string &Expr::paramName() const {
  assert(Kind == ExprKind::Param && "not a Param node");
  return Name;
}

unsigned Expr::captureSlot() const {
  assert(Kind == ExprKind::Capture && "not a Capture node");
  return Slot;
}

unsigned Expr::sourceSlot() const {
  assert((Kind == ExprKind::BufferSlice || Kind == ExprKind::SourceLen) &&
         "not a source-buffer node");
  return Slot;
}

UnaryOp Expr::unaryOp() const {
  assert(Kind == ExprKind::Unary && "not a Unary node");
  return UOp;
}

BinaryOp Expr::binaryOp() const {
  assert(Kind == ExprKind::Binary && "not a Binary node");
  return BOp;
}

Builtin Expr::builtin() const {
  assert(Kind == ExprKind::Call && "not a Call node");
  return Fn;
}

const ExprRef &Expr::operand(unsigned I) const {
  assert(I < Operands.size() && "operand index out of range");
  return Operands[I];
}

ExprRef Expr::withDivSafe(const ExprRef &E) {
  assert(E && E->Kind == ExprKind::Binary &&
         (E->BOp == BinaryOp::Div || E->BOp == BinaryOp::Mod) &&
         E->Ty->isInt64() && "divSafe only applies to int64 Div/Mod");
  if (E->DivSafeFlag)
    return E;
  auto *N = new Expr(*E);
  N->DivSafeFlag = true;
  return ExprRef(N);
}

bool expr::isComparison(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return true;
  default:
    return false;
  }
}

bool expr::isArithmetic(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Mod:
    return true;
  default:
    return false;
  }
}

const char *expr::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  stenoUnreachable("bad BinaryOp");
}

const char *expr::builtinSpelling(Builtin Fn) {
  switch (Fn) {
  case Builtin::Sqrt:
    return "std::sqrt";
  case Builtin::Abs:
    return "std::abs";
  case Builtin::Min:
    return "std::min";
  case Builtin::Max:
    return "std::max";
  case Builtin::Floor:
    return "std::floor";
  case Builtin::Ceil:
    return "std::ceil";
  case Builtin::Exp:
    return "std::exp";
  case Builtin::Log:
    return "std::log";
  case Builtin::Pow:
    return "std::pow";
  }
  stenoUnreachable("bad Builtin");
}

//===----------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------===//

namespace {

/// Promotes two numeric operands to a common type (int64 + double ->
/// double), returning the common type.
TypeRef promote(ExprRef &L, ExprRef &R) {
  assert(L->type()->isNumeric() && R->type()->isNumeric() &&
         "promotion needs numeric operands");
  if (sameType(L->type(), R->type()))
    return L->type();
  TypeRef D = Type::doubleTy();
  L = Expr::convert(L, D);
  R = Expr::convert(R, D);
  return D;
}

} // namespace

ExprRef Expr::constBool(bool V) {
  auto *N = new Expr(ExprKind::Const, Type::boolTy());
  N->Literal = V;
  return ExprRef(N);
}

ExprRef Expr::constInt64(std::int64_t V) {
  auto *N = new Expr(ExprKind::Const, Type::int64Ty());
  N->Literal = V;
  return ExprRef(N);
}

ExprRef Expr::constDouble(double V) {
  auto *N = new Expr(ExprKind::Const, Type::doubleTy());
  N->Literal = V;
  return ExprRef(N);
}

ExprRef Expr::param(std::string Name, TypeRef Ty) {
  assert(!Name.empty() && "parameter must be named");
  auto *N = new Expr(ExprKind::Param, std::move(Ty));
  N->Name = std::move(Name);
  return ExprRef(N);
}

ExprRef Expr::capture(unsigned Slot, TypeRef Ty) {
  auto *N = new Expr(ExprKind::Capture, std::move(Ty));
  N->Slot = Slot;
  return ExprRef(N);
}

ExprRef Expr::convert(ExprRef E, TypeRef To) {
  assert(E && "null operand");
  assert(E->type()->isNumeric() && To->isNumeric() &&
         "convert only between numeric types");
  if (sameType(E->type(), To))
    return E;
  auto *N = new Expr(ExprKind::Convert, std::move(To));
  N->Operands = {std::move(E)};
  return ExprRef(N);
}

ExprRef Expr::unary(UnaryOp Op, ExprRef E) {
  assert(E && "null operand");
  TypeRef Ty;
  if (Op == UnaryOp::Neg) {
    assert(E->type()->isNumeric() && "negating a non-number");
    Ty = E->type();
  } else {
    assert(E->type()->isBool() && "logical not of a non-bool");
    Ty = Type::boolTy();
  }
  auto *N = new Expr(ExprKind::Unary, std::move(Ty));
  N->UOp = Op;
  N->Operands = {std::move(E)};
  return ExprRef(N);
}

ExprRef Expr::binary(BinaryOp Op, ExprRef L, ExprRef R) {
  assert(L && R && "null operand");
  TypeRef Ty;
  if (isArithmetic(Op)) {
    Ty = promote(L, R);
  } else if (isComparison(Op)) {
    if (L->type()->isBool() && R->type()->isBool()) {
      assert((Op == BinaryOp::Eq || Op == BinaryOp::Ne) &&
             "ordering comparison on bools");
    } else {
      promote(L, R);
    }
    Ty = Type::boolTy();
  } else { // And / Or
    assert(L->type()->isBool() && R->type()->isBool() &&
           "logical op needs bool operands");
    Ty = Type::boolTy();
  }
  auto *N = new Expr(ExprKind::Binary, std::move(Ty));
  N->BOp = Op;
  N->Operands = {std::move(L), std::move(R)};
  return ExprRef(N);
}

ExprRef Expr::call(Builtin Fn, std::vector<ExprRef> Args) {
  TypeRef Ty;
  switch (Fn) {
  case Builtin::Sqrt:
  case Builtin::Floor:
  case Builtin::Ceil:
  case Builtin::Exp:
  case Builtin::Log:
    assert(Args.size() == 1 && Args[0]->type()->isNumeric() &&
           "unary math builtin wants one number");
    Args[0] = convert(Args[0], Type::doubleTy());
    Ty = Type::doubleTy();
    break;
  case Builtin::Abs:
    assert(Args.size() == 1 && Args[0]->type()->isNumeric() &&
           "abs wants one number");
    Ty = Args[0]->type();
    break;
  case Builtin::Min:
  case Builtin::Max:
    assert(Args.size() == 2 && "min/max want two numbers");
    Ty = promote(Args[0], Args[1]);
    break;
  case Builtin::Pow:
    assert(Args.size() == 2 && "pow wants two numbers");
    Args[0] = convert(Args[0], Type::doubleTy());
    Args[1] = convert(Args[1], Type::doubleTy());
    Ty = Type::doubleTy();
    break;
  }
  auto *N = new Expr(ExprKind::Call, std::move(Ty));
  N->Fn = Fn;
  N->Operands = std::move(Args);
  return ExprRef(N);
}

ExprRef Expr::cond(ExprRef C, ExprRef T, ExprRef F) {
  assert(C && T && F && "null operand");
  assert(C->type()->isBool() && "condition must be bool");
  if (!sameType(T->type(), F->type())) {
    assert(T->type()->isNumeric() && F->type()->isNumeric() &&
           "conditional arms have incompatible types");
    promote(T, F);
  }
  auto *N = new Expr(ExprKind::Cond, T->type());
  N->Operands = {std::move(C), std::move(T), std::move(F)};
  return ExprRef(N);
}

ExprRef Expr::pairNew(ExprRef First, ExprRef Second) {
  assert(First && Second && "null operand");
  auto *N = new Expr(ExprKind::PairNew,
                     Type::pairTy(First->type(), Second->type()));
  N->Operands = {std::move(First), std::move(Second)};
  return ExprRef(N);
}

ExprRef Expr::pairFirst(ExprRef P) {
  assert(P && P->type()->isPair() && "pairFirst of a non-pair");
  auto *N = new Expr(ExprKind::PairFirst, P->type()->first());
  N->Operands = {std::move(P)};
  return ExprRef(N);
}

ExprRef Expr::pairSecond(ExprRef P) {
  assert(P && P->type()->isPair() && "pairSecond of a non-pair");
  auto *N = new Expr(ExprKind::PairSecond, P->type()->second());
  N->Operands = {std::move(P)};
  return ExprRef(N);
}

ExprRef Expr::vecLen(ExprRef V) {
  assert(V && V->type()->isVec() && "vecLen of a non-vec");
  auto *N = new Expr(ExprKind::VecLen, Type::int64Ty());
  N->Operands = {std::move(V)};
  return ExprRef(N);
}

ExprRef Expr::vecIndex(ExprRef V, ExprRef I) {
  assert(V && V->type()->isVec() && "vecIndex of a non-vec");
  assert(I && I->type()->isInt64() && "vec index must be int64");
  auto *N = new Expr(ExprKind::VecIndex, Type::doubleTy());
  N->Operands = {std::move(V), std::move(I)};
  return ExprRef(N);
}

ExprRef Expr::bufferSlice(unsigned Slot, ExprRef Start, ExprRef Len) {
  assert(Start && Start->type()->isInt64() && "slice start must be int64");
  assert(Len && Len->type()->isInt64() && "slice length must be int64");
  auto *N = new Expr(ExprKind::BufferSlice, Type::vecTy());
  N->Slot = Slot;
  N->Operands = {std::move(Start), std::move(Len)};
  return ExprRef(N);
}

ExprRef Expr::sourceLen(unsigned Slot) {
  auto *N = new Expr(ExprKind::SourceLen, Type::int64Ty());
  N->Slot = Slot;
  return ExprRef(N);
}

//===----------------------------------------------------------------===//
// Debug printing
//===----------------------------------------------------------------===//

std::string Expr::str() const {
  switch (Kind) {
  case ExprKind::Const:
    if (std::holds_alternative<bool>(Literal))
      return std::get<bool>(Literal) ? "true" : "false";
    if (std::holds_alternative<std::int64_t>(Literal))
      return std::to_string(std::get<std::int64_t>(Literal));
    return support::strFormat("%g", std::get<double>(Literal));
  case ExprKind::Param:
    return Name;
  case ExprKind::Capture:
    return support::strFormat("cap%u", Slot);
  case ExprKind::Convert:
    return "(" + Ty->str() + ")" + Operands[0]->str();
  case ExprKind::Unary:
    return std::string(UOp == UnaryOp::Neg ? "-" : "!") + "(" +
           Operands[0]->str() + ")";
  case ExprKind::Binary:
    return "(" + Operands[0]->str() + " " + binaryOpSpelling(BOp) + " " +
           Operands[1]->str() + ")";
  case ExprKind::Call: {
    std::vector<std::string> Parts;
    for (const ExprRef &Op : Operands)
      Parts.push_back(Op->str());
    return std::string(builtinSpelling(Fn)) + "(" +
           support::join(Parts, ", ") + ")";
  }
  case ExprKind::Cond:
    return "(" + Operands[0]->str() + " ? " + Operands[1]->str() + " : " +
           Operands[2]->str() + ")";
  case ExprKind::PairNew:
    return "{" + Operands[0]->str() + ", " + Operands[1]->str() + "}";
  case ExprKind::PairFirst:
    return Operands[0]->str() + ".first";
  case ExprKind::PairSecond:
    return Operands[0]->str() + ".second";
  case ExprKind::VecLen:
    return Operands[0]->str() + ".len";
  case ExprKind::VecIndex:
    return Operands[0]->str() + "[" + Operands[1]->str() + "]";
  case ExprKind::BufferSlice:
    return support::strFormat("src%u[%s .. +%s]", Slot,
                              Operands[0]->str().c_str(),
                              Operands[1]->str().c_str());
  case ExprKind::SourceLen:
    return support::strFormat("len(src%u)", Slot);
  }
  stenoUnreachable("bad ExprKind");
}
