//===- expr/Eval.h - Tree-walking expression evaluator ---------*- C++ -*-===//
///
/// \file
/// Reference semantics for the expression language. The evaluator is used
/// by the interpreter backend, by the un-optimized dynamic execution path,
/// and — most importantly — by the test suite as the oracle against which
/// generated (fused) code is checked.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_EXPR_EVAL_H
#define STENO_EXPR_EVAL_H

#include "expr/Expr.h"
#include "expr/Lambda.h"
#include "expr/Value.h"

#include <functional>
#include <string>
#include <vector>

namespace steno {
namespace expr {

/// Evaluation environment: parameter bindings (innermost-last, looked up by
/// name back to front so nested lambdas shadow outer ones) plus the
/// captured-variable slot array.
class Env {
public:
  Env() = default;

  /// Binds \p Name for the duration of the environment (push/pop with
  /// ScopedBinding for nesting).
  void bind(std::string Name, Value V) {
    Bindings.emplace_back(std::move(Name), std::move(V));
  }

  void pop() { Bindings.pop_back(); }

  /// Looks up a parameter; falls back to the resolver installed with
  /// setFallback; aborts if the name is bound nowhere.
  const Value &lookup(const std::string &Name) const;

  /// Installs a secondary resolver consulted when a name has no explicit
  /// binding. The generated-code interpreter uses this to expose its local
  /// variables to expression evaluation.
  void
  setFallback(std::function<const Value *(const std::string &)> Resolver) {
    Fallback = std::move(Resolver);
  }

  /// Installs the capture slot array (not owned).
  void setCaptures(const std::vector<Value> *Slots) { Captures = Slots; }

  /// Installs the source-buffer slot array (not owned).
  void setSources(const std::vector<SourceBuffer> *Slots) {
    Sources = Slots;
  }

  /// Value of capture slot \p I; asserts the slot exists.
  const Value &captureAt(unsigned I) const;

  /// Source buffer at slot \p I; asserts the slot exists.
  const SourceBuffer &sourceAt(unsigned I) const;

private:
  std::vector<std::pair<std::string, Value>> Bindings;
  std::function<const Value *(const std::string &)> Fallback;
  const std::vector<Value> *Captures = nullptr;
  const std::vector<SourceBuffer> *Sources = nullptr;
};

/// Evaluates \p E under \p Environment.
Value evalExpr(const Expr &E, const Env &Environment);

/// Applies \p L to \p Args (arity-checked), evaluating under \p Environment
/// extended with the parameter bindings.
Value applyLambda(const Lambda &L, const std::vector<Value> &Args,
                  Env &Environment);

} // namespace expr
} // namespace steno

#endif // STENO_EXPR_EVAL_H
