//===- expr/Cse.h - Common-subexpression elimination (§9) ------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §9: "we can apply such optimizations as common
/// subexpression elimination only if it is possible to prove that the
/// subexpression has no side effects". Expressions in this language are
/// pure, so CSE is sound with one caveat: conditional contexts evaluate
/// lazily (the arms of Cond, the right operands of And/Or), so a
/// subexpression is hoisted only when it occurs at least twice in
/// *strict* positions — guaranteeing the hoisted computation would have
/// run anyway (division guards like `x != 0 && 10/x > 1` stay guarded).
///
/// The code generator applies this per emitted statement: repeated
/// non-trivial subtrees become local declarations ahead of the statement.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_EXPR_CSE_H
#define STENO_EXPR_CSE_H

#include "expr/Expr.h"

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace steno {
namespace expr {

/// Result of one CSE pass: the hoisted (name, subexpression) bindings in
/// dependency order, plus the rewritten expression referencing them as
/// parameters.
struct CseResult {
  std::vector<std::pair<std::string, ExprRef>> Lets;
  ExprRef Rewritten;
};

/// Hoists maximal subtrees that occur at least twice in strict positions
/// of \p E. \p FreshName supplies local variable names. Returns the
/// original expression unchanged (no lets) when nothing qualifies.
CseResult eliminateCommonSubexprs(const ExprRef &E,
                                  const std::function<std::string()> &FreshName);

} // namespace expr
} // namespace steno

#endif // STENO_EXPR_CSE_H
