//===- expr/Type.cpp ------------------------------------------*- C++ -*-===//

#include "expr/Type.h"
#include "support/Error.h"

using namespace steno;
using namespace steno::expr;

bool Type::equals(const Type &Other) const {
  if (Kind != Other.Kind)
    return false;
  if (Kind != TypeKind::Pair)
    return true;
  return A->equals(*Other.A) && B->equals(*Other.B);
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int64:
    return "int64";
  case TypeKind::Double:
    return "double";
  case TypeKind::Vec:
    return "vec";
  case TypeKind::Pair:
    return "pair<" + A->str() + ", " + B->str() + ">";
  }
  stenoUnreachable("bad TypeKind");
}

std::string Type::cxxName() const {
  switch (Kind) {
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int64:
    return "std::int64_t";
  case TypeKind::Double:
    return "double";
  case TypeKind::Vec:
    return "steno::rt::VecView";
  case TypeKind::Pair:
    return "steno::rt::Pair<" + A->cxxName() + ", " + B->cxxName() + ">";
  }
  stenoUnreachable("bad TypeKind");
}

TypeRef Type::boolTy() {
  static TypeRef T(new Type(TypeKind::Bool));
  return T;
}

TypeRef Type::int64Ty() {
  static TypeRef T(new Type(TypeKind::Int64));
  return T;
}

TypeRef Type::doubleTy() {
  static TypeRef T(new Type(TypeKind::Double));
  return T;
}

TypeRef Type::pairTy(TypeRef First, TypeRef Second) {
  assert(First && Second && "pair components must be non-null");
  return TypeRef(new Type(TypeKind::Pair, std::move(First),
                          std::move(Second)));
}

TypeRef Type::vecTy() {
  static TypeRef T(new Type(TypeKind::Vec));
  return T;
}

std::string Type::serialize() const {
  switch (Kind) {
  case TypeKind::Bool:
    return "b";
  case TypeKind::Int64:
    return "i";
  case TypeKind::Double:
    return "d";
  case TypeKind::Vec:
    return "v";
  case TypeKind::Pair:
    return "p(" + A->serialize() + "," + B->serialize() + ")";
  }
  stenoUnreachable("bad TypeKind");
}

namespace {

/// Recursive-descent parser over the serialize() grammar.
TypeRef parseType(const std::string &Text, size_t &Pos) {
  if (Pos >= Text.size())
    return nullptr;
  switch (Text[Pos]) {
  case 'b':
    ++Pos;
    return Type::boolTy();
  case 'i':
    ++Pos;
    return Type::int64Ty();
  case 'd':
    ++Pos;
    return Type::doubleTy();
  case 'v':
    ++Pos;
    return Type::vecTy();
  case 'p': {
    if (Pos + 1 >= Text.size() || Text[Pos + 1] != '(')
      return nullptr;
    Pos += 2;
    TypeRef First = parseType(Text, Pos);
    if (!First || Pos >= Text.size() || Text[Pos] != ',')
      return nullptr;
    ++Pos;
    TypeRef Second = parseType(Text, Pos);
    if (!Second || Pos >= Text.size() || Text[Pos] != ')')
      return nullptr;
    ++Pos;
    return Type::pairTy(std::move(First), std::move(Second));
  }
  default:
    return nullptr;
  }
}

} // namespace

TypeRef Type::deserialize(const std::string &Text) {
  size_t Pos = 0;
  TypeRef T = parseType(Text, Pos);
  if (!T || Pos != Text.size())
    return nullptr;
  return T;
}
