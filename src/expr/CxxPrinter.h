//===- expr/CxxPrinter.h - Expression -> C++ source rendering --*- C++ -*-===//
///
/// \file
/// Renders an expression tree as a C++ expression string. This is the
/// lambda-inlining half of iterator fusion (paper §4.2, Figure 6): instead
/// of invoking a function object per element, the transformation/predicate
/// body is printed directly into the generated loop, with its parameters
/// renamed to the loop's element variables and its captures rendered as
/// field accesses on the bound capture block (paper §3.3).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_EXPR_CXXPRINTER_H
#define STENO_EXPR_CXXPRINTER_H

#include "expr/Expr.h"

#include <functional>
#include <string>

namespace steno {
namespace expr {

/// Name-resolution hooks for printing. The code generator supplies these to
/// map Param nodes to generated local variables (elem_i, ...) and Capture
/// nodes to capture-block accesses (caps->slot3, ...).
struct CxxNames {
  std::function<std::string(const std::string &ParamName)> Param;
  /// Rendering of a capture-slot access; receives the slot's static type so
  /// the right capture-block field can be selected.
  std::function<std::string(unsigned Slot, const Type &Ty)> Capture;
  /// C++ expression for source slot's double data pointer ("caps->...Data").
  std::function<std::string(unsigned Slot)> SourceData;
  /// C++ expression for source slot's element count.
  std::function<std::string(unsigned Slot)> SourceCount;
};

/// Renders \p E as a parenthesized C++ expression using \p Names.
std::string printExprCxx(const Expr &E, const CxxNames &Names);

} // namespace expr
} // namespace steno

#endif // STENO_EXPR_CXXPRINTER_H
