//===- expr/Cse.cpp -------------------------------------------*- C++ -*-===//

#include "expr/Cse.h"
#include "expr/Analysis.h"
#include "support/Error.h"

#include <cassert>
#include <unordered_map>

using namespace steno;
using namespace steno::expr;

namespace {

/// Subtrees worth hoisting: anything that performs work. Leaves and bare
/// conversions of leaves are cheaper than the local they'd become.
bool isNonTrivial(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Const:
  case ExprKind::Param:
  case ExprKind::Capture:
  case ExprKind::SourceLen:
    return false;
  case ExprKind::Convert:
  case ExprKind::PairFirst:
  case ExprKind::PairSecond:
    return isNonTrivial(*E.operand(0));
  default:
    return true;
  }
}

struct Occurrences {
  /// Structural-equality buckets under a structural hash.
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<const Expr *, unsigned>>>
      Buckets;

  unsigned &countOf(const Expr &E) {
    auto &Bucket = Buckets[hashExpr(E)];
    for (auto &[Node, Count] : Bucket)
      if (equalExprs(*Node, E))
        return Count;
    Bucket.emplace_back(&E, 0);
    return Bucket.back().second;
  }

  unsigned lookup(const Expr &E) {
    auto It = Buckets.find(hashExpr(E));
    if (It == Buckets.end())
      return 0;
    for (auto &[Node, Count] : It->second)
      if (equalExprs(*Node, E))
        return Count;
    return 0;
  }
};

/// Counts strict-position occurrences. Lazy positions (Cond arms, the
/// right operand of And/Or) are not counted and not descended into with
/// strictness — their inner repetitions must not justify hoisting.
void countStrict(const Expr &E, Occurrences &Occ) {
  if (isNonTrivial(E))
    ++Occ.countOf(E);
  if (E.kind() == ExprKind::Cond) {
    countStrict(*E.operand(0), Occ);
    return; // arms are lazy
  }
  if (E.kind() == ExprKind::Binary &&
      (E.binaryOp() == BinaryOp::And || E.binaryOp() == BinaryOp::Or)) {
    countStrict(*E.operand(0), Occ);
    return; // rhs is lazy
  }
  for (const ExprRef &Op : E.operands())
    countStrict(*Op, Occ);
}

class Rewriter {
public:
  Rewriter(Occurrences &Occ, const std::function<std::string()> &FreshName)
      : Occ(Occ), FreshName(FreshName) {}

  ExprRef rewrite(const ExprRef &E) {
    if (isNonTrivial(*E) && Occ.lookup(*E) >= 2) {
      // Maximal repeated subtree: bind it once, reference it everywhere
      // (including lazy positions — both strict occurrences force it).
      std::uint64_t H = hashExpr(*E);
      auto &Bucket = Named[H];
      for (auto &[Node, Name] : Bucket)
        if (equalExprs(*Node, *E))
          return Expr::param(Name, E->type());
      std::string Name = FreshName();
      Bucket.emplace_back(E, Name);
      Lets.emplace_back(Name, E);
      return Expr::param(Name, E->type());
    }
    if (E->operands().empty())
      return E;
    std::vector<ExprRef> Ops;
    Ops.reserve(E->operands().size());
    bool Changed = false;
    for (const ExprRef &Op : E->operands()) {
      ExprRef NewOp = rewrite(Op);
      Changed |= NewOp != Op;
      Ops.push_back(std::move(NewOp));
    }
    if (!Changed)
      return E;
    return rebuildWith(E, std::move(Ops));
  }

  std::vector<std::pair<std::string, ExprRef>> takeLets() {
    return std::move(Lets);
  }

private:
  static ExprRef rebuildWith(const ExprRef &E, std::vector<ExprRef> Ops) {
    switch (E->kind()) {
    case ExprKind::Convert:
      return Expr::convert(Ops[0], E->type());
    case ExprKind::Unary:
      return Expr::unary(E->unaryOp(), Ops[0]);
    case ExprKind::Binary:
      return Expr::binary(E->binaryOp(), Ops[0], Ops[1]);
    case ExprKind::Call:
      return Expr::call(E->builtin(), std::move(Ops));
    case ExprKind::Cond:
      return Expr::cond(Ops[0], Ops[1], Ops[2]);
    case ExprKind::PairNew:
      return Expr::pairNew(Ops[0], Ops[1]);
    case ExprKind::PairFirst:
      return Expr::pairFirst(Ops[0]);
    case ExprKind::PairSecond:
      return Expr::pairSecond(Ops[0]);
    case ExprKind::VecLen:
      return Expr::vecLen(Ops[0]);
    case ExprKind::VecIndex:
      return Expr::vecIndex(Ops[0], Ops[1]);
    case ExprKind::BufferSlice:
      return Expr::bufferSlice(E->sourceSlot(), Ops[0], Ops[1]);
    default:
      stenoUnreachable("leaf with operands");
    }
  }

  Occurrences &Occ;
  const std::function<std::string()> &FreshName;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<ExprRef, std::string>>>
      Named;
  std::vector<std::pair<std::string, ExprRef>> Lets;
};

} // namespace

CseResult
expr::eliminateCommonSubexprs(const ExprRef &E,
                              const std::function<std::string()> &FreshName) {
  assert(E && "CSE of a null expression");
  Occurrences Occ;
  countStrict(*E, Occ);
  Rewriter R(Occ, FreshName);
  CseResult Out;
  Out.Rewritten = R.rewrite(E);
  Out.Lets = R.takeLets();
  return Out;
}
