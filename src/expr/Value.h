//===- expr/Value.h - Runtime values for interpretation --------*- C++ -*-===//
///
/// \file
/// The dynamic value domain matching expr::Type: bool, int64, double, Vec
/// views and pairs. Used by the expression evaluator and the generated-code
/// interpreter backend. Values are small and copyable; pairs share their
/// storage.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_EXPR_VALUE_H
#define STENO_EXPR_VALUE_H

#include "expr/Type.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <variant>

namespace steno {
namespace expr {

/// Borrowed view of a contiguous double[Len] — the runtime representation
/// of Type::vecTy(). The viewed buffer must outlive the view (it lives in a
/// bound source array or in interpreter-owned scratch storage).
struct VecView {
  const double *Data = nullptr;
  std::int64_t Len = 0;

  double operator[](std::int64_t I) const {
    assert(I >= 0 && I < Len && "vec index out of range");
    return Data[I];
  }

  bool operator==(const VecView &O) const {
    if (Len != O.Len)
      return false;
    for (std::int64_t I = 0; I != Len; ++I)
      if (Data[I] != O.Data[I])
        return false;
    return true;
  }
};

/// Declared element type of a bound source buffer. Recorded explicitly so
/// consumers (e.g. dryad's partition re-binding) never have to infer the
/// type from pointer nullness — an empty source is legally bound with a
/// null data pointer and zero count.
enum class SourceBufKind : std::uint8_t { Unbound, Double, Int64, Point };

/// A bound source buffer: either a flat double array (optionally viewed as
/// Count points of Dim doubles each) or an int64 array. The query pipeline
/// binds one of these per source slot at invocation time (paper §3.3's
/// reflection-based capture binding).
struct SourceBuffer {
  const double *DoubleData = nullptr;
  const std::int64_t *Int64Data = nullptr;
  /// Number of elements (points, for strided point sources).
  std::int64_t Count = 0;
  /// Doubles per element for point sources; 1 for scalar sources.
  std::int64_t Dim = 1;
  /// How this slot was bound (bindDoubleArray / bindInt64Array /
  /// bindPointArray).
  SourceBufKind Kind = SourceBufKind::Unbound;
};

/// A dynamically typed value.
class Value {
public:
  Value() : Storage(false) {}
  Value(bool V) : Storage(V) {}
  Value(std::int64_t V) : Storage(V) {}
  Value(int V) : Storage(static_cast<std::int64_t>(V)) {}
  Value(double V) : Storage(V) {}
  Value(VecView V) : Storage(V) {}

  static Value makePair(Value First, Value Second) {
    Value V;
    V.Storage = std::make_shared<const std::pair<Value, Value>>(
        std::move(First), std::move(Second));
    return V;
  }

  TypeKind kind() const {
    switch (Storage.index()) {
    case 0:
      return TypeKind::Bool;
    case 1:
      return TypeKind::Int64;
    case 2:
      return TypeKind::Double;
    case 3:
      return TypeKind::Vec;
    default:
      return TypeKind::Pair;
    }
  }

  bool isBool() const { return kind() == TypeKind::Bool; }
  bool isInt64() const { return kind() == TypeKind::Int64; }
  bool isDouble() const { return kind() == TypeKind::Double; }
  bool isVec() const { return kind() == TypeKind::Vec; }
  bool isPair() const { return kind() == TypeKind::Pair; }

  bool asBool() const {
    assert(isBool() && "value is not a bool");
    return std::get<bool>(Storage);
  }

  std::int64_t asInt64() const {
    assert(isInt64() && "value is not an int64");
    return std::get<std::int64_t>(Storage);
  }

  double asDouble() const {
    assert(isDouble() && "value is not a double");
    return std::get<double>(Storage);
  }

  /// Numeric coercion used by promoted arithmetic.
  double asNumericDouble() const {
    return isDouble() ? asDouble() : static_cast<double>(asInt64());
  }

  VecView asVec() const {
    assert(isVec() && "value is not a vec");
    return std::get<VecView>(Storage);
  }

  const Value &first() const {
    assert(isPair() && "value is not a pair");
    return std::get<PairStorage>(Storage)->first;
  }

  const Value &second() const {
    assert(isPair() && "value is not a pair");
    return std::get<PairStorage>(Storage)->second;
  }

  /// Structural equality (pairs recurse, vecs compare element-wise).
  bool operator==(const Value &O) const {
    if (kind() != O.kind())
      return false;
    switch (kind()) {
    case TypeKind::Bool:
      return asBool() == O.asBool();
    case TypeKind::Int64:
      return asInt64() == O.asInt64();
    case TypeKind::Double:
      return asDouble() == O.asDouble();
    case TypeKind::Vec:
      return asVec() == O.asVec();
    case TypeKind::Pair:
      return first() == O.first() && second() == O.second();
    }
    return false;
  }

private:
  using PairStorage = std::shared_ptr<const std::pair<Value, Value>>;
  std::variant<bool, std::int64_t, double, VecView, PairStorage> Storage;
};

} // namespace expr
} // namespace steno

#endif // STENO_EXPR_VALUE_H
