//===- expr/Fold.h - Constant folding --------------------------*- C++ -*-===//
///
/// \file
/// Constant folding over expression trees: operator applications whose
/// operands are literals are evaluated at optimization time, and the
/// boolean/conditional identities (true && e, cond(true, a, b), ...) are
/// simplified. Runs before CSE in the code generator so that, e.g., range
/// bounds synthesized from literals collapse into single constants in the
/// generated code. Folding is semantics-preserving for this pure
/// expression language with one carve-out: integer division/modulo by a
/// literal zero is left unfolded (the generated code keeps the trap
/// behavior of the original program point).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_EXPR_FOLD_H
#define STENO_EXPR_FOLD_H

#include "expr/Expr.h"

namespace steno {
namespace expr {

/// Returns a constant-folded equivalent of \p E (possibly \p E itself
/// when nothing folds).
ExprRef foldConstants(const ExprRef &E);

} // namespace expr
} // namespace steno

#endif // STENO_EXPR_FOLD_H
