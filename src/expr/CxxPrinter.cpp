//===- expr/CxxPrinter.cpp ------------------------------------*- C++ -*-===//

#include "expr/CxxPrinter.h"
#include "support/Error.h"
#include "support/StringUtil.h"

#include <cassert>

using namespace steno;
using namespace steno::expr;

namespace {

std::string print(const Expr &E, const CxxNames &Names);

std::string printConst(const Expr &E) {
  const ConstValue &C = E.constValue();
  if (std::holds_alternative<bool>(C))
    return std::get<bool>(C) ? "true" : "false";
  if (std::holds_alternative<std::int64_t>(C))
    return support::strFormat("INT64_C(%lld)",
                              static_cast<long long>(
                                  std::get<std::int64_t>(C)));
  return support::doubleLiteral(std::get<double>(C));
}

/// A divisor the generated code may divide by with a bare `/`: a nonzero
/// integer constant. Anything else goes through rt::ckdiv/ckmod so a bad
/// divisor traps with a structured error instead of undefined behavior.
bool isProvablyNonzeroConst(const Expr &E) {
  return E.kind() == ExprKind::Const &&
         std::holds_alternative<std::int64_t>(E.constValue()) &&
         std::get<std::int64_t>(E.constValue()) != 0;
}

std::string printBinary(const Expr &E, const CxxNames &Names) {
  BinaryOp Op = E.binaryOp();
  std::string L = print(*E.operand(0), Names);
  std::string R = print(*E.operand(1), Names);
  // Double modulo maps to std::fmod; everything else is the operator.
  if (Op == BinaryOp::Mod && E.type()->isDouble())
    return "std::fmod(" + L + ", " + R + ")";
  if ((Op == BinaryOp::Div || Op == BinaryOp::Mod) &&
      E.type()->isInt64() && !E.divSafe() &&
      !isProvablyNonzeroConst(*E.operand(1)))
    return std::string(Op == BinaryOp::Div ? "steno::rt::ckdiv("
                                           : "steno::rt::ckmod(") +
           L + ", " + R + ")";
  return "(" + L + " " + binaryOpSpelling(Op) + " " + R + ")";
}

std::string printCall(const Expr &E, const CxxNames &Names) {
  std::vector<std::string> Args;
  for (const ExprRef &Op : E.operands())
    Args.push_back(print(*Op, Names));
  return std::string(builtinSpelling(E.builtin())) + "(" +
         support::join(Args, ", ") + ")";
}

std::string print(const Expr &E, const CxxNames &Names) {
  switch (E.kind()) {
  case ExprKind::Const:
    return printConst(E);
  case ExprKind::Param:
    assert(Names.Param && "no parameter name resolver installed");
    return Names.Param(E.paramName());
  case ExprKind::Capture:
    assert(Names.Capture && "no capture name resolver installed");
    return Names.Capture(E.captureSlot(), *E.type());
  case ExprKind::Convert:
    return "static_cast<" + E.type()->cxxName() + ">(" +
           print(*E.operand(0), Names) + ")";
  case ExprKind::Unary:
    return std::string(E.unaryOp() == UnaryOp::Neg ? "-" : "!") + "(" +
           print(*E.operand(0), Names) + ")";
  case ExprKind::Binary:
    return printBinary(E, Names);
  case ExprKind::Call:
    return printCall(E, Names);
  case ExprKind::Cond:
    return "(" + print(*E.operand(0), Names) + " ? " +
           print(*E.operand(1), Names) + " : " +
           print(*E.operand(2), Names) + ")";
  case ExprKind::PairNew:
    return E.type()->cxxName() + "{" + print(*E.operand(0), Names) + ", " +
           print(*E.operand(1), Names) + "}";
  case ExprKind::PairFirst:
    return "(" + print(*E.operand(0), Names) + ").First";
  case ExprKind::PairSecond:
    return "(" + print(*E.operand(0), Names) + ").Second";
  case ExprKind::VecLen:
    return "(" + print(*E.operand(0), Names) + ").Len";
  case ExprKind::VecIndex:
    return "(" + print(*E.operand(0), Names) + ").Data[" +
           print(*E.operand(1), Names) + "]";
  case ExprKind::BufferSlice:
    assert(Names.SourceData && "no source-data resolver installed");
    return "steno::rt::VecView{" + Names.SourceData(E.sourceSlot()) +
           " + (" + print(*E.operand(0), Names) + "), (" +
           print(*E.operand(1), Names) + ")}";
  case ExprKind::SourceLen:
    assert(Names.SourceCount && "no source-count resolver installed");
    return Names.SourceCount(E.sourceSlot());
  }
  stenoUnreachable("bad ExprKind");
}

} // namespace

std::string expr::printExprCxx(const Expr &E, const CxxNames &Names) {
  return print(E, Names);
}
