//===- expr/Type.h - Runtime type tags for query expressions ---*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type language of the query pipeline. Steno generates fully
/// type-specialized code, so every expression, operator and source carries a
/// Type tag from which the code generator derives concrete C++ types:
///
///   Bool   -> bool
///   Int64  -> std::int64_t
///   Double -> double
///   Pair   -> steno::rt::Pair<A, B> (aggregate of two fields)
///   Vec    -> steno::rt::VecView   (borrowed view of a double[dim] point)
///
/// Vec is double-element only: it models the flat strided point arrays of
/// the k-means workload (paper §7.2). Types are immutable shared nodes with
/// structural equality.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_EXPR_TYPE_H
#define STENO_EXPR_TYPE_H

#include <cassert>
#include <memory>
#include <string>

namespace steno {
namespace expr {

class Type;
using TypeRef = std::shared_ptr<const Type>;

/// Discriminator for Type nodes.
enum class TypeKind { Bool, Int64, Double, Pair, Vec };

/// Immutable structural type. Construct through the static factories; scalar
/// types are interned singletons.
class Type {
public:
  TypeKind kind() const { return Kind; }

  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isInt64() const { return Kind == TypeKind::Int64; }
  bool isDouble() const { return Kind == TypeKind::Double; }
  bool isPair() const { return Kind == TypeKind::Pair; }
  bool isVec() const { return Kind == TypeKind::Vec; }
  bool isNumeric() const { return isInt64() || isDouble(); }
  bool isScalar() const { return isBool() || isNumeric(); }

  /// First component of a Pair; asserts on other kinds.
  const TypeRef &first() const {
    assert(isPair() && "first() on non-pair type");
    return A;
  }

  /// Second component of a Pair; asserts on other kinds.
  const TypeRef &second() const {
    assert(isPair() && "second() on non-pair type");
    return B;
  }

  /// Structural equality.
  bool equals(const Type &Other) const;

  /// Human-readable spelling, e.g. "pair<double, int64>".
  std::string str() const;

  /// The concrete C++ type the code generator emits for this tag, e.g.
  /// "steno::rt::Pair<double, std::int64_t>".
  std::string cxxName() const;

  /// Compact stable serialization: "b" | "i" | "d" | "v" | "p(X,Y)".
  /// Used by the persistent query cache's on-disk metadata.
  std::string serialize() const;

  /// Inverse of serialize(); returns nullptr on malformed input.
  static TypeRef deserialize(const std::string &Text);

  static TypeRef boolTy();
  static TypeRef int64Ty();
  static TypeRef doubleTy();
  static TypeRef pairTy(TypeRef First, TypeRef Second);
  static TypeRef vecTy();

private:
  explicit Type(TypeKind Kind, TypeRef A = nullptr, TypeRef B = nullptr)
      : Kind(Kind), A(std::move(A)), B(std::move(B)) {}

  TypeKind Kind;
  TypeRef A;
  TypeRef B;
};

/// Convenience equality over handles (null-safe).
inline bool sameType(const TypeRef &X, const TypeRef &Y) {
  if (X == Y)
    return true;
  if (!X || !Y)
    return false;
  return X->equals(*Y);
}

} // namespace expr
} // namespace steno

#endif // STENO_EXPR_TYPE_H
