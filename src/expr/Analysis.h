//===- expr/Analysis.h - Expression-tree analyses and rewrites -*- C++ -*-===//
///
/// \file
/// Free-parameter analysis and parameter substitution. Substitution
/// implements the rewrite of paper §5.2: before generating code for a
/// nested query, occurrences of the outer lambda's parameter inside the
/// nested query are rewritten to the outer query's current element
/// variable.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_EXPR_ANALYSIS_H
#define STENO_EXPR_ANALYSIS_H

#include "expr/Expr.h"
#include "expr/Lambda.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace steno {
namespace expr {

/// Names of every Param node reachable from \p E.
std::set<std::string> freeParams(const Expr &E);

/// Indices of every Capture slot reachable from \p E.
std::set<unsigned> usedCaptureSlots(const Expr &E);

/// Indices of every source-buffer slot referenced by BufferSlice/SourceLen
/// nodes reachable from \p E.
std::set<unsigned> usedSourceSlots(const Expr &E);

/// Rewrites every Param named in \p Replacements with its mapped
/// expression; parameters not in the map are preserved. Replacement
/// expressions must have exactly the type of the parameter they replace.
ExprRef substituteParams(const ExprRef &E,
                         const std::map<std::string, ExprRef> &Replacements);

/// Renames parameters: substituteParams with fresh Param nodes.
ExprRef renameParams(const ExprRef &E,
                     const std::map<std::string, std::string> &Renames);

/// Structural hash of a type (structurally equal types hash equally).
std::uint64_t hashType(const Type &Ty);

/// Structural hash of an expression: equal structure (kinds, operators,
/// literals, names, slots, types) hashes equally. Used by the query cache
/// to fingerprint queries.
std::uint64_t hashExpr(const Expr &E);

/// Deep structural equality of expressions (the equality that justifies
/// reusing a compiled query).
bool equalExprs(const Expr &A, const Expr &B);

/// Hash/equality over lambdas (parameters' names and types included —
/// bodies reference parameters by name).
std::uint64_t hashLambda(const Lambda &L);
bool equalLambdas(const Lambda &A, const Lambda &B);

} // namespace expr
} // namespace steno

#endif // STENO_EXPR_ANALYSIS_H
