//===- expr/Lambda.h - First-class lambda values ---------------*- C++ -*-===//
///
/// \file
/// A Lambda packages named, typed parameters with an expression body. Query
/// operators (Select, Where, Aggregate, ...) are parameterized with Lambdas,
/// exactly as LINQ operators are parameterized with lambda expressions
/// (paper §2).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_EXPR_LAMBDA_H
#define STENO_EXPR_LAMBDA_H

#include "expr/Expr.h"

#include <cassert>
#include <string>
#include <vector>

namespace steno {
namespace expr {

/// One formal parameter of a Lambda.
struct LambdaParam {
  std::string Name;
  TypeRef Ty;
};

/// An anonymous function value: parameters plus a body expression.
class Lambda {
public:
  Lambda() = default;

  Lambda(std::vector<LambdaParam> Params, ExprRef Body)
      : Params(std::move(Params)), Body(std::move(Body)) {
    assert(this->Body && "lambda must have a body");
  }

  bool valid() const { return Body != nullptr; }
  size_t arity() const { return Params.size(); }

  const std::vector<LambdaParam> &params() const { return Params; }

  const LambdaParam &param(size_t I) const {
    assert(I < Params.size() && "parameter index out of range");
    return Params[I];
  }

  const ExprRef &body() const { return Body; }

  /// Result type of the lambda.
  const TypeRef &resultType() const {
    assert(Body && "resultType of invalid lambda");
    return Body->type();
  }

  /// Debug rendering, e.g. "(x) => ((x % 2) == 0)".
  std::string str() const {
    std::string Out = "(";
    for (size_t I = 0; I != Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Params[I].Name;
    }
    Out += ") => ";
    Out += Body ? Body->str() : std::string("<invalid>");
    return Out;
  }

private:
  std::vector<LambdaParam> Params;
  ExprRef Body;
};

} // namespace expr
} // namespace steno

#endif // STENO_EXPR_LAMBDA_H
