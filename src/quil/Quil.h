//===- quil/Quil.h - Query Intermediate Language ----------------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// QUIL (paper §4.1): the intermediate language that reduces the LINQ
/// operator zoo to six symbols,
///
///   (query) ::= Src ( Trans | Pred | Sink | (query) )* Agg? Ret
///
/// Table 1's classification maps our query::OpKind set onto these symbols
/// (see Lower.cpp). A nested query substitutes for a Trans or Pred symbol
/// (paper §5), making the language context-free; in this representation a
/// nested query is an Op of symbol Nested carrying its own Chain plus the
/// name of the outer element parameter it references.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_QUIL_QUIL_H
#define STENO_QUIL_QUIL_H

#include "expr/Expr.h"
#include "expr/Lambda.h"
#include "query/Query.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace steno {
namespace quil {

/// The QUIL alphabet (Table 1), plus Nested for sub-queries.
enum class Sym { Src, Trans, Pred, Sink, Agg, Ret, Nested };

/// Upper bounds on run-time binding slots. Bindings are dense vectors
/// indexed by slot, so a garbage slot index (an uninitialized unsigned,
/// say) would demand a multi-gigabyte binding table at run time; the
/// validator and the analysis pipeline reject any chain whose expressions
/// reference slots at or above these limits.
constexpr unsigned MaxCaptureSlots = 256;
constexpr unsigned MaxSourceSlots = 64;

/// Which Pred-class operator an Op encodes: Where is stateless; Take/Skip
/// need a counter and TakeWhile/SkipWhile a flag in the generated prelude.
enum class PredOp { Where, Take, Skip, TakeWhile, SkipWhile };

/// Which Sink-class operator an Op encodes.
enum class SinkOp { GroupBy, GroupByAggregate, OrderBy, ToArray };

/// How a nested query is consumed by the outer query (paper §5):
///   Trans  — nested scalar query; its result becomes the next element.
///   Pred   — nested scalar bool query; filters the outer element.
///   Flatten— nested collection query (SelectMany); its elements continue
///            through the rest of the outer query (Figure 11).
enum class NestedRole { Trans, Pred, Flatten };

struct Chain;
using ChainRef = std::shared_ptr<const Chain>;

/// One QUIL operator instance, fully typed.
struct Op {
  Sym S = Sym::Ret;

  /// Src payload.
  query::SourceDesc Src;

  PredOp P = PredOp::Where;
  SinkOp K = SinkOp::ToArray;

  /// Trans function / Pred predicate / Sink key selector.
  expr::Lambda Fn;
  /// Agg or GroupByAggregate step: (acc, elem) -> acc.
  expr::Lambda Fn2;
  /// Agg result selector (acc) -> R, or GroupByAggregate result selector
  /// (key, acc) -> R. Invalid when defaulted.
  expr::Lambda Fn3;
  /// Associative combiner (acc, acc) -> acc when the aggregation supports
  /// per-partition partial evaluation (paper §6). Synthesized for the
  /// aggregate sugar; user-supplied for explicit folds; invalid otherwise.
  expr::Lambda Combine;
  /// Early-exit condition (acc) -> bool for short-circuiting aggregates
  /// (Any/All/First/Contains): once true, no further element can change
  /// the result and the generated loop breaks out.
  expr::Lambda StopWhen;
  /// Agg/GroupByAggregate seed, or Take/Skip count.
  expr::ExprRef Seed;
  /// Dense GroupByAggregate key-range bound (§4.3's O(1)-keys sink);
  /// null for the hash sink.
  expr::ExprRef DenseKeys;

  /// Nested payload.
  ChainRef NestedChain;
  NestedRole Role = NestedRole::Trans;
  std::string OuterParam;
  expr::TypeRef OuterParamTy;

  /// Element type consumed / produced by this operator. For Agg, OutElem
  /// is the scalar result type; for Ret both equal the chain result.
  expr::TypeRef InElem;
  expr::TypeRef OutElem;
};

/// A lowered query: a Src ... Ret operator string.
struct Chain {
  std::vector<Op> Ops;
  /// Element type (collection queries) or scalar type (aggregates).
  expr::TypeRef Result;
  bool Scalar = false;

  /// Symbol string for tests/debugging, nested chains in parentheses:
  /// "Src Trans (Src Agg Ret) Agg Ret".
  std::string symbols() const;
};

/// Lowers a query AST into QUIL, expanding aggregate sugar (Sum, Min, Max,
/// Count, Average) into explicit Agg seeds/steps (paper Table 1: they are
/// all foldl). Asserts the query is valid.
Chain lower(const query::Query &Q);

/// Validates \p C against the QUIL grammar with the Figure 4 state machine
/// (extended recursively for nested queries, §5.1). Returns an error
/// message, or std::nullopt when the chain is a valid QUIL sentence.
std::optional<std::string> validate(const Chain &C);

/// The GroupBy-Aggregate specialization of paper §4.3: rewrites
/// Sink(GroupBy) followed by a nested-Trans aggregation over the group's
/// bag into the fused Sink(GroupByAggregate), which stores per-key partial
/// aggregates instead of materialized groups. Returns the (possibly
/// rewritten) chain and reports via \p Applied whether it fired.
Chain specializeGroupByAggregate(const Chain &C, bool *Applied = nullptr);

/// Structural hash of a chain: stable across processes and independent
/// of entry-symbol naming (which carries a per-process counter), covering
/// every operator's symbol, payload lambdas/exprs, source descriptors and
/// nested chains. Structurally equal chains — e.g. the interp and native
/// plans of one query — hash equal; this is the ProfileStore key.
std::uint64_t hashChain(const Chain &C);

/// Names used by tests: one-token spelling of a symbol.
const char *symName(Sym S);

} // namespace quil
} // namespace steno

#endif // STENO_QUIL_QUIL_H
