//===- quil/Specialize.cpp - GroupBy-Aggregate fusion (§4.3) ---*- C++ -*-===//
///
/// \file
/// Operator specialization (paper §4.3): a GroupBy sink whose groups are
/// immediately reduced by a per-group aggregation — the reduce() pattern of
/// MapReduce — is rewritten into a fused GroupByAggregate sink that keeps
/// one partial accumulator per key instead of materializing every group's
/// bag. The recognized shape is
///
///   ... Sink(GroupBy key) Nested[Trans, g](
///         Src(VecExpr = g.second) Trans* Pred(Where)* Agg(seed, step
///         [, result]) Ret ) ...
///
/// i.e. "group, then for each group fold its bag" with the group's bag used
/// only as the nested source and the group's key used only as g.first. The
/// rewrite composes the bag-side Trans/Where operators into the fold step
/// and re-targets the result selector onto (key, acc).
///
//===----------------------------------------------------------------------===//

#include "quil/Quil.h"
#include "expr/Analysis.h"
#include "support/Error.h"

#include <cassert>

using namespace steno;
using namespace steno::quil;
using expr::Expr;
using expr::ExprKind;
using expr::ExprRef;
using expr::Lambda;
using expr::Type;
using expr::TypeRef;

namespace {

constexpr const char *FusedAcc = "__gacc";
constexpr const char *FusedElem = "__gx";
constexpr const char *FusedKey = "__gkey";

/// True if \p E is exactly PairSecond(Param(\p Name)).
bool isBagOfParam(const Expr &E, const std::string &Name) {
  return E.kind() == ExprKind::PairSecond &&
         E.operand(0)->kind() == ExprKind::Param &&
         E.operand(0)->paramName() == Name;
}

/// Checks that every use of the group parameter \p Name inside \p E is of
/// the form PairFirst(g) — i.e. only the key is consumed, never the bag
/// and never the whole group value.
bool usesOnlyKeyOf(const Expr &E, const std::string &Name) {
  if (E.kind() == ExprKind::PairFirst &&
      E.operand(0)->kind() == ExprKind::Param &&
      E.operand(0)->paramName() == Name)
    return true; // g.first is fine; do not descend into the Param itself.
  if (E.kind() == ExprKind::Param && E.paramName() == Name)
    return false; // bare g (or g.second via the caller's walk) — not fusable
  for (const ExprRef &Op : E.operands())
    if (!usesOnlyKeyOf(*Op, Name))
      return false;
  return true;
}

/// Rewrites PairFirst(Param(g)) -> Replacement within \p E.
ExprRef replaceKeyOf(const ExprRef &E, const std::string &Name,
                     const ExprRef &Replacement) {
  if (E->kind() == ExprKind::PairFirst &&
      E->operand(0)->kind() == ExprKind::Param &&
      E->operand(0)->paramName() == Name)
    return Replacement;
  if (E->operands().empty())
    return E;
  // Rebuild through substituteParams-style recursion: reuse Analysis by
  // temporarily substituting via a unique param is more code than a direct
  // rebuild, so rebuild manually through the factories.
  std::vector<ExprRef> Ops;
  Ops.reserve(E->operands().size());
  bool Changed = false;
  for (const ExprRef &Op : E->operands()) {
    ExprRef NewOp = replaceKeyOf(Op, Name, Replacement);
    Changed |= NewOp != Op;
    Ops.push_back(std::move(NewOp));
  }
  if (!Changed)
    return E;
  switch (E->kind()) {
  case ExprKind::Convert:
    return Expr::convert(Ops[0], E->type());
  case ExprKind::Unary:
    return Expr::unary(E->unaryOp(), Ops[0]);
  case ExprKind::Binary:
    return Expr::binary(E->binaryOp(), Ops[0], Ops[1]);
  case ExprKind::Call:
    return Expr::call(E->builtin(), std::move(Ops));
  case ExprKind::Cond:
    return Expr::cond(Ops[0], Ops[1], Ops[2]);
  case ExprKind::PairNew:
    return Expr::pairNew(Ops[0], Ops[1]);
  case ExprKind::PairFirst:
    return Expr::pairFirst(Ops[0]);
  case ExprKind::PairSecond:
    return Expr::pairSecond(Ops[0]);
  case ExprKind::VecLen:
    return Expr::vecLen(Ops[0]);
  case ExprKind::VecIndex:
    return Expr::vecIndex(Ops[0], Ops[1]);
  case ExprKind::BufferSlice:
    return Expr::bufferSlice(E->sourceSlot(), Ops[0], Ops[1]);
  default:
    stenoUnreachable("leaf with operands");
  }
}

/// Attempts to build the fused GroupByAggregate op for GroupBy op \p G
/// followed by nested-Trans op \p N. Returns std::nullopt if the shape
/// does not match.
std::optional<Op> tryFuse(const Op &G, const Op &N) {
  if (G.S != Sym::Sink || G.K != SinkOp::GroupBy)
    return std::nullopt;
  if (N.S != Sym::Nested || N.Role != NestedRole::Trans)
    return std::nullopt;

  const Chain &Inner = *N.NestedChain;
  const std::string &GName = N.OuterParam;

  // The nested source must be exactly the group's bag.
  const Op &Src = Inner.Ops.front();
  if (Src.S != Sym::Src || Src.Src.Kind != query::SourceKind::VecExpr ||
      !isBagOfParam(*Src.Src.Vec, GName))
    return std::nullopt;

  // Middle operators: only Trans and stateless Where may fuse into the
  // fold step; the chain must end Agg Ret.
  if (Inner.Ops.size() < 3)
    return std::nullopt;
  const Op &Agg = Inner.Ops[Inner.Ops.size() - 2];
  if (Agg.S != Sym::Agg)
    return std::nullopt;
  for (size_t I = 1; I + 2 < Inner.Ops.size(); ++I) {
    const Op &Mid = Inner.Ops[I];
    if (Mid.S == Sym::Trans)
      continue;
    if (Mid.S == Sym::Pred && Mid.P == PredOp::Where)
      continue;
    return std::nullopt;
  }

  // The bag may only be consumed by the source; the key may be used
  // anywhere (as g.first).
  auto usesGSafely = [&GName](const Lambda &L) {
    return !L.valid() || usesOnlyKeyOf(*L.body(), GName);
  };
  if (!usesGSafely(Agg.Fn2) || !usesGSafely(Agg.Fn3))
    return std::nullopt;
  for (size_t I = 1; I + 2 < Inner.Ops.size(); ++I)
    if (!usesGSafely(Inner.Ops[I].Fn))
      return std::nullopt;
  if (Agg.Seed && !expr::freeParams(*Agg.Seed).empty())
    return std::nullopt; // seed must be closed (it runs once per key)

  TypeRef ElemTy = G.InElem; // the pre-GroupBy element (double)
  TypeRef AccTy = Agg.Seed->type();
  ExprRef KeyParam = Expr::param(FusedKey, Type::int64Ty());
  ExprRef AccParam = Expr::param(FusedAcc, AccTy);
  ExprRef ElemParam = Expr::param(FusedElem, ElemTy);

  // Thread the bag member through the fused Trans/Where prefix.
  ExprRef Val = ElemParam;
  ExprRef Cond; // null = always true
  for (size_t I = 1; I + 2 < Inner.Ops.size(); ++I) {
    const Op &Mid = Inner.Ops[I];
    ExprRef Body = replaceKeyOf(Mid.Fn.body(), GName, KeyParam);
    Body = expr::substituteParams(Body, {{Mid.Fn.param(0).Name, Val}});
    if (Mid.S == Sym::Trans) {
      Val = std::move(Body);
      continue;
    }
    Cond = Cond ? Expr::binary(expr::BinaryOp::And, Cond, Body)
                : std::move(Body);
  }

  // Fused step: acc' = step(acc, val) under the composed condition.
  ExprRef StepBody = replaceKeyOf(Agg.Fn2.body(), GName, KeyParam);
  StepBody = expr::substituteParams(
      StepBody,
      {{Agg.Fn2.param(0).Name, AccParam}, {Agg.Fn2.param(1).Name, Val}});
  if (Cond)
    StepBody = Expr::cond(Cond, StepBody, AccParam);

  Op Fused;
  Fused.S = Sym::Sink;
  Fused.K = SinkOp::GroupByAggregate;
  Fused.Fn = G.Fn; // original key selector over the raw element
  Fused.Fn2 = Lambda({{FusedAcc, AccTy}, {FusedElem, ElemTy}}, StepBody);
  Fused.Combine = Agg.Combine;
  Fused.Seed = Agg.Seed;
  Fused.InElem = ElemTy;
  Fused.OutElem = N.OutElem;

  // Result selector over (key, acc).
  ExprRef ResultBody;
  if (Agg.Fn3.valid()) {
    ResultBody = replaceKeyOf(Agg.Fn3.body(), GName, KeyParam);
    ResultBody = expr::substituteParams(
        ResultBody, {{Agg.Fn3.param(0).Name, AccParam}});
  } else {
    ResultBody = AccParam;
  }
  Fused.Fn3 = Lambda(
      {{FusedKey, Type::int64Ty()}, {FusedAcc, AccTy}}, ResultBody);
  return Fused;
}

Chain specializeChain(const Chain &C, bool &Applied) {
  Chain Out;
  Out.Result = C.Result;
  Out.Scalar = C.Scalar;
  for (size_t I = 0; I != C.Ops.size(); ++I) {
    // Recurse into nested chains first.
    Op Cur = C.Ops[I];
    if (Cur.S == Sym::Nested) {
      bool InnerApplied = false;
      Chain NewInner = specializeChain(*Cur.NestedChain, InnerApplied);
      if (InnerApplied)
        Cur.NestedChain = std::make_shared<const Chain>(std::move(NewInner));
      Applied |= InnerApplied;
    }
    if (I + 1 < C.Ops.size()) {
      if (std::optional<Op> Fused = tryFuse(Cur, C.Ops[I + 1])) {
        Out.Ops.push_back(std::move(*Fused));
        ++I; // consume the nested-Trans op as well
        Applied = true;
        continue;
      }
    }
    Out.Ops.push_back(std::move(Cur));
  }
  return Out;
}

} // namespace

Chain quil::specializeGroupByAggregate(const Chain &C, bool *AppliedOut) {
  bool Applied = false;
  Chain Out = specializeChain(C, Applied);
  if (AppliedOut)
    *AppliedOut = Applied;
  return Out;
}
