//===- quil/Hash.cpp - Structural chain hashing ----------------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
//
// hashChain: the structural identity of a lowered plan, used as the
// ProfileStore key. It deliberately hashes the QUIL chain — not the
// generated source, whose entry symbol embeds a per-process counter, and
// not the pre-lowering query, whose sugar may lower to the same chain —
// so that all backends executing the same plan share one profile entry.
//
//===----------------------------------------------------------------------===//

#include "quil/Quil.h"
#include "expr/Analysis.h"

#include <cstdint>

using namespace steno;
using namespace steno::quil;
using expr::hashExpr;
using expr::hashLambda;

namespace {

std::uint64_t combine(std::uint64_t H, std::uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

std::uint64_t hashMaybeExpr(const expr::ExprRef &E) {
  return E ? hashExpr(*E) : 0x7f4a;
}

std::uint64_t hashMaybeLambda(const expr::Lambda &L) {
  return L.valid() ? hashLambda(L) : 0x1b2d;
}

std::uint64_t hashString(const std::string &S) {
  std::uint64_t H = 1469598103934665603ULL; // FNV-1a
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

std::uint64_t hashSource(const query::SourceDesc &Src) {
  std::uint64_t H = static_cast<std::uint64_t>(Src.Kind) + 0xabcd;
  H = combine(H, Src.Slot);
  H = combine(H, hashMaybeExpr(Src.Start));
  H = combine(H, hashMaybeExpr(Src.CountE));
  H = combine(H, hashMaybeExpr(Src.Vec));
  return H;
}

std::uint64_t hashOp(const Op &O) {
  std::uint64_t H = static_cast<std::uint64_t>(O.S) + 1;
  switch (O.S) {
  case Sym::Src:
    H = combine(H, hashSource(O.Src));
    break;
  case Sym::Pred:
    H = combine(H, static_cast<std::uint64_t>(O.P) + 0x11);
    break;
  case Sym::Sink:
    H = combine(H, static_cast<std::uint64_t>(O.K) + 0x22);
    break;
  case Sym::Trans:
  case Sym::Agg:
  case Sym::Ret:
  case Sym::Nested:
    break;
  }
  H = combine(H, hashMaybeLambda(O.Fn));
  H = combine(H, hashMaybeLambda(O.Fn2));
  H = combine(H, hashMaybeLambda(O.Fn3));
  H = combine(H, hashMaybeLambda(O.Combine));
  H = combine(H, hashMaybeLambda(O.StopWhen));
  H = combine(H, hashMaybeExpr(O.Seed));
  H = combine(H, hashMaybeExpr(O.DenseKeys));
  if (O.NestedChain) {
    H = combine(H, hashChain(*O.NestedChain));
    H = combine(H, static_cast<std::uint64_t>(O.Role) + 0x33);
    H = combine(H, hashString(O.OuterParam));
  }
  return H;
}

} // namespace

std::uint64_t quil::hashChain(const Chain &C) {
  std::uint64_t H = 0x53543641; // "ST6A"
  for (const Op &O : C.Ops)
    H = combine(H, hashOp(O));
  H = combine(H, C.Scalar ? 2 : 1);
  return H;
}
