//===- quil/Validate.cpp - QUIL grammar state machine ----------*- C++ -*-===//
///
/// \file
/// The Figure 4 finite state machine, used here as a grammar validator:
///
///        Trans,Pred            Trans,Pred
///       +---------+          +----------+
///       v         |          v          |
///   START --Src--> ITERATING --Sink--> SINKING
///                     |  \               |  |
///                     |   +--Agg--+      |  +--Agg--+
///                     |           v      |          v
///                     +--Ret-> RETURNING <---Ret-- AGGREGATING
///
/// Nested queries (Sym::Nested) stand in for Trans or Pred and are
/// validated recursively — the full language is context-free and the code
/// generator is the corresponding pushdown automaton (§5.1); this validator
/// simply recurses instead of carrying an explicit stack.
///
//===----------------------------------------------------------------------===//

#include "quil/Quil.h"
#include "support/StringUtil.h"

using namespace steno;
using namespace steno::quil;

namespace {

enum class State { Start, Iterating, Sinking, Aggregating, Returning };

std::optional<std::string> validateChain(const Chain &C, bool IsNested,
                                         NestedRole Role) {
  if (C.Ops.empty())
    return "empty QUIL chain";

  State S = State::Start;
  for (size_t I = 0; I != C.Ops.size(); ++I) {
    const Op &O = C.Ops[I];
    switch (S) {
    case State::Start:
      if (O.S != Sym::Src)
        return support::strFormat("query must begin with Src (got %s)",
                                  symName(O.S));
      S = State::Iterating;
      break;

    case State::Iterating:
    case State::Sinking:
      switch (O.S) {
      case Sym::Trans:
        if (!O.Fn.valid())
          return "Trans operator has no transformation function";
        S = State::Iterating;
        break;
      case Sym::Pred:
        if (O.P == PredOp::Take || O.P == PredOp::Skip) {
          if (!O.Seed)
            return "Take/Skip operator has no count expression";
        } else if (!O.Fn.valid()) {
          return "Pred operator has no predicate function";
        }
        S = State::Iterating;
        break;
      case Sym::Nested: {
        if (!O.NestedChain)
          return "Nested operator has no sub-query";
        if (O.Role == NestedRole::Flatten) {
          if (O.NestedChain->Scalar)
            return "SelectMany nested query must produce a collection";
        } else {
          if (!O.NestedChain->Scalar)
            return "nested Trans/Pred query must produce a scalar";
          if (O.Role == NestedRole::Pred &&
              !O.NestedChain->Result->isBool())
            return "nested Pred query must produce a bool";
        }
        if (auto Err = validateChain(*O.NestedChain, /*IsNested=*/true,
                                     O.Role))
          return "in nested query: " + *Err;
        S = State::Iterating;
        break;
      }
      case Sym::Sink:
        if ((O.K == SinkOp::GroupBy || O.K == SinkOp::OrderBy ||
             O.K == SinkOp::GroupByAggregate) &&
            !O.Fn.valid())
          return "Sink operator has no key selector";
        if (O.K == SinkOp::GroupByAggregate && (!O.Fn2.valid() || !O.Seed))
          return "GroupByAggregate sink needs a seed and a step";
        S = State::Sinking;
        break;
      case Sym::Agg:
        if (!O.Fn2.valid() || !O.Seed)
          return "Agg operator needs a seed and a step function";
        S = State::Aggregating;
        break;
      case Sym::Ret:
        S = State::Returning;
        break;
      case Sym::Src:
        return "Src may only appear at the start of a query";
      }
      break;

    case State::Aggregating:
      if (O.S != Sym::Ret)
        return support::strFormat(
            "Agg may only be followed by Ret (got %s)", symName(O.S));
      S = State::Returning;
      break;

    case State::Returning:
      return support::strFormat("operator %s after Ret", symName(O.S));
    }
  }

  if (S != State::Returning)
    return "query does not end with Ret";
  (void)IsNested;
  (void)Role;
  return std::nullopt;
}

} // namespace

std::optional<std::string> quil::validate(const Chain &C) {
  return validateChain(C, /*IsNested=*/false, NestedRole::Trans);
}
