//===- quil/Validate.cpp - QUIL grammar state machine ----------*- C++ -*-===//
///
/// \file
/// The Figure 4 finite state machine, used here as a grammar validator:
///
///        Trans,Pred            Trans,Pred
///       +---------+          +----------+
///       v         |          v          |
///   START --Src--> ITERATING --Sink--> SINKING
///                     |  \               |  |
///                     |   +--Agg--+      |  +--Agg--+
///                     |           v      |          v
///                     +--Ret-> RETURNING <---Ret-- AGGREGATING
///
/// Nested queries (Sym::Nested) stand in for Trans or Pred and are
/// validated recursively — the full language is context-free and the code
/// generator is the corresponding pushdown automaton (§5.1); this validator
/// simply recurses instead of carrying an explicit stack.
///
/// Every diagnostic names the failing operator by chain index and nesting
/// depth ("op #2 (depth 1): ..."), so a caller holding a multi-operator
/// chain — possibly built programmatically rather than through the fluent
/// DSL — can point at the exact operator instead of re-deriving it from
/// the message text. Beyond grammar, the validator bounds-checks every
/// capture and source-buffer slot referenced by the chain's expressions:
/// bindings are dense vectors indexed by slot, so a garbage index must die
/// here rather than as an allocation of a multi-gigabyte binding table.
///
//===----------------------------------------------------------------------===//

#include "quil/Quil.h"
#include "expr/Analysis.h"
#include "support/StringUtil.h"

using namespace steno;
using namespace steno::quil;

namespace {

enum class State { Start, Iterating, Sinking, Aggregating, Returning };

/// "op #2 (depth 0): " — the location prefix every error carries.
std::string opPrefix(size_t I, unsigned Depth) {
  return support::strFormat("op #%zu (depth %u): ", I, Depth);
}

/// Slot-bounds check over one expression tree. Returns the first
/// violation, or nullopt.
std::optional<std::string> checkSlots(const expr::ExprRef &E,
                                      const char *What) {
  for (unsigned Slot : expr::usedCaptureSlots(*E))
    if (Slot >= MaxCaptureSlots)
      return support::strFormat(
          "%s references capture slot %u, beyond the limit %u", What, Slot,
          MaxCaptureSlots);
  for (unsigned Slot : expr::usedSourceSlots(*E))
    if (Slot >= MaxSourceSlots)
      return support::strFormat(
          "%s references source slot %u, beyond the limit %u", What, Slot,
          MaxSourceSlots);
  return std::nullopt;
}

/// Slot-bounds check over every expression an operator carries.
std::optional<std::string> checkOpSlots(const Op &O) {
  struct Entry {
    const char *What;
    const expr::ExprRef *E;
  };
  std::vector<Entry> Exprs;
  auto AddLambda = [&](const char *What, const expr::Lambda &L) {
    if (L.valid())
      Exprs.push_back({What, &L.body()});
  };
  AddLambda("function", O.Fn);
  AddLambda("step", O.Fn2);
  AddLambda("result selector", O.Fn3);
  AddLambda("combiner", O.Combine);
  AddLambda("early-exit condition", O.StopWhen);
  if (O.Seed)
    Exprs.push_back({"seed/count", &O.Seed});
  if (O.DenseKeys)
    Exprs.push_back({"dense-keys bound", &O.DenseKeys});
  if (O.S == Sym::Src) {
    if (O.Src.Start)
      Exprs.push_back({"range start", &O.Src.Start});
    if (O.Src.CountE)
      Exprs.push_back({"range count", &O.Src.CountE});
    if (O.Src.Vec)
      Exprs.push_back({"source vector", &O.Src.Vec});
    switch (O.Src.Kind) {
    case query::SourceKind::DoubleArray:
    case query::SourceKind::Int64Array:
    case query::SourceKind::PointArray:
      if (O.Src.Slot >= MaxSourceSlots)
        return support::strFormat(
            "source binds slot %u, beyond the limit %u", O.Src.Slot,
            MaxSourceSlots);
      break;
    case query::SourceKind::Range:
    case query::SourceKind::VecExpr:
      break;
    }
  }
  for (const Entry &X : Exprs)
    if (auto Err = checkSlots(*X.E, X.What))
      return Err;
  return std::nullopt;
}

std::optional<std::string> validateChain(const Chain &C, unsigned Depth) {
  if (C.Ops.empty())
    return "empty QUIL chain";

  State S = State::Start;
  for (size_t I = 0; I != C.Ops.size(); ++I) {
    const Op &O = C.Ops[I];
    auto Fail = [&](std::string Msg) {
      return std::optional<std::string>(opPrefix(I, Depth) +
                                        std::move(Msg));
    };

    if (auto Err = checkOpSlots(O))
      return Fail(std::move(*Err));

    switch (S) {
    case State::Start:
      if (O.S != Sym::Src)
        return Fail(support::strFormat(
            "query must begin with Src (got %s)", symName(O.S)));
      S = State::Iterating;
      break;

    case State::Iterating:
    case State::Sinking:
      switch (O.S) {
      case Sym::Trans:
        if (!O.Fn.valid())
          return Fail("Trans operator has no transformation function");
        S = State::Iterating;
        break;
      case Sym::Pred:
        if (O.P == PredOp::Take || O.P == PredOp::Skip) {
          if (!O.Seed)
            return Fail("Take/Skip operator has no count expression");
        } else if (!O.Fn.valid()) {
          return Fail("Pred operator has no predicate function");
        }
        S = State::Iterating;
        break;
      case Sym::Nested: {
        if (!O.NestedChain)
          return Fail("Nested operator has no sub-query");
        if (O.Role == NestedRole::Flatten) {
          if (O.NestedChain->Scalar)
            return Fail("SelectMany nested query must produce a collection");
        } else {
          if (!O.NestedChain->Scalar)
            return Fail("nested Trans/Pred query must produce a scalar");
          if (O.Role == NestedRole::Pred &&
              !O.NestedChain->Result->isBool())
            return Fail("nested Pred query must produce a bool");
        }
        if (auto Err = validateChain(*O.NestedChain, Depth + 1))
          return Fail("in nested query: " + *Err);
        S = State::Iterating;
        break;
      }
      case Sym::Sink:
        if ((O.K == SinkOp::GroupBy || O.K == SinkOp::OrderBy ||
             O.K == SinkOp::GroupByAggregate) &&
            !O.Fn.valid())
          return Fail("Sink operator has no key selector");
        if (O.K == SinkOp::GroupByAggregate && (!O.Fn2.valid() || !O.Seed))
          return Fail("GroupByAggregate sink needs a seed and a step");
        S = State::Sinking;
        break;
      case Sym::Agg:
        if (!O.Fn2.valid() || !O.Seed)
          return Fail("Agg operator needs a seed and a step function");
        S = State::Aggregating;
        break;
      case Sym::Ret:
        S = State::Returning;
        break;
      case Sym::Src:
        return Fail("Src may only appear at the start of a query");
      }
      break;

    case State::Aggregating:
      if (O.S != Sym::Ret)
        return Fail(support::strFormat(
            "Agg may only be followed by Ret (got %s)", symName(O.S)));
      S = State::Returning;
      break;

    case State::Returning:
      return Fail(support::strFormat("operator %s after Ret", symName(O.S)));
    }
  }

  if (S != State::Returning)
    return support::strFormat(
        "query of %zu operators (depth %u) does not end with Ret",
        C.Ops.size(), Depth);
  return std::nullopt;
}

} // namespace

std::optional<std::string> quil::validate(const Chain &C) {
  return validateChain(C, /*Depth=*/0);
}
