//===- quil/Lower.cpp - Query AST -> QUIL lowering -------------*- C++ -*-===//
///
/// \file
/// Implements Table 1 of the paper: each LINQ-level operator yields one
/// QUIL symbol (nested operators yield a Nested op wrapping a recursively
/// lowered chain). Aggregate sugar is expanded here: Sum, Min, Max, Count
/// and Average are all left folds (Haskell foldl in Table 1), so they lower
/// to Agg ops with synthesized seed/step/result lambdas.
///
//===----------------------------------------------------------------------===//

#include "quil/Quil.h"
#include "expr/Analysis.h"
#include "support/Error.h"

#include <cassert>
#include <limits>

using namespace steno;
using namespace steno::quil;
using expr::Expr;
using expr::ExprRef;
using expr::Lambda;
using expr::Type;
using expr::TypeRef;
using query::OpKind;
using query::QueryNodeRef;

namespace {

/// Parameter names for synthesized fold lambdas. They never leak into
/// generated code (the code generator renames every parameter to a
/// generated local), and the evaluator's innermost-binding-wins lookup
/// keeps nested synthesized folds lexically correct.
constexpr const char *AccName = "__acc";
constexpr const char *ElemName = "__x";

Lambda sumStep(const TypeRef &Elem) {
  ExprRef Acc = Expr::param(AccName, Elem);
  ExprRef X = Expr::param(ElemName, Elem);
  return Lambda({{AccName, Elem}, {ElemName, Elem}},
                Expr::binary(expr::BinaryOp::Add, Acc, X));
}

/// Combiner parameter names for synthesized Agg* lambdas.
constexpr const char *AccAName = "__a";
constexpr const char *AccBName = "__b";

Lambda addCombiner(const TypeRef &Acc) {
  ExprRef A = Expr::param(AccAName, Acc);
  ExprRef B = Expr::param(AccBName, Acc);
  return Lambda({{AccAName, Acc}, {AccBName, Acc}},
                Expr::binary(expr::BinaryOp::Add, A, B));
}

Lambda extremeCombiner(const TypeRef &Acc, bool IsMin) {
  ExprRef A = Expr::param(AccAName, Acc);
  ExprRef B = Expr::param(AccBName, Acc);
  ExprRef Better = Expr::binary(
      IsMin ? expr::BinaryOp::Lt : expr::BinaryOp::Gt, B, A);
  return Lambda({{AccAName, Acc}, {AccBName, Acc}},
                Expr::cond(Better, B, A));
}

ExprRef zeroOf(const TypeRef &Ty) {
  return Ty->isDouble() ? Expr::constDouble(0.0)
                        : Expr::constInt64(0);
}

/// Lowers one aggregate-sugar operator into (Seed, Step, Result[, Stop]).
void lowerAggSugar(const QueryNodeRef &N, const TypeRef &Elem, Op &Out) {
  OpKind K = N->kind();
  switch (K) {
  case OpKind::Sum:
    Out.Seed = zeroOf(Elem);
    Out.Fn2 = sumStep(Elem);
    Out.Combine = addCombiner(Elem);
    return;
  case OpKind::Min:
  case OpKind::Max: {
    bool IsMin = K == OpKind::Min;
    // Identity element: the type's extreme value. (LINQ's Min/Max throw on
    // empty input; a fold needs an identity, so empty input yields the
    // sentinel. Documented deviation; see DESIGN.md.)
    ExprRef Seed;
    if (Elem->isDouble())
      Seed = Expr::constDouble(IsMin
                                   ? std::numeric_limits<double>::infinity()
                                   : -std::numeric_limits<double>::infinity());
    else
      Seed = Expr::constInt64(IsMin ? std::numeric_limits<std::int64_t>::max()
                                    : std::numeric_limits<std::int64_t>::min());
    ExprRef Acc = Expr::param(AccName, Elem);
    ExprRef X = Expr::param(ElemName, Elem);
    ExprRef Better = Expr::binary(IsMin ? expr::BinaryOp::Lt
                                        : expr::BinaryOp::Gt,
                                  X, Acc);
    Out.Seed = std::move(Seed);
    Out.Fn2 = Lambda({{AccName, Elem}, {ElemName, Elem}},
                     Expr::cond(Better, X, Acc));
    Out.Combine = extremeCombiner(Elem, IsMin);
    return;
  }
  case OpKind::Count: {
    TypeRef I64 = Type::int64Ty();
    ExprRef Acc = Expr::param(AccName, I64);
    Out.Seed = Expr::constInt64(0);
    Out.Fn2 = Lambda({{AccName, I64}, {ElemName, Elem}},
                     Expr::binary(expr::BinaryOp::Add, Acc,
                                  Expr::constInt64(1)));
    Out.Combine = addCombiner(I64);
    return;
  }
  case OpKind::Any: {
    TypeRef B = Type::boolTy();
    Out.Seed = Expr::constBool(false);
    Out.Fn2 = Lambda({{AccName, B}, {ElemName, Elem}},
                     Expr::constBool(true));
    Out.StopWhen = Lambda({{AccName, B}}, Expr::param(AccName, B));
    return;
  }
  case OpKind::All: {
    // foldl true (a, x) -> a && p(x); stop once false.
    TypeRef B = Type::boolTy();
    ExprRef Acc = Expr::param(AccName, B);
    ExprRef PredApplied = expr::substituteParams(
        N->fn().body(),
        {{N->fn().param(0).Name, Expr::param(ElemName, Elem)}});
    Out.Seed = Expr::constBool(true);
    Out.Fn2 = Lambda({{AccName, B}, {ElemName, Elem}},
                     Expr::binary(expr::BinaryOp::And, Acc, PredApplied));
    Out.StopWhen = Lambda({{AccName, B}},
                          Expr::unary(expr::UnaryOp::Not, Acc));
    return;
  }
  case OpKind::FirstOrDefault: {
    // acc = (found, value); take the first element, then stop.
    TypeRef B = Type::boolTy();
    TypeRef AccTy = Type::pairTy(B, Elem);
    ExprRef Acc = Expr::param(AccName, AccTy);
    ExprRef X = Expr::param(ElemName, Elem);
    Out.Seed = Expr::pairNew(Expr::constBool(false), N->arg());
    Out.Fn2 = Lambda({{AccName, AccTy}, {ElemName, Elem}},
                     Expr::cond(Expr::pairFirst(Acc), Acc,
                                Expr::pairNew(Expr::constBool(true), X)));
    Out.StopWhen = Lambda({{AccName, AccTy}}, Expr::pairFirst(Acc));
    ExprRef RAcc = Expr::param(AccName, AccTy);
    Out.Fn3 = Lambda({{AccName, AccTy}}, Expr::pairSecond(RAcc));
    return;
  }
  case OpKind::Contains: {
    TypeRef B = Type::boolTy();
    ExprRef Acc = Expr::param(AccName, B);
    ExprRef X = Expr::param(ElemName, Elem);
    Out.Seed = Expr::constBool(false);
    Out.Fn2 =
        Lambda({{AccName, B}, {ElemName, Elem}},
               Expr::binary(expr::BinaryOp::Or, Acc,
                            Expr::binary(expr::BinaryOp::Eq, X, N->arg())));
    Out.StopWhen = Lambda({{AccName, B}}, Acc);
    return;
  }
  case OpKind::Average: {
    // foldl over (sum, n), then sum / n — expressible because the
    // accumulator may be a pair.
    TypeRef D = Type::doubleTy();
    TypeRef I64 = Type::int64Ty();
    TypeRef AccTy = Type::pairTy(D, I64);
    ExprRef Acc = Expr::param(AccName, AccTy);
    ExprRef X = Expr::param(ElemName, Elem);
    ExprRef NewSum = Expr::binary(expr::BinaryOp::Add, Expr::pairFirst(Acc),
                                  Expr::convert(X, D));
    ExprRef NewN = Expr::binary(expr::BinaryOp::Add, Expr::pairSecond(Acc),
                                Expr::constInt64(1));
    Out.Seed = Expr::pairNew(Expr::constDouble(0.0), Expr::constInt64(0));
    Out.Fn2 = Lambda({{AccName, AccTy}, {ElemName, Elem}},
                     Expr::pairNew(NewSum, NewN));
    ExprRef RAcc = Expr::param(AccName, AccTy);
    Out.Fn3 = Lambda({{AccName, AccTy}},
                     Expr::binary(expr::BinaryOp::Div, Expr::pairFirst(RAcc),
                                  Expr::convert(Expr::pairSecond(RAcc), D)));
    // Pairwise (sum, count) addition is associative.
    ExprRef A = Expr::param(AccAName, AccTy);
    ExprRef B = Expr::param(AccBName, AccTy);
    Out.Combine = Lambda(
        {{AccAName, AccTy}, {AccBName, AccTy}},
        Expr::pairNew(Expr::binary(expr::BinaryOp::Add, Expr::pairFirst(A),
                                   Expr::pairFirst(B)),
                      Expr::binary(expr::BinaryOp::Add,
                                   Expr::pairSecond(A),
                                   Expr::pairSecond(B))));
    return;
  }
  default:
    stenoUnreachable("not an aggregate-sugar operator");
  }
}

Chain lowerChain(const query::Query &Q);

Op lowerNode(const QueryNodeRef &N, const TypeRef &InElem) {
  Op Out;
  Out.InElem = InElem;
  Out.OutElem = N->resultType();
  switch (N->kind()) {
  case OpKind::Source:
    Out.S = Sym::Src;
    Out.Src = N->source();
    return Out;
  case OpKind::Select:
    Out.S = Sym::Trans;
    Out.Fn = N->fn();
    return Out;
  case OpKind::Where:
    Out.S = Sym::Pred;
    Out.P = PredOp::Where;
    Out.Fn = N->fn();
    return Out;
  case OpKind::Take:
  case OpKind::Skip:
    Out.S = Sym::Pred;
    Out.P = N->kind() == OpKind::Take ? PredOp::Take : PredOp::Skip;
    Out.Seed = N->arg();
    return Out;
  case OpKind::TakeWhile:
  case OpKind::SkipWhile:
    Out.S = Sym::Pred;
    Out.P = N->kind() == OpKind::TakeWhile ? PredOp::TakeWhile
                                           : PredOp::SkipWhile;
    Out.Fn = N->fn();
    return Out;
  case OpKind::SelectNested:
  case OpKind::WhereNested:
  case OpKind::SelectMany: {
    Out.S = Sym::Nested;
    Out.Role = N->kind() == OpKind::SelectNested ? NestedRole::Trans
               : N->kind() == OpKind::WhereNested ? NestedRole::Pred
                                                  : NestedRole::Flatten;
    Out.NestedChain =
        std::make_shared<const Chain>(lowerChain(query::Query(N->nested())));
    Out.OuterParam = N->outerParam();
    Out.OuterParamTy = N->outerParamType();
    return Out;
  }
  case OpKind::GroupBy:
    Out.S = Sym::Sink;
    Out.K = SinkOp::GroupBy;
    Out.Fn = N->fn();
    return Out;
  case OpKind::GroupByAggregate:
    Out.S = Sym::Sink;
    Out.K = SinkOp::GroupByAggregate;
    Out.Fn = N->fn();
    Out.Fn2 = N->fn2();
    Out.Fn3 = N->fn3();
    Out.Combine = N->combiner();
    Out.Seed = N->arg();
    Out.DenseKeys = N->denseKeys();
    return Out;
  case OpKind::OrderBy:
    Out.S = Sym::Sink;
    Out.K = SinkOp::OrderBy;
    Out.Fn = N->fn();
    return Out;
  case OpKind::ToArray:
    Out.S = Sym::Sink;
    Out.K = SinkOp::ToArray;
    return Out;
  case OpKind::Aggregate:
    Out.S = Sym::Agg;
    Out.Fn2 = N->fn();
    Out.Fn3 = N->fn2();
    Out.Combine = N->combiner();
    Out.Seed = N->arg();
    return Out;
  case OpKind::Sum:
  case OpKind::Min:
  case OpKind::Max:
  case OpKind::Count:
  case OpKind::Average:
  case OpKind::Any:
  case OpKind::All:
  case OpKind::FirstOrDefault:
  case OpKind::Contains:
    Out.S = Sym::Agg;
    lowerAggSugar(N, InElem, Out);
    return Out;
  }
  stenoUnreachable("bad OpKind");
}

Chain lowerChain(const query::Query &Q) {
  assert(Q.valid() && "lowering an invalid query");
  Chain C;
  TypeRef Elem; // element type flowing into the next operator
  for (const QueryNodeRef &N : Q.chain()) {
    C.Ops.push_back(lowerNode(N, Elem));
    Elem = C.Ops.back().OutElem;
  }
  Op Ret;
  Ret.S = Sym::Ret;
  Ret.InElem = Elem;
  Ret.OutElem = Elem;
  C.Ops.push_back(std::move(Ret));
  C.Result = Q.resultType();
  C.Scalar = Q.scalarResult();
  return C;
}

} // namespace

Chain quil::lower(const query::Query &Q) { return lowerChain(Q); }

const char *quil::symName(Sym S) {
  switch (S) {
  case Sym::Src:
    return "Src";
  case Sym::Trans:
    return "Trans";
  case Sym::Pred:
    return "Pred";
  case Sym::Sink:
    return "Sink";
  case Sym::Agg:
    return "Agg";
  case Sym::Ret:
    return "Ret";
  case Sym::Nested:
    return "Nested";
  }
  stenoUnreachable("bad Sym");
}

std::string Chain::symbols() const {
  std::string Out;
  for (const Op &O : Ops) {
    if (!Out.empty())
      Out += " ";
    if (O.S == Sym::Nested) {
      Out += "(" + O.NestedChain->symbols() + ")";
      continue;
    }
    Out += symName(O.S);
  }
  return Out;
}
