//===- serve/Wire.h - Line protocol for steno_serve ------------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textual protocol steno_serve speaks over a local (Unix-domain)
/// socket. Line-oriented, human-debuggable with `nc -U`:
///
///   client                              server
///   ------                              ------
///   prepare
///   steno-fuzz v1
///   source 0 double 64 uniform 7
///   op select square 0
///   op agg sum 0
///   end
///                                       prepared 0
///   exec 0 250
///                                       result <id> scalar 1 degraded=1
///                                           native=0 queue_us=.. run_us=..
///                                       row 12345.678
///                                       done
///   stats
///                                       stats {"accepted":1,...,
///                                           "latency_us":{"p50":..,...}}
///   profile 0
///                                       profile {"plan":"0x..","ops":[..]}
///   metrics
///                                       metrics <nlines>
///                                       <nlines> lines of Prometheus text
///   quit
///                                       bye
///
/// The spec payload is framed by the grammar's own `end` terminator, so
/// no byte counting is needed. Error responses are a single
/// `error <message>` line (embedded newlines become "; "). exec answers
/// are exactly one of result/timeout/shed/error — the admission-control
/// statuses map onto the wire one-to-one. `profile` answers with the
/// accumulated obs::ProfileStore entry for the handle's plan (an error
/// when the service runs unprofiled or the plan never executed);
/// `metrics` dumps the whole obs registry plus per-plan profiles in
/// Prometheus text exposition format, line-count framed.
///
/// The protocol logic lives here (not in the tool) so the framing and a
/// full socketpair round trip are unit-testable without a real listener.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_SERVE_WIRE_H
#define STENO_SERVE_WIRE_H

#include "serve/Serve.h"

#include <cstdint>
#include <string>
#include <vector>

namespace steno {
namespace serve {

/// Buffered line I/O over a file descriptor (socket or pipe). Does not
/// own the descriptor.
class FdStream {
public:
  explicit FdStream(int Fd) : Fd(Fd) {}

  /// Reads up to the next '\n' (consumed, not returned; a trailing '\r'
  /// is stripped). Returns false on EOF or error with nothing buffered.
  bool readLine(std::string &Line);

  /// Writes all of \p Bytes. Returns false on error.
  bool writeAll(const std::string &Bytes);

  int fd() const { return Fd; }

private:
  int Fd;
  std::string Buf;
  std::size_t Pos = 0;
};

/// Renders an execute() Response in wire form (result/timeout/shed/error
/// frames as documented above). Exposed for tests.
std::string renderResponse(const Response &R);

/// Serves one connection: opens a Session on \p Svc and processes
/// requests from \p Fd until EOF, `quit`, or a write failure. Blocking;
/// run one thread per connection.
void serveConnection(QueryService &Svc, int Fd);

/// Client half of the protocol, for the loadgen's socket mode and the
/// end-to-end tests.
class WireClient {
public:
  explicit WireClient(int Fd) : S(Fd) {}

  /// Sends a prepare frame; true on `prepared`, false with \p Err set on
  /// `error` or protocol failure.
  bool prepare(const std::string &SpecText, std::uint64_t &Handle,
               std::string &Err);

  struct ExecResult {
    Status St = Status::Error;
    std::uint64_t Id = 0;
    bool Scalar = false;
    bool Degraded = false;
    bool Native = false;
    double QueueMicros = 0;
    double RunMicros = 0;
    std::vector<std::string> Rows; ///< fuzzValueStr-rendered rows.
    std::string Error;
  };

  /// Sends `exec`; false only on protocol breakdown (timeout/shed/error
  /// statuses are successful protocol exchanges reported in \p Out).
  bool exec(std::uint64_t Handle, std::int64_t DeadlineMs, ExecResult &Out);

  /// Fetches the service stats line (one JSON object).
  bool stats(std::string &Json);

  /// Fetches the accumulated per-operator profile of \p Handle's plan as
  /// one JSON object (obs::profileJson). False with \p Err filled when
  /// the service is unprofiled, the handle is unknown, or the plan never
  /// executed.
  bool profile(std::uint64_t Handle, std::string &Json,
               std::string *Err = nullptr);

  /// Fetches the Prometheus text exposition of the metrics registry and
  /// all query profiles.
  bool metrics(std::string &Text);

  /// Sends `quit` and reads the `bye`.
  void quit();

private:
  FdStream S;
};

} // namespace serve
} // namespace steno

#endif // STENO_SERVE_WIRE_H
