//===- serve/Wire.h - Line protocol for steno_serve ------------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textual protocol steno_serve speaks over a local (Unix-domain)
/// socket. Line-oriented, human-debuggable with `nc -U`:
///
///   client                              server
///   ------                              ------
///   prepare
///   steno-fuzz v1
///   source 0 double 64 uniform 7
///   op select square 0
///   op agg sum 0
///   end
///                                       prepared 0
///   exec 0 250
///                                       result <id> scalar 1 degraded=1
///                                           native=0 queue_us=.. run_us=..
///                                       row 12345.678
///                                       done
///   stats
///                                       stats {"accepted":1,...,
///                                           "latency_us":{"p50":..,...}}
///   profile 0
///                                       profile {"plan":"0x..","ops":[..]}
///   metrics
///                                       metrics <nlines>
///                                       <nlines> lines of Prometheus text
///   quit
///                                       bye
///
/// The spec payload is framed by the grammar's own `end` terminator, so
/// no byte counting is needed. Error responses are a single
/// `error <message>` line (embedded newlines become "; "). exec answers
/// are exactly one of result/timeout/shed/error — the admission-control
/// statuses map onto the wire one-to-one. `profile` answers with the
/// accumulated obs::ProfileStore entry for the handle's plan (an error
/// when the service runs unprofiled or the plan never executed);
/// `metrics` dumps the whole obs registry plus per-plan profiles in
/// Prometheus text exposition format, line-count framed.
///
/// The protocol logic lives here (not in the tool) so the framing and a
/// full socketpair round trip are unit-testable without a real listener.
///
/// **Shard framing** (steno::shard, DESIGN.md §5k). The router speaks
/// three extra verbs whose answers carry an *exact* value encoding
/// (wireValue: hexfloat doubles, recursive pairs/vecs) instead of the
/// human-oriented fuzzValueStr rows, because partials are re-combined
/// arithmetically and must round-trip bit-exactly. Every shard request
/// carries the router's request id (rid), echoed in the first response
/// token after the verb — the exactly-once retry protocol keys on it:
///
///   pexec <handle> <begin> <len> [deadline_ms [rid]]
///       -> partial <rid> scalar|rows <n> native=<0|1> run_us=<f>
///          <n> x "prow <enc>" lines, then "pdone"
///       -> partial <rid> timeout | shed | error <msg>
///   xexec <handle> [deadline_ms [rid]]        (whole-query, exact rows)
///       -> xresult <rid> ... / xrow <enc> / xdone   (same shape)
///
//===----------------------------------------------------------------------===//

#ifndef STENO_SERVE_WIRE_H
#define STENO_SERVE_WIRE_H

#include "serve/Serve.h"

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace steno {
namespace serve {

/// Buffered line I/O over a file descriptor (socket or pipe). Does not
/// own the descriptor.
class FdStream {
public:
  explicit FdStream(int Fd) : Fd(Fd) {}

  /// Reads up to the next '\n' (consumed, not returned; a trailing '\r'
  /// is stripped). Returns false on EOF or error with nothing buffered.
  bool readLine(std::string &Line);

  /// Writes all of \p Bytes. Returns false on error.
  bool writeAll(const std::string &Bytes);

  int fd() const { return Fd; }

private:
  int Fd;
  std::string Buf;
  std::size_t Pos = 0;
};

/// Renders an execute() Response in wire form (result/timeout/shed/error
/// frames as documented above). Exposed for tests.
std::string renderResponse(const Response &R);

/// Exact wire encoding of one value: space-separated prefix form —
/// `b 0|1`, `i <dec>`, `d <hexfloat|nan|inf|-inf>`, `v <len> <d>...`,
/// `p <enc> <enc>` (recursive). Hexfloat (%a / strtod) round-trips every
/// double bit-exactly, which fuzzValueStr's %.17g does not guarantee for
/// the combine arithmetic downstream.
std::string wireValue(const expr::Value &V);

/// Decodes wireValue output. Vec payloads are materialized into \p Arena
/// (which must outlive \p Out). False with \p Err filled on malformed
/// input or trailing garbage.
bool parseWireValue(const std::string &Enc, expr::Value &Out,
                    std::deque<std::vector<double>> &Arena,
                    std::string *Err = nullptr);

/// Renders a Response as a shard frame with the exact value encoding.
/// \p Verb is "partial" or "xresult"; rows go out as "prow"/"xrow" and
/// the terminator is "pdone"/"xdone". \p Rid is the router's request id
/// echoed back. Exposed for tests.
std::string renderShardResponse(const Response &R, const char *Verb,
                                std::uint64_t Rid);

/// Serves one connection: opens a Session on \p Svc and processes
/// requests from \p Fd until EOF, `quit`, or a write failure. Blocking;
/// run one thread per connection.
void serveConnection(QueryService &Svc, int Fd);

/// Client half of the protocol, for the loadgen's socket mode and the
/// end-to-end tests.
class WireClient {
public:
  explicit WireClient(int Fd) : S(Fd) {}

  /// Sends a prepare frame; true on `prepared`, false with \p Err set on
  /// `error` or protocol failure.
  bool prepare(const std::string &SpecText, std::uint64_t &Handle,
               std::string &Err);

  struct ExecResult {
    Status St = Status::Error;
    std::uint64_t Id = 0;
    bool Scalar = false;
    bool Degraded = false;
    bool Native = false;
    double QueueMicros = 0;
    double RunMicros = 0;
    std::vector<std::string> Rows; ///< fuzzValueStr-rendered rows.
    std::string Error;
  };

  /// Sends `exec`; false only on protocol breakdown (timeout/shed/error
  /// statuses are successful protocol exchanges reported in \p Out).
  bool exec(std::uint64_t Handle, std::int64_t DeadlineMs, ExecResult &Out);

  /// A shard sub-request's decoded answer (pexec/xexec): exact values,
  /// re-homed into Result's own arena.
  struct PartialResult {
    Status St = Status::Error;
    bool Scalar = false;
    bool Native = false;
    double RunMicros = 0;
    QueryResult Result;
    std::string Error;
  };

  /// Sends `pexec <handle> <begin> <len> <deadline_ms> <rid>`: runs the
  /// §6 vertex over the range on the shard and decodes the exact-value
  /// partial. False only on protocol breakdown or a rid mismatch (a
  /// stale answer from before a retry) — the caller must treat false as
  /// a dead connection.
  bool pexec(std::uint64_t Handle, std::size_t Begin, std::size_t Len,
             std::int64_t DeadlineMs, std::uint64_t Rid,
             PartialResult &Out);

  /// Sends `xexec <handle> <deadline_ms> <rid>`: whole-query execution
  /// with the exact value encoding (the router's single-shard fallback
  /// path, which re-renders rows for its own client). Same contract as
  /// pexec.
  bool xexec(std::uint64_t Handle, std::int64_t DeadlineMs,
             std::uint64_t Rid, PartialResult &Out);

  /// Fetches the service stats line (one JSON object).
  bool stats(std::string &Json);

  /// Fetches the accumulated per-operator profile of \p Handle's plan as
  /// one JSON object (obs::profileJson). False with \p Err filled when
  /// the service is unprofiled, the handle is unknown, or the plan never
  /// executed.
  bool profile(std::uint64_t Handle, std::string &Json,
               std::string *Err = nullptr);

  /// Fetches the Prometheus text exposition of the metrics registry and
  /// all query profiles.
  bool metrics(std::string &Text);

  /// Sends `quit` and reads the `bye`.
  void quit();

private:
  FdStream S;
};

} // namespace serve
} // namespace steno

#endif // STENO_SERVE_WIRE_H
