//===- serve/Wire.cpp - Line protocol for steno_serve ----------*- C++ -*-===//

#include "serve/Wire.h"

#include "fuzz/Diff.h" // fuzzValueStr: the stable row renderer
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

using namespace steno;
using namespace steno::serve;

//===--------------------------------------------------------------------===//
// FdStream
//===--------------------------------------------------------------------===//

bool FdStream::readLine(std::string &Line) {
  Line.clear();
  for (;;) {
    while (Pos < Buf.size()) {
      char C = Buf[Pos++];
      if (C == '\n') {
        if (!Line.empty() && Line.back() == '\r')
          Line.pop_back();
        return true;
      }
      Line.push_back(C);
    }
    Buf.clear();
    Pos = 0;
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof Chunk);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // EOF; a partial unterminated line is dropped
    Buf.assign(Chunk, static_cast<std::size_t>(N));
  }
}

bool FdStream::writeAll(const std::string &Bytes) {
  std::size_t Off = 0;
  while (Off < Bytes.size()) {
    // MSG_NOSIGNAL: a peer death (e.g. a SIGKILLed shard worker) must
    // surface as a write error the retry layer can handle, never a
    // process-killing SIGPIPE in an embedder that didn't ignore it.
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK) // pipes/files in tests
      N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<std::size_t>(N);
  }
  return true;
}

//===--------------------------------------------------------------------===//
// Frames
//===--------------------------------------------------------------------===//

namespace {

std::string oneLine(std::string S) {
  for (std::size_t I = 0; (I = S.find('\n', I)) != std::string::npos;)
    S.replace(I, 1, "; ");
  return S;
}

std::string errorFrame(const std::string &Message) {
  return "error " + oneLine(Message) + "\n";
}

std::string statsJson(const QueryService::Stats &S) {
  // End-to-end request latency percentiles from the (process-wide)
  // serve.request.micros histogram the execution path populates. The
  // bounds must match ServeMetrics so this resolves to the same
  // registered instrument rather than creating a second one.
  obs::Histogram &Lat = obs::histogram(
      "serve.request.micros", {10, 100, 1e3, 1e4, 1e5, 1e6, 1e7});
  char Buf[1536];
  std::snprintf(
      Buf, sizeof Buf,
      "{\"sessions\":%llu,\"prepares\":%llu,\"accepted\":%llu,"
      "\"ok\":%llu,\"shed\":%llu,\"timeouts\":%llu,\"errors\":%llu,"
      "\"degraded_runs\":%llu,\"native_runs\":%llu,"
      "\"recompiles_scheduled\":%llu,\"recompiles_done\":%llu,"
      "\"recompiles_failed\":%llu,\"recompiles_saturated\":%llu,"
      "\"replans\":%llu,\"replan_swaps\":%llu,"
      "\"replan_no_change\":%llu,\"adaptive_runs\":%llu,"
      "\"adapt_reverted\":%llu,\"adapt_pinned\":%llu,"
      "\"partial_runs\":%llu,"
      "\"queue_depth\":%lld,"
      "\"latency_us\":{\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}}",
      static_cast<unsigned long long>(S.Sessions),
      static_cast<unsigned long long>(S.Prepares),
      static_cast<unsigned long long>(S.Accepted),
      static_cast<unsigned long long>(S.Ok),
      static_cast<unsigned long long>(S.Shed),
      static_cast<unsigned long long>(S.Timeouts),
      static_cast<unsigned long long>(S.Errors),
      static_cast<unsigned long long>(S.DegradedRuns),
      static_cast<unsigned long long>(S.NativeRuns),
      static_cast<unsigned long long>(S.RecompilesScheduled),
      static_cast<unsigned long long>(S.RecompilesDone),
      static_cast<unsigned long long>(S.RecompilesFailed),
      static_cast<unsigned long long>(S.RecompilesSaturated),
      static_cast<unsigned long long>(S.Replans),
      static_cast<unsigned long long>(S.ReplanSwaps),
      static_cast<unsigned long long>(S.ReplanNoChange),
      static_cast<unsigned long long>(S.AdaptiveRuns),
      static_cast<unsigned long long>(S.AdaptReverted),
      static_cast<unsigned long long>(S.AdaptPinned),
      static_cast<unsigned long long>(S.PartialRuns),
      static_cast<long long>(S.QueueDepth), Lat.percentile(0.50),
      Lat.percentile(0.95), Lat.percentile(0.99));
  return Buf;
}

} // namespace

//===--------------------------------------------------------------------===//
// Exact value codec (shard framing)
//===--------------------------------------------------------------------===//

namespace {

void encodeValue(const expr::Value &V, std::string &Out) {
  char Buf[64];
  switch (V.kind()) {
  case expr::TypeKind::Bool:
    Out += V.asBool() ? "b 1" : "b 0";
    return;
  case expr::TypeKind::Int64:
    Out += "i ";
    Out += std::to_string(V.asInt64());
    return;
  case expr::TypeKind::Double:
    // %a round-trips every double (including nan/±inf) through strtod.
    std::snprintf(Buf, sizeof Buf, "d %a", V.asDouble());
    Out += Buf;
    return;
  case expr::TypeKind::Vec: {
    expr::VecView View = V.asVec();
    Out += "v ";
    Out += std::to_string(View.Len);
    for (std::int64_t I = 0; I != View.Len; ++I) {
      std::snprintf(Buf, sizeof Buf, " %a", View.Data[I]);
      Out += Buf;
    }
    return;
  }
  case expr::TypeKind::Pair:
    Out += "p ";
    encodeValue(V.first(), Out);
    Out += ' ';
    encodeValue(V.second(), Out);
    return;
  }
}

/// Token-stream decoder for encodeValue output. istream's operator>>
/// does not reliably accept hexfloats, so doubles go through strtod.
struct ValueDecoder {
  std::istringstream In;
  std::deque<std::vector<double>> &Arena;

  ValueDecoder(const std::string &S, std::deque<std::vector<double>> &A)
      : In(S), Arena(A) {}

  bool decodeDouble(double &D) {
    std::string Tok;
    if (!(In >> Tok))
      return false;
    const char *C = Tok.c_str();
    char *End = nullptr;
    D = std::strtod(C, &End);
    return End != C && *End == '\0';
  }

  bool decode(expr::Value &Out) {
    std::string Tag;
    if (!(In >> Tag))
      return false;
    if (Tag == "b") {
      int B = 0;
      if (!(In >> B) || (B != 0 && B != 1))
        return false;
      Out = expr::Value(B == 1);
      return true;
    }
    if (Tag == "i") {
      std::string Tok;
      if (!(In >> Tok))
        return false;
      const char *C = Tok.c_str();
      char *End = nullptr;
      long long I = std::strtoll(C, &End, 10);
      if (End == C || *End != '\0')
        return false;
      Out = expr::Value(static_cast<std::int64_t>(I));
      return true;
    }
    if (Tag == "d") {
      double D = 0;
      if (!decodeDouble(D))
        return false;
      Out = expr::Value(D);
      return true;
    }
    if (Tag == "v") {
      std::int64_t Len = 0;
      if (!(In >> Len) || Len < 0)
        return false;
      Arena.emplace_back();
      std::vector<double> &Vec = Arena.back();
      Vec.reserve(static_cast<std::size_t>(Len));
      for (std::int64_t I = 0; I != Len; ++I) {
        double D = 0;
        if (!decodeDouble(D))
          return false;
        Vec.push_back(D);
      }
      Out = expr::Value(expr::VecView{Vec.data(), Len});
      return true;
    }
    if (Tag == "p") {
      expr::Value First, Second;
      if (!decode(First) || !decode(Second))
        return false;
      Out = expr::Value::makePair(First, Second);
      return true;
    }
    return false;
  }
};

} // namespace

std::string serve::wireValue(const expr::Value &V) {
  std::string Out;
  encodeValue(V, Out);
  return Out;
}

bool serve::parseWireValue(const std::string &Enc, expr::Value &Out,
                           std::deque<std::vector<double>> &Arena,
                           std::string *Err) {
  ValueDecoder D(Enc, Arena);
  if (!D.decode(Out)) {
    if (Err)
      *Err = "malformed wire value: " + Enc;
    return false;
  }
  std::string Rest;
  if (D.In >> Rest) {
    if (Err)
      *Err = "trailing garbage in wire value: " + Enc;
    return false;
  }
  return true;
}

std::string serve::renderShardResponse(const Response &R, const char *Verb,
                                       std::uint64_t Rid) {
  switch (R.St) {
  case Status::Timeout:
    return support::strFormat("%s %llu timeout\n", Verb,
                              static_cast<unsigned long long>(Rid));
  case Status::Shed:
    return support::strFormat("%s %llu shed\n", Verb,
                              static_cast<unsigned long long>(Rid));
  case Status::Error:
    return support::strFormat(
        "%s %llu error %s\n", Verb, static_cast<unsigned long long>(Rid),
        oneLine(R.Message.empty() ? "internal error" : R.Message).c_str());
  case Status::Ok:
    break;
  }
  const char *RowTag = Verb[0] == 'p' ? "prow" : "xrow";
  const char *DoneTag = Verb[0] == 'p' ? "pdone" : "xdone";
  std::string Out = support::strFormat(
      "%s %llu %s %zu native=%d run_us=%.1f\n", Verb,
      static_cast<unsigned long long>(Rid),
      R.Result.isScalar() ? "scalar" : "rows", R.Result.rows().size(),
      R.NativePlan ? 1 : 0, R.RunMicros);
  for (const expr::Value &V : R.Result.rows()) {
    Out += RowTag;
    Out += ' ';
    Out += wireValue(V);
    Out += '\n';
  }
  Out += DoneTag;
  Out += '\n';
  return Out;
}

std::string serve::renderResponse(const Response &R) {
  switch (R.St) {
  case Status::Timeout:
    return support::strFormat("timeout %llu\n",
                              static_cast<unsigned long long>(R.Id));
  case Status::Shed:
    return support::strFormat("shed %llu\n",
                              static_cast<unsigned long long>(R.Id));
  case Status::Error:
    return errorFrame(R.Message.empty() ? "internal error" : R.Message);
  case Status::Ok:
    break;
  }
  std::string Out = support::strFormat(
      "result %llu %s %zu degraded=%d native=%d queue_us=%.1f "
      "run_us=%.1f\n",
      static_cast<unsigned long long>(R.Id),
      R.Result.isScalar() ? "scalar" : "rows", R.Result.rows().size(),
      R.Degraded ? 1 : 0, R.NativePlan ? 1 : 0, R.QueueMicros,
      R.RunMicros);
  for (const expr::Value &V : R.Result.rows())
    Out += "row " + fuzz::fuzzValueStr(V) + "\n";
  Out += "done\n";
  return Out;
}

//===--------------------------------------------------------------------===//
// Server side
//===--------------------------------------------------------------------===//

void serve::serveConnection(QueryService &Svc, int Fd) {
  FdStream S(Fd);
  std::shared_ptr<Session> Sess = Svc.openSession();
  std::vector<PreparedHandle> Handles; // connection-local handle table

  std::string Line;
  while (S.readLine(Line)) {
    std::istringstream Fields(Line);
    std::string Cmd;
    if (!(Fields >> Cmd))
      continue; // blank line

    if (Cmd == "quit") {
      S.writeAll("bye\n");
      return;
    }

    if (Cmd == "prepare") {
      // The spec's own `end` line frames the payload.
      std::string SpecText, SpecLine;
      bool SawEnd = false;
      while (S.readLine(SpecLine)) {
        SpecText += SpecLine;
        SpecText += '\n';
        if (SpecLine == "end") {
          SawEnd = true;
          break;
        }
      }
      if (!SawEnd)
        return; // EOF mid-spec: drop the connection
      std::string Err;
      PreparedHandle P = Sess->prepare(SpecText, &Err);
      if (!P) {
        if (!S.writeAll(errorFrame(Err)))
          return;
        continue;
      }
      Handles.push_back(P);
      if (!S.writeAll(support::strFormat("prepared %zu\n",
                                         Handles.size() - 1)))
        return;
      continue;
    }

    if (Cmd == "exec") {
      std::size_t Handle = 0;
      long long DeadlineMs = -1;
      if (!(Fields >> Handle)) {
        if (!S.writeAll(errorFrame("exec needs a handle")))
          return;
        continue;
      }
      Fields >> DeadlineMs; // optional; default deadline when absent
      if (Handle >= Handles.size()) {
        if (!S.writeAll(errorFrame(support::strFormat(
                "unknown handle %zu", Handle))))
          return;
        continue;
      }
      Response R =
          DeadlineMs >= 0
              ? Sess->execute(Handles[Handle],
                              std::chrono::milliseconds(DeadlineMs))
              : Sess->execute(Handles[Handle]);
      if (!S.writeAll(renderResponse(R)))
        return;
      continue;
    }

    if (Cmd == "pexec" || Cmd == "xexec") {
      // Shard sub-requests (router-to-worker): exact value encoding,
      // router request id echoed back for the exactly-once retry
      // protocol.
      bool IsPartial = Cmd == "pexec";
      const char *Verb = IsPartial ? "partial" : "xresult";
      std::size_t Handle = 0, Begin = 0, Len = 0;
      long long DeadlineMs = -1;
      unsigned long long Rid = 0;
      bool Parsed = static_cast<bool>(Fields >> Handle);
      if (Parsed && IsPartial)
        Parsed = static_cast<bool>(Fields >> Begin >> Len);
      if (!Parsed) {
        if (!S.writeAll(errorFrame(Cmd + " needs a handle" +
                                   (IsPartial ? " and a range" : ""))))
          return;
        continue;
      }
      Fields >> DeadlineMs >> Rid; // both optional
      std::chrono::milliseconds DL =
          DeadlineMs >= 0 ? std::chrono::milliseconds(DeadlineMs)
                          : Svc.options().DefaultDeadline;
      if (Handle >= Handles.size()) {
        Response R;
        R.St = Status::Error;
        R.Message = support::strFormat("unknown handle %zu", Handle);
        if (!S.writeAll(renderShardResponse(R, Verb, Rid)))
          return;
        continue;
      }
      Response R = IsPartial
                       ? Svc.executePartial(Handles[Handle], Begin, Len, DL)
                       : Svc.execute(Handles[Handle], DL);
      if (!S.writeAll(renderShardResponse(R, Verb, Rid)))
        return;
      continue;
    }

    if (Cmd == "stats") {
      if (!S.writeAll("stats " + statsJson(Svc.stats()) + "\n"))
        return;
      continue;
    }

    if (Cmd == "profile") {
      std::size_t Handle = 0;
      if (!(Fields >> Handle)) {
        if (!S.writeAll(errorFrame("profile needs a handle")))
          return;
        continue;
      }
      if (Handle >= Handles.size()) {
        if (!S.writeAll(errorFrame(support::strFormat(
                "unknown handle %zu", Handle))))
          return;
        continue;
      }
      const CompiledQuery &Plan = Handles[Handle]->currentPlan();
      if (!Plan.profiled()) {
        if (!S.writeAll(errorFrame(support::strFormat(
                "handle %zu was prepared without profiling (start the "
                "service with --profile or STENO_PROFILE=1)",
                Handle))))
          return;
        continue;
      }
      // Resolved through rewrite provenance: a plan the rewriter changed
      // inherits runs accumulated under its pre-rewrite hash, so a fresh
      // prepare of a long-profiled query answers with the merged stats
      // instead of "never executed".
      auto Snap =
          obs::ProfileStore::global().snapshotResolved(Plan.planHash());
      if (!Snap) {
        if (!S.writeAll(errorFrame(support::strFormat(
                "no profile recorded for handle %zu yet (never executed)",
                Handle))))
          return;
        continue;
      }
      if (!S.writeAll("profile " + obs::profileJson(*Snap) + "\n"))
        return;
      continue;
    }

    if (Cmd == "metrics") {
      std::string Text = obs::exportPrometheus();
      std::size_t NLines = static_cast<std::size_t>(
          std::count(Text.begin(), Text.end(), '\n'));
      if (!S.writeAll(support::strFormat("metrics %zu\n", NLines) + Text))
        return;
      continue;
    }

    if (!S.writeAll(errorFrame("unknown command '" + Cmd + "'")))
      return;
  }
}

//===--------------------------------------------------------------------===//
// Client side
//===--------------------------------------------------------------------===//

bool WireClient::prepare(const std::string &SpecText, std::uint64_t &Handle,
                         std::string &Err) {
  std::string Frame = "prepare\n" + SpecText;
  if (Frame.back() != '\n')
    Frame += '\n';
  if (!S.writeAll(Frame)) {
    Err = "write failed";
    return false;
  }
  std::string Line;
  if (!S.readLine(Line)) {
    Err = "connection closed";
    return false;
  }
  std::istringstream Fields(Line);
  std::string Tok;
  Fields >> Tok;
  if (Tok == "prepared") {
    unsigned long long H = 0;
    if (!(Fields >> H)) {
      Err = "malformed prepared frame: " + Line;
      return false;
    }
    Handle = H;
    return true;
  }
  if (Tok == "error") {
    Err = Line.size() > 6 ? Line.substr(6) : "unspecified error";
    return false;
  }
  Err = "unexpected frame: " + Line;
  return false;
}

bool WireClient::exec(std::uint64_t Handle, std::int64_t DeadlineMs,
                      ExecResult &Out) {
  Out = ExecResult();
  std::string Frame =
      DeadlineMs >= 0
          ? support::strFormat("exec %llu %lld\n",
                               static_cast<unsigned long long>(Handle),
                               static_cast<long long>(DeadlineMs))
          : support::strFormat("exec %llu\n",
                               static_cast<unsigned long long>(Handle));
  if (!S.writeAll(Frame))
    return false;
  std::string Line;
  if (!S.readLine(Line))
    return false;
  std::istringstream Fields(Line);
  std::string Tok;
  Fields >> Tok;

  if (Tok == "timeout" || Tok == "shed") {
    Out.St = Tok == "timeout" ? Status::Timeout : Status::Shed;
    unsigned long long Id = 0;
    Fields >> Id;
    Out.Id = Id;
    return true;
  }
  if (Tok == "error") {
    Out.St = Status::Error;
    Out.Error = Line.size() > 6 ? Line.substr(6) : "unspecified error";
    return true;
  }
  if (Tok != "result")
    return false;

  unsigned long long Id = 0;
  std::string Shape;
  std::size_t NRows = 0;
  std::string DegTok, NatTok, QueueTok, RunTok;
  if (!(Fields >> Id >> Shape >> NRows >> DegTok >> NatTok >> QueueTok >>
        RunTok))
    return false;
  Out.St = Status::Ok;
  Out.Id = Id;
  Out.Scalar = Shape == "scalar";
  Out.Degraded = DegTok == "degraded=1";
  Out.Native = NatTok == "native=1";
  if (QueueTok.rfind("queue_us=", 0) == 0)
    Out.QueueMicros = std::atof(QueueTok.c_str() + 9);
  if (RunTok.rfind("run_us=", 0) == 0)
    Out.RunMicros = std::atof(RunTok.c_str() + 7);

  Out.Rows.reserve(NRows);
  for (std::size_t I = 0; I != NRows; ++I) {
    if (!S.readLine(Line) || Line.rfind("row ", 0) != 0)
      return false;
    Out.Rows.push_back(Line.substr(4));
  }
  if (!S.readLine(Line) || Line != "done")
    return false;
  return true;
}

namespace {

/// Reads and decodes one shard answer (`<verb> <rid> ...` + rows +
/// terminator). False on protocol breakdown or a rid mismatch — either
/// way the connection is desynchronized and must be discarded.
bool readShardAnswer(FdStream &S, const char *Verb, std::uint64_t Rid,
                     WireClient::PartialResult &Out) {
  const char *RowTag = Verb[0] == 'p' ? "prow " : "xrow ";
  const char *DoneTag = Verb[0] == 'p' ? "pdone" : "xdone";
  std::string Line;
  if (!S.readLine(Line))
    return false;
  std::istringstream Fields(Line);
  std::string Tok;
  if (!(Fields >> Tok))
    return false;
  if (Tok == "error") {
    // Pre-dispatch errors (malformed frame) arrive as a bare error line
    // without a rid; the exchange is still framed, report it.
    Out.St = Status::Error;
    Out.Error = Line.size() > 6 ? Line.substr(6) : "unspecified error";
    return true;
  }
  if (Tok != Verb)
    return false;
  unsigned long long GotRid = 0;
  std::string Shape;
  if (!(Fields >> GotRid >> Shape))
    return false;
  if (GotRid != Rid)
    return false; // stale answer from a lost exchange: conn is dead
  if (Shape == "timeout") {
    Out.St = Status::Timeout;
    return true;
  }
  if (Shape == "shed") {
    Out.St = Status::Shed;
    return true;
  }
  if (Shape == "error") {
    Out.St = Status::Error;
    std::getline(Fields, Out.Error);
    if (!Out.Error.empty() && Out.Error.front() == ' ')
      Out.Error.erase(0, 1);
    return true;
  }
  if (Shape != "scalar" && Shape != "rows")
    return false;

  std::size_t NRows = 0;
  std::string NatTok, RunTok;
  if (!(Fields >> NRows >> NatTok >> RunTok))
    return false;
  Out.Scalar = Shape == "scalar";
  Out.Native = NatTok == "native=1";
  if (RunTok.rfind("run_us=", 0) == 0)
    Out.RunMicros = std::atof(RunTok.c_str() + 7);

  auto Arena = std::make_shared<std::deque<std::vector<double>>>();
  std::vector<expr::Value> Rows;
  Rows.reserve(NRows);
  for (std::size_t I = 0; I != NRows; ++I) {
    if (!S.readLine(Line) || Line.rfind(RowTag, 0) != 0)
      return false;
    expr::Value V;
    if (!parseWireValue(Line.substr(5), V, *Arena))
      return false;
    Rows.push_back(V);
  }
  if (!S.readLine(Line) || Line != DoneTag)
    return false;
  Out.St = Status::Ok;
  Out.Result = QueryResult(Out.Scalar, std::move(Rows), std::move(Arena));
  return true;
}

} // namespace

bool WireClient::pexec(std::uint64_t Handle, std::size_t Begin,
                       std::size_t Len, std::int64_t DeadlineMs,
                       std::uint64_t Rid, PartialResult &Out) {
  Out = PartialResult();
  if (!S.writeAll(support::strFormat(
          "pexec %llu %zu %zu %lld %llu\n",
          static_cast<unsigned long long>(Handle), Begin, Len,
          static_cast<long long>(DeadlineMs),
          static_cast<unsigned long long>(Rid))))
    return false;
  return readShardAnswer(S, "partial", Rid, Out);
}

bool WireClient::xexec(std::uint64_t Handle, std::int64_t DeadlineMs,
                       std::uint64_t Rid, PartialResult &Out) {
  Out = PartialResult();
  if (!S.writeAll(support::strFormat(
          "xexec %llu %lld %llu\n",
          static_cast<unsigned long long>(Handle),
          static_cast<long long>(DeadlineMs),
          static_cast<unsigned long long>(Rid))))
    return false;
  return readShardAnswer(S, "xresult", Rid, Out);
}

bool WireClient::stats(std::string &Json) {
  if (!S.writeAll("stats\n"))
    return false;
  std::string Line;
  if (!S.readLine(Line) || Line.rfind("stats ", 0) != 0)
    return false;
  Json = Line.substr(6);
  return true;
}

bool WireClient::profile(std::uint64_t Handle, std::string &Json,
                         std::string *Err) {
  if (!S.writeAll(support::strFormat(
          "profile %llu\n", static_cast<unsigned long long>(Handle)))) {
    if (Err)
      *Err = "write failed";
    return false;
  }
  std::string Line;
  if (!S.readLine(Line)) {
    if (Err)
      *Err = "connection closed";
    return false;
  }
  if (Line.rfind("profile ", 0) == 0) {
    Json = Line.substr(8);
    return true;
  }
  if (Err)
    *Err = Line.rfind("error ", 0) == 0 ? Line.substr(6)
                                        : "unexpected frame: " + Line;
  return false;
}

bool WireClient::metrics(std::string &Text) {
  Text.clear();
  if (!S.writeAll("metrics\n"))
    return false;
  std::string Line;
  if (!S.readLine(Line) || Line.rfind("metrics ", 0) != 0)
    return false;
  std::size_t NLines = 0;
  std::istringstream Fields(Line.substr(8));
  if (!(Fields >> NLines))
    return false;
  for (std::size_t I = 0; I != NLines; ++I) {
    if (!S.readLine(Line))
      return false;
    Text += Line;
    Text += '\n';
  }
  return true;
}

void WireClient::quit() {
  if (!S.writeAll("quit\n"))
    return;
  std::string Line;
  S.readLine(Line); // bye
}
