//===- serve/Wire.cpp - Line protocol for steno_serve ----------*- C++ -*-===//

#include "serve/Wire.h"

#include "fuzz/Diff.h" // fuzzValueStr: the stable row renderer
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <unistd.h>

using namespace steno;
using namespace steno::serve;

//===--------------------------------------------------------------------===//
// FdStream
//===--------------------------------------------------------------------===//

bool FdStream::readLine(std::string &Line) {
  Line.clear();
  for (;;) {
    while (Pos < Buf.size()) {
      char C = Buf[Pos++];
      if (C == '\n') {
        if (!Line.empty() && Line.back() == '\r')
          Line.pop_back();
        return true;
      }
      Line.push_back(C);
    }
    Buf.clear();
    Pos = 0;
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof Chunk);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // EOF; a partial unterminated line is dropped
    Buf.assign(Chunk, static_cast<std::size_t>(N));
  }
}

bool FdStream::writeAll(const std::string &Bytes) {
  std::size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<std::size_t>(N);
  }
  return true;
}

//===--------------------------------------------------------------------===//
// Frames
//===--------------------------------------------------------------------===//

namespace {

std::string oneLine(std::string S) {
  for (std::size_t I = 0; (I = S.find('\n', I)) != std::string::npos;)
    S.replace(I, 1, "; ");
  return S;
}

std::string errorFrame(const std::string &Message) {
  return "error " + oneLine(Message) + "\n";
}

std::string statsJson(const QueryService::Stats &S) {
  // End-to-end request latency percentiles from the (process-wide)
  // serve.request.micros histogram the execution path populates. The
  // bounds must match ServeMetrics so this resolves to the same
  // registered instrument rather than creating a second one.
  obs::Histogram &Lat = obs::histogram(
      "serve.request.micros", {10, 100, 1e3, 1e4, 1e5, 1e6, 1e7});
  char Buf[1024];
  std::snprintf(
      Buf, sizeof Buf,
      "{\"sessions\":%llu,\"prepares\":%llu,\"accepted\":%llu,"
      "\"ok\":%llu,\"shed\":%llu,\"timeouts\":%llu,\"errors\":%llu,"
      "\"degraded_runs\":%llu,\"native_runs\":%llu,"
      "\"recompiles_scheduled\":%llu,\"recompiles_done\":%llu,"
      "\"recompiles_failed\":%llu,\"recompiles_saturated\":%llu,"
      "\"replans\":%llu,\"replan_swaps\":%llu,"
      "\"replan_no_change\":%llu,\"adaptive_runs\":%llu,"
      "\"adapt_reverted\":%llu,\"adapt_pinned\":%llu,"
      "\"queue_depth\":%lld,"
      "\"latency_us\":{\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}}",
      static_cast<unsigned long long>(S.Sessions),
      static_cast<unsigned long long>(S.Prepares),
      static_cast<unsigned long long>(S.Accepted),
      static_cast<unsigned long long>(S.Ok),
      static_cast<unsigned long long>(S.Shed),
      static_cast<unsigned long long>(S.Timeouts),
      static_cast<unsigned long long>(S.Errors),
      static_cast<unsigned long long>(S.DegradedRuns),
      static_cast<unsigned long long>(S.NativeRuns),
      static_cast<unsigned long long>(S.RecompilesScheduled),
      static_cast<unsigned long long>(S.RecompilesDone),
      static_cast<unsigned long long>(S.RecompilesFailed),
      static_cast<unsigned long long>(S.RecompilesSaturated),
      static_cast<unsigned long long>(S.Replans),
      static_cast<unsigned long long>(S.ReplanSwaps),
      static_cast<unsigned long long>(S.ReplanNoChange),
      static_cast<unsigned long long>(S.AdaptiveRuns),
      static_cast<unsigned long long>(S.AdaptReverted),
      static_cast<unsigned long long>(S.AdaptPinned),
      static_cast<long long>(S.QueueDepth), Lat.percentile(0.50),
      Lat.percentile(0.95), Lat.percentile(0.99));
  return Buf;
}

} // namespace

std::string serve::renderResponse(const Response &R) {
  switch (R.St) {
  case Status::Timeout:
    return support::strFormat("timeout %llu\n",
                              static_cast<unsigned long long>(R.Id));
  case Status::Shed:
    return support::strFormat("shed %llu\n",
                              static_cast<unsigned long long>(R.Id));
  case Status::Error:
    return errorFrame(R.Message.empty() ? "internal error" : R.Message);
  case Status::Ok:
    break;
  }
  std::string Out = support::strFormat(
      "result %llu %s %zu degraded=%d native=%d queue_us=%.1f "
      "run_us=%.1f\n",
      static_cast<unsigned long long>(R.Id),
      R.Result.isScalar() ? "scalar" : "rows", R.Result.rows().size(),
      R.Degraded ? 1 : 0, R.NativePlan ? 1 : 0, R.QueueMicros,
      R.RunMicros);
  for (const expr::Value &V : R.Result.rows())
    Out += "row " + fuzz::fuzzValueStr(V) + "\n";
  Out += "done\n";
  return Out;
}

//===--------------------------------------------------------------------===//
// Server side
//===--------------------------------------------------------------------===//

void serve::serveConnection(QueryService &Svc, int Fd) {
  FdStream S(Fd);
  std::shared_ptr<Session> Sess = Svc.openSession();
  std::vector<PreparedHandle> Handles; // connection-local handle table

  std::string Line;
  while (S.readLine(Line)) {
    std::istringstream Fields(Line);
    std::string Cmd;
    if (!(Fields >> Cmd))
      continue; // blank line

    if (Cmd == "quit") {
      S.writeAll("bye\n");
      return;
    }

    if (Cmd == "prepare") {
      // The spec's own `end` line frames the payload.
      std::string SpecText, SpecLine;
      bool SawEnd = false;
      while (S.readLine(SpecLine)) {
        SpecText += SpecLine;
        SpecText += '\n';
        if (SpecLine == "end") {
          SawEnd = true;
          break;
        }
      }
      if (!SawEnd)
        return; // EOF mid-spec: drop the connection
      std::string Err;
      PreparedHandle P = Sess->prepare(SpecText, &Err);
      if (!P) {
        if (!S.writeAll(errorFrame(Err)))
          return;
        continue;
      }
      Handles.push_back(P);
      if (!S.writeAll(support::strFormat("prepared %zu\n",
                                         Handles.size() - 1)))
        return;
      continue;
    }

    if (Cmd == "exec") {
      std::size_t Handle = 0;
      long long DeadlineMs = -1;
      if (!(Fields >> Handle)) {
        if (!S.writeAll(errorFrame("exec needs a handle")))
          return;
        continue;
      }
      Fields >> DeadlineMs; // optional; default deadline when absent
      if (Handle >= Handles.size()) {
        if (!S.writeAll(errorFrame(support::strFormat(
                "unknown handle %zu", Handle))))
          return;
        continue;
      }
      Response R =
          DeadlineMs >= 0
              ? Sess->execute(Handles[Handle],
                              std::chrono::milliseconds(DeadlineMs))
              : Sess->execute(Handles[Handle]);
      if (!S.writeAll(renderResponse(R)))
        return;
      continue;
    }

    if (Cmd == "stats") {
      if (!S.writeAll("stats " + statsJson(Svc.stats()) + "\n"))
        return;
      continue;
    }

    if (Cmd == "profile") {
      std::size_t Handle = 0;
      if (!(Fields >> Handle)) {
        if (!S.writeAll(errorFrame("profile needs a handle")))
          return;
        continue;
      }
      if (Handle >= Handles.size()) {
        if (!S.writeAll(errorFrame(support::strFormat(
                "unknown handle %zu", Handle))))
          return;
        continue;
      }
      const CompiledQuery &Plan = Handles[Handle]->currentPlan();
      if (!Plan.profiled()) {
        if (!S.writeAll(errorFrame(support::strFormat(
                "handle %zu was prepared without profiling (start the "
                "service with --profile or STENO_PROFILE=1)",
                Handle))))
          return;
        continue;
      }
      // Resolved through rewrite provenance: a plan the rewriter changed
      // inherits runs accumulated under its pre-rewrite hash, so a fresh
      // prepare of a long-profiled query answers with the merged stats
      // instead of "never executed".
      auto Snap =
          obs::ProfileStore::global().snapshotResolved(Plan.planHash());
      if (!Snap) {
        if (!S.writeAll(errorFrame(support::strFormat(
                "no profile recorded for handle %zu yet (never executed)",
                Handle))))
          return;
        continue;
      }
      if (!S.writeAll("profile " + obs::profileJson(*Snap) + "\n"))
        return;
      continue;
    }

    if (Cmd == "metrics") {
      std::string Text = obs::exportPrometheus();
      std::size_t NLines = static_cast<std::size_t>(
          std::count(Text.begin(), Text.end(), '\n'));
      if (!S.writeAll(support::strFormat("metrics %zu\n", NLines) + Text))
        return;
      continue;
    }

    if (!S.writeAll(errorFrame("unknown command '" + Cmd + "'")))
      return;
  }
}

//===--------------------------------------------------------------------===//
// Client side
//===--------------------------------------------------------------------===//

bool WireClient::prepare(const std::string &SpecText, std::uint64_t &Handle,
                         std::string &Err) {
  std::string Frame = "prepare\n" + SpecText;
  if (Frame.back() != '\n')
    Frame += '\n';
  if (!S.writeAll(Frame)) {
    Err = "write failed";
    return false;
  }
  std::string Line;
  if (!S.readLine(Line)) {
    Err = "connection closed";
    return false;
  }
  std::istringstream Fields(Line);
  std::string Tok;
  Fields >> Tok;
  if (Tok == "prepared") {
    unsigned long long H = 0;
    if (!(Fields >> H)) {
      Err = "malformed prepared frame: " + Line;
      return false;
    }
    Handle = H;
    return true;
  }
  if (Tok == "error") {
    Err = Line.size() > 6 ? Line.substr(6) : "unspecified error";
    return false;
  }
  Err = "unexpected frame: " + Line;
  return false;
}

bool WireClient::exec(std::uint64_t Handle, std::int64_t DeadlineMs,
                      ExecResult &Out) {
  Out = ExecResult();
  std::string Frame =
      DeadlineMs >= 0
          ? support::strFormat("exec %llu %lld\n",
                               static_cast<unsigned long long>(Handle),
                               static_cast<long long>(DeadlineMs))
          : support::strFormat("exec %llu\n",
                               static_cast<unsigned long long>(Handle));
  if (!S.writeAll(Frame))
    return false;
  std::string Line;
  if (!S.readLine(Line))
    return false;
  std::istringstream Fields(Line);
  std::string Tok;
  Fields >> Tok;

  if (Tok == "timeout" || Tok == "shed") {
    Out.St = Tok == "timeout" ? Status::Timeout : Status::Shed;
    unsigned long long Id = 0;
    Fields >> Id;
    Out.Id = Id;
    return true;
  }
  if (Tok == "error") {
    Out.St = Status::Error;
    Out.Error = Line.size() > 6 ? Line.substr(6) : "unspecified error";
    return true;
  }
  if (Tok != "result")
    return false;

  unsigned long long Id = 0;
  std::string Shape;
  std::size_t NRows = 0;
  std::string DegTok, NatTok, QueueTok, RunTok;
  if (!(Fields >> Id >> Shape >> NRows >> DegTok >> NatTok >> QueueTok >>
        RunTok))
    return false;
  Out.St = Status::Ok;
  Out.Id = Id;
  Out.Scalar = Shape == "scalar";
  Out.Degraded = DegTok == "degraded=1";
  Out.Native = NatTok == "native=1";
  if (QueueTok.rfind("queue_us=", 0) == 0)
    Out.QueueMicros = std::atof(QueueTok.c_str() + 9);
  if (RunTok.rfind("run_us=", 0) == 0)
    Out.RunMicros = std::atof(RunTok.c_str() + 7);

  Out.Rows.reserve(NRows);
  for (std::size_t I = 0; I != NRows; ++I) {
    if (!S.readLine(Line) || Line.rfind("row ", 0) != 0)
      return false;
    Out.Rows.push_back(Line.substr(4));
  }
  if (!S.readLine(Line) || Line != "done")
    return false;
  return true;
}

bool WireClient::stats(std::string &Json) {
  if (!S.writeAll("stats\n"))
    return false;
  std::string Line;
  if (!S.readLine(Line) || Line.rfind("stats ", 0) != 0)
    return false;
  Json = Line.substr(6);
  return true;
}

bool WireClient::profile(std::uint64_t Handle, std::string &Json,
                         std::string *Err) {
  if (!S.writeAll(support::strFormat(
          "profile %llu\n", static_cast<unsigned long long>(Handle)))) {
    if (Err)
      *Err = "write failed";
    return false;
  }
  std::string Line;
  if (!S.readLine(Line)) {
    if (Err)
      *Err = "connection closed";
    return false;
  }
  if (Line.rfind("profile ", 0) == 0) {
    Json = Line.substr(8);
    return true;
  }
  if (Err)
    *Err = Line.rfind("error ", 0) == 0 ? Line.substr(6)
                                        : "unexpected frame: " + Line;
  return false;
}

bool WireClient::metrics(std::string &Text) {
  Text.clear();
  if (!S.writeAll("metrics\n"))
    return false;
  std::string Line;
  if (!S.readLine(Line) || Line.rfind("metrics ", 0) != 0)
    return false;
  std::size_t NLines = 0;
  std::istringstream Fields(Line.substr(8));
  if (!(Fields >> NLines))
    return false;
  for (std::size_t I = 0; I != NLines; ++I) {
    if (!S.readLine(Line))
      return false;
    Text += Line;
    Text += '\n';
  }
  return true;
}

void WireClient::quit() {
  if (!S.writeAll("quit\n"))
    return;
  std::string Line;
  S.readLine(Line); // bye
}
