//===- serve/Serve.cpp - Concurrent query service --------------*- C++ -*-===//

#include "serve/Serve.h"

#include "adapt/Adapt.h"
#include "analysis/Analysis.h"
#include "dryad/Dist.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "quil/Quil.h"
#include "support/Timing.h"

#include <cstdio>
#include <future>

using namespace steno;
using namespace steno::serve;

const char *serve::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::Timeout:
    return "timeout";
  case Status::Shed:
    return "shed";
  case Status::Error:
    return "error";
  }
  return "?";
}

namespace {

/// Backends are compiled with analysis off: prepare() already screened
/// the chain, and strict mode inside compileQuery would abort the
/// process on what should be a per-request error.
CompileOptions planOptions(Backend B, bool Profile) {
  CompileOptions CO;
  CO.Exec = B;
  CO.Analyze = analysis::Mode::Off;
  CO.Profile = Profile;
  // The baseline (v1) plan is deliberately non-adaptive: it is the
  // stable static anchor the feedback accumulates against. Feedback
  // enters only through the explicit re-plan path below.
  CO.Adaptive = false;
  CO.Name = "serve_query";
  return CO;
}

/// Compile options for a feedback-replanned (v2+) plan version.
CompileOptions adaptPlanOptions(Backend B, bool Profile) {
  CompileOptions CO = planOptions(B, Profile);
  CO.Adaptive = true;
  CO.Name = "serve_adapt";
  return CO;
}

struct ServeMetrics {
  obs::Counter &Sessions = obs::counter("serve.sessions");
  obs::Counter &Prepares = obs::counter("serve.prepares");
  obs::Counter &Requests = obs::counter("serve.requests");
  obs::Counter &Ok = obs::counter("serve.ok");
  obs::Counter &Shed = obs::counter("serve.admission.shed");
  obs::Counter &Timeouts = obs::counter("serve.timeouts");
  obs::Counter &Errors = obs::counter("serve.errors");
  obs::Counter &Degraded = obs::counter("serve.degraded_runs");
  obs::Counter &NativeRuns = obs::counter("serve.native_runs");
  obs::Counter &PartialRuns = obs::counter("serve.partial_runs");
  obs::Counter &RecompSched = obs::counter("serve.recompile.scheduled");
  obs::Counter &RecompDone = obs::counter("serve.recompile.done");
  obs::Counter &RecompFailed = obs::counter("serve.recompile.failed");
  obs::Counter &RecompSaturated =
      obs::counter("serve.recompile.saturated");
  obs::Counter &Replans = obs::counter("adapt.replans");
  obs::Counter &ReplanSwaps = obs::counter("adapt.swaps");
  obs::Counter &AdaptReverted = obs::counter("adapt.reverted");
  obs::Gauge &QueueDepth = obs::gauge("serve.queue.depth");
  obs::Histogram &RequestMicros = obs::histogram(
      "serve.request.micros", {10, 100, 1e3, 1e4, 1e5, 1e6, 1e7});
  obs::Histogram &QueueMicros = obs::histogram(
      "serve.queue.micros", {10, 100, 1e3, 1e4, 1e5, 1e6, 1e7});
};

ServeMetrics &metrics() {
  static ServeMetrics M;
  return M;
}

} // namespace

double PreparedQuery::nativeCompileMillis() const {
  if (!NativeReady.load(std::memory_order_acquire))
    return 0.0;
  return NativePlan.compileMillis();
}

//===--------------------------------------------------------------------===//
// Session
//===--------------------------------------------------------------------===//

PreparedHandle Session::prepare(const std::string &SpecText,
                                std::string *Err) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Prepared.find(SpecText);
    if (It != Prepared.end())
      return It->second;
  }
  PreparedHandle P = Svc.prepare(SpecText, Err);
  if (!P)
    return nullptr;
  std::lock_guard<std::mutex> Lock(Mutex);
  // Another thread on this session may have prepared meanwhile; keep the
  // first so the session's handle for one text stays stable.
  return Prepared.emplace(SpecText, P).first->second;
}

Response Session::execute(const PreparedHandle &P,
                          std::chrono::milliseconds Deadline) {
  return Svc.execute(P, Deadline);
}

Response Session::execute(const PreparedHandle &P) {
  return Svc.execute(P, Svc.options().DefaultDeadline);
}

Response Session::executeSpec(const std::string &SpecText,
                              std::chrono::milliseconds Deadline) {
  std::string Err;
  PreparedHandle P = prepare(SpecText, &Err);
  if (!P) {
    Response R;
    R.St = Status::Error;
    R.Message = Err;
    return R;
  }
  return execute(P, Deadline);
}

//===--------------------------------------------------------------------===//
// QueryService
//===--------------------------------------------------------------------===//

struct QueryService::RequestState {
  std::promise<Response> Promise;
  PreparedHandle P;
  std::chrono::steady_clock::time_point Deadline;
  support::WallTimer QueueTimer;
  std::uint64_t Id = 0;
  /// Shard-partial request (executePartial): run the §6 vertex over
  /// [Begin, Begin+Len) of source slot 0 instead of the whole plan.
  bool Partial = false;
  std::size_t Begin = 0, Len = 0;
};

QueryService::QueryService(const ServeOptions &O)
    : Options(O), OwnedCache(O.Cache ? nullptr : new QueryCache()),
      Cache(O.Cache ? O.Cache : OwnedCache.get()),
      CompileQ(O.CompileWorkers, O.MaxCompileQueue),
      Exec(O.Workers ? O.Workers : 1) {}

QueryService::~QueryService() {
  Closed.store(true, std::memory_order_relaxed);
  // Members destroy in reverse declaration order: the execution pool
  // drains its accepted requests first (fulfilling every outstanding
  // promise), then the compile queue finishes its jobs (whose callbacks
  // still see live stats and cache), then the rest of the service.
}

std::shared_ptr<Session> QueryService::openSession() {
  metrics().Sessions.inc();
  NSessions.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t Id = NextSessionId.fetch_add(1, std::memory_order_relaxed);
  // make_shared needs a public constructor; Session's is private to us.
  return std::shared_ptr<Session>(new Session(*this, Id));
}

PreparedHandle QueryService::prepare(const std::string &SpecText,
                                     std::string *Err) {
  auto fail = [&](const std::string &M) {
    if (Err)
      *Err = M;
    return PreparedHandle();
  };
  if (Closed.load(std::memory_order_relaxed))
    return fail("service is shutting down");

  obs::Span Span("serve.prepare");
  fuzz::QuerySpec Spec;
  std::string E;
  if (!fuzz::parseSpec(SpecText, Spec, &E))
    return fail("spec parse error: " + E);

  auto P = std::make_shared<PreparedQuery>();
  P->Spec = Spec;
  P->SpecText = SpecText;
  if (!fuzz::buildSpec(Spec, P->Built, &E))
    return fail("spec build error: " + E);

  // Pre-screen through the front end so a bad request is a clean error,
  // never a strict-mode abort inside compileQuery.
  quil::Chain Chain = quil::lower(P->Built.Q);
  if (auto VErr = quil::validate(Chain))
    return fail("invalid query: " + *VErr);
  analysis::AnalysisResult Analyzed = analysis::analyzeChain(Chain);
  if (!Analyzed.ok())
    return fail("rejected by analysis: " +
                Analyzed.Diags.render(analysis::Severity::Error));

  // The interpreter plan is ready in milliseconds; the native plan (if
  // wanted) arrives later via the background swap. QueryCache makes
  // re-preparing a structurally equal query a hit sharing one module.
  P->InterpPlan = Cache->getOrCompile(
      P->Built.Q, planOptions(Backend::Interp, Options.Profile));

  metrics().Prepares.inc();
  NPrepares.fetch_add(1, std::memory_order_relaxed);

  if (Options.BackgroundRecompile)
    scheduleRecompile(P);
  return P;
}

bool QueryService::scheduleRecompile(const PreparedHandle &P) {
  if (!P || P->NativeReady.load(std::memory_order_acquire))
    return false;
  int Expected = 0;
  if (!P->RecompileState.compare_exchange_strong(
          Expected, 1, std::memory_order_acq_rel))
    return false; // already in flight or done

  // Another handle for the same structure may have finished first; the
  // cache peek turns that into an immediate swap with no compiler run.
  CompiledQuery Cached = Cache->lookup(
      P->Built.Q, planOptions(Backend::Native, Options.Profile));
  if (Cached.valid()) {
    P->NativePlan = std::move(Cached);
    P->NativeReady.store(true, std::memory_order_release);
    P->RecompileState.store(2, std::memory_order_release);
    metrics().RecompDone.inc();
    NRecompDone.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  PreparedHandle Handle = P; // keep the query alive across the compile
  bool Submitted = CompileQ.trySubmit(
      P->InterpPlan.generatedSource(), P->InterpPlan.program().Name,
      [this, Handle](std::unique_ptr<jit::CompiledModule> Module,
                     std::string Err) {
        if (!Module) {
          // Back to idle: a later execute may retry once the toolchain
          // recovers. The request path is unaffected (stays interpreted).
          Handle->RecompileState.store(0, std::memory_order_release);
          metrics().RecompFailed.inc();
          NRecompFailed.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "steno-serve: background recompile of '%s' "
                               "failed: %s\n",
                       Handle->InterpPlan.program().Name.c_str(),
                       Err.c_str());
          return;
        }
        CompiledQuery Native =
            Handle->InterpPlan.withNativeModule(std::move(Module));
        // Publish to the cache first (first insert wins, so concurrent
        // recompiles of equal queries converge on one module), then swap.
        Native = Cache->insert(
            Handle->Built.Q,
            planOptions(Backend::Native, Options.Profile),
            std::move(Native));
        Handle->NativePlan = std::move(Native);
        Handle->NativeReady.store(true, std::memory_order_release);
        Handle->RecompileState.store(2, std::memory_order_release);
        metrics().RecompDone.inc();
        NRecompDone.fetch_add(1, std::memory_order_relaxed);
      });

  if (!Submitted) {
    // Saturated compile queue: degrade (stay interpreted) and leave the
    // state idle so a later execute retries.
    P->RecompileState.store(0, std::memory_order_release);
    metrics().RecompSaturated.inc();
    NRecompSaturated.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  metrics().RecompSched.inc();
  NRecompSched.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void QueryService::drainRecompiles() { CompileQ.drain(); }

//===--------------------------------------------------------------------===//
// Shard-partial execution (steno::shard, DESIGN.md §5k)
//===--------------------------------------------------------------------===//

void QueryService::buildPartial(const PreparedHandle &P) {
  auto PS = std::make_unique<PreparedQuery::PartialState>();

  // Re-derive the specialized chain: prepare() screened the raw lowering,
  // but the §6 planner wants the same shape DistributedQuery plans —
  // GroupByAggregate specialized so dense sinks split into partials.
  quil::Chain Chain = quil::lower(P->Built.Q);
  Chain = quil::specializeGroupByAggregate(Chain);
  analysis::AnalysisResult Analyzed = analysis::analyzeChain(Chain);
  PS->Cert = Analyzed.Cert;

  std::string WhyNot;
  std::optional<dryad::ParallelPlan> Plan;
  if (!PS->Cert.shardSafe()) {
    WhyNot = "analyzer refused certification (" + PS->Cert.str() + ")";
  } else {
    Plan = dryad::planParallel(Chain, &WhyNot);
  }
  if (!Plan) {
    PS->WhyNot = std::move(WhyNot);
    P->Partial = std::move(PS);
    return;
  }

  PS->Splittable = true;
  PS->Plan = std::move(*Plan);
  CompileOptions VO = planOptions(Backend::Interp, Options.Profile);
  VO.SpecializeGroupByAggregate = false; // already applied
  VO.Name = "serve_vertex";
  PS->VertexInterp = compileChain(PS->Plan.VertexChain, VO);
  P->Partial = std::move(PS);
}

const PreparedQuery::PartialState *
QueryService::preparePartial(const PreparedHandle &P) {
  if (!P)
    return nullptr;
  std::call_once(P->PartialOnce, [&] { buildPartial(P); });
  PreparedQuery::PartialState *PS = P->Partial.get();
  // Same retry-the-upgrade policy as execute(): a saturated compile
  // queue at first pexec time degrades, later pexecs retry.
  if (PS && PS->Splittable && Options.BackgroundRecompile &&
      !PS->VertexNativeReady.load(std::memory_order_acquire) &&
      PS->VertexRecompile.load(std::memory_order_acquire) == 0 &&
      !CompileQ.saturated())
    scheduleVertexRecompile(P);
  return PS;
}

bool QueryService::scheduleVertexRecompile(const PreparedHandle &P) {
  PreparedQuery::PartialState *PS = P->Partial.get();
  if (!PS || !PS->Splittable ||
      PS->VertexNativeReady.load(std::memory_order_acquire))
    return false;
  int Expected = 0;
  if (!PS->VertexRecompile.compare_exchange_strong(
          Expected, 1, std::memory_order_acq_rel))
    return false; // already in flight or done

  // Deliberately not through the QueryCache: vertex plans are keyed by
  // the *partial* chain, not the query the cache indexes, and one handle
  // recompiles its vertex at most once.
  PreparedHandle Handle = P;
  bool Submitted = CompileQ.trySubmit(
      PS->VertexInterp.generatedSource(), PS->VertexInterp.program().Name,
      [this, Handle](std::unique_ptr<jit::CompiledModule> Module,
                     std::string Err) {
        PreparedQuery::PartialState *S = Handle->Partial.get();
        if (!Module) {
          S->VertexRecompile.store(0, std::memory_order_release);
          metrics().RecompFailed.inc();
          NRecompFailed.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "steno-serve: vertex recompile of '%s' "
                               "failed: %s\n",
                       S->VertexInterp.program().Name.c_str(),
                       Err.c_str());
          return;
        }
        S->VertexNative =
            S->VertexInterp.withNativeModule(std::move(Module));
        S->VertexNativeReady.store(true, std::memory_order_release);
        S->VertexRecompile.store(2, std::memory_order_release);
        metrics().RecompDone.inc();
        NRecompDone.fetch_add(1, std::memory_order_relaxed);
      });

  if (!Submitted) {
    PS->VertexRecompile.store(0, std::memory_order_release);
    metrics().RecompSaturated.inc();
    NRecompSaturated.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  metrics().RecompSched.inc();
  NRecompSched.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Response QueryService::executePartial(const PreparedHandle &P,
                                      std::size_t Begin, std::size_t Len,
                                      std::chrono::milliseconds Deadline) {
  ServeMetrics &M = metrics();
  Response Rsp;
  Rsp.Id = NextRequestId.fetch_add(1, std::memory_order_relaxed);
  auto fail = [&](const std::string &Msg) {
    Rsp.St = Status::Error;
    Rsp.Message = Msg;
    M.Errors.inc();
    NErrors.fetch_add(1, std::memory_order_relaxed);
    return Rsp;
  };

  if (!P)
    return fail("null prepared handle");
  if (Closed.load(std::memory_order_relaxed))
    return fail("service is shutting down");

  const PreparedQuery::PartialState *PS = preparePartial(P);
  if (!PS->Splittable)
    return fail("query is not splittable: " + PS->WhyNot);
  const auto &Sources = P->bindings().sources();
  std::size_t Count =
      (Sources.empty() || Sources[0].Count < 0)
          ? 0
          : static_cast<std::size_t>(Sources[0].Count);
  if (Begin > Count || Len > Count - Begin)
    return fail("partial range [" + std::to_string(Begin) + ", +" +
                std::to_string(Len) + ") out of bounds for source of " +
                std::to_string(Count));

  // Admission gate, identical to execute(): partial requests share the
  // same queued + executing bound.
  std::int64_t Depth = InFlight.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (Depth > static_cast<std::int64_t>(Options.MaxQueue)) {
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
    Rsp.St = Status::Shed;
    M.Shed.inc();
    NShed.fetch_add(1, std::memory_order_relaxed);
    return Rsp;
  }
  M.QueueDepth.set(Depth);
  M.Requests.inc();
  NAccepted.fetch_add(1, std::memory_order_relaxed);

  auto R = std::make_shared<RequestState>();
  R->P = P;
  R->Deadline = std::chrono::steady_clock::now() + Deadline;
  R->Id = Rsp.Id;
  R->Partial = true;
  R->Begin = Begin;
  R->Len = Len;
  std::future<Response> Fut = R->Promise.get_future();

  if (!Exec.submit([this, R] { runRequest(R); })) {
    Rsp.St = Status::Error;
    Rsp.Message = "service is shutting down";
    M.Errors.inc();
    NErrors.fetch_add(1, std::memory_order_relaxed);
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
    return Rsp;
  }
  return Fut.get();
}

//===--------------------------------------------------------------------===//
// Adaptive re-planning (DESIGN.md §5j)
//===--------------------------------------------------------------------===//

std::uint64_t QueryService::feedbackAnchor(const PreparedQuery &P) const {
  // Feedback is keyed by the pre-rewrite (anchor) hash: the one hash
  // every plan version of this query — static v1, feedback v2, v3 — has
  // provenance edges to, so snapshotResolved() folds them all.
  std::uint64_t RF = P.InterpPlan.rewrittenFromHash();
  return RF ? RF : P.InterpPlan.planHash();
}

void QueryService::publishAdaptive(const PreparedHandle &P,
                                   CompiledQuery Plan) {
  {
    std::lock_guard<std::mutex> Lock(P->AdaptMutex);
    P->AdaptPlan = std::make_shared<const CompiledQuery>(std::move(Plan));
    P->AdaptState = 2;
  }
  // Fresh judgement window for the new version.
  P->AdaptRuns.store(0, std::memory_order_relaxed);
  P->AdaptNanos.store(0, std::memory_order_relaxed);
  metrics().ReplanSwaps.inc();
  NReplanSwaps.fetch_add(1, std::memory_order_relaxed);
}

bool QueryService::scheduleAdaptiveReplan(const PreparedHandle &P) {
  if (!P || Closed.load(std::memory_order_relaxed) || !Options.Profile)
    return false;
  if (P->Pinned.load(std::memory_order_relaxed))
    return false;
  std::uint64_t Anchor = feedbackAnchor(*P);
  adapt::FeedbackStore &FS = adapt::FeedbackStore::global();
  if (FS.ignored(Anchor)) {
    // Quarantined before this handle existed (or by a sibling handle):
    // pin without attempting a compile.
    if (!P->Pinned.exchange(true, std::memory_order_relaxed))
      NAdaptPinned.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Claim the compile slot. A live v2 may be re-planned into a v3; a
  // compile already in flight is left alone.
  int PrevState;
  {
    std::lock_guard<std::mutex> Lock(P->AdaptMutex);
    if (P->AdaptState == 1)
      return false;
    PrevState = P->AdaptState;
    P->AdaptState = 1;
  }
  auto Restore = [&] {
    std::lock_guard<std::mutex> Lock(P->AdaptMutex);
    P->AdaptState = PrevState;
  };
  metrics().Replans.inc();
  NReplans.fetch_add(1, std::memory_order_relaxed);

  // Compile the feedback version synchronously on the interpreter
  // backend (milliseconds — same budget as prepare). Deliberately NOT
  // through the QueryCache: feedback evolves between replans, so a v3
  // must not be served a stale cached v2.
  CompiledQuery V2 = compileQuery(
      P->Built.Q, adaptPlanOptions(Backend::Interp, Options.Profile));

  std::uint64_t CurHash;
  {
    std::lock_guard<std::mutex> Lock(P->AdaptMutex);
    CurHash = P->AdaptPlan ? P->AdaptPlan->planHash()
                           : P->InterpPlan.planHash();
  }
  if (!V2.valid() || V2.planHash() == CurHash) {
    // Feedback reproduced the running plan: nothing to swap.
    Restore();
    NReplanNoChange.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  if (!Options.BackgroundRecompile) {
    publishAdaptive(P, std::move(V2));
    return true;
  }
  if (!P->nativeReady()) {
    // The native v1 is still in flight; swapping a slower interpreted
    // v2 over it would regress the handle for the wrong reason. Retry
    // at the next cadence point.
    Restore();
    return false;
  }

  // Native mode: compile v2's generated source on the background queue
  // and publish the native twin from the completion callback — the same
  // machinery as the interp->native swap.
  auto V2Shared = std::make_shared<CompiledQuery>(std::move(V2));
  PreparedHandle Handle = P;
  bool Submitted = CompileQ.trySubmit(
      V2Shared->generatedSource(), V2Shared->program().Name,
      [this, Handle, V2Shared](std::unique_ptr<jit::CompiledModule> Module,
                               std::string Err) {
        if (!Module) {
          {
            std::lock_guard<std::mutex> Lock(Handle->AdaptMutex);
            Handle->AdaptState = Handle->AdaptPlan ? 2 : 0;
          }
          metrics().RecompFailed.inc();
          NRecompFailed.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "steno-serve: adaptive recompile of '%s' "
                               "failed: %s\n",
                       V2Shared->program().Name.c_str(), Err.c_str());
          return;
        }
        publishAdaptive(Handle,
                        V2Shared->withNativeModule(std::move(Module)));
      });
  if (!Submitted) {
    Restore();
    metrics().RecompSaturated.inc();
    NRecompSaturated.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void QueryService::judgeAdaptive(const PreparedHandle &P) {
  double BRuns =
      static_cast<double>(P->BaseRuns.load(std::memory_order_relaxed));
  double BNanos =
      static_cast<double>(P->BaseNanos.load(std::memory_order_relaxed));
  double ARuns =
      static_cast<double>(P->AdaptRuns.load(std::memory_order_relaxed));
  double ANanos =
      static_cast<double>(P->AdaptNanos.load(std::memory_order_relaxed));
  double BaseMean = BRuns > 0 ? BNanos / BRuns / 1e3 : 0.0;
  double AdaptMean = ARuns > 0 ? ANanos / ARuns / 1e3 : 0.0;

  bool Regressed =
      Options.AdaptJudge
          ? Options.AdaptJudge(BaseMean, AdaptMean)
          : (BaseMean > 0.0 &&
             AdaptMean > BaseMean * (1.0 + Options.AdaptSlack));

  std::uint64_t Anchor = feedbackAnchor(*P);
  adapt::FeedbackStore &FS = adapt::FeedbackStore::global();
  if (!Regressed) {
    FS.recordGoodPrediction(Anchor);
    return;
  }

  // Misprediction: revert to the static plan and strike the plan hash.
  {
    std::lock_guard<std::mutex> Lock(P->AdaptMutex);
    if (P->AdaptState != 2)
      return; // already reverted or being replaced
    P->AdaptPlan = nullptr;
    P->AdaptState = 0;
  }
  P->AdaptRuns.store(0, std::memory_order_relaxed);
  P->AdaptNanos.store(0, std::memory_order_relaxed);
  metrics().AdaptReverted.inc();
  NAdaptReverted.fetch_add(1, std::memory_order_relaxed);
  if (FS.recordMisprediction(Anchor)) {
    if (!P->Pinned.exchange(true, std::memory_order_relaxed))
      NAdaptPinned.fetch_add(1, std::memory_order_relaxed);
  }
}

Response QueryService::execute(const PreparedHandle &P,
                               std::chrono::milliseconds Deadline) {
  ServeMetrics &M = metrics();
  Response Rsp;
  Rsp.Id = NextRequestId.fetch_add(1, std::memory_order_relaxed);

  if (!P) {
    Rsp.St = Status::Error;
    Rsp.Message = "null prepared handle";
    M.Errors.inc();
    NErrors.fetch_add(1, std::memory_order_relaxed);
    return Rsp;
  }
  if (Closed.load(std::memory_order_relaxed)) {
    Rsp.St = Status::Error;
    Rsp.Message = "service is shutting down";
    M.Errors.inc();
    NErrors.fetch_add(1, std::memory_order_relaxed);
    return Rsp;
  }

  // A handle that degraded because the compile queue was saturated at
  // prepare time retries its upgrade here, once the queue has room.
  if (Options.BackgroundRecompile && !P->nativeReady() &&
      P->RecompileState.load(std::memory_order_acquire) == 0 &&
      !CompileQ.saturated())
    scheduleRecompile(P);

  // Admission gate: bound queued + executing requests.
  std::int64_t Depth = InFlight.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (Depth > static_cast<std::int64_t>(Options.MaxQueue)) {
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
    Rsp.St = Status::Shed;
    M.Shed.inc();
    NShed.fetch_add(1, std::memory_order_relaxed);
    return Rsp;
  }
  M.QueueDepth.set(Depth);
  M.Requests.inc();
  NAccepted.fetch_add(1, std::memory_order_relaxed);

  auto R = std::make_shared<RequestState>();
  R->P = P;
  R->Deadline = std::chrono::steady_clock::now() + Deadline;
  R->Id = Rsp.Id;
  std::future<Response> Fut = R->Promise.get_future();

  if (!Exec.submit([this, R] { runRequest(R); })) {
    // Pool shutting down: answer inline (still exactly one response).
    Rsp.St = Status::Error;
    Rsp.Message = "service is shutting down";
    M.Errors.inc();
    NErrors.fetch_add(1, std::memory_order_relaxed);
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
    return Rsp;
  }
  return Fut.get();
}

void QueryService::runRequest(const std::shared_ptr<RequestState> &R) {
  ServeMetrics &M = metrics();
  // Request-id propagation: every child span of this request's execution
  // (steno.run, jit.*, ...) nests under a span naming the request.
  obs::Span ReqSpan("serve.request");
  ReqSpan.arg("request_id", static_cast<std::int64_t>(R->Id));
  Response Rsp;
  Rsp.Id = R->Id;
  Rsp.QueueMicros = R->QueueTimer.seconds() * 1e6;
  M.QueueMicros.observe(Rsp.QueueMicros);

  if (std::chrono::steady_clock::now() > R->Deadline) {
    Rsp.St = Status::Timeout;
    M.Timeouts.inc();
    NTimeouts.fetch_add(1, std::memory_order_relaxed);
    finish(*R, std::move(Rsp));
    return;
  }

  if (Options.ExecHook)
    Options.ExecHook();

  if (R->Partial) {
    // Shard-partial path: run the §6 vertex over the request's source
    // range and answer with the *partial* — no adaptive bookkeeping
    // (partials are combined by the router; judging them against
    // whole-query latency would be apples to oranges).
    const PreparedQuery::PartialState &PS = *R->P->Partial;
    bool Native = PS.VertexNativeReady.load(std::memory_order_acquire);
    const CompiledQuery &Plan = Native ? PS.VertexNative : PS.VertexInterp;
    support::WallTimer RunTimer;
    Bindings Range = dryad::bindingRange(R->P->bindings(), 0, R->Begin,
                                         R->Len);
    Rsp.Result = Plan.run(Range);
    Rsp.RunMicros = RunTimer.seconds() * 1e6;
    Rsp.St = Status::Ok;
    Rsp.NativePlan = Native;
    Rsp.Degraded = !Native && Options.BackgroundRecompile;
    M.Ok.inc();
    NOk.fetch_add(1, std::memory_order_relaxed);
    M.PartialRuns.inc();
    NPartialRuns.fetch_add(1, std::memory_order_relaxed);
    if (Native) {
      M.NativeRuns.inc();
      NNativeRuns.fetch_add(1, std::memory_order_relaxed);
    }
    if (Rsp.Degraded) {
      M.Degraded.inc();
      NDegraded.fetch_add(1, std::memory_order_relaxed);
    }
    M.RequestMicros.observe(Rsp.QueueMicros + Rsp.RunMicros);
    finish(*R, std::move(Rsp));
    return;
  }

  PreparedQuery &P = *R->P;
  bool Native = P.NativeReady.load(std::memory_order_acquire);
  // A live feedback-replanned version takes precedence. The shared_ptr
  // is copied under the lock, so a concurrent revert or re-swap never
  // frees a plan this request is about to run.
  std::shared_ptr<const CompiledQuery> Adaptive;
  if (Options.AdaptiveReplan && Options.Profile &&
      !P.Pinned.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> Lock(P.AdaptMutex);
    if (P.AdaptState == 2)
      Adaptive = P.AdaptPlan;
  }
  // InterpPlan is immutable after prepare; NativePlan is published by the
  // release store NativeReady observes (see PreparedQuery).
  const CompiledQuery &Plan =
      Adaptive ? *Adaptive : (Native ? P.NativePlan : P.InterpPlan);

  support::WallTimer RunTimer;
  Rsp.Result = Plan.run(P.bindings());
  Rsp.RunMicros = RunTimer.seconds() * 1e6;
  Rsp.St = Status::Ok;
  Rsp.NativePlan =
      Adaptive ? Adaptive->backend() == Backend::Native : Native;
  Rsp.AdaptivePlan = Adaptive != nullptr;
  Rsp.Degraded = !Rsp.NativePlan && Options.BackgroundRecompile;

  std::uint64_t Execs = P.Execs.fetch_add(1, std::memory_order_relaxed) + 1;
  M.Ok.inc();
  NOk.fetch_add(1, std::memory_order_relaxed);
  if (Rsp.NativePlan) {
    M.NativeRuns.inc();
    NNativeRuns.fetch_add(1, std::memory_order_relaxed);
  }
  if (Rsp.Degraded) {
    M.Degraded.inc();
    NDegraded.fetch_add(1, std::memory_order_relaxed);
  }
  M.RequestMicros.observe(Rsp.QueueMicros + Rsp.RunMicros);

  // Latency accounting for the post-swap judgement, then answer the
  // client before any adaptive bookkeeping compiles anything.
  std::uint64_t RunNanos =
      static_cast<std::uint64_t>(Rsp.RunMicros * 1e3);
  bool Judge = false;
  if (Adaptive) {
    NAdaptiveRuns.fetch_add(1, std::memory_order_relaxed);
    P.AdaptNanos.fetch_add(RunNanos, std::memory_order_relaxed);
    Judge = P.AdaptRuns.fetch_add(1, std::memory_order_relaxed) + 1 ==
            Options.AdaptWindow;
  } else {
    P.BaseNanos.fetch_add(RunNanos, std::memory_order_relaxed);
    P.BaseRuns.fetch_add(1, std::memory_order_relaxed);
  }
  finish(*R, std::move(Rsp));

  if (Judge)
    judgeAdaptive(R->P);
  if (Options.AdaptiveReplan && Options.Profile && Options.ReplanEvery &&
      Execs % Options.ReplanEvery == 0 &&
      !P.Pinned.load(std::memory_order_relaxed))
    scheduleAdaptiveReplan(R->P);
}

void QueryService::finish(RequestState &R, Response Rsp) {
  std::int64_t Depth =
      InFlight.fetch_sub(1, std::memory_order_acq_rel) - 1;
  metrics().QueueDepth.set(Depth);
  R.Promise.set_value(std::move(Rsp));
}

QueryService::Stats QueryService::stats() const {
  Stats S;
  S.Sessions = NSessions.load(std::memory_order_relaxed);
  S.Prepares = NPrepares.load(std::memory_order_relaxed);
  S.Accepted = NAccepted.load(std::memory_order_relaxed);
  S.Ok = NOk.load(std::memory_order_relaxed);
  S.Shed = NShed.load(std::memory_order_relaxed);
  S.Timeouts = NTimeouts.load(std::memory_order_relaxed);
  S.Errors = NErrors.load(std::memory_order_relaxed);
  S.DegradedRuns = NDegraded.load(std::memory_order_relaxed);
  S.NativeRuns = NNativeRuns.load(std::memory_order_relaxed);
  S.RecompilesScheduled = NRecompSched.load(std::memory_order_relaxed);
  S.RecompilesDone = NRecompDone.load(std::memory_order_relaxed);
  S.RecompilesFailed = NRecompFailed.load(std::memory_order_relaxed);
  S.RecompilesSaturated = NRecompSaturated.load(std::memory_order_relaxed);
  S.Replans = NReplans.load(std::memory_order_relaxed);
  S.ReplanSwaps = NReplanSwaps.load(std::memory_order_relaxed);
  S.ReplanNoChange = NReplanNoChange.load(std::memory_order_relaxed);
  S.AdaptiveRuns = NAdaptiveRuns.load(std::memory_order_relaxed);
  S.AdaptReverted = NAdaptReverted.load(std::memory_order_relaxed);
  S.AdaptPinned = NAdaptPinned.load(std::memory_order_relaxed);
  S.PartialRuns = NPartialRuns.load(std::memory_order_relaxed);
  S.QueueDepth = InFlight.load(std::memory_order_relaxed);
  return S;
}
