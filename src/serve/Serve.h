//===- serve/Serve.h - Concurrent query service ----------------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer the paper's break-even analysis (§7.1) implies:
/// compiled queries only pay off when one compilation is amortized over
/// many executions, which means a long-lived process fielding a stream of
/// requests. QueryService is that process's core — a multi-client,
/// admission-controlled query service over the whole stack:
///
///   admit -> prepare -> execute -> (degrade | respond)
///
/// * **Wire format.** Queries arrive as textual `steno-fuzz v1` specs
///   (fuzz/Spec.h): self-contained recipes carrying both the pipeline and
///   the input-data description, so a spec alone is a complete request.
///   Specs are pre-screened through lower/validate/analyze; a rejected
///   spec is a clean prepare error, never a process abort.
///
/// * **Prepared handles.** prepare() parses and builds the spec once and
///   returns a PreparedHandle; the compiled plan underneath comes from a
///   QueryCache, so structurally equal queries — across sessions and
///   across handles — share one compiled module.
///
/// * **Admission control.** Accepted requests are bounded by MaxQueue
///   (queued + executing). Beyond that the service load-sheds: the
///   request is rejected immediately with Status::Shed instead of growing
///   an unbounded backlog. Each request carries a deadline; a request
///   whose deadline passes while it waits in the queue is answered with
///   Status::Timeout without executing.
///
/// * **Graceful degradation.** prepare() never blocks on the external
///   compiler: it produces an interpreter-backend plan synchronously
///   (milliseconds) and queues a native compile on jit::CompileQueue in
///   the background. Requests run on whatever plan is ready — interpreter
///   first (a *degraded* run), then the native plan is swapped in
///   atomically on compile completion and subsequent runs take it. When
///   the compile queue is saturated, the handle simply stays on the
///   interpreter and retries the upgrade on a later execute; a short
///   request deadline is likewise never extended by compilation, because
///   no request ever waits for the JIT.
///
/// Execution runs on the existing dryad::ThreadPool (one request = one
/// worker; intra-query morsel parallelism is deliberately not nested
/// inside request workers — see DESIGN.md §5f for the pool-deadlock
/// argument). Metrics: serve.* (inventory in DESIGN.md §5f).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_SERVE_SERVE_H
#define STENO_SERVE_SERVE_H

#include "analysis/Analysis.h"
#include "dryad/Plan.h"
#include "dryad/ThreadPool.h"
#include "fuzz/Spec.h"
#include "jit/Async.h"
#include "steno/QueryCache.h"
#include "steno/Result.h"
#include "steno/Steno.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace steno {
namespace serve {

/// Response classes — the service's "HTTP status line".
enum class Status : unsigned {
  Ok = 0,  ///< Executed; Result is valid.
  Timeout, ///< Deadline passed while the request waited in the queue.
  Shed,    ///< Admission queue full; rejected without queuing.
  Error    ///< Malformed spec, unknown handle, or service shutdown.
};

const char *statusName(Status S);

/// Service configuration.
struct ServeOptions {
  unsigned Workers = 4;   ///< Execution pool (dryad::ThreadPool) size.
  unsigned MaxQueue = 64; ///< Admission bound: queued + executing requests.
  unsigned CompileWorkers = 1;  ///< Background JIT threads.
  unsigned MaxCompileQueue = 8; ///< JIT queue bound; 0 = never recompile
                                ///< natively (permanently "saturated").
  /// Deadline applied when execute() is called without one.
  std::chrono::milliseconds DefaultDeadline{5000};
  /// Upgrade interpreter plans to native in the background. Off = every
  /// run stays on the interpreter (and is not counted as degraded).
  bool BackgroundRecompile = true;
  /// Compile every plan with profiling hooks: per-operator statistics
  /// accumulate in the global obs::ProfileStore (keyed by plan hash, so
  /// the interp plan and its native swap-in merge into one profile) and
  /// are served by the wire `profile <handle>` command.
  bool Profile = obs::profilingEnvEnabled();
  /// Feedback-driven re-planning (DESIGN.md §5j): every ReplanEvery
  /// executions of a handle, recompile the plan with the accumulated
  /// adapt::FeedbackStore statistics and — when the feedback produced a
  /// different plan — swap it in atomically, exactly like the
  /// interp->native swap. Requires Profile (no observations otherwise).
  /// Defaults to the STENO_ADAPT environment gate.
  bool AdaptiveReplan = adapt::adaptEnvEnabled();
  /// Re-plan cadence in executions per handle (0 = only explicit
  /// scheduleAdaptiveReplan calls).
  unsigned ReplanEvery = 64;
  /// Post-swap judgement window: after this many runs of a swapped-in
  /// plan, its mean latency is compared against the static plan's.
  unsigned AdaptWindow = 32;
  /// Regression slack for the judgement: the swapped plan is a
  /// misprediction when its mean latency exceeds the static plan's by
  /// more than this fraction. Two consecutive mispredictions pin the
  /// handle to the static plan (ignorance list).
  double AdaptSlack = 0.10;
  /// Test instrumentation: overrides the built-in judgement.
  /// Called as AdaptJudge(staticMeanMicros, adaptiveMeanMicros); return
  /// true to declare the swapped plan regressed. Never set in
  /// production.
  std::function<bool(double, double)> AdaptJudge;
  /// Plan cache; defaults to a service-private cache when null. Not
  /// owned.
  QueryCache *Cache = nullptr;
  /// Test instrumentation: invoked on the worker thread immediately
  /// before a request executes (after the deadline check). Lets tests
  /// hold workers at a barrier to fill the admission queue
  /// deterministically. Never set in production.
  std::function<void()> ExecHook;
};

/// One request's answer. Exactly one Response is produced per accepted
/// execute() call (and per shed/timeout), carrying a service-unique Id.
struct Response {
  Status St = Status::Error;
  std::uint64_t Id = 0;   ///< Service-unique request id (0 = never admitted).
  std::string Message;    ///< Error detail (St == Error).
  QueryResult Result;     ///< Valid when St == Ok.
  bool Degraded = false;  ///< Ran interpreted while a native plan was wanted.
  bool NativePlan = false; ///< Executed the JIT-compiled plan.
  bool AdaptivePlan = false; ///< Executed a feedback-replanned (v2+) plan.
  double QueueMicros = 0;  ///< Admission-to-execution wait.
  double RunMicros = 0;    ///< Plan execution time.

  bool ok() const { return St == Status::Ok; }
};

class QueryService;

/// A prepared query: the parsed spec, its synthesized input buffers, and
/// the current plan (interpreter immediately; native after the background
/// swap). Immutable to callers; thread-safe to execute from any number of
/// threads concurrently, including across the plan swap.
class PreparedQuery {
public:
  /// Shard-serving state (steno::shard, DESIGN.md §5k): the §6
  /// decomposition of this query, prepared lazily on the first partial-
  /// execution request. Splittable means the certificate passed
  /// shardSafe() AND the planner found the homomorphic-prefix + Agg
  /// split; the vertex plan then computes this worker's *partial* over a
  /// source range, and the router owns the Agg* combine. Immutable after
  /// the once-flag fires (the vertex native swap uses the same publish
  /// protocol as the whole-query plan).
  struct PartialState {
    bool Splittable = false;
    std::string WhyNot;           ///< Why not, when !Splittable.
    dryad::ParallelPlan Plan;     ///< Valid when Splittable.
    analysis::SafetyCertificate Cert;
    CompiledQuery VertexInterp;   ///< Set before publication; then const.
    /// Same release/acquire publish protocol as PreparedQuery::NativePlan.
    CompiledQuery VertexNative;
    std::atomic<bool> VertexNativeReady{false};
    std::atomic<int> VertexRecompile{0}; ///< 0 idle, 1 in flight, 2 done.

    const CompiledQuery &currentVertex() const {
      return VertexNativeReady.load(std::memory_order_acquire)
                 ? VertexNative
                 : VertexInterp;
    }
  };

  const fuzz::QuerySpec &spec() const { return Spec; }
  const query::Query &query() const { return Built.Q; }
  const Bindings &bindings() const { return Built.B; }
  const std::string &specText() const { return SpecText; }

  /// True once the native plan has been swapped in.
  bool nativeReady() const {
    return NativeReady.load(std::memory_order_acquire);
  }
  std::uint64_t executions() const {
    return Execs.load(std::memory_order_relaxed);
  }
  /// One-off native compile cost once nativeReady(), else 0.
  double nativeCompileMillis() const;
  /// True while a feedback-replanned plan (v2+) is live for this handle.
  bool adaptiveLive() const {
    std::lock_guard<std::mutex> Lock(AdaptMutex);
    return AdaptState == 2;
  }
  /// True once the handle was quarantined to the static plan (ignorance
  /// list).
  bool pinnedStatic() const {
    return Pinned.load(std::memory_order_relaxed);
  }
  /// The plan execute() would run right now: the native plan once
  /// swapped in, the interpreter plan before. Both share one plan hash
  /// (structural), so profile introspection needs no swap awareness.
  const CompiledQuery &currentPlan() const {
    return NativeReady.load(std::memory_order_acquire) ? NativePlan
                                                       : InterpPlan;
  }

private:
  friend class QueryService;

  fuzz::QuerySpec Spec;
  fuzz::BuiltQuery Built;
  std::string SpecText;
  CompiledQuery InterpPlan; ///< Set once before publication; then const.
  /// Publish protocol: the recompile callback writes NativePlan, then
  /// stores NativeReady with release; executors load NativeReady with
  /// acquire before reading NativePlan. RecompileState guards against a
  /// second writer ever racing the first.
  CompiledQuery NativePlan;
  std::atomic<bool> NativeReady{false};
  std::atomic<int> RecompileState{0}; ///< 0 idle, 1 in flight, 2 done.
  std::atomic<std::uint64_t> Execs{0};

  /// Adaptive re-plan state (DESIGN.md §5j). Unlike the write-once
  /// interp->native publish, an adaptive plan can be swapped repeatedly
  /// (v2 -> revert -> v3, ...), so the live plan travels in a
  /// shared_ptr under a mutex: executors copy the pointer under the
  /// lock and run lock-free from then on; a revert or re-swap never
  /// invalidates a plan an in-flight request already holds.
  mutable std::mutex AdaptMutex;
  std::shared_ptr<const CompiledQuery> AdaptPlan; ///< Under AdaptMutex.
  int AdaptState = 0; ///< Under AdaptMutex: 0 idle, 1 compiling, 2 live.
  std::atomic<bool> Pinned{false}; ///< Ignorance list: static plan only.
  // Latency accounting for the post-swap judgement (nanoseconds).
  std::atomic<std::uint64_t> BaseRuns{0}, BaseNanos{0};
  std::atomic<std::uint64_t> AdaptRuns{0}, AdaptNanos{0};

  /// §6 decomposition, built lazily by QueryService::preparePartial on
  /// the first pexec for this handle (most handles never shard).
  std::once_flag PartialOnce;
  std::unique_ptr<PartialState> Partial;
};

/// Mutation (the plan swap) is QueryService-private; handle holders only
/// see the accessors above.
using PreparedHandle = std::shared_ptr<PreparedQuery>;

/// A client's view of the service. Sessions are cheap; one per client
/// connection. prepare() memoizes by spec text per session (re-preparing
/// the same text returns the same handle); handles are interchangeable
/// across sessions. execute() is thread-safe; prepare() serializes on a
/// per-session mutex.
class Session {
public:
  std::uint64_t id() const { return Id; }

  /// Parses, screens and builds \p SpecText; returns null and fills
  /// \p Err on a malformed or analysis-rejected spec.
  PreparedHandle prepare(const std::string &SpecText, std::string *Err);

  /// Admits and runs one request against \p P with an explicit deadline
  /// budget. Blocks until the response (closed-loop client model).
  Response execute(const PreparedHandle &P,
                   std::chrono::milliseconds Deadline);
  /// execute() with the service's DefaultDeadline.
  Response execute(const PreparedHandle &P);

  /// One-shot convenience: prepare (memoized) then execute.
  Response executeSpec(const std::string &SpecText,
                       std::chrono::milliseconds Deadline);

private:
  friend class QueryService;
  Session(QueryService &Svc, std::uint64_t Id) : Svc(Svc), Id(Id) {}

  QueryService &Svc;
  std::uint64_t Id;
  std::mutex Mutex; ///< Guards Prepared.
  std::unordered_map<std::string, PreparedHandle> Prepared;
};

/// The service. One instance per process (or per test); owns the
/// execution pool, the background compile queue, and (by default) the
/// plan cache. Destruction drains in-flight work.
class QueryService {
public:
  explicit QueryService(const ServeOptions &Options = ServeOptions());
  ~QueryService();

  QueryService(const QueryService &) = delete;
  QueryService &operator=(const QueryService &) = delete;

  std::shared_ptr<Session> openSession();

  /// Session-independent prepare (sessions delegate here after their
  /// memoization layer).
  PreparedHandle prepare(const std::string &SpecText, std::string *Err);

  /// Session-independent execute (thread-safe).
  Response execute(const PreparedHandle &P,
                   std::chrono::milliseconds Deadline);

  /// The §6 decomposition of \p P, computed once per handle and cached
  /// (thread-safe; concurrent callers block on the once-flag). Always
  /// returns a state — consult Splittable/WhyNot; a handle whose
  /// certificate or planner refused the split has Splittable == false
  /// and the router must route it whole. Never null for a non-null
  /// handle.
  const PreparedQuery::PartialState *
  preparePartial(const PreparedHandle &P);

  /// Runs \p P's per-shard vertex (homomorphic prefix + Agg_i of
  /// Figure 12) over elements [Begin, Begin+Len) of source slot 0,
  /// returning the *partial* result — the router combines partials with
  /// the Agg* stage. Admission-controlled exactly like execute().
  /// Errors when the handle is not splittable or the range is out of
  /// bounds. Empty ranges (Len == 0) are valid and produce the vertex's
  /// identity partial.
  Response executePartial(const PreparedHandle &P, std::size_t Begin,
                          std::size_t Len,
                          std::chrono::milliseconds Deadline);

  /// Queues a native recompile for \p P now (normally scheduled by
  /// prepare). Returns false when the compile queue is saturated, the
  /// native plan already exists, or a compile is already in flight. Used
  /// by the soak tests to force the swap mid-stream.
  bool scheduleRecompile(const PreparedHandle &P);

  /// Recompiles \p P's plan with the accumulated feedback and swaps the
  /// new version in when it differs from the running plan (normally
  /// triggered every ReplanEvery executions). The interpreter version is
  /// produced synchronously; with BackgroundRecompile on, its native
  /// twin is compiled on the jit::CompileQueue and published by the
  /// completion callback — the same machinery as the interp->native
  /// swap. Returns true when a swap happened or was queued. Used by the
  /// soak tests to force a v1 -> v2 re-swap mid-stream.
  bool scheduleAdaptiveReplan(const PreparedHandle &P);

  /// Blocks until the background compile queue is empty (tests,
  /// shutdown).
  void drainRecompiles();

  const ServeOptions &options() const { return Options; }
  QueryCache &cache() { return *Cache; }

  /// Instance-local monotonic statistics (the serve.* obs instruments
  /// aggregate across instances; tests read these).
  struct Stats {
    std::uint64_t Sessions = 0;
    std::uint64_t Prepares = 0;
    std::uint64_t Accepted = 0;
    std::uint64_t Ok = 0;
    std::uint64_t Shed = 0;
    std::uint64_t Timeouts = 0;
    std::uint64_t Errors = 0;
    std::uint64_t DegradedRuns = 0;
    std::uint64_t NativeRuns = 0;
    std::uint64_t RecompilesScheduled = 0;
    std::uint64_t RecompilesDone = 0;
    std::uint64_t RecompilesFailed = 0;
    std::uint64_t RecompilesSaturated = 0;
    std::uint64_t Replans = 0;        ///< Adaptive recompiles attempted.
    std::uint64_t ReplanSwaps = 0;    ///< New plan versions swapped in.
    std::uint64_t ReplanNoChange = 0; ///< Feedback reproduced the plan.
    std::uint64_t AdaptiveRuns = 0;   ///< Requests run on a v2+ plan.
    std::uint64_t AdaptReverted = 0;  ///< Post-swap regressions reverted.
    std::uint64_t AdaptPinned = 0;    ///< Handles quarantined static.
    std::uint64_t PartialRuns = 0;    ///< Per-shard vertex executions.
    std::int64_t QueueDepth = 0;
  };
  Stats stats() const;

private:
  struct RequestState;

  void runRequest(const std::shared_ptr<RequestState> &R);
  void finish(RequestState &R, Response Rsp);
  void buildPartial(const PreparedHandle &P);
  bool scheduleVertexRecompile(const PreparedHandle &P);
  void publishAdaptive(const PreparedHandle &P, CompiledQuery Plan);
  void judgeAdaptive(const PreparedHandle &P);
  std::uint64_t feedbackAnchor(const PreparedQuery &P) const;

  ServeOptions Options;
  std::unique_ptr<QueryCache> OwnedCache; ///< When Options.Cache == null.
  QueryCache *Cache = nullptr;

  std::atomic<std::uint64_t> NextSessionId{1};
  std::atomic<std::uint64_t> NextRequestId{1};
  std::atomic<std::int64_t> InFlight{0};
  std::atomic<bool> Closed{false};

  // Instance stats (relaxed atomics; read via stats()).
  std::atomic<std::uint64_t> NSessions{0}, NPrepares{0}, NAccepted{0},
      NOk{0}, NShed{0}, NTimeouts{0}, NErrors{0}, NDegraded{0},
      NNativeRuns{0}, NRecompSched{0}, NRecompDone{0}, NRecompFailed{0},
      NRecompSaturated{0}, NReplans{0}, NReplanSwaps{0},
      NReplanNoChange{0}, NAdaptiveRuns{0}, NAdaptReverted{0},
      NAdaptPinned{0}, NPartialRuns{0};

  // Declared last: destroyed first, so worker threads and compile
  // callbacks never outlive the state above.
  jit::CompileQueue CompileQ;
  dryad::ThreadPool Exec;
};

} // namespace serve
} // namespace steno

#endif // STENO_SERVE_SERVE_H
