//===- interp/VecInterp.h - Batched interpreter entry point ----*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vectorized sibling of interp::execute (DESIGN.md §5i): instead of
/// walking the generated loop AST element-at-a-time, a vectorizable chain
/// executes batch-at-a-time through the steno::vec kernels — a tight typed
/// loop per operator over a column of (default) 1024 elements, with
/// predicates communicating through selection vectors. Profile accounting
/// happens once per batch per operator rather than once per element, and
/// the rows-in/rows-out totals match the scalar path exactly.
///
/// Chains whose shape does not fit the columnar model (nested queries,
/// sinks, early-exit aggregates, vec-typed elements) have no VecPlan and
/// stay on interp::execute; the dispatch lives in steno::CompiledQuery.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_INTERP_VECINTERP_H
#define STENO_INTERP_VECINTERP_H

#include "interp/Interp.h"
#include "vec/BatchExec.h"

namespace steno {
namespace interp {

/// Executes \p Plan batch-at-a-time against \p In and collects the emitted
/// rows. The plan must have been built from the same chain the inputs were
/// bound for (vec::planChain, Plan.Ok == true). Vectorizable chains emit
/// scalar rows only, so the output arena is always null.
RunOutput executeVectorized(const vec::VecPlan &Plan, const RunInput &In);

} // namespace interp
} // namespace steno

#endif // STENO_INTERP_VECINTERP_H
