//===- interp/Interp.h - Execute generated loop code directly --*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking executor for cpptree::Program — the generated fused loop
/// code — against bound sources and captures. The paper compiles the
/// generated AST with the production compiler; this module instead runs
/// the same AST directly. It exists for two reasons: it is the portable
/// backend (no compiler or dlopen needed), and it lets the test suite
/// validate the code generator's output semantics without paying the JIT's
/// one-off compilation cost.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_INTERP_INTERP_H
#define STENO_INTERP_INTERP_H

#include "cpptree/Tree.h"
#include "expr/Value.h"
#include "obs/Profile.h"

#include <deque>
#include <memory>
#include <vector>

namespace steno {
namespace interp {

/// Bound inputs for one program execution.
struct RunInput {
  const std::vector<expr::SourceBuffer> *Sources = nullptr;
  const std::vector<expr::Value> *Values = nullptr;
  /// When non-null, ProfileCount/ProfileTimed statements accumulate into
  /// this per-run sink (sized for the program's ProfOps); null runs the
  /// instrumentation as cheap no-ops.
  obs::ProfileSink *Profile = nullptr;
};

/// Execution result. Emitted rows are deep copies: Vec payloads are
/// duplicated into Arena so they outlive the program's internal sinks.
struct RunOutput {
  std::vector<expr::Value> Rows;
  /// Owns the double buffers behind any Vec views in Rows (deque for
  /// pointer stability).
  std::shared_ptr<std::deque<std::vector<double>>> Arena;
};

/// Executes \p P against \p In and collects the emitted rows.
RunOutput execute(const cpptree::Program &P, const RunInput &In);

} // namespace interp
} // namespace steno

#endif // STENO_INTERP_INTERP_H
