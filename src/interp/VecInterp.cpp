//===- interp/VecInterp.cpp -----------------------------------*- C++ -*-===//

#include "interp/VecInterp.h"

using namespace steno;

interp::RunOutput interp::executeVectorized(const vec::VecPlan &Plan,
                                            const RunInput &In) {
  vec::BatchInput BI;
  BI.Sources = In.Sources;
  BI.Values = In.Values;
  BI.Profile = In.Profile;
  RunOutput Out;
  Out.Rows = vec::executeBatched(Plan, BI);
  return Out;
}
