//===- interp/Interp.cpp --------------------------------------*- C++ -*-===//

#include "interp/Interp.h"
#include "expr/Eval.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <unordered_map>

using namespace steno;
using namespace steno::interp;
using cpptree::LoopInfo;
using cpptree::LoopKind;
using cpptree::SinkKind;
using cpptree::Stmt;
using cpptree::StmtKind;
using cpptree::StmtList;
using expr::Value;
using expr::VecView;

namespace {

/// Interpreter-side sink objects, mirroring steno::rt's sinks.
struct GroupSinkI {
  std::vector<std::pair<std::int64_t, std::vector<double>>> Buckets;
  std::unordered_map<std::int64_t, std::size_t> Index;

  void put(std::int64_t Key, double V) {
    auto It = Index.find(Key);
    std::size_t Slot;
    if (It == Index.end()) {
      Slot = Buckets.size();
      Index.emplace(Key, Slot);
      Buckets.emplace_back(Key, std::vector<double>());
    } else {
      Slot = It->second;
    }
    Buckets[Slot].second.push_back(V);
  }
};

struct GroupAggSinkI {
  std::vector<std::pair<std::int64_t, Value>> Entries;
  std::unordered_map<std::int64_t, std::size_t> Index;
  /// Dense variant (§4.3's O(1)-keys sink): pre-seeded slot array; key I
  /// lives at Entries-free DenseSlots[I].
  bool Dense = false;
  std::vector<Value> DenseSlots;

  std::size_t slot(std::int64_t Key, const Value &Seed) {
    assert(!Dense && "hash path used on a dense sink");
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    std::size_t Slot = Entries.size();
    Index.emplace(Key, Slot);
    Entries.emplace_back(Key, Seed);
    return Slot;
  }
};

struct VecSinkI {
  std::vector<Value> Elems;
  /// Backing store for DeclareSinkView (built on demand).
  std::vector<double> FlatCopy;
};

struct SinkObj {
  SinkKind Kind = SinkKind::Vec;
  GroupSinkI Group;
  GroupAggSinkI GroupAgg;
  VecSinkI Vec;
};

enum class Flow { Normal, Continue, Break };

class Executor {
public:
  Executor(const cpptree::Program &P, const RunInput &In)
      : P(P), Prof(In.Profile) {
    Arena = std::make_shared<std::deque<std::vector<double>>>();
    if (In.Values)
      Environment.setCaptures(In.Values);
    if (In.Sources) {
      Environment.setSources(In.Sources);
      Sources = In.Sources;
    }
    Environment.setFallback([this](const std::string &Name) {
      auto It = Locals.find(Name);
      return It == Locals.end() ? nullptr : &It->second;
    });
  }

  RunOutput run() {
    Flow F = execList(P.Body);
    assert(F == Flow::Normal && "control escaped the program");
    (void)F;
    RunOutput Out;
    Out.Rows = std::move(Rows);
    Out.Arena = Arena;
    return Out;
  }

private:
  Value eval(const expr::ExprRef &E) {
    assert(E && "evaluating a null expression");
    return expr::evalExpr(*E, Environment);
  }

  const expr::SourceBuffer &sourceAt(unsigned Slot) {
    if (!Sources || Slot >= Sources->size())
      support::fatalError("source slot " + std::to_string(Slot) +
                          " is not bound");
    return (*Sources)[Slot];
  }

  /// Deep-copies Vec payloads into the arena so emitted rows outlive the
  /// program's sinks and temporaries.
  Value deepCopy(const Value &V) {
    switch (V.kind()) {
    case expr::TypeKind::Vec: {
      VecView View = V.asVec();
      Arena->emplace_back(View.Data, View.Data + View.Len);
      const std::vector<double> &Stored = Arena->back();
      return Value(VecView{Stored.data(),
                           static_cast<std::int64_t>(Stored.size())});
    }
    case expr::TypeKind::Pair:
      return Value::makePair(deepCopy(V.first()), deepCopy(V.second()));
    default:
      return V;
    }
  }

  Flow execList(const StmtList &Stmts) {
    for (const cpptree::StmtRef &S : Stmts) {
      Flow F = exec(*S);
      if (F != Flow::Normal)
        return F;
    }
    return Flow::Normal;
  }

  Flow exec(const Stmt &S) {
    switch (S.K) {
    case StmtKind::Region:
      return execList(S.Body);
    case StmtKind::DeclareLocal:
    case StmtKind::Assign:
      Locals[S.Name] = eval(S.E);
      return Flow::Normal;
    case StmtKind::DeclareSinkView: {
      SinkObj &Sink = sink(S.SlotVar);
      assert(Sink.Kind == SinkKind::Vec &&
             "sink view over a non-vector sink");
      Sink.Vec.FlatCopy.clear();
      Sink.Vec.FlatCopy.reserve(Sink.Vec.Elems.size());
      for (const Value &V : Sink.Vec.Elems)
        Sink.Vec.FlatCopy.push_back(V.asDouble());
      Locals[S.Name] = Value(VecView{
          Sink.Vec.FlatCopy.data(),
          static_cast<std::int64_t>(Sink.Vec.FlatCopy.size())});
      return Flow::Normal;
    }
    case StmtKind::If:
      if (eval(S.E).asBool())
        return execList(S.Body);
      return Flow::Normal;
    case StmtKind::Continue:
      return Flow::Continue;
    case StmtKind::Break:
      return Flow::Break;
    case StmtKind::Loop:
      return execLoop(S);
    case StmtKind::DeclareSink: {
      SinkObj Obj;
      Obj.Kind = S.Sink.Kind;
      if (S.Sink.isDense()) {
        Obj.GroupAgg.Dense = true;
        std::int64_t N = eval(S.Sink.DenseKeys).asInt64();
        Obj.GroupAgg.DenseSlots.assign(
            static_cast<std::size_t>(N < 0 ? 0 : N),
            eval(S.Sink.DenseSeed));
      }
      Sinks[S.Name] = std::move(Obj);
      return Flow::Normal;
    }
    case StmtKind::SinkGroupPut:
      sink(S.Name).Group.put(eval(S.E).asInt64(), eval(S.E2).asDouble());
      return Flow::Normal;
    case StmtKind::SinkGroupAggUpdate: {
      SinkObj &Sink = sink(S.Name);
      std::int64_t Key = eval(S.E).asInt64();
      if (Sink.GroupAgg.Dense) {
        std::vector<Value> &Slots = Sink.GroupAgg.DenseSlots;
        assert(Key >= 0 &&
               static_cast<std::size_t>(Key) < Slots.size() &&
               "dense sink key out of range");
        Locals[S.SlotVar] = Slots[static_cast<std::size_t>(Key)];
        Slots[static_cast<std::size_t>(Key)] = eval(S.E3);
        return Flow::Normal;
      }
      std::size_t Slot = Sink.GroupAgg.slot(Key, eval(S.E2));
      Locals[S.SlotVar] = Sink.GroupAgg.Entries[Slot].second;
      Sink.GroupAgg.Entries[Slot].second = eval(S.E3);
      return Flow::Normal;
    }
    case StmtKind::SinkVecPush:
      sink(S.Name).Vec.Elems.push_back(eval(S.E));
      return Flow::Normal;
    case StmtKind::SortSinkVec: {
      SinkObj &Sink = sink(S.Name);
      const std::string &Param = S.KeyFn.param(0).Name;
      std::vector<Value> &Elems = Sink.Vec.Elems;
      // Decorate-sort-undecorate keeps key evaluation linear and the sort
      // stable.
      std::vector<std::pair<double, std::size_t>> Keys;
      Keys.reserve(Elems.size());
      for (std::size_t I = 0; I != Elems.size(); ++I) {
        Environment.bind(Param, Elems[I]);
        Keys.emplace_back(eval(S.KeyFn.body()).asNumericDouble(), I);
        Environment.pop();
      }
      bool Desc = S.Descending;
      std::stable_sort(Keys.begin(), Keys.end(),
                       [Desc](const auto &A, const auto &B) {
                         return Desc ? B.first < A.first
                                     : A.first < B.first;
                       });
      std::vector<Value> Sorted;
      Sorted.reserve(Elems.size());
      for (const auto &[Key, Idx] : Keys)
        Sorted.push_back(std::move(Elems[Idx]));
      Elems = std::move(Sorted);
      return Flow::Normal;
    }
    case StmtKind::Emit:
      Rows.push_back(deepCopy(eval(S.E)));
      return Flow::Normal;
    case StmtKind::ProfileCount:
      if (Prof)
        ++Prof->Counts[S.ProfSlot];
      return Flow::Normal;
    case StmtKind::ProfileTimed: {
      if (!Prof)
        return execList(S.Body);
      // Time the body and charge the op even when control escapes via
      // continue/break (mirrors the generated ProfTimer destructor).
      auto T0 = std::chrono::steady_clock::now();
      Flow F = execList(S.Body);
      Prof->Nanos[S.ProfSlot] += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - T0)
              .count());
      return F;
    }
    }
    stenoUnreachable("bad StmtKind");
  }

  Flow execLoop(const Stmt &S) {
    const LoopInfo &L = S.Loop;
    switch (L.Kind) {
    case LoopKind::Source:
      return execSourceLoop(S);
    case LoopKind::GroupSink: {
      GroupSinkI &G = sink(L.SinkName).Group;
      std::size_t N = G.Buckets.size();
      for (std::size_t I = 0; I != N; ++I) {
        const auto &Bucket = G.Buckets[I];
        Value Elem = Value::makePair(
            Value(Bucket.first),
            Value(VecView{Bucket.second.data(),
                          static_cast<std::int64_t>(
                              Bucket.second.size())}));
        Locals[L.ElemVar] = std::move(Elem);
        Flow F = execList(S.Body);
        if (F == Flow::Break)
          break;
      }
      return Flow::Normal;
    }
    case LoopKind::GroupAggSink: {
      GroupAggSinkI &G = sink(L.SinkName).GroupAgg;
      if (G.Dense) {
        std::size_t N = G.DenseSlots.size();
        for (std::size_t I = 0; I != N; ++I) {
          Locals[L.KeyVar] = Value(static_cast<std::int64_t>(I));
          Locals[L.AccVar] = G.DenseSlots[I];
          Flow F = execList(S.Body);
          if (F == Flow::Break)
            break;
        }
        return Flow::Normal;
      }
      std::size_t N = G.Entries.size();
      for (std::size_t I = 0; I != N; ++I) {
        Locals[L.KeyVar] = Value(G.Entries[I].first);
        Locals[L.AccVar] = G.Entries[I].second;
        Flow F = execList(S.Body);
        if (F == Flow::Break)
          break;
      }
      return Flow::Normal;
    }
    case LoopKind::VecSink: {
      VecSinkI &V = sink(L.SinkName).Vec;
      std::size_t N = V.Elems.size();
      for (std::size_t I = 0; I != N; ++I) {
        Locals[L.ElemVar] = V.Elems[I];
        Flow F = execList(S.Body);
        if (F == Flow::Break)
          break;
      }
      return Flow::Normal;
    }
    }
    stenoUnreachable("bad LoopKind");
  }

  Flow execSourceLoop(const Stmt &S) {
    const LoopInfo &L = S.Loop;
    const query::SourceDesc &Src = L.Src;
    switch (Src.Kind) {
    case query::SourceKind::DoubleArray: {
      const expr::SourceBuffer &Buf = sourceAt(Src.Slot);
      assert((Buf.DoubleData || Buf.Count == 0) &&
             "double source not bound to doubles");
      for (std::int64_t I = 0; I != Buf.Count; ++I) {
        Locals[L.ElemVar] = Value(Buf.DoubleData[I]);
        if (execList(S.Body) == Flow::Break)
          break;
      }
      return Flow::Normal;
    }
    case query::SourceKind::Int64Array: {
      const expr::SourceBuffer &Buf = sourceAt(Src.Slot);
      assert((Buf.Int64Data || Buf.Count == 0) &&
             "int64 source not bound to int64s");
      for (std::int64_t I = 0; I != Buf.Count; ++I) {
        Locals[L.ElemVar] = Value(Buf.Int64Data[I]);
        if (execList(S.Body) == Flow::Break)
          break;
      }
      return Flow::Normal;
    }
    case query::SourceKind::PointArray: {
      const expr::SourceBuffer &Buf = sourceAt(Src.Slot);
      assert((Buf.DoubleData || Buf.Count == 0) &&
             "point source not bound to doubles");
      for (std::int64_t I = 0; I != Buf.Count; ++I) {
        Locals[L.ElemVar] =
            Value(VecView{Buf.DoubleData + I * Buf.Dim, Buf.Dim});
        if (execList(S.Body) == Flow::Break)
          break;
      }
      return Flow::Normal;
    }
    case query::SourceKind::Range: {
      std::int64_t Start = eval(Src.Start).asInt64();
      std::int64_t Count = eval(Src.CountE).asInt64();
      for (std::int64_t I = 0; I < Count; ++I) {
        Locals[L.ElemVar] = Value(Start + I);
        if (execList(S.Body) == Flow::Break)
          break;
      }
      return Flow::Normal;
    }
    case query::SourceKind::VecExpr: {
      VecView V = eval(Src.Vec).asVec();
      for (std::int64_t I = 0; I != V.Len; ++I) {
        Locals[L.ElemVar] = Value(V.Data[I]);
        if (execList(S.Body) == Flow::Break)
          break;
      }
      return Flow::Normal;
    }
    }
    stenoUnreachable("bad SourceKind");
  }

  SinkObj &sink(const std::string &Name) {
    auto It = Sinks.find(Name);
    if (It == Sinks.end())
      support::fatalError("undeclared sink '" + Name + "'");
    return It->second;
  }

  const cpptree::Program &P;
  obs::ProfileSink *Prof = nullptr;
  expr::Env Environment;
  const std::vector<expr::SourceBuffer> *Sources = nullptr;
  std::unordered_map<std::string, Value> Locals;
  std::unordered_map<std::string, SinkObj> Sinks;
  std::vector<Value> Rows;
  std::shared_ptr<std::deque<std::vector<double>>> Arena;
};

} // namespace

RunOutput interp::execute(const cpptree::Program &P, const RunInput &In) {
  static obs::Counter &Execs = obs::counter("interp.exec.count");
  obs::Span Span("interp.execute");
  RunOutput Out = Executor(P, In).run();
  Execs.inc();
  Span.arg("rows_out", static_cast<std::int64_t>(Out.Rows.size()));
  return Out;
}
