//===- support/StringUtil.h - Small string helpers -------------*- C++ -*-===//
///
/// \file
/// printf-style formatting into std::string, joining, and identifier
/// sanitization used by the code generator and source printers.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_SUPPORT_STRINGUTIL_H
#define STENO_SUPPORT_STRINGUTIL_H

#include <string>
#include <vector>

namespace steno {
namespace support {

/// printf-style formatting that returns a std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Replaces every character that cannot appear in a C++ identifier with '_'.
/// Used when deriving generated-code symbol names from user-provided names.
std::string sanitizeIdentifier(const std::string &Name);

/// Formats a double as a C++ literal that round-trips exactly (uses %.17g and
/// appends ".0" when the result would otherwise parse as an integer literal).
std::string doubleLiteral(double Value);

} // namespace support
} // namespace steno

#endif // STENO_SUPPORT_STRINGUTIL_H
