//===- support/TempFile.cpp -----------------------------------*- C++ -*-===//

#include "support/TempFile.h"
#include "support/Error.h"
#include "support/StringUtil.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

using namespace steno;

const std::string &support::processTempDir() {
  static const std::string Dir = [] {
    const char *Base = ::getenv("TMPDIR");
    std::string Path = strFormat("%s/steno-jit-%ld", Base ? Base : "/tmp",
                                 static_cast<long>(::getpid()));
    if (::mkdir(Path.c_str(), 0700) != 0 && errno != EEXIST)
      fatalError("cannot create temp directory " + Path + ": " +
                 std::strerror(errno));
    return Path;
  }();
  return Dir;
}

void support::writeFile(const std::string &Path, const std::string &Contents) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    fatalError("cannot open " + Path + " for writing: " +
               std::strerror(errno));
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), F);
  std::fclose(F);
  if (Written != Contents.size())
    fatalError("short write to " + Path);
}

std::string support::readFileOrEmpty(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return std::string();
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}
