//===- support/Error.h - Fatal errors and unreachable markers --*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal error-reporting helpers. Library code reports broken invariants
/// with assert/stenoUnreachable and unrecoverable environment failures (a
/// missing compiler, an unwritable temp directory) with fatalError. There is
/// no exception-based error path, following the LLVM coding standards.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_SUPPORT_ERROR_H
#define STENO_SUPPORT_ERROR_H

#include <string>

namespace steno {
namespace support {

/// Prints "steno fatal error: <Message>" to stderr and aborts the process.
/// Only for unrecoverable environment failures; broken invariants should use
/// assert or stenoUnreachable instead.
[[noreturn]] void fatalError(const std::string &Message);

/// Implementation hook for the stenoUnreachable macro.
[[noreturn]] void unreachableInternal(const char *Message, const char *File,
                                      unsigned Line);

} // namespace support
} // namespace steno

/// Marks a point in the code that must never be executed, printing \p MSG and
/// the source location before aborting if it ever is.
#define stenoUnreachable(MSG)                                                  \
  ::steno::support::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // STENO_SUPPORT_ERROR_H
