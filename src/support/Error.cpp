//===- support/Error.cpp --------------------------------------*- C++ -*-===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace steno;

void support::fatalError(const std::string &Message) {
  std::fprintf(stderr, "steno fatal error: %s\n", Message.c_str());
  std::fflush(stderr);
  std::abort();
}

void support::unreachableInternal(const char *Message, const char *File,
                                  unsigned Line) {
  std::fprintf(stderr, "steno unreachable executed at %s:%u: %s\n", File, Line,
               Message ? Message : "");
  std::fflush(stderr);
  std::abort();
}
