//===- support/StringUtil.cpp ---------------------------------*- C++ -*-===//

#include "support/StringUtil.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

using namespace steno;

std::string support::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string support::join(const std::vector<std::string> &Parts,
                          const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string support::sanitizeIdentifier(const std::string &Name) {
  std::string Out = Name.empty() ? std::string("anon") : Name;
  for (char &C : Out)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
      C = '_';
  if (std::isdigit(static_cast<unsigned char>(Out[0])))
    Out.insert(Out.begin(), '_');
  return Out;
}

std::string support::doubleLiteral(double Value) {
  if (std::isnan(Value))
    return "std::numeric_limits<double>::quiet_NaN()";
  if (std::isinf(Value))
    return Value > 0 ? "std::numeric_limits<double>::infinity()"
                     : "(-std::numeric_limits<double>::infinity())";
  std::string Out = strFormat("%.17g", Value);
  bool LooksIntegral = Out.find_first_of(".eE") == std::string::npos;
  if (LooksIntegral)
    Out += ".0";
  return Out;
}
