//===- support/Timing.h - Wall-clock timing helpers ------------*- C++ -*-===//
///
/// \file
/// A tiny monotonic stopwatch used by the benchmark harnesses and by the JIT
/// backend to report one-off compilation cost (paper §7.1).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_SUPPORT_TIMING_H
#define STENO_SUPPORT_TIMING_H

#include <chrono>

namespace steno {
namespace support {

/// Monotonic stopwatch. Starts running on construction.
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace support
} // namespace steno

#endif // STENO_SUPPORT_TIMING_H
