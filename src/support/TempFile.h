//===- support/TempFile.h - Temporary workspace for the JIT ----*- C++ -*-===//
///
/// \file
/// Creation of per-process temporary directories and files. The JIT backend
/// (paper §3.3) writes generated C++ sources and shared objects here.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_SUPPORT_TEMPFILE_H
#define STENO_SUPPORT_TEMPFILE_H

#include <string>

namespace steno {
namespace support {

/// Creates (once per process) and returns a private temporary directory,
/// e.g. /tmp/steno-jit-<pid>. Aborts via fatalError if creation fails.
const std::string &processTempDir();

/// Writes \p Contents to \p Path, replacing any existing file. Aborts via
/// fatalError on I/O failure.
void writeFile(const std::string &Path, const std::string &Contents);

/// Reads the entire file at \p Path. Returns an empty string if the file
/// does not exist or cannot be read.
std::string readFileOrEmpty(const std::string &Path);

} // namespace support
} // namespace steno

#endif // STENO_SUPPORT_TEMPFILE_H
