//===- support/Random.h - Deterministic PRNG for workloads -----*- C++ -*-===//
///
/// \file
/// SplitMix64-based pseudo-random generator. All benchmark and test inputs
/// are produced from explicit seeds so that every run of every harness is
/// reproducible (DESIGN.md §5, "Determinism").
///
//===----------------------------------------------------------------------===//

#ifndef STENO_SUPPORT_RANDOM_H
#define STENO_SUPPORT_RANDOM_H

#include <cmath>
#include <cstdint>

namespace steno {
namespace support {

/// SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014). Small, fast and
/// statistically strong enough for workload synthesis.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t Seed) : State(Seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() {
    std::uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [Lo, Hi).
  double nextDouble(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  std::uint64_t nextBelow(std::uint64_t Bound) { return next() % Bound; }

  /// Standard normal variate via Box-Muller. Used by the Group benchmark's
  /// mixture-of-Gaussians input (paper §7.1).
  double nextGaussian() {
    double U1 = nextDouble();
    double U2 = nextDouble();
    if (U1 < 1e-300)
      U1 = 1e-300;
    return std::sqrt(-2.0 * std::log(U1)) * std::cos(6.283185307179586 * U2);
  }

private:
  std::uint64_t State;
};

} // namespace support
} // namespace steno

#endif // STENO_SUPPORT_RANDOM_H
