//===- codegen/VecGen.h - Vectorized batch-loop code printer ---*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a vec::VecPlan as a self-contained C++ translation unit with
/// the same extern "C" ABI as cpptree::printProgram — the native half of
/// DESIGN.md §5i. Where the scalar printer fuses all operators into one
/// element-at-a-time loop, this printer emits one tight loop per operator
/// per batch: Trans writes a cache-resident column through a `__restrict`
/// pointer, Where compacts lane indices into a selection vector with a
/// branchless increment, Take/Skip trim the dense window, and the
/// aggregate folds the surviving lanes into a register accumulator. The
/// generator knows statically when the selection is still dense (only
/// Where breaks density), so each stage is specialized for dense-window
/// or selection-vector input — no per-lane mode test survives into the
/// generated code.
///
/// Trap and profile fidelity match the scalar TU: lambda bodies are
/// printed per lane with native short-circuit (&&, ||, ?:), lanes are
/// visited in source order within each stage, and the batch loop always
/// consumes the whole source, mirroring the scalar loops' `continue`
/// discipline. Per-operator profile slots move by lane counts once per
/// batch.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_CODEGEN_VECGEN_H
#define STENO_CODEGEN_VECGEN_H

#include "cpptree/Printer.h"
#include "vec/BatchExec.h"

#include <string>

namespace steno {
namespace codegen {

/// Renders \p Plan (which must have Ok == true) as a complete C++ source
/// file exposing `extern "C" void <EntryName>(const steno::rt::Captures*,
/// steno::rt::Emitter*)`. \p Slots must be the slot usage of the scalar
/// program for the same chain (the vec TU touches the same slots). When
/// \p Profile is set the TU carries per-batch profile accounting against
/// Plan.NumProfOps operator slots, flushed through Captures at exit.
std::string printVectorizedProgram(const vec::VecPlan &Plan,
                                   const cpptree::SlotUsage &Slots,
                                   const std::string &EntryName,
                                   bool Profile);

} // namespace codegen
} // namespace steno

#endif // STENO_CODEGEN_VECGEN_H
