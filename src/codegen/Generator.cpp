//===- codegen/Generator.cpp ----------------------------------*- C++ -*-===//

#include "codegen/Generator.h"
#include "expr/Analysis.h"
#include "expr/Cse.h"
#include "expr/Fold.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Error.h"
#include "support/StringUtil.h"

#include <cassert>
#include <map>

using namespace steno;
using namespace steno::codegen;
using cpptree::LoopInfo;
using cpptree::LoopKind;
using cpptree::SinkDecl;
using cpptree::SinkKind;
using cpptree::Stmt;
using cpptree::StmtList;
using cpptree::StmtRef;
using expr::Expr;
using expr::ExprRef;
using expr::Lambda;
using expr::Type;
using expr::TypeRef;
using quil::Chain;
using quil::NestedRole;
using quil::Op;
using quil::PredOp;
using quil::SinkOp;
using quil::Sym;

namespace {

class Generator {
public:
  explicit Generator(const codegen::GenOptions &Options)
      : Options(Options) {}

  cpptree::Program run(const Chain &C, std::string Name) {
    Program.Name = std::move(Name);
    Program.ResultType = C.Result;
    Program.ScalarResult = C.Scalar;
    // Sentinel frame: μ is the top-level body (α/ω unused until the first
    // Src opens a loop).
    Stack.push_back({&Program.Body, &Program.Body, &Program.Body, 0});
    processChain(C, /*Nested=*/false, NestedRole::Trans);
    assert(St == State::Returning && "query did not reach RETURNING");
    return std::move(Program);
  }

private:
  enum class State { Start, Iterating, Sinking, Aggregating, Returning };

  /// One (α, μ, ω) insertion-point triple (Figure 5 / Figure 9).
  /// LoopDepth counts the physical loops enclosing μ — distinct from the
  /// stack depth, which Figure 11's splice transition shrinks while the
  /// loops remain (it decides whether an early-exit may use break).
  struct Frame {
    StmtList *Alpha;
    StmtList *Mu;
    StmtList *Omega;
    unsigned LoopDepth = 0;
  };

  /// Bookkeeping for the most recent Agg operator, pending its Ret.
  struct AggInfo {
    std::string Var;
    TypeRef AccTy;
    Lambda Result;
  };

  /// Bookkeeping for the most recent Sink operator while in SINKING.
  struct SinkInfo {
    std::string Name;
    SinkDecl Decl;
    Lambda GbaResult; ///< GroupByAggregate result selector (key, acc) -> R.
    TypeRef OutElem;  ///< Element type produced when the sink is iterated.
    /// Profiled-op index of the sink (NoProf when unprofiled): its
    /// rows-out counter is deferred to the head of the sink-iteration
    /// loop.
    unsigned ProfOp = ~0u;
  };

  //===--------------------------------------------------------------===//
  // Naming and inlining
  //===--------------------------------------------------------------===//

  std::string fresh(const char *Base) {
    return support::strFormat("%s%u", Base, Counter++);
  }

  ExprRef curElemRef() const {
    assert(!CurElem.empty() && "no current element");
    return Expr::param(CurElem, CurElemTy);
  }

  /// Applies the active outer-parameter substitution (paper §5.2) to a
  /// free-standing expression (source bounds, seeds).
  ExprRef substOuter(const ExprRef &E) const {
    return expr::substituteParams(E, OuterSubst);
  }

  /// Inlines a unary lambda body with its parameter bound to \p A0 — this
  /// is the function-object elimination of Figure 6.
  ExprRef inline1(const Lambda &L, ExprRef A0) const {
    assert(L.valid() && L.arity() == 1 && "inline1 wants a unary lambda");
    std::map<std::string, ExprRef> M = OuterSubst;
    M[L.param(0).Name] = std::move(A0);
    return expr::substituteParams(L.body(), M);
  }

  /// Inlines a binary lambda body (Agg/Sink steps, Figure 7).
  ExprRef inline2(const Lambda &L, ExprRef A0, ExprRef A1) const {
    assert(L.valid() && L.arity() == 2 && "inline2 wants a binary lambda");
    std::map<std::string, ExprRef> M = OuterSubst;
    M[L.param(0).Name] = std::move(A0);
    M[L.param(1).Name] = std::move(A1);
    return expr::substituteParams(L.body(), M);
  }

  /// A lambda whose body has the outer substitution pre-applied (for
  /// lambdas that are carried into statements, e.g. sort keys).
  Lambda closeOver(const Lambda &L) const {
    if (!L.valid() || OuterSubst.empty())
      return L;
    std::map<std::string, ExprRef> M = OuterSubst;
    for (const expr::LambdaParam &P : L.params())
      M.erase(P.Name);
    return Lambda(L.params(), expr::substituteParams(L.body(), M));
  }

  //===--------------------------------------------------------------===//
  // Insertion points
  //===--------------------------------------------------------------===//

  StmtList &alpha() { return *Stack.back().Alpha; }
  StmtList &mu() { return *Stack.back().Mu; }
  StmtList &omega() { return *Stack.back().Omega; }

  /// Expression-level optimizations applied to each emitted expression:
  /// constant folding, then §9 CSE with the hoisted locals emitted at
  /// the current μ.
  ExprRef cse(ExprRef E) {
    if (Options.EnableConstFold)
      E = expr::foldConstants(E);
    if (!Options.EnableCse)
      return E;
    obs::Span Span("steno.cse");
    static obs::Counter &Hoisted = obs::counter("steno.cse.hoisted");
    expr::CseResult R = expr::eliminateCommonSubexprs(
        E, [this] { return fresh("cse"); });
    Hoisted.inc(R.Lets.size());
    for (const auto &[Name, Let] : R.Lets)
      mu().push_back(Stmt::declareLocal(Name, Let->type(), Let));
    return R.Rewritten;
  }

  //===--------------------------------------------------------------===//
  // Profiling instrumentation
  //===--------------------------------------------------------------===//

  static constexpr unsigned NoProf = ~0u;

  /// Registers profiled op K, emits its rows-in counter at the current μ
  /// and marks the μ tail; everything appended to μ until the matching
  /// profEnd() (including CSE-hoisted locals) becomes the op's timed
  /// body. No-op (returns NoProf) when profiling is off, so unprofiled
  /// plans carry zero instrumentation.
  unsigned profBegin(const char *Label, bool Timed,
                     std::uint64_t OpId = 0) {
    if (!Options.Profile)
      return NoProf;
    unsigned K = static_cast<unsigned>(Program.ProfOps.size());
    Program.ProfOps.push_back({Label, Stack.back().LoopDepth, Timed, OpId});
    mu().push_back(Stmt::profileCount(2 * K));
    ProfMark = mu().size();
    return K;
  }

  /// Wraps the μ statements appended since profBegin() in a ProfileTimed
  /// node, then emits the rows-out counter — placed after the timed body
  /// so an op that rejects its element (continue) never counts it as
  /// output; observed selectivity is exactly rows_out / rows_in. Sinks
  /// pass CountOut=false: their rows-out is the number of sink-loop
  /// iterations, counted at the head of the loop openPendingSinkLoop()
  /// later creates.
  void profEnd(unsigned K, bool CountOut = true) {
    if (K == NoProf)
      return;
    StmtList &M = mu();
    assert(ProfMark <= M.size() && "profile mark out of range");
    StmtList Body(M.begin() + static_cast<std::ptrdiff_t>(ProfMark),
                  M.end());
    M.erase(M.begin() + static_cast<std::ptrdiff_t>(ProfMark), M.end());
    M.push_back(Stmt::profileTimed(K, std::move(Body)));
    if (CountOut)
      M.push_back(Stmt::profileCount(2 * K + 1));
  }

  /// Untimed rows-out-only op (Src at its loop head, Ret at its emit
  /// site): registers the op and appends the counter to \p Where.
  void profCountOnly(const char *Label, StmtList &Where) {
    if (!Options.Profile)
      return;
    unsigned K = static_cast<unsigned>(Program.ProfOps.size());
    Program.ProfOps.push_back({Label, Stack.back().LoopDepth, false});
    Where.push_back(Stmt::profileCount(2 * K + 1));
  }

  //===--------------------------------------------------------------===//
  // Loop creation
  //===--------------------------------------------------------------===//

  /// Appends [Region α', Loop, Region ω'] at the current μ and pushes the
  /// new loop's frame (the Src transition; Figure 9).
  void openSourceLoop(const query::SourceDesc &Src, const TypeRef &ElemTy) {
    LoopInfo L;
    L.Kind = LoopKind::Source;
    L.Src = Src;
    if (Src.Start)
      L.Src.Start = substOuter(Src.Start);
    if (Src.CountE)
      L.Src.CountE = substOuter(Src.CountE);
    if (Src.Vec)
      L.Src.Vec = substOuter(Src.Vec);
    L.IndexVar = fresh("i");
    L.BoundVar = fresh("n");
    L.VecVar = fresh("v");
    L.ElemVar = fresh("elem");
    L.ElemType = ElemTy;
    pushLoop(std::move(L), ElemTy);
  }

  /// Creates the new loop that iterates the pending sink collection
  /// ("the code generator must insert a new loop that iterates through
  /// the sink collection", §4.2). The loop is inserted at the current ω
  /// and the insertion pointers are reset relative to it.
  void openPendingSinkLoop() {
    assert(St == State::Sinking && "no pending sink");
    SinkInfo Sink = std::move(PendingSink);
    LoopInfo L;
    L.SinkName = Sink.Name;
    L.Sink = Sink.Decl;
    L.IndexVar = fresh("i");
    L.BoundVar = fresh("n");

    StmtRef A = Stmt::region();
    StmtRef O = Stmt::region();
    StmtRef LoopStmt;

    switch (Sink.Decl.Kind) {
    case SinkKind::Group:
      L.Kind = LoopKind::GroupSink;
      L.ElemVar = fresh("elem");
      L.ElemType = Type::pairTy(Type::int64Ty(), Type::vecTy());
      break;
    case SinkKind::Vec:
      L.Kind = LoopKind::VecSink;
      L.ElemVar = fresh("elem");
      L.ElemType = Sink.Decl.ElemType;
      break;
    case SinkKind::GroupAgg:
      L.Kind = LoopKind::GroupAggSink;
      L.KeyVar = fresh("key");
      L.AccVar = fresh("acc");
      break;
    }

    TypeRef ElemTy = L.ElemType;
    std::string ElemVar = L.ElemVar;
    std::string KeyVar = L.KeyVar;
    std::string AccVar = L.AccVar;
    LoopStmt = Stmt::loop(std::move(L));

    omega().push_back(A);
    omega().push_back(LoopStmt);
    omega().push_back(O);
    // Reset the current triple relative to the new loop. ω sat inside
    // (LoopDepth - 1) loops; the new loop body is back at LoopDepth.
    Stack.back() = {&A->Body, &LoopStmt->Body, &O->Body,
                    Stack.back().LoopDepth};

    // The sink op's deferred rows-out: one count per collected entry,
    // at the head of the loop that iterates the sink.
    if (Sink.ProfOp != NoProf)
      mu().push_back(Stmt::profileCount(2 * Sink.ProfOp + 1));

    if (Sink.Decl.Kind == SinkKind::GroupAgg) {
      // Apply the (key, acc) -> R result selector to produce the element.
      assert(Sink.GbaResult.valid() && "GroupAgg sink lost its selector");
      ExprRef Elem =
          inline2(Sink.GbaResult, Expr::param(KeyVar, Type::int64Ty()),
                  Expr::param(AccVar, Sink.Decl.AccType));
      std::string Name = fresh("elem");
      mu().push_back(Stmt::declareLocal(Name, Sink.OutElem, Elem));
      CurElem = Name;
      CurElemTy = Sink.OutElem;
    } else {
      CurElem = ElemVar;
      CurElemTy = ElemTy;
    }
    St = State::Iterating;
  }

  void pushLoop(LoopInfo L, const TypeRef &ElemTy) {
    StmtRef A = Stmt::region();
    StmtRef O = Stmt::region();
    std::string ElemVar = L.ElemVar;
    StmtRef LoopStmt = Stmt::loop(std::move(L));
    mu().push_back(A);
    mu().push_back(LoopStmt);
    mu().push_back(O);
    Stack.push_back({&A->Body, &LoopStmt->Body, &O->Body,
                     Stack.back().LoopDepth + 1});
    CurElem = ElemVar;
    CurElemTy = ElemTy;
  }

  /// Figure 11: after a nested collection query returns, pop the nested
  /// and outer triples and push (α_outer, μ_nested, ω_outer) so the rest
  /// of the outer query runs inside the nested loop body.
  void spliceNestedIntoOuter() {
    assert(Stack.size() >= 3 && "flatten requires an enclosing loop");
    Frame NestedF = Stack.back();
    Stack.pop_back();
    Frame OuterF = Stack.back();
    Stack.pop_back();
    // μ stays in the nested loop body: its physical depth is the nested
    // frame's, even though the stack shrank.
    Stack.push_back(
        {OuterF.Alpha, NestedF.Mu, OuterF.Omega, NestedF.LoopDepth});
  }

  /// If a Sink was just generated, any further operator first needs the
  /// loop over the sink collection.
  void ensureIterating() {
    if (St == State::Sinking)
      openPendingSinkLoop();
    assert(St == State::Iterating && "operator outside ITERATING state");
  }

  //===--------------------------------------------------------------===//
  // Operator transitions
  //===--------------------------------------------------------------===//

  void processChain(const Chain &C, bool Nested, NestedRole Role) {
    for (const Op &O : C.Ops) {
      switch (O.S) {
      case Sym::Src:
        assert(St == State::Start && "Src must open the query");
        openSourceLoop(O.Src, O.OutElem);
        St = State::Iterating;
        // Untimed: the loop header isn't separable from the iteration
        // itself; rows-out at the body head counts produced elements.
        profCountOnly("Src", mu());
        break;
      case Sym::Trans:
        genTrans(O);
        break;
      case Sym::Pred:
        genPred(O);
        break;
      case Sym::Sink:
        genSink(O);
        break;
      case Sym::Agg:
        genAgg(O);
        break;
      case Sym::Nested:
        genNested(O);
        break;
      case Sym::Ret:
        genRet(Nested, Role);
        break;
      }
    }
  }

  void genTrans(const Op &O) {
    ensureIterating();
    unsigned PK = profBegin("Trans", /*Timed=*/true);
    std::string Name = fresh("elem");
    mu().push_back(Stmt::declareLocal(Name, O.OutElem,
                                      cse(inline1(O.Fn, curElemRef()))));
    CurElem = Name;
    CurElemTy = O.OutElem;
    profEnd(PK);
  }

  static const char *predLabel(PredOp P) {
    switch (P) {
    case PredOp::Where:
      return "Where";
    case PredOp::Take:
      return "Take";
    case PredOp::Skip:
      return "Skip";
    case PredOp::TakeWhile:
      return "TakeWhile";
    case PredOp::SkipWhile:
      return "SkipWhile";
    }
    stenoUnreachable("bad PredOp");
  }

  void genPred(const Op &O) {
    ensureIterating();
    unsigned PK = profBegin(predLabel(O.P), /*Timed=*/true,
                            O.P == PredOp::Where && O.Fn.valid()
                                ? expr::hashLambda(O.Fn)
                                : 0);
    TypeRef I64 = Type::int64Ty();
    switch (O.P) {
    case PredOp::Where: {
      ExprRef Cond = cse(inline1(O.Fn, curElemRef()));
      mu().push_back(Stmt::ifThen(Expr::unary(expr::UnaryOp::Not, Cond),
                                  {Stmt::continueStmt()}));
      break;
    }
    case PredOp::Take: {
      std::string Cnt = fresh("take");
      alpha().push_back(
          Stmt::declareLocal(Cnt, I64, Expr::constInt64(0)));
      ExprRef CntRef = Expr::param(Cnt, I64);
      mu().push_back(Stmt::ifThen(
          Expr::binary(expr::BinaryOp::Ge, CntRef, substOuter(O.Seed)),
          {Stmt::continueStmt()}));
      mu().push_back(Stmt::assign(
          Cnt, Expr::binary(expr::BinaryOp::Add, CntRef,
                            Expr::constInt64(1))));
      break;
    }
    case PredOp::Skip: {
      std::string Cnt = fresh("skip");
      alpha().push_back(
          Stmt::declareLocal(Cnt, I64, Expr::constInt64(0)));
      ExprRef CntRef = Expr::param(Cnt, I64);
      mu().push_back(Stmt::ifThen(
          Expr::binary(expr::BinaryOp::Lt, CntRef, substOuter(O.Seed)),
          {Stmt::assign(Cnt, Expr::binary(expr::BinaryOp::Add, CntRef,
                                          Expr::constInt64(1))),
           Stmt::continueStmt()}));
      break;
    }
    case PredOp::TakeWhile: {
      std::string Flag = fresh("done");
      alpha().push_back(
          Stmt::declareLocal(Flag, Type::boolTy(), Expr::constBool(false)));
      ExprRef FlagRef = Expr::param(Flag, Type::boolTy());
      mu().push_back(Stmt::ifThen(FlagRef, {Stmt::continueStmt()}));
      ExprRef Cond = inline1(O.Fn, curElemRef());
      mu().push_back(Stmt::ifThen(
          Expr::unary(expr::UnaryOp::Not, Cond),
          {Stmt::assign(Flag, Expr::constBool(true)),
           Stmt::continueStmt()}));
      break;
    }
    case PredOp::SkipWhile: {
      std::string Flag = fresh("skipping");
      alpha().push_back(
          Stmt::declareLocal(Flag, Type::boolTy(), Expr::constBool(true)));
      ExprRef FlagRef = Expr::param(Flag, Type::boolTy());
      ExprRef Cond = inline1(O.Fn, curElemRef());
      mu().push_back(Stmt::ifThen(
          FlagRef, {Stmt::ifThen(Cond, {Stmt::continueStmt()}),
                    Stmt::assign(Flag, Expr::constBool(false))}));
      break;
    }
    }
    // The rows-out counter lands after the timed body, so elements the
    // predicate rejects (continue) are counted in but not out.
    profEnd(PK);
  }

  static const char *sinkLabel(SinkOp K) {
    switch (K) {
    case SinkOp::GroupBy:
      return "GroupBy";
    case SinkOp::GroupByAggregate:
      return "GroupByAggregate";
    case SinkOp::OrderBy:
      return "OrderBy";
    case SinkOp::ToArray:
      return "ToArray";
    }
    stenoUnreachable("bad SinkOp");
  }

  void genSink(const Op &O) {
    ensureIterating();
    unsigned PK = profBegin(sinkLabel(O.K), /*Timed=*/true);
    std::string Name = fresh("sink");
    SinkDecl Decl;
    switch (O.K) {
    case SinkOp::GroupBy: {
      Decl.Kind = SinkKind::Group;
      alpha().push_back(Stmt::declareSink(Name, Decl));
      mu().push_back(Stmt::sinkGroupPut(Name, inline1(O.Fn, curElemRef()),
                                        curElemRef()));
      PendingSink = {Name, Decl, Lambda(), O.OutElem};
      break;
    }
    case SinkOp::GroupByAggregate: {
      Decl.Kind = SinkKind::GroupAgg;
      Decl.AccType = O.Seed->type();
      if (O.DenseKeys) {
        // §4.3's dense-key sink: the slot array is built at α, so the
        // per-element update needs no seed argument.
        Decl.DenseKeys = substOuter(O.DenseKeys);
        Decl.DenseSeed = substOuter(O.Seed);
      }
      alpha().push_back(Stmt::declareSink(Name, Decl));
      std::string Slot = fresh("slot");
      ExprRef Update = inline2(O.Fn2, Expr::param(Slot, Decl.AccType),
                               curElemRef());
      mu().push_back(Stmt::sinkGroupAggUpdate(
          Name, cse(inline1(O.Fn, curElemRef())),
          O.DenseKeys ? nullptr : substOuter(O.Seed), Slot, Update));
      Lambda Result = O.Fn3;
      if (!Result.valid()) {
        // Default selector: (key, acc) -> pair(key, acc).
        ExprRef K = Expr::param("__k", Type::int64Ty());
        ExprRef A = Expr::param("__a", Decl.AccType);
        Result = Lambda({{"__k", Type::int64Ty()}, {"__a", Decl.AccType}},
                        Expr::pairNew(K, A));
      }
      PendingSink = {Name, Decl, std::move(Result), O.OutElem};
      break;
    }
    case SinkOp::OrderBy:
    case SinkOp::ToArray: {
      Decl.Kind = SinkKind::Vec;
      Decl.ElemType = O.InElem;
      alpha().push_back(Stmt::declareSink(Name, Decl));
      mu().push_back(Stmt::sinkVecPush(Name, curElemRef()));
      if (O.K == SinkOp::OrderBy)
        omega().push_back(Stmt::sortSinkVec(Name, O.InElem,
                                            closeOver(O.Fn),
                                            /*Descending=*/false));
      PendingSink = {Name, Decl, Lambda(), O.OutElem};
      break;
    }
    }
    // Rows-out of a sink is the number of collected entries, counted at
    // the head of the sink-iteration loop once it exists.
    profEnd(PK, /*CountOut=*/false);
    PendingSink.ProfOp = PK;
    St = State::Sinking;
  }

  void genAgg(const Op &O) {
    ensureIterating();
    unsigned PK = profBegin("Agg", /*Timed=*/true);
    std::string Var = fresh("agg");
    TypeRef AccTy = O.Seed->type();
    alpha().push_back(Stmt::declareLocal(Var, AccTy, substOuter(O.Seed)));
    ExprRef Update =
        cse(inline2(O.Fn2, Expr::param(Var, AccTy), curElemRef()));
    mu().push_back(Stmt::assign(Var, Update));
    // Close the profiled region before the early exit so the stop-flag
    // check genEarlyExit may prepend to μ lands outside it (elements
    // skipped after the stop never reach the op, so they count nowhere).
    profEnd(PK);
    if (O.StopWhen.valid())
      genEarlyExit(O, Var, AccTy);
    CurAgg = {Var, AccTy, O.Fn3};
    AggResultTy = O.OutElem;
    St = State::Aggregating;
  }

  /// Short-circuiting aggregates (Any/All/First/Contains): once the stop
  /// condition holds the result is final. In the single-loop case the
  /// generated code breaks out; with flattened nested loops a break only
  /// exits the innermost loop, so a stop flag guards every element
  /// instead (correct at any nesting depth, with the remaining outer
  /// iterations reduced to flag checks).
  void genEarlyExit(const Op &O, const std::string &Var,
                    const TypeRef &AccTy) {
    ExprRef Stop = inline1(O.StopWhen, Expr::param(Var, AccTy));
    if (Stack.back().LoopDepth == 1) {
      mu().push_back(Stmt::ifThen(Stop, {Stmt::breakStmt()}));
      return;
    }
    std::string Flag = fresh("stop");
    alpha().push_back(
        Stmt::declareLocal(Flag, Type::boolTy(), Expr::constBool(false)));
    ExprRef FlagRef = Expr::param(Flag, Type::boolTy());
    mu().push_back(
        Stmt::ifThen(Stop, {Stmt::assign(Flag, Expr::constBool(true))}));
    mu().insert(mu().begin(),
                Stmt::ifThen(FlagRef, {Stmt::continueStmt()}));
  }

  void genNested(const Op &O) {
    ensureIterating();
    std::string SavedElem = CurElem;
    TypeRef SavedTy = CurElemTy;

    // §5.2: rewrite references to the outer element inside the nested
    // query. (Shadowing an existing binding of the same name is
    // restored afterwards.)
    ExprRef Shadowed;
    auto It = OuterSubst.find(O.OuterParam);
    if (It != OuterSubst.end())
      Shadowed = It->second;
    OuterSubst[O.OuterParam] = curElemRef();

    St = State::Start;
    processChain(*O.NestedChain, /*Nested=*/true, O.Role);

    if (Shadowed)
      OuterSubst[O.OuterParam] = Shadowed;
    else
      OuterSubst.erase(O.OuterParam);

    switch (O.Role) {
    case NestedRole::Trans:
      // CurElem was set by the nested Ret (Figure 10).
      break;
    case NestedRole::Pred: {
      ExprRef Cond = curElemRef();
      assert(Cond->type()->isBool() && "nested predicate must be bool");
      mu().push_back(Stmt::ifThen(Expr::unary(expr::UnaryOp::Not, Cond),
                                  {Stmt::continueStmt()}));
      CurElem = SavedElem;
      CurElemTy = SavedTy;
      break;
    }
    case NestedRole::Flatten:
      // Figure 11 already spliced the frames; the nested element is the
      // current element.
      break;
    }
    St = State::Iterating;
  }

  void genRet(bool Nested, NestedRole Role) {
    switch (St) {
    case State::Aggregating: {
      ExprRef Result = CurAgg.Result.valid()
                           ? inline1(CurAgg.Result,
                                     Expr::param(CurAgg.Var, CurAgg.AccTy))
                           : Expr::param(CurAgg.Var, CurAgg.AccTy);
      if (!Nested) {
        omega().push_back(Stmt::emit(Result));
        profCountOnly("Ret", omega());
      } else {
        // Figure 10(a): elem_{i+1} = agg_j in the nested postlude, then
        // pop one triple.
        std::string Name = fresh("elem");
        omega().push_back(
            Stmt::declareLocal(Name, AggResultTy, Result));
        Stack.pop_back();
        CurElem = Name;
        CurElemTy = AggResultTy;
      }
      break;
    }
    case State::Sinking: {
      if (!Nested) {
        openPendingSinkLoop();
        mu().push_back(Stmt::emit(curElemRef()));
        profCountOnly("Ret", mu());
      } else if (Role == NestedRole::Flatten) {
        openPendingSinkLoop();
        spliceNestedIntoOuter();
      } else {
        // Figure 10(b): elem_{i+1} = sink_k. Only a double Vec sink has a
        // view type in this type system.
        assert(PendingSink.Decl.Kind == SinkKind::Vec &&
               PendingSink.Decl.ElemType->isDouble() &&
               "nested sink result must be a double collection");
        std::string Name = fresh("elem");
        omega().push_back(Stmt::declareSinkView(Name, PendingSink.Name));
        Stack.pop_back();
        CurElem = Name;
        CurElemTy = Type::vecTy();
      }
      break;
    }
    case State::Iterating: {
      if (!Nested) {
        // The non-nested ITERATING Ret is the paper's `yield return`
        // (Figure 8(c)); with the emitter protocol the element row is
        // pushed to the caller from the loop body.
        mu().push_back(Stmt::emit(curElemRef()));
        profCountOnly("Ret", mu());
      } else {
        assert(Role == NestedRole::Flatten &&
               "nested Trans/Pred query must end with Agg or Sink");
        spliceNestedIntoOuter();
      }
      break;
    }
    case State::Start:
    case State::Returning:
      stenoUnreachable("Ret in invalid state");
    }
    St = State::Returning;
  }

  codegen::GenOptions Options;
  cpptree::Program Program;
  State St = State::Start;
  std::vector<Frame> Stack;
  std::string CurElem;
  TypeRef CurElemTy;
  AggInfo CurAgg;
  TypeRef AggResultTy;
  SinkInfo PendingSink;
  std::map<std::string, ExprRef> OuterSubst;
  unsigned Counter = 0;
  /// μ length at the last profBegin(); profEnd() wraps [ProfMark, end).
  std::size_t ProfMark = 0;
};

} // namespace

cpptree::Program codegen::generate(const Chain &C,
                                   const std::string &EntryName,
                                   const GenOptions &Options) {
  return Generator(Options).run(C, EntryName);
}
