//===- codegen/Generator.h - QUIL -> loop-code automaton -------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The code-generator automaton (paper §4.2 and §5): a deterministic
/// pushdown automaton whose input is a QUIL chain and whose output is
/// loop-based imperative code (a cpptree::Program). The finite control is
/// the Figure 4 state machine; the stack holds (α, μ, ω) insertion-point
/// triples (Figure 9), one per open loop. Iterator fusion falls out of
/// splicing each operator's element-wise code into the current loop body
/// at μ; nested-loop generation falls out of the stack discipline,
/// including the Figure 11 "pop two, push (α_outer, μ_nested, ω_outer)"
/// transition that lets downstream operators of the outer query consume
/// nested elements in place.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_CODEGEN_GENERATOR_H
#define STENO_CODEGEN_GENERATOR_H

#include "cpptree/Tree.h"
#include "quil/Quil.h"

#include <string>

namespace steno {
namespace codegen {

/// Code-generation knobs.
struct GenOptions {
  /// Hoist repeated pure subexpressions into locals (§9's CSE; sound for
  /// this side-effect-free expression language, lazy contexts respected).
  bool EnableCse = true;
  /// Fold literal subexpressions and boolean/conditional identities
  /// before emission.
  bool EnableConstFold = true;
  /// Instrument each operator with profile hooks (ProfileCount /
  /// ProfileTimed statements + Program::ProfOps descriptors). Off by
  /// default: unprofiled plans carry zero instrumentation.
  bool Profile = false;
};

/// Generates the fused loop program for \p Chain. \p EntryName becomes the
/// extern "C" symbol of the printed translation unit. The chain must be
/// grammar-valid (quil::validate); invariant violations abort.
cpptree::Program generate(const quil::Chain &Chain,
                          const std::string &EntryName = "steno_query",
                          const GenOptions &Options = GenOptions());

} // namespace codegen
} // namespace steno

#endif // STENO_CODEGEN_GENERATOR_H
