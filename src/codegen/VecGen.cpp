//===- codegen/VecGen.cpp -------------------------------------*- C++ -*-===//

#include "codegen/VecGen.h"
#include "expr/CxxPrinter.h"
#include "support/Error.h"
#include "support/StringUtil.h"

#include <cassert>
#include <cstdarg>

using namespace steno;
using namespace steno::codegen;
using namespace steno::vec;
using expr::Type;
using expr::TypeKind;
using support::strFormat;

namespace {

/// Stack arrays hold the batch columns; cap the generated batch size so a
/// deep chain of Trans stages stays within a sane frame (4096 lanes x 8
/// bytes = 32 KiB per column). The interpreter path has no such cap (its
/// columns live in a heap scratch pool).
constexpr std::size_t MaxNativeBatch = 4096;

const char *kindCxx(TypeKind K) {
  switch (K) {
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int64:
    return "std::int64_t";
  case TypeKind::Double:
    return "double";
  case TypeKind::Vec:
  case TypeKind::Pair:
    break;
  }
  stenoUnreachable("non-scalar column type in a vec plan");
}

/// Prints the batch-loop translation unit for one VecPlan.
class VecPrinter {
public:
  VecPrinter(const VecPlan &P, const cpptree::SlotUsage &Slots,
             const std::string &Entry, bool Profile)
      : P(P), Slots(Slots), Entry(Entry),
        Prof(Profile && P.NumProfOps != 0),
        VB(P.BatchSize < MaxNativeBatch ? P.BatchSize : MaxNativeBatch) {
    // Same name-resolution hooks as the scalar printer (cpptree/Printer):
    // captures through the Captures block, sources through the slot
    // locals declared in the preamble.
    Base.Param = [](const std::string &Name) { return Name; };
    Base.Capture = [](unsigned Slot, const Type &Ty) {
      switch (Ty.kind()) {
      case TypeKind::Bool:
        return strFormat("Caps_->Values[%u].B", Slot);
      case TypeKind::Int64:
        return strFormat("Caps_->Values[%u].I", Slot);
      case TypeKind::Double:
        return strFormat("Caps_->Values[%u].D", Slot);
      case TypeKind::Vec:
        return strFormat(
            "steno::rt::VecView{Caps_->Values[%u].VData, "
            "Caps_->Values[%u].VLen}",
            Slot, Slot);
      case TypeKind::Pair:
        break;
      }
      stenoUnreachable("pair-typed captures are not supported");
    };
    Base.SourceData = [](unsigned Slot) {
      return strFormat("src%u_d", Slot);
    };
    Base.SourceCount = [](unsigned Slot) {
      return strFormat("src%u_count", Slot);
    };
  }

  std::string run() {
    preamble();
    prologue();
    sourceSetup();
    batchState();
    line("for (std::int64_t vbase_ = 0; vbase_ < vN_; vbase_ += VB_) {");
    ++Indent;
    line("const std::int64_t vm_ = vN_ - vbase_ < VB_ ? vN_ - vbase_ : "
         "VB_;");
    if (Prof)
      line("prof_c_[%zu] += static_cast<std::uint64_t>(vm_);",
           2 * P.SrcProfSlot + 1);
    line("std::int64_t vlo_ = 0;");
    line("std::int64_t vhi_ = vm_;");
    line("(void)vlo_; (void)vhi_;");
    if (anyWhere())
      line("std::int64_t vn_ = 0;");
    Sparse = false;
    Cur = sourceAccessor();
    for (std::size_t I = 0; I != P.Steps.size(); ++I)
      printStep(I);
    if (P.Agg != VAggMode::None)
      printAggFold();
    else
      printEmitLoop();
    --Indent;
    line("}");
    if (P.Agg != VAggMode::None)
      printScalarEpilogue();
    profFlush();
    Indent = 0;
    line("}");
    return std::move(Out);
  }

private:
  //===--------------------------------------------------------------===//
  // Low-level emission
  //===--------------------------------------------------------------===//

  void blank() { Out += "\n"; }

  void line(const char *Fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list Args;
    va_start(Args, Fmt);
    int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
    va_end(Args);
    std::string Text(Needed < 0 ? 0 : static_cast<size_t>(Needed), '\0');
    va_start(Args, Fmt);
    std::vsnprintf(Text.data(), Text.size() + 1, Fmt, Args);
    va_end(Args);
    for (int I = 0; I < Indent; ++I)
      Out += "  ";
    Out += Text;
    Out += "\n";
  }

  /// Prints \p E with free occurrences of \p ElemName replaced by the
  /// current lane accessor (native short-circuit keeps lazy contexts and
  /// trap order identical to scalar execution).
  std::string elemExpr(const expr::ExprRef &E, const std::string &ElemName) {
    assert(E && "printing a null expression");
    expr::CxxNames Names = Base;
    std::string Acc = Cur;
    Names.Param = [ElemName, Acc](const std::string &Name) {
      return Name == ElemName ? Acc : Name;
    };
    return expr::printExprCxx(*E, Names);
  }

  /// Prints a param-free expression (counts, seeds, source bounds).
  std::string plainExpr(const expr::ExprRef &E) {
    assert(E && "printing a null expression");
    return expr::printExprCxx(*E, Base);
  }

  //===--------------------------------------------------------------===//
  // Preamble / prologue
  //===--------------------------------------------------------------===//

  void preamble() {
    line("// Generated by Steno (vectorized batch loops, DESIGN.md "
         "[5i]).");
    line("// Query entry point: %s", Entry.c_str());
    line("#include \"steno/Rt.h\"");
    blank();
    line("#include <algorithm>");
    line("#include <cmath>");
    line("#include <cstdint>");
    line("#include <cstdlib>");
    blank();
    line("extern \"C\" void %s(const steno::rt::Captures *Caps_,",
         Entry.c_str());
    line("                     steno::rt::Emitter *Out_) {");
    Indent = 1;
    line("(void)Caps_;");
    line("(void)Out_;");
    for (unsigned Slot : Slots.SourceSlots) {
      line("const double *src%u_d = Caps_->Sources[%u].D;", Slot, Slot);
      line("const std::int64_t *src%u_i = Caps_->Sources[%u].I;", Slot,
           Slot);
      line("const std::int64_t src%u_count = Caps_->Sources[%u].Count;",
           Slot, Slot);
      line("const std::int64_t src%u_dim = Caps_->Sources[%u].Dim;", Slot,
           Slot);
      line("(void)src%u_d; (void)src%u_i; (void)src%u_count; "
           "(void)src%u_dim;",
           Slot, Slot, Slot, Slot);
    }
    if (Prof) {
      line("std::uint64_t prof_c_[%zu] = {};", P.NumProfOps * 2);
      line("std::uint64_t prof_ns_[%zu] = {};", P.NumProfOps);
    }
  }

  /// Per-op counter/flag seeds and the aggregate seed, in chain-op order
  /// (the batched interpreter's prologue discipline: op seeds first, then
  /// Range bounds).
  void prologue() {
    for (std::size_t I = 0; I != P.Steps.size(); ++I) {
      const VStep &S = P.Steps[I];
      switch (S.K) {
      case VStepKind::Take:
      case VStepKind::Skip:
        line("std::int64_t vcnt%zu_ = %s;", I, plainExpr(S.Count).c_str());
        break;
      case VStepKind::TakeWhile:
        line("bool vdone%zu_ = false;", I);
        break;
      case VStepKind::SkipWhile:
        line("bool vskip%zu_ = true;", I);
        break;
      case VStepKind::Trans:
      case VStepKind::Where:
        break;
      }
    }
    if (P.Agg != VAggMode::None)
      line("%s vacc_ = %s;", accCxx().c_str(),
           plainExpr(P.AggSeed).c_str());
  }

  void sourceSetup() {
    const query::SourceDesc &Src = P.Src;
    switch (Src.Kind) {
    case query::SourceKind::DoubleArray:
      line("const double *__restrict vsrc_ = src%u_d;", Src.Slot);
      line("const std::int64_t vN_ = src%u_count;", Src.Slot);
      line("(void)vsrc_;");
      return;
    case query::SourceKind::Int64Array:
      line("const std::int64_t *__restrict vsrc_ = src%u_i;", Src.Slot);
      line("const std::int64_t vN_ = src%u_count;", Src.Slot);
      line("(void)vsrc_;");
      return;
    case query::SourceKind::Range:
      line("const std::int64_t vNr_ = %s;", plainExpr(Src.CountE).c_str());
      line("const std::int64_t vN_ = vNr_ < 0 ? 0 : vNr_;");
      // Start is evaluated lazily, only when the range is non-empty —
      // the scalar loop reads it inside the first iteration.
      line("std::int64_t vstart_ = 0;");
      line("if (vN_ > 0)");
      line("  vstart_ = %s;", plainExpr(Src.Start).c_str());
      line("(void)vstart_;");
      return;
    case query::SourceKind::VecExpr:
      line("const steno::rt::VecView vview_ = %s;",
           plainExpr(Src.Vec).c_str());
      line("const double *__restrict vsrc_ = vview_.Data;");
      line("const std::int64_t vN_ = vview_.Len;");
      line("(void)vsrc_;");
      return;
    case query::SourceKind::PointArray:
      break;
    }
    stenoUnreachable("unvectorizable source kind in a vec plan");
  }

  void batchState() {
    line("constexpr std::int64_t VB_ = %zu;", VB);
    for (std::size_t I = 0; I != P.Steps.size(); ++I)
      if (P.Steps[I].K == VStepKind::Trans)
        line("alignas(64) %s vcol%zu_[VB_];", kindCxx(P.Steps[I].OutK), I);
    if (anyWhere())
      line("std::int32_t vsel_[VB_];");
  }

  bool anyWhere() const {
    for (const VStep &S : P.Steps)
      if (S.K == VStepKind::Where)
        return true;
    return false;
  }

  std::string sourceAccessor() const {
    switch (P.Src.Kind) {
    case query::SourceKind::DoubleArray:
    case query::SourceKind::Int64Array:
    case query::SourceKind::VecExpr:
      return "vsrc_[vbase_ + vj_]";
    case query::SourceKind::Range:
      return "(vstart_ + vbase_ + vj_)";
    case query::SourceKind::PointArray:
      break;
    }
    stenoUnreachable("unvectorizable source kind in a vec plan");
  }

  //===--------------------------------------------------------------===//
  // Per-batch stages
  //===--------------------------------------------------------------===//

  std::string liveCount() const {
    return Sparse ? std::string("vn_") : std::string("(vhi_ - vlo_)");
  }

  void profIn(std::size_t Slot) {
    if (Prof)
      line("prof_c_[%zu] += static_cast<std::uint64_t>(%s);", 2 * Slot,
           liveCount().c_str());
  }

  void profOut(std::size_t Slot) {
    if (Prof)
      line("prof_c_[%zu] += static_cast<std::uint64_t>(%s);",
           2 * Slot + 1, liveCount().c_str());
  }

  void timerOpen(std::size_t I, std::size_t Slot) {
    if (Prof)
      line("steno::rt::ProfTimer vt%zu_(&prof_ns_[%zu]);", I, Slot);
  }

  void timerClose(std::size_t I) {
    if (Prof)
      line("vt%zu_.stop();", I);
  }

  /// Opens the per-lane loop for the current selection mode; the loop
  /// body sees the lane index as vj_.
  void openLaneLoop() {
    if (Sparse) {
      line("for (std::int64_t vs_ = 0; vs_ < vn_; ++vs_) {");
      ++Indent;
      line("const std::int64_t vj_ = vsel_[vs_];");
    } else {
      line("for (std::int64_t vj_ = vlo_; vj_ < vhi_; ++vj_) {");
      ++Indent;
    }
  }

  void closeLaneLoop() {
    --Indent;
    line("}");
  }

  void printStep(std::size_t I) {
    const VStep &S = P.Steps[I];
    profIn(S.ProfSlot);
    timerOpen(I, S.ProfSlot);
    switch (S.K) {
    case VStepKind::Trans:
      printTrans(I, S);
      break;
    case VStepKind::Where:
      printWhere(S);
      break;
    case VStepKind::Take:
      printTake(I);
      break;
    case VStepKind::Skip:
      printSkip(I);
      break;
    case VStepKind::TakeWhile:
      printTakeWhile(I, S);
      break;
    case VStepKind::SkipWhile:
      printSkipWhile(I, S);
      break;
    }
    timerClose(I);
    profOut(S.ProfSlot);
  }

  void printTrans(std::size_t I, const VStep &S) {
    openLaneLoop();
    line("vcol%zu_[vj_] = %s;", I,
         elemExpr(S.Body.Root, S.ElemName).c_str());
    closeLaneLoop();
    Cur = strFormat("vcol%zu_[vj_]", I);
  }

  void printWhere(const VStep &S) {
    if (!Sparse) {
      // Dense -> sparse: compact surviving lane indices with a branchless
      // increment; the predicate still runs per lane in source order.
      line("vn_ = 0;");
      line("for (std::int64_t vj_ = vlo_; vj_ < vhi_; ++vj_) {");
      ++Indent;
      line("vsel_[vn_] = static_cast<std::int32_t>(vj_);");
      line("vn_ += (%s) ? 1 : 0;", elemExpr(S.Body.Root, S.ElemName).c_str());
      --Indent;
      line("}");
      Sparse = true;
      return;
    }
    // Sparse: in-place compaction (write index trails the read index).
    line("{");
    ++Indent;
    line("std::int64_t vk_ = 0;");
    line("for (std::int64_t vs_ = 0; vs_ < vn_; ++vs_) {");
    ++Indent;
    line("const std::int64_t vj_ = vsel_[vs_];");
    line("vsel_[vk_] = static_cast<std::int32_t>(vj_);");
    line("vk_ += (%s) ? 1 : 0;", elemExpr(S.Body.Root, S.ElemName).c_str());
    --Indent;
    line("}");
    line("vn_ = vk_;");
    --Indent;
    line("}");
  }

  /// Take/Skip window math over the remaining-count counter (negative
  /// counts clamp to zero, like the scalar `cnt >= n` test).
  void printTake(std::size_t I) {
    line("{");
    ++Indent;
    line("std::int64_t vk_ = vcnt%zu_ < 0 ? 0 : vcnt%zu_;", I, I);
    line("if (vk_ > %s) vk_ = %s;", liveCount().c_str(),
         liveCount().c_str());
    if (Sparse)
      line("vn_ = vk_;");
    else
      line("vhi_ = vlo_ + vk_;");
    line("vcnt%zu_ -= vk_;", I);
    --Indent;
    line("}");
  }

  void printSkip(std::size_t I) {
    line("{");
    ++Indent;
    line("std::int64_t vk_ = vcnt%zu_ < 0 ? 0 : vcnt%zu_;", I, I);
    line("if (vk_ > %s) vk_ = %s;", liveCount().c_str(),
         liveCount().c_str());
    if (Sparse) {
      line("for (std::int64_t vs_ = vk_; vs_ < vn_; ++vs_)");
      line("  vsel_[vs_ - vk_] = vsel_[vs_];");
      line("vn_ -= vk_;");
    } else {
      line("vlo_ += vk_;");
    }
    line("vcnt%zu_ -= vk_;", I);
    --Indent;
    line("}");
  }

  void printTakeWhile(std::size_t I, const VStep &S) {
    line("if (vdone%zu_) {", I);
    line("  %s;", Sparse ? "vn_ = 0" : "vhi_ = vlo_");
    line("} else {");
    ++Indent;
    // Sequential scan, exactly the scalar element order: the predicate
    // runs on each lane until (and including) the first false.
    if (Sparse) {
      line("std::int64_t vs_ = 0;");
      line("for (; vs_ < vn_; ++vs_) {");
      ++Indent;
      line("const std::int64_t vj_ = vsel_[vs_];");
      line("if (!(%s))", elemExpr(S.Body.Root, S.ElemName).c_str());
      line("  break;");
      --Indent;
      line("}");
      line("if (vs_ < vn_) {");
      line("  vdone%zu_ = true;", I);
      line("  vn_ = vs_;");
      line("}");
    } else {
      line("std::int64_t vj_ = vlo_;");
      line("for (; vj_ < vhi_; ++vj_)");
      line("  if (!(%s))", elemExpr(S.Body.Root, S.ElemName).c_str());
      line("    break;");
      line("if (vj_ < vhi_) {");
      line("  vdone%zu_ = true;", I);
      line("  vhi_ = vj_;");
      line("}");
    }
    --Indent;
    line("}");
  }

  void printSkipWhile(std::size_t I, const VStep &S) {
    line("if (vskip%zu_) {", I);
    ++Indent;
    if (Sparse) {
      line("std::int64_t vs_ = 0;");
      line("for (; vs_ < vn_; ++vs_) {");
      ++Indent;
      line("const std::int64_t vj_ = vsel_[vs_];");
      line("if (!(%s))", elemExpr(S.Body.Root, S.ElemName).c_str());
      line("  break;");
      --Indent;
      line("}");
      line("if (vs_ < vn_)");
      line("  vskip%zu_ = false;", I);
      line("for (std::int64_t vt_ = vs_; vt_ < vn_; ++vt_)");
      line("  vsel_[vt_ - vs_] = vsel_[vt_];");
      line("vn_ -= vs_;");
    } else {
      line("std::int64_t vj_ = vlo_;");
      line("for (; vj_ < vhi_; ++vj_)");
      line("  if (!(%s))", elemExpr(S.Body.Root, S.ElemName).c_str());
      line("    break;");
      line("if (vj_ < vhi_)");
      line("  vskip%zu_ = false;", I);
      line("vlo_ = vj_;");
    }
    --Indent;
    line("}");
  }

  //===--------------------------------------------------------------===//
  // Tail: aggregate fold / row emission / scalar epilogue
  //===--------------------------------------------------------------===//

  std::string accCxx() const {
    if (P.Agg == VAggMode::Reduce)
      return kindCxx(P.AccK);
    return P.AggStep.param(0).Ty->cxxName();
  }

  void printAggFold() {
    const std::size_t TI = P.Steps.size(); // unique timer suffix
    profIn(P.AggProfSlot);
    timerOpen(TI, P.AggProfSlot);
    openLaneLoop();
    if (P.Agg == VAggMode::Reduce) {
      std::string G = elemExpr(P.AggArg.Root, aggElemName());
      switch (P.ROp) {
      case VReduceOp::Add:
        line("vacc_ += %s;", G.c_str());
        break;
      case VReduceOp::Sub:
        line("vacc_ -= %s;", G.c_str());
        break;
      case VReduceOp::Mul:
        line("vacc_ *= %s;", G.c_str());
        break;
      case VReduceOp::Min:
        line("{ const %s vx_ = %s;", kindCxx(P.AccK), G.c_str());
        if (P.AccFirst)
          line("  vacc_ = vacc_ < vx_ ? vacc_ : vx_; }");
        else
          line("  vacc_ = vx_ < vacc_ ? vx_ : vacc_; }");
        break;
      case VReduceOp::Max:
        line("{ const %s vx_ = %s;", kindCxx(P.AccK), G.c_str());
        if (P.AccFirst)
          line("  vacc_ = vacc_ > vx_ ? vacc_ : vx_; }");
        else
          line("  vacc_ = vx_ > vacc_ ? vx_ : vacc_; }");
        break;
      }
    } else {
      // Generic fold: inline the full Fn2 body with acc -> vacc_ and the
      // element parameter -> the lane accessor.
      line("vacc_ = %s;", aggStepExpr().c_str());
    }
    closeLaneLoop();
    timerClose(TI);
    profOut(P.AggProfSlot);
  }

  std::string aggElemName() const {
    return P.AggStep.arity() >= 2 ? P.AggStep.param(1).Name
                                  : std::string();
  }

  std::string aggStepExpr() {
    const std::string AccName = P.AggStep.param(0).Name;
    const std::string ElemName = P.AggStep.param(1).Name;
    expr::CxxNames Names = Base;
    std::string Acc = Cur;
    Names.Param = [AccName, ElemName, Acc](const std::string &Name) {
      if (Name == AccName)
        return std::string("vacc_");
      return Name == ElemName ? Acc : Name;
    };
    return expr::printExprCxx(*P.AggStep.body(), Names);
  }

  void printEmitLoop() {
    openLaneLoop();
    line("steno::rt::emitRow(Out_, %s);", Cur.c_str());
    closeLaneLoop();
    profOut(P.RetProfSlot);
  }

  void printScalarEpilogue() {
    if (P.AggResult.valid()) {
      const std::string AccName = P.AggResult.param(0).Name;
      expr::CxxNames Names = Base;
      Names.Param = [AccName](const std::string &Name) {
        return Name == AccName ? std::string("vacc_") : Name;
      };
      line("steno::rt::emitRow(Out_, %s);",
           expr::printExprCxx(*P.AggResult.body(), Names).c_str());
    } else {
      line("steno::rt::emitRow(Out_, vacc_);");
    }
    if (Prof)
      line("prof_c_[%zu] += 1;", 2 * P.RetProfSlot + 1);
  }

  void profFlush() {
    if (!Prof)
      return;
    line("if (Caps_->ProfCounts)");
    line("  for (std::size_t pi_ = 0; pi_ != %zu; ++pi_)",
         P.NumProfOps * 2);
    line("    Caps_->ProfCounts[pi_] += prof_c_[pi_];");
    line("if (Caps_->ProfNanos)");
    line("  for (std::size_t pi_ = 0; pi_ != %zu; ++pi_)", P.NumProfOps);
    line("    Caps_->ProfNanos[pi_] += prof_ns_[pi_];");
  }

  const VecPlan &P;
  const cpptree::SlotUsage &Slots;
  std::string Entry;
  bool Prof;
  std::size_t VB;
  expr::CxxNames Base;
  std::string Out;
  int Indent = 0;
  bool Sparse = false;
  std::string Cur; ///< Lane accessor for the current element (uses vj_).
};

} // namespace

std::string codegen::printVectorizedProgram(const VecPlan &Plan,
                                            const cpptree::SlotUsage &Slots,
                                            const std::string &EntryName,
                                            bool Profile) {
  assert(Plan.Ok && "printing an unvectorizable plan");
  return VecPrinter(Plan, Slots, EntryName, Profile).run();
}
