//===- obs/Trace.h - Scoped spans + Chrome trace export --------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped timing spans with thread-local nesting, recorded into a bounded
/// lock-free buffer and exported as Chrome trace-event JSON — loadable in
/// chrome://tracing or https://ui.perfetto.dev. The compile pipeline, the
/// JIT, query execution and the dryad scheduler are all instrumented, so
///
/// \code
///   STENO_TRACE=trace.json ./examples/quickstart
/// \endcode
///
/// produces a flame view of lower/validate/specialize/codegen, the
/// compiler invocation vs. dlopen split, and every run().
///
/// Tracing is off by default and compiled down to one relaxed atomic load
/// and a branch per span when disabled. Enable it with the STENO_TRACE
/// environment variable (value = output path, written at process exit) or
/// programmatically with setTracingEnabled(true) + writeTrace()/traceJson().
/// The event buffer holds STENO_TRACE_BUF events (default 65536); events
/// past capacity are dropped and counted, never reallocated mid-run.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_OBS_TRACE_H
#define STENO_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace steno {
namespace obs {

namespace detail {
extern std::atomic<bool> TraceEnabled;
} // namespace detail

/// True when spans are currently being recorded. One relaxed load.
inline bool tracingEnabled() {
  return detail::TraceEnabled.load(std::memory_order_relaxed);
}

/// RAII span: times the enclosing scope and records one complete ("ph":"X")
/// trace event on destruction. Spans nest per thread; the nesting depth is
/// recorded with the event (Chrome reconstructs the flame from ts/dur, the
/// depth is for tests and text dumps). When tracing is disabled the
/// constructor is a relaxed load + branch and nothing is recorded.
class Span {
public:
  static constexpr int MaxArgs = 4;

  /// \p Name should be a stable descriptive label ("steno.compile").
  explicit Span(const char *Name);
  explicit Span(std::string Name);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a key/value pair rendered into the event's "args" object
  /// (e.g. rows consumed). \p Key must outlive the program (use a string
  /// literal). At most MaxArgs pairs; extras are ignored.
  void arg(const char *Key, std::int64_t Value);

  /// Whether this span is recording (tracing was enabled at construction).
  bool active() const { return Active; }

  /// Current nesting depth of the calling thread (0 = no open span).
  static int depth();

private:
  bool Active = false;
  int NArgs = 0;
  std::string Name;
  double StartUs = 0;
  const char *ArgKeys[MaxArgs] = {};
  std::int64_t ArgVals[MaxArgs] = {};
};

/// Turns span recording on or off. Enabling allocates the event buffer on
/// first use; disabling keeps already-recorded events for export.
void setTracingEnabled(bool Enabled);

/// Drops every recorded event (and the dropped-event count).
void resetTrace();

/// Number of events currently held in the buffer.
std::size_t traceEventCount();
/// Events discarded because the buffer was full.
std::uint64_t traceDroppedCount();

/// Renders every recorded event as a Chrome trace-event JSON document:
/// {"traceEvents":[...],"displayTimeUnit":"ms"}. Call after concurrent
/// work has quiesced (in-flight spans may be mid-record).
std::string traceJson();

/// Writes traceJson() to \p Path. Returns false and fills \p Err on I/O
/// failure.
bool writeTrace(const std::string &Path, std::string *Err = nullptr);

} // namespace obs
} // namespace steno

#endif // STENO_OBS_TRACE_H
