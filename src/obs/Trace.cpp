//===- obs/Trace.cpp ------------------------------------------*- C++ -*-===//

#include "obs/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

using namespace steno;
using namespace steno::obs;

std::atomic<bool> obs::detail::TraceEnabled{false};

namespace {

struct Event {
  std::string Name;
  double TsUs = 0;
  double DurUs = 0;
  std::uint32_t Tid = 0;
  int Depth = 0;
  int NArgs = 0;
  const char *ArgKeys[Span::MaxArgs] = {};
  std::int64_t ArgVals[Span::MaxArgs] = {};
};

/// The recording state. Slots are allocated once, on first enable, and
/// never reallocated: a writer claims an index with one fetch_add and owns
/// that slot exclusively, so concurrent spans never contend. Events past
/// capacity are dropped and counted (a bounded buffer beats silently
/// corrupting the hot path with reallocation locks).
struct TraceState {
  std::mutex Mutex; ///< guards Slots allocation and file writing
  std::vector<Event> Slots;
  std::atomic<std::size_t> Next{0};
  std::atomic<std::uint64_t> Dropped{0};
  std::string ExitPath; ///< STENO_TRACE target, written at process exit
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
};

TraceState &state() {
  static TraceState *S = new TraceState(); // never destroyed: spans on
  return *S;                               // detached threads may outlive exit
}

std::size_t bufferCapacity() {
  static const std::size_t Cap = [] {
    const char *Env = std::getenv("STENO_TRACE_BUF");
    long V = Env ? std::atol(Env) : 0;
    return V > 0 ? static_cast<std::size_t>(V)
                 : static_cast<std::size_t>(1) << 16;
  }();
  return Cap;
}

void ensureBuffer() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (S.Slots.empty())
    S.Slots.resize(bufferCapacity());
}

double nowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - state().Epoch)
      .count();
}

std::uint32_t threadId() {
  static std::atomic<std::uint32_t> NextId{1};
  thread_local std::uint32_t Id =
      NextId.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

thread_local int SpanDepth = 0;

void record(Event E) {
  TraceState &S = state();
  std::size_t I = S.Next.fetch_add(1, std::memory_order_relaxed);
  if (I < S.Slots.size())
    S.Slots[I] = std::move(E);
  else
    S.Dropped.fetch_add(1, std::memory_order_relaxed);
}

void appendJsonString(std::string &Out, const std::string &Str) {
  Out += '"';
  for (char C : Str) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void flushAtExit() {
  TraceState &S = state();
  if (S.ExitPath.empty())
    return;
  std::string Err;
  if (!writeTrace(S.ExitPath, &Err))
    std::fprintf(stderr, "steno: cannot write STENO_TRACE file: %s\n",
                 Err.c_str());
}

/// Reads STENO_TRACE before main() so any span anywhere in the process is
/// captured, and the file lands even if the program never touches obs
/// explicitly.
struct EnvInit {
  EnvInit() {
    const char *Path = std::getenv("STENO_TRACE");
    if (!Path || !*Path)
      return;
    state().ExitPath = Path;
    ensureBuffer();
    detail::TraceEnabled.store(true, std::memory_order_relaxed);
    std::atexit(flushAtExit);
  }
};
EnvInit Init;

} // namespace

Span::Span(const char *SpanName) {
  if (!tracingEnabled())
    return;
  Active = true;
  Name = SpanName;
  ++SpanDepth;
  StartUs = nowMicros();
}

Span::Span(std::string SpanName) {
  if (!tracingEnabled())
    return;
  Active = true;
  Name = std::move(SpanName);
  ++SpanDepth;
  StartUs = nowMicros();
}

Span::~Span() {
  if (!Active)
    return;
  double EndUs = nowMicros();
  --SpanDepth;
  Event E;
  E.Name = std::move(Name);
  E.TsUs = StartUs;
  E.DurUs = EndUs - StartUs;
  E.Tid = threadId();
  E.Depth = SpanDepth;
  E.NArgs = NArgs;
  for (int I = 0; I != NArgs; ++I) {
    E.ArgKeys[I] = ArgKeys[I];
    E.ArgVals[I] = ArgVals[I];
  }
  record(std::move(E));
}

void Span::arg(const char *Key, std::int64_t Value) {
  if (!Active || NArgs == MaxArgs)
    return;
  ArgKeys[NArgs] = Key;
  ArgVals[NArgs] = Value;
  ++NArgs;
}

int Span::depth() { return SpanDepth; }

void obs::setTracingEnabled(bool Enabled) {
  if (Enabled)
    ensureBuffer();
  detail::TraceEnabled.store(Enabled, std::memory_order_relaxed);
}

void obs::resetTrace() {
  TraceState &S = state();
  S.Next.store(0, std::memory_order_relaxed);
  S.Dropped.store(0, std::memory_order_relaxed);
}

std::size_t obs::traceEventCount() {
  TraceState &S = state();
  std::size_t N = S.Next.load(std::memory_order_relaxed);
  return N < S.Slots.size() ? N : S.Slots.size();
}

std::uint64_t obs::traceDroppedCount() {
  return state().Dropped.load(std::memory_order_relaxed);
}

std::string obs::traceJson() {
  TraceState &S = state();
  std::size_t N = traceEventCount();
  std::string Out = "{\"traceEvents\":[";
  char Buf[64];
  for (std::size_t I = 0; I != N; ++I) {
    const Event &E = S.Slots[I];
    if (I)
      Out += ',';
    Out += "{\"name\":";
    appendJsonString(Out, E.Name);
    Out += ",\"cat\":\"steno\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    Out += std::to_string(E.Tid);
    std::snprintf(Buf, sizeof Buf, ",\"ts\":%.3f,\"dur\":%.3f", E.TsUs,
                  E.DurUs);
    Out += Buf;
    Out += ",\"args\":{\"depth\":" + std::to_string(E.Depth);
    for (int A = 0; A != E.NArgs; ++A) {
      Out += ',';
      appendJsonString(Out, E.ArgKeys[A]);
      Out += ':' + std::to_string(E.ArgVals[A]);
    }
    Out += "}}";
  }
  Out += "],\"displayTimeUnit\":\"ms\"}";
  return Out;
}

bool obs::writeTrace(const std::string &Path, std::string *Err) {
  std::string Json = traceJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path + " for writing";
    return false;
  }
  std::size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  if (Written != Json.size()) {
    if (Err)
      *Err = "short write to " + Path;
    return false;
  }
  return true;
}
