//===- obs/Profile.h - Per-operator query profiles -------------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operator-level runtime profiles: the feedback substrate the ROADMAP's
/// adaptive-optimization item needs before any Pred reordering or plan
/// re-specialization can happen. A compiled plan registers a PlanDesc
/// (one ProfOpDesc per instrumented QUIL operator) in the global
/// ProfileStore under its structural plan hash; every profiled run then
/// merges a per-run ProfileSink — plain non-atomic arrays the hot loop
/// bumps — into the plan's QueryProfile exactly once, on completion.
///
/// Collection discipline (DESIGN.md §5g):
///   * The interpreter counts in its statement dispatch (ProfileCount /
///     ProfileTimed nodes), writing into the run's ProfileSink.
///   * The jit backend's generated TU accumulates into stack-local
///     arrays and flushes them through rt::Captures::ProfCounts /
///     ProfNanos once at entry exit — zero atomics, zero sharing.
///   * The morsel runtime attributes merges to workers through a
///     thread-local worker id (ProfileWorkerScope), so per-worker deltas
///     land in the store without any shared counter on the morsel path.
///
/// Exposition: renderExplainAnalyze() (per-operator tree with observed
/// selectivities and time percentages), profileJson() (the `profile`
/// wire command), and profilesPrometheus() / exportPrometheus() (the
/// `metrics` wire command and the STENO_METRICS_OUT atexit dump).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_OBS_PROFILE_H
#define STENO_OBS_PROFILE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace steno {
namespace obs {

/// Static description of one instrumented operator. Depth is the loop
/// nesting depth at instrumentation time (tree indentation); Timed ops
/// additionally accumulate cumulative nanoseconds.
struct ProfOpDesc {
  std::string Label; ///< "Src", "Where", "Trans", "GroupBy", "Ret", ...
  unsigned Depth = 0;
  bool Timed = false;
  /// Stable lambda identity (expr::hashLambda of a Where predicate; 0
  /// otherwise) so consumers can match observed selectivities back to a
  /// specific predicate across plan-rewriter permutations.
  std::uint64_t OpId = 0;
};

/// Static description of one profiled plan (registered at compile time).
struct PlanDesc {
  std::string Name;    ///< Readable query name (CompileOptions.Name).
  std::string Symbols; ///< QUIL symbol string.
  std::vector<ProfOpDesc> Ops;
  /// Provenance: the plan hash this plan was rewritten from (0 = not a
  /// rewrite product). A rewritten chain hashes differently from its
  /// source, which would orphan the source plan's accumulated profile;
  /// this link lets snapshotResolved() merge run counts through the
  /// rewrite so EXPLAIN ANALYZE never shows a spurious "0 runs".
  std::uint64_t RewrittenFrom = 0;
};

/// Per-run accumulation buffer: plain uint64 arrays with two count slots
/// per op (rows in at 2k, rows out at 2k+1) and one nanosecond slot per
/// op. Single-threaded by construction (one per execution), so the hot
/// loop pays no atomics; the run merges it into the store once at the
/// end.
struct ProfileSink {
  std::vector<std::uint64_t> Counts; ///< 2 * NumOps.
  std::vector<std::uint64_t> Nanos;  ///< NumOps.

  explicit ProfileSink(std::size_t NumOps)
      : Counts(2 * NumOps, 0), Nanos(NumOps, 0) {}
};

/// Upper bound on attributable worker ids; higher ids clamp to the last
/// slot (the store is a fixed array so attribution is lock-free).
constexpr unsigned ProfileMaxWorkers = 64;

/// One operator's merged statistics in a snapshot.
struct OpProfile {
  std::string Label;
  unsigned Depth = 0;
  bool Timed = false;
  std::uint64_t OpId = 0; ///< See ProfOpDesc::OpId.
  std::uint64_t RowsIn = 0;
  std::uint64_t RowsOut = 0;
  std::uint64_t Nanos = 0;

  /// Observed selectivity rows-out / rows-in; -1 when rows-in is 0
  /// (sources and never-reached operators have no meaningful ratio).
  double selectivity() const {
    return RowsIn ? static_cast<double>(RowsOut) /
                        static_cast<double>(RowsIn)
                  : -1.0;
  }
};

/// A consistent-enough copy of one plan's profile (individual fields are
/// relaxed loads; totals can be mid-merge torn across ops, never within
/// one counter).
struct ProfileSnapshot {
  std::uint64_t PlanHash = 0;
  std::string Name;
  std::string Symbols;
  std::uint64_t RewrittenFrom = 0; ///< PlanDesc provenance link (0 = none).
  /// snapshotResolved() only: the related plan whose runs were merged in
  /// (an ancestor through RewrittenFrom, or a rewrite descendant), and
  /// how many of Runs came from it. Plain snapshot() leaves both 0.
  std::uint64_t ResolvedFrom = 0;
  std::uint64_t PriorRuns = 0;
  std::uint64_t Runs = 0; ///< Completed merges (morsels count separately).
  std::vector<OpProfile> Ops;
  /// (worker id, merge count) pairs for workers that merged at least one
  /// run — the morsel attribution. Sorted by worker id.
  std::vector<std::pair<unsigned, std::uint64_t>> WorkerMerges;

  std::uint64_t totalNanos() const {
    std::uint64_t T = 0;
    for (const OpProfile &O : Ops)
      T += O.Nanos;
    return T;
  }
};

/// Merged statistics for one plan. merge() is lock-free (relaxed
/// fetch_add per slot): concurrent runs of the same plan — the morsel
/// path runs one vertex per morsel across workers — never contend on a
/// lock and never lose counts.
class QueryProfile {
public:
  explicit QueryProfile(PlanDesc D)
      : Desc(std::move(D)), Counts(2 * Desc.Ops.size()),
        Nanos(Desc.Ops.size()), Workers(ProfileMaxWorkers) {}

  const PlanDesc &desc() const { return Desc; }

  /// Adds one run's sink. \p Worker attributes the merge (clamped to
  /// ProfileMaxWorkers - 1).
  void merge(const ProfileSink &S, unsigned Worker);

  ProfileSnapshot snapshot(std::uint64_t PlanHash) const;

private:
  PlanDesc Desc;
  std::vector<std::atomic<std::uint64_t>> Counts;
  std::vector<std::atomic<std::uint64_t>> Nanos;
  std::vector<std::atomic<std::uint64_t>> Workers;
  std::atomic<std::uint64_t> Runs{0};
};

/// Process-wide profile registry keyed by structural plan hash
/// (quil::hashChain). Registration and snapshot take a mutex; merge is
/// one map lookup under the mutex plus lock-free counter adds (profile
/// entries are never removed except by clear(), so the returned
/// references stay valid).
class ProfileStore {
public:
  /// Registers \p Desc under \p PlanHash (idempotent: a structurally
  /// equal plan compiled twice shares the entry) and returns it.
  QueryProfile &ensure(std::uint64_t PlanHash, const PlanDesc &Desc);

  /// Merges one run's sink into the plan's profile, attributing it to
  /// the calling thread's profileWorker(). No-op for unknown hashes.
  void merge(std::uint64_t PlanHash, const ProfileSink &S);

  std::optional<ProfileSnapshot> snapshot(std::uint64_t PlanHash) const;

  /// snapshot() plus rewrite-provenance resolution: folds the entire
  /// weakly-connected provenance component — RewrittenFrom edges
  /// followed in both directions, transitively — so multi-hop chains
  /// (v1 -> v2 -> v3) and provenance siblings (two rewrite products of
  /// one original) all contribute their run counts to Runs / PriorRuns,
  /// recording the first contributing hash in ResolvedFrom. Per-op
  /// rows/nanos are merged index-wise when the related plan has the
  /// identical operator shape (same labels/ids); otherwise predicates
  /// whose (Label, OpId) pair is unique in both snapshots are matched by
  /// identity, so pred-permuted plan versions still aggregate per-pred
  /// statistics. Falls back to a relative's own snapshot (re-keyed to
  /// \p PlanHash) when \p PlanHash itself was never registered but a
  /// rewrite relative was.
  std::optional<ProfileSnapshot>
  snapshotResolved(std::uint64_t PlanHash) const;

  /// Every registered plan, ordered by plan hash (deterministic).
  std::vector<ProfileSnapshot> snapshotAll() const;

  std::size_t size() const;
  /// Drops every entry (tests only — outstanding QueryProfile references
  /// are invalidated).
  void clear();

  static ProfileStore &global();

private:
  mutable std::mutex Mutex;
  std::map<std::uint64_t, std::unique_ptr<QueryProfile>> Plans;
};

/// True when the STENO_PROFILE environment variable is set to anything
/// but "" or "0" — the default for CompileOptions::Profile and friends.
bool profilingEnvEnabled();

/// Thread-local worker id used to attribute profile merges (0 when never
/// set — the caller thread). The morsel scheduler scopes each drive()
/// call with the worker's index.
unsigned profileWorker();
void setProfileWorker(unsigned W);

/// RAII worker-id scope (restores the previous id on exit, so pool
/// threads reused across schedulers stay correctly attributed).
class ProfileWorkerScope {
public:
  explicit ProfileWorkerScope(unsigned W) : Prev(profileWorker()) {
    setProfileWorker(W);
  }
  ~ProfileWorkerScope() { setProfileWorker(Prev); }
  ProfileWorkerScope(const ProfileWorkerScope &) = delete;
  ProfileWorkerScope &operator=(const ProfileWorkerScope &) = delete;

private:
  unsigned Prev;
};

/// EXPLAIN ANALYZE-style per-operator tree: rows in/out, observed
/// selectivity, cumulative time and time percentage per operator.
std::string renderExplainAnalyze(const ProfileSnapshot &S);

/// One JSON object for the `profile` wire command:
/// {"plan":"0x..","name":..,"symbols":..,"runs":N,"workers":{..},
///  "ops":[{"op":..,"depth":..,"rows_in":..,"rows_out":..,
///          "selectivity":..,"nanos":..,"time_pct":..},..]}.
std::string profileJson(const ProfileSnapshot &S);

/// Prometheus text-format summaries of every registered profile
/// (steno_profile_runs_total, steno_profile_op_rows_total{dir=..},
/// steno_profile_op_nanos_total).
std::string profilesPrometheus();

/// Whole-registry Prometheus exposition: dumpMetricsPrometheus() (all
/// counters/gauges/histograms) followed by profilesPrometheus().
std::string exportPrometheus();

} // namespace obs
} // namespace steno

#endif // STENO_OBS_PROFILE_H
