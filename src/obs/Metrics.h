//===- obs/Metrics.h - Process-wide metrics registry -----------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe metrics registry for the whole library: monotonic
/// counters, gauges (with a high-water mark) and fixed-bucket latency
/// histograms. The paper's argument is quantitative — §7.1 break-even
/// between one-off compilation cost and per-run speedup — so every layer
/// (compile pipeline, JIT, caches, scheduler) reports through this
/// registry and perf PRs can prove their win with `obs::dumpMetrics()`.
///
/// Hot-path discipline: instrument registration (name lookup) happens once
/// behind a mutex; after that, increments are single relaxed atomic RMW
/// operations. The idiom at a call site is
///
/// \code
///   static obs::Counter &Runs = obs::counter("steno.run.count");
///   Runs.inc();
/// \endcode
///
/// Exposition: `dumpMetrics()` renders a sorted human-readable text block;
/// `dumpMetricsJson()` renders the same data as one JSON object.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_OBS_METRICS_H
#define STENO_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace steno {
namespace obs {

/// Monotonically increasing event count. All operations are lock-free.
class Counter {
public:
  void inc(std::uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  std::uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> V{0};
};

/// Instantaneous level (queue depth, live workers). Tracks the maximum
/// level ever set so bursts survive a later drain.
class Gauge {
public:
  void set(std::int64_t X) {
    V.store(X, std::memory_order_relaxed);
    bumpMax(X);
  }
  void add(std::int64_t N = 1) {
    std::int64_t X = V.fetch_add(N, std::memory_order_relaxed) + N;
    bumpMax(X);
  }
  void sub(std::int64_t N = 1) { V.fetch_sub(N, std::memory_order_relaxed); }
  std::int64_t value() const { return V.load(std::memory_order_relaxed); }
  std::int64_t maxValue() const { return Max.load(std::memory_order_relaxed); }
  void reset() {
    V.store(0, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

private:
  void bumpMax(std::int64_t X) {
    std::int64_t Cur = Max.load(std::memory_order_relaxed);
    while (X > Cur &&
           !Max.compare_exchange_weak(Cur, X, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> V{0};
  std::atomic<std::int64_t> Max{0};
};

/// Fixed-bucket distribution. Buckets are half-open intervals
/// (prev_bound, bound]: an observation X lands in the FIRST bucket whose
/// upper bound satisfies X <= bound (Prometheus "le" semantics), so a
/// value exactly equal to a bound deterministically lands in that
/// bound's own bucket — observe(10) with bounds {10, 20} counts in the
/// le=10 bucket, observe(10 + epsilon) in le=20. Anything above the last
/// bound lands in the implicit +inf bucket. observe() is lock-free: one
/// atomic increment plus a CAS loop on the running sum.
class Histogram {
public:
  /// \p UpperBounds must be sorted ascending; the +inf bucket is implicit.
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double X);

  std::uint64_t count() const { return N.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Number of explicit buckets (== bounds().size()); bucketCount(size())
  /// is the +inf bucket.
  const std::vector<double> &bounds() const { return Bounds; }
  std::uint64_t bucketCount(std::size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  /// Folds another histogram with IDENTICAL bounds into this one
  /// (per-worker histograms merged after a parallel phase). Asserts on a
  /// bounds mismatch.
  void merge(const Histogram &Other);
  /// Estimated quantile (\p Q in [0, 1]) by linear interpolation inside
  /// the bucket where the cumulative count crosses Q * count(). Returns
  /// 0 for an empty histogram; observations in the +inf bucket clamp the
  /// estimate to the last finite bound.
  double percentile(double Q) const;
  void reset();

private:
  std::vector<double> Bounds;
  std::vector<std::atomic<std::uint64_t>> Buckets; ///< Bounds.size() + 1
  std::atomic<std::uint64_t> N{0};
  std::atomic<double> Sum{0.0};
};

/// Looks up (creating on first use) the named instrument in the global
/// registry. Returned references live for the whole process, so call
/// sites cache them in a function-local static. Re-registering a
/// histogram name ignores the new bounds and returns the existing one.
Counter &counter(const std::string &Name);
Gauge &gauge(const std::string &Name);
Histogram &histogram(const std::string &Name, std::vector<double> Bounds);

/// Sorted human-readable exposition of every registered instrument.
/// Iteration order is deterministic (the registry is a name-sorted map),
/// so repeated dumps diff cleanly.
std::string dumpMetrics();
/// The same data as one JSON object:
/// {"counters":{..},"gauges":{..},"histograms":{..}}.
std::string dumpMetricsJson();
/// Prometheus text-format exposition of every registered instrument,
/// name-sorted within each instrument class. Names are sanitized to
/// [A-Za-z0-9_] ("steno.run.count" -> "steno_run_count"); gauges also
/// emit a "<name>_max" high-water series; histogram buckets are
/// cumulative le-counts per the exposition format.
std::string dumpMetricsPrometheus();
/// Zeroes every registered instrument (tests and benchmark harnesses).
void resetMetrics();

/// Installs a std::atexit hook that writes exportPrometheus() to the
/// path in $STENO_METRICS_OUT (no-op when unset). Idempotent; invoked
/// automatically on first registry use. Defined in Profile.cpp.
bool registerMetricsExportAtExit();

} // namespace obs
} // namespace steno

#endif // STENO_OBS_METRICS_H
