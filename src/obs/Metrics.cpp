//===- obs/Metrics.cpp ----------------------------------------*- C++ -*-===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

using namespace steno;
using namespace steno::obs;

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)), Buckets(Bounds.size() + 1) {
  assert(std::is_sorted(Bounds.begin(), Bounds.end()) &&
         "histogram bounds must be ascending");
}

void Histogram::observe(double X) {
  std::size_t I =
      std::lower_bound(Bounds.begin(), Bounds.end(), X) - Bounds.begin();
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  double Cur = Sum.load(std::memory_order_relaxed);
  while (!Sum.compare_exchange_weak(Cur, Cur + X,
                                    std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (std::atomic<std::uint64_t> &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  N.store(0, std::memory_order_relaxed);
  Sum.store(0.0, std::memory_order_relaxed);
}

namespace {

/// The process-wide registry. std::map keeps the exposition sorted;
/// unique_ptr keeps instrument addresses stable across rehashes.
struct Registry {
  std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;

  static Registry &get() {
    static Registry *R = new Registry(); // never destroyed: call sites
    return *R;                           // hold references across exit
  }
};

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string fmtDouble(double V) {
  std::ostringstream Out;
  Out << V;
  return Out.str();
}

} // namespace

Counter &obs::counter(const std::string &Name) {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::unique_ptr<Counter> &Slot = R.Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &obs::gauge(const std::string &Name) {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::unique_ptr<Gauge> &Slot = R.Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &obs::histogram(const std::string &Name,
                          std::vector<double> Bounds) {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::unique_ptr<Histogram> &Slot = R.Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(std::move(Bounds));
  return *Slot;
}

std::string obs::dumpMetrics() {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out;
  for (const auto &[Name, C] : R.Counters)
    Out += "counter " + Name + " " + std::to_string(C->value()) + "\n";
  for (const auto &[Name, G] : R.Gauges)
    Out += "gauge " + Name + " " + std::to_string(G->value()) + " max " +
           std::to_string(G->maxValue()) + "\n";
  for (const auto &[Name, H] : R.Histograms) {
    Out += "histogram " + Name + " count " + std::to_string(H->count()) +
           " sum " + fmtDouble(H->sum()) + "\n";
    for (std::size_t I = 0; I != H->bounds().size(); ++I)
      Out += "  le " + fmtDouble(H->bounds()[I]) + ": " +
             std::to_string(H->bucketCount(I)) + "\n";
    Out += "  le +inf: " +
           std::to_string(H->bucketCount(H->bounds().size())) + "\n";
  }
  return Out;
}

std::string obs::dumpMetricsJson() {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : R.Counters) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, Name);
    Out += ':' + std::to_string(C->value());
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, G] : R.Gauges) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, Name);
    Out += ":{\"value\":" + std::to_string(G->value()) +
           ",\"max\":" + std::to_string(G->maxValue()) + "}";
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : R.Histograms) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, Name);
    Out += ":{\"count\":" + std::to_string(H->count()) +
           ",\"sum\":" + fmtDouble(H->sum()) + ",\"bounds\":[";
    for (std::size_t I = 0; I != H->bounds().size(); ++I) {
      if (I)
        Out += ',';
      Out += fmtDouble(H->bounds()[I]);
    }
    Out += "],\"buckets\":[";
    for (std::size_t I = 0; I != H->bounds().size() + 1; ++I) {
      if (I)
        Out += ',';
      Out += std::to_string(H->bucketCount(I));
    }
    Out += "]}";
  }
  Out += "}}";
  return Out;
}

void obs::resetMetrics() {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (const auto &[Name, C] : R.Counters)
    C->reset();
  for (const auto &[Name, G] : R.Gauges)
    G->reset();
  for (const auto &[Name, H] : R.Histograms)
    H->reset();
}
