//===- obs/Metrics.cpp ----------------------------------------*- C++ -*-===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

using namespace steno;
using namespace steno::obs;

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)), Buckets(Bounds.size() + 1) {
  assert(std::is_sorted(Bounds.begin(), Bounds.end()) &&
         "histogram bounds must be ascending");
}

void Histogram::observe(double X) {
  std::size_t I =
      std::lower_bound(Bounds.begin(), Bounds.end(), X) - Bounds.begin();
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  double Cur = Sum.load(std::memory_order_relaxed);
  while (!Sum.compare_exchange_weak(Cur, Cur + X,
                                    std::memory_order_relaxed)) {
  }
}

void Histogram::merge(const Histogram &Other) {
  assert(Bounds == Other.Bounds &&
         "merging histograms with different bucket bounds");
  for (std::size_t I = 0; I != Buckets.size(); ++I) {
    std::uint64_t C = Other.Buckets[I].load(std::memory_order_relaxed);
    if (C)
      Buckets[I].fetch_add(C, std::memory_order_relaxed);
  }
  N.fetch_add(Other.N.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  double Add = Other.Sum.load(std::memory_order_relaxed);
  double Cur = Sum.load(std::memory_order_relaxed);
  while (!Sum.compare_exchange_weak(Cur, Cur + Add,
                                    std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double Q) const {
  std::uint64_t Total = count();
  if (Total == 0)
    return 0.0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  double Rank = Q * static_cast<double>(Total);
  std::uint64_t Cum = 0;
  for (std::size_t I = 0; I != Bounds.size(); ++I) {
    std::uint64_t C = bucketCount(I);
    if (C && static_cast<double>(Cum + C) >= Rank) {
      double Lo = I == 0 ? 0.0 : Bounds[I - 1];
      double Frac = (Rank - static_cast<double>(Cum)) /
                    static_cast<double>(C);
      if (Frac < 0.0)
        Frac = 0.0;
      return Lo + (Bounds[I] - Lo) * Frac;
    }
    Cum += C;
  }
  // Rank fell in the +inf bucket: the best bounded estimate is the last
  // finite bound.
  return Bounds.empty() ? 0.0 : Bounds.back();
}

void Histogram::reset() {
  for (std::atomic<std::uint64_t> &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  N.store(0, std::memory_order_relaxed);
  Sum.store(0.0, std::memory_order_relaxed);
}

namespace {

/// The process-wide registry. std::map keeps the exposition sorted;
/// unique_ptr keeps instrument addresses stable across rehashes.
struct Registry {
  std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;

  static Registry &get() {
    static Registry *R = [] {
      registerMetricsExportAtExit(); // honor STENO_METRICS_OUT
      return new Registry();         // never destroyed: call sites
    }();                             // hold references across exit
    return *R;
  }
};

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string fmtDouble(double V) {
  std::ostringstream Out;
  Out << V;
  return Out.str();
}

/// Prometheus metric names may only contain [a-zA-Z0-9_:]; we map every
/// other character (the registry uses '.') to '_'.
std::string promName(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  if (Out.empty() || (Out[0] >= '0' && Out[0] <= '9'))
    Out.insert(Out.begin(), '_');
  return Out;
}

} // namespace

Counter &obs::counter(const std::string &Name) {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::unique_ptr<Counter> &Slot = R.Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &obs::gauge(const std::string &Name) {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::unique_ptr<Gauge> &Slot = R.Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &obs::histogram(const std::string &Name,
                          std::vector<double> Bounds) {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::unique_ptr<Histogram> &Slot = R.Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(std::move(Bounds));
  return *Slot;
}

std::string obs::dumpMetrics() {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out;
  for (const auto &[Name, C] : R.Counters)
    Out += "counter " + Name + " " + std::to_string(C->value()) + "\n";
  for (const auto &[Name, G] : R.Gauges)
    Out += "gauge " + Name + " " + std::to_string(G->value()) + " max " +
           std::to_string(G->maxValue()) + "\n";
  for (const auto &[Name, H] : R.Histograms) {
    Out += "histogram " + Name + " count " + std::to_string(H->count()) +
           " sum " + fmtDouble(H->sum()) + "\n";
    for (std::size_t I = 0; I != H->bounds().size(); ++I)
      Out += "  le " + fmtDouble(H->bounds()[I]) + ": " +
             std::to_string(H->bucketCount(I)) + "\n";
    Out += "  le +inf: " +
           std::to_string(H->bucketCount(H->bounds().size())) + "\n";
  }
  return Out;
}

std::string obs::dumpMetricsJson() {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : R.Counters) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, Name);
    Out += ':' + std::to_string(C->value());
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, G] : R.Gauges) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, Name);
    Out += ":{\"value\":" + std::to_string(G->value()) +
           ",\"max\":" + std::to_string(G->maxValue()) + "}";
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : R.Histograms) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, Name);
    Out += ":{\"count\":" + std::to_string(H->count()) +
           ",\"sum\":" + fmtDouble(H->sum()) + ",\"bounds\":[";
    for (std::size_t I = 0; I != H->bounds().size(); ++I) {
      if (I)
        Out += ',';
      Out += fmtDouble(H->bounds()[I]);
    }
    Out += "],\"buckets\":[";
    for (std::size_t I = 0; I != H->bounds().size() + 1; ++I) {
      if (I)
        Out += ',';
      Out += std::to_string(H->bucketCount(I));
    }
    Out += "]}";
  }
  Out += "}}";
  return Out;
}

std::string obs::dumpMetricsPrometheus() {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out;
  for (const auto &[Name, C] : R.Counters) {
    std::string P = promName(Name);
    Out += "# TYPE " + P + " counter\n";
    Out += P + " " + std::to_string(C->value()) + "\n";
  }
  for (const auto &[Name, G] : R.Gauges) {
    std::string P = promName(Name);
    Out += "# TYPE " + P + " gauge\n";
    Out += P + " " + std::to_string(G->value()) + "\n";
    Out += "# TYPE " + P + "_max gauge\n";
    Out += P + "_max " + std::to_string(G->maxValue()) + "\n";
  }
  for (const auto &[Name, H] : R.Histograms) {
    std::string P = promName(Name);
    Out += "# TYPE " + P + " histogram\n";
    std::uint64_t Cum = 0;
    for (std::size_t I = 0; I != H->bounds().size(); ++I) {
      Cum += H->bucketCount(I);
      Out += P + "_bucket{le=\"" + fmtDouble(H->bounds()[I]) + "\"} " +
             std::to_string(Cum) + "\n";
    }
    Out += P + "_bucket{le=\"+Inf\"} " + std::to_string(H->count()) + "\n";
    Out += P + "_sum " + fmtDouble(H->sum()) + "\n";
    Out += P + "_count " + std::to_string(H->count()) + "\n";
  }
  return Out;
}

void obs::resetMetrics() {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (const auto &[Name, C] : R.Counters)
    C->reset();
  for (const auto &[Name, G] : R.Gauges)
    G->reset();
  for (const auto &[Name, H] : R.Histograms)
    H->reset();
}
