//===- obs/Profile.cpp - Per-operator query profiles ----------*- C++ -*-===//

#include "obs/Profile.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

using namespace steno;
using namespace steno::obs;

//===----------------------------------------------------------------------===//
// QueryProfile
//===----------------------------------------------------------------------===//

void QueryProfile::merge(const ProfileSink &S, unsigned Worker) {
  std::size_t NC = std::min(S.Counts.size(), Counts.size());
  for (std::size_t I = 0; I != NC; ++I)
    if (S.Counts[I])
      Counts[I].fetch_add(S.Counts[I], std::memory_order_relaxed);
  std::size_t NN = std::min(S.Nanos.size(), Nanos.size());
  for (std::size_t I = 0; I != NN; ++I)
    if (S.Nanos[I])
      Nanos[I].fetch_add(S.Nanos[I], std::memory_order_relaxed);
  if (Worker >= ProfileMaxWorkers)
    Worker = ProfileMaxWorkers - 1;
  Workers[Worker].fetch_add(1, std::memory_order_relaxed);
  Runs.fetch_add(1, std::memory_order_relaxed);
}

ProfileSnapshot QueryProfile::snapshot(std::uint64_t PlanHash) const {
  ProfileSnapshot S;
  S.PlanHash = PlanHash;
  S.Name = Desc.Name;
  S.Symbols = Desc.Symbols;
  S.RewrittenFrom = Desc.RewrittenFrom;
  S.Runs = Runs.load(std::memory_order_relaxed);
  S.Ops.reserve(Desc.Ops.size());
  for (std::size_t K = 0; K != Desc.Ops.size(); ++K) {
    OpProfile O;
    O.Label = Desc.Ops[K].Label;
    O.Depth = Desc.Ops[K].Depth;
    O.Timed = Desc.Ops[K].Timed;
    O.OpId = Desc.Ops[K].OpId;
    O.RowsIn = Counts[2 * K].load(std::memory_order_relaxed);
    O.RowsOut = Counts[2 * K + 1].load(std::memory_order_relaxed);
    O.Nanos = Nanos[K].load(std::memory_order_relaxed);
    S.Ops.push_back(std::move(O));
  }
  for (unsigned W = 0; W != ProfileMaxWorkers; ++W) {
    std::uint64_t N = Workers[W].load(std::memory_order_relaxed);
    if (N)
      S.WorkerMerges.emplace_back(W, N);
  }
  return S;
}

//===----------------------------------------------------------------------===//
// ProfileStore
//===----------------------------------------------------------------------===//

QueryProfile &ProfileStore::ensure(std::uint64_t PlanHash,
                                   const PlanDesc &Desc) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<QueryProfile> &Slot = Plans[PlanHash];
  if (!Slot)
    Slot = std::make_unique<QueryProfile>(Desc);
  return *Slot;
}

void ProfileStore::merge(std::uint64_t PlanHash, const ProfileSink &S) {
  QueryProfile *P = nullptr;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Plans.find(PlanHash);
    if (It == Plans.end())
      return;
    P = It->second.get();
  }
  P->merge(S, profileWorker());
}

std::optional<ProfileSnapshot>
ProfileStore::snapshot(std::uint64_t PlanHash) const {
  const QueryProfile *P = nullptr;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Plans.find(PlanHash);
    if (It == Plans.end())
      return std::nullopt;
    P = It->second.get();
  }
  return P->snapshot(PlanHash);
}

namespace {

/// True when two snapshots describe the identical operator shape, so
/// their per-op counters can be summed index-for-index.
bool sameOpShape(const ProfileSnapshot &A, const ProfileSnapshot &B) {
  if (A.Ops.size() != B.Ops.size())
    return false;
  for (std::size_t K = 0; K != A.Ops.size(); ++K)
    if (A.Ops[K].Label != B.Ops[K].Label || A.Ops[K].OpId != B.Ops[K].OpId)
      return false;
  return true;
}

/// Folds \p Other's per-pred counters into \p S by predicate identity:
/// every (Label, OpId) pair with OpId != 0 that appears exactly once in
/// BOTH snapshots is summed. Covers rewrite versions that permuted (or
/// dropped) predicates, where index-wise folding would attribute rows to
/// the wrong operator.
void foldByOpId(ProfileSnapshot &S, const ProfileSnapshot &Other) {
  auto UniqueIds = [](const ProfileSnapshot &P) {
    std::map<std::uint64_t, int> N;
    for (const OpProfile &O : P.Ops)
      if (O.OpId)
        ++N[O.OpId];
    return N;
  };
  std::map<std::uint64_t, int> Mine = UniqueIds(S);
  std::map<std::uint64_t, int> Theirs = UniqueIds(Other);
  for (OpProfile &O : S.Ops) {
    if (!O.OpId || Mine[O.OpId] != 1)
      continue;
    auto It = Theirs.find(O.OpId);
    if (It == Theirs.end() || It->second != 1)
      continue;
    for (const OpProfile &T : Other.Ops)
      if (T.OpId == O.OpId && T.Label == O.Label) {
        O.RowsIn += T.RowsIn;
        O.RowsOut += T.RowsOut;
        O.Nanos += T.Nanos;
        break;
      }
  }
}

void foldRuns(ProfileSnapshot &S, const ProfileSnapshot &Other) {
  if (!Other.Runs)
    return;
  S.Runs += Other.Runs;
  S.PriorRuns += Other.Runs;
  if (!S.ResolvedFrom)
    S.ResolvedFrom = Other.PlanHash;
  if (sameOpShape(S, Other)) {
    for (std::size_t K = 0; K != S.Ops.size(); ++K) {
      S.Ops[K].RowsIn += Other.Ops[K].RowsIn;
      S.Ops[K].RowsOut += Other.Ops[K].RowsOut;
      S.Ops[K].Nanos += Other.Ops[K].Nanos;
    }
  } else {
    foldByOpId(S, Other);
  }
}

} // namespace

std::optional<ProfileSnapshot>
ProfileStore::snapshotResolved(std::uint64_t PlanHash) const {
  // Collect only the cheap provenance edges (hash, RewrittenFrom) under
  // the lock — deliberately NOT snapshotAll(), whose per-plan copies
  // would make every adaptive compile O(total registered plans).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> Edges;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Edges.reserve(Plans.size());
    for (const auto &[Hash, P] : Plans)
      Edges.emplace_back(Hash, P->desc().RewrittenFrom);
  }

  // BFS the weakly-connected provenance component containing PlanHash:
  // edges hash -> RewrittenFrom, followed in BOTH directions, so
  // multi-hop chains (v1 -> v2 -> v3) and provenance siblings (two
  // rewrite products of the same original) all fold together.
  std::vector<std::uint64_t> Component{PlanHash};
  auto Seen = [&](std::uint64_t H) {
    return std::find(Component.begin(), Component.end(), H) !=
           Component.end();
  };
  for (std::size_t I = 0; I != Component.size(); ++I) {
    std::uint64_t Cur = Component[I];
    for (const auto &[Hash, From] : Edges) {
      if (Hash == Cur && From && !Seen(From))
        Component.push_back(From);
      if (From == Cur && !Seen(Hash))
        Component.push_back(Hash);
    }
  }

  // Registered members in plan-hash order (Edges inherits the map's
  // ordering), so the fold — and the primary shape for an unregistered
  // hash — is deterministic.
  std::vector<std::uint64_t> Members;
  for (const auto &[Hash, From] : Edges) {
    (void)From;
    if (Seen(Hash))
      Members.push_back(Hash);
  }
  if (Members.empty())
    return std::nullopt;

  bool SelfRegistered = Seen(PlanHash) &&
                        std::find(Members.begin(), Members.end(),
                                  PlanHash) != Members.end();
  ProfileSnapshot Out;
  std::uint64_t Primary = SelfRegistered ? PlanHash : Members.front();
  if (auto S = snapshot(Primary))
    Out = *S;
  else
    return std::nullopt;
  if (!SelfRegistered) {
    // The caller holds a pre-rewrite hash that was never registered:
    // serve a rewrite relative's profile under the requested hash.
    Out.ResolvedFrom = Out.PlanHash;
    Out.PriorRuns = Out.Runs;
    Out.PlanHash = PlanHash;
  }
  for (std::uint64_t H : Members) {
    if (H == Primary)
      continue;
    if (auto S = snapshot(H))
      foldRuns(Out, *S);
  }
  return Out;
}

std::vector<ProfileSnapshot> ProfileStore::snapshotAll() const {
  std::vector<std::pair<std::uint64_t, const QueryProfile *>> Refs;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Refs.reserve(Plans.size());
    for (const auto &[Hash, P] : Plans)
      Refs.emplace_back(Hash, P.get());
  }
  std::vector<ProfileSnapshot> Out;
  Out.reserve(Refs.size());
  for (const auto &[Hash, P] : Refs)
    Out.push_back(P->snapshot(Hash));
  return Out;
}

std::size_t ProfileStore::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Plans.size();
}

void ProfileStore::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Plans.clear();
}

ProfileStore &ProfileStore::global() {
  // Leaked intentionally: profiled queries may merge from detached
  // threads during process teardown.
  static ProfileStore *Store = new ProfileStore();
  return *Store;
}

//===----------------------------------------------------------------------===//
// Environment + worker attribution
//===----------------------------------------------------------------------===//

bool obs::profilingEnvEnabled() {
  static const bool Enabled = [] {
    const char *E = std::getenv("STENO_PROFILE");
    return E && *E && std::strcmp(E, "0") != 0;
  }();
  return Enabled;
}

namespace {
thread_local unsigned ProfileWorkerId = 0;
} // namespace

unsigned obs::profileWorker() { return ProfileWorkerId; }
void obs::setProfileWorker(unsigned W) { ProfileWorkerId = W; }

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

std::string fmtPct(double X) {
  char Buf[32];
  std::snprintf(Buf, sizeof Buf, "%.1f", X);
  return Buf;
}

std::string fmtSel(double Sel) {
  if (Sel < 0)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof Buf, "%.4f", Sel);
  return Buf;
}

std::string fmtNanos(std::uint64_t Ns) {
  char Buf[48];
  if (Ns >= 1000000000ULL)
    std::snprintf(Buf, sizeof Buf, "%.3fs", static_cast<double>(Ns) / 1e9);
  else if (Ns >= 1000000ULL)
    std::snprintf(Buf, sizeof Buf, "%.3fms", static_cast<double>(Ns) / 1e6);
  else if (Ns >= 1000ULL)
    std::snprintf(Buf, sizeof Buf, "%.3fus", static_cast<double>(Ns) / 1e3);
  else
    std::snprintf(Buf, sizeof Buf, "%" PRIu64 "ns", Ns);
  return Buf;
}

} // namespace

std::string obs::renderExplainAnalyze(const ProfileSnapshot &S) {
  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof Buf,
                "EXPLAIN ANALYZE %s  [plan 0x%016" PRIx64 ", %" PRIu64
                " run%s]\n",
                S.Name.c_str(), S.PlanHash, S.Runs, S.Runs == 1 ? "" : "s");
  Out += Buf;
  if (S.PriorRuns) {
    std::snprintf(Buf, sizeof Buf,
                  "  includes %" PRIu64 " run%s from plan 0x%016" PRIx64
                  " (rewrite provenance)\n",
                  S.PriorRuns, S.PriorRuns == 1 ? "" : "s", S.ResolvedFrom);
    Out += Buf;
  }
  if (!S.Symbols.empty())
    Out += "  quil: " + S.Symbols + "\n";
  std::uint64_t Total = S.totalNanos();
  for (const OpProfile &O : S.Ops) {
    Out += "  ";
    Out.append(2 * O.Depth, ' ');
    Out += "-> " + O.Label;
    std::snprintf(Buf, sizeof Buf, "  rows_in=%" PRIu64 " rows_out=%" PRIu64,
                  O.RowsIn, O.RowsOut);
    Out += Buf;
    Out += " sel=" + fmtSel(O.selectivity());
    if (O.Timed) {
      Out += " time=" + fmtNanos(O.Nanos);
      double Pct = Total ? 100.0 * static_cast<double>(O.Nanos) /
                               static_cast<double>(Total)
                         : 0.0;
      Out += " (" + fmtPct(Pct) + "%)";
    }
    Out += "\n";
  }
  if (!S.WorkerMerges.empty()) {
    Out += "  workers:";
    for (const auto &[W, N] : S.WorkerMerges) {
      std::snprintf(Buf, sizeof Buf, " %u:%" PRIu64, W, N);
      Out += Buf;
    }
    Out += "\n";
  }
  return Out;
}

std::string obs::profileJson(const ProfileSnapshot &S) {
  std::string Out;
  char Buf[192];
  std::snprintf(Buf, sizeof Buf, "{\"plan\":\"0x%016" PRIx64 "\",", S.PlanHash);
  Out += Buf;
  Out += "\"name\":\"";
  appendEscaped(Out, S.Name);
  Out += "\",\"symbols\":\"";
  appendEscaped(Out, S.Symbols);
  std::snprintf(Buf, sizeof Buf, "\",\"runs\":%" PRIu64 ",", S.Runs);
  Out += Buf;
  if (S.PriorRuns) {
    std::snprintf(Buf, sizeof Buf,
                  "\"prior_runs\":%" PRIu64 ",\"resolved_from\":\"0x%016" PRIx64
                  "\",",
                  S.PriorRuns, S.ResolvedFrom);
    Out += Buf;
  }
  Out += "\"workers\":{";
  bool First = true;
  for (const auto &[W, N] : S.WorkerMerges) {
    std::snprintf(Buf, sizeof Buf, "%s\"%u\":%" PRIu64, First ? "" : ",", W,
                  N);
    Out += Buf;
    First = false;
  }
  Out += "},\"total_nanos\":";
  std::uint64_t Total = S.totalNanos();
  std::snprintf(Buf, sizeof Buf, "%" PRIu64 ",\"ops\":[", Total);
  Out += Buf;
  First = true;
  for (const OpProfile &O : S.Ops) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"op\":\"";
    appendEscaped(Out, O.Label);
    double Pct = Total && O.Timed ? 100.0 * static_cast<double>(O.Nanos) /
                                        static_cast<double>(Total)
                                  : 0.0;
    std::snprintf(Buf, sizeof Buf,
                  "\",\"depth\":%u,\"rows_in\":%" PRIu64
                  ",\"rows_out\":%" PRIu64 ",\"selectivity\":%.6f"
                  ",\"nanos\":%" PRIu64 ",\"time_pct\":%.1f}",
                  O.Depth, O.RowsIn, O.RowsOut,
                  O.selectivity() < 0 ? -1.0 : O.selectivity(), O.Nanos, Pct);
    Out += Buf;
  }
  Out += "]}";
  return Out;
}

namespace {

// Prometheus label values allow backslash-escaped '\\', '"' and '\n'.
void appendLabelEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '\\' || C == '"')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
}

} // namespace

std::string obs::profilesPrometheus() {
  std::vector<ProfileSnapshot> All = ProfileStore::global().snapshotAll();
  if (All.empty())
    return "";
  std::string Out;
  char Buf[256];
  Out += "# TYPE steno_profile_runs_total counter\n";
  for (const ProfileSnapshot &S : All) {
    std::snprintf(Buf, sizeof Buf,
                  "steno_profile_runs_total{plan=\"0x%016" PRIx64
                  "\",name=\"",
                  S.PlanHash);
    Out += Buf;
    appendLabelEscaped(Out, S.Name);
    std::snprintf(Buf, sizeof Buf, "\"} %" PRIu64 "\n", S.Runs);
    Out += Buf;
  }
  Out += "# TYPE steno_profile_op_rows_total counter\n";
  Out += "# TYPE steno_profile_op_nanos_total counter\n";
  for (const ProfileSnapshot &S : All) {
    for (std::size_t K = 0; K != S.Ops.size(); ++K) {
      const OpProfile &O = S.Ops[K];
      for (int Dir = 0; Dir != 2; ++Dir) {
        std::snprintf(Buf, sizeof Buf,
                      "steno_profile_op_rows_total{plan=\"0x%016" PRIx64
                      "\",op=\"%zu\",label=\"",
                      S.PlanHash, K);
        Out += Buf;
        appendLabelEscaped(Out, O.Label);
        std::snprintf(Buf, sizeof Buf, "\",dir=\"%s\"} %" PRIu64 "\n",
                      Dir ? "out" : "in", Dir ? O.RowsOut : O.RowsIn);
        Out += Buf;
      }
      if (!O.Timed)
        continue;
      std::snprintf(Buf, sizeof Buf,
                    "steno_profile_op_nanos_total{plan=\"0x%016" PRIx64
                    "\",op=\"%zu\",label=\"",
                    S.PlanHash, K);
      Out += Buf;
      appendLabelEscaped(Out, O.Label);
      std::snprintf(Buf, sizeof Buf, "\"} %" PRIu64 "\n", O.Nanos);
      Out += Buf;
    }
  }
  return Out;
}

std::string obs::exportPrometheus() {
  return dumpMetricsPrometheus() + profilesPrometheus();
}

//===----------------------------------------------------------------------===//
// STENO_METRICS_OUT
//===----------------------------------------------------------------------===//

namespace {

void writeMetricsAtExit() {
  const char *Path = std::getenv("STENO_METRICS_OUT");
  if (!Path || !*Path)
    return;
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return;
  std::string Text = exportPrometheus();
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
}

} // namespace

bool obs::registerMetricsExportAtExit() {
  static const bool Registered = [] {
    if (const char *Path = std::getenv("STENO_METRICS_OUT");
        Path && *Path)
      std::atexit(writeMetricsAtExit);
    return true;
  }();
  return Registered;
}
