//===- linq/Seq.h - Fluent query-over-iterator facade ----------*- C++ -*-===//
///
/// \file
/// Seq<T> is the user-facing handle of the baseline library: a cheap,
/// copyable wrapper over a shared Enumerable<T> exposing the LINQ operator
/// set as a fluent interface, e.g.
/// \code
///   auto EvenSquares = from(Xs)
///       .where([](int64_t X) { return X % 2 == 0; })
///       .select([](int64_t X) { return X * X; });
/// \endcode
/// Everything here executes through the lazy iterator chains of
/// Transforms.h/Sinks.h; this is the "LINQ" column of every benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_LINQ_SEQ_H
#define STENO_LINQ_SEQ_H

#include "linq/Enumerator.h"
#include "linq/Sinks.h"
#include "linq/Sources.h"
#include "linq/Transforms.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace steno {
namespace linq {

template <typename T> class Seq;

namespace detail {
/// Trait to pull U out of Seq<U> for selectMany deduction.
template <typename S> struct SeqElement;
template <typename U> struct SeqElement<Seq<U>> {
  using type = U;
};
} // namespace detail

/// Copyable handle to an immutable lazy sequence.
template <typename T> class Seq {
public:
  using value_type = T;

  Seq() = default;

  explicit Seq(std::shared_ptr<const Enumerable<T>> Impl)
      : Impl(std::move(Impl)) {}

  /// The underlying enumerable (shared, immutable).
  const std::shared_ptr<const Enumerable<T>> &impl() const { return Impl; }

  /// Starts a traversal (two virtual calls per element from here on).
  std::unique_ptr<Enumerator<T>> getEnumerator() const {
    assert(Impl && "enumerating a default-constructed Seq");
    return Impl->getEnumerator();
  }

  //===--------------------------------------------------------------===//
  // Composable operators (lazy)
  //===--------------------------------------------------------------===//

  /// Select: element-wise transformation (Trans in QUIL).
  template <typename F> auto select(F Fn) const {
    using U = std::invoke_result_t<F, T>;
    return Seq<U>(std::make_shared<SelectEnumerable<T, U>>(
        Impl, std::function<U(T)>(std::move(Fn))));
  }

  /// Where: predicate filter (Pred in QUIL).
  template <typename F> Seq<T> where(F Pred) const {
    return Seq<T>(std::make_shared<WhereEnumerable<T>>(
        Impl, std::function<bool(T)>(std::move(Pred))));
  }

  /// Take(n) / Skip(n) / TakeWhile / SkipWhile: stateful predicates.
  Seq<T> take(std::int64_t N) const {
    return Seq<T>(std::make_shared<TakeEnumerable<T>>(Impl, N));
  }

  Seq<T> skip(std::int64_t N) const {
    return Seq<T>(std::make_shared<SkipEnumerable<T>>(Impl, N));
  }

  template <typename F> Seq<T> takeWhile(F Pred) const {
    return Seq<T>(std::make_shared<TakeWhileEnumerable<T>>(
        Impl, std::function<bool(T)>(std::move(Pred))));
  }

  template <typename F> Seq<T> skipWhile(F Pred) const {
    return Seq<T>(std::make_shared<SkipWhileEnumerable<T>>(
        Impl, std::function<bool(T)>(std::move(Pred))));
  }

  /// SelectMany: flattening over a per-element sub-sequence; \p Fn maps an
  /// element to a Seq<U>.
  template <typename F> auto selectMany(F Fn) const {
    using SubSeq = std::invoke_result_t<F, T>;
    using U = typename detail::SeqElement<SubSeq>::type;
    typename SelectManyEnumerable<T, U>::CollectionFn Wrapped =
        [Fn = std::move(Fn)](T Elem) { return Fn(std::move(Elem)).impl(); };
    return Seq<U>(
        std::make_shared<SelectManyEnumerable<T, U>>(Impl, std::move(Wrapped)));
  }

  Seq<T> concat(const Seq<T> &Other) const {
    return Seq<T>(std::make_shared<ConcatEnumerable<T>>(Impl, Other.Impl));
  }

  template <typename U> Seq<std::pair<T, U>> zip(const Seq<U> &Other) const {
    return Seq<std::pair<T, U>>(
        std::make_shared<ZipEnumerable<T, U>>(Impl, Other.impl()));
  }

  Seq<T> distinct() const {
    return Seq<T>(std::make_shared<DistinctEnumerable<T>>(Impl));
  }

  Seq<T> reverse() const {
    return Seq<T>(std::make_shared<ReverseEnumerable<T>>(Impl));
  }

  //===--------------------------------------------------------------===//
  // Sink operators (lazy handle, eager on first traversal)
  //===--------------------------------------------------------------===//

  /// GroupBy(keySelector) -> groups in key-first-appearance order.
  template <typename F> auto groupBy(F KeySel) const {
    using K = std::invoke_result_t<F, T>;
    return Seq<Grouping<K, T>>(std::make_shared<GroupByEnumerable<T, K>>(
        Impl, std::function<K(T)>(std::move(KeySel))));
  }

  /// GroupBy(keySelector, resultSelector): \p Result maps (key, bag) to a
  /// result row. When the result selector aggregates, Steno replaces this
  /// with the fused GroupByAggregate sink (paper §4.3); the baseline always
  /// materializes the bags.
  template <typename FK, typename FR> auto groupBy(FK KeySel, FR Result) const {
    using K = std::invoke_result_t<FK, T>;
    using R = std::invoke_result_t<FR, K, const std::vector<T> &>;
    return Seq<R>(std::make_shared<GroupByResultEnumerable<T, K, R>>(
        Impl, std::function<K(T)>(std::move(KeySel)),
        typename GroupByResultEnumerable<T, K, R>::ResultFn(
            std::move(Result))));
  }

  template <typename F> Seq<T> orderBy(F KeySel) const {
    using K = std::invoke_result_t<F, T>;
    return Seq<T>(std::make_shared<OrderByEnumerable<T, K>>(
        Impl, std::function<K(T)>(std::move(KeySel)), /*Descending=*/false));
  }

  template <typename F> Seq<T> orderByDescending(F KeySel) const {
    using K = std::invoke_result_t<F, T>;
    return Seq<T>(std::make_shared<OrderByEnumerable<T, K>>(
        Impl, std::function<K(T)>(std::move(KeySel)), /*Descending=*/true));
  }

  /// Equi-join against \p Inner (hash join on the inner side).
  template <typename TInner, typename FOK, typename FIK, typename FR>
  auto join(const Seq<TInner> &Inner, FOK OuterKey, FIK InnerKey,
            FR Result) const {
    using K = std::invoke_result_t<FOK, T>;
    using R = std::invoke_result_t<FR, T, TInner>;
    return Seq<R>(std::make_shared<JoinEnumerable<T, TInner, K, R>>(
        Impl, Inner.impl(), std::function<K(T)>(std::move(OuterKey)),
        std::function<K(TInner)>(std::move(InnerKey)),
        std::function<R(T, TInner)>(std::move(Result))));
  }

  //===--------------------------------------------------------------===//
  // Aggregate operators (eager; Agg in QUIL)
  //===--------------------------------------------------------------===//

  /// Aggregate(seed, func): left fold.
  template <typename U, typename F> U aggregate(U Seed, F Fn) const {
    std::function<U(U, T)> Step = std::move(Fn);
    U Acc = std::move(Seed);
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    while (E->moveNext())
      Acc = Step(std::move(Acc), E->current());
    return Acc;
  }

  /// Aggregate(seed, func, resultSelector).
  template <typename U, typename F, typename FR>
  auto aggregate(U Seed, F Fn, FR Result) const {
    return Result(aggregate(std::move(Seed), std::move(Fn)));
  }

  T sum() const {
    T Acc{};
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    while (E->moveNext())
      Acc = Acc + E->current();
    return Acc;
  }

  T min() const {
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    bool Got = E->moveNext();
    assert(Got && "min() of empty sequence");
    (void)Got;
    T Best = E->current();
    while (E->moveNext()) {
      T Candidate = E->current();
      if (Candidate < Best)
        Best = std::move(Candidate);
    }
    return Best;
  }

  T max() const {
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    bool Got = E->moveNext();
    assert(Got && "max() of empty sequence");
    (void)Got;
    T Best = E->current();
    while (E->moveNext()) {
      T Candidate = E->current();
      if (Best < Candidate)
        Best = std::move(Candidate);
    }
    return Best;
  }

  double average() const {
    static_assert(std::is_arithmetic_v<T>, "average() needs numbers");
    double Acc = 0;
    std::int64_t N = 0;
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    while (E->moveNext()) {
      Acc += static_cast<double>(E->current());
      ++N;
    }
    assert(N > 0 && "average() of empty sequence");
    return Acc / static_cast<double>(N);
  }

  std::int64_t count() const {
    std::int64_t N = 0;
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    while (E->moveNext())
      ++N;
    return N;
  }

  template <typename F> std::int64_t count(F Pred) const {
    std::function<bool(T)> P = std::move(Pred);
    std::int64_t N = 0;
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    while (E->moveNext())
      if (P(E->current()))
        ++N;
    return N;
  }

  bool any() const { return getEnumerator()->moveNext(); }

  template <typename F> bool any(F Pred) const {
    std::function<bool(T)> P = std::move(Pred);
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    while (E->moveNext())
      if (P(E->current()))
        return true;
    return false;
  }

  template <typename F> bool all(F Pred) const {
    std::function<bool(T)> P = std::move(Pred);
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    while (E->moveNext())
      if (!P(E->current()))
        return false;
    return true;
  }

  T first() const {
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    bool Got = E->moveNext();
    assert(Got && "first() of empty sequence");
    (void)Got;
    return E->current();
  }

  T firstOrDefault(T Default = T{}) const {
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    return E->moveNext() ? E->current() : std::move(Default);
  }

  T last() const {
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    bool Got = E->moveNext();
    assert(Got && "last() of empty sequence");
    (void)Got;
    T Value = E->current();
    while (E->moveNext())
      Value = E->current();
    return Value;
  }

  T elementAt(std::int64_t Index) const {
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    for (std::int64_t I = 0; I <= Index; ++I) {
      bool Got = E->moveNext();
      assert(Got && "elementAt() out of range");
      (void)Got;
    }
    return E->current();
  }

  bool contains(const T &Value) const {
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    while (E->moveNext())
      if (E->current() == Value)
        return true;
    return false;
  }

  /// ToArray/ToList analogue: materializes the sequence.
  std::vector<T> toVector() const {
    std::vector<T> Out;
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    while (E->moveNext())
      Out.push_back(E->current());
    return Out;
  }

  /// ToLookup(keySelector).
  template <typename F> auto toLookup(F KeySel) const {
    using K = std::invoke_result_t<F, T>;
    std::function<K(T)> Sel = std::move(KeySel);
    Lookup<K, T> Out;
    std::unique_ptr<Enumerator<T>> E = getEnumerator();
    while (E->moveNext()) {
      T Elem = E->current();
      Out.put(Sel(Elem), std::move(Elem));
    }
    return Out;
  }

private:
  std::shared_ptr<const Enumerable<T>> Impl;
};

//===----------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------===//

/// Wraps a vector (copied once into shared storage).
template <typename T> Seq<T> from(std::vector<T> Data) {
  return Seq<T>(std::make_shared<VectorEnumerable<T>>(
      std::make_shared<const std::vector<T>>(std::move(Data))));
}

/// Wraps an already-shared vector without copying.
template <typename T>
Seq<T> fromShared(std::shared_ptr<const std::vector<T>> Data) {
  return Seq<T>(std::make_shared<VectorEnumerable<T>>(std::move(Data)));
}

/// Wraps a borrowed buffer; the caller keeps it alive.
template <typename T> Seq<T> fromSpan(const T *Begin, size_t Count) {
  return Seq<T>(std::make_shared<SpanEnumerable<T>>(Begin, Count));
}

/// Enumerable.Range.
inline Seq<std::int64_t> range(std::int64_t Start, std::int64_t Count) {
  return Seq<std::int64_t>(std::make_shared<RangeEnumerable>(Start, Count));
}

/// Enumerable.Repeat.
template <typename T> Seq<T> repeat(T Value, std::int64_t Count) {
  return Seq<T>(
      std::make_shared<RepeatEnumerable<T>>(std::move(Value), Count));
}

/// Range-for support: for (auto X : Xs) { ... } desugars to the iterator
/// protocol of paper §2.
template <typename T> EnumeratorRangeIterator<T> begin(const Seq<T> &S) {
  return EnumeratorRangeIterator<T>(
      std::shared_ptr<Enumerator<T>>(S.getEnumerator()));
}

template <typename T> EnumeratorRangeIterator<T> end(const Seq<T> &) {
  return EnumeratorRangeIterator<T>();
}

} // namespace linq
} // namespace steno

#endif // STENO_LINQ_SEQ_H
