//===- linq/Lookup.h - Key/value multi-map sink collection -----*- C++ -*-===//
///
/// \file
/// The Lookup<K, T> utility of paper Figure 7(b): a key-value multi-map that
/// preserves first-insertion key order (matching LINQ GroupBy's documented
/// ordering), enumerable as a sequence of Grouping<K, T>. GroupBy sinks in
/// both the baseline library and the generated code build one of these.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_LINQ_LOOKUP_H
#define STENO_LINQ_LOOKUP_H

#include <cassert>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace steno {
namespace linq {

/// One key together with the bag of elements that mapped to it.
template <typename K, typename T> class Grouping {
public:
  Grouping() = default;
  Grouping(K Key, std::shared_ptr<const std::vector<T>> Values)
      : GroupKey(std::move(Key)), GroupValues(std::move(Values)) {}

  const K &key() const { return GroupKey; }

  const std::vector<T> &values() const {
    assert(GroupValues && "empty grouping handle");
    return *GroupValues;
  }

private:
  K GroupKey{};
  std::shared_ptr<const std::vector<T>> GroupValues;
};

/// Key-value multi-map preserving first-insertion key order. put() appends
/// an element to its key's bag, creating the bag on first sight of the key.
template <typename K, typename T> class Lookup {
public:
  /// Appends \p Value under \p Key.
  void put(const K &Key, T Value) {
    auto It = Index.find(Key);
    if (It == Index.end()) {
      Index.emplace(Key, Buckets.size());
      Buckets.emplace_back(Key, std::make_shared<std::vector<T>>());
    }
    size_t Slot = Index.at(Key);
    Buckets[Slot].second->push_back(std::move(Value));
  }

  /// Number of distinct keys.
  size_t size() const { return Buckets.size(); }

  bool contains(const K &Key) const { return Index.count(Key) != 0; }

  /// The bag for \p Key; asserts that the key is present.
  const std::vector<T> &at(const K &Key) const {
    auto It = Index.find(Key);
    assert(It != Index.end() && "lookup key not present");
    return *Buckets[It->second].second;
  }

  /// Group at insertion position \p I.
  Grouping<K, T> group(size_t I) const {
    assert(I < Buckets.size() && "group index out of range");
    return Grouping<K, T>(Buckets[I].first, Buckets[I].second);
  }

  /// Materializes all groups in key-first-insertion order.
  std::vector<Grouping<K, T>> groups() const {
    std::vector<Grouping<K, T>> Out;
    Out.reserve(Buckets.size());
    for (size_t I = 0; I != Buckets.size(); ++I)
      Out.push_back(group(I));
    return Out;
  }

private:
  std::vector<std::pair<K, std::shared_ptr<std::vector<T>>>> Buckets;
  std::unordered_map<K, size_t> Index;
};

} // namespace linq
} // namespace steno

#endif // STENO_LINQ_LOOKUP_H
