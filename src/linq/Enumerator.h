//===- linq/Enumerator.h - Lazy iterator interfaces ------------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IEnumerator<T>/IEnumerable<T> analogue (paper §2). This baseline is
/// *deliberately* implemented the way .NET LINQ is implemented: every
/// operator boundary is crossed through two virtual calls per element
/// (moveNext() + current()), operators hold their user functions in
/// std::function (one more indirect call per element), and stateful
/// operators carry explicit state-machine logic that simulates coroutine
/// behaviour. These are precisely the four overhead sources enumerated in
/// the paper's introduction; Steno's job is to compile them away.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_LINQ_ENUMERATOR_H
#define STENO_LINQ_ENUMERATOR_H

#include <iterator>
#include <memory>

namespace steno {
namespace linq {

/// Pull-based iterator over a sequence of T. Mirrors .NET's
/// IEnumerator<T>: moveNext() advances (returning false at the end) and
/// current() observes the element at the current position. Both calls are
/// virtual by design — see the file comment.
template <typename T> class Enumerator {
public:
  virtual ~Enumerator() = default;

  /// Advances to the next element. Returns false when no elements remain.
  /// Must be called before the first current().
  virtual bool moveNext() = 0;

  /// The element at the current position. Only valid after moveNext()
  /// returned true. Returns by value, like C# Current for value types.
  virtual T current() const = 0;
};

/// A sequence that can be traversed any number of times. Mirrors .NET's
/// IEnumerable<T>.
template <typename T> class Enumerable {
public:
  virtual ~Enumerable() = default;

  /// Starts a fresh traversal.
  virtual std::unique_ptr<Enumerator<T>> getEnumerator() const = 0;
};

/// Input-iterator adapter so that range-based for works over enumerables
/// (the foreach desugaring of paper §2).
template <typename T> class EnumeratorRangeIterator {
public:
  using iterator_category = std::input_iterator_tag;
  using value_type = T;
  using difference_type = std::ptrdiff_t;
  using pointer = const T *;
  using reference = T;

  EnumeratorRangeIterator() = default;

  explicit EnumeratorRangeIterator(std::shared_ptr<Enumerator<T>> E)
      : Enum(std::move(E)) {
    advance();
  }

  T operator*() const { return Value; }

  EnumeratorRangeIterator &operator++() {
    advance();
    return *this;
  }

  void operator++(int) { advance(); }

  bool operator==(const EnumeratorRangeIterator &Other) const {
    return AtEnd == Other.AtEnd && (AtEnd || Enum == Other.Enum);
  }

  bool operator!=(const EnumeratorRangeIterator &Other) const {
    return !(*this == Other);
  }

private:
  void advance() {
    if (!Enum || !Enum->moveNext()) {
      AtEnd = true;
      Enum.reset();
      return;
    }
    AtEnd = false;
    Value = Enum->current();
  }

  std::shared_ptr<Enumerator<T>> Enum;
  T Value{};
  bool AtEnd = true;
};

} // namespace linq
} // namespace steno

#endif // STENO_LINQ_ENUMERATOR_H
