//===- linq/Anchor.cpp ----------------------------------------*- C++ -*-===//
//
// The linq library is header-only templates; this file anchors the static
// library target and instantiates a few common specializations to catch
// template errors at library-build time.
//
//===----------------------------------------------------------------------===//

#include "linq/Linq.h"

namespace steno {
namespace linq {

template class Seq<double>;
template class Seq<std::int64_t>;
template class Lookup<std::int64_t, double>;

} // namespace linq
} // namespace steno
