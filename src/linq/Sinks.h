//===- linq/Sinks.h - Sink operator enumerables ----------------*- C++ -*-===//
///
/// \file
/// Sink operators (paper Table 1): GroupBy, OrderBy and Join transform the
/// input into an intermediate collection that is then enumerated. As in
/// LINQ, the sink is built lazily on the first moveNext() of the resulting
/// enumerator.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_LINQ_SINKS_H
#define STENO_LINQ_SINKS_H

#include "linq/Enumerator.h"
#include "linq/Lookup.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

namespace steno {
namespace linq {

/// GroupBy(keySelector): yields one Grouping<K, T> per distinct key, keys in
/// first-appearance order.
template <typename T, typename K>
class GroupByEnumerable final : public Enumerable<Grouping<K, T>> {
public:
  GroupByEnumerable(std::shared_ptr<const Enumerable<T>> Upstream,
                    std::function<K(T)> KeySel)
      : Upstream(std::move(Upstream)), KeySel(std::move(KeySel)) {}

  std::unique_ptr<Enumerator<Grouping<K, T>>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream, KeySel);
  }

private:
  class Iter final : public Enumerator<Grouping<K, T>> {
  public:
    Iter(std::shared_ptr<const Enumerable<T>> Source,
         std::function<K(T)> KeySel)
        : Source(std::move(Source)), KeySel(std::move(KeySel)) {}

    bool moveNext() override {
      if (!Built) {
        std::unique_ptr<Enumerator<T>> Up = Source->getEnumerator();
        while (Up->moveNext()) {
          T Elem = Up->current();
          Sink.put(KeySel(Elem), std::move(Elem));
        }
        Built = true;
      }
      if (Next >= Sink.size())
        return false;
      Pos = Next++;
      return true;
    }

    Grouping<K, T> current() const override { return Sink.group(Pos); }

  private:
    std::shared_ptr<const Enumerable<T>> Source;
    std::function<K(T)> KeySel;
    Lookup<K, T> Sink;
    size_t Next = 0;
    size_t Pos = 0;
    bool Built = false;
  };

  std::shared_ptr<const Enumerable<T>> Upstream;
  std::function<K(T)> KeySel;
};

/// GroupBy(keySelector, resultSelector): applies the result selector to each
/// (key, bag) pair — the GroupBy overload whose aggregating result selector
/// Steno specializes into GroupByAggregate (paper §4.3).
template <typename T, typename K, typename R>
class GroupByResultEnumerable final : public Enumerable<R> {
public:
  using ResultFn = std::function<R(K, const std::vector<T> &)>;

  GroupByResultEnumerable(std::shared_ptr<const Enumerable<T>> Upstream,
                          std::function<K(T)> KeySel, ResultFn Result)
      : Upstream(std::move(Upstream)), KeySel(std::move(KeySel)),
        Result(std::move(Result)) {}

  std::unique_ptr<Enumerator<R>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream, KeySel, Result);
  }

private:
  class Iter final : public Enumerator<R> {
  public:
    Iter(std::shared_ptr<const Enumerable<T>> Source,
         std::function<K(T)> KeySel, ResultFn Result)
        : Source(std::move(Source)), KeySel(std::move(KeySel)),
          Result(std::move(Result)) {}

    bool moveNext() override {
      if (!Built) {
        std::unique_ptr<Enumerator<T>> Up = Source->getEnumerator();
        while (Up->moveNext()) {
          T Elem = Up->current();
          Sink.put(KeySel(Elem), std::move(Elem));
        }
        Built = true;
      }
      if (Next >= Sink.size())
        return false;
      Grouping<K, T> G = Sink.group(Next++);
      Value = Result(G.key(), G.values());
      return true;
    }

    R current() const override { return Value; }

  private:
    std::shared_ptr<const Enumerable<T>> Source;
    std::function<K(T)> KeySel;
    ResultFn Result;
    Lookup<K, T> Sink;
    size_t Next = 0;
    R Value{};
    bool Built = false;
  };

  std::shared_ptr<const Enumerable<T>> Upstream;
  std::function<K(T)> KeySel;
  ResultFn Result;
};

/// OrderBy(keySelector): stable sort by key, materialized on first
/// moveNext().
template <typename T, typename K>
class OrderByEnumerable final : public Enumerable<T> {
public:
  OrderByEnumerable(std::shared_ptr<const Enumerable<T>> Upstream,
                    std::function<K(T)> KeySel, bool Descending)
      : Upstream(std::move(Upstream)), KeySel(std::move(KeySel)),
        Descending(Descending) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream, KeySel, Descending);
  }

private:
  class Iter final : public Enumerator<T> {
  public:
    Iter(std::shared_ptr<const Enumerable<T>> Source,
         std::function<K(T)> KeySel, bool Descending)
        : Source(std::move(Source)), KeySel(std::move(KeySel)),
          Descending(Descending) {}

    bool moveNext() override {
      if (!Built) {
        std::unique_ptr<Enumerator<T>> Up = Source->getEnumerator();
        while (Up->moveNext())
          Buffer.push_back(Up->current());
        std::vector<K> Keys;
        Keys.reserve(Buffer.size());
        for (const T &Elem : Buffer)
          Keys.push_back(KeySel(Elem));
        std::vector<size_t> Order(Buffer.size());
        for (size_t I = 0; I != Order.size(); ++I)
          Order[I] = I;
        bool Desc = Descending;
        std::stable_sort(Order.begin(), Order.end(),
                         [&Keys, Desc](size_t A, size_t B) {
                           return Desc ? Keys[B] < Keys[A] : Keys[A] < Keys[B];
                         });
        std::vector<T> Sorted;
        Sorted.reserve(Buffer.size());
        for (size_t I : Order)
          Sorted.push_back(std::move(Buffer[I]));
        Buffer = std::move(Sorted);
        Built = true;
      }
      if (Next >= Buffer.size())
        return false;
      Pos = Next++;
      return true;
    }

    T current() const override { return Buffer[Pos]; }

  private:
    std::shared_ptr<const Enumerable<T>> Source;
    std::function<K(T)> KeySel;
    std::vector<T> Buffer;
    size_t Next = 0;
    size_t Pos = 0;
    bool Descending;
    bool Built = false;
  };

  std::shared_ptr<const Enumerable<T>> Upstream;
  std::function<K(T)> KeySel;
  bool Descending;
};

/// Join(inner, outerKey, innerKey, result): equi-join implemented as a hash
/// join — the inner side is built into a Lookup on first moveNext(), and
/// each outer element probes it.
template <typename TOuter, typename TInner, typename K, typename R>
class JoinEnumerable final : public Enumerable<R> {
public:
  JoinEnumerable(std::shared_ptr<const Enumerable<TOuter>> Outer,
                 std::shared_ptr<const Enumerable<TInner>> Inner,
                 std::function<K(TOuter)> OuterKey,
                 std::function<K(TInner)> InnerKey,
                 std::function<R(TOuter, TInner)> Result)
      : Outer(std::move(Outer)), Inner(std::move(Inner)),
        OuterKey(std::move(OuterKey)), InnerKey(std::move(InnerKey)),
        Result(std::move(Result)) {}

  std::unique_ptr<Enumerator<R>> getEnumerator() const override {
    return std::make_unique<Iter>(Outer, Inner, OuterKey, InnerKey, Result);
  }

private:
  class Iter final : public Enumerator<R> {
  public:
    Iter(std::shared_ptr<const Enumerable<TOuter>> Outer,
         std::shared_ptr<const Enumerable<TInner>> Inner,
         std::function<K(TOuter)> OuterKey, std::function<K(TInner)> InnerKey,
         std::function<R(TOuter, TInner)> Result)
        : Outer(std::move(Outer)), Inner(std::move(Inner)),
          OuterKey(std::move(OuterKey)), InnerKey(std::move(InnerKey)),
          Result(std::move(Result)) {}

    bool moveNext() override {
      if (!Built) {
        std::unique_ptr<Enumerator<TInner>> In = Inner->getEnumerator();
        while (In->moveNext()) {
          TInner Elem = In->current();
          Sink.put(InnerKey(Elem), std::move(Elem));
        }
        OuterIter = Outer->getEnumerator();
        Built = true;
      }
      for (;;) {
        if (Matches && MatchPos < Matches->size()) {
          Value = Result(OuterElem, (*Matches)[MatchPos++]);
          return true;
        }
        Matches = nullptr;
        if (!OuterIter->moveNext())
          return false;
        OuterElem = OuterIter->current();
        K Key = OuterKey(OuterElem);
        if (Sink.contains(Key)) {
          Matches = &Sink.at(Key);
          MatchPos = 0;
        }
      }
    }

    R current() const override { return Value; }

  private:
    std::shared_ptr<const Enumerable<TOuter>> Outer;
    std::shared_ptr<const Enumerable<TInner>> Inner;
    std::function<K(TOuter)> OuterKey;
    std::function<K(TInner)> InnerKey;
    std::function<R(TOuter, TInner)> Result;
    Lookup<K, TInner> Sink;
    std::unique_ptr<Enumerator<TOuter>> OuterIter;
    TOuter OuterElem{};
    const std::vector<TInner> *Matches = nullptr;
    size_t MatchPos = 0;
    R Value{};
    bool Built = false;
  };

  std::shared_ptr<const Enumerable<TOuter>> Outer;
  std::shared_ptr<const Enumerable<TInner>> Inner;
  std::function<K(TOuter)> OuterKey;
  std::function<K(TInner)> InnerKey;
  std::function<R(TOuter, TInner)> Result;
};

} // namespace linq
} // namespace steno

#endif // STENO_LINQ_SINKS_H
