//===- linq/Transforms.h - Composable operator enumerators -----*- C++ -*-===//
///
/// \file
/// The composable LINQ operators (paper §2, Figure 2): each consumes
/// elements from an upstream Enumerator through virtual calls and yields
/// (possibly transformed) elements downstream. User functions are held in
/// std::function, costing one more indirect call per element, and the
/// stateful operators (Take, Skip, SelectMany, Concat, ...) carry explicit
/// state-machine fields — the coroutine-simulation logic whose per-element
/// cost Steno eliminates.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_LINQ_TRANSFORMS_H
#define STENO_LINQ_TRANSFORMS_H

#include "linq/Enumerator.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

namespace steno {
namespace linq {

/// Select(f): element-wise transformation.
template <typename TIn, typename TOut>
class SelectEnumerable final : public Enumerable<TOut> {
public:
  SelectEnumerable(std::shared_ptr<const Enumerable<TIn>> Upstream,
                   std::function<TOut(TIn)> Fn)
      : Upstream(std::move(Upstream)), Fn(std::move(Fn)) {}

  std::unique_ptr<Enumerator<TOut>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream->getEnumerator(), Fn);
  }

private:
  class Iter final : public Enumerator<TOut> {
  public:
    Iter(std::unique_ptr<Enumerator<TIn>> Up, std::function<TOut(TIn)> Fn)
        : Up(std::move(Up)), Fn(std::move(Fn)) {}

    bool moveNext() override {
      if (!Up->moveNext())
        return false;
      Value = Fn(Up->current());
      return true;
    }

    TOut current() const override { return Value; }

  private:
    std::unique_ptr<Enumerator<TIn>> Up;
    std::function<TOut(TIn)> Fn;
    TOut Value{};
  };

  std::shared_ptr<const Enumerable<TIn>> Upstream;
  std::function<TOut(TIn)> Fn;
};

/// Where(p): keeps only elements matching the predicate.
template <typename T> class WhereEnumerable final : public Enumerable<T> {
public:
  WhereEnumerable(std::shared_ptr<const Enumerable<T>> Upstream,
                  std::function<bool(T)> Pred)
      : Upstream(std::move(Upstream)), Pred(std::move(Pred)) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream->getEnumerator(), Pred);
  }

private:
  class Iter final : public Enumerator<T> {
  public:
    Iter(std::unique_ptr<Enumerator<T>> Up, std::function<bool(T)> Pred)
        : Up(std::move(Up)), Pred(std::move(Pred)) {}

    bool moveNext() override {
      while (Up->moveNext()) {
        T Candidate = Up->current();
        if (Pred(Candidate)) {
          Value = std::move(Candidate);
          return true;
        }
      }
      return false;
    }

    T current() const override { return Value; }

  private:
    std::unique_ptr<Enumerator<T>> Up;
    std::function<bool(T)> Pred;
    T Value{};
  };

  std::shared_ptr<const Enumerable<T>> Upstream;
  std::function<bool(T)> Pred;
};

/// Take(n): yields at most the first n elements.
template <typename T> class TakeEnumerable final : public Enumerable<T> {
public:
  TakeEnumerable(std::shared_ptr<const Enumerable<T>> Upstream,
                 std::int64_t Count)
      : Upstream(std::move(Upstream)), Count(Count < 0 ? 0 : Count) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream->getEnumerator(), Count);
  }

private:
  class Iter final : public Enumerator<T> {
  public:
    Iter(std::unique_ptr<Enumerator<T>> Up, std::int64_t Count)
        : Up(std::move(Up)), Remaining(Count) {}

    bool moveNext() override {
      if (Remaining == 0)
        return false;
      if (!Up->moveNext()) {
        Remaining = 0;
        return false;
      }
      --Remaining;
      return true;
    }

    T current() const override { return Up->current(); }

  private:
    std::unique_ptr<Enumerator<T>> Up;
    std::int64_t Remaining;
  };

  std::shared_ptr<const Enumerable<T>> Upstream;
  std::int64_t Count;
};

/// Skip(n): discards the first n elements.
template <typename T> class SkipEnumerable final : public Enumerable<T> {
public:
  SkipEnumerable(std::shared_ptr<const Enumerable<T>> Upstream,
                 std::int64_t Count)
      : Upstream(std::move(Upstream)), Count(Count < 0 ? 0 : Count) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream->getEnumerator(), Count);
  }

private:
  class Iter final : public Enumerator<T> {
  public:
    Iter(std::unique_ptr<Enumerator<T>> Up, std::int64_t Count)
        : Up(std::move(Up)), ToSkip(Count) {}

    bool moveNext() override {
      while (ToSkip > 0) {
        if (!Up->moveNext()) {
          ToSkip = 0;
          return false;
        }
        --ToSkip;
      }
      return Up->moveNext();
    }

    T current() const override { return Up->current(); }

  private:
    std::unique_ptr<Enumerator<T>> Up;
    std::int64_t ToSkip;
  };

  std::shared_ptr<const Enumerable<T>> Upstream;
  std::int64_t Count;
};

/// TakeWhile(p): yields elements until the predicate first fails.
template <typename T> class TakeWhileEnumerable final : public Enumerable<T> {
public:
  TakeWhileEnumerable(std::shared_ptr<const Enumerable<T>> Upstream,
                      std::function<bool(T)> Pred)
      : Upstream(std::move(Upstream)), Pred(std::move(Pred)) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream->getEnumerator(), Pred);
  }

private:
  class Iter final : public Enumerator<T> {
  public:
    Iter(std::unique_ptr<Enumerator<T>> Up, std::function<bool(T)> Pred)
        : Up(std::move(Up)), Pred(std::move(Pred)) {}

    bool moveNext() override {
      if (Done || !Up->moveNext())
        return false;
      Value = Up->current();
      if (!Pred(Value)) {
        Done = true;
        return false;
      }
      return true;
    }

    T current() const override { return Value; }

  private:
    std::unique_ptr<Enumerator<T>> Up;
    std::function<bool(T)> Pred;
    T Value{};
    bool Done = false;
  };

  std::shared_ptr<const Enumerable<T>> Upstream;
  std::function<bool(T)> Pred;
};

/// SkipWhile(p): discards the longest matching prefix.
template <typename T> class SkipWhileEnumerable final : public Enumerable<T> {
public:
  SkipWhileEnumerable(std::shared_ptr<const Enumerable<T>> Upstream,
                      std::function<bool(T)> Pred)
      : Upstream(std::move(Upstream)), Pred(std::move(Pred)) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream->getEnumerator(), Pred);
  }

private:
  class Iter final : public Enumerator<T> {
  public:
    Iter(std::unique_ptr<Enumerator<T>> Up, std::function<bool(T)> Pred)
        : Up(std::move(Up)), Pred(std::move(Pred)) {}

    bool moveNext() override {
      if (!Skipping)
        return Up->moveNext();
      while (Up->moveNext()) {
        if (!Pred(Up->current())) {
          Skipping = false;
          return true;
        }
      }
      Skipping = false;
      return false;
    }

    T current() const override { return Up->current(); }

  private:
    std::unique_ptr<Enumerator<T>> Up;
    std::function<bool(T)> Pred;
    bool Skipping = true;
  };

  std::shared_ptr<const Enumerable<T>> Upstream;
  std::function<bool(T)> Pred;
};

/// SelectMany(f): flattens the per-element sub-sequences produced by f.
/// This is the nested-iterator pattern of paper §5: every inner element
/// crosses two iterator boundaries.
template <typename TIn, typename TOut>
class SelectManyEnumerable final : public Enumerable<TOut> {
public:
  using CollectionFn =
      std::function<std::shared_ptr<const Enumerable<TOut>>(TIn)>;

  SelectManyEnumerable(std::shared_ptr<const Enumerable<TIn>> Upstream,
                       CollectionFn Fn)
      : Upstream(std::move(Upstream)), Fn(std::move(Fn)) {}

  std::unique_ptr<Enumerator<TOut>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream->getEnumerator(), Fn);
  }

private:
  class Iter final : public Enumerator<TOut> {
  public:
    Iter(std::unique_ptr<Enumerator<TIn>> Up, CollectionFn Fn)
        : Up(std::move(Up)), Fn(std::move(Fn)) {}

    bool moveNext() override {
      for (;;) {
        if (Inner) {
          if (Inner->moveNext())
            return true;
          Inner.reset();
        }
        if (!Up->moveNext())
          return false;
        std::shared_ptr<const Enumerable<TOut>> Sub = Fn(Up->current());
        InnerOwner = Sub;
        Inner = Sub->getEnumerator();
      }
    }

    TOut current() const override { return Inner->current(); }

  private:
    std::unique_ptr<Enumerator<TIn>> Up;
    CollectionFn Fn;
    std::shared_ptr<const Enumerable<TOut>> InnerOwner;
    std::unique_ptr<Enumerator<TOut>> Inner;
  };

  std::shared_ptr<const Enumerable<TIn>> Upstream;
  CollectionFn Fn;
};

/// Concat: yields all of First, then all of Second.
template <typename T> class ConcatEnumerable final : public Enumerable<T> {
public:
  ConcatEnumerable(std::shared_ptr<const Enumerable<T>> First,
                   std::shared_ptr<const Enumerable<T>> Second)
      : First(std::move(First)), Second(std::move(Second)) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(First->getEnumerator(),
                                  Second->getEnumerator());
  }

private:
  class Iter final : public Enumerator<T> {
  public:
    Iter(std::unique_ptr<Enumerator<T>> A, std::unique_ptr<Enumerator<T>> B)
        : A(std::move(A)), B(std::move(B)) {}

    bool moveNext() override {
      if (OnFirst) {
        if (A->moveNext())
          return true;
        OnFirst = false;
      }
      return B->moveNext();
    }

    T current() const override {
      return OnFirst ? A->current() : B->current();
    }

  private:
    std::unique_ptr<Enumerator<T>> A;
    std::unique_ptr<Enumerator<T>> B;
    bool OnFirst = true;
  };

  std::shared_ptr<const Enumerable<T>> First;
  std::shared_ptr<const Enumerable<T>> Second;
};

/// Zip: pairs elements positionally, stopping at the shorter input.
template <typename A, typename B>
class ZipEnumerable final : public Enumerable<std::pair<A, B>> {
public:
  ZipEnumerable(std::shared_ptr<const Enumerable<A>> First,
                std::shared_ptr<const Enumerable<B>> Second)
      : First(std::move(First)), Second(std::move(Second)) {}

  std::unique_ptr<Enumerator<std::pair<A, B>>>
  getEnumerator() const override {
    return std::make_unique<Iter>(First->getEnumerator(),
                                  Second->getEnumerator());
  }

private:
  class Iter final : public Enumerator<std::pair<A, B>> {
  public:
    Iter(std::unique_ptr<Enumerator<A>> EA, std::unique_ptr<Enumerator<B>> EB)
        : EA(std::move(EA)), EB(std::move(EB)) {}

    bool moveNext() override { return EA->moveNext() && EB->moveNext(); }

    std::pair<A, B> current() const override {
      return {EA->current(), EB->current()};
    }

  private:
    std::unique_ptr<Enumerator<A>> EA;
    std::unique_ptr<Enumerator<B>> EB;
  };

  std::shared_ptr<const Enumerable<A>> First;
  std::shared_ptr<const Enumerable<B>> Second;
};

/// Distinct: suppresses duplicates (first occurrence wins). Requires
/// std::hash<T> and operator==.
template <typename T> class DistinctEnumerable final : public Enumerable<T> {
public:
  explicit DistinctEnumerable(std::shared_ptr<const Enumerable<T>> Upstream)
      : Upstream(std::move(Upstream)) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream->getEnumerator());
  }

private:
  class Iter final : public Enumerator<T> {
  public:
    explicit Iter(std::unique_ptr<Enumerator<T>> Up) : Up(std::move(Up)) {}

    bool moveNext() override {
      while (Up->moveNext()) {
        T Candidate = Up->current();
        if (Seen.insert(Candidate).second) {
          Value = std::move(Candidate);
          return true;
        }
      }
      return false;
    }

    T current() const override { return Value; }

  private:
    std::unique_ptr<Enumerator<T>> Up;
    std::unordered_set<T> Seen;
    T Value{};
  };

  std::shared_ptr<const Enumerable<T>> Upstream;
};

/// Reverse: a sink that materializes the input on first moveNext and yields
/// it back to front.
template <typename T> class ReverseEnumerable final : public Enumerable<T> {
public:
  explicit ReverseEnumerable(std::shared_ptr<const Enumerable<T>> Upstream)
      : Upstream(std::move(Upstream)) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(Upstream);
  }

private:
  class Iter final : public Enumerator<T> {
  public:
    explicit Iter(std::shared_ptr<const Enumerable<T>> Source)
        : Source(std::move(Source)) {}

    bool moveNext() override {
      if (!Materialized) {
        std::unique_ptr<Enumerator<T>> Up = Source->getEnumerator();
        while (Up->moveNext())
          Buffer.push_back(Up->current());
        Pos = Buffer.size();
        Materialized = true;
      }
      if (Pos == 0)
        return false;
      --Pos;
      return true;
    }

    T current() const override { return Buffer[Pos]; }

  private:
    std::shared_ptr<const Enumerable<T>> Source;
    std::vector<T> Buffer;
    size_t Pos = 0;
    bool Materialized = false;
  };

  std::shared_ptr<const Enumerable<T>> Upstream;
};

} // namespace linq
} // namespace steno

#endif // STENO_LINQ_TRANSFORMS_H
