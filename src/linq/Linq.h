//===- linq/Linq.h - Umbrella header for the baseline library --*- C++ -*-===//
///
/// \file
/// Convenience umbrella for steno::linq, the iterator-based LINQ baseline.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_LINQ_LINQ_H
#define STENO_LINQ_LINQ_H

#include "linq/Enumerator.h" // IWYU pragma: export
#include "linq/Lookup.h"     // IWYU pragma: export
#include "linq/Seq.h"        // IWYU pragma: export
#include "linq/Sinks.h"      // IWYU pragma: export
#include "linq/Sources.h"    // IWYU pragma: export
#include "linq/Transforms.h" // IWYU pragma: export

#endif // STENO_LINQ_LINQ_H
