//===- linq/Sources.h - Source enumerables (Src operators) -----*- C++ -*-===//
///
/// \file
/// Source-collection enumerables: in-memory vectors, Range and Repeat (the
/// LINQ collection generators classified as Src in paper Table 1).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_LINQ_SOURCES_H
#define STENO_LINQ_SOURCES_H

#include "linq/Enumerator.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace steno {
namespace linq {

/// Enumerates a shared immutable vector. The enumerator is the canonical
/// state machine: a cursor that starts before the first element.
template <typename T> class VectorEnumerable final : public Enumerable<T> {
public:
  explicit VectorEnumerable(std::shared_ptr<const std::vector<T>> Data)
      : Data(std::move(Data)) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(Data);
  }

  const std::vector<T> &data() const { return *Data; }

private:
  class Iter final : public Enumerator<T> {
  public:
    explicit Iter(std::shared_ptr<const std::vector<T>> Data)
        : Data(std::move(Data)) {}

    bool moveNext() override {
      if (Next >= Data->size())
        return false;
      Pos = Next++;
      return true;
    }

    T current() const override { return (*Data)[Pos]; }

  private:
    std::shared_ptr<const std::vector<T>> Data;
    size_t Next = 0;
    size_t Pos = 0;
  };

  std::shared_ptr<const std::vector<T>> Data;
};

/// Enumerable over a borrowed [Begin, End) buffer. The caller must keep the
/// buffer alive for the lifetime of the enumerable; used to expose raw
/// benchmark arrays without copying.
template <typename T> class SpanEnumerable final : public Enumerable<T> {
public:
  SpanEnumerable(const T *Begin, size_t Count) : Begin(Begin), Count(Count) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(Begin, Count);
  }

private:
  class Iter final : public Enumerator<T> {
  public:
    Iter(const T *Begin, size_t Count) : Begin(Begin), Count(Count) {}

    bool moveNext() override {
      if (Next >= Count)
        return false;
      Pos = Next++;
      return true;
    }

    T current() const override { return Begin[Pos]; }

  private:
    const T *Begin;
    size_t Count;
    size_t Next = 0;
    size_t Pos = 0;
  };

  const T *Begin;
  size_t Count;
};

/// Enumerable.Range(Start, Count): yields Start, Start+1, ...
class RangeEnumerable final : public Enumerable<std::int64_t> {
public:
  RangeEnumerable(std::int64_t Start, std::int64_t Count)
      : Start(Start), Count(Count < 0 ? 0 : Count) {}

  std::unique_ptr<Enumerator<std::int64_t>> getEnumerator() const override {
    return std::make_unique<Iter>(Start, Count);
  }

private:
  class Iter final : public Enumerator<std::int64_t> {
  public:
    Iter(std::int64_t Start, std::int64_t Count)
        : Next(Start), Remaining(Count) {}

    bool moveNext() override {
      if (Remaining == 0)
        return false;
      Value = Next;
      ++Next;
      --Remaining;
      return true;
    }

    std::int64_t current() const override { return Value; }

  private:
    std::int64_t Next;
    std::int64_t Remaining;
    std::int64_t Value = 0;
  };

  std::int64_t Start;
  std::int64_t Count;
};

/// Enumerable.Repeat(Value, Count).
template <typename T> class RepeatEnumerable final : public Enumerable<T> {
public:
  RepeatEnumerable(T Value, std::int64_t Count)
      : Value(std::move(Value)), Count(Count < 0 ? 0 : Count) {}

  std::unique_ptr<Enumerator<T>> getEnumerator() const override {
    return std::make_unique<Iter>(Value, Count);
  }

private:
  class Iter final : public Enumerator<T> {
  public:
    Iter(T Value, std::int64_t Count)
        : Value(std::move(Value)), Remaining(Count) {}

    bool moveNext() override {
      if (Remaining == 0)
        return false;
      --Remaining;
      return true;
    }

    T current() const override { return Value; }

  private:
    T Value;
    std::int64_t Remaining;
  };

  T Value;
  std::int64_t Count;
};

} // namespace linq
} // namespace steno

#endif // STENO_LINQ_SOURCES_H
