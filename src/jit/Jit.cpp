//===- jit/Jit.cpp --------------------------------------------*- C++ -*-===//

#include "jit/Jit.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Error.h"
#include "support/StringUtil.h"
#include "support/TempFile.h"
#include "support/Timing.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <dlfcn.h>

using namespace steno;
using namespace steno::jit;
using expr::Type;
using expr::TypeRef;
using expr::Value;
using expr::VecView;

#ifndef STENO_HOST_CXX
#define STENO_HOST_CXX "c++"
#endif
#ifndef STENO_SOURCE_INCLUDE
#define STENO_SOURCE_INCLUDE "."
#endif

CompiledModule::~CompiledModule() {
  if (Handle)
    ::dlclose(Handle);
}

std::unique_ptr<CompiledModule>
CompiledModule::compile(const std::string &Source,
                        const std::string &EntrySymbol,
                        std::string *ErrMsg) {
  static std::atomic<unsigned> ModuleCounter{0};
  unsigned Id = ModuleCounter++;

  static obs::Counter &Compiles = obs::counter("jit.compile.count");
  static obs::Counter &Failures = obs::counter("jit.compile.failures");
  static obs::Histogram &CompileMs = obs::histogram(
      "jit.compile.millis", {1, 5, 10, 25, 50, 100, 250, 500, 1e3, 5e3});
  obs::Span CompileSpan("jit.compile");

  const std::string &Dir = support::processTempDir();
  std::string SrcPath = support::strFormat("%s/%s_%u.cpp", Dir.c_str(),
                                           EntrySymbol.c_str(), Id);
  std::string SoPath = support::strFormat("%s/%s_%u.so", Dir.c_str(),
                                          EntrySymbol.c_str(), Id);
  std::string LogPath = support::strFormat("%s/%s_%u.log", Dir.c_str(),
                                           EntrySymbol.c_str(), Id);

  support::WallTimer Timer;
  support::writeFile(SrcPath, Source);

  // The compiler that built this library also builds the generated query.
  const char *Cxx = ::getenv("STENO_CXX");
  if (!Cxx)
    Cxx = STENO_HOST_CXX;
  // -O3 matches the optimization level of statically compiled code, so
  // "Steno vs hand-optimized" comparisons measure code shape, not
  // compiler flags.
  //
  // STENO_JIT_LINT=1 is the debug "lint generated code" mode: the
  // generated translation unit must itself survive -Wall -Wextra -Werror,
  // catching codegen regressions (unused locals, sign-compare, shadowing)
  // that -O3 alone would silently accept.
  const char *LintEnv = ::getenv("STENO_JIT_LINT");
  bool Lint = LintEnv && LintEnv[0] && ::strcmp(LintEnv, "0") != 0;
  std::string Cmd = support::strFormat(
      "'%s' -std=c++20 -O3%s -fPIC -shared -I '%s' -o '%s' '%s' > '%s' 2>&1",
      Cxx, Lint ? " -Wall -Wextra -Werror" : "", STENO_SOURCE_INCLUDE,
      SoPath.c_str(), SrcPath.c_str(), LogPath.c_str());
  int Rc;
  {
    // The compiler invocation dominates the one-off cost; the dlopen
    // below is microseconds. The split shows up as two child spans.
    obs::Span S("jit.cc");
    Rc = std::system(Cmd.c_str());
  }
  if (Rc != 0) {
    Failures.inc();
    if (ErrMsg)
      *ErrMsg = "compiler failed (exit " + std::to_string(Rc) + "):\n" +
                support::readFileOrEmpty(LogPath) + "\nsource: " + SrcPath;
    return nullptr;
  }

  obs::Span LoadSpan("jit.dlopen");
  void *Handle = ::dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    Failures.inc();
    if (ErrMsg)
      *ErrMsg = std::string("dlopen failed: ") + ::dlerror();
    return nullptr;
  }
  void *Sym = ::dlsym(Handle, EntrySymbol.c_str());
  if (!Sym) {
    Failures.inc();
    if (ErrMsg)
      *ErrMsg = std::string("dlsym failed: ") + ::dlerror();
    ::dlclose(Handle);
    return nullptr;
  }

  auto Module = std::unique_ptr<CompiledModule>(new CompiledModule());
  Module->Handle = Handle;
  Module->Entry = reinterpret_cast<EntryFn>(Sym);
  Module->CompileMs = Timer.millis();
  Module->SourcePath = std::move(SrcPath);
  Module->SoPath = std::move(SoPath);
  Compiles.inc();
  CompileMs.observe(Module->CompileMs);
  return Module;
}

std::unique_ptr<CompiledModule>
CompiledModule::load(const std::string &SharedObjectPath,
                     const std::string &EntrySymbol, std::string *ErrMsg) {
  static obs::Counter &Loads = obs::counter("jit.load.count");
  obs::Span LoadSpan("jit.dlopen");
  support::WallTimer Timer;
  void *Handle = ::dlopen(SharedObjectPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    if (ErrMsg)
      *ErrMsg = std::string("dlopen failed: ") + ::dlerror();
    return nullptr;
  }
  void *Sym = ::dlsym(Handle, EntrySymbol.c_str());
  if (!Sym) {
    if (ErrMsg)
      *ErrMsg = std::string("dlsym failed: ") + ::dlerror();
    ::dlclose(Handle);
    return nullptr;
  }
  auto Module = std::unique_ptr<CompiledModule>(new CompiledModule());
  Module->Handle = Handle;
  Module->Entry = reinterpret_cast<EntryFn>(Sym);
  Module->CompileMs = Timer.millis();
  Module->SoPath = SharedObjectPath;
  Loads.inc();
  return Module;
}

//===----------------------------------------------------------------===//
// Execution: binding and row decoding
//===----------------------------------------------------------------===//

namespace {

/// Decodes one value from the flattened cell stream (pre-order over
/// pairs), copying vec payloads into the arena.
Value decodeCells(const Type &Ty, const rt::Cell *&Cell,
                  std::deque<std::vector<double>> &Arena) {
  switch (Ty.kind()) {
  case expr::TypeKind::Bool:
    return Value((Cell++)->I != 0);
  case expr::TypeKind::Int64:
    return Value((Cell++)->I);
  case expr::TypeKind::Double:
    return Value((Cell++)->D);
  case expr::TypeKind::Vec: {
    const rt::Cell &C = *Cell++;
    Arena.emplace_back(C.VData, C.VData + C.VLen);
    const std::vector<double> &Stored = Arena.back();
    return Value(VecView{Stored.data(),
                         static_cast<std::int64_t>(Stored.size())});
  }
  case expr::TypeKind::Pair: {
    Value First = decodeCells(*Ty.first(), Cell, Arena);
    Value Second = decodeCells(*Ty.second(), Cell, Arena);
    return Value::makePair(std::move(First), std::move(Second));
  }
  }
  stenoUnreachable("bad TypeKind");
}

struct CollectCtx {
  const Type *RowType;
  std::vector<Value> *Rows;
  std::deque<std::vector<double>> *Arena;
};

void collectRow(void *CtxRaw, const rt::Cell *Cells, std::int64_t N) {
  auto *Ctx = static_cast<CollectCtx *>(CtxRaw);
  const rt::Cell *Cursor = Cells;
  Ctx->Rows->push_back(decodeCells(*Ctx->RowType, Cursor, *Ctx->Arena));
  assert(Cursor == Cells + N && "row cell count mismatch");
  (void)N;
}

rt::CaptureValue bindCapture(const Value &V) {
  rt::CaptureValue Out;
  switch (V.kind()) {
  case expr::TypeKind::Bool:
    Out.B = V.asBool();
    break;
  case expr::TypeKind::Int64:
    Out.I = V.asInt64();
    break;
  case expr::TypeKind::Double:
    Out.D = V.asDouble();
    break;
  case expr::TypeKind::Vec: {
    VecView View = V.asVec();
    Out.VData = View.Data;
    Out.VLen = View.Len;
    break;
  }
  case expr::TypeKind::Pair:
    support::fatalError("pair-typed captures are not supported");
  }
  return Out;
}

} // namespace

ExecOutput jit::run(EntryFn Fn,
                    const std::vector<expr::SourceBuffer> &Sources,
                    const std::vector<Value> &Values,
                    const TypeRef &RowType, std::uint64_t *ProfCounts,
                    std::uint64_t *ProfNanos) {
  assert(Fn && "running a null entry point");
  std::vector<rt::SourceBinding> BoundSources;
  BoundSources.reserve(Sources.size());
  for (const expr::SourceBuffer &Buf : Sources) {
    rt::SourceBinding B;
    B.D = Buf.DoubleData;
    B.I = Buf.Int64Data;
    B.Count = Buf.Count;
    B.Dim = Buf.Dim;
    BoundSources.push_back(B);
  }
  std::vector<rt::CaptureValue> BoundValues;
  BoundValues.reserve(Values.size());
  for (const Value &V : Values)
    BoundValues.push_back(bindCapture(V));

  rt::Captures Caps;
  Caps.Sources = BoundSources.data();
  Caps.NumSources = static_cast<std::int64_t>(BoundSources.size());
  Caps.Values = BoundValues.data();
  Caps.NumValues = static_cast<std::int64_t>(BoundValues.size());
  Caps.ProfCounts = ProfCounts;
  Caps.ProfNanos = ProfNanos;

  ExecOutput Out;
  Out.Arena = std::make_shared<std::deque<std::vector<double>>>();
  CollectCtx Ctx{RowType.get(), &Out.Rows, Out.Arena.get()};
  rt::Emitter Emit{&Ctx, &collectRow};
  Fn(&Caps, &Emit);
  return Out;
}
