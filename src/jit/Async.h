//===- jit/Async.h - Bounded background compile queue ----------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The asynchronous half of the native backend. A serving layer cannot
/// afford to block a request on the external compiler invocation (§7.1
/// measures ~69 ms with csc; hundreds of ms with a C++ toolchain), so
/// compiles are queued here and run on dedicated background threads while
/// requests execute on whatever plan is already loaded. The queue is
/// deliberately *bounded*: under a compile storm, trySubmit rejects
/// instead of buffering unboundedly, and the caller stays on its current
/// (interpreter) plan — graceful degradation, not queue collapse.
///
/// Every accepted job runs exactly one completion callback, on a queue
/// worker thread, whether the compile succeeded or failed. The destructor
/// finishes all accepted jobs before returning, so a callback never fires
/// after its owner has started tearing down members the callback uses —
/// as long as the owner declares its CompileQueue after those members.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_JIT_ASYNC_H
#define STENO_JIT_ASYNC_H

#include "jit/Jit.h"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace steno {
namespace jit {

/// Fixed worker pool draining a bounded FIFO of source-to-module compile
/// jobs. Metrics: jit.async.{submitted,rejected,compiled,failed} counters
/// and the jit.async.pending gauge.
class CompileQueue {
public:
  /// Called with the loaded module (or nullptr) and the error text (empty
  /// on success). Runs on a queue worker; must not throw.
  using DoneFn =
      std::function<void(std::unique_ptr<CompiledModule>, std::string)>;

  /// Spawns \p Workers threads (at least one). \p MaxPending bounds
  /// queued-plus-running jobs; 0 makes every trySubmit reject, which
  /// models a permanently saturated compiler for tests.
  explicit CompileQueue(unsigned Workers = 1, std::size_t MaxPending = 8);

  /// Drains every accepted job, then joins the workers.
  ~CompileQueue();

  CompileQueue(const CompileQueue &) = delete;
  CompileQueue &operator=(const CompileQueue &) = delete;

  /// Enqueues a compile of \p Source resolving \p EntrySymbol. Returns
  /// false without enqueuing when the queue is saturated (or shutting
  /// down); \p Done is then never called.
  bool trySubmit(std::string Source, std::string EntrySymbol, DoneFn Done);

  /// Queued plus currently compiling jobs.
  std::size_t pending() const;

  /// True when a trySubmit issued now would be rejected.
  bool saturated() const;

  /// Blocks until every accepted job (and its callback) has finished.
  void drain();

private:
  struct Job {
    std::string Source;
    std::string EntrySymbol;
    DoneFn Done;
  };

  void workerLoop();

  const std::size_t MaxPending;
  mutable std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable AllDone;
  std::deque<Job> Queue;
  std::size_t Active = 0; ///< Jobs popped but not yet completed.
  bool ShuttingDown = false;
  std::vector<std::thread> Threads;
};

} // namespace jit
} // namespace steno

#endif // STENO_JIT_ASYNC_H
