//===- jit/Async.cpp - Bounded background compile queue --------*- C++ -*-===//

#include "jit/Async.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace steno;
using namespace steno::jit;

namespace {

obs::Counter &submittedCounter() {
  static obs::Counter &C = obs::counter("jit.async.submitted");
  return C;
}
obs::Counter &rejectedCounter() {
  static obs::Counter &C = obs::counter("jit.async.rejected");
  return C;
}
obs::Counter &compiledCounter() {
  static obs::Counter &C = obs::counter("jit.async.compiled");
  return C;
}
obs::Counter &failedCounter() {
  static obs::Counter &C = obs::counter("jit.async.failed");
  return C;
}
obs::Gauge &pendingGauge() {
  static obs::Gauge &G = obs::gauge("jit.async.pending");
  return G;
}

} // namespace

CompileQueue::CompileQueue(unsigned Workers, std::size_t MaxPending)
    : MaxPending(MaxPending) {
  if (Workers == 0)
    Workers = 1;
  Threads.reserve(Workers);
  for (unsigned I = 0; I != Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

CompileQueue::~CompileQueue() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true; // reject new submits; accepted jobs still run
  }
  WorkReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

bool CompileQueue::trySubmit(std::string Source, std::string EntrySymbol,
                             DoneFn Done) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (ShuttingDown || Queue.size() + Active >= MaxPending) {
      rejectedCounter().inc();
      return false;
    }
    Queue.push_back(
        Job{std::move(Source), std::move(EntrySymbol), std::move(Done)});
    submittedCounter().inc();
    pendingGauge().add(1);
  }
  WorkReady.notify_one();
  return true;
}

std::size_t CompileQueue::pending() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Queue.size() + Active;
}

bool CompileQueue::saturated() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return ShuttingDown || Queue.size() + Active >= MaxPending;
}

void CompileQueue::drain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Queue.empty() && Active == 0; });
}

void CompileQueue::workerLoop() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock,
                     [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty()) // ShuttingDown and drained
        return;
      J = std::move(Queue.front());
      Queue.pop_front();
      ++Active;
    }

    std::string Err;
    std::unique_ptr<CompiledModule> Module;
    {
      obs::Span S("jit.async.compile");
      Module = CompiledModule::compile(J.Source, J.EntrySymbol, &Err);
    }
    (Module ? compiledCounter() : failedCounter()).inc();
    if (J.Done)
      J.Done(std::move(Module), std::move(Err));

    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Active;
      pendingGauge().sub(1);
    }
    AllDone.notify_all();
  }
}
