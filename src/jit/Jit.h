//===- jit/Jit.h - Compile-load-invoke backend (paper §3.3) ----*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native backend: writes the generated C++ source to a temp file,
/// invokes the production compiler to build a shared object (the paper
/// invokes csc to build a DLL), loads it with dlopen (Assembly.Load in the
/// paper) and resolves the extern "C" entry point. The measured one-off
/// compilation cost is exposed so the §7.1 break-even experiment can report
/// it. Compiled modules are cached by the facade between invocations, as
/// the paper prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_JIT_JIT_H
#define STENO_JIT_JIT_H

#include "expr/Type.h"
#include "expr/Value.h"
#include "steno/Rt.h"

#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace steno {
namespace jit {

/// Signature of every generated entry point.
using EntryFn = void (*)(const rt::Captures *, rt::Emitter *);

/// A compiled and loaded query module. Closing the module unloads the
/// shared object, invalidating the entry pointer.
class CompiledModule {
public:
  ~CompiledModule();
  CompiledModule(const CompiledModule &) = delete;
  CompiledModule &operator=(const CompiledModule &) = delete;

  /// Compiles \p Source (a complete translation unit) and resolves
  /// \p EntrySymbol. Returns nullptr and fills \p ErrMsg on failure.
  static std::unique_ptr<CompiledModule>
  compile(const std::string &Source, const std::string &EntrySymbol,
          std::string *ErrMsg = nullptr);

  /// Loads an already-compiled shared object (the persistent-cache hit
  /// path — no compiler invocation; compileMillis() reports only the
  /// dlopen cost). Returns nullptr and fills \p ErrMsg on failure.
  static std::unique_ptr<CompiledModule>
  load(const std::string &SharedObjectPath, const std::string &EntrySymbol,
       std::string *ErrMsg = nullptr);

  EntryFn entry() const { return Entry; }
  /// Wall-clock cost of compiler + load, in milliseconds (paper §7.1's
  /// one-off cost; ~69 ms with csc, more with a C++ compiler).
  double compileMillis() const { return CompileMs; }
  const std::string &sourcePath() const { return SourcePath; }
  const std::string &objectPath() const { return SoPath; }

private:
  CompiledModule() = default;

  void *Handle = nullptr;
  EntryFn Entry = nullptr;
  double CompileMs = 0;
  std::string SourcePath;
  std::string SoPath;
};

/// Rows collected from one native execution. Vec payloads are copied into
/// Arena during emission (the emitter callback), so rows outlive the
/// query's internal sinks.
struct ExecOutput {
  std::vector<expr::Value> Rows;
  std::shared_ptr<std::deque<std::vector<double>>> Arena;
};

/// Binds sources/captures into the rt ABI, invokes \p Fn and decodes the
/// emitted rows according to \p RowType. ProfCounts/ProfNanos, when
/// non-null, receive the profile flush of a TU generated with profiling
/// hooks (sized 2*NumOps and NumOps respectively); leave null otherwise.
ExecOutput run(EntryFn Fn, const std::vector<expr::SourceBuffer> &Sources,
               const std::vector<expr::Value> &Values,
               const expr::TypeRef &RowType,
               std::uint64_t *ProfCounts = nullptr,
               std::uint64_t *ProfNanos = nullptr);

} // namespace jit
} // namespace steno

#endif // STENO_JIT_JIT_H
