//===- fused/Fused.h - Compile-time query fusion ---------------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static (compile-time) query fusion via expression templates: the
/// endpoint the paper's §9 speculates about ("this cost would be paid at
/// compile-time" if Steno ran inside the C# compiler). Pipelines are
/// push-based: a source drives a consumer functor composed from all the
/// stages, which the host compiler inlines into exactly the loop Steno
/// would generate — with zero run-time compilation cost. Benchmarks report
/// this as "Steno (static)" next to the JIT's "Steno (excl./incl.
/// compilation)".
///
/// Usage:
/// \code
///   double S = fused::from(Xs.data(), N)
///            | fused::where([](double X) { return X > 0; })
///            | fused::select([](double X) { return X * X; })
///            | fused::sum();
/// \endcode
///
/// The consumer protocol: each stage receives elements through a callable
/// `bool consumer(elem)`; returning false requests early termination
/// (used by take/first). Sources must honor it.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_FUSED_FUSED_H
#define STENO_FUSED_FUSED_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace steno {
namespace fused {

//===------------------------------------------------------------------===//
// Sources
//===------------------------------------------------------------------===//

/// Pipeline stage over a borrowed [Data, Data+N) buffer.
template <typename T> struct SpanPipe {
  const T *Data;
  std::size_t N;

  template <typename Consumer> void run(Consumer &&C) const {
    for (std::size_t I = 0; I != N; ++I)
      if (!C(Data[I]))
        return;
  }
};

/// Integer range [Start, Start+Count).
struct RangePipe {
  std::int64_t Start;
  std::int64_t Count;

  template <typename Consumer> void run(Consumer &&C) const {
    for (std::int64_t I = 0; I != Count; ++I)
      if (!C(Start + I))
        return;
  }
};

template <typename T> SpanPipe<T> from(const T *Data, std::size_t N) {
  return SpanPipe<T>{Data, N};
}

template <typename T> SpanPipe<T> from(const std::vector<T> &V) {
  return SpanPipe<T>{V.data(), V.size()};
}

inline RangePipe range(std::int64_t Start, std::int64_t Count) {
  return RangePipe{Start, Count};
}

//===------------------------------------------------------------------===//
// Composable stages
//===------------------------------------------------------------------===//

template <typename Up, typename F> struct SelectPipe {
  Up Upstream;
  F Fn;

  template <typename Consumer> void run(Consumer &&C) const {
    Upstream.run([&](auto &&X) { return C(Fn(X)); });
  }
};

template <typename Up, typename F> struct WherePipe {
  Up Upstream;
  F Pred;

  template <typename Consumer> void run(Consumer &&C) const {
    Upstream.run([&](auto &&X) { return Pred(X) ? C(X) : true; });
  }
};

template <typename Up> struct TakePipe {
  Up Upstream;
  std::int64_t Count;

  template <typename Consumer> void run(Consumer &&C) const {
    std::int64_t Remaining = Count;
    if (Remaining <= 0)
      return;
    Upstream.run([&](auto &&X) {
      if (!C(X))
        return false;
      return --Remaining > 0;
    });
  }
};

template <typename Up> struct SkipPipe {
  Up Upstream;
  std::int64_t Count;

  template <typename Consumer> void run(Consumer &&C) const {
    std::int64_t ToSkip = Count;
    Upstream.run([&](auto &&X) {
      if (ToSkip > 0) {
        --ToSkip;
        return true;
      }
      return C(X);
    });
  }
};

template <typename Up, typename F> struct TakeWhilePipe {
  Up Upstream;
  F Pred;

  template <typename Consumer> void run(Consumer &&C) const {
    Upstream.run([&](auto &&X) { return Pred(X) ? C(X) : false; });
  }
};

template <typename Up, typename F> struct SkipWhilePipe {
  Up Upstream;
  F Pred;

  template <typename Consumer> void run(Consumer &&C) const {
    bool Skipping = true;
    Upstream.run([&](auto &&X) {
      if (Skipping) {
        if (Pred(X))
          return true;
        Skipping = false;
      }
      return C(X);
    });
  }
};

/// SelectMany: \p Fn maps an element to a pipe, whose elements continue
/// through the downstream consumer — the compile-time analogue of the
/// paper's nested-loop generation (Figure 11).
template <typename Up, typename F> struct SelectManyPipe {
  Up Upstream;
  F Fn;

  template <typename Consumer> void run(Consumer &&C) const {
    Upstream.run([&](auto &&X) {
      bool KeepGoing = true;
      Fn(X).run([&](auto &&Y) {
        KeepGoing = C(Y);
        return KeepGoing;
      });
      return KeepGoing;
    });
  }
};

//===------------------------------------------------------------------===//
// Adapters (the right-hand side of operator|)
//===------------------------------------------------------------------===//

template <typename F> struct SelectTag {
  F Fn;
};
template <typename F> struct WhereTag {
  F Pred;
};
struct TakeTag {
  std::int64_t Count;
};
struct SkipTag {
  std::int64_t Count;
};
template <typename F> struct TakeWhileTag {
  F Pred;
};
template <typename F> struct SkipWhileTag {
  F Pred;
};
template <typename F> struct SelectManyTag {
  F Fn;
};

template <typename F> SelectTag<F> select(F Fn) {
  return SelectTag<F>{std::move(Fn)};
}
template <typename F> WhereTag<F> where(F Pred) {
  return WhereTag<F>{std::move(Pred)};
}
inline TakeTag take(std::int64_t Count) { return TakeTag{Count}; }
inline SkipTag skip(std::int64_t Count) { return SkipTag{Count}; }
template <typename F> TakeWhileTag<F> takeWhile(F Pred) {
  return TakeWhileTag<F>{std::move(Pred)};
}
template <typename F> SkipWhileTag<F> skipWhile(F Pred) {
  return SkipWhileTag<F>{std::move(Pred)};
}
template <typename F> SelectManyTag<F> selectMany(F Fn) {
  return SelectManyTag<F>{std::move(Fn)};
}

template <typename P, typename F>
SelectPipe<P, F> operator|(P Pipe, SelectTag<F> Tag) {
  return SelectPipe<P, F>{std::move(Pipe), std::move(Tag.Fn)};
}
template <typename P, typename F>
WherePipe<P, F> operator|(P Pipe, WhereTag<F> Tag) {
  return WherePipe<P, F>{std::move(Pipe), std::move(Tag.Pred)};
}
template <typename P> TakePipe<P> operator|(P Pipe, TakeTag Tag) {
  return TakePipe<P>{std::move(Pipe), Tag.Count};
}
template <typename P> SkipPipe<P> operator|(P Pipe, SkipTag Tag) {
  return SkipPipe<P>{std::move(Pipe), Tag.Count};
}
template <typename P, typename F>
TakeWhilePipe<P, F> operator|(P Pipe, TakeWhileTag<F> Tag) {
  return TakeWhilePipe<P, F>{std::move(Pipe), std::move(Tag.Pred)};
}
template <typename P, typename F>
SkipWhilePipe<P, F> operator|(P Pipe, SkipWhileTag<F> Tag) {
  return SkipWhilePipe<P, F>{std::move(Pipe), std::move(Tag.Pred)};
}
template <typename P, typename F>
SelectManyPipe<P, F> operator|(P Pipe, SelectManyTag<F> Tag) {
  return SelectManyPipe<P, F>{std::move(Pipe), std::move(Tag.Fn)};
}

//===------------------------------------------------------------------===//
// Terminals
//===------------------------------------------------------------------===//

/// Left fold with explicit seed (Aggregate).
template <typename A, typename F> struct FoldTag {
  A Seed;
  F Step;
};
template <typename A, typename F> FoldTag<A, F> fold(A Seed, F Step) {
  return FoldTag<A, F>{std::move(Seed), std::move(Step)};
}
template <typename P, typename A, typename F>
A operator|(P Pipe, FoldTag<A, F> Tag) {
  A Acc = std::move(Tag.Seed);
  Pipe.run([&](auto &&X) {
    Acc = Tag.Step(std::move(Acc), X);
    return true;
  });
  return Acc;
}

/// Sum of elements (T defaults to double).
template <typename T = double> struct SumTag {};
template <typename T = double> SumTag<T> sum() { return SumTag<T>{}; }
template <typename P, typename T> T operator|(P Pipe, SumTag<T>) {
  T Acc{};
  Pipe.run([&](auto &&X) {
    Acc += X;
    return true;
  });
  return Acc;
}

struct CountTag {};
inline CountTag count() { return CountTag{}; }
template <typename P> std::int64_t operator|(P Pipe, CountTag) {
  std::int64_t N = 0;
  Pipe.run([&](auto &&) {
    ++N;
    return true;
  });
  return N;
}

template <typename T> struct MinTag {
  T Identity;
};
template <typename T> MinTag<T> minWith(T Identity) {
  return MinTag<T>{std::move(Identity)};
}
template <typename P, typename T> T operator|(P Pipe, MinTag<T> Tag) {
  T Acc = std::move(Tag.Identity);
  Pipe.run([&](auto &&X) {
    if (X < Acc)
      Acc = X;
    return true;
  });
  return Acc;
}

template <typename T> struct MaxTag {
  T Identity;
};
template <typename T> MaxTag<T> maxWith(T Identity) {
  return MaxTag<T>{std::move(Identity)};
}
template <typename P, typename T> T operator|(P Pipe, MaxTag<T> Tag) {
  T Acc = std::move(Tag.Identity);
  Pipe.run([&](auto &&X) {
    if (Acc < X)
      Acc = X;
    return true;
  });
  return Acc;
}

template <typename T> struct ToVectorTag {};
template <typename T> ToVectorTag<T> toVector() { return ToVectorTag<T>{}; }
template <typename P, typename T>
std::vector<T> operator|(P Pipe, ToVectorTag<T>) {
  std::vector<T> Out;
  Pipe.run([&](auto &&X) {
    Out.push_back(X);
    return true;
  });
  return Out;
}

/// Any / All / First: short-circuiting terminals (the consumer protocol's
/// early-exit return value doing the work the Steno pipeline does with
/// generated break statements).
struct AnyTag {};
inline AnyTag any() { return AnyTag{}; }
template <typename P> bool operator|(P Pipe, AnyTag) {
  bool Found = false;
  Pipe.run([&](auto &&) {
    Found = true;
    return false;
  });
  return Found;
}

template <typename F> struct AllTag {
  F Pred;
};
template <typename F> AllTag<F> all(F Pred) {
  return AllTag<F>{std::move(Pred)};
}
template <typename P, typename F> bool operator|(P Pipe, AllTag<F> Tag) {
  bool Ok = true;
  Pipe.run([&](auto &&X) {
    if (!Tag.Pred(X)) {
      Ok = false;
      return false;
    }
    return true;
  });
  return Ok;
}

template <typename T> struct FirstOrTag {
  T Default;
};
template <typename T> FirstOrTag<T> firstOr(T Default) {
  return FirstOrTag<T>{std::move(Default)};
}
template <typename P, typename T> T operator|(P Pipe, FirstOrTag<T> Tag) {
  T Out = std::move(Tag.Default);
  Pipe.run([&](auto &&X) {
    Out = X;
    return false;
  });
  return Out;
}

/// Runs the pipe for side effects through \p Fn.
template <typename F> struct ForEachTag {
  F Fn;
};
template <typename F> ForEachTag<F> forEach(F Fn) {
  return ForEachTag<F>{std::move(Fn)};
}
template <typename P, typename F> void operator|(P Pipe, ForEachTag<F> Tag) {
  Pipe.run([&](auto &&X) {
    Tag.Fn(X);
    return true;
  });
}

//===------------------------------------------------------------------===//
// GroupBy-Aggregate sinks (the §4.3 specialization, statically typed)
//===------------------------------------------------------------------===//

/// Hash-based per-key partial aggregation, insertion-ordered.
template <typename Acc, typename FKey, typename FStep>
struct GroupByAggregateTag {
  FKey Key;
  Acc Seed;
  FStep Step;
};
template <typename Acc, typename FKey, typename FStep>
GroupByAggregateTag<Acc, FKey, FStep> groupByAggregate(FKey Key, Acc Seed,
                                                       FStep Step) {
  return GroupByAggregateTag<Acc, FKey, FStep>{std::move(Key),
                                               std::move(Seed),
                                               std::move(Step)};
}
template <typename P, typename Acc, typename FKey, typename FStep>
std::vector<std::pair<std::int64_t, Acc>>
operator|(P Pipe, GroupByAggregateTag<Acc, FKey, FStep> Tag) {
  std::vector<std::pair<std::int64_t, Acc>> Entries;
  std::unordered_map<std::int64_t, std::size_t> Index;
  Pipe.run([&](auto &&X) {
    std::int64_t Key = Tag.Key(X);
    auto It = Index.find(Key);
    std::size_t Slot;
    if (It == Index.end()) {
      Slot = Entries.size();
      Index.emplace(Key, Slot);
      Entries.emplace_back(Key, Tag.Seed);
    } else {
      Slot = It->second;
    }
    Entries[Slot].second = Tag.Step(std::move(Entries[Slot].second), X);
    return true;
  });
  return Entries;
}

/// Dense-key variant: keys must lie in [0, NumKeys). This is the analogue
/// of the paper's O(1)-key optimization for grouping on a bounded key set
/// (§4.3's closing remark); ablation B benchmarks it against the hash
/// sink.
template <typename Acc, typename FKey, typename FStep>
struct DenseGroupByAggregateTag {
  std::int64_t NumKeys;
  FKey Key;
  Acc Seed;
  FStep Step;
};
template <typename Acc, typename FKey, typename FStep>
DenseGroupByAggregateTag<Acc, FKey, FStep>
denseGroupByAggregate(std::int64_t NumKeys, FKey Key, Acc Seed, FStep Step) {
  return DenseGroupByAggregateTag<Acc, FKey, FStep>{
      NumKeys, std::move(Key), std::move(Seed), std::move(Step)};
}
template <typename P, typename Acc, typename FKey, typename FStep>
std::vector<Acc> operator|(P Pipe,
                           DenseGroupByAggregateTag<Acc, FKey, FStep> Tag) {
  std::vector<Acc> Slots(static_cast<std::size_t>(Tag.NumKeys), Tag.Seed);
  Pipe.run([&](auto &&X) {
    std::int64_t Key = Tag.Key(X);
    Slots[static_cast<std::size_t>(Key)] =
        Tag.Step(std::move(Slots[static_cast<std::size_t>(Key)]), X);
    return true;
  });
  return Slots;
}

} // namespace fused
} // namespace steno

#endif // STENO_FUSED_FUSED_H
