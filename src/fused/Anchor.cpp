//===- fused/Anchor.cpp ---------------------------------------*- C++ -*-===//
//
// The fused library is header-only; this file anchors the static library
// target and sanity-instantiates a pipeline at library-build time.
//
//===----------------------------------------------------------------------===//

#include "fused/Fused.h"

namespace steno {
namespace fused {

/// Build-time instantiation check.
double anchorSumOfSquares(const double *Data, std::size_t N) {
  return from(Data, N) | select([](double X) { return X * X; }) | sum();
}

} // namespace fused
} // namespace steno
