//===- steno/Rt.h - Runtime support for Steno-generated code ---*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Self-contained runtime included by every generated translation unit
/// (paper §3.3): the capture-block ABI through which the host binds source
/// buffers and captured variables, the emitter ABI through which the
/// generated query returns rows, and the sink collections the generated
/// loops build (the Lookup of Figure 7(b) and the partial-aggregate sink of
/// §4.3). This header must not include any other steno header — generated
/// code compiles against it alone.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_STENO_RT_H
#define STENO_STENO_RT_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <utility>
#include <vector>

namespace steno {
namespace rt {

//===------------------------------------------------------------------===//
// Checked integer division
//===------------------------------------------------------------------===//

/// Structured runtime trap for integer division by zero (and the INT64_MIN
/// / -1 overflow, the other undefined case of C++ integer division). The
/// code ST2001 matches the static analyzer's division diagnostic, so a log
/// line from a production trap correlates directly with the compile-time
/// warning that predicted it.
[[noreturn]] inline void trapDivByZero() {
  std::fputs("steno runtime error [ST2001]: integer division by zero\n",
             stderr);
  std::abort();
}

/// Division/modulo with defined behavior on every input: traps with a
/// structured error instead of executing undefined behavior. The code
/// generator emits these wherever the analyzer could not prove the divisor
/// is a nonzero constant.
inline std::int64_t ckdiv(std::int64_t A, std::int64_t B) {
  if (B == 0 || (B == -1 && A == INT64_MIN))
    trapDivByZero();
  return A / B;
}

inline std::int64_t ckmod(std::int64_t A, std::int64_t B) {
  if (B == 0 || (B == -1 && A == INT64_MIN))
    trapDivByZero();
  return A % B;
}

/// Borrowed view of Len contiguous doubles (a point, or a group's bag).
struct VecView {
  const double *Data;
  std::int64_t Len;
};

/// The generated representation of pair-typed elements. An aggregate so
/// that brace-initialization in generated code stays trivial.
template <typename A, typename B> struct Pair {
  A First;
  B Second;
};

//===------------------------------------------------------------------===//
// Capture ABI (host -> query)
//===------------------------------------------------------------------===//

/// One bound source buffer. Exactly one of D/I is non-null; Count is the
/// element count and Dim the doubles-per-element stride (1 for scalars).
struct SourceBinding {
  const double *D = nullptr;
  const std::int64_t *I = nullptr;
  std::int64_t Count = 0;
  std::int64_t Dim = 1;
};

/// One captured variable (paper §3.3's placeholder instance variables).
/// A fat struct rather than a union keeps binding code trivial; the
/// generated accessor reads the one field matching the slot's static type.
struct CaptureValue {
  double D = 0;
  std::int64_t I = 0;
  bool B = false;
  const double *VData = nullptr;
  std::int64_t VLen = 0;
};

/// The capture block passed to every generated entry point.
///
/// ProfCounts/ProfNanos are the profile flush targets for TUs generated
/// under STENO_PROFILE: null means "discard" (a profiled entry run by an
/// unprofiled caller is safe). Tail-appended so the offsets of the
/// original four fields — and therefore the ABI seen by previously
/// generated modules — are unchanged.
struct Captures {
  const SourceBinding *Sources = nullptr;
  std::int64_t NumSources = 0;
  const CaptureValue *Values = nullptr;
  std::int64_t NumValues = 0;
  std::uint64_t *ProfCounts = nullptr; ///< 2 slots per profiled op.
  std::uint64_t *ProfNanos = nullptr;  ///< 1 slot per profiled op.
};

/// Scoped nanosecond accumulator for one profiled operator. Declared
/// inline in the loop body (not in its own scope); stop() charges the
/// slot and disarms, and the destructor charges it instead when a
/// continue/break leaves the iteration before the stop() is reached.
class ProfTimer {
public:
  explicit ProfTimer(std::uint64_t *Slot)
      : Slot(Slot), Start(std::chrono::steady_clock::now()) {}
  ~ProfTimer() { stop(); }
  ProfTimer(const ProfTimer &) = delete;
  ProfTimer &operator=(const ProfTimer &) = delete;

  void stop() {
    if (!Slot)
      return;
    *Slot += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
    Slot = nullptr;
  }

private:
  std::uint64_t *Slot;
  std::chrono::steady_clock::time_point Start;
};

//===------------------------------------------------------------------===//
// Emitter ABI (query -> host)
//===------------------------------------------------------------------===//

/// One flattened component of a result row. Kind: 0 = bool (in I),
/// 1 = int64 (in I), 2 = double (in D), 3 = vec (VData/VLen).
struct Cell {
  std::int32_t Kind;
  double D;
  std::int64_t I;
  const double *VData;
  std::int64_t VLen;
};

/// Host-supplied row callback. Scalar queries emit exactly one row;
/// collection queries emit one row per element. Vec cells point into
/// query-local storage and must be copied during the callback.
struct Emitter {
  void *Ctx;
  void (*EmitRow)(void *Ctx, const Cell *Cells, std::int64_t NumCells);
};

/// Number of cells a statically-typed element flattens into.
template <typename T> struct CellCount;
template <> struct CellCount<bool> {
  static constexpr std::int64_t value = 1;
};
template <> struct CellCount<std::int64_t> {
  static constexpr std::int64_t value = 1;
};
template <> struct CellCount<double> {
  static constexpr std::int64_t value = 1;
};
template <> struct CellCount<VecView> {
  static constexpr std::int64_t value = 1;
};
template <typename A, typename B> struct CellCount<Pair<A, B>> {
  static constexpr std::int64_t value =
      CellCount<A>::value + CellCount<B>::value;
};

inline void fillCells(Cell *&P, bool V) {
  *P++ = Cell{0, 0.0, V ? 1 : 0, nullptr, 0};
}
inline void fillCells(Cell *&P, std::int64_t V) {
  *P++ = Cell{1, 0.0, V, nullptr, 0};
}
inline void fillCells(Cell *&P, double V) {
  *P++ = Cell{2, V, 0, nullptr, 0};
}
inline void fillCells(Cell *&P, const VecView &V) {
  *P++ = Cell{3, 0.0, 0, V.Data, V.Len};
}
template <typename A, typename B>
inline void fillCells(Cell *&P, const Pair<A, B> &V) {
  fillCells(P, V.First);
  fillCells(P, V.Second);
}

/// Flattens \p V into cells (pre-order over pairs) and hands the row to
/// the emitter.
template <typename T> inline void emitRow(Emitter *Out, const T &V) {
  Cell Cells[CellCount<T>::value];
  Cell *P = Cells;
  fillCells(P, V);
  Out->EmitRow(Out->Ctx, Cells, CellCount<T>::value);
}

//===------------------------------------------------------------------===//
// Sink collections
//===------------------------------------------------------------------===//

/// Insertion-ordered int64 -> bag-of-doubles multi-map: the Lookup of
/// Figure 7(b), built by GroupBy sinks.
class GroupSink {
public:
  void put(std::int64_t Key, double Value) {
    auto It = Index.find(Key);
    std::size_t Slot;
    if (It == Index.end()) {
      Slot = Buckets.size();
      Index.emplace(Key, Slot);
      Buckets.emplace_back(Key, std::vector<double>());
    } else {
      Slot = It->second;
    }
    Buckets[Slot].second.push_back(Value);
  }

  std::int64_t size() const {
    return static_cast<std::int64_t>(Buckets.size());
  }

  Pair<std::int64_t, VecView> group(std::int64_t I) const {
    const auto &Bucket = Buckets[static_cast<std::size_t>(I)];
    return {Bucket.first,
            VecView{Bucket.second.data(),
                    static_cast<std::int64_t>(Bucket.second.size())}};
  }

private:
  std::vector<std::pair<std::int64_t, std::vector<double>>> Buckets;
  std::unordered_map<std::int64_t, std::size_t> Index;
};

/// Insertion-ordered int64 -> partial-accumulator map: the specialized
/// GroupByAggregate sink of §4.3. slot() returns a mutable reference,
/// inserting the seed on the key's first appearance.
template <typename A> class GroupAggSink {
public:
  A &slot(std::int64_t Key, const A &Seed) {
    auto It = Index.find(Key);
    if (It != Index.end())
      return Entries[It->second].second;
    std::size_t Slot = Entries.size();
    Index.emplace(Key, Slot);
    Entries.emplace_back(Key, Seed);
    return Entries[Slot].second;
  }

  std::int64_t size() const {
    return static_cast<std::int64_t>(Entries.size());
  }

  std::int64_t keyAt(std::int64_t I) const {
    return Entries[static_cast<std::size_t>(I)].first;
  }

  const A &accAt(std::int64_t I) const {
    return Entries[static_cast<std::size_t>(I)].second;
  }

private:
  std::vector<std::pair<std::int64_t, A>> Entries;
  std::unordered_map<std::int64_t, std::size_t> Index;
};

/// Dense-key partial-aggregate sink (the closing optimization of §4.3):
/// when the keys are known to lie in [0, NumKeys), one flat array of
/// accumulators replaces the hash table — O(1) access with no hashing.
/// Every key in range is reported, untouched slots carrying the seed.
template <typename A> class DenseAggSink {
public:
  DenseAggSink(std::int64_t NumKeys, const A &Seed)
      : Slots(static_cast<std::size_t>(NumKeys < 0 ? 0 : NumKeys), Seed) {}

  A &slot(std::int64_t Key) { return Slots[static_cast<std::size_t>(Key)]; }

  std::int64_t size() const {
    return static_cast<std::int64_t>(Slots.size());
  }

  std::int64_t keyAt(std::int64_t I) const { return I; }

  const A &accAt(std::int64_t I) const {
    return Slots[static_cast<std::size_t>(I)];
  }

private:
  std::vector<A> Slots;
};

} // namespace rt
} // namespace steno

#endif // STENO_STENO_RT_H
