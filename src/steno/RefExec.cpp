//===- steno/RefExec.cpp --------------------------------------*- C++ -*-===//

#include "steno/RefExec.h"
#include "expr/Eval.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <unordered_map>

using namespace steno;
using expr::Lambda;
using expr::Value;
using expr::VecView;
using query::OpKind;
using query::QueryNodeRef;

namespace {

class RefExecutor {
public:
  explicit RefExecutor(const Bindings &B) : B(B) {
    Arena = std::make_shared<std::deque<std::vector<double>>>();
    Env.setSources(&B.sources());
    Env.setCaptures(&B.values());
  }

  QueryResult run(const query::Query &Q) {
    std::vector<Value> Rows;
    if (Q.scalarResult()) {
      Rows.push_back(evalScalar(Q.node()));
    } else {
      Rows = evalCollection(Q.node());
    }
    for (Value &V : Rows)
      V = deepCopy(V);
    return QueryResult(Q.scalarResult(), std::move(Rows), Arena);
  }

private:
  Value apply1(const Lambda &L, const Value &A0) {
    std::vector<Value> Args = {A0};
    return expr::applyLambda(L, Args, Env);
  }

  Value apply2(const Lambda &L, const Value &A0, const Value &A1) {
    std::vector<Value> Args = {A0, A1};
    return expr::applyLambda(L, Args, Env);
  }

  Value eval(const expr::ExprRef &E) { return expr::evalExpr(*E, Env); }

  /// Copies a bag of doubles into the arena and returns a stable view.
  VecView internBag(const std::vector<double> &Bag) {
    Arena->emplace_back(Bag);
    const std::vector<double> &Stored = Arena->back();
    return VecView{Stored.data(),
                   static_cast<std::int64_t>(Stored.size())};
  }

  Value deepCopy(const Value &V) {
    switch (V.kind()) {
    case expr::TypeKind::Vec: {
      VecView View = V.asVec();
      Arena->emplace_back(View.Data, View.Data + View.Len);
      const std::vector<double> &Stored = Arena->back();
      return Value(VecView{Stored.data(),
                           static_cast<std::int64_t>(Stored.size())});
    }
    case expr::TypeKind::Pair:
      return Value::makePair(deepCopy(V.first()), deepCopy(V.second()));
    default:
      return V;
    }
  }

  const expr::SourceBuffer &sourceAt(unsigned Slot) {
    if (Slot >= B.sources().size())
      support::fatalError("reference executor: source slot " +
                          std::to_string(Slot) + " not bound");
    return B.sources()[Slot];
  }

  std::vector<Value> evalSource(const query::SourceDesc &Src) {
    std::vector<Value> Out;
    switch (Src.Kind) {
    case query::SourceKind::DoubleArray: {
      const expr::SourceBuffer &Buf = sourceAt(Src.Slot);
      for (std::int64_t I = 0; I != Buf.Count; ++I)
        Out.push_back(Value(Buf.DoubleData[I]));
      return Out;
    }
    case query::SourceKind::Int64Array: {
      const expr::SourceBuffer &Buf = sourceAt(Src.Slot);
      for (std::int64_t I = 0; I != Buf.Count; ++I)
        Out.push_back(Value(Buf.Int64Data[I]));
      return Out;
    }
    case query::SourceKind::PointArray: {
      const expr::SourceBuffer &Buf = sourceAt(Src.Slot);
      for (std::int64_t I = 0; I != Buf.Count; ++I)
        Out.push_back(
            Value(VecView{Buf.DoubleData + I * Buf.Dim, Buf.Dim}));
      return Out;
    }
    case query::SourceKind::Range: {
      std::int64_t Start = eval(Src.Start).asInt64();
      std::int64_t Count = eval(Src.CountE).asInt64();
      for (std::int64_t I = 0; I < Count; ++I)
        Out.push_back(Value(Start + I));
      return Out;
    }
    case query::SourceKind::VecExpr: {
      VecView V = eval(Src.Vec).asVec();
      for (std::int64_t I = 0; I != V.Len; ++I)
        Out.push_back(Value(V.Data[I]));
      return Out;
    }
    }
    stenoUnreachable("bad SourceKind");
  }

  std::vector<Value> evalCollection(const QueryNodeRef &N) {
    assert(N && !N->isAggregate() && "not a collection query");
    switch (N->kind()) {
    case OpKind::Source:
      return evalSource(N->source());
    case OpKind::Select: {
      std::vector<Value> Up = evalCollection(N->upstream());
      for (Value &V : Up)
        V = apply1(N->fn(), V);
      return Up;
    }
    case OpKind::SelectNested: {
      std::vector<Value> Up = evalCollection(N->upstream());
      for (Value &V : Up) {
        Env.bind(N->outerParam(), V);
        V = evalScalar(N->nested());
        Env.pop();
      }
      return Up;
    }
    case OpKind::Where: {
      std::vector<Value> Up = evalCollection(N->upstream());
      std::vector<Value> Out;
      for (Value &V : Up)
        if (apply1(N->fn(), V).asBool())
          Out.push_back(std::move(V));
      return Out;
    }
    case OpKind::WhereNested: {
      std::vector<Value> Up = evalCollection(N->upstream());
      std::vector<Value> Out;
      for (Value &V : Up) {
        Env.bind(N->outerParam(), V);
        bool Keep = evalScalar(N->nested()).asBool();
        Env.pop();
        if (Keep)
          Out.push_back(std::move(V));
      }
      return Out;
    }
    case OpKind::Take: {
      std::vector<Value> Up = evalCollection(N->upstream());
      std::int64_t K = eval(N->arg()).asInt64();
      if (K < 0)
        K = 0;
      if (static_cast<size_t>(K) < Up.size())
        Up.resize(static_cast<size_t>(K));
      return Up;
    }
    case OpKind::Skip: {
      std::vector<Value> Up = evalCollection(N->upstream());
      std::int64_t K = eval(N->arg()).asInt64();
      if (K < 0)
        K = 0;
      if (static_cast<size_t>(K) >= Up.size())
        return {};
      Up.erase(Up.begin(), Up.begin() + static_cast<size_t>(K));
      return Up;
    }
    case OpKind::TakeWhile: {
      std::vector<Value> Up = evalCollection(N->upstream());
      std::vector<Value> Out;
      for (Value &V : Up) {
        if (!apply1(N->fn(), V).asBool())
          break;
        Out.push_back(std::move(V));
      }
      return Out;
    }
    case OpKind::SkipWhile: {
      std::vector<Value> Up = evalCollection(N->upstream());
      std::vector<Value> Out;
      bool Skipping = true;
      for (Value &V : Up) {
        if (Skipping && apply1(N->fn(), V).asBool())
          continue;
        Skipping = false;
        Out.push_back(std::move(V));
      }
      return Out;
    }
    case OpKind::SelectMany: {
      std::vector<Value> Up = evalCollection(N->upstream());
      std::vector<Value> Out;
      for (Value &V : Up) {
        Env.bind(N->outerParam(), V);
        std::vector<Value> Sub = evalCollection(N->nested());
        Env.pop();
        for (Value &S : Sub)
          Out.push_back(std::move(S));
      }
      return Out;
    }
    case OpKind::GroupBy: {
      std::vector<Value> Up = evalCollection(N->upstream());
      std::vector<std::pair<std::int64_t, std::vector<double>>> Buckets;
      std::unordered_map<std::int64_t, size_t> Index;
      for (const Value &V : Up) {
        std::int64_t Key = apply1(N->fn(), V).asInt64();
        auto It = Index.find(Key);
        size_t Slot;
        if (It == Index.end()) {
          Slot = Buckets.size();
          Index.emplace(Key, Slot);
          Buckets.emplace_back(Key, std::vector<double>());
        } else {
          Slot = It->second;
        }
        Buckets[Slot].second.push_back(V.asDouble());
      }
      std::vector<Value> Out;
      for (const auto &[Key, Bag] : Buckets)
        Out.push_back(
            Value::makePair(Value(Key), Value(internBag(Bag))));
      return Out;
    }
    case OpKind::GroupByAggregate: {
      std::vector<Value> Up = evalCollection(N->upstream());
      std::vector<std::pair<std::int64_t, Value>> Entries;
      std::unordered_map<std::int64_t, size_t> Index;
      if (N->denseKeys()) {
        // Dense semantics (§4.3 closing remark): every key in
        // [0, NumKeys) is reported in key order, seeded slots included.
        std::int64_t NumKeys = eval(N->denseKeys()).asInt64();
        for (std::int64_t K = 0; K < NumKeys; ++K) {
          Index.emplace(K, Entries.size());
          Entries.emplace_back(K, eval(N->arg()));
        }
      }
      for (const Value &V : Up) {
        std::int64_t Key = apply1(N->fn(), V).asInt64();
        auto It = Index.find(Key);
        size_t Slot;
        if (It == Index.end()) {
          assert(!N->denseKeys() && "dense sink key out of range");
          Slot = Entries.size();
          Index.emplace(Key, Slot);
          Entries.emplace_back(Key, eval(N->arg()));
        } else {
          Slot = It->second;
        }
        Entries[Slot].second = apply2(N->fn2(), Entries[Slot].second, V);
      }
      std::vector<Value> Out;
      for (const auto &[Key, Acc] : Entries) {
        if (N->fn3().valid())
          Out.push_back(apply2(N->fn3(), Value(Key), Acc));
        else
          Out.push_back(Value::makePair(Value(Key), Acc));
      }
      return Out;
    }
    case OpKind::OrderBy: {
      std::vector<Value> Up = evalCollection(N->upstream());
      std::vector<std::pair<double, size_t>> Keys;
      Keys.reserve(Up.size());
      for (size_t I = 0; I != Up.size(); ++I)
        Keys.emplace_back(apply1(N->fn(), Up[I]).asNumericDouble(), I);
      std::stable_sort(Keys.begin(), Keys.end(),
                       [](const auto &A, const auto &B2) {
                         return A.first < B2.first;
                       });
      std::vector<Value> Out;
      Out.reserve(Up.size());
      for (const auto &[Key, Idx] : Keys)
        Out.push_back(std::move(Up[Idx]));
      return Out;
    }
    case OpKind::ToArray:
      return evalCollection(N->upstream());
    default:
      break;
    }
    stenoUnreachable("aggregate kind in evalCollection");
  }

  Value evalScalar(const QueryNodeRef &N) {
    assert(N && N->isAggregate() && "not a scalar query");
    std::vector<Value> Up = evalCollection(N->upstream());
    switch (N->kind()) {
    case OpKind::Aggregate: {
      Value Acc = eval(N->arg());
      for (const Value &V : Up)
        Acc = apply2(N->fn(), Acc, V);
      if (N->fn2().valid())
        Acc = apply1(N->fn2(), Acc);
      return Acc;
    }
    case OpKind::Sum: {
      if (N->upstream()->resultType()->isDouble()) {
        double Acc = 0;
        for (const Value &V : Up)
          Acc += V.asDouble();
        return Value(Acc);
      }
      std::int64_t Acc = 0;
      for (const Value &V : Up)
        Acc += V.asInt64();
      return Value(Acc);
    }
    case OpKind::Min:
    case OpKind::Max: {
      bool IsMin = N->kind() == OpKind::Min;
      // Sentinel-identity semantics matching the QUIL lowering.
      if (N->upstream()->resultType()->isDouble()) {
        double Acc = IsMin ? std::numeric_limits<double>::infinity()
                           : -std::numeric_limits<double>::infinity();
        for (const Value &V : Up) {
          double X = V.asDouble();
          if (IsMin ? X < Acc : X > Acc)
            Acc = X;
        }
        return Value(Acc);
      }
      std::int64_t Acc = IsMin ? std::numeric_limits<std::int64_t>::max()
                               : std::numeric_limits<std::int64_t>::min();
      for (const Value &V : Up) {
        std::int64_t X = V.asInt64();
        if (IsMin ? X < Acc : X > Acc)
          Acc = X;
      }
      return Value(Acc);
    }
    case OpKind::Count:
      return Value(static_cast<std::int64_t>(Up.size()));
    case OpKind::Any:
      return Value(!Up.empty());
    case OpKind::All: {
      for (const Value &V : Up)
        if (!apply1(N->fn(), V).asBool())
          return Value(false);
      return Value(true);
    }
    case OpKind::FirstOrDefault:
      return Up.empty() ? eval(N->arg()) : Up.front();
    case OpKind::Contains: {
      Value Needle = eval(N->arg());
      for (const Value &V : Up)
        if (V == Needle)
          return Value(true);
      return Value(false);
    }
    case OpKind::Average: {
      double Acc = 0;
      for (const Value &V : Up)
        Acc += V.asNumericDouble();
      return Value(Acc / static_cast<double>(Up.size()));
    }
    default:
      break;
    }
    stenoUnreachable("collection kind in evalScalar");
  }

  const Bindings &B;
  expr::Env Env;
  std::shared_ptr<std::deque<std::vector<double>>> Arena;
};

} // namespace

QueryResult steno::runReference(const query::Query &Q, const Bindings &B) {
  return RefExecutor(B).run(Q);
}
