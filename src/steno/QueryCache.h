//===- steno/QueryCache.h - Compiled-query caching (§7.1/§9) ---*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §7.1: "the optimized query object may be stored and reused in order to
/// amortize the cost of compilation. In the current implementation, the
/// user must explicitly instruct Steno to compile a given expression, but
/// a query caching approach (based on Nectar) could be added." This is
/// that addition: a cache keyed by the *structure* of the query — two
/// queries built independently but with identical operator chains,
/// lambdas, literals and slots share one compiled module, so the one-off
/// compile cost is paid once per query shape per process.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_STENO_QUERYCACHE_H
#define STENO_STENO_QUERYCACHE_H

#include "query/Query.h"
#include "steno/Steno.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace steno {

/// Structural fingerprint of a query (chains with equal structure hash
/// equally; see equalQueries for the equality it approximates).
std::uint64_t hashQuery(const query::Query &Q);

/// Deep structural equality over query chains: operator kinds, sources,
/// lambdas, argument expressions and nested queries.
bool equalQueries(const query::Query &A, const query::Query &B);

/// Thread-safe structural cache of compiled queries. Backend and
/// optimization options are part of the key.
class QueryCache {
public:
  /// Returns the cached compiled query for a structurally equal prior
  /// request, or compiles, caches and returns. Concurrent misses on the
  /// same key may compile in parallel (compilation runs outside the
  /// cache mutex), but insertion is first-wins: every caller receives the
  /// one canonical entry, duplicates are dropped, and size() never counts
  /// the same (query, options) twice.
  CompiledQuery getOrCompile(const query::Query &Q,
                             const CompileOptions &Options = CompileOptions());

  /// Cache peek without compiling: the cached entry for (Q, Options), or
  /// an invalid handle on a miss. Does not move hits()/misses() — those
  /// count getOrCompile outcomes only.
  CompiledQuery lookup(const query::Query &Q,
                       const CompileOptions &Options = CompileOptions()) const;

  /// Publishes an externally compiled query (e.g. a background native
  /// recompile finishing off-thread) under (Q, Options). First insert
  /// wins: if a structurally equal entry already exists, \p Compiled is
  /// dropped and the canonical entry is returned, so every handle for one
  /// key shares one compiled module.
  CompiledQuery insert(const query::Query &Q, const CompileOptions &Options,
                       CompiledQuery Compiled);

  /// Removes the entry for (Q, Options). Returns false when absent.
  /// Outstanding CompiledQuery handles stay valid (shared state).
  bool evict(const query::Query &Q,
             const CompileOptions &Options = CompileOptions());

  /// Number of distinct compiled entries.
  std::size_t size() const;
  /// Monotonic counters for inspection/benchmarks. Atomic so they can be
  /// polled without the cache mutex while getOrCompile runs concurrently
  /// (they also feed the obs registry: steno.cache.hits/misses).
  std::uint64_t hits() const {
    return Hits.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return Misses.load(std::memory_order_relaxed);
  }
  /// Modules compiled by a losing racer and discarded by first-wins
  /// insertion (concurrent misses, background recompiles).
  std::uint64_t duplicateCompilesDropped() const {
    return DupDropped.load(std::memory_order_relaxed);
  }

  /// Drops every entry (compiled modules stay alive while CompiledQuery
  /// handles reference them).
  void clear();

  /// A process-wide cache instance.
  static QueryCache &global();

private:
  struct Entry {
    query::Query Query;
    Backend Exec;
    bool Specialize;
    bool Profile;
    bool Rewrite;
    bool Vectorize;
    bool Adaptive;
    CompiledQuery Compiled;
  };

  mutable std::mutex Mutex;
  std::unordered_map<std::uint64_t, std::vector<Entry>> Buckets;
  std::atomic<std::uint64_t> Hits{0};
  std::atomic<std::uint64_t> Misses{0};
  std::atomic<std::uint64_t> DupDropped{0};
};

} // namespace steno

#endif // STENO_STENO_QUERYCACHE_H
