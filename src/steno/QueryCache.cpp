//===- steno/QueryCache.cpp -----------------------------------*- C++ -*-===//

#include "steno/QueryCache.h"
#include "expr/Analysis.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cassert>
#include <cmath>

using namespace steno;
using expr::equalExprs;
using expr::equalLambdas;
using expr::hashExpr;
using expr::hashLambda;
using query::QueryNodeRef;
using query::SourceDesc;
using query::SourceKind;

namespace {

std::uint64_t combine(std::uint64_t H, std::uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

std::uint64_t hashMaybeExpr(const expr::ExprRef &E) {
  return E ? hashExpr(*E) : 0x7f4a;
}

bool equalMaybeExprs(const expr::ExprRef &A, const expr::ExprRef &B) {
  if (!A || !B)
    return !A && !B;
  return equalExprs(*A, *B);
}

std::uint64_t hashSource(const SourceDesc &Src) {
  std::uint64_t H = static_cast<std::uint64_t>(Src.Kind) + 0xabcd;
  H = combine(H, Src.Slot);
  H = combine(H, hashMaybeExpr(Src.Start));
  H = combine(H, hashMaybeExpr(Src.CountE));
  H = combine(H, hashMaybeExpr(Src.Vec));
  return H;
}

bool equalSources(const SourceDesc &A, const SourceDesc &B) {
  return A.Kind == B.Kind && A.Slot == B.Slot &&
         equalMaybeExprs(A.Start, B.Start) &&
         equalMaybeExprs(A.CountE, B.CountE) &&
         equalMaybeExprs(A.Vec, B.Vec);
}

std::uint64_t hashNode(const QueryNodeRef &N);

std::uint64_t hashChainFrom(const QueryNodeRef &N) {
  std::uint64_t H = 0x5555;
  for (QueryNodeRef Cur = N; Cur; Cur = Cur->upstream())
    H = combine(H, hashNode(Cur));
  return H;
}

std::uint64_t hashNode(const QueryNodeRef &N) {
  std::uint64_t H = static_cast<std::uint64_t>(N->kind()) + 1;
  if (N->kind() == query::OpKind::Source)
    H = combine(H, hashSource(N->source()));
  H = combine(H, hashLambda(N->fn()));
  H = combine(H, hashLambda(N->fn2()));
  H = combine(H, hashLambda(N->fn3()));
  H = combine(H, hashLambda(N->combiner()));
  H = combine(H, hashMaybeExpr(N->arg()));
  H = combine(H, hashMaybeExpr(N->denseKeys()));
  if (N->nested()) {
    H = combine(H, hashChainFrom(N->nested()));
    std::uint64_t NameH = 1469598103934665603ULL;
    for (char C : N->outerParam()) {
      NameH ^= static_cast<unsigned char>(C);
      NameH *= 1099511628211ULL;
    }
    H = combine(H, NameH);
  }
  return H;
}

bool equalNodes(const QueryNodeRef &A, const QueryNodeRef &B);

bool equalChainsFrom(const QueryNodeRef &A, const QueryNodeRef &B) {
  QueryNodeRef X = A;
  QueryNodeRef Y = B;
  while (X && Y) {
    if (!equalNodes(X, Y))
      return false;
    X = X->upstream();
    Y = Y->upstream();
  }
  return !X && !Y;
}

bool equalNodes(const QueryNodeRef &A, const QueryNodeRef &B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  if (A->kind() == query::OpKind::Source &&
      !equalSources(A->source(), B->source()))
    return false;
  if (!equalLambdas(A->fn(), B->fn()) ||
      !equalLambdas(A->fn2(), B->fn2()) ||
      !equalLambdas(A->fn3(), B->fn3()) ||
      !equalLambdas(A->combiner(), B->combiner()))
    return false;
  if (!equalMaybeExprs(A->arg(), B->arg()) ||
      !equalMaybeExprs(A->denseKeys(), B->denseKeys()))
    return false;
  if ((A->nested() != nullptr) != (B->nested() != nullptr))
    return false;
  if (A->nested()) {
    if (A->outerParam() != B->outerParam())
      return false;
    if (!equalChainsFrom(A->nested(), B->nested()))
      return false;
  }
  return true;
}

} // namespace

std::uint64_t steno::hashQuery(const query::Query &Q) {
  assert(Q.valid() && "hashing an invalid query");
  return hashChainFrom(Q.node());
}

bool steno::equalQueries(const query::Query &A, const query::Query &B) {
  assert(A.valid() && B.valid() && "comparing invalid queries");
  return equalChainsFrom(A.node(), B.node());
}

CompiledQuery QueryCache::getOrCompile(const query::Query &Q,
                                       const CompileOptions &Options) {
  static obs::Counter &HitCount = obs::counter("steno.cache.hits");
  static obs::Counter &MissCount = obs::counter("steno.cache.misses");
  static obs::Counter &SavedMs =
      obs::counter("steno.cache.compile_ms_saved");

  obs::Span Span("steno.cache.getOrCompile");
  std::uint64_t Key = hashQuery(Q);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Buckets.find(Key);
    if (It != Buckets.end()) {
      for (const Entry &E : It->second) {
        if (E.Exec == Options.Exec &&
            E.Specialize == Options.SpecializeGroupByAggregate &&
            E.Profile == Options.Profile && E.Rewrite == Options.Rewrite &&
            E.Vectorize == Options.Vectorize &&
            E.Adaptive == Options.Adaptive && equalQueries(E.Query, Q)) {
          Hits.fetch_add(1, std::memory_order_relaxed);
          HitCount.inc();
          SavedMs.inc(static_cast<std::uint64_t>(
              std::llround(E.Compiled.compileMillis())));
          return E.Compiled;
        }
      }
    }
  }
  // Compile outside the lock (compilation can take hundreds of ms). A
  // concurrent getOrCompile for the same key may be compiling too; the
  // re-scan inside insert() makes the first finisher canonical and drops
  // the duplicate module, so every caller shares one entry.
  CompiledQuery Compiled = compileQuery(Q, Options);
  Misses.fetch_add(1, std::memory_order_relaxed);
  MissCount.inc();
  return insert(Q, Options, std::move(Compiled));
}

CompiledQuery QueryCache::lookup(const query::Query &Q,
                                 const CompileOptions &Options) const {
  std::uint64_t Key = hashQuery(Q);
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Buckets.find(Key);
  if (It == Buckets.end())
    return CompiledQuery();
  for (const Entry &E : It->second)
    if (E.Exec == Options.Exec &&
        E.Specialize == Options.SpecializeGroupByAggregate &&
        E.Profile == Options.Profile && E.Rewrite == Options.Rewrite &&
        E.Vectorize == Options.Vectorize &&
        E.Adaptive == Options.Adaptive && equalQueries(E.Query, Q))
      return E.Compiled;
  return CompiledQuery();
}

CompiledQuery QueryCache::insert(const query::Query &Q,
                                 const CompileOptions &Options,
                                 CompiledQuery Compiled) {
  static obs::Counter &DupDroppedCount =
      obs::counter("steno.cache.duplicate_compiles_dropped");
  std::uint64_t Key = hashQuery(Q);
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const Entry &E : Buckets[Key]) {
    if (E.Exec == Options.Exec &&
        E.Specialize == Options.SpecializeGroupByAggregate &&
        E.Profile == Options.Profile && E.Rewrite == Options.Rewrite &&
        E.Vectorize == Options.Vectorize &&
        E.Adaptive == Options.Adaptive && equalQueries(E.Query, Q)) {
      DupDropped.fetch_add(1, std::memory_order_relaxed);
      DupDroppedCount.inc();
      return E.Compiled; // first insert won; drop the duplicate
    }
  }
  Buckets[Key].push_back(Entry{Q, Options.Exec,
                               Options.SpecializeGroupByAggregate,
                               Options.Profile, Options.Rewrite,
                               Options.Vectorize, Options.Adaptive,
                               Compiled});
  return Compiled;
}

bool QueryCache::evict(const query::Query &Q, const CompileOptions &Options) {
  static obs::Counter &Evictions = obs::counter("steno.cache.evictions");
  std::uint64_t Key = hashQuery(Q);
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Buckets.find(Key);
  if (It == Buckets.end())
    return false;
  std::vector<Entry> &Entries = It->second;
  for (std::size_t I = 0; I != Entries.size(); ++I) {
    if (Entries[I].Exec == Options.Exec &&
        Entries[I].Specialize == Options.SpecializeGroupByAggregate &&
        Entries[I].Profile == Options.Profile &&
        Entries[I].Rewrite == Options.Rewrite &&
        Entries[I].Vectorize == Options.Vectorize &&
        Entries[I].Adaptive == Options.Adaptive &&
        equalQueries(Entries[I].Query, Q)) {
      Entries.erase(Entries.begin() + static_cast<std::ptrdiff_t>(I));
      if (Entries.empty())
        Buckets.erase(It);
      Evictions.inc();
      return true;
    }
  }
  return false;
}

std::size_t QueryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::size_t N = 0;
  for (const auto &[Key, Entries] : Buckets)
    N += Entries.size();
  return N;
}

void QueryCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Buckets.clear();
}

QueryCache &QueryCache::global() {
  static QueryCache Cache;
  return Cache;
}
