//===- steno/PersistentCache.h - Nectar-style on-disk cache ----*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-process half of §7.1's amortization story, modeled on Nectar
/// (Gunda et al., OSDI 2010, the paper's [18]): compiled query artifacts
/// — the shared object plus the metadata needed to rehydrate it — are
/// stored in a directory keyed by the query's structural fingerprint.
/// A process that compiles a query it has never seen pays the compiler
/// once; every later process (or run) with a structurally identical query
/// dlopens the stored artifact in microseconds.
///
/// Only Native-backend queries are persistable. Entries are
/// content-addressed: the key folds in the query hash and the options
/// that affect code generation (specialization, CSE).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_STENO_PERSISTENTCACHE_H
#define STENO_STENO_PERSISTENTCACHE_H

#include "query/Query.h"
#include "steno/Steno.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace steno {

/// On-disk compiled-query store. Safe for concurrent use within one
/// process; concurrent *processes* may race to create the same entry,
/// which is benign (last writer wins, both artifacts are equivalent).
class PersistentQueryCache {
public:
  /// Uses (and creates if needed) \p Directory as the store.
  explicit PersistentQueryCache(std::string Directory);

  /// Rehydrates a stored artifact for a structurally equal prior query,
  /// or compiles, persists and returns. Options must request the Native
  /// backend (aborts otherwise).
  CompiledQuery getOrCompile(const query::Query &Q,
                             const CompileOptions &Options = CompileOptions());

  /// Atomic so they can be polled without the cache mutex while
  /// getOrCompile runs (also exported as steno.pcache.hits/misses).
  std::uint64_t hits() const {
    return Hits.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return Misses.load(std::memory_order_relaxed);
  }
  const std::string &directory() const { return Dir; }

private:
  std::string entryDir(const query::Query &Q,
                       const CompileOptions &Options) const;

  std::string Dir;
  std::mutex Mutex;
  std::atomic<std::uint64_t> Hits{0};
  std::atomic<std::uint64_t> Misses{0};
};

} // namespace steno

#endif // STENO_STENO_PERSISTENTCACHE_H
