//===- steno/Bindings.h - Run-time data binding ----------------*- C++ -*-===//
///
/// \file
/// Bindings supply the data a compiled query runs over: source buffers per
/// source slot and captured values per capture slot. This is the run-time
/// half of paper §3.3 — the compiled query object's placeholder fields,
/// set before invocation (reflection in the paper; a plain struct here).
///
//===----------------------------------------------------------------------===//

#ifndef STENO_STENO_BINDINGS_H
#define STENO_STENO_BINDINGS_H

#include "expr/Value.h"

#include <cstdint>
#include <vector>

namespace steno {

/// Per-invocation inputs. Buffers are borrowed; the caller keeps them
/// alive across run().
class Bindings {
public:
  /// Binds source slot \p Slot to \p Count doubles at \p Data.
  Bindings &bindDoubleArray(unsigned Slot, const double *Data,
                            std::int64_t Count) {
    expr::SourceBuffer Buf;
    Buf.DoubleData = Data;
    Buf.Count = Count;
    Buf.Kind = expr::SourceBufKind::Double;
    slotRef(Slot) = Buf;
    return *this;
  }

  /// Binds source slot \p Slot to \p Count int64s at \p Data.
  Bindings &bindInt64Array(unsigned Slot, const std::int64_t *Data,
                           std::int64_t Count) {
    expr::SourceBuffer Buf;
    Buf.Int64Data = Data;
    Buf.Count = Count;
    Buf.Kind = expr::SourceBufKind::Int64;
    slotRef(Slot) = Buf;
    return *this;
  }

  /// Binds source slot \p Slot to \p Count points of \p Dim doubles each,
  /// stored flat at \p Data.
  Bindings &bindPointArray(unsigned Slot, const double *Data,
                           std::int64_t Count, std::int64_t Dim) {
    expr::SourceBuffer Buf;
    Buf.DoubleData = Data;
    Buf.Count = Count;
    Buf.Dim = Dim;
    Buf.Kind = expr::SourceBufKind::Point;
    slotRef(Slot) = Buf;
    return *this;
  }

  /// Sets capture slot \p Slot (paper §3.3 captured variable).
  Bindings &setValue(unsigned Slot, expr::Value V) {
    if (Slot >= Values.size())
      Values.resize(Slot + 1);
    Values[Slot] = std::move(V);
    return *this;
  }

  const std::vector<expr::SourceBuffer> &sources() const { return Sources; }
  const std::vector<expr::Value> &values() const { return Values; }

private:
  expr::SourceBuffer &slotRef(unsigned Slot) {
    if (Slot >= Sources.size())
      Sources.resize(Slot + 1);
    return Sources[Slot];
  }

  std::vector<expr::SourceBuffer> Sources;
  std::vector<expr::Value> Values;
};

} // namespace steno

#endif // STENO_STENO_BINDINGS_H
