//===- steno/PersistentCache.cpp ------------------------------*- C++ -*-===//

#include "steno/PersistentCache.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "steno/QueryCache.h"
#include "support/Error.h"
#include "support/StringUtil.h"
#include "support/TempFile.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace steno;

namespace {

/// Minimal line-based metadata codec. Format:
///   steno-pcache v1
///   entry <symbol>
///   scalar <0|1>
///   result <type serialization>
///   srcslots <n...>
///   valslots <n...>
///   end
/// The version header and the `end` sentinel exist for crash consistency:
/// a metadata file from an interrupted write (truncated anywhere, even
/// mid-line) fails to decode and the entry misses cleanly, instead of
/// rehydrating a query with half its slot-usage records — which would
/// silently skip binding validation at run time.
std::string encodeMeta(const PersistedQueryArtifact &A) {
  std::string Out = "steno-pcache v1\n";
  Out += "entry " + A.EntrySymbol + "\n";
  Out += std::string("scalar ") + (A.ScalarResult ? "1" : "0") + "\n";
  Out += "result " + A.ResultType->serialize() + "\n";
  Out += "srcslots";
  for (unsigned Slot : A.Slots.SourceSlots)
    Out += " " + std::to_string(Slot);
  Out += "\nvalslots";
  for (unsigned Slot : A.Slots.ValueSlots)
    Out += " " + std::to_string(Slot);
  Out += "\nend\n";
  return Out;
}

bool decodeMeta(const std::string &Text, PersistedQueryArtifact &A) {
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line) || Line != "steno-pcache v1")
    return false; // unknown/older format: miss and recompile
  bool SawEntry = false;
  bool SawScalar = false;
  bool SawResult = false;
  bool SawSrc = false;
  bool SawVal = false;
  bool SawEnd = false;
  while (std::getline(In, Line)) {
    if (SawEnd)
      return false; // trailing garbage
    std::istringstream Fields(Line);
    std::string Key;
    if (!(Fields >> Key))
      return false; // blank line: not something encodeMeta emits
    if (Key == "entry") {
      Fields >> A.EntrySymbol;
      SawEntry = !A.EntrySymbol.empty();
    } else if (Key == "scalar") {
      int V = 0;
      if (!(Fields >> V))
        return false;
      A.ScalarResult = V != 0;
      SawScalar = true;
    } else if (Key == "result") {
      std::string Ty;
      Fields >> Ty;
      A.ResultType = expr::Type::deserialize(Ty);
      SawResult = A.ResultType != nullptr;
    } else if (Key == "srcslots") {
      unsigned Slot;
      while (Fields >> Slot)
        A.Slots.SourceSlots.insert(Slot);
      SawSrc = true;
    } else if (Key == "valslots") {
      unsigned Slot;
      while (Fields >> Slot)
        A.Slots.ValueSlots.insert(Slot);
      SawVal = true;
    } else if (Key == "end") {
      SawEnd = true;
    } else {
      return false; // unknown key: corrupt or future format
    }
  }
  return SawEntry && SawScalar && SawResult && SawSrc && SawVal && SawEnd;
}

void ensureDir(const std::string &Path) {
  if (::mkdir(Path.c_str(), 0755) != 0 && errno != EEXIST)
    support::fatalError("cannot create cache directory " + Path + ": " +
                        std::strerror(errno));
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

/// Write-then-rename so a crash mid-write can never leave a partially
/// written file at the final path (rename within a directory is atomic
/// on POSIX). The temp name is pid-qualified so two processes filling
/// the same entry don't interleave their temp writes.
void writeFileAtomic(const std::string &Path, const std::string &Contents) {
  std::string Tmp =
      Path + support::strFormat(".tmp%d", static_cast<int>(::getpid()));
  support::writeFile(Tmp, Contents);
  if (::rename(Tmp.c_str(), Path.c_str()) != 0)
    support::fatalError("cannot move " + Tmp + " into place: " +
                        std::strerror(errno));
}

/// Copies a file (the compiled .so lives in the JIT temp dir; the cache
/// keeps its own copy that outlives the process).
bool copyFile(const std::string &From, const std::string &To) {
  std::string Data = support::readFileOrEmpty(From);
  if (Data.empty())
    return false;
  writeFileAtomic(To, Data);
  return true;
}

} // namespace

PersistentQueryCache::PersistentQueryCache(std::string Directory)
    : Dir(std::move(Directory)) {
  ensureDir(Dir);
}

std::string
PersistentQueryCache::entryDir(const query::Query &Q,
                               const CompileOptions &Options) const {
  std::uint64_t Key = hashQuery(Q);
  return support::strFormat("%s/q%016llx_s%d_c%d", Dir.c_str(),
                            static_cast<unsigned long long>(Key),
                            Options.SpecializeGroupByAggregate ? 1 : 0,
                            Options.EnableCse ? 1 : 0);
}

CompiledQuery
PersistentQueryCache::getOrCompile(const query::Query &Q,
                                   const CompileOptions &Options) {
  if (Options.Exec != Backend::Native)
    support::fatalError(
        "the persistent cache stores compiled objects; use the Native "
        "backend");

  static obs::Counter &HitCount = obs::counter("steno.pcache.hits");
  static obs::Counter &MissCount = obs::counter("steno.pcache.misses");
  obs::Span Span("steno.pcache.getOrCompile");

  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Entry = entryDir(Q, Options);
  std::string MetaPath = Entry + "/meta.txt";
  std::string SoPath = Entry + "/query.so";
  std::string SourcePath = Entry + "/query.cpp";

  if (fileExists(MetaPath) && fileExists(SoPath)) {
    PersistedQueryArtifact A;
    if (decodeMeta(support::readFileOrEmpty(MetaPath), A)) {
      A.SharedObjectPath = SoPath;
      A.Source = support::readFileOrEmpty(SourcePath);
      std::string Err;
      CompiledQuery CQ = A.rehydrate(&Err);
      if (CQ.valid()) {
        Hits.fetch_add(1, std::memory_order_relaxed);
        HitCount.inc();
        return CQ;
      }
    }
    // Corrupt entry: fall through and recompile over it.
  }

  CompiledQuery Compiled = compileQuery(Q, Options);
  Misses.fetch_add(1, std::memory_order_relaxed);
  MissCount.inc();
  PersistedQueryArtifact A = PersistedQueryArtifact::describe(Compiled);
  ensureDir(Entry);
  if (!copyFile(A.SharedObjectPath, SoPath))
    support::fatalError("cannot persist compiled object from " +
                        A.SharedObjectPath);
  writeFileAtomic(SourcePath, A.Source);
  // Metadata last: an entry is visible only once its object and source
  // are already in place, so readers can never observe meta-without-so.
  writeFileAtomic(MetaPath, encodeMeta(A));
  return Compiled;
}
