//===- steno/Result.h - Query execution results ----------------*- C++ -*-===//
///
/// \file
/// The value(s) a query run produced: a single scalar for aggregate
/// queries, or a row vector for collection queries. Vec payloads inside
/// results are owned by an attached arena, so results remain valid after
/// the query's internal state is gone.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_STENO_RESULT_H
#define STENO_STENO_RESULT_H

#include "expr/Value.h"

#include <cassert>
#include <deque>
#include <memory>
#include <vector>

namespace steno {

/// Result of one query invocation.
class QueryResult {
public:
  QueryResult() = default;

  QueryResult(bool Scalar, std::vector<expr::Value> Rows,
              std::shared_ptr<std::deque<std::vector<double>>> Arena)
      : Scalar(Scalar), Rows(std::move(Rows)), Arena(std::move(Arena)) {}

  /// True for aggregate queries (exactly one value).
  bool isScalar() const { return Scalar; }

  /// The scalar result; asserts the query was scalar and produced it.
  const expr::Value &scalarValue() const {
    assert(Scalar && Rows.size() == 1 && "not a scalar result");
    return Rows.front();
  }

  /// All result rows (for scalar queries: the single value).
  const std::vector<expr::Value> &rows() const { return Rows; }

private:
  bool Scalar = false;
  std::vector<expr::Value> Rows;
  std::shared_ptr<std::deque<std::vector<double>>> Arena;
};

} // namespace steno

#endif // STENO_STENO_RESULT_H
