//===- steno/RefExec.h - Reference (unoptimized) execution -----*- C++ -*-===//
///
/// \file
/// A direct, eager evaluator for the query AST using the expression
/// interpreter. It is the semantics oracle: Steno "faithfully reproduce[s]
/// the semantics of unoptimized LINQ" (paper §9), so every backend's
/// output is differential-tested against this executor. It makes no
/// attempt to be fast.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_STENO_REFEXEC_H
#define STENO_STENO_REFEXEC_H

#include "query/Query.h"
#include "steno/Bindings.h"
#include "steno/Result.h"

namespace steno {

/// Evaluates \p Q over \p B without any optimization.
QueryResult runReference(const query::Query &Q, const Bindings &B);

} // namespace steno

#endif // STENO_STENO_REFEXEC_H
