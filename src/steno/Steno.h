//===- steno/Steno.h - Public optimizer facade -----------------*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front door: compile a declarative Query into an executable
/// CompiledQuery, choosing a backend.
///
/// \code
///   using namespace steno;
///   using namespace steno::expr::dsl;
///   auto X = param("x", expr::Type::doubleTy());
///   query::Query Q = query::Query::doubleArray(0)
///                        .select(lambda({X}, X * X))
///                        .sum();
///   CompiledQuery CQ = compileQuery(Q, {});
///   Bindings B;
///   B.bindDoubleArray(0, Data.data(), Data.size());
///   double SumSq = CQ.run(B).scalarValue().asDouble();
/// \endcode
///
/// The pipeline mirrors the paper: lower to QUIL (§4.1), validate the
/// grammar (Figure 4), specialize GroupBy-Aggregate (§4.3), generate loop
/// code with the pushdown automaton (§4.2, §5), then either compile and
/// dynamically load it (Native backend, §3.3) or execute the generated
/// AST directly (Interp backend). Compiled queries are cacheable objects,
/// as §7.1 prescribes for amortizing the one-off compilation cost.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_STENO_STENO_H
#define STENO_STENO_STENO_H

#include "analysis/Analysis.h"
#include "analysis/Rewrite.h"
#include "cpptree/Printer.h"
#include "cpptree/Tree.h"
#include "jit/Jit.h"
#include "obs/Profile.h"
#include "query/Query.h"
#include "quil/Quil.h"
#include "steno/Bindings.h"
#include "steno/Result.h"
#include "vec/Batch.h"

#include <memory>
#include <string>

namespace steno {

namespace adapt {
bool adaptEnvEnabled(); // adapt/Adapt.h — fwd-declared to keep this
                        // header free of the adapt dependency.
}

/// Execution strategy for a compiled query.
enum class Backend {
  Interp, ///< Walk the generated loop AST (portable; no compiler needed).
  Native  ///< Compile to a shared object and dlopen it (paper §3.3).
};

/// Knobs for compileQuery.
struct CompileOptions {
  Backend Exec = Backend::Native;
  /// Apply the §4.3 GroupBy-Aggregate specialization pass.
  bool SpecializeGroupByAggregate = true;
  /// Hoist repeated pure subexpressions into locals (§9 CSE).
  bool EnableCse = true;
  /// Static-analysis enforcement (lower -> validate -> analyze ->
  /// specialize -> cse -> codegen). Defaults to the STENO_ANALYZE
  /// environment variable (off | warn | strict; unset means strict).
  analysis::Mode Analyze = analysis::modeFromEnv();
  /// Fact-driven plan rewriting (lower -> validate -> analyze ->
  /// REWRITE -> specialize -> codegen): dead-operator elimination,
  /// constant-predicate dropping, Take/Skip folding, cost×selectivity
  /// predicate reordering and division-trap elision, each justified by a
  /// machine-checkable RewriteCertificate (see analysis/Rewrite.h).
  /// Defaults to the STENO_REWRITE environment variable (on unless set
  /// to "0" or "off"). The QueryCache keys on this flag.
  bool Rewrite = quil::rewriteEnvEnabled();
  /// Collect per-operator runtime statistics (rows in/out, selectivity,
  /// nanoseconds) into the global obs::ProfileStore on every run().
  /// Defaults to the STENO_PROFILE environment variable. Profiled and
  /// unprofiled compilations of the same query are distinct plans (the
  /// generated code differs); the QueryCache keys on this flag.
  bool Profile = obs::profilingEnvEnabled();
  /// Vectorized batch execution (DESIGN.md §5i): vectorizable chains run
  /// batch-at-a-time over contiguous columns with selection vectors — the
  /// interpreter through the steno::vec batch kernels, the native backend
  /// through SIMD-friendly generated batch loops. Chains whose shape does
  /// not fit the columnar model (nested queries, sinks, early-exit
  /// aggregates, vec-typed elements) keep the scalar path regardless.
  /// Defaults to the STENO_VECTORIZE environment variable (on unless set
  /// to "0" or "off"). The QueryCache keys on this flag.
  bool Vectorize = vec::vectorizeEnvEnabled();
  /// Feedback-driven adaptive optimization (DESIGN.md §5j): when the
  /// global adapt::FeedbackStore holds ripe observed statistics for this
  /// plan (decayed selectivity + per-row cost per predicate, above the
  /// minimum-sample threshold), the rewrite phase ranks adjacent Where
  /// runs by observed cost×selectivity instead of the static heuristic.
  /// Every feedback-driven reorder still emits a RewriteCertificate and
  /// is replay-verified before the chain is adopted; verification
  /// failure falls back to the static plan. Plans quarantined by the
  /// ignorance list (repeated mispredictions) are pinned static. Only
  /// meaningful with Rewrite on. Defaults to the STENO_ADAPT
  /// environment variable (on unless set to "0" or "off"). The
  /// QueryCache keys on this flag.
  bool Adaptive = adapt::adaptEnvEnabled();
  /// Entry symbol / readable query name.
  std::string Name = "steno_query";
};

/// An optimized, executable query. Cheap to copy (shared state); reusable
/// across any number of run() calls with different bindings.
class CompiledQuery {
public:
  CompiledQuery() = default;

  /// False for default-constructed handles and failed rehydrations.
  bool valid() const { return I != nullptr; }

  /// Executes against \p B. Aborts with a diagnostic if a slot the query
  /// uses is unbound or has the wrong buffer kind.
  QueryResult run(const Bindings &B) const;

  /// Which engine run() dispatches to.
  Backend backend() const;

  /// The background-recompile hook (steno::serve): wraps \p Module — which
  /// must have been compiled from generatedSource() resolving
  /// program().Name, e.g. via jit::CompileQueue — as the Native-backend
  /// twin of this query. Chain, program, slot usage and analysis state are
  /// shared; only the execution engine changes. Aborts on an invalid
  /// handle or a null module.
  CompiledQuery
  withNativeModule(std::unique_ptr<jit::CompiledModule> Module) const;

  /// The generated C++ source (available for both backends).
  const std::string &generatedSource() const;
  /// One-off compile+load cost in ms (0 for the Interp backend).
  double compileMillis() const;
  /// The generated loop program.
  const cpptree::Program &program() const;
  /// The QUIL chain after optimization passes.
  const quil::Chain &chain() const;
  /// Whether the §4.3 specialization fired.
  bool groupBySpecialized() const;
  /// The analyze phase's findings and parallel-safety certificate
  /// (empty/default when the phase ran in Off mode).
  const analysis::AnalysisResult &analysisResult() const;
  /// The rewriter's outcome: certificates and before/after hashes. Null
  /// when rewriting was disabled or left the chain untouched.
  const quil::RewriteResult *rewriteResult() const;
  /// Provenance: the plan hash this query's chain was rewritten from
  /// (what planHash() would have been with rewriting off), or 0 when the
  /// rewriter did not change the chain. The ProfileStore uses this link
  /// to resolve profiles accumulated under the pre-rewrite plan.
  std::uint64_t rewrittenFromHash() const;
  /// Structural hash of the optimized QUIL chain (quil::hashChain) — the
  /// ProfileStore key. The interp and native plans of one query share a
  /// hash, so serve's backend swap keeps one merged profile. 0 for
  /// rehydrated artifacts (no chain survives persistence).
  std::uint64_t planHash() const;
  /// Whether this query was compiled with profiling hooks.
  bool profiled() const;
  /// Whether this query carries a vectorized batch plan (the interp
  /// backend executes it batch-at-a-time; the native backend compiled
  /// batch loops). False when vectorization was disabled or the chain's
  /// shape forced the scalar fallback.
  bool vectorized() const;
  /// EXPLAIN ANALYZE-style report of the accumulated profile for this
  /// plan (obs::renderExplainAnalyze over the store snapshot); a
  /// diagnostic line when the plan is unprofiled or never ran.
  std::string explainAnalyze() const;

  /// Opaque shared state (defined in Steno.cpp).
  struct Impl;

private:
  friend CompiledQuery compileQuery(const query::Query &,
                                    const CompileOptions &);
  friend CompiledQuery compileChain(const quil::Chain &,
                                    const CompileOptions &);
  friend struct PersistedQueryArtifact;
  friend class QueryRunner;
  std::shared_ptr<const Impl> I;
};

/// Amortized repeat-execution handle for one CompiledQuery — the inner
/// loop of the morsel runtime. CompiledQuery::run() pays per-call costs
/// that are invisible at query granularity but dominate at morsel
/// granularity: binding re-validation, a tracing span, global metric
/// updates and a heap-allocated profile sink per call. A QueryRunner
/// validates bindings on the first call only, accumulates profile deltas
/// into one reused sink, and merges them into the ProfileStore exactly
/// once (flush() or destruction). Not thread-safe: create one per worker.
class QueryRunner {
public:
  QueryRunner() = default;
  explicit QueryRunner(const CompiledQuery &CQ);
  QueryRunner(QueryRunner &&) = default;
  QueryRunner &operator=(QueryRunner &&) = default;
  ~QueryRunner();

  bool valid() const { return I != nullptr; }

  /// Executes against \p B. Slot usage is validated on the first call
  /// only — callers re-binding buffers between calls must keep the same
  /// slots bound (the morsel runtime rebinds windows of one source).
  QueryResult run(const Bindings &B);

  /// Merges the accumulated profile into the ProfileStore, attributed to
  /// \p Worker, and resets the accumulator. No-op when the query is
  /// unprofiled or nothing ran since the last flush.
  void flush(unsigned Worker = 0);

private:
  std::shared_ptr<const CompiledQuery::Impl> I;
  std::unique_ptr<obs::ProfileSink> Sink;
  bool Checked = false;
  bool Dirty = false;
};

/// Everything needed to rehydrate a Native compiled query without
/// recompiling: the persistence format of the Nectar-style on-disk cache
/// (§7.1's "stored and reused"). Interp-backend queries are not
/// persistable (they carry the full generated AST).
struct PersistedQueryArtifact {
  std::string Name;             ///< Readable query name.
  std::string EntrySymbol;      ///< extern "C" symbol in the object.
  std::string SharedObjectPath; ///< The compiled artifact on disk.
  std::string Source;           ///< Generated source (informational).
  expr::TypeRef ResultType;
  bool ScalarResult = false;
  cpptree::SlotUsage Slots;

  /// Describes a Native compiled query for persistence. Aborts if \p CQ
  /// is not a Native-backend query.
  static PersistedQueryArtifact describe(const CompiledQuery &CQ);

  /// Loads the artifact's shared object and wraps it as a runnable
  /// CompiledQuery. Returns an invalid handle and fills \p Err on
  /// failure (missing/corrupt object, missing symbol).
  CompiledQuery rehydrate(std::string *Err = nullptr) const;
};

/// Lowers, validates, optimizes and code-generates \p Q. Aborts with a
/// diagnostic on grammar violations; returns a runnable query otherwise.
CompiledQuery compileQuery(const query::Query &Q,
                           const CompileOptions &Options = CompileOptions());

/// Compiles an already-lowered QUIL chain (used by the distributed planner,
/// which rewrites chains into per-partition vertex programs before code
/// generation). Validates the chain; optimization passes are the caller's
/// responsibility.
CompiledQuery compileChain(const quil::Chain &Chain,
                           const CompileOptions &Options = CompileOptions());

} // namespace steno

#endif // STENO_STENO_STENO_H
