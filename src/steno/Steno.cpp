//===- steno/Steno.cpp ----------------------------------------*- C++ -*-===//

#include "steno/Steno.h"
#include "adapt/Adapt.h"
#include "codegen/Generator.h"
#include "codegen/VecGen.h"
#include "cpptree/Printer.h"
#include "interp/Interp.h"
#include "interp/VecInterp.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Error.h"
#include "support/StringUtil.h"
#include "support/Timing.h"
#include "vec/BatchExec.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <optional>

using namespace steno;

struct CompiledQuery::Impl {
  quil::Chain Chain;
  cpptree::Program Program;
  cpptree::SlotUsage Slots;
  std::string Source;
  bool Specialized = false;
  analysis::AnalysisResult Analysis;
  steno::Backend ExecBackend = Backend::Interp;
  std::unique_ptr<jit::CompiledModule> Module; // Native backend only
  /// ProfileStore key (quil::hashChain over the optimized chain); 0 for
  /// rehydrated artifacts, which carry no chain.
  std::uint64_t PlanHash = 0;
  /// Whether the generated code carries profiling hooks.
  bool Profile = false;
  /// The rewriter's certificates and hashes; engaged only when it ran
  /// AND changed the chain.
  std::optional<quil::RewriteResult> Rewrite;
  /// The plan hash this chain was rewritten from (0 = not rewritten):
  /// what PlanHash would be with rewriting off, i.e. the hash the same
  /// query registered under in profile stores before rewriting existed.
  std::uint64_t RewrittenFrom = 0;
  /// The vectorized batch plan (DESIGN.md §5i). Non-null only when
  /// CompileOptions::Vectorize was on AND the chain fits the columnar
  /// model; the Interp backend then executes batch-at-a-time and the
  /// Native backend compiled batch loops. Shared: withNativeModule twins
  /// reuse it.
  std::shared_ptr<const vec::VecPlan> VecPlan;
};

namespace {
/// The analyze phase: runs the static-analysis pipeline per the
/// STENO_ANALYZE mode, prints warnings, and (strict mode) rejects a chain
/// with error-severity findings before codegen spends anything on it.
void analyzePhase(CompiledQuery::Impl &Impl, const CompileOptions &Options,
                  const std::string &Context) {
  if (Options.Analyze == analysis::Mode::Off)
    return;
  obs::Span S("steno.analyze");
  Impl.Analysis = analysis::analyzeChain(Impl.Chain);
  S.arg("diags", static_cast<std::int64_t>(Impl.Analysis.Diags.size()));
  S.arg("errors",
        static_cast<std::int64_t>(Impl.Analysis.Diags.errorCount()));
  S.arg("parallel_safe", Impl.Analysis.Cert.parallelSafe() ? 1 : 0);

  std::string Printable =
      Impl.Analysis.Diags.render(analysis::Severity::Warning);
  if (!Printable.empty())
    std::fprintf(stderr, "steno: analysis of %s '%s':\n%s",
                 Context.c_str(), Options.Name.c_str(), Printable.c_str());

  if (Options.Analyze == analysis::Mode::Strict &&
      Impl.Analysis.Diags.hasErrors())
    support::fatalError(
        support::strFormat("%s '%s' rejected by static analysis (%zu "
                           "error(s)):\n",
                           Context.c_str(), Options.Name.c_str(),
                           Impl.Analysis.Diags.errorCount()) +
        Impl.Analysis.Diags.render(analysis::Severity::Error) +
        "  QUIL: " + Impl.Chain.symbols());
}

/// The ST4xxx diagnostic code describing one rewrite rule.
analysis::DiagCode diagForRule(quil::RewriteRule Rule) {
  using quil::RewriteRule;
  switch (Rule) {
  case RewriteRule::DropTruePred:
    return analysis::DiagCode::RewritePredDropped;
  case RewriteRule::CollapseFalsePred:
    return analysis::DiagCode::RewriteEmptyCollapse;
  case RewriteRule::RemoveDeadOp:
    return analysis::DiagCode::RewriteDeadOpRemoved;
  case RewriteRule::FoldConstCount:
  case RewriteRule::MergeTakeTake:
  case RewriteRule::MergeSkipSkip:
  case RewriteRule::DropSkipZero:
  case RewriteRule::DropRedundantTake:
    return analysis::DiagCode::RewriteTakeSkipFolded;
  case RewriteRule::ReorderPreds:
    return analysis::DiagCode::RewritePredReordered;
  case RewriteRule::ElideDivTrap:
    return analysis::DiagCode::RewriteTrapElided;
  }
  return analysis::DiagCode::RewritePredDropped;
}

/// The rewrite phase: analyze -> REWRITE -> specialize. Replaces the
/// chain with its fact-driven rewrite, records provenance (the plan hash
/// the original chain would have compiled to, so accumulated profiles
/// resolve across the rewrite), and surfaces each certificate as an
/// ST4xxx note when the analysis pipeline is on.
void rewritePhase(CompiledQuery::Impl &Impl, const CompileOptions &Options,
                  bool WillSpecialize) {
  if (!Options.Rewrite)
    return;
  // Cheap syntactic pre-scan: most hot compile paths (select/aggregate
  // over arrays) have nothing a rule could fire on — skip the phase
  // without copying or re-hashing the chain.
  if (!quil::chainHasRewriteTargets(Impl.Chain))
    return;
  obs::Span S("steno.rewrite");
  quil::RewriteOptions RO;
  if (Options.Profile)
    RO.Profile = &obs::ProfileStore::global();

  // Adaptive feedback: hand the rewriter ripe decayed per-predicate
  // statistics for this plan, keyed by the hash the un-rewritten chain
  // will register under (the anchor every plan version resolves to).
  // Quarantined plans (ignorance list) stay on the static heuristic.
  if (Options.Adaptive && obs::ProfileStore::global().size() != 0) {
    quil::Chain Anchor = Impl.Chain;
    if (WillSpecialize) {
      bool Dummy = false;
      Anchor = quil::specializeGroupByAggregate(Anchor, &Dummy);
    }
    std::uint64_t AnchorHash = quil::hashChain(Anchor);
    adapt::FeedbackStore &FS = adapt::FeedbackStore::global();
    if (!FS.ignored(AnchorHash)) {
      FS.refresh(AnchorHash, obs::ProfileStore::global());
      RO.Observed = FS.observedStats(AnchorHash);
    } else {
      // Quarantined: pin the fully static plan. The profile-guided
      // selectivity reorder is observation-driven too, so it stays off
      // for this hash as well.
      RO.Profile = nullptr;
    }
  }

  quil::RewriteResult R = quil::rewriteChain(Impl.Chain, RO);
  S.arg("rewrites", static_cast<std::int64_t>(R.Certs.size()));

  // Every feedback-driven rewrite must carry certificates that survive
  // the replay checker before the chain is adopted; a verification
  // failure (e.g. racing feedback mutation) falls back to the purely
  // static rewrite.
  if (!RO.Observed.empty() && R.Changed) {
    std::string VErr;
    if (quil::verifyCertificates(Impl.Chain, R, RO, &VErr)) {
      static obs::Counter &Verified = obs::counter("adapt.cert_verified");
      Verified.inc();
    } else {
      static obs::Counter &Failed = obs::counter("adapt.cert_failed");
      Failed.inc();
      std::fprintf(stderr,
                   "steno: adaptive rewrite certificate rejected for "
                   "'%s' (%s); using static plan\n",
                   Options.Name.c_str(), VErr.c_str());
      RO.Observed.clear();
      R = quil::rewriteChain(Impl.Chain, RO);
    }
  }
  if (!R.Changed)
    return;

  // Provenance target: the plan hash is computed post-specialize, so the
  // pre-rewrite plan's hash is "the original chain specialized the same
  // way this compile will". That is the key the query registered under
  // before rewriting.
  quil::Chain Original = Impl.Chain;
  if (WillSpecialize) {
    bool Dummy = false;
    Original = quil::specializeGroupByAggregate(Original, &Dummy);
  }
  Impl.RewrittenFrom = quil::hashChain(Original);
  Impl.Chain = R.Rewritten;

  if (Options.Analyze != analysis::Mode::Off)
    for (const quil::RewriteCertificate &C : R.Certs)
      Impl.Analysis.Diags.report(diagForRule(C.Rule),
                                 analysis::Severity::Note, C.Loc,
                                 C.Detail + " [" + C.Fact + "]");
  Impl.Rewrite = std::move(R);
}

void checkBindingsImpl(const cpptree::SlotUsage &Slots,
                       const std::string &Name, const Bindings &B) {
  for (unsigned Slot : Slots.SourceSlots) {
    if (Slot >= B.sources().size())
      support::fatalError(support::strFormat(
          "query '%s' uses source slot %u, which is not bound",
          Name.c_str(), Slot));
    const expr::SourceBuffer &Buf = B.sources()[Slot];
    if (!Buf.DoubleData && !Buf.Int64Data && Buf.Count != 0)
      support::fatalError(support::strFormat(
          "query '%s': source slot %u bound to no buffer", Name.c_str(),
          Slot));
  }
  for (unsigned Slot : Slots.ValueSlots)
    if (Slot >= B.values().size())
      support::fatalError(support::strFormat(
          "query '%s' uses capture slot %u, which is not set",
          Name.c_str(), Slot));
}
} // namespace

QueryResult CompiledQuery::run(const Bindings &B) const {
  if (!I)
    support::fatalError("running a default-constructed CompiledQuery");
  checkBindingsImpl(I->Slots, I->Program.Name, B);

  static obs::Counter &Runs = obs::counter("steno.run.count");
  static obs::Counter &RowsIn = obs::counter("steno.rows.consumed");
  static obs::Counter &RowsOut = obs::counter("steno.rows.emitted");
  static obs::Histogram &RunMicros = obs::histogram(
      "steno.run.micros", {10, 100, 1e3, 1e4, 1e5, 1e6, 1e7});

  std::int64_t Consumed = 0;
  for (unsigned Slot : I->Slots.SourceSlots)
    Consumed += B.sources()[Slot].Count;

  obs::Span Span("steno.run");
  support::WallTimer Timer;

  // Per-run profile sink: plain counters the hot loop bumps without
  // synchronization, merged once into the shared ProfileStore below.
  std::unique_ptr<obs::ProfileSink> Prof;
  if (I->Profile && !I->Program.ProfOps.empty())
    Prof = std::make_unique<obs::ProfileSink>(I->Program.ProfOps.size());

  std::vector<expr::Value> Rows;
  std::shared_ptr<std::deque<std::vector<double>>> Arena;
  if (I->ExecBackend == Backend::Native) {
    jit::ExecOutput Out =
        jit::run(I->Module->entry(), B.sources(), B.values(),
                 I->Program.ResultType,
                 Prof ? Prof->Counts.data() : nullptr,
                 Prof ? Prof->Nanos.data() : nullptr);
    Rows = std::move(Out.Rows);
    Arena = std::move(Out.Arena);
  } else if (I->VecPlan) {
    interp::RunInput In;
    In.Sources = &B.sources();
    In.Values = &B.values();
    In.Profile = Prof.get();
    Rows = interp::executeVectorized(*I->VecPlan, In).Rows;
  } else {
    interp::RunInput In;
    In.Sources = &B.sources();
    In.Values = &B.values();
    In.Profile = Prof.get();
    interp::RunOutput Out = interp::execute(I->Program, In);
    Rows = std::move(Out.Rows);
    Arena = std::move(Out.Arena);
  }

  // The universal merge point: every execution path — interp, native,
  // serve's swapped backends, a dryad vertex inside a morsel — funnels
  // its per-run deltas into the store here.
  if (Prof)
    obs::ProfileStore::global().merge(I->PlanHash, *Prof);

  Runs.inc();
  RowsIn.inc(static_cast<std::uint64_t>(Consumed));
  RowsOut.inc(Rows.size());
  RunMicros.observe(Timer.seconds() * 1e6);
  Span.arg("rows_in", Consumed);
  Span.arg("rows_out", static_cast<std::int64_t>(Rows.size()));

  if (I->Program.ScalarResult && Rows.size() != 1)
    support::fatalError("scalar query emitted " +
                        std::to_string(Rows.size()) + " rows");
  return QueryResult(I->Program.ScalarResult, std::move(Rows),
                     std::move(Arena));
}

const std::string &CompiledQuery::generatedSource() const {
  return I->Source;
}

QueryRunner::QueryRunner(const CompiledQuery &CQ) : I(CQ.I) {
  if (!I)
    support::fatalError("QueryRunner over an invalid CompiledQuery");
  if (I->Profile && !I->Program.ProfOps.empty())
    Sink = std::make_unique<obs::ProfileSink>(I->Program.ProfOps.size());
}

QueryRunner::~QueryRunner() {
  if (Sink && Dirty)
    flush(obs::profileWorker());
}

QueryResult QueryRunner::run(const Bindings &B) {
  if (!I)
    support::fatalError("running a default-constructed QueryRunner");
  if (!Checked) {
    checkBindingsImpl(I->Slots, I->Program.Name, B);
    Checked = true;
  }
  std::vector<expr::Value> Rows;
  std::shared_ptr<std::deque<std::vector<double>>> Arena;
  if (I->ExecBackend == Backend::Native) {
    jit::ExecOutput Out =
        jit::run(I->Module->entry(), B.sources(), B.values(),
                 I->Program.ResultType,
                 Sink ? Sink->Counts.data() : nullptr,
                 Sink ? Sink->Nanos.data() : nullptr);
    Rows = std::move(Out.Rows);
    Arena = std::move(Out.Arena);
  } else if (I->VecPlan) {
    interp::RunInput In;
    In.Sources = &B.sources();
    In.Values = &B.values();
    In.Profile = Sink.get();
    Rows = interp::executeVectorized(*I->VecPlan, In).Rows;
  } else {
    interp::RunInput In;
    In.Sources = &B.sources();
    In.Values = &B.values();
    In.Profile = Sink.get();
    interp::RunOutput Out = interp::execute(I->Program, In);
    Rows = std::move(Out.Rows);
    Arena = std::move(Out.Arena);
  }
  if (Sink)
    Dirty = true;
  if (I->Program.ScalarResult && Rows.size() != 1)
    support::fatalError("scalar query emitted " +
                        std::to_string(Rows.size()) + " rows");
  return QueryResult(I->Program.ScalarResult, std::move(Rows),
                     std::move(Arena));
}

void QueryRunner::flush(unsigned Worker) {
  if (!Sink || !Dirty)
    return;
  obs::ProfileWorkerScope Scope(Worker);
  obs::ProfileStore::global().merge(I->PlanHash, *Sink);
  std::fill(Sink->Counts.begin(), Sink->Counts.end(), 0);
  std::fill(Sink->Nanos.begin(), Sink->Nanos.end(), 0);
  Dirty = false;
}

Backend CompiledQuery::backend() const { return I->ExecBackend; }

CompiledQuery CompiledQuery::withNativeModule(
    std::unique_ptr<jit::CompiledModule> Module) const {
  if (!I)
    support::fatalError(
        "withNativeModule on a default-constructed CompiledQuery");
  if (!Module)
    support::fatalError("withNativeModule: null module for query '" +
                        I->Program.Name + "'");
  auto Impl = std::make_shared<CompiledQuery::Impl>();
  Impl->Chain = I->Chain;
  Impl->Program = I->Program;
  Impl->Slots = I->Slots;
  Impl->Source = I->Source;
  Impl->Specialized = I->Specialized;
  Impl->Analysis = I->Analysis;
  Impl->ExecBackend = Backend::Native;
  Impl->Module = std::move(Module);
  Impl->PlanHash = I->PlanHash;
  Impl->Profile = I->Profile;
  Impl->Rewrite = I->Rewrite;
  Impl->RewrittenFrom = I->RewrittenFrom;
  Impl->VecPlan = I->VecPlan;
  CompiledQuery CQ;
  CQ.I = std::move(Impl);
  return CQ;
}

double CompiledQuery::compileMillis() const {
  return I->Module ? I->Module->compileMillis() : 0.0;
}

const cpptree::Program &CompiledQuery::program() const { return I->Program; }

const quil::Chain &CompiledQuery::chain() const { return I->Chain; }

bool CompiledQuery::groupBySpecialized() const { return I->Specialized; }

const analysis::AnalysisResult &CompiledQuery::analysisResult() const {
  return I->Analysis;
}

std::uint64_t CompiledQuery::planHash() const { return I->PlanHash; }

const quil::RewriteResult *CompiledQuery::rewriteResult() const {
  return I->Rewrite ? &*I->Rewrite : nullptr;
}

std::uint64_t CompiledQuery::rewrittenFromHash() const {
  return I->RewrittenFrom;
}

bool CompiledQuery::profiled() const { return I->Profile; }

bool CompiledQuery::vectorized() const { return I->VecPlan != nullptr; }

std::string CompiledQuery::explainAnalyze() const {
  if (!I->Profile)
    return "query '" + I->Program.Name +
           "' was compiled without profiling (set STENO_PROFILE=1 or "
           "CompileOptions::Profile)\n";
  if (auto Snap = obs::ProfileStore::global().snapshotResolved(I->PlanHash))
    return obs::renderExplainAnalyze(*Snap);
  return "no profile recorded yet for query '" + I->Program.Name +
         "' (plan never ran)\n";
}

static std::shared_ptr<CompiledQuery::Impl>
codegenAndLoad(std::shared_ptr<CompiledQuery::Impl> Impl,
               const CompileOptions &Options) {
  // 4. Loop-code generation with the pushdown automaton (§4.2, §5).
  static std::atomic<unsigned> QueryCounter{0};
  std::string Entry = support::sanitizeIdentifier(Options.Name) + "_" +
                      std::to_string(QueryCounter++);
  {
    obs::Span S("steno.codegen");
    codegen::GenOptions Gen;
    Gen.EnableCse = Options.EnableCse;
    Gen.Profile = Options.Profile;
    Impl->Program = codegen::generate(Impl->Chain, Entry, Gen);
    Impl->Slots = cpptree::scanSlots(Impl->Program);
    Impl->Source = cpptree::printProgram(Impl->Program);
  }

  // Vectorized batch planning (§5i): decide once whether the optimized
  // chain fits the columnar model. The plan drives the interp backend's
  // batch executor directly; for the native backend (including serve's
  // background recompiles, which compile generatedSource()) the printed
  // TU is replaced by the batch-loop version, so vectorized() always
  // describes what actually runs. The scalar Program is kept for result
  // typing, slot metadata and EXPLAIN. Chains the planner rejects keep
  // the scalar loop on both backends.
  if (Options.Vectorize) {
    auto VP = std::make_shared<vec::VecPlan>(vec::planChain(Impl->Chain));
    if (VP->Ok) {
      Impl->VecPlan = std::move(VP);
      Impl->Source = codegen::printVectorizedProgram(
          *Impl->VecPlan, Impl->Slots, Entry, Options.Profile);
    }
  }

  Impl->PlanHash = quil::hashChain(Impl->Chain);
  // A rewrite that round-trips to the same plan hash (theoretically
  // possible, e.g. a permutation that sorts back) must not create a
  // provenance self-loop.
  if (Impl->RewrittenFrom == Impl->PlanHash)
    Impl->RewrittenFrom = 0;
  Impl->Profile = Options.Profile;
  if (Options.Profile) {
    obs::PlanDesc D;
    D.Name = Options.Name;
    D.Symbols = Impl->Chain.symbols();
    D.RewrittenFrom = Impl->RewrittenFrom;
    for (const cpptree::ProfOp &PO : Impl->Program.ProfOps)
      D.Ops.push_back(obs::ProfOpDesc{PO.Label, PO.Depth, PO.Timed, PO.OpId});
    obs::ProfileStore::global().ensure(Impl->PlanHash, D);
  }

  // 5. Compile, load and bind (§3.3) for the native backend.
  if (Options.Exec == Backend::Native) {
    std::string Err;
    Impl->Module = jit::CompiledModule::compile(Impl->Source, Entry, &Err);
    if (!Impl->Module)
      support::fatalError("JIT compilation of query '" + Options.Name +
                          "' failed: " + Err);
  }
  return Impl;
}

CompiledQuery steno::compileQuery(const query::Query &Q,
                                  const CompileOptions &Options) {
  if (!Q.valid())
    support::fatalError("compiling an invalid query");

  static obs::Counter &Compiles = obs::counter("steno.compile.count");
  static obs::Counter &Specialized =
      obs::counter("steno.compile.specialized");
  static obs::Histogram &CompileMs = obs::histogram(
      "steno.compile.millis", {1, 5, 10, 25, 50, 100, 250, 500, 1e3, 5e3});

  obs::Span CompileSpan("steno.compile");
  support::WallTimer Timer;

  auto Impl = std::make_shared<CompiledQuery::Impl>();
  Impl->ExecBackend = Options.Exec;

  // 1. Lower to QUIL (§4.1) and check the grammar (Figure 4).
  {
    obs::Span S("steno.lower");
    Impl->Chain = quil::lower(Q);
  }
  {
    obs::Span S("steno.validate");
    if (auto Err = quil::validate(Impl->Chain))
      support::fatalError("invalid query '" + Options.Name + "': " + *Err +
                          "\n  query: " + Q.str() +
                          "\n  QUIL:  " + Impl->Chain.symbols());
  }

  // 2. Static analysis: types, effects, constant ranges (rejects in
  // strict mode before any further work is spent on the chain).
  analyzePhase(*Impl, Options, "query");

  // 2b. Certificate-gated plan rewriting over the analysis facts.
  rewritePhase(*Impl, Options,
               /*WillSpecialize=*/Options.SpecializeGroupByAggregate);

  // 3. Operator specialization (§4.3).
  if (Options.SpecializeGroupByAggregate) {
    obs::Span S("steno.specialize");
    Impl->Chain =
        quil::specializeGroupByAggregate(Impl->Chain, &Impl->Specialized);
  }

  CompiledQuery CQ;
  CQ.I = codegenAndLoad(std::move(Impl), Options);

  Compiles.inc();
  if (CQ.I->Specialized)
    Specialized.inc();
  CompileMs.observe(Timer.millis());
  return CQ;
}

PersistedQueryArtifact
PersistedQueryArtifact::describe(const CompiledQuery &CQ) {
  const CompiledQuery::Impl &I = *CQ.I;
  if (!I.Module)
    support::fatalError(
        "only Native-backend queries can be persisted (query '" +
        I.Program.Name + "')");
  PersistedQueryArtifact A;
  A.Name = I.Program.Name;
  A.EntrySymbol = I.Program.Name;
  A.SharedObjectPath = I.Module->objectPath();
  A.Source = I.Source;
  A.ResultType = I.Program.ResultType;
  A.ScalarResult = I.Program.ScalarResult;
  A.Slots = I.Slots;
  return A;
}

CompiledQuery PersistedQueryArtifact::rehydrate(std::string *Err) const {
  std::string LoadErr;
  std::unique_ptr<jit::CompiledModule> Module =
      jit::CompiledModule::load(SharedObjectPath, EntrySymbol, &LoadErr);
  if (!Module) {
    if (Err)
      *Err = LoadErr;
    return CompiledQuery();
  }
  auto Impl = std::make_shared<CompiledQuery::Impl>();
  Impl->ExecBackend = Backend::Native;
  Impl->Program.Name = EntrySymbol;
  Impl->Program.ResultType = ResultType;
  Impl->Program.ScalarResult = ScalarResult;
  Impl->Slots = Slots;
  Impl->Source = Source;
  Impl->Module = std::move(Module);
  CompiledQuery CQ;
  CQ.I = std::move(Impl);
  return CQ;
}

CompiledQuery steno::compileChain(const quil::Chain &Chain,
                                  const CompileOptions &Options) {
  static obs::Counter &Compiles = obs::counter("steno.compile.count");

  obs::Span CompileSpan("steno.compile");
  auto Impl = std::make_shared<CompiledQuery::Impl>();
  Impl->ExecBackend = Options.Exec;
  Impl->Chain = Chain;
  {
    obs::Span S("steno.validate");
    if (auto Err = quil::validate(Impl->Chain))
      support::fatalError("invalid chain '" + Options.Name + "': " + *Err +
                          "\n  QUIL: " + Impl->Chain.symbols());
  }
  analyzePhase(*Impl, Options, "chain");
  // compileChain never specializes, so provenance hashes the chain as-is.
  rewritePhase(*Impl, Options, /*WillSpecialize=*/false);
  CompiledQuery CQ;
  CQ.I = codegenAndLoad(std::move(Impl), Options);
  Compiles.inc();
  return CQ;
}
