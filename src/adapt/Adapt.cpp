//===- adapt/Adapt.cpp - Feedback-driven adaptive optimization -*- C++ -*-===//

#include "adapt/Adapt.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace steno;
using namespace steno::adapt;

bool adapt::adaptEnvEnabled() {
  static const bool Enabled = [] {
    const char *E = std::getenv("STENO_ADAPT");
    return !E || (std::strcmp(E, "0") != 0 && std::strcmp(E, "off") != 0);
  }();
  return Enabled;
}

std::uint64_t adapt::adaptMinSamplesEnv() {
  static const std::uint64_t N = [] {
    const char *E = std::getenv("STENO_ADAPT_MIN_SAMPLES");
    if (!E || !*E)
      return std::uint64_t{3};
    char *End = nullptr;
    unsigned long long V = std::strtoull(E, &End, 10);
    if (End == E || V == 0)
      return std::uint64_t{3};
    return static_cast<std::uint64_t>(V);
  }();
  return N;
}

namespace {

/// Source cardinality of one run set: the widest flow through the first
/// operator (Src ops count emissions as RowsOut; operators fed directly
/// by a source count them as RowsIn).
std::uint64_t sourceRows(const obs::ProfileSnapshot &S) {
  if (S.Ops.empty())
    return 0;
  return std::max(S.Ops.front().RowsIn, S.Ops.front().RowsOut);
}

} // namespace

void FeedbackStore::foldLocked(Entry &E, const obs::ProfileSnapshot &S) {
  // A cumulative counter moving backwards means the profile store was
  // cleared (tests) — restart the baseline rather than folding garbage.
  std::uint64_t Rows = sourceRows(S);
  std::uint64_t Nanos = S.totalNanos();
  if (S.Runs < E.SeenRuns || Rows < E.SeenRows || Nanos < E.SeenNanos)
    E = Entry{};

  std::uint64_t DRuns = S.Runs - E.SeenRuns;
  if (!DRuns)
    return; // nothing new since the last refresh

  bool First = E.FB.Runs == 0;
  std::uint64_t DRows = Rows - E.SeenRows;
  std::uint64_t DNanos = Nanos - E.SeenNanos;
  E.FB.RowsPerRun = ewma(E.FB.RowsPerRun,
                         static_cast<double>(DRows) /
                             static_cast<double>(DRuns),
                         First);
  if (DRows)
    E.FB.NanosPerRow = ewma(E.FB.NanosPerRow,
                            static_cast<double>(DNanos) /
                                static_cast<double>(DRows),
                            First || E.FB.NanosPerRow == 0.0);

  for (const obs::OpProfile &O : S.Ops) {
    if (O.Label != "Where" || !O.OpId)
      continue;
    OpBaseline &B = E.PerOp[O.OpId];
    if (O.RowsIn < B.In || O.RowsOut < B.Out || O.Nanos < B.Nanos)
      B = OpBaseline{}; // shape changed under a store reset
    std::uint64_t DIn = O.RowsIn - B.In;
    std::uint64_t DOut = O.RowsOut - B.Out;
    std::uint64_t DNs = O.Nanos - B.Nanos;
    if (DIn) {
      PredFeedback &P = E.FB.Preds[O.OpId];
      bool PFirst = P.Samples == 0;
      P.Sel = ewma(P.Sel,
                   static_cast<double>(DOut) / static_cast<double>(DIn),
                   PFirst);
      if (O.Timed && DNs)
        P.NanosPerRow = ewma(P.NanosPerRow,
                             static_cast<double>(DNs) /
                                 static_cast<double>(DIn),
                             PFirst || P.NanosPerRow == 0.0);
      P.Samples += DRuns;
    }
    B.In = O.RowsIn;
    B.Out = O.RowsOut;
    B.Nanos = O.Nanos;
  }

  // Skew: the dominant worker's merge share over the mean share. Uses the
  // cumulative distribution (skew is a property of the whole history, and
  // per-refresh deltas would be too sparse to be meaningful).
  if (!S.WorkerMerges.empty()) {
    std::uint64_t Max = 0, Total = 0;
    for (const auto &[W, N] : S.WorkerMerges) {
      (void)W;
      Max = std::max(Max, N);
      Total += N;
    }
    double Mean = static_cast<double>(Total) /
                  static_cast<double>(S.WorkerMerges.size());
    E.FB.WorkerImbalance = Mean > 0 ? static_cast<double>(Max) / Mean : 1.0;
    E.FB.WorkersSeen = static_cast<unsigned>(S.WorkerMerges.size());
  }

  E.FB.Runs += DRuns;
  E.SeenRuns = S.Runs;
  E.SeenRows = Rows;
  E.SeenNanos = Nanos;
}

std::optional<PlanFeedback>
FeedbackStore::refresh(std::uint64_t PlanHash,
                       const obs::ProfileStore &Store) {
  auto Snap = Store.snapshotResolved(PlanHash);
  if (!Snap || !Snap->Runs)
    return lookup(PlanHash);
  return observe(*Snap);
}

std::optional<PlanFeedback>
FeedbackStore::observe(const obs::ProfileSnapshot &S) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entry &E = Plans[S.PlanHash];
  foldLocked(E, S);
  if (!E.FB.Runs)
    return std::nullopt;
  return E.FB;
}

std::optional<PlanFeedback>
FeedbackStore::lookup(std::uint64_t PlanHash) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Plans.find(PlanHash);
  if (It == Plans.end() || !It->second.FB.Runs)
    return std::nullopt;
  return It->second.FB;
}

std::map<std::uint64_t, quil::ObservedPredStats>
FeedbackStore::observedStats(std::uint64_t PlanHash) const {
  std::map<std::uint64_t, quil::ObservedPredStats> Out;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Plans.find(PlanHash);
  if (It == Plans.end() || It->second.Ignored)
    return Out;
  for (const auto &[OpId, P] : It->second.FB.Preds) {
    if (P.Samples < MinSamples)
      continue;
    quil::ObservedPredStats S;
    S.Sel = P.Sel;
    // Untimed predicates fall back to unit cost: the observed
    // selectivity alone still beats the static estimate.
    S.CostNanos = P.NanosPerRow > 0 ? P.NanosPerRow : 1.0;
    Out[OpId] = S;
  }
  return Out;
}

bool FeedbackStore::ignored(std::uint64_t PlanHash) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Plans.find(PlanHash);
  return It != Plans.end() && It->second.Ignored;
}

bool FeedbackStore::recordMisprediction(std::uint64_t PlanHash) {
  static obs::Counter &Mispredicts = obs::counter("adapt.mispredictions");
  static obs::Counter &Ignored = obs::counter("adapt.ignored");
  Mispredicts.inc();
  std::lock_guard<std::mutex> Lock(Mutex);
  Entry &E = Plans[PlanHash];
  if (E.Ignored)
    return false;
  if (++E.Strikes < MispredictLimit)
    return false;
  E.Ignored = true;
  Ignored.inc();
  return true;
}

void FeedbackStore::recordGoodPrediction(std::uint64_t PlanHash) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Plans.find(PlanHash);
  if (It != Plans.end() && !It->second.Ignored)
    It->second.Strikes = 0;
}

std::size_t FeedbackStore::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Plans.size();
}

void FeedbackStore::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Plans.clear();
}

FeedbackStore &FeedbackStore::global() {
  // Leaked intentionally, like the ProfileStore it feeds from: adaptive
  // compiles may race process teardown.
  static FeedbackStore *Store = new FeedbackStore();
  return *Store;
}

//===--------------------------------------------------------------------===//
// Morsel tuning
//===--------------------------------------------------------------------===//

dryad::MorselOptions adapt::tunedMorselOptions(std::uint64_t PlanHash,
                                               dryad::MorselOptions M) {
  FeedbackStore &FS = FeedbackStore::global();
  auto FB = FS.refresh(PlanHash, obs::ProfileStore::global());
  if (!FB || FB->Runs < FS.minSamples())
    return M;

  dryad::MorselOptions Out = M;
  // Size a morsel to the scheduler's latency budget: budget-nanos over
  // observed per-row cost, clamped to the configured bounds.
  if (FB->NanosPerRow > 0) {
    double Target = M.TargetMorselMicros * 1000.0 / FB->NanosPerRow;
    std::size_t Sized =
        Target < 1.0 ? std::size_t{1}
                     : static_cast<std::size_t>(std::min(
                           Target, static_cast<double>(M.MaxMorsel)));
    Out.InitialMorsel = std::clamp(Sized, M.MinMorsel, M.MaxMorsel);
  }
  // Heavy skew: cap the largest grab so stragglers stay stealable.
  if (FB->WorkerImbalance > 2.0 && FB->WorkersSeen > 1)
    Out.MaxMorsel = std::max(M.MinMorsel, Out.InitialMorsel);
  // Observed-tiny inputs: the fan-out never pays for itself — route the
  // whole input through the inline single-worker path.
  if (FB->RowsPerRun > 0 &&
      FB->RowsPerRun <= static_cast<double>(2 * M.MinMorsel))
    Out.InlineBelow = std::max(
        Out.InlineBelow, static_cast<std::size_t>(FB->RowsPerRun) + 1);

  if (Out.InitialMorsel != M.InitialMorsel || Out.MaxMorsel != M.MaxMorsel ||
      Out.InlineBelow != M.InlineBelow) {
    static obs::Counter &Tuned = obs::counter("adapt.morsel_tuned");
    Tuned.inc();
  }
  return Out;
}
