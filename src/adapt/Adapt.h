//===- adapt/Adapt.h - Feedback-driven adaptive optimization ---*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// steno::adapt — the feedback loop that turns the obs::ProfileStore from
/// a reporting tool into a planning input (DESIGN.md §5j). Modeled on
/// PostgresPro AQO's learn-cache / auto-tuning / ignorance design:
///
///  * **FeedbackStore** aggregates observed Pred selectivities and
///    per-operator costs per plan hash across runs. Each refresh() folds
///    the *delta* since the last refresh as one observation into
///    exponentially-decayed means (EWMA, factor Alpha), so a query whose
///    data distribution drifts re-learns instead of averaging forever.
///    A minimum-sample threshold (STENO_ADAPT_MIN_SAMPLES, default 3)
///    gates every consumer: one noisy run never reorders a plan.
///
///  * **observedStats()** exports the ripe predicate feedback in the
///    quil::RewriteOptions::Observed form, so the certificate-gated
///    rewriter ranks adjacent Where runs by observed cost×selectivity
///    instead of the static System-R heuristic. The stats travel inside
///    RewriteOptions — not read back from mutable store state — which
///    keeps verifyCertificates()'s replay deterministic.
///
///  * **tunedMorselOptions()** picks morsel sizing per query from the
///    observed per-row cost (sizing a morsel to the scheduler's latency
///    budget) and per-worker skew, and routes provably tiny inputs to the
///    inline single-worker path.
///
///  * **Ignorance list.** A plan hash whose post-swap observed latency
///    regresses strikes once; MispredictLimit (2) *consecutive* strikes
///    quarantine the hash — adaptive planning pins it to the static plan
///    and bumps the `adapt.ignored` counter. A good prediction resets the
///    strike count.
///
/// Gate: STENO_ADAPT (on unless set to "0" or "off") defaults
/// CompileOptions::Adaptive and serve's re-planning.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_ADAPT_ADAPT_H
#define STENO_ADAPT_ADAPT_H

#include "analysis/Rewrite.h"
#include "dryad/Morsel.h"
#include "obs/Profile.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

namespace steno {
namespace adapt {

/// STENO_ADAPT environment gate: adaptivity is ON unless the variable is
/// set to "0" or "off".
bool adaptEnvEnabled();

/// STENO_ADAPT_MIN_SAMPLES: observed runs required before feedback is
/// considered ripe (default 3; minimum 1).
std::uint64_t adaptMinSamplesEnv();

/// One predicate's decayed observation, keyed by the lambda identity
/// (expr::hashLambda) the profiler records as OpId.
struct PredFeedback {
  double Sel = 0.0;          ///< Decayed mean observed selectivity.
  double NanosPerRow = 0.0;  ///< Decayed mean per-input-row cost (0 when
                             ///< the operator was never timed).
  std::uint64_t Samples = 0; ///< Runs folded in (undecayed count).
};

/// The decayed aggregate for one plan hash.
struct PlanFeedback {
  std::uint64_t Runs = 0;       ///< Total runs folded in.
  double RowsPerRun = 0.0;      ///< Decayed mean source rows per run.
  double NanosPerRow = 0.0;     ///< Decayed mean whole-plan cost per row.
  double WorkerImbalance = 1.0; ///< max/mean merge share across workers.
  unsigned WorkersSeen = 0;     ///< Workers that merged at least one run.
  std::map<std::uint64_t, PredFeedback> Preds; ///< Keyed by OpId.
};

/// Thread-safe feedback aggregation keyed by quil::hashChain plan hash.
/// refresh() pulls the provenance-resolved cumulative profile and folds
/// the delta since the previous refresh; observe() is the deterministic
/// test entry that folds a hand-built snapshot directly.
class FeedbackStore {
public:
  explicit FeedbackStore(double Alpha = 0.3,
                         std::uint64_t MinSamples = adaptMinSamplesEnv(),
                         unsigned MispredictLimit = 2)
      : Alpha(Alpha), MinSamples(MinSamples),
        MispredictLimit(MispredictLimit) {}

  /// Folds the delta between \p Store's resolved snapshot for
  /// \p PlanHash and the last refresh into the decayed aggregates.
  /// Returns the updated aggregate, or nullopt when the store has never
  /// seen the plan.
  std::optional<PlanFeedback> refresh(std::uint64_t PlanHash,
                                      const obs::ProfileStore &Store);

  /// Folds one snapshot (keyed by S.PlanHash) directly. Cumulative
  /// counters smaller than the previous observation reset the baseline
  /// (the profile store was cleared).
  std::optional<PlanFeedback> observe(const obs::ProfileSnapshot &S);

  /// The current aggregate without refreshing.
  std::optional<PlanFeedback> lookup(std::uint64_t PlanHash) const;

  /// Ripe predicate feedback (Samples >= minSamples()) in the form the
  /// rewriter consumes; empty when the plan is unknown, not ripe, or
  /// quarantined.
  std::map<std::uint64_t, quil::ObservedPredStats>
  observedStats(std::uint64_t PlanHash) const;

  //===--- Ignorance list (AQO-style) -----------------------------------===//

  /// True when \p PlanHash is quarantined: feedback-driven planning must
  /// pin the static plan.
  bool ignored(std::uint64_t PlanHash) const;

  /// Records one post-swap latency regression. Returns true when this
  /// strike reached MispredictLimit consecutive mispredictions and
  /// tripped the quarantine (bumping `adapt.ignored`).
  bool recordMisprediction(std::uint64_t PlanHash);

  /// Records a post-swap plan that held its predicted advantage; resets
  /// the consecutive-strike count (no effect once quarantined).
  void recordGoodPrediction(std::uint64_t PlanHash);

  std::uint64_t minSamples() const { return MinSamples; }
  double alpha() const { return Alpha; }
  std::size_t size() const;
  void clear();

  /// Process-wide store (what the compile pipeline and serve consult).
  static FeedbackStore &global();

private:
  struct OpBaseline {
    std::uint64_t In = 0, Out = 0, Nanos = 0;
  };
  struct Entry {
    PlanFeedback FB;
    // Last-seen cumulative counters, so each refresh folds a delta.
    std::uint64_t SeenRuns = 0;
    std::uint64_t SeenRows = 0;
    std::uint64_t SeenNanos = 0;
    std::map<std::uint64_t, OpBaseline> PerOp;
    // Ignorance state.
    unsigned Strikes = 0;
    bool Ignored = false;
  };

  void foldLocked(Entry &E, const obs::ProfileSnapshot &S);
  double ewma(double Old, double New, bool First) const {
    return First ? New : (1.0 - Alpha) * Old + Alpha * New;
  }

  double Alpha;
  std::uint64_t MinSamples;
  unsigned MispredictLimit;
  mutable std::mutex Mutex;
  std::map<std::uint64_t, Entry> Plans;
};

/// Morsel sizing from feedback: when the global FeedbackStore holds ripe
/// feedback for \p PlanHash, returns \p M with InitialMorsel sized to the
/// scheduler's per-morsel latency budget from the observed per-row cost,
/// MaxMorsel clamped under heavy per-worker skew, and InlineBelow raised
/// so observed-tiny inputs run inline on one worker. Returns \p M
/// unchanged otherwise. Bumps `adapt.morsel_tuned` when it changes
/// anything.
dryad::MorselOptions tunedMorselOptions(std::uint64_t PlanHash,
                                        dryad::MorselOptions M);

} // namespace adapt
} // namespace steno

#endif // STENO_ADAPT_ADAPT_H
