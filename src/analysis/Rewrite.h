//===- analysis/Rewrite.h - Certificate-gated plan rewriter ----*- C++ -*-===//
//
// Part of the Steno/C++ reproduction of Murray, Isard & Yu,
// "Steno: Automatic Optimization of Declarative Queries" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// quil::Rewrite — the fact-driven, semantics-preserving plan rewriter
/// that sits between analyze and specialize in the compile pipeline
/// (lower -> validate -> analyze -> rewrite -> specialize -> codegen),
/// gated by STENO_REWRITE=off|on (default on).
///
/// Every rule consumes facts from analysis::absint (interval, predicate
/// tri-value, cardinality, trap-freedom) and each application emits a
/// machine-checkable RewriteCertificate recording the rule, the operator
/// location, and the fact that justified it. verifyCertificates() replays
/// the rewrite deterministically and re-validates the output chain, so
/// certificate checking is mechanical rather than by review.
///
/// Rules (see DESIGN.md §5h for the full table):
///   DropTruePred      — Where(true) / no-op TakeWhile / no-op SkipWhile
///                       removed (predicate body must be trap-free).
///   CollapseFalsePred — Where(false) / TakeWhile(false) /
///                       SkipWhile(true) replaced by Take 0 (the
///                       canonical empty marker; body must be trap-free).
///   RemoveDeadOp      — operator whose incoming cardinality is exactly
///                       [0, 0] and whose removal preserves element type.
///   FoldConstCount    — Take/Skip count expression folded to a literal.
///   MergeTakeTake / MergeSkipSkip — adjacent constant counts combined.
///   DropSkipZero / DropRedundantTake — provable no-ops removed.
///   ReorderPreds      — maximal runs of adjacent trap-free Where ops
///                       stably sorted by (selectivity - 1) / cost;
///                       observed ProfileStore selectivities override the
///                       static estimate when a profile exists for the
///                       plan hash.
///   ElideDivTrap      — int64 Div/Mod whose divisor interval excludes 0
///                       (and cannot hit INT64_MIN / -1) marked divSafe()
///                       so codegen emits plain `/` `%` instead of
///                       rt::ckdiv / rt::ckmod.
///
//===----------------------------------------------------------------------===//

#ifndef STENO_ANALYSIS_REWRITE_H
#define STENO_ANALYSIS_REWRITE_H

#include "analysis/Diagnostics.h"
#include "quil/Quil.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace steno {
namespace obs {
class ProfileStore;
}

namespace quil {

/// Which rewrite rule produced a certificate.
enum class RewriteRule {
  DropTruePred,
  CollapseFalsePred,
  RemoveDeadOp,
  FoldConstCount,
  MergeTakeTake,
  MergeSkipSkip,
  DropSkipZero,
  DropRedundantTake,
  ReorderPreds,
  ElideDivTrap
};

const char *rewriteRuleName(RewriteRule Rule);

/// One applied rewrite, machine-checkable: the rule, where it fired, and
/// the analysis fact that justified it.
struct RewriteCertificate {
  RewriteRule Rule = RewriteRule::DropTruePred;
  analysis::DiagLoc Loc; ///< Operator location in the ORIGINAL chain's
                         ///< coordinates at the time the rule fired.
  std::string Fact;      ///< The justifying fact, e.g. "pred = true for
                         ///< every reachable element".
  std::string Detail;    ///< Human-readable description of the change.

  std::string str() const;
};

/// One predicate's observed statistics, keyed by expr::hashLambda, as
/// produced by adapt::FeedbackStore::observedStats(). When every Where in
/// an adjacent run has an entry, ReorderPreds ranks the run by observed
/// cost×selectivity instead of the static heuristic.
struct ObservedPredStats {
  double Sel = 0.5;       ///< Decayed mean observed selectivity.
  double CostNanos = 1.0; ///< Decayed mean per-input-row cost (ns).
};

struct RewriteOptions {
  bool ReorderPreds = true;
  bool ElideTraps = true;
  /// Observed-selectivity source for ReorderPreds; null = static
  /// estimates only.
  const obs::ProfileStore *Profile = nullptr;
  /// Feedback-driven predicate statistics (adapt layer). Carried inside
  /// the options — rather than read back from mutable store state — so
  /// verifyCertificates()'s replay of a feedback-driven reorder is
  /// deterministic.
  std::map<std::uint64_t, ObservedPredStats> Observed;
};

struct RewriteResult {
  Chain Rewritten;
  std::vector<RewriteCertificate> Certs;
  std::uint64_t OriginalHash = 0;
  std::uint64_t RewrittenHash = 0;
  bool Changed = false;
};

/// Rewrites \p C under \p Options. Deterministic for a fixed chain,
/// options, and ProfileStore state. The input chain must be valid
/// (validate(C) == nullopt); the output chain is valid too.
RewriteResult rewriteChain(const Chain &C,
                           const RewriteOptions &Options = RewriteOptions());

/// Mechanically checks \p R against \p Original: replays the rewrite
/// under \p Options and requires an identical certificate list and
/// rewritten-chain hash, and re-validates the rewritten chain. Returns
/// false and fills \p Err on any mismatch.
bool verifyCertificates(const Chain &Original, const RewriteResult &R,
                        const RewriteOptions &Options = RewriteOptions(),
                        std::string *Err = nullptr);

/// Cheap syntactic pre-scan: true when \p C contains anything a rewrite
/// rule could fire on (a Pred operator, an int64 Div/Mod, or a source
/// with a constant non-positive count). The compile pipeline skips the
/// rewrite phase — including the chain copy and re-hash — when this is
/// false, keeping the phase near-free for plain select/aggregate plans.
bool chainHasRewriteTargets(const Chain &C);

/// STENO_REWRITE environment gate: rewriting is ON unless the variable is
/// set to "0" or "off".
bool rewriteEnvEnabled();

} // namespace quil
} // namespace steno

#endif // STENO_ANALYSIS_REWRITE_H
